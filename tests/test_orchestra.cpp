// Orchestra baseline tests: hash determinism, autonomous cell install,
// parent-change reconfiguration, the sibling-collision property the paper
// exploits.
#include <gtest/gtest.h>

#include <memory>

#include "orchestra/orchestra_sf.hpp"
#include "phy/medium.hpp"
#include "sim/simulator.hpp"

namespace gttsch {
namespace {

TEST(OrchestraHash, DeterministicAndBounded) {
  for (NodeId id = 0; id < 200; ++id) {
    const auto h = OrchestraSf::hash(id, 7);
    EXPECT_LT(h, 7);
    EXPECT_EQ(h, OrchestraSf::hash(id, 7));
  }
}

TEST(OrchestraHash, SpreadsOverSlots) {
  std::vector<int> histogram(8, 0);
  for (NodeId id = 1; id <= 80; ++id) ++histogram[OrchestraSf::hash(id, 8)];
  for (int count : histogram) EXPECT_GT(count, 0);
}

class OrchestraTest : public ::testing::Test {
 protected:
  OrchestraTest()
      : sim_(3),
        medium_(sim_, std::make_unique<UnitDiskModel>(100.0), Rng(3)),
        radio_(sim_, medium_, 10, {}),
        mac_(sim_, medium_, radio_, MacConfig{}, Rng(4)),
        rpl_(sim_, mac_, etx_, RplConfig{}, Rng(5)),
        sf_(mac_, rpl_, OrchestraConfig{}) {}

  Simulator sim_;
  Medium medium_;
  Radio radio_;
  TschMac mac_;
  EtxEstimator etx_;
  RplAgent rpl_;
  OrchestraSf sf_;
};

TEST_F(OrchestraTest, InstallsThreeSlotframes) {
  sf_.start(true);
  sf_.on_associated();
  EXPECT_EQ(mac_.schedule().slotframe_count(), 3u);
  EXPECT_NE(mac_.schedule().get(0), nullptr);  // EB
  EXPECT_NE(mac_.schedule().get(1), nullptr);  // common
  EXPECT_NE(mac_.schedule().get(2), nullptr);  // unicast
}

TEST_F(OrchestraTest, EbTxCellAtOwnHash) {
  sf_.start(true);
  sf_.on_associated();
  const auto& eb_sf = *mac_.schedule().get(0);
  const auto slot = OrchestraSf::hash(10, sf_.config().eb_slotframe_length);
  ASSERT_EQ(eb_sf.cells_at(slot).size(), 1u);
  EXPECT_TRUE(eb_sf.cells_at(slot)[0].is_tx());
}

TEST_F(OrchestraTest, CommonCellIsSharedBroadcast) {
  sf_.start(true);
  sf_.on_associated();
  const auto& common = *mac_.schedule().get(1);
  ASSERT_EQ(common.cells_at(0).size(), 1u);
  const Cell& c = common.cells_at(0)[0];
  EXPECT_TRUE(c.is_tx());
  EXPECT_TRUE(c.is_rx());
  EXPECT_TRUE(c.is_shared());
  EXPECT_EQ(c.neighbor, kBroadcastId);
}

TEST_F(OrchestraTest, UnicastRxAtOwnHash) {
  sf_.start(true);
  sf_.on_associated();
  const auto& unicast = *mac_.schedule().get(2);
  const auto slot = OrchestraSf::hash(10, sf_.config().unicast_slotframe_length);
  ASSERT_EQ(unicast.cells_at(slot).size(), 1u);
  EXPECT_TRUE(unicast.cells_at(slot)[0].is_rx());
}

TEST_F(OrchestraTest, ParentChangeInstallsTxCell) {
  sf_.start(false);
  sf_.on_associated();
  sf_.on_parent_changed(kNoNode, 3);
  const auto& unicast = *mac_.schedule().get(2);
  const auto slot = OrchestraSf::hash(3, sf_.config().unicast_slotframe_length);
  bool found = false;
  for (const Cell& c : unicast.cells_at(slot))
    if (c.is_tx() && c.neighbor == 3) {
      found = true;
      EXPECT_TRUE(c.is_shared());  // contention-prone by design
    }
  EXPECT_TRUE(found);
}

TEST_F(OrchestraTest, ParentSwitchMovesTxCell) {
  sf_.start(false);
  sf_.on_associated();
  sf_.on_parent_changed(kNoNode, 3);
  sf_.on_parent_changed(3, 4);
  const auto& unicast = *mac_.schedule().get(2);
  int tx_to_3 = 0, tx_to_4 = 0;
  for (const Cell& c : unicast.all_cells()) {
    if (c.is_tx() && c.neighbor == 3) ++tx_to_3;
    if (c.is_tx() && c.neighbor == 4) ++tx_to_4;
  }
  EXPECT_EQ(tx_to_3, 0);
  EXPECT_EQ(tx_to_4, 1);
}

TEST_F(OrchestraTest, SiblingsCollideOnParentRxCell) {
  // The structural weakness GT-TSCH targets: every child's Tx cell toward
  // parent P lands on the same (slot, channel offset).
  OrchestraConfig cfg;
  const NodeId parent = 42;
  const auto slot = OrchestraSf::hash(parent, cfg.unicast_slotframe_length);
  // All senders compute the same coordinates regardless of their own id.
  for (NodeId child = 1; child < 6; ++child) {
    EXPECT_EQ(OrchestraSf::hash(parent, cfg.unicast_slotframe_length), slot);
  }
}

TEST_F(OrchestraTest, AdvertisesNoFreeRx) {
  EXPECT_EQ(sf_.advertised_free_rx(), 0);  // no 6P, nothing to advertise
}

TEST_F(OrchestraTest, EbInfoGatedOnJoin) {
  sf_.start(false);
  EXPECT_FALSE(sf_.eb_info().has_value());  // not joined yet
}

TEST_F(OrchestraTest, RootEbInfoAvailable) {
  sf_.start(true);
  rpl_.start_as_root();
  const auto eb = sf_.eb_info();
  ASSERT_TRUE(eb.has_value());
  EXPECT_FALSE(eb->has_family_channel);
  EXPECT_EQ(eb->join_priority, 0);
}

TEST_F(OrchestraTest, ChannelHashVariantSpreadsOffsets) {
  OrchestraConfig cfg;
  cfg.unicast_channel_hash = true;
  OrchestraSf sf(mac_, rpl_, cfg);
  sf.start(true);
  rpl_.start_as_root();
  sf.on_associated();
  const auto& unicast = *mac_.schedule().get(2);
  for (const Cell& c : unicast.all_cells()) {
    EXPECT_GE(c.channel_offset, 3);
    EXPECT_LT(c.channel_offset, cfg.num_channel_offsets);
  }
}

}  // namespace
}  // namespace gttsch
