// Worker-budget machinery (util/concurrency): the pure resolution rules
// behind GTTSCH_JOBS, the campaign-vs-island reservation arithmetic that
// keeps jobs x islands within the machine, and the WorkerPool dispatch
// cycle the island scheduler reuses phase after phase.
#include "util/concurrency.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

namespace gttsch {
namespace {

// --- resolve_worker_count -------------------------------------------------

TEST(ResolveWorkerCount, ExplicitRequestWinsOverEverything) {
  EXPECT_EQ(resolve_worker_count(4, 16, "8"), 4);
  EXPECT_EQ(resolve_worker_count(1, 0, nullptr), 1);
}

TEST(ResolveWorkerCount, EnvOverrideWinsOverHardware) {
  EXPECT_EQ(resolve_worker_count(0, 16, "3"), 3);
}

TEST(ResolveWorkerCount, MalformedEnvFallsThroughToHardware) {
  EXPECT_EQ(resolve_worker_count(0, 8, "zero"), 8);
  EXPECT_EQ(resolve_worker_count(0, 8, "-2"), 8);
  EXPECT_EQ(resolve_worker_count(0, 8, "0"), 8);
}

TEST(ResolveWorkerCount, ZeroHardwareReportClampsToOneWorker) {
  // The standard permits hardware_concurrency() == 0 ("not computable").
  // The campaign runner used to trust it and would spawn zero workers —
  // the pool would be created empty and no job would ever run.
  EXPECT_EQ(resolve_worker_count(0, 0, nullptr), 1);
  EXPECT_EQ(resolve_worker_count(0, 0, "bogus"), 1);
}

TEST(ResolveWorkerCount, DefaultWorkerCountNeverReturnsZero) {
  // Whatever this machine reports, the live wrapper obeys the same floor.
  EXPECT_GE(default_worker_count(), 1);
  EXPECT_EQ(default_worker_count(7), 7);
}

// --- reservation arithmetic ----------------------------------------------

TEST(WorkerReservation, ReservationIsScopedAndStacks) {
  const int base = reserved_workers();
  {
    WorkerReservation outer(4);
    EXPECT_EQ(reserved_workers(), base + 4);
    {
      WorkerReservation inner(2);
      EXPECT_EQ(reserved_workers(), base + 6);
    }
    EXPECT_EQ(reserved_workers(), base + 4);
  }
  EXPECT_EQ(reserved_workers(), base);
}

TEST(AvailableIslandWorkers, SequentialRequestsStaySequential) {
  EXPECT_EQ(available_island_workers(0), 1);
  EXPECT_EQ(available_island_workers(1), 1);
  EXPECT_EQ(available_island_workers(-3), 1);
}

TEST(AvailableIslandWorkers, CampaignReservationBoundsTheProduct) {
  // The oversubscription contract: with a campaign of `jobs` workers
  // reserved, each run's island lanes are clamped so that
  // jobs x islands <= hardware threads.
  const unsigned hw = std::thread::hardware_concurrency();
  const int hardware = hw > 0 ? static_cast<int>(hw) : 1;

  {
    // Reserve the whole machine (as a campaign sized by GTTSCH_JOBS =
    // hardware would): island runs must fall back to sequential.
    WorkerReservation campaign(hardware);
    EXPECT_EQ(available_island_workers(64), 1);
  }
  {
    // Half the machine reserved: each run gets at most the other half.
    WorkerReservation campaign(2);
    const int granted = available_island_workers(1 << 20);
    EXPECT_GE(granted, 1);
    EXPECT_LE(2 * granted, hardware < 2 ? 2 : hardware);
  }
  // No reservation: the request is still clamped to the machine.
  const int unreserved = available_island_workers(1 << 20);
  EXPECT_GE(unreserved, 1);
  EXPECT_LE(unreserved, hardware);
  // And a modest request is granted outright.
  EXPECT_EQ(available_island_workers(2), hardware >= 2 ? 2 : 1);
}

// --- WorkerPool -----------------------------------------------------------

TEST(WorkerPool, RunsEveryLaneExactlyOnceWithCallerAsLaneZero) {
  WorkerPool pool(4);
  ASSERT_EQ(pool.lanes(), 4);

  std::mutex mutex;
  std::vector<int> lanes_seen;
  std::thread::id lane0_thread;
  pool.run(4, [&](int lane) {
    std::lock_guard<std::mutex> lock(mutex);
    lanes_seen.push_back(lane);
    if (lane == 0) lane0_thread = std::this_thread::get_id();
  });

  EXPECT_EQ(lanes_seen.size(), 4u);
  EXPECT_EQ(std::set<int>(lanes_seen.begin(), lanes_seen.end()),
            (std::set<int>{0, 1, 2, 3}));
  // The caller itself takes lane 0 — the pool never idles the dispatching
  // thread while a helper works.
  EXPECT_EQ(lane0_thread, std::this_thread::get_id());
}

TEST(WorkerPool, ReusableAcrossManyDispatchGenerations) {
  // The island scheduler dispatches one run() per parallel phase —
  // thousands per simulation. The pool must hand off cleanly every time,
  // including when fewer lanes are requested than exist.
  WorkerPool pool(3);
  std::atomic<int> total{0};
  for (int phase = 0; phase < 500; ++phase) {
    const int n = 1 + (phase % 3);
    pool.run(n, [&](int lane) {
      ASSERT_LT(lane, n);
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  // 500 phases of 1, 2, 3, 1, 2, 3, ... lanes.
  EXPECT_EQ(total.load(), 500 / 3 * 6 + 1 + 2);
}

TEST(WorkerPool, RunIsABarrierForLaneWrites) {
  // Everything lanes wrote must be visible to the caller after run()
  // returns (the happens-before edge the simulator's phase loop relies
  // on to read island heaps without extra synchronization).
  WorkerPool pool(4);
  std::vector<int> slots(4, 0);
  for (int round = 1; round <= 100; ++round) {
    pool.run(4, [&, round](int lane) { slots[static_cast<std::size_t>(lane)] = round; });
    for (const int v : slots) ASSERT_EQ(v, round);
  }
}

TEST(WorkerPool, SingleLaneRunExecutesInline) {
  WorkerPool pool(1);
  EXPECT_EQ(pool.lanes(), 1);
  std::thread::id seen;
  pool.run(5, [&](int lane) {
    EXPECT_EQ(lane, 0);
    seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, std::this_thread::get_id());
}

}  // namespace
}  // namespace gttsch
