// Live-schedule conformance: after long runs under various loads and
// seeds, every node's installed schedule must satisfy structural
// invariants (single-radio slots, layout partitioning, channel-offset
// validity, Section III channel properties), and the network-level
// outcome must be robust across seeds (parameterized sweep).
#include <gtest/gtest.h>

#include <set>

#include "core/gt_tsch_sf.hpp"
#include "core/tx_alloc.hpp"
#include "scenario/experiment.hpp"
#include "scenario/network.hpp"

namespace gttsch {
namespace {

using namespace literals;

/// GT-specific assertions reach the concrete SF through the common
/// interface; nullptr when the node runs a different scheduler.
const GtTschSf* gt_sf(const Node& n) {
  return dynamic_cast<const GtTschSf*>(&n.sf());
}

struct SweepCase {
  std::uint64_t seed;
  double ppm;
};

class GtConformance : public ::testing::TestWithParam<SweepCase> {
 protected:
  static NodeStackConfig config(double ppm) {
    ScenarioConfig sc;
    sc.scheduler = "gt-tsch";
    sc.traffic_ppm = ppm;
    auto nc = sc.make_node_config();
    nc.app_start = 60_s;
    nc.app_end = 0;
    return nc;
  }
};

TEST_P(GtConformance, ScheduleInvariantsAfterLongRun) {
  const SweepCase c = GetParam();
  const auto topo = build_multi_dodag(1, 7, 30.0);
  Network net(c.seed, std::make_unique<UnitDiskModel>(40.0, 1.0, 1.6), topo,
              config(c.ppm), nullptr);
  net.start();
  net.sim().run_until(420_s);
  ASSERT_TRUE(net.fully_formed());

  SlotframeLayout layout({32, 4, 3});
  for (const auto& [id, node] : net.nodes()) {
    const Slotframe* sf = node->mac().schedule().get(0);
    ASSERT_NE(sf, nullptr) << "node " << id;
    EXPECT_EQ(sf->length(), 32);

    // Single radio: at most one cell per slot offset.
    for (std::uint16_t s = 0; s < sf->length(); ++s)
      EXPECT_LE(sf->cells_at(s).size(), 1u) << "node " << id << " slot " << s;

    for (const Cell& cell : sf->all_cells()) {
      // Channel offsets within the hopping space.
      EXPECT_LT(cell.channel_offset, 8) << "node " << id;
      // Broadcast cells exactly at layout offsets, on f_bcast.
      if (cell.neighbor == kBroadcastId && cell.channel_offset == 0) {
        EXPECT_TRUE(layout.is_broadcast_slot(cell.slot_offset)) << "node " << id;
        EXPECT_TRUE(cell.is_shared());
      }
      // Negotiated (data/6P) cells never sit on broadcast or shared slots.
      if (cell.neighbor != kBroadcastId) {
        EXPECT_FALSE(layout.is_broadcast_slot(cell.slot_offset))
            << "node " << id << " slot " << cell.slot_offset;
        EXPECT_FALSE(layout.is_shared_slot(cell.slot_offset))
            << "node " << id << " slot " << cell.slot_offset;
      }
    }

    // Section V rules hold on every non-root forwarder.
    if (!node->is_root()) {
      EXPECT_TRUE(TxSlotAllocator::tx_exceeds_rx(*sf)) << "node " << id;
      EXPECT_TRUE(TxSlotAllocator::rx_interleaved(*sf)) << "node " << id;
    }
  }

  // Section III: family channels distinct among any node's children.
  for (const auto& [id, node] : net.nodes()) {
    (void)id;
    std::set<ChannelOffset> child_channels;
    for (const auto& [cid, child] : net.nodes()) {
      if (child->is_root() || child->rpl().parent() != node->id()) continue;
      const auto* csf = gt_sf(*child);
      ASSERT_NE(csf, nullptr);
      if (csf->family_channel() == kNoChannel) continue;
      EXPECT_TRUE(child_channels.insert(csf->family_channel()).second)
          << "children of " << node->id() << " share a family channel";
    }
  }
}

TEST_P(GtConformance, PdrRobustAcrossSeeds) {
  const SweepCase c = GetParam();
  ScenarioConfig sc;
  sc.scheduler = "gt-tsch";
  sc.dodag_count = 1;
  sc.nodes_per_dodag = 7;
  sc.traffic_ppm = c.ppm;
  sc.warmup = 180_s;
  sc.measure = 180_s;
  sc.seed = c.seed;
  const auto r = run_scenario(sc);
  EXPECT_TRUE(r.fully_formed) << "seed " << c.seed;
  EXPECT_GT(r.metrics.pdr_percent, 95.0) << "seed " << c.seed << " ppm " << c.ppm;
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndLoads, GtConformance,
    ::testing::Values(SweepCase{201, 30}, SweepCase{202, 30}, SweepCase{203, 120},
                      SweepCase{204, 120}, SweepCase{205, 165}, SweepCase{206, 165},
                      SweepCase{207, 75}, SweepCase{208, 75}));

TEST(OrchestraConformance, ScheduleStableUnderLoad) {
  ScenarioConfig sc;
  sc.scheduler = "orchestra";
  sc.traffic_ppm = 120.0;
  auto nc = sc.make_node_config();
  nc.app_start = 60_s;
  nc.app_end = 0;
  const auto topo = build_multi_dodag(1, 7, 30.0);
  Network net(301, std::make_unique<UnitDiskModel>(40.0, 1.0, 1.6), topo, nc, nullptr);
  net.start();
  net.sim().run_until(420_s);
  ASSERT_TRUE(net.fully_formed());
  for (const auto& [id, node] : net.nodes()) {
    const auto& sched = node->mac().schedule();
    ASSERT_EQ(sched.slotframe_count(), 3u) << "node " << id;
    // Autonomous schedules: cell counts never grow with load.
    EXPECT_LE(sched.total_cells(), 5u) << "node " << id;
    // Exactly one rx cell in the unicast slotframe, at the node's hash.
    const Slotframe* unicast = sched.get(2);
    ASSERT_NE(unicast, nullptr);
    int rx = 0;
    for (const Cell& cell : unicast->all_cells())
      if (cell.is_rx() && !cell.is_tx()) ++rx;
    EXPECT_EQ(rx, 1) << "node " << id;
  }
}

}  // namespace
}  // namespace gttsch
