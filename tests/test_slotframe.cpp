// Slotframe-layout tests (Section IV): broadcast slot spreading, shared
// blocks by level parity, negotiable pool partition.
#include <gtest/gtest.h>

#include <set>

#include "core/slotframe_layout.hpp"

namespace gttsch {
namespace {

TEST(Layout, PaperExampleBroadcastOffsets) {
  // m=20, k=5 -> {0,4,8,12,16} (Section IV rule 1).
  SlotframeLayout layout({20, 5, 2});
  EXPECT_EQ(layout.broadcast_offsets(), (std::vector<std::uint16_t>{0, 4, 8, 12, 16}));
}

TEST(Layout, DefaultTableIIConfig) {
  SlotframeLayout layout({32, 4, 3});
  EXPECT_EQ(layout.broadcast_offsets(), (std::vector<std::uint16_t>{0, 8, 16, 24}));
  EXPECT_EQ(layout.shared_offsets(0).size(), 3u);
  EXPECT_EQ(layout.shared_offsets(1).size(), 3u);
}

TEST(Layout, PartitionIsDisjointAndComplete) {
  SlotframeLayout layout({32, 4, 3});
  std::set<std::uint16_t> all;
  std::size_t total = 0;
  for (auto s : layout.broadcast_offsets()) {
    all.insert(s);
    ++total;
  }
  for (auto s : layout.shared_offsets(0)) {
    all.insert(s);
    ++total;
  }
  for (auto s : layout.shared_offsets(1)) {
    all.insert(s);
    ++total;
  }
  for (auto s : layout.negotiable_offsets()) {
    all.insert(s);
    ++total;
  }
  EXPECT_EQ(all.size(), 32u);   // covers every slot
  EXPECT_EQ(total, 32u);        // no overlaps
}

TEST(Layout, SharedBlocksDisjointAcrossParity) {
  SlotframeLayout layout({32, 4, 3});
  for (auto even : layout.shared_offsets(0))
    for (auto odd : layout.shared_offsets(1)) EXPECT_NE(even, odd);
}

TEST(Layout, ParityRepeatsEveryTwoLevels) {
  SlotframeLayout layout({32, 4, 3});
  EXPECT_EQ(layout.shared_offsets(0), layout.shared_offsets(2));
  EXPECT_EQ(layout.shared_offsets(1), layout.shared_offsets(3));
}

TEST(Layout, SharedAvoidsBroadcastSlots) {
  // Tail slots can collide with broadcast offsets for small m/k; the
  // builder must skip them.
  SlotframeLayout layout({16, 4, 3});
  for (unsigned parity = 0; parity < 2; ++parity)
    for (auto s : layout.shared_offsets(parity)) EXPECT_FALSE(layout.is_broadcast_slot(s));
}

TEST(Layout, PredicatesConsistent) {
  SlotframeLayout layout({32, 4, 3});
  for (std::uint16_t s = 0; s < 32; ++s) {
    const bool b = layout.is_broadcast_slot(s);
    const bool sh = layout.is_shared_slot(s);
    EXPECT_FALSE(b && sh);
  }
  EXPECT_TRUE(layout.is_broadcast_slot(0));
  EXPECT_FALSE(layout.is_broadcast_slot(1));
}

class LayoutSweep : public ::testing::TestWithParam<std::uint16_t> {};

TEST_P(LayoutSweep, ScalesWithSlotframeLength) {
  const std::uint16_t m = GetParam();
  const std::uint16_t k = std::max<std::uint16_t>(2, m / 8);
  SlotframeLayout layout({m, k, 3});
  EXPECT_EQ(layout.length(), m);
  EXPECT_EQ(layout.broadcast_offsets().size(), k);
  // Broadcast slots uniformly spread: consecutive gaps equal floor(m/k).
  const auto& b = layout.broadcast_offsets();
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_EQ(b[i] - b[i - 1], m / k);
  // Negotiable pool is the remainder.
  EXPECT_EQ(layout.negotiable_offsets().size(),
            static_cast<std::size_t>(m) - k - 6);
}

INSTANTIATE_TEST_SUITE_P(Lengths, LayoutSweep,
                         ::testing::Values<std::uint16_t>(20, 32, 48, 64, 80));

TEST(Layout, RejectsOversubscribedConfig) {
  EXPECT_DEATH(SlotframeLayout({8, 4, 3}), "");  // 4 + 6 >= 8
}

}  // namespace
}  // namespace gttsch
