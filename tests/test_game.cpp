// Game-model tests: Eqs 2-8 building blocks, the closed-form optimum
// (Eq 15 / Algorithm 2), KKT conditions, and the queue EWMA (Eq 6).
// Property-style sweeps use parameterized tests over the state space.
#include <gtest/gtest.h>

#include <cmath>

#include "core/game/functions.hpp"
#include "core/game/queue_ewma.hpp"
#include "core/game/solver.hpp"

namespace gttsch::game {
namespace {

PlayerState base_state() {
  PlayerState p;
  p.rank = 512;
  p.rank_min = 256;
  p.min_step_of_rank = 256;
  p.etx = 1.5;
  p.queue_avg = 4;
  p.queue_max = 16;
  p.l_tx_min = 1;
  p.l_rx_parent = 10;
  return p;
}

TEST(RankTilde, OneHopPerfectLinkIsOne) {
  PlayerState p = base_state();
  p.rank = 512;  // root + 1 * 256
  EXPECT_DOUBLE_EQ(rank_tilde(p), 1.0);
}

TEST(RankTilde, DeeperNodesGetLess) {
  PlayerState p = base_state();
  p.rank = 512;
  const double one_hop = rank_tilde(p);
  p.rank = 768;
  const double two_hop = rank_tilde(p);
  p.rank = 1024;
  const double three_hop = rank_tilde(p);
  EXPECT_GT(one_hop, two_hop);
  EXPECT_GT(two_hop, three_hop);
  EXPECT_DOUBLE_EQ(two_hop, 0.5);
}

TEST(Utility, LogShapeAndMonotonicity) {
  const PlayerState p = base_state();
  EXPECT_DOUBLE_EQ(utility(p, 0.0), 0.0);  // log(1) = 0
  EXPECT_GT(utility(p, 5.0), utility(p, 2.0));
  EXPECT_GT(utility_d1(p, 1.0), 0.0);
}

TEST(Utility, StrictConcavity) {
  const PlayerState p = base_state();
  for (double s = 0.0; s <= 20.0; s += 0.5) EXPECT_LT(utility_d2(p, s), 0.0);
}

TEST(Utility, DerivativeMatchesFiniteDifference) {
  const PlayerState p = base_state();
  const double h = 1e-6;
  for (double s : {0.5, 2.0, 7.0}) {
    const double fd = (utility(p, s + h) - utility(p, s - h)) / (2 * h);
    EXPECT_NEAR(utility_d1(p, s), fd, 1e-5);
  }
}

TEST(LinkCost, ZeroOnPerfectLink) {
  PlayerState p = base_state();
  p.etx = 1.0;
  EXPECT_DOUBLE_EQ(link_cost(p, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(link_cost_d1(p), 0.0);
}

TEST(LinkCost, GrowsWithEtxAndSlots) {
  PlayerState p = base_state();
  p.etx = 2.0;
  EXPECT_DOUBLE_EQ(link_cost(p, 3.0), 3.0);
  p.etx = 3.0;
  EXPECT_DOUBLE_EQ(link_cost(p, 3.0), 6.0);
}

TEST(QueueCost, FullQueueCostsNothing) {
  PlayerState p = base_state();
  p.queue_avg = p.queue_max;
  EXPECT_DOUBLE_EQ(queue_cost(p, 5.0), 0.0);
}

TEST(QueueCost, EmptyQueueCostsMost) {
  PlayerState p = base_state();
  p.queue_avg = 0;
  EXPECT_DOUBLE_EQ(queue_cost(p, 5.0), 5.0);
  p.queue_avg = 8;  // half full
  EXPECT_DOUBLE_EQ(queue_cost(p, 5.0), 2.5);
}

TEST(Payoff, CombinesTerms) {
  const Weights w{2.0, 3.0, 4.0};
  const PlayerState p = base_state();
  const double s = 2.5;
  EXPECT_NEAR(payoff(w, p, s),
              2.0 * utility(p, s) - 3.0 * link_cost(p, s) - 4.0 * queue_cost(p, s), 1e-12);
}

TEST(Payoff, SecondDerivativeNegativeEverywhere) {
  const Weights w{4, 1, 1};
  const PlayerState p = base_state();
  for (double s = 0.0; s < 30.0; s += 0.25) EXPECT_LT(payoff_d2(w, p, s), 0.0);
}

TEST(Solver, InteriorOptimumMatchesEq15) {
  const Weights w{4, 1, 1};
  PlayerState p = base_state();
  // Eq 15: X = alpha*rt / (gamma*(1 - Q/Qmax) + beta*(ETX-1)) - 1
  const double rt = rank_tilde(p);
  const double expected = 4.0 * rt / (1.0 * (1.0 - 4.0 / 16.0) + 1.0 * 0.5) - 1.0;
  EXPECT_NEAR(unconstrained_optimum(w, p), expected, 1e-12);
  ASSERT_GT(expected, p.l_tx_min);
  ASSERT_LT(expected, p.l_rx_parent);
  EXPECT_NEAR(optimal_tx_slots(w, p), expected, 1e-12);
}

TEST(Solver, GradientVanishesAtInteriorOptimum) {
  const Weights w{4, 1, 1};
  const PlayerState p = base_state();
  const double s = optimal_tx_slots(w, p);
  EXPECT_NEAR(payoff_d1(w, p, s), 0.0, 1e-9);
}

TEST(Solver, ClampsToLowerBound) {
  const Weights w{1, 1, 1};
  PlayerState p = base_state();
  p.etx = 6.0;  // terrible link: optimum near 0 -> clamp up to l_tx_min
  p.l_tx_min = 3;
  EXPECT_DOUBLE_EQ(optimal_tx_slots(w, p), 3.0);
}

TEST(Solver, ClampsToUpperBound) {
  const Weights w{50, 1, 1};
  PlayerState p = base_state();
  p.etx = 1.0;
  p.queue_avg = 0;
  EXPECT_DOUBLE_EQ(optimal_tx_slots(w, p), p.l_rx_parent);
}

TEST(Solver, DegenerateSetRequestsParentCapacity) {
  const Weights w{4, 1, 1};
  PlayerState p = base_state();
  p.l_tx_min = 8;
  p.l_rx_parent = 5;  // parent can give less than we need
  EXPECT_DOUBLE_EQ(optimal_tx_slots(w, p), 5.0);
}

TEST(Solver, ZeroMarginalCostTakesUpperBound) {
  const Weights w{4, 1, 1};
  PlayerState p = base_state();
  p.etx = 1.0;
  p.queue_avg = p.queue_max;  // both cost slopes vanish
  EXPECT_TRUE(std::isinf(unconstrained_optimum(w, p)));
  EXPECT_DOUBLE_EQ(optimal_tx_slots(w, p), p.l_rx_parent);
}

TEST(Solver, IntegerOptimumIsArgmaxOverIntegers) {
  const Weights w{4, 1, 1};
  const PlayerState p = base_state();
  const int s = optimal_tx_slots_int(w, p);
  const int lo = static_cast<int>(p.l_tx_min);
  const int hi = static_cast<int>(p.l_rx_parent);
  for (int k = lo; k <= hi; ++k)
    EXPECT_GE(payoff(w, p, s), payoff(w, p, k) - 1e-12) << "better integer at " << k;
}

TEST(Solver, IntegerRespectsDegenerateBounds) {
  const Weights w{4, 1, 1};
  PlayerState p = base_state();
  p.l_tx_min = 7;
  p.l_rx_parent = 4;
  EXPECT_EQ(optimal_tx_slots_int(w, p), 4);
}

TEST(Solver, KktHoldsAtInteriorPoint) {
  const Weights w{4, 1, 1};
  const PlayerState p = base_state();
  const KktPoint k = solve_kkt(w, p);
  EXPECT_TRUE(kkt_satisfied(w, p, k));
  EXPECT_NEAR(k.w1, 0.0, 1e-9);
  EXPECT_NEAR(k.w2, 0.0, 1e-9);
}

TEST(Solver, KktMultiplierActiveAtLowerBound) {
  const Weights w{1, 1, 1};
  PlayerState p = base_state();
  p.etx = 6.0;
  p.l_tx_min = 3;
  const KktPoint k = solve_kkt(w, p);
  EXPECT_TRUE(kkt_satisfied(w, p, k));
  EXPECT_GT(k.w1, 0.0);
  EXPECT_DOUBLE_EQ(k.w2, 0.0);
}

TEST(Solver, KktMultiplierActiveAtUpperBound) {
  const Weights w{50, 1, 1};
  PlayerState p = base_state();
  p.etx = 1.0;
  p.queue_avg = 0;
  const KktPoint k = solve_kkt(w, p);
  EXPECT_TRUE(kkt_satisfied(w, p, k));
  EXPECT_GT(k.w2, 0.0);
  EXPECT_DOUBLE_EQ(k.w1, 0.0);
}

// --- Property sweep: the closed form equals Algorithm 2 for a grid of
// states, and KKT conditions always hold. ---------------------------------

struct SweepCase {
  double alpha, beta, gamma, rank_hops, etx, queue_frac;
  double l_tx_min, l_rx_parent;
};

class SolverSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(SolverSweep, Eq15AndKkt) {
  const SweepCase c = GetParam();
  const Weights w{c.alpha, c.beta, c.gamma};
  PlayerState p;
  p.rank = 256 + 256 * c.rank_hops;
  p.rank_min = 256;
  p.min_step_of_rank = 256;
  p.etx = c.etx;
  p.queue_max = 16;
  p.queue_avg = c.queue_frac * p.queue_max;
  p.l_tx_min = c.l_tx_min;
  p.l_rx_parent = c.l_rx_parent;

  const double s = optimal_tx_slots(w, p);
  // Always inside the (possibly degenerate) strategy set.
  EXPECT_LE(s, std::max(p.l_rx_parent, p.l_tx_min) + 1e-9);
  if (p.l_rx_parent > p.l_tx_min) {
    EXPECT_GE(s, p.l_tx_min - 1e-9);
    // Argmax property over a dense sample of the interval.
    const double v_star = payoff(w, p, s);
    for (int k = 0; k <= 100; ++k) {
      const double cand = p.l_tx_min + (p.l_rx_parent - p.l_tx_min) * k / 100.0;
      EXPECT_LE(payoff(w, p, cand), v_star + 1e-9);
    }
    EXPECT_TRUE(kkt_satisfied(w, p, solve_kkt(w, p)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    StateGrid, SolverSweep,
    ::testing::Values(
        SweepCase{4, 1, 1, 1, 1.0, 0.00, 0, 8}, SweepCase{4, 1, 1, 1, 1.0, 0.50, 0, 8},
        SweepCase{4, 1, 1, 1, 2.0, 0.25, 1, 6}, SweepCase{4, 1, 1, 2, 1.2, 0.75, 2, 12},
        SweepCase{4, 1, 1, 3, 3.0, 0.10, 0, 4}, SweepCase{1, 2, 3, 1, 1.5, 0.33, 1, 9},
        SweepCase{8, 1, 2, 2, 2.5, 0.90, 3, 20}, SweepCase{2, 4, 1, 1, 4.0, 0.60, 0, 5},
        SweepCase{6, 1, 1, 4, 1.1, 0.20, 1, 15}, SweepCase{4, 3, 2, 2, 1.8, 0.45, 2, 2},
        SweepCase{4, 1, 1, 1, 1.0, 1.00, 0, 7}, SweepCase{10, 5, 5, 5, 5.0, 0.50, 4, 10},
        SweepCase{4, 1, 1, 1, 1.0, 0.00, 6, 3}, SweepCase{3, 2, 1, 2, 2.2, 0.66, 0, 30}));

// --- Queue EWMA (Eq 6) -----------------------------------------------------

TEST(QueueEwma, FirstSampleInitializes) {
  QueueEwma q(0.7);
  EXPECT_FALSE(q.initialized());
  q.update(6);
  EXPECT_TRUE(q.initialized());
  EXPECT_DOUBLE_EQ(q.value(), 6.0);
}

TEST(QueueEwma, FollowsEq6) {
  QueueEwma q(0.7);
  q.update(10);
  q.update(0);
  EXPECT_DOUBLE_EQ(q.value(), 0.7 * 10.0);  // zeta*Q + (1-zeta)*0
  q.update(4);
  EXPECT_NEAR(q.value(), 0.7 * 7.0 + 0.3 * 4.0, 1e-12);
}

TEST(QueueEwma, ConvergesToConstantInput) {
  QueueEwma q(0.9);
  q.update(0);
  for (int i = 0; i < 300; ++i) q.update(5);
  EXPECT_NEAR(q.value(), 5.0, 0.01);
}

TEST(QueueEwma, SmoothsSpikes) {
  QueueEwma q(0.8);
  q.update(2);
  q.update(16);  // spike
  EXPECT_LT(q.value(), 6.0);
  EXPECT_GT(q.value(), 2.0);
}

TEST(QueueEwma, ResetClears) {
  QueueEwma q(0.5);
  q.update(8);
  q.reset();
  EXPECT_FALSE(q.initialized());
  EXPECT_DOUBLE_EQ(q.value(), 0.0);
}

}  // namespace
}  // namespace gttsch::game
