// The trace subsystem's contract: strict parsing (every malformed line
// rejected with its line number), lossless format/parse round trips,
// deterministic synthetic generators, and a TracePlayer that applies
// moves and failures to a live network.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "phy/dynamic_link.hpp"
#include "scenario/experiment.hpp"
#include "scenario/network.hpp"
#include "scenario/trace.hpp"
#include "sim/simulator.hpp"

namespace gttsch {
namespace {

using namespace literals;

// ---------------------------------------------------------------- parser --

TEST(TraceParser, ParsesEventsCommentsAndBlankLines) {
  const std::string text =
      "# a comment line\n"
      "\n"
      "10 move 3 12.5 -7.25   # trailing comment\n"
      "10 fail 4\n"
      "12.000001 move 3 13 -7\n";
  Trace trace;
  std::string error;
  ASSERT_TRUE(parse_trace(text, &trace, &error)) << error;
  ASSERT_EQ(trace.events.size(), 3u);

  EXPECT_EQ(trace.events[0].at, 10_s);
  EXPECT_EQ(trace.events[0].kind, TraceEventKind::kMove);
  EXPECT_EQ(trace.events[0].node, 3);
  EXPECT_DOUBLE_EQ(trace.events[0].pos.x, 12.5);
  EXPECT_DOUBLE_EQ(trace.events[0].pos.y, -7.25);
  EXPECT_EQ(trace.events[0].line, 3);

  EXPECT_EQ(trace.events[1].kind, TraceEventKind::kFail);
  EXPECT_EQ(trace.events[1].node, 4);
  EXPECT_EQ(trace.events[1].at, 10_s);

  EXPECT_EQ(trace.events[2].at, 12_s + 1);  // microsecond-exact timestamps
  EXPECT_TRUE(trace.has_failures());
}

TEST(TraceParser, ParsesGrammarV2LifecycleAndLinkEvents) {
  const std::string text =
      "10 fail 4\n"
      "15 revive 4\n"
      "20 prr 2 5 0.25\n"
      "25 pause 2 5\n"
      "30 resume 2 5\n";
  Trace trace;
  std::string error;
  ASSERT_TRUE(parse_trace(text, &trace, &error)) << error;
  ASSERT_EQ(trace.events.size(), 5u);

  EXPECT_EQ(trace.events[1].kind, TraceEventKind::kRevive);
  EXPECT_EQ(trace.events[1].node, 4);
  EXPECT_EQ(trace.events[1].at, 15_s);

  EXPECT_EQ(trace.events[2].kind, TraceEventKind::kPrr);
  EXPECT_EQ(trace.events[2].node, 2);
  EXPECT_EQ(trace.events[2].peer, 5);
  EXPECT_DOUBLE_EQ(trace.events[2].value, 0.25);

  EXPECT_EQ(trace.events[3].kind, TraceEventKind::kPause);
  EXPECT_EQ(trace.events[4].kind, TraceEventKind::kResume);
  EXPECT_EQ(trace.events[4].peer, 5);
  EXPECT_TRUE(trace.has_failures());
  EXPECT_TRUE(trace.needs_dynamic_model());
}

/// Every rejection must carry the 1-based number of the offending line.
struct BadTraceCase {
  const char* name;
  const char* text;
  const char* expect_in_error;
  int line;
};

class TraceParserRejects : public ::testing::TestWithParam<BadTraceCase> {};

TEST_P(TraceParserRejects, WithLineNumber) {
  const BadTraceCase& c = GetParam();
  Trace trace;
  std::string error;
  EXPECT_FALSE(parse_trace(c.text, &trace, &error)) << c.name;
  EXPECT_NE(error.find("line " + std::to_string(c.line)), std::string::npos)
      << c.name << ": error was '" << error << "'";
  EXPECT_NE(error.find(c.expect_in_error), std::string::npos)
      << c.name << ": error was '" << error << "'";
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TraceParserRejects,
    ::testing::Values(
        BadTraceCase{"malformed keyword", "5 wiggle 3 1 2\n", "unknown event", 1},
        BadTraceCase{"bare word", "# ok\nnonsense\n", "expected", 2},
        BadTraceCase{"move arity", "5 move 3 1\n", "move takes exactly", 1},
        BadTraceCase{"fail arity", "5 fail 3 9\n", "fail takes exactly", 1},
        BadTraceCase{"bad timestamp", "abc move 3 1 2\n", "bad timestamp", 1},
        BadTraceCase{"negative timestamp", "-5 move 3 1 2\n", "bad timestamp", 1},
        BadTraceCase{"huge timestamp", "1e12 move 3 1 2\n", "bad timestamp", 1},
        BadTraceCase{"non-monotonic", "10 move 3 1 2\n9 move 3 1 2\n",
                     "goes backwards", 2},
        BadTraceCase{"bad node id", "5 move abc 1 2\n", "bad node id", 1},
        BadTraceCase{"reserved node id", "5 fail 65535\n", "bad node id", 1},
        BadTraceCase{"bad coordinate", "5 move 3 east 2\n", "coordinate", 1},
        BadTraceCase{"out-of-range coordinate", "5 move 3 1 2e7\n", "coordinate", 1},
        BadTraceCase{"nan coordinate", "5 move 3 nan 2\n", "coordinate", 1},
        BadTraceCase{"move after fail", "5 fail 3\n9 move 3 1 2\n",
                     "already failed", 2},
        BadTraceCase{"double fail", "5 fail 3\n9 fail 3\n", "already failed", 2},
        BadTraceCase{"revive arity", "5 fail 3\n9 revive 3 7\n",
                     "revive takes exactly", 2},
        BadTraceCase{"revive without fail", "5 revive 3\n", "without a prior fail",
                     1},
        BadTraceCase{"revive not after fail", "5 fail 3\n5 revive 3\n",
                     "strictly after the failure on line 1", 2},
        BadTraceCase{"double revive", "5 fail 3\n9 revive 3\n10 revive 3\n",
                     "without a prior fail", 3},
        BadTraceCase{"prr arity", "5 prr 2 3\n", "prr takes exactly", 1},
        BadTraceCase{"prr value too large", "5 prr 2 3 1.5\n",
                     "not a number in [0, 1]", 1},
        BadTraceCase{"prr value negative", "5 prr 2 3 -0.1\n",
                     "not a number in [0, 1]", 1},
        BadTraceCase{"prr value nan", "5 prr 2 3 nan\n", "not a number in [0, 1]",
                     1},
        BadTraceCase{"prr self link", "5 prr 3 3 0.5\n",
                     "link endpoints must differ", 1},
        BadTraceCase{"prr on dead node", "5 fail 3\n9 prr 3 4 0.5\n",
                     "already failed", 2},
        BadTraceCase{"prr on dead peer", "5 fail 4\n9 prr 3 4 0.5\n",
                     "already failed", 2},
        BadTraceCase{"pause arity", "5 pause 2\n", "pause takes exactly", 1},
        BadTraceCase{"pause self link", "5 pause 3 3\n",
                     "link endpoints must differ", 1},
        BadTraceCase{"double pause", "5 pause 2 3\n9 pause 3 2\n",
                     "already paused on line 1", 2},
        BadTraceCase{"pause on dead node", "5 fail 2\n9 pause 2 3\n",
                     "already failed", 2},
        BadTraceCase{"resume arity", "5 resume 2 3 4\n", "resume takes exactly",
                     1},
        BadTraceCase{"resume without pause", "5 resume 2 3\n",
                     "without a matching pause", 1},
        BadTraceCase{"double resume", "5 pause 2 3\n9 resume 2 3\n10 resume 2 3\n",
                     "without a matching pause", 3}),
    [](const auto& info) {
      std::string name = info.param.name;
      for (char& ch : name)
        if (ch == ' ' || ch == '-') ch = '_';
      return name;
    });

TEST(TraceParser, CrlfLineEndingsParseIdenticallyToLf) {
  Trace lf, crlf;
  std::string error;
  ASSERT_TRUE(parse_trace("10 move 3 1.5 2\n10 fail 4\n", &lf, &error)) << error;
  ASSERT_TRUE(parse_trace("10 move 3 1.5 2\r\n10 fail 4\r\n", &crlf, &error)) << error;
  ASSERT_EQ(crlf.events.size(), lf.events.size());
  for (std::size_t i = 0; i < lf.events.size(); ++i) {
    EXPECT_TRUE(lf.events[i] == crlf.events[i]) << "event " << i;
  }
}

TEST(TraceParser, UnknownNodeRejectedAgainstTopology) {
  Trace trace;
  std::string error;
  ASSERT_TRUE(parse_trace("5 move 9 1 2\n", &trace, &error)) << error;

  TopologySpec topo;
  topo.nodes.push_back(NodeSpec{1, {0, 0}, true});
  topo.nodes.push_back(NodeSpec{2, {0, 30}, false});
  EXPECT_FALSE(validate_trace_nodes(trace, topo, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
  EXPECT_NE(error.find("unknown node id 9"), std::string::npos) << error;
}

TEST(TraceParser, MissingFileNamesThePath) {
  Trace trace;
  std::string error;
  EXPECT_FALSE(load_trace("/no/such/file.trace", &trace, &error));
  EXPECT_NE(error.find("/no/such/file.trace"), std::string::npos) << error;
}

// ------------------------------------------------------------ round trip --

ScenarioConfig generator_config(TraceKind kind) {
  ScenarioConfig sc;
  sc.dodag_count = 2;
  sc.nodes_per_dodag = 7;
  sc.warmup = 60_s;
  sc.measure = 120_s;
  sc.trace_kind = kind;
  sc.trace_seed = 7;
  sc.trace_movers = 4;
  sc.trace_speed_mps = 2.0;
  sc.trace_interval_s = 3.0;
  sc.trace_fail_count = 2;
  sc.trace_fail_at_s = 100.0;
  return sc;
}

class TraceGenerators : public ::testing::TestWithParam<TraceKind> {};

TEST_P(TraceGenerators, FormatParseRoundTripIsLossless) {
  const ScenarioConfig sc = generator_config(GetParam());
  Trace trace;
  std::string error;
  ASSERT_TRUE(sc.make_trace(sc.make_topology(), &trace, &error)) << error;
  ASSERT_FALSE(trace.empty());
  EXPECT_TRUE(trace.has_failures());

  Trace reparsed;
  ASSERT_TRUE(parse_trace(format_trace(trace), &reparsed, &error)) << error;
  ASSERT_EQ(reparsed.events.size(), trace.events.size());
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "event " << i);
    EXPECT_TRUE(trace.events[i] == reparsed.events[i]);
  }
}

TEST_P(TraceGenerators, SameSeedSameStreamDifferentSeedDiverges) {
  const ScenarioConfig sc = generator_config(GetParam());
  const TopologySpec topo = sc.make_topology();
  Trace a, b;
  std::string error;
  ASSERT_TRUE(sc.make_trace(topo, &a, &error)) << error;
  ASSERT_TRUE(sc.make_trace(topo, &b, &error)) << error;
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_TRUE(a.events[i] == b.events[i]) << "event " << i;
  }

  ScenarioConfig other = sc;
  other.trace_seed = 8;
  Trace c;
  ASSERT_TRUE(other.make_trace(topo, &c, &error)) << error;
  bool any_difference = c.events.size() != a.events.size();
  for (std::size_t i = 0; !any_difference && i < a.events.size(); ++i) {
    any_difference = !(a.events[i] == c.events[i]);
  }
  EXPECT_TRUE(any_difference);
}

TEST_P(TraceGenerators, EventsStayInWindowAndRespectFailures) {
  const ScenarioConfig sc = generator_config(GetParam());
  Trace trace;
  std::string error;
  ASSERT_TRUE(sc.make_trace(sc.make_topology(), &trace, &error)) << error;

  std::map<NodeId, TimeUs> failed_at;
  TimeUs last = 0;
  int fails = 0;
  for (const TraceEvent& e : trace.events) {
    EXPECT_GE(e.at, last);  // time-ordered
    last = e.at;
    EXPECT_GT(e.at, sc.warmup);
    EXPECT_LT(e.at, sc.warmup + sc.measure);
    const auto dead = failed_at.find(e.node);
    if (e.kind == TraceEventKind::kRevive) {
      if (dead == failed_at.end()) {
        ADD_FAILURE() << "revive of live node " << e.node;
      } else {
        EXPECT_GT(e.at, dead->second);  // strictly after the failure
        failed_at.erase(dead);
      }
      continue;
    }
    if (dead != failed_at.end()) {
      ADD_FAILURE() << "event for node " << e.node << " after its failure";
    }
    if (e.kind == TraceEventKind::kFail) {
      failed_at[e.node] = e.at;
      ++fails;
    }
  }
  // Walk/waypoint kill each victim exactly once; crashloop re-crashes on
  // every cycle, so it can only produce more failures, never fewer.
  if (GetParam() == TraceKind::kCrashloop) {
    EXPECT_GE(fails, sc.trace_fail_count);
  } else {
    EXPECT_EQ(fails, sc.trace_fail_count);
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, TraceGenerators,
                         ::testing::Values(TraceKind::kRandomWalk,
                                           TraceKind::kRandomWaypoint,
                                           TraceKind::kCrashloop),
                         [](const auto& info) {
                           switch (info.param) {
                             case TraceKind::kRandomWalk: return "random_walk";
                             case TraceKind::kRandomWaypoint:
                               return "random_waypoint";
                             default: return "crashloop";
                           }
                         });

TEST(TraceGenerator, WaypointStepsBoundedBySpeedTimesInterval) {
  const ScenarioConfig sc = generator_config(TraceKind::kRandomWaypoint);
  Trace trace;
  std::string error;
  ASSERT_TRUE(sc.make_trace(sc.make_topology(), &trace, &error)) << error;
  std::map<NodeId, Position> last;
  const double bound = sc.trace_speed_mps * sc.trace_interval_s * (1 + 1e-9);
  for (const TraceEvent& e : trace.events) {
    if (e.kind != TraceEventKind::kMove) continue;
    const auto prev = last.find(e.node);
    if (prev != last.end()) {
      const double dx = e.pos.x - prev->second.x;
      const double dy = e.pos.y - prev->second.y;
      EXPECT_LE(dx * dx + dy * dy, bound * bound);
    }
    last[e.node] = e.pos;
  }
}

TEST(TraceGenerator, CrashloopAlternatesFailReviveWithConfiguredTiming) {
  ScenarioConfig sc = generator_config(TraceKind::kCrashloop);
  sc.trace_down_s = 10.0;
  sc.trace_cycle_s = 30.0;
  Trace trace;
  std::string error;
  ASSERT_TRUE(sc.make_trace(sc.make_topology(), &trace, &error)) << error;
  ASSERT_FALSE(trace.empty());

  const TimeUs down_us = 10_s;
  const TimeUs cycle_us = 30_s;
  const TimeUs end = sc.warmup + sc.measure;
  // Per node the stream must read fail, revive, fail, revive, ... with
  // revive = fail + down and the next fail one cycle after the previous.
  std::map<NodeId, std::vector<TraceEvent>> per_node;
  for (const TraceEvent& e : trace.events) {
    EXPECT_TRUE(e.kind == TraceEventKind::kFail ||
                e.kind == TraceEventKind::kRevive)
        << "crashloop generated a non-lifecycle event";
    EXPECT_LT(e.at, end);
    per_node[e.node].push_back(e);
  }
  EXPECT_EQ(per_node.size(), static_cast<std::size_t>(sc.trace_fail_count));
  for (const auto& [id, events] : per_node) {
    SCOPED_TRACE(::testing::Message() << "node " << id);
    ASSERT_GE(events.size(), 2u);
    for (std::size_t i = 0; i < events.size(); ++i) {
      const bool expect_fail = i % 2 == 0;
      EXPECT_EQ(events[i].kind, expect_fail ? TraceEventKind::kFail
                                            : TraceEventKind::kRevive);
      if (i == 0) continue;
      if (expect_fail) {
        EXPECT_EQ(events[i].at, events[i - 2].at + cycle_us);
      } else {
        EXPECT_EQ(events[i].at, events[i - 1].at + down_us);
      }
    }
  }
}

// ----------------------------------------------------- config validation --

TEST(TraceConfig, FileKindWithoutPathIsRejected) {
  ScenarioConfig sc;
  sc.trace_kind = TraceKind::kFile;
  std::string error;
  EXPECT_FALSE(sc.validate_trace(&error));
  EXPECT_NE(error.find("trace=PATH"), std::string::npos) << error;
}

TEST(TraceConfig, BadGeneratorParamsAreRejected) {
  ScenarioConfig sc;
  sc.trace_kind = TraceKind::kRandomWalk;
  sc.trace_interval_s = 0.0;
  std::string error;
  EXPECT_FALSE(sc.validate_trace(&error));
  EXPECT_NE(error.find("trace_interval_s"), std::string::npos) << error;

  sc.trace_interval_s = 2.0;
  sc.trace_movers = -1;
  EXPECT_FALSE(sc.validate_trace(&error));
  EXPECT_NE(error.find("trace_movers"), std::string::npos) << error;
}

TEST(TraceConfig, BadCrashloopParamsAreRejected) {
  ScenarioConfig sc;
  sc.trace_kind = TraceKind::kCrashloop;
  sc.trace_down_s = 0.0;
  std::string error;
  EXPECT_FALSE(sc.validate_trace(&error));
  EXPECT_NE(error.find("trace_down_s"), std::string::npos) << error;

  sc.trace_down_s = 40.0;
  sc.trace_cycle_s = 40.0;  // must strictly exceed the down time
  EXPECT_FALSE(sc.validate_trace(&error));
  EXPECT_NE(error.find("trace_cycle_s must exceed trace_down_s"),
            std::string::npos)
      << error;
}

TEST(TraceConfig, NoneKindIsAlwaysValidAndEmpty) {
  ScenarioConfig sc;  // defaults: kNone
  std::string error;
  EXPECT_TRUE(sc.validate_trace(&error));
  Trace trace;
  ASSERT_TRUE(sc.make_trace(sc.make_topology(), &trace, &error)) << error;
  EXPECT_TRUE(trace.empty());
}

// ----------------------------------------------------------- trace player --

TEST(TracePlayerTest, AppliesMovesAndFailuresAtTheirInstants) {
  TopologySpec topo;
  topo.nodes.push_back(NodeSpec{1, {0, 0}, true});
  topo.nodes.push_back(NodeSpec{2, {0, 30}, false});
  topo.nodes.push_back(NodeSpec{3, {0, -30}, false});

  ScenarioConfig sc;
  auto nc = sc.make_node_config();
  DynamicLinkModel* model = nullptr;
  const Network::LinkModelFactory factory =
      [&model](Simulator& sim) -> std::unique_ptr<LinkModel> {
    auto dynamic = std::make_unique<DynamicLinkModel>(
        sim, std::make_unique<UnitDiskModel>(40.0, 1.0, 1.6));
    model = dynamic.get();
    return dynamic;
  };
  Network net(1, factory, topo, nc, nullptr);

  Trace trace;
  std::string error;
  ASSERT_TRUE(parse_trace("10 move 2 5 25\n20 fail 3\n", &trace, &error)) << error;
  TracePlayer player(net, std::move(trace), model);
  net.start();
  player.start();

  net.sim().run_until(9_s);
  EXPECT_DOUBLE_EQ(net.node(2).position().x, 0.0);
  EXPECT_FALSE(net.node(3).failed());

  net.sim().run_until(15_s);
  EXPECT_DOUBLE_EQ(net.node(2).position().x, 5.0);
  EXPECT_DOUBLE_EQ(net.node(2).position().y, 25.0);
  EXPECT_EQ(player.applied(), 1u);

  net.sim().run_until(25_s);
  EXPECT_TRUE(net.node(3).failed());
  EXPECT_EQ(player.applied(), 2u);
  // The kill also silences the node at the medium level.
  EXPECT_DOUBLE_EQ(model->prr(3, {0, -30}, 1, {0, 0}), 0.0);
}

TEST(TracePlayerTest, AppliesRevivesAndLinkEpisodes) {
  TopologySpec topo;
  topo.nodes.push_back(NodeSpec{1, {0, 0}, true});
  topo.nodes.push_back(NodeSpec{2, {0, 30}, false});
  topo.nodes.push_back(NodeSpec{3, {0, -30}, false});

  ScenarioConfig sc;
  auto nc = sc.make_node_config();
  DynamicLinkModel* model = nullptr;
  const Network::LinkModelFactory factory =
      [&model](Simulator& sim) -> std::unique_ptr<LinkModel> {
    auto dynamic = std::make_unique<DynamicLinkModel>(
        sim, std::make_unique<UnitDiskModel>(40.0, 1.0, 1.6));
    model = dynamic.get();
    return dynamic;
  };
  Network net(1, factory, topo, nc, nullptr);

  Trace trace;
  std::string error;
  ASSERT_TRUE(parse_trace(
                  "10 fail 2\n"
                  "20 revive 2\n"
                  "30 prr 1 2 0.25\n"
                  "40 pause 1 3\n"
                  "50 prr 1 2 1\n"
                  "60 resume 1 3\n",
                  &trace, &error))
      << error;
  TracePlayer player(net, std::move(trace), model);
  net.start();
  player.start();

  const Position p1{0, 0}, p2{0, 30}, p3{0, -30};

  net.sim().run_until(15_s);  // node 2 is down and radio-silent
  EXPECT_TRUE(net.node(2).failed());
  EXPECT_DOUBLE_EQ(model->prr(2, p2, 1, p1), 0.0);

  net.sim().run_until(25_s);  // ...and back, with the base link restored
  EXPECT_FALSE(net.node(2).failed());
  EXPECT_DOUBLE_EQ(model->prr(2, p2, 1, p1), 1.0);
  EXPECT_EQ(player.applied(), 2u);

  net.sim().run_until(35_s);  // prr override is directional: only 1 -> 2 fades
  EXPECT_DOUBLE_EQ(model->prr(1, p1, 2, p2), 0.25);
  EXPECT_DOUBLE_EQ(model->prr(2, p2, 1, p1), 1.0);

  net.sim().run_until(45_s);  // pause blacks out both directions of 1 <-> 3
  EXPECT_DOUBLE_EQ(model->prr(1, p1, 3, p3), 0.0);
  EXPECT_DOUBLE_EQ(model->prr(3, p3, 1, p1), 0.0);

  net.sim().run_until(55_s);  // prr 1 restores full delivery on 1 -> 2
  EXPECT_DOUBLE_EQ(model->prr(1, p1, 2, p2), 1.0);

  net.sim().run_until(65_s);  // resume lifts the blackout
  EXPECT_DOUBLE_EQ(model->prr(1, p1, 3, p3), 1.0);
  EXPECT_DOUBLE_EQ(model->prr(3, p3, 1, p1), 1.0);
  EXPECT_EQ(player.applied(), 6u);
}

// ------------------------------------------------------ file round trips --

TEST(TraceFile, SaveLoadRoundTrip) {
  const ScenarioConfig sc = generator_config(TraceKind::kRandomWalk);
  Trace trace;
  std::string error;
  ASSERT_TRUE(sc.make_trace(sc.make_topology(), &trace, &error)) << error;

  const std::string path = ::testing::TempDir() + "roundtrip.trace";
  ASSERT_TRUE(save_trace(path, trace, &error)) << error;
  Trace loaded;
  ASSERT_TRUE(load_trace(path, &loaded, &error)) << error;
  ASSERT_EQ(loaded.events.size(), trace.events.size());
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    EXPECT_TRUE(trace.events[i] == loaded.events[i]) << "event " << i;
  }
}

}  // namespace
}  // namespace gttsch
