// Campaign-engine tests: grid expansion (full cartesian product, loud
// validation failures), order-independent aggregation, report layout, and
// the determinism contracts — a parallel run produces metrics bit-identical
// to a serial run, merged shards reproduce the unsharded CSV byte for
// byte, --resume re-runs exactly the missing jobs, and adaptive seeding
// stops tight grid points early while noisy ones run to the cap.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <functional>
#include <random>
#include <set>
#include <utility>

#include "campaign/journal.hpp"
#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "campaign/shard.hpp"
#include "campaign/spec.hpp"

namespace gttsch {
namespace {

using namespace literals;
using campaign::Axis;
using campaign::CampaignSpec;
using campaign::GridPoint;
using campaign::Job;
using campaign::PointAccumulator;
using campaign::PointAggregate;
using campaign::SampleStats;

// Tiny scenario so the determinism tests stay fast: single DODAG, short
// warmup/measure windows.
ScenarioConfig tiny() {
  ScenarioConfig c;
  c.dodag_count = 1;
  c.nodes_per_dodag = 5;
  c.warmup = 60_s;
  c.measure = 60_s;
  return c;
}

CampaignSpec tiny_spec() {
  CampaignSpec spec;
  spec.base = tiny();
  spec.axes = {{"scheduler", {"gt-tsch", "orchestra"}}, {"traffic_ppm", {"30", "120"}}};
  spec.seeds = {1, 2, 3};
  return spec;
}

// ------------------------------------------------------------------ spec --

TEST(CampaignSpec, GridIsFullCartesianProduct) {
  CampaignSpec spec;
  spec.seeds = {1};
  spec.axes = {{"traffic_ppm", {"30", "75", "120"}},
               {"scheduler", {"gt-tsch", "orchestra"}}};
  std::string error;
  const auto points = campaign::expand_grid(spec, &error);
  ASSERT_EQ(points.size(), 6u) << error;

  // First axis varies slowest; every combination appears exactly once.
  EXPECT_EQ(points[0].label, "traffic_ppm=30 scheduler=gt-tsch");
  EXPECT_EQ(points[1].label, "traffic_ppm=30 scheduler=orchestra");
  EXPECT_EQ(points[5].label, "traffic_ppm=120 scheduler=orchestra");
  EXPECT_DOUBLE_EQ(points[4].config.traffic_ppm, 120.0);
  EXPECT_EQ(points[4].config.scheduler, "gt-tsch");
  EXPECT_EQ(points[5].config.scheduler, "orchestra");
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].index, i);
    EXPECT_EQ(points[i].coords.size(), 2u);
  }
}

TEST(CampaignSpec, NoAxesYieldsSingleBasePoint) {
  CampaignSpec spec;
  spec.base.traffic_ppm = 42.0;
  spec.seeds = {7};
  std::string error;
  const auto points = campaign::expand_grid(spec, &error);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_DOUBLE_EQ(points[0].config.traffic_ppm, 42.0);
  EXPECT_TRUE(points[0].label.empty());
}

TEST(CampaignSpec, JobsArePointMajorWithSeedsApplied) {
  const CampaignSpec spec = tiny_spec();
  std::string error;
  const auto jobs = campaign::make_jobs(spec, &error);
  ASSERT_EQ(jobs.size(), 4u * 3u) << error;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].index, i);
    EXPECT_EQ(jobs[i].point_index, i / 3);
    EXPECT_EQ(jobs[i].seed_index, i % 3);
    EXPECT_EQ(jobs[i].config.seed, spec.seeds[i % 3]);
  }
}

TEST(CampaignSpec, RejectsBadSpecs) {
  std::string error;

  CampaignSpec unknown = tiny_spec();
  unknown.axes.push_back({"warp_factor", {"9"}});
  EXPECT_FALSE(campaign::validate(unknown, &error));
  EXPECT_NE(error.find("warp_factor"), std::string::npos);
  EXPECT_TRUE(campaign::expand_grid(unknown, &error).empty());

  CampaignSpec empty_axis = tiny_spec();
  empty_axis.axes.push_back({"alpha", {}});
  EXPECT_FALSE(campaign::validate(empty_axis, &error));
  EXPECT_NE(error.find("alpha"), std::string::npos);

  CampaignSpec duplicate = tiny_spec();
  duplicate.axes.push_back({"scheduler", {"gt-tsch"}});
  EXPECT_FALSE(campaign::validate(duplicate, &error));
  EXPECT_NE(error.find("twice"), std::string::npos);

  CampaignSpec bad_value = tiny_spec();
  bad_value.axes.push_back({"link_prr", {"0.9", "1.5"}});
  EXPECT_FALSE(campaign::validate(bad_value, &error));
  EXPECT_NE(error.find("link_prr"), std::string::npos);

  CampaignSpec no_seeds = tiny_spec();
  no_seeds.seeds.clear();
  EXPECT_FALSE(campaign::validate(no_seeds, &error));

  CampaignSpec dup_seeds = tiny_spec();
  dup_seeds.seeds = {1, 2, 1};
  EXPECT_FALSE(campaign::validate(dup_seeds, &error));

  EXPECT_TRUE(campaign::validate(tiny_spec(), &error)) << error;
}

TEST(CampaignSpec, ApplyFieldParsesAndRangeChecks) {
  ScenarioConfig c;
  std::string error;
  EXPECT_TRUE(campaign::apply_field(c, "scheduler", "orchestra", &error));
  EXPECT_EQ(c.scheduler, "orchestra");
  EXPECT_TRUE(campaign::apply_field(c, "scheduler", "gt", &error));
  EXPECT_EQ(c.scheduler, "gt-tsch");
  EXPECT_TRUE(campaign::apply_field(c, "gt_slotframe_length", "64", &error));
  EXPECT_EQ(c.gt_slotframe_length, 64);
  EXPECT_TRUE(campaign::apply_field(c, "enforce_interleave", "false", &error));
  EXPECT_FALSE(c.enforce_interleave);
  EXPECT_TRUE(campaign::apply_field(c, "orchestra_channel_hash", "true", &error));
  EXPECT_TRUE(c.orchestra_channel_hash);
  EXPECT_TRUE(campaign::apply_field(c, "warmup_s", "90", &error));
  EXPECT_EQ(c.warmup, 90_s);

  EXPECT_FALSE(campaign::apply_field(c, "scheduler", "tasa", &error));
  EXPECT_FALSE(campaign::apply_field(c, "traffic_ppm", "fast", &error));
  EXPECT_FALSE(campaign::apply_field(c, "dodag_count", "0", &error));
  EXPECT_FALSE(campaign::apply_field(c, "nope", "1", &error));
  // NaN must fail the range check (it would be UB cast to an int field).
  EXPECT_FALSE(campaign::apply_field(c, "dodag_count", "nan", &error));
  EXPECT_FALSE(campaign::apply_field(c, "traffic_ppm", "nan", &error));
  EXPECT_FALSE(campaign::known_fields().empty());
}

TEST(CampaignSpec, TopologyAxesSweepBuilderKinds) {
  ScenarioConfig c;
  std::string error;
  for (const char* name : {"multi-dodag", "grid", "line", "random-disk"}) {
    EXPECT_TRUE(campaign::apply_field(c, "topology", name, &error)) << error;
    EXPECT_STREQ(topology_name(c.topology), name);
  }
  EXPECT_TRUE(campaign::apply_field(c, "topology_nodes", "200", &error));
  EXPECT_EQ(c.topology_nodes, 200);
  EXPECT_TRUE(campaign::apply_field(c, "disk_radius", "220", &error));
  EXPECT_EQ(c.disk_radius, 220.0);
  // Seeds go through the exact-integer grammar, not strtod.
  EXPECT_TRUE(campaign::apply_field(c, "topology_seed", "9007199254740993", &error));
  EXPECT_EQ(c.topology_seed, 9007199254740993ull);  // 2^53 + 1: double-lossy
  EXPECT_FALSE(campaign::apply_field(c, "topology", "star", &error));
  EXPECT_FALSE(campaign::apply_field(c, "topology_nodes", "0", &error));
  EXPECT_FALSE(campaign::apply_field(c, "topology_seed", "-3", &error));

  // The new fields are campaign axes end to end: a 2x2 grid over topology
  // kind and size expands, and different node counts fingerprint apart.
  CampaignSpec spec;
  spec.seeds = {1};
  ASSERT_TRUE(campaign::parse_grid("topology=grid,line;topology_nodes=50,100",
                                   &spec.axes, &error))
      << error;
  const auto points = campaign::expand_grid(spec, &error);
  ASSERT_EQ(points.size(), 4u) << error;
  CampaignSpec other = spec;
  other.base.disk_radius = 300.0;  // not swept: only the fingerprint sees it
  const auto other_points = campaign::expand_grid(other, &error);
  EXPECT_NE(campaign::campaign_fingerprint(points, spec.seeds),
            campaign::campaign_fingerprint(other_points, other.seeds));
}

TEST(CampaignSpec, ParsesGridAndSeedStrings) {
  std::vector<Axis> axes;
  std::string error;
  ASSERT_TRUE(campaign::parse_grid("traffic_ppm=30,75;scheduler=gt-tsch", &axes, &error))
      << error;
  ASSERT_EQ(axes.size(), 2u);
  EXPECT_EQ(axes[0].field, "traffic_ppm");
  EXPECT_EQ(axes[0].values, (std::vector<std::string>{"30", "75"}));
  EXPECT_EQ(axes[1].values, (std::vector<std::string>{"gt-tsch"}));

  EXPECT_FALSE(campaign::parse_grid("=30", &axes, &error));
  EXPECT_FALSE(campaign::parse_grid("traffic_ppm", &axes, &error));
  EXPECT_FALSE(campaign::parse_grid("traffic_ppm=30,,75", &axes, &error));

  std::vector<std::uint64_t> seeds;
  ASSERT_TRUE(campaign::parse_seeds("1,2,30", &seeds, &error));
  EXPECT_EQ(seeds, (std::vector<std::uint64_t>{1, 2, 30}));
  EXPECT_FALSE(campaign::parse_seeds("1,x", &seeds, &error));
  EXPECT_FALSE(campaign::parse_seeds("", &seeds, &error));
  // No strtoull wraparound: a typo'd negative seed must be rejected, and
  // duplicates would silently bias the stddev/CI.
  EXPECT_FALSE(campaign::parse_seeds("-1", &seeds, &error));
  EXPECT_FALSE(campaign::parse_seeds("1,2,1", &seeds, &error));
}

TEST(CampaignSpec, FingerprintSeesBaseConfigAndSeedChanges) {
  const CampaignSpec spec = tiny_spec();
  std::string error;
  const auto points = campaign::expand_grid(spec, &error);
  ASSERT_FALSE(points.empty()) << error;
  const std::uint64_t fp = campaign::campaign_fingerprint(points, spec.seeds);
  EXPECT_NE(fp, 0u);
  EXPECT_EQ(fp, campaign::campaign_fingerprint(points, spec.seeds));  // stable

  // A base-config change outside the swept axes leaves every label/coord
  // identical; the fingerprint is the only thing that can tell them apart.
  CampaignSpec other = tiny_spec();
  other.base.nodes_per_dodag += 1;
  const auto other_points = campaign::expand_grid(other, &error);
  ASSERT_EQ(other_points.size(), points.size());
  EXPECT_EQ(other_points[0].label, points[0].label);
  EXPECT_NE(campaign::campaign_fingerprint(other_points, other.seeds), fp);

  EXPECT_NE(campaign::campaign_fingerprint(points, {9, 8, 7}), fp);
}

TEST(CampaignSpec, FingerprintCoversEveryTraceField) {
  // Two trace campaigns differing in ANY trace field must not share a
  // fingerprint — this is what keeps journals from, say, different
  // trace_seeds (identical labels, coords and seeds) from being merged or
  // resumed together.
  const CampaignSpec spec = tiny_spec();
  std::string error;
  const auto points = campaign::expand_grid(spec, &error);
  ASSERT_FALSE(points.empty()) << error;
  const std::uint64_t fp = campaign::campaign_fingerprint(points, spec.seeds);

  const std::vector<std::function<void(ScenarioConfig&)>> mutations = {
      [](ScenarioConfig& c) { c.trace_kind = TraceKind::kRandomWalk; },
      [](ScenarioConfig& c) { c.trace_seed = 99; },
      [](ScenarioConfig& c) { c.trace_movers += 1; },
      [](ScenarioConfig& c) { c.trace_fail_count += 1; },
      [](ScenarioConfig& c) { c.trace_speed_mps += 0.5; },
      [](ScenarioConfig& c) { c.trace_interval_s += 0.5; },
      [](ScenarioConfig& c) { c.trace_fail_at_s += 1.0; },
      [](ScenarioConfig& c) { c.trace = "some/file.trace"; },
  };
  for (std::size_t i = 0; i < mutations.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "trace mutation " << i);
    std::vector<campaign::GridPoint> mutated = points;
    for (campaign::GridPoint& p : mutated) mutations[i](p.config);
    EXPECT_EQ(mutated[0].label, points[0].label);  // axes can't see it
    EXPECT_NE(campaign::campaign_fingerprint(mutated, spec.seeds), fp);
  }
}

TEST(CampaignSpec, FingerprintSeesTraceFileContentNotJustPath) {
  // Editing a trace file between runs must invalidate resume/merge like
  // any config change — the path string alone cannot see it.
  const std::string path = ::testing::TempDir() + "fp_content.trace";
  {
    std::ofstream f(path);
    f << "10 move 2 5 5\n";
  }
  CampaignSpec spec = tiny_spec();
  spec.base.trace_kind = TraceKind::kFile;
  spec.base.trace = path;
  std::string error;
  const auto points = campaign::expand_grid(spec, &error);
  ASSERT_FALSE(points.empty()) << error;
  const std::uint64_t fp = campaign::campaign_fingerprint(points, spec.seeds);

  {
    std::ofstream f(path);
    f << "10 move 2 6 5\n";  // one coordinate differs
  }
  const std::uint64_t fp_edited = campaign::campaign_fingerprint(points, spec.seeds);
  EXPECT_NE(fp_edited, fp);

  {
    std::ofstream f(path);
    f << "# cosmetic rewrite only\n10   move 2 6 5\n";
  }
  // Canonicalized content: comments/whitespace do not break resumability.
  EXPECT_EQ(campaign::campaign_fingerprint(points, spec.seeds), fp_edited);
}

TEST(CampaignSpec, TraceAxesExpandAndValidate) {
  CampaignSpec spec = tiny_spec();
  spec.axes.push_back(
      campaign::Axis{"trace_kind", {"none", "random-walk", "random-waypoint"}});
  spec.axes.push_back(campaign::Axis{"trace_seed", {"1", "2"}});
  std::string error;
  const auto points = campaign::expand_grid(spec, &error);
  // tiny_spec's 2x2 grid times the two trace axes.
  EXPECT_EQ(points.size(), 4u * 3u * 2u) << error;
  EXPECT_TRUE(campaign::validate_points_trace(points, &error)) << error;

  // A generator axis with a bad companion knob fails the pre-run check
  // loudly, naming both the point and the knob.
  CampaignSpec bad = tiny_spec();
  bad.base.trace_interval_s = -1.0;
  bad.axes.push_back(campaign::Axis{"trace_kind", {"none", "random-walk"}});
  const auto bad_points = campaign::expand_grid(bad, &error);
  ASSERT_FALSE(bad_points.empty()) << error;
  EXPECT_FALSE(campaign::validate_points_trace(bad_points, &error));
  EXPECT_NE(error.find("trace_interval_s"), std::string::npos) << error;
}

// ------------------------------------------------------------- aggregate --

TEST(CampaignAggregate, SummarizeMatchesHandComputation) {
  const SampleStats s = campaign::summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.n, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.stddev, 1.2909944487358056, 1e-12);
  // t(df=3, 95%) = 3.182; half-width = t * sd / sqrt(4).
  EXPECT_NEAR(s.ci95_half, 3.182 * 1.2909944487358056 / 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);

  const SampleStats single = campaign::summarize({5.0});
  EXPECT_EQ(single.n, 1u);
  EXPECT_DOUBLE_EQ(single.mean, 5.0);
  EXPECT_DOUBLE_EQ(single.stddev, 0.0);
  EXPECT_DOUBLE_EQ(single.ci95_half, 0.0);

  EXPECT_EQ(campaign::summarize({}).n, 0u);
}

TEST(CampaignAggregate, TCriticalCoversSmallAndLargeDf) {
  EXPECT_DOUBLE_EQ(campaign::t_critical_95(1), 12.706);
  EXPECT_DOUBLE_EQ(campaign::t_critical_95(4), 2.776);
  EXPECT_DOUBLE_EQ(campaign::t_critical_95(30), 2.042);
  EXPECT_DOUBLE_EQ(campaign::t_critical_95(1000), 1.960);
  EXPECT_DOUBLE_EQ(campaign::t_critical_95(0), 0.0);
}

ExperimentResult fake_result(double pdr, double delay, std::uint64_t generated) {
  ExperimentResult r;
  r.metrics.pdr_percent = pdr;
  r.metrics.avg_delay_ms = delay;
  r.metrics.generated = generated;
  r.metrics.delivered = generated / 2;
  r.metrics.node_count = 5;
  r.metrics.measure_minutes = 1.0;
  r.medium.transmissions = generated * 3;
  r.fully_formed = pdr > 50.0;
  return r;
}

TEST(CampaignAggregate, MergeIsOrderIndependent) {
  const std::vector<ExperimentResult> results = {
      fake_result(90.0, 100.0, 240), fake_result(80.0, 150.0, 260),
      fake_result(95.5, 90.0, 250), fake_result(40.0, 700.0, 255),
      fake_result(88.25, 120.5, 245)};

  std::vector<std::size_t> order(results.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  PointAccumulator in_order;
  for (const std::size_t i : order) in_order.add(i, results[i]);
  const PointAggregate expected = in_order.finalize();

  std::mt19937 shuffler(42);
  for (int round = 0; round < 10; ++round) {
    std::shuffle(order.begin(), order.end(), shuffler);
    PointAccumulator shuffled;
    for (const std::size_t i : order) shuffled.add(i, results[i]);
    const PointAggregate agg = shuffled.finalize();

    // Bit-identical, not merely approximately equal.
    EXPECT_EQ(agg.pdr_percent.mean, expected.pdr_percent.mean);
    EXPECT_EQ(agg.pdr_percent.stddev, expected.pdr_percent.stddev);
    EXPECT_EQ(agg.pdr_percent.ci95_half, expected.pdr_percent.ci95_half);
    EXPECT_EQ(agg.avg_delay_ms.mean, expected.avg_delay_ms.mean);
    EXPECT_EQ(agg.avg_delay_ms.stddev, expected.avg_delay_ms.stddev);
    EXPECT_EQ(agg.mean.generated, expected.mean.generated);
    EXPECT_EQ(agg.medium_sum.transmissions, expected.medium_sum.transmissions);
    EXPECT_EQ(agg.runs, expected.runs);
    EXPECT_EQ(agg.fully_formed_runs, expected.fully_formed_runs);
  }
}

TEST(CampaignAggregate, PackedMeansMatchLegacyRunAveraged) {
  // The accumulator must agree bit-for-bit with the serial run_averaged
  // path it replaces in the benches.
  ScenarioConfig c = tiny();
  c.traffic_ppm = 60.0;
  const std::vector<std::uint64_t> seeds = {1, 2};

  const AveragedMetrics legacy = run_averaged(c, seeds);
  const PointAggregate agg = campaign::run_point(c, seeds);

  EXPECT_EQ(agg.runs, legacy.runs);
  EXPECT_EQ(agg.mean.pdr_percent, legacy.mean.pdr_percent);
  EXPECT_EQ(agg.mean.avg_delay_ms, legacy.mean.avg_delay_ms);
  EXPECT_EQ(agg.mean.throughput_per_minute, legacy.mean.throughput_per_minute);
  EXPECT_EQ(agg.mean.generated, legacy.mean.generated);
  EXPECT_EQ(agg.mean.delivered, legacy.mean.delivered);
  EXPECT_EQ(agg.medium_sum.transmissions, legacy.medium_sum.transmissions);
}

// ---------------------------------------------------------------- runner --

void expect_identical(const PointAggregate& a, const PointAggregate& b) {
  const SampleStats PointAggregate::*kStats[] = {
      &PointAggregate::pdr_percent,        &PointAggregate::avg_delay_ms,
      &PointAggregate::p95_delay_ms,       &PointAggregate::loss_per_minute,
      &PointAggregate::duty_cycle_percent, &PointAggregate::queue_loss_per_node,
      &PointAggregate::throughput_per_minute, &PointAggregate::mean_hops};
  for (const auto member : kStats) {
    EXPECT_EQ((a.*member).mean, (b.*member).mean);
    EXPECT_EQ((a.*member).stddev, (b.*member).stddev);
    EXPECT_EQ((a.*member).ci95_half, (b.*member).ci95_half);
    EXPECT_EQ((a.*member).min, (b.*member).min);
    EXPECT_EQ((a.*member).max, (b.*member).max);
  }
  EXPECT_EQ(a.mean.generated, b.mean.generated);
  EXPECT_EQ(a.mean.delivered, b.mean.delivered);
  EXPECT_EQ(a.medium_sum.transmissions, b.medium_sum.transmissions);
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.fully_formed_runs, b.fully_formed_runs);
}

TEST(CampaignRunner, ParallelRunMatchesSerialBitForBit) {
  const CampaignSpec spec = tiny_spec();  // 4 points x 3 seeds = 12 jobs
  std::string error;

  campaign::RunnerOptions serial;
  serial.jobs = 1;
  campaign::CampaignResult serial_result;
  ASSERT_TRUE(campaign::run_campaign(spec, serial, &serial_result, &error)) << error;

  campaign::RunnerOptions parallel;
  parallel.jobs = 4;
  campaign::CampaignResult parallel_result;
  ASSERT_TRUE(campaign::run_campaign(spec, parallel, &parallel_result, &error)) << error;

  ASSERT_EQ(serial_result.aggregates.size(), 4u);
  ASSERT_EQ(parallel_result.aggregates.size(), 4u);
  for (std::size_t i = 0; i < serial_result.aggregates.size(); ++i) {
    expect_identical(serial_result.aggregates[i], parallel_result.aggregates[i]);
  }
  EXPECT_FALSE(serial_result.cancelled);
  EXPECT_FALSE(parallel_result.cancelled);
}

TEST(CampaignRunner, ProgressReportsEveryJob) {
  CampaignSpec spec = tiny_spec();
  spec.axes = {{"traffic_ppm", {"30"}}};
  spec.seeds = {1, 2, 3};
  std::string error;
  const auto jobs = campaign::make_jobs(spec, &error);
  ASSERT_EQ(jobs.size(), 3u);

  std::vector<std::size_t> completions;
  campaign::RunnerOptions options;
  options.jobs = 2;
  options.on_progress = [&completions](const campaign::Progress& p) {
    completions.push_back(p.completed);
    EXPECT_EQ(p.total, 3u);
    EXPECT_NE(p.job, nullptr);
  };
  campaign::Runner runner(options);
  const auto result = runner.run(jobs);
  EXPECT_EQ(completions.size(), 3u);
  EXPECT_TRUE(std::all_of(result.completed.begin(), result.completed.end(),
                          [](std::uint8_t c) { return c == 1; }));
}

TEST(CampaignRunner, CancelStopsClaimingJobs) {
  CampaignSpec spec = tiny_spec();
  spec.axes = {{"traffic_ppm", {"30"}}};
  spec.seeds = {1, 2, 3, 4, 5, 6};
  std::string error;
  const auto jobs = campaign::make_jobs(spec, &error);
  ASSERT_EQ(jobs.size(), 6u);

  // The callback cancels the runner it belongs to; bind via pointer since
  // the runner is constructed after the options.
  campaign::Runner* target = nullptr;
  campaign::RunnerOptions options;
  options.jobs = 1;  // serial: the cancellation point is deterministic
  options.on_progress = [&target](const campaign::Progress& p) {
    if (p.completed == 2) target->cancel();
  };
  campaign::Runner runner(options);
  target = &runner;
  const auto result = runner.run(jobs);
  EXPECT_TRUE(result.cancelled);
  const std::size_t done = static_cast<std::size_t>(
      std::count(result.completed.begin(), result.completed.end(), 1));
  EXPECT_EQ(done, 2u);
}

// ----------------------------------------------------------------- shard --

TEST(CampaignShard, ParsesShardSpecs) {
  campaign::ShardSpec shard;
  std::string error;
  ASSERT_TRUE(campaign::parse_shard("0/4", &shard, &error)) << error;
  EXPECT_EQ(shard.index, 0u);
  EXPECT_EQ(shard.count, 4u);
  ASSERT_TRUE(campaign::parse_shard("3/4", &shard, &error));
  EXPECT_EQ(shard.index, 3u);

  EXPECT_FALSE(campaign::parse_shard("4/4", &shard, &error));
  EXPECT_NE(error.find("out of range"), std::string::npos);
  EXPECT_FALSE(campaign::parse_shard("0/0", &shard, &error));
  EXPECT_FALSE(campaign::parse_shard("1", &shard, &error));
  EXPECT_FALSE(campaign::parse_shard("a/b", &shard, &error));
  EXPECT_FALSE(campaign::parse_shard("-1/2", &shard, &error));
  EXPECT_FALSE(campaign::parse_shard("", &shard, &error));
}

TEST(CampaignShard, JobPartitionIsDisjointAndComplete) {
  const CampaignSpec spec = tiny_spec();  // 4 points x 3 seeds = 12 jobs
  std::string error;
  const auto jobs = campaign::make_jobs(spec, &error);
  ASSERT_EQ(jobs.size(), 12u);

  std::vector<int> claimed(jobs.size(), 0);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto mine = campaign::shard_jobs(jobs, {i, 3});
    EXPECT_EQ(mine.size(), 4u);
    for (const Job& job : mine) ++claimed[job.index];
  }
  EXPECT_TRUE(std::all_of(claimed.begin(), claimed.end(),
                          [](int c) { return c == 1; }));

  // Shard 0/1 is the identity.
  EXPECT_EQ(campaign::shard_jobs(jobs, {0, 1}).size(), jobs.size());

  // Point partition: disjoint cover too.
  const auto points = campaign::expand_grid(spec, &error);
  std::vector<int> point_claimed(points.size(), 0);
  for (std::size_t i = 0; i < 2; ++i) {
    for (const auto& p : campaign::shard_points(points, {i, 2})) {
      ++point_claimed[p.index];
    }
  }
  EXPECT_TRUE(std::all_of(point_claimed.begin(), point_claimed.end(),
                          [](int c) { return c == 1; }));
}

// Deterministic synthetic experiment for the shard/resume/adaptive tests:
// metrics depend on (scheduler, traffic, seed) through awkward fractions,
// so any serialization or ordering slip breaks byte-equality.
ExperimentResult synthetic_run(const ScenarioConfig& c) {
  ExperimentResult r;
  const double seed = static_cast<double>(c.seed);
  const double scheduler_bias = c.scheduler == "gt-tsch" ? 0.0 : 7.0;
  r.metrics.pdr_percent = 100.0 / 3.0 + seed / 7.0 + c.traffic_ppm / 11.0;
  r.metrics.avg_delay_ms = 100.0 + seed * 1.1 + scheduler_bias;
  r.metrics.p95_delay_ms = 280.0 + seed / 3.0;
  r.metrics.loss_per_minute = seed / 13.0;
  r.metrics.duty_cycle_percent = 10.0 + scheduler_bias / 9.0;
  r.metrics.queue_loss_per_node = 0.25 * seed;
  r.metrics.throughput_per_minute = c.traffic_ppm + seed;
  r.metrics.mean_hops = 2.0 + 1.0 / (seed + 1.0);
  r.metrics.measure_minutes = 5.0;
  r.metrics.generated = 240 + c.seed;
  r.metrics.delivered = 200 + c.seed;
  r.metrics.node_count = 5;
  r.medium.transmissions = 700 + 3 * c.seed;
  r.medium.deliveries = 650 + 2 * c.seed;
  r.fully_formed = true;
  return r;
}

std::string test_file(const char* name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

TEST(CampaignShard, MergedShardJournalsReproduceUnshardedCsvByteForByte) {
  const CampaignSpec spec = tiny_spec();  // 4 points x 3 seeds = 12 jobs

  campaign::CampaignOptions unsharded;
  unsharded.runner.jobs = 1;
  unsharded.runner.run_fn = synthetic_run;
  campaign::CampaignResult reference;
  std::string error;
  ASSERT_TRUE(campaign::run_campaign(spec, unsharded, &reference, &error)) << error;
  const std::string reference_csv = campaign::render_csv(reference.aggregates);

  // Three independent shard processes, each with its own journal.
  std::vector<campaign::JournalRecord> merged_records;
  for (std::size_t i = 0; i < 3; ++i) {
    const std::string journal =
        test_file(("shard_eq_" + std::to_string(i) + ".jsonl").c_str());
    std::filesystem::remove(journal);
    campaign::CampaignOptions options;
    options.runner.jobs = 2;  // exercise parallel completion order too
    options.runner.run_fn = synthetic_run;
    options.shard = {i, 3};
    options.journal_path = journal;
    campaign::CampaignResult result;
    ASSERT_TRUE(campaign::run_campaign(spec, options, &result, &error)) << error;
    EXPECT_EQ(result.jobs_run, 4u);

    std::vector<campaign::JournalRecord> records;
    ASSERT_TRUE(campaign::read_journal(journal, &records, &error)) << error;
    EXPECT_EQ(records.size(), 4u);
    merged_records.insert(merged_records.end(), records.begin(), records.end());
  }

  std::vector<campaign::PointAggregate> merged;
  ASSERT_TRUE(campaign::aggregate_records(merged_records, &merged, &error)) << error;
  EXPECT_EQ(campaign::render_csv(merged), reference_csv);
}

// ---------------------------------------------------------------- resume --

TEST(CampaignResume, RerunsExactlyTheMissingJobs) {
  const CampaignSpec spec = tiny_spec();  // n = 12 jobs
  const std::string journal = test_file("resume_count.jsonl");
  std::filesystem::remove(journal);
  std::string error;

  std::atomic<int> invocations{0};
  campaign::CampaignOptions options;
  options.runner.jobs = 1;
  options.runner.run_fn = [&invocations](const ScenarioConfig& c) {
    ++invocations;
    return synthetic_run(c);
  };
  options.journal_path = journal;

  campaign::CampaignResult first;
  ASSERT_TRUE(campaign::run_campaign(spec, options, &first, &error)) << error;
  EXPECT_EQ(invocations.load(), 12);
  EXPECT_EQ(first.jobs_run, 12u);
  EXPECT_EQ(first.jobs_skipped, 0u);
  const std::string reference_csv = campaign::render_csv(first.aggregates);

  // Simulate a crash after k = 5 completed jobs: keep the first 5 journal
  // lines plus a truncated 6th (the in-flight write).
  std::vector<std::string> lines;
  {
    std::ifstream in(journal);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 12u);
  {
    std::ofstream out(journal, std::ios::trunc);
    for (std::size_t i = 0; i < 5; ++i) out << lines[i] << '\n';
    out << lines[5].substr(0, lines[5].size() / 2);
  }

  invocations = 0;
  options.resume = true;
  campaign::CampaignResult resumed;
  ASSERT_TRUE(campaign::run_campaign(spec, options, &resumed, &error)) << error;
  EXPECT_EQ(invocations.load(), 7);  // exactly n - k
  EXPECT_EQ(resumed.jobs_skipped, 5u);
  EXPECT_EQ(resumed.jobs_run, 7u);
  EXPECT_EQ(campaign::render_csv(resumed.aggregates), reference_csv);

  // A second resume finds everything done and runs nothing.
  invocations = 0;
  campaign::CampaignResult idle;
  ASSERT_TRUE(campaign::run_campaign(spec, options, &idle, &error)) << error;
  EXPECT_EQ(invocations.load(), 0);
  EXPECT_EQ(idle.jobs_skipped, 12u);
  EXPECT_EQ(campaign::render_csv(idle.aggregates), reference_csv);
}

TEST(CampaignResume, RejectsJournalFromADifferentCampaign) {
  const CampaignSpec spec = tiny_spec();
  const std::string journal = test_file("resume_mismatch.jsonl");
  std::filesystem::remove(journal);
  std::string error;

  campaign::CampaignOptions options;
  options.runner.jobs = 1;
  options.runner.run_fn = synthetic_run;
  options.journal_path = journal;
  campaign::CampaignResult result;
  ASSERT_TRUE(campaign::run_campaign(spec, options, &result, &error)) << error;

  // Same journal, different grid: labels disagree -> hard error, because
  // silently mixing results from two campaigns would corrupt the stats.
  CampaignSpec other = tiny_spec();
  other.axes = {{"scheduler", {"gt-tsch", "orchestra"}},
                {"traffic_ppm", {"45", "90"}}};
  options.resume = true;
  campaign::CampaignResult mismatched;
  EXPECT_FALSE(campaign::run_campaign(other, options, &mismatched, &error));
  EXPECT_NE(error.find("does not match"), std::string::npos);

  // Changing the seed list is a mismatch too.
  CampaignSpec reseeded = tiny_spec();
  reseeded.seeds = {9, 8, 7};
  EXPECT_FALSE(campaign::run_campaign(reseeded, options, &mismatched, &error));

  // Resume without a journal path is a usage error.
  campaign::CampaignOptions no_path;
  no_path.runner.run_fn = synthetic_run;
  no_path.resume = true;
  EXPECT_FALSE(campaign::run_campaign(spec, no_path, &mismatched, &error));
}

TEST(CampaignResume, RejectsJournalFromDifferentBaseConfig) {
  // Same grid, same seeds, different --set base: every label and seed the
  // journal validation compares agrees, so only the campaign fingerprint
  // stops results from a different network being silently reused.
  const CampaignSpec spec = tiny_spec();
  const std::string journal = test_file("resume_base_mismatch.jsonl");
  std::filesystem::remove(journal);
  std::string error;

  campaign::CampaignOptions options;
  options.runner.jobs = 1;
  options.runner.run_fn = synthetic_run;
  options.journal_path = journal;
  campaign::CampaignResult result;
  ASSERT_TRUE(campaign::run_campaign(spec, options, &result, &error)) << error;

  CampaignSpec other = tiny_spec();
  other.base.nodes_per_dodag += 1;
  options.resume = true;
  campaign::CampaignResult mismatched;
  EXPECT_FALSE(campaign::run_campaign(other, options, &mismatched, &error));
  EXPECT_NE(error.find("base configuration"), std::string::npos) << error;
}

TEST(CampaignRunner, DeadJournalCancelsInsteadOfBurningTheCampaign) {
  // If the journal dies mid-run (disk full), finishing the remaining jobs
  // only burns compute on results that can no longer be saved: the first
  // failed append must cancel the run, keeping the journaled prefix
  // resumable. /dev/full accepts the open and fails every flush.
  if (!std::filesystem::exists("/dev/full")) {
    GTEST_SKIP() << "/dev/full not available";
  }
  const CampaignSpec spec = tiny_spec();  // 12 jobs
  std::atomic<int> invocations{0};
  campaign::CampaignOptions options;
  options.runner.jobs = 1;  // serial: the cancellation point is deterministic
  options.runner.run_fn = [&invocations](const ScenarioConfig& c) {
    ++invocations;
    return synthetic_run(c);
  };
  options.journal_path = "/dev/full";
  campaign::CampaignResult result;
  std::string error;
  EXPECT_FALSE(campaign::run_campaign(spec, options, &result, &error));
  EXPECT_EQ(result.error_kind, campaign::CampaignErrorKind::kIo);
  EXPECT_EQ(invocations.load(), 1);  // stopped after the first failed append
}

TEST(CampaignRunner, CancelMidCampaignKeepsJournalAndFlagsConsistent) {
  // Runner::cancel() mid-campaign: in-flight jobs finish and are journaled,
  // unclaimed jobs never start, and the three books — invocation count,
  // completed flags (via jobs_run), journal records — agree exactly.
  for (const int workers : {1, 4}) {
    const CampaignSpec spec = tiny_spec();  // 12 jobs
    const std::string journal =
        test_file(("cancel_mid_" + std::to_string(workers) + ".jsonl").c_str());
    std::filesystem::remove(journal);

    std::atomic<bool> interrupted{false};
    std::atomic<bool> trigger_armed{true};  // only the first run cancels
    std::atomic<int> invocations{0};
    campaign::CampaignOptions options;
    options.runner.jobs = workers;
    options.runner.cancel_flag = &interrupted;
    options.runner.run_fn = [&invocations](const ScenarioConfig& c) {
      ++invocations;
      return synthetic_run(c);
    };
    options.runner.on_progress = [&interrupted,
                                  &trigger_armed](const campaign::Progress& p) {
      if (trigger_armed.load() && p.completed == 3) interrupted.store(true);
    };
    options.journal_path = journal;

    campaign::CampaignResult result;
    std::string error;
    ASSERT_TRUE(campaign::run_campaign(spec, options, &result, &error)) << error;
    EXPECT_TRUE(result.cancelled);
    // Every claimed job ran to completion; nothing was claimed after the
    // flag flipped (serial: exactly 3; parallel: the other workers'
    // in-flight jobs finish too, but nothing new starts, so < 12).
    EXPECT_GE(result.jobs_run, 3u);
    EXPECT_LT(result.jobs_run, 12u);
    if (workers == 1) {
      EXPECT_EQ(result.jobs_run, 3u);
    }
    EXPECT_EQ(static_cast<std::size_t>(invocations.load()), result.jobs_run);

    std::vector<campaign::JournalRecord> records;
    ASSERT_TRUE(campaign::read_journal(journal, &records, &error)) << error;
    EXPECT_EQ(records.size(), result.jobs_run);
    std::set<std::pair<std::size_t, std::size_t>> seen;
    for (const campaign::JournalRecord& r : records) {
      EXPECT_TRUE(seen.emplace(r.point_index, r.seed_index).second);
      EXPECT_EQ(r.status, campaign::JobStatus::kOk);
    }

    // The journaled prefix resumes cleanly: exactly the rest runs.
    trigger_armed.store(false);
    interrupted.store(false);
    invocations = 0;
    options.resume = true;
    campaign::CampaignResult resumed;
    ASSERT_TRUE(campaign::run_campaign(spec, options, &resumed, &error)) << error;
    EXPECT_EQ(resumed.jobs_skipped, records.size());
    EXPECT_EQ(resumed.jobs_run, 12u - records.size());
  }
}

// -------------------------------------------------------------- adaptive --

TEST(CampaignAdaptive, TightPointStopsEarlyAndNoisyPointHitsCap) {
  CampaignSpec spec;
  spec.base = tiny();
  spec.axes = {{"traffic_ppm", {"30", "120"}}};
  spec.seeds = {1, 2, 3};  // adaptive may extend beyond the base list

  std::atomic<int> invocations{0};
  campaign::CampaignOptions options;
  options.runner.jobs = 1;
  options.runner.run_fn = [&invocations](const ScenarioConfig& c) {
    ++invocations;
    ExperimentResult r = synthetic_run(c);
    if (c.traffic_ppm < 100.0) {
      r.metrics.pdr_percent = 90.0;  // zero variance: CI collapses immediately
    } else {
      // Alternating 10/90: the relative CI half-width stays far above any
      // reasonable threshold, so the point must run to the cap.
      r.metrics.pdr_percent = (c.seed % 2 == 0) ? 10.0 : 90.0;
    }
    return r;
  };
  options.adaptive.ci_rel = 0.2;
  options.adaptive.min_seeds = 3;
  options.adaptive.max_seeds = 10;
  options.adaptive.batch = 2;
  options.adaptive.metric = "pdr_percent";

  campaign::CampaignResult result;
  std::string error;
  ASSERT_TRUE(campaign::run_campaign(spec, options, &result, &error)) << error;
  ASSERT_EQ(result.aggregates.size(), 2u);
  EXPECT_EQ(result.aggregates[0].runs, 3);   // stopped at min_seeds
  EXPECT_EQ(result.aggregates[1].runs, 10);  // ran to --max-seeds
  EXPECT_EQ(invocations.load(), 13);
  EXPECT_EQ(result.jobs_run, 13u);
  EXPECT_DOUBLE_EQ(result.aggregates[0].pdr_percent.stddev, 0.0);

  // Unknown metric fails loudly instead of never stopping.
  options.adaptive.metric = "warp_speed";
  EXPECT_FALSE(campaign::run_campaign(spec, options, &result, &error));
  EXPECT_NE(error.find("warp_speed"), std::string::npos);
}

TEST(CampaignAdaptive, RejectsResumeJournalSeedsBeyondMaxSeeds) {
  // A fixed-seed run journals 5 seeds per point; resuming that journal
  // adaptively with --max-seeds 3 leaves seed #3/#4 no slot in the
  // adaptive bookkeeping. That must be a loud mismatch error — writing
  // them through would index past the per-point `done` rows (heap OOB).
  CampaignSpec spec;
  spec.base = tiny();
  spec.axes = {{"traffic_ppm", {"30"}}};
  spec.seeds = {1, 2, 3, 4, 5};

  const std::string journal = test_file("adaptive_cap.jsonl");
  std::filesystem::remove(journal);
  std::string error;

  campaign::CampaignOptions fixed;
  fixed.runner.jobs = 1;
  fixed.runner.run_fn = synthetic_run;
  fixed.journal_path = journal;
  campaign::CampaignResult first;
  ASSERT_TRUE(campaign::run_campaign(spec, fixed, &first, &error)) << error;
  EXPECT_EQ(first.jobs_run, 5u);

  campaign::CampaignOptions adaptive = fixed;
  adaptive.resume = true;
  adaptive.adaptive.ci_rel = 0.2;
  adaptive.adaptive.max_seeds = 3;
  campaign::CampaignResult resumed;
  EXPECT_FALSE(campaign::run_campaign(spec, adaptive, &resumed, &error));
  EXPECT_NE(error.find("seed cap"), std::string::npos) << error;

  // With a cap that covers the journal, the same resume is satisfied.
  adaptive.adaptive.max_seeds = 5;
  ASSERT_TRUE(campaign::run_campaign(spec, adaptive, &resumed, &error)) << error;
  EXPECT_EQ(resumed.jobs_skipped, 5u);
}

TEST(CampaignAdaptive, ResumedAdaptiveCampaignRunsNothingWhenConverged) {
  CampaignSpec spec;
  spec.base = tiny();
  spec.axes = {{"traffic_ppm", {"30"}}};
  spec.seeds = {1, 2, 3};

  const std::string journal = test_file("adaptive_resume.jsonl");
  std::filesystem::remove(journal);

  std::atomic<int> invocations{0};
  campaign::CampaignOptions options;
  options.runner.jobs = 1;
  options.runner.run_fn = [&invocations](const ScenarioConfig& c) {
    ++invocations;
    ExperimentResult r = synthetic_run(c);
    r.metrics.pdr_percent = 90.0;
    return r;
  };
  options.adaptive.ci_rel = 0.2;
  options.adaptive.max_seeds = 10;
  options.journal_path = journal;

  campaign::CampaignResult first;
  std::string error;
  ASSERT_TRUE(campaign::run_campaign(spec, options, &first, &error)) << error;
  EXPECT_EQ(invocations.load(), 3);

  invocations = 0;
  options.resume = true;
  campaign::CampaignResult resumed;
  ASSERT_TRUE(campaign::run_campaign(spec, options, &resumed, &error)) << error;
  EXPECT_EQ(invocations.load(), 0);  // already converged; journal satisfies it
  EXPECT_EQ(resumed.aggregates[0].runs, 3);
}

TEST(CampaignAdaptive, ShardedResumeCountsOnlyThisShardsSkippedJobs) {
  // jobs_skipped feeds the "[campaign] resumed: N jobs from journal" line
  // that scripts (and the CI smoke job) grep; like fixed mode, it must
  // count only this shard's jobs even when the journal carries other
  // shards' records (e.g. a shared filesystem journal).
  CampaignSpec spec;
  spec.base = tiny();
  spec.axes = {{"traffic_ppm", {"30", "120"}}};
  spec.seeds = {1, 2, 3};

  const std::string journal = test_file("adaptive_shard_resume.jsonl");
  std::filesystem::remove(journal);
  std::string error;

  std::atomic<int> invocations{0};
  campaign::CampaignOptions options;
  options.runner.jobs = 1;
  options.runner.run_fn = [&invocations](const ScenarioConfig& c) {
    ++invocations;
    ExperimentResult r = synthetic_run(c);
    r.metrics.pdr_percent = 90.0;  // zero variance: stop at min_seeds
    return r;
  };
  options.adaptive.ci_rel = 0.2;
  options.adaptive.max_seeds = 10;
  options.journal_path = journal;

  // Unsharded pass journals min_seeds = 3 records for each of the 2 points.
  campaign::CampaignResult first;
  ASSERT_TRUE(campaign::run_campaign(spec, options, &first, &error)) << error;
  EXPECT_EQ(invocations.load(), 6);

  invocations = 0;
  options.resume = true;
  options.shard = {0, 2};
  campaign::CampaignResult resumed;
  ASSERT_TRUE(campaign::run_campaign(spec, options, &resumed, &error)) << error;
  EXPECT_EQ(invocations.load(), 0);
  EXPECT_EQ(resumed.jobs_skipped, 3u);  // this shard's point only, not all 6
}

// ----------------------------------------------------------------- flags --

bool parse_flags(std::vector<const char*> args, campaign::CampaignOptions* options,
                 std::string* error) {
  args.insert(args.begin(), "prog");
  Flags flags(static_cast<int>(args.size()), const_cast<char**>(args.data()));
  return campaign::parse_campaign_flags(flags, options, error);
}

TEST(CampaignFlags, ValidatesCountFlags) {
  campaign::CampaignOptions options;
  std::string error;
  ASSERT_TRUE(parse_flags({"--jobs=3", "--ci-rel=0.1", "--max-seeds=50",
                           "--min-seeds=5", "--batch=4"},
                          &options, &error))
      << error;
  EXPECT_EQ(options.runner.jobs, 3);
  EXPECT_EQ(options.adaptive.max_seeds, 50u);
  EXPECT_EQ(options.adaptive.min_seeds, 5u);
  EXPECT_EQ(options.adaptive.batch, 4u);

  // A negative count must be a usage error naming the flag — cast to
  // size_t it would wrap to ~2^64 and send extend_seeds toward OOM.
  options = {};
  EXPECT_FALSE(parse_flags({"--ci-rel=0.1", "--max-seeds=-1"}, &options, &error));
  EXPECT_NE(error.find("max-seeds"), std::string::npos) << error;
  // Non-numeric values must not silently parse as 0 via strtoll.
  options = {};
  EXPECT_FALSE(parse_flags({"--ci-rel=0.1", "--max-seeds=abc"}, &options, &error));
  EXPECT_NE(error.find("abc"), std::string::npos) << error;
  options = {};
  EXPECT_FALSE(parse_flags({"--ci-rel=0.1", "--min-seeds=-3"}, &options, &error));
  options = {};
  EXPECT_FALSE(parse_flags({"--ci-rel=0.1", "--batch=2.5"}, &options, &error));
  options = {};
  EXPECT_FALSE(parse_flags({"--jobs=-4"}, &options, &error));
  EXPECT_NE(error.find("jobs"), std::string::npos) << error;
  // Large values are bounded where the per-seed bookkeeping they authorize
  // is still affordable — not merely below integer wraparound.
  options = {};
  EXPECT_FALSE(
      parse_flags({"--ci-rel=0.1", "--max-seeds=999999999"}, &options, &error));
  EXPECT_NE(error.find("no greater than"), std::string::npos) << error;
  options = {};
  EXPECT_FALSE(
      parse_flags({"--ci-rel=0.1", "--max-seeds=99999999999999999999"}, &options,
                  &error));
}

TEST(CampaignFlags, RetriesRequireIsolateOrJobTimeout) {
  // Without --isolate or --job-timeout every run path is infallible, so a
  // lone --retries would be a silent no-op; it must error out loudly like
  // the adaptive-only flags without --ci-rel.
  campaign::CampaignOptions options;
  std::string error;
  EXPECT_FALSE(parse_flags({"--retries=2"}, &options, &error));
  EXPECT_NE(error.find("retries"), std::string::npos) << error;

  options = {};
  ASSERT_TRUE(parse_flags({"--isolate", "--retries=2"}, &options, &error))
      << error;
  EXPECT_EQ(options.fault.retries, 2);

  options = {};
  ASSERT_TRUE(parse_flags({"--job-timeout=5", "--retries=1"}, &options, &error))
      << error;
  EXPECT_EQ(options.fault.retries, 1);
}

TEST(CampaignFlags, BareJournalAndResumeRequirePaths) {
  // A value-less flag parses as the string "true"; without the guard the
  // campaign would silently journal to a file literally named 'true'.
  campaign::CampaignOptions options;
  std::string error;
  EXPECT_FALSE(parse_flags({"--journal"}, &options, &error));
  EXPECT_NE(error.find("journal path"), std::string::npos) << error;
  EXPECT_TRUE(options.journal_path.empty());
  options = {};
  EXPECT_FALSE(parse_flags({"--journal", "--quiet"}, &options, &error));
  options = {};
  EXPECT_FALSE(parse_flags({"--resume"}, &options, &error));
  EXPECT_NE(error.find("journal path"), std::string::npos) << error;
  options = {};
  ASSERT_TRUE(parse_flags({"--journal=j.jsonl"}, &options, &error)) << error;
  EXPECT_EQ(options.journal_path, "j.jsonl");
}

// ---------------------------------------------------------------- report --

TEST(CampaignReport, CsvRowsMatchHeaderWidth) {
  PointAccumulator acc;
  acc.add(0, fake_result(90.0, 100.0, 240));
  acc.add(1, fake_result(80.0, 150.0, 260));
  PointAggregate agg = acc.finalize();
  agg.label = "traffic_ppm=30";
  agg.coords = {{"traffic_ppm", "30"}};

  const std::vector<PointAggregate> aggregates{agg};
  const auto header = campaign::csv_header(aggregates);
  const auto row = campaign::csv_row(agg);
  EXPECT_EQ(header.size(), row.size());
  EXPECT_EQ(header.front(), "label");
  EXPECT_EQ(header[1], "traffic_ppm");
  EXPECT_EQ(row[1], "30");
}

TEST(CampaignReport, JsonCarriesLabelsAndSpread) {
  PointAccumulator acc;
  acc.add(0, fake_result(90.0, 100.0, 240));
  acc.add(1, fake_result(80.0, 150.0, 260));
  PointAggregate agg = acc.finalize();
  agg.label = "scheduler=gt-tsch";
  agg.coords = {{"scheduler", "gt-tsch"}};

  const std::string json = campaign::render_json({agg});
  EXPECT_NE(json.find("\"label\": \"scheduler=gt-tsch\""), std::string::npos);
  EXPECT_NE(json.find("\"pdr_percent\""), std::string::npos);
  EXPECT_NE(json.find("\"stddev\""), std::string::npos);
  EXPECT_NE(json.find("\"runs\": 2"), std::string::npos);
}

TEST(CampaignReport, SingleSeedRoundTripHasZeroStddevAndBlankCi95) {
  // Full journal round trip at n == 1 — the degenerate-statistics seam: a
  // single run has no sample variance (df = 0), so the aggregate must
  // report stddev exactly 0 and *no* confidence interval — a blank CSV
  // cell and a JSON null, never a division-by-zero artifact (NaN/inf
  // would poison downstream tooling that parses the report).
  CampaignSpec spec = tiny_spec();
  spec.seeds = {42};  // one seed: every point aggregates exactly one run

  const std::string journal = test_file("single_seed_roundtrip.jsonl");
  std::filesystem::remove(journal);
  campaign::CampaignOptions options;
  options.runner.jobs = 1;
  options.runner.run_fn = synthetic_run;
  options.journal_path = journal;
  campaign::CampaignResult result;
  std::string error;
  ASSERT_TRUE(campaign::run_campaign(spec, options, &result, &error)) << error;

  // journal -> aggregate
  std::vector<campaign::JournalRecord> records;
  ASSERT_TRUE(campaign::read_journal(journal, &records, &error)) << error;
  EXPECT_EQ(records.size(), 4u);  // 4 points x 1 seed
  std::vector<campaign::PointAggregate> aggregates;
  ASSERT_TRUE(campaign::aggregate_records(records, &aggregates, &error)) << error;
  ASSERT_EQ(aggregates.size(), 4u);
  for (const campaign::PointAggregate& agg : aggregates) {
    EXPECT_EQ(agg.pdr_percent.n, 1u);
    EXPECT_DOUBLE_EQ(agg.pdr_percent.stddev, 0.0);
    EXPECT_DOUBLE_EQ(agg.pdr_percent.ci95_half, 0.0);
    EXPECT_DOUBLE_EQ(agg.avg_delay_ms.stddev, 0.0);
    EXPECT_DOUBLE_EQ(agg.avg_delay_ms.ci95_half, 0.0);
  }

  // aggregate -> CSV: every *_ci95 cell is empty, stddev cells are "0".
  const auto header = campaign::csv_header(aggregates);
  const auto row = campaign::csv_row(aggregates.front());
  ASSERT_EQ(header.size(), row.size());
  std::size_t ci95_columns = 0;
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i].size() > 5 && header[i].substr(header[i].size() - 5) == "_ci95") {
      ++ci95_columns;
      EXPECT_TRUE(row[i].empty()) << header[i] << " = '" << row[i] << "'";
    }
    if (header[i].size() > 7 &&
        header[i].substr(header[i].size() - 7) == "_stddev") {
      EXPECT_EQ(std::stod(row[i]), 0.0) << header[i];
    }
  }
  EXPECT_GT(ci95_columns, 0u);

  // aggregate -> JSON: ci95 renders as null, and no NaN leaks anywhere.
  const std::string json = campaign::render_json(aggregates);
  EXPECT_NE(json.find("\"ci95\": null"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
}

}  // namespace
}  // namespace gttsch
