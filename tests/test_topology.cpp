// Topology-builder tests: structure, reachability and interference
// geometry that the Section III analysis relies on.
#include <gtest/gtest.h>

#include <vector>

#include "scenario/experiment.hpp"
#include "scenario/topology.hpp"

namespace gttsch {
namespace {

double dist(const TopologySpec& t, std::size_t a, std::size_t b) {
  return distance(t.nodes[a].pos, t.nodes[b].pos);
}

TEST(Topology, PaperDodagSeven) {
  const auto t = build_dodag(1, {0, 0}, 7, 30.0);
  EXPECT_EQ(t.size(), 7u);
  EXPECT_EQ(t.root_count(), 1u);
  EXPECT_TRUE(t.nodes[0].is_root);
  // 2 routers + 4 leaves (Fig 6 shape).
  for (std::size_t i = 1; i <= 2; ++i) EXPECT_NEAR(dist(t, 0, i), 30.0, 1e-6);
  for (std::size_t i = 3; i < 7; ++i) EXPECT_GT(dist(t, 0, i), 40.0);
}

class DodagSizes : public ::testing::TestWithParam<int> {};

TEST_P(DodagSizes, SizesAndIds) {
  const int n = GetParam();
  const auto t = build_dodag(10, {5, 5}, n, 25.0);
  EXPECT_EQ(t.size(), static_cast<std::size_t>(n));
  EXPECT_EQ(t.root_count(), 1u);
  for (std::size_t i = 0; i < t.size(); ++i)
    EXPECT_EQ(t.nodes[i].id, static_cast<NodeId>(10 + i));
}

TEST_P(DodagSizes, LeavesReachExactlyOneRouterStrongly) {
  const int n = GetParam();
  const double d = 30.0;
  const auto t = build_dodag(1, {0, 0}, n, d);
  const int routers = std::max(1, (n - 1 + 2) / 3);
  for (std::size_t leaf = 1 + routers; leaf < t.size(); ++leaf) {
    int reachable_routers = 0;
    for (std::size_t r = 1; r <= static_cast<std::size_t>(routers); ++r)
      if (dist(t, leaf, r) <= d * 1.35) ++reachable_routers;
    EXPECT_GE(reachable_routers, 1) << "leaf " << leaf;
    // Root unreachable from leaves (forces multi-hop).
    EXPECT_GT(dist(t, leaf, 0), d * 1.35);
  }
}

INSTANTIATE_TEST_SUITE_P(PaperRange, DodagSizes, ::testing::Values(6, 7, 8, 9));

TEST(Topology, MultiDodagIsolation) {
  const auto t = build_multi_dodag(2, 7, 30.0);
  EXPECT_EQ(t.size(), 14u);
  EXPECT_EQ(t.root_count(), 2u);
  // Everything in DODAG 0 is radio-silent to everything in DODAG 1.
  for (std::size_t a = 0; a < 7; ++a)
    for (std::size_t b = 7; b < 14; ++b) EXPECT_GT(dist(t, a, b), 1000.0);
}

TEST(Topology, MultiDodagUniqueIds) {
  const auto t = build_multi_dodag(3, 6, 30.0);
  std::set<NodeId> ids;
  for (const auto& n : t.nodes) ids.insert(n.id);
  EXPECT_EQ(ids.size(), t.size());
}

TEST(Topology, SiblingsWithinInterferenceRange) {
  // Problem 2 of Section III requires overlapping sibling coverage.
  const double d = 30.0;
  const auto t = build_dodag(1, {0, 0}, 7, d);
  EXPECT_LT(dist(t, 1, 2), 2.1 * d);  // the two routers hear each other('s tx)
}

TEST(Topology, Line) {
  const auto t = build_line(1, {0, 0}, 4, 20.0);
  EXPECT_EQ(t.size(), 5u);
  EXPECT_TRUE(t.nodes[0].is_root);
  for (std::size_t i = 1; i < t.size(); ++i) EXPECT_NEAR(dist(t, i - 1, i), 20.0, 1e-9);
  EXPECT_NEAR(dist(t, 0, 4), 80.0, 1e-9);
}

TEST(Topology, Grid) {
  const auto t = build_grid(1, {0, 0}, 3, 2, 10.0);
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(t.root_count(), 1u);
  EXPECT_TRUE(t.nodes[0].is_root);
  EXPECT_NEAR(dist(t, 0, 5), std::sqrt(400.0 + 100.0), 1e-9);
}

TEST(Topology, RootsHelper) {
  const auto t = build_multi_dodag(2, 6, 30.0);
  const auto roots = t.roots();
  ASSERT_EQ(roots.size(), 2u);
  EXPECT_EQ(roots[0], 1);
  EXPECT_EQ(roots[1], 7);
}

/// True when the unit-disk graph over `spec` at `range` is connected.
bool disk_graph_connected(const TopologySpec& spec, double range) {
  const std::size_t n = spec.size();
  if (n == 0) return true;
  std::vector<bool> seen(n, false);
  std::vector<std::size_t> stack{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const std::size_t a = stack.back();
    stack.pop_back();
    for (std::size_t b = 0; b < n; ++b) {
      if (seen[b] || distance(spec.nodes[a].pos, spec.nodes[b].pos) > range) continue;
      seen[b] = true;
      ++visited;
      stack.push_back(b);
    }
  }
  return visited == n;
}

TEST(Topology, RandomDiskIsConnectedAtConnectRange) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull, 1234ull}) {
    const auto t = build_random_disk(1, {0, 0}, 100, 150.0, 30.0, seed);
    ASSERT_EQ(t.size(), 100u);
    EXPECT_EQ(t.root_count(), 1u);
    EXPECT_TRUE(t.nodes[0].is_root);
    EXPECT_TRUE(disk_graph_connected(t, 30.0)) << "seed " << seed;
  }
}

TEST(Topology, RandomDiskIsDeterministicInSeedOnly) {
  const auto a = build_random_disk(1, {0, 0}, 50, 120.0, 30.0, 9);
  const auto b = build_random_disk(1, {0, 0}, 50, 120.0, 30.0, 9);
  const auto c = build_random_disk(1, {0, 0}, 50, 120.0, 30.0, 10);
  ASSERT_EQ(a.size(), b.size());
  bool any_differs_from_c = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.nodes[i].pos, b.nodes[i].pos);
    if (!(a.nodes[i].pos == c.nodes[i].pos)) any_differs_from_c = true;
  }
  EXPECT_TRUE(any_differs_from_c);
}

TEST(Topology, RandomDiskStaysNearTheDisk) {
  // The connectivity fallback may nudge a node slightly outside; it must
  // never teleport far from the deployment.
  const auto t = build_random_disk(1, {10, -20}, 200, 200.0, 30.0, 5);
  for (const NodeSpec& node : t.nodes) {
    EXPECT_LE(distance(node.pos, {10, -20}), 200.0 + 30.0);
  }
}

TEST(Topology, ScenarioConfigBuilderKinds) {
  ScenarioConfig sc;
  sc.topology = TopologyKind::kGrid;
  sc.topology_nodes = 50;
  EXPECT_EQ(sc.make_topology().size(), 50u);
  EXPECT_EQ(sc.make_topology().root_count(), 1u);

  sc.topology = TopologyKind::kLine;
  sc.topology_nodes = 12;
  EXPECT_EQ(sc.make_topology().size(), 12u);
  sc.topology_nodes = 1;  // boundary: a 1-node "line" is just the root
  EXPECT_EQ(sc.make_topology().size(), 1u);
  EXPECT_EQ(sc.make_topology().root_count(), 1u);

  sc.topology = TopologyKind::kRandomDisk;
  sc.topology_nodes = 75;
  sc.disk_radius = 140.0;
  const auto disk = sc.make_topology();
  EXPECT_EQ(disk.size(), 75u);
  // Connected at hop_distance (the connect range) by construction.
  EXPECT_TRUE(disk_graph_connected(disk, sc.hop_distance));

  sc.topology = TopologyKind::kMultiDodag;
  EXPECT_EQ(sc.make_topology().size(),
            static_cast<std::size_t>(sc.dodag_count * sc.nodes_per_dodag));
}

}  // namespace
}  // namespace gttsch
