#!/bin/sh
# CLI contract tests for gt_campaign, run by ctest (see CMakeLists.txt):
#   * every spec-validation error exits 2 and names the offending key
#   * stray positionals are usage errors, not silently-ignored typos
#   * the shard -> journal -> merge round trip reproduces the unsharded
#     CSV byte for byte
# Usage: gt_campaign_cli_test.sh /path/to/gt_campaign
set -u

BIN=$1
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
fails=0

# expect_exit <expected-code> <label> [args...]
expect_exit() {
    expected=$1; label=$2; shift 2
    "$BIN" "$@" >"$TMP/out" 2>"$TMP/err"
    actual=$?
    if [ "$actual" -ne "$expected" ]; then
        echo "FAIL: $label: exit $actual, expected $expected" >&2
        cat "$TMP/err" >&2
        fails=$((fails + 1))
    fi
}

# expect_stderr <substring> <label>  (checks the previous command's stderr)
expect_stderr() {
    if ! grep -q "$1" "$TMP/err"; then
        echo "FAIL: $2: stderr does not mention '$1'" >&2
        cat "$TMP/err" >&2
        fails=$((fails + 1))
    fi
}

expect_exit 0 "--help" --help
expect_exit 0 "--list-fields" --list-fields
expect_exit 0 "--list-metrics" --list-metrics

expect_exit 2 "unknown --set key" --set warp_factor=9
expect_stderr "warp_factor" "unknown --set key"
expect_exit 2 "duplicate --set key" --set "alpha=1;alpha=2"
expect_stderr "alpha" "duplicate --set key"
expect_exit 2 "unparseable --set value" --set traffic_ppm=fast
expect_stderr "traffic_ppm" "unparseable --set value"
expect_exit 2 "out-of-range --grid value" --grid link_prr=0.5,1.5
expect_stderr "link_prr" "out-of-range --grid value"
expect_exit 2 "malformed --grid" --grid "=30"
expect_exit 2 "duplicate seeds" --seeds 1,2,1
expect_exit 2 "bad shard" --shard 3/2
expect_stderr "out of range" "bad shard"
expect_exit 2 "bad metric" --ci-rel 0.1 --metric warp_speed
expect_stderr "warp_speed" "bad metric"
expect_exit 2 "metric without --ci-rel" --metric pdr_percent
expect_stderr "ci-rel" "metric without --ci-rel"
expect_exit 2 "bad ci-rel" --ci-rel -0.5
expect_exit 2 "stray positional" frobnicate
expect_stderr "frobnicate" "stray positional"
expect_exit 2 "unknown flag" --frobnicate 1
expect_exit 2 "merge without journals" merge
expect_exit 2 "merge with missing journal" merge "$TMP/nope.jsonl"
expect_exit 2 "resume without path" --resume
expect_exit 2 "journal without path" --journal
expect_stderr "journal path" "journal without path"
expect_exit 2 "adaptive flag without --ci-rel" --max-seeds 50
expect_stderr "ci-rel" "adaptive flag without --ci-rel"
expect_exit 2 "negative max-seeds" --ci-rel 0.1 --max-seeds -1
expect_stderr "max-seeds" "negative max-seeds"
expect_exit 2 "non-numeric min-seeds" --ci-rel 0.1 --min-seeds abc
expect_stderr "min-seeds" "non-numeric min-seeds"
expect_exit 2 "non-numeric jobs" --jobs many
expect_stderr "jobs" "non-numeric jobs"

# Runtime I/O failures are exit 1, not the usage code 2.
expect_exit 1 "unwritable journal" --grid traffic_ppm=30 --seeds 1 --quiet \
    --set "dodag_count=1;nodes_per_dodag=4;warmup_s=30;measure_s=30" \
    --journal "$TMP/no/such/dir/j.jsonl"

# Functional round trip on a deliberately tiny scenario.
COMMON="--grid traffic_ppm=30,120 --seeds 1,2 --quiet"
SET="dodag_count=1;nodes_per_dodag=4;warmup_s=30;measure_s=30"
expect_exit 0 "unsharded run" $COMMON --set "$SET" --out "$TMP/full"
expect_exit 0 "shard 0/2" $COMMON --set "$SET" --shard 0/2 --journal "$TMP/s0.jsonl"
expect_exit 0 "shard 1/2" $COMMON --set "$SET" --shard 1/2 --journal "$TMP/s1.jsonl"
expect_exit 0 "merge shards" merge --out "$TMP/merged" "$TMP/s0.jsonl" "$TMP/s1.jsonl"
if ! cmp -s "$TMP/full.csv" "$TMP/merged.csv"; then
    echo "FAIL: merged shard CSV differs from unsharded CSV" >&2
    fails=$((fails + 1))
fi

# Merging journals from two different campaigns is rejected, not averaged.
expect_exit 0 "journal A" --grid traffic_ppm=30 --seeds 1 --quiet \
    --set "$SET" --journal "$TMP/ja.jsonl"
expect_exit 0 "journal B" --grid traffic_ppm=120 --seeds 2 --quiet \
    --set "$SET" --journal "$TMP/jb.jsonl"
expect_exit 2 "merge of mixed campaigns" merge "$TMP/ja.jsonl" "$TMP/jb.jsonl"
expect_stderr "different campaigns" "merge of mixed campaigns"
# ... and concatenating them into ONE file must not sneak past that check.
cat "$TMP/ja.jsonl" "$TMP/jb.jsonl" > "$TMP/jab.jsonl"
expect_exit 2 "merge of concatenated mixed campaigns" merge "$TMP/jab.jsonl"
expect_stderr "disagree" "merge of concatenated mixed campaigns"

# Same grid + seeds over a different --set base config: labels and seeds
# agree, so only the campaign fingerprint tells the journals apart.
expect_exit 0 "journal C (different base)" --grid traffic_ppm=30 --seeds 1 --quiet \
    --set "dodag_count=1;nodes_per_dodag=5;warmup_s=30;measure_s=30" \
    --journal "$TMP/jc.jsonl"
expect_exit 2 "merge of different base configs" merge "$TMP/ja.jsonl" "$TMP/jc.jsonl"
expect_stderr "different campaigns" "merge of different base configs"

# Resume finds every job in the journal and re-runs nothing (instant).
expect_exit 0 "full-journal resume" $COMMON --set "$SET" --resume "$TMP/s0.jsonl" --shard 0/2
expect_stderr "resumed: 2 jobs from journal, 0 run now" "full-journal resume"

if [ "$fails" -ne 0 ]; then
    echo "$fails CLI check(s) failed" >&2
    exit 1
fi
echo "all CLI checks passed"
