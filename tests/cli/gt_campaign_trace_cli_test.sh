#!/bin/sh
# Golden CLI contract for trace-axis campaigns, run by ctest:
#   * sweeping a trace axis with --shard 2 + merge stays byte-identical
#     to the unsharded run
#   * resuming a trace campaign against a journal from a different
#     trace_seed is rejected by the campaign fingerprint (exit 2)
#   * the committed example trace files run end to end (the crashloop one
#     filling the recovery_* report columns), and malformed trace files
#     fail the spec naming the offending line
#   * `gt_campaign validate` vets every grid point's trace without
#     simulating: exit 0 when sound, exit 2 naming the offender otherwise
# Usage: gt_campaign_trace_cli_test.sh /path/to/gt_campaign example.trace crashloop.trace
set -u

BIN=$1
EXAMPLE_TRACE=$2
CRASHLOOP_TRACE=$3
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
fails=0

# expect_exit <expected-code> <label> [args...]
expect_exit() {
    expected=$1; label=$2; shift 2
    "$BIN" "$@" >"$TMP/out" 2>"$TMP/err"
    actual=$?
    if [ "$actual" -ne "$expected" ]; then
        echo "FAIL: $label: exit $actual, expected $expected" >&2
        cat "$TMP/err" >&2
        fails=$((fails + 1))
    fi
}

# expect_stderr <substring> <label>  (checks the previous command's stderr)
expect_stderr() {
    if ! grep -q "$1" "$TMP/err"; then
        echo "FAIL: $2: stderr does not mention '$1'" >&2
        cat "$TMP/err" >&2
        fails=$((fails + 1))
    fi
}

# The sweepable surface includes every trace field.
expect_exit 0 "--list-fields" --list-fields
for field in trace trace_kind trace_seed trace_movers trace_speed_mps \
             trace_interval_s trace_fail_count trace_fail_at_s \
             trace_down_s trace_cycle_s; do
    if ! grep -qx "$field" "$TMP/out"; then
        echo "FAIL: --list-fields does not list $field" >&2
        fails=$((fails + 1))
    fi
done

# Bad trace values are usage errors naming the offender.
expect_exit 2 "unknown trace_kind" --set trace_kind=teleport-only
expect_stderr "trace_kind" "unknown trace_kind"
expect_exit 2 "missing trace file" --set "trace_kind=file;trace=$TMP/nope.trace"
expect_stderr "nope.trace" "missing trace file"
expect_exit 2 "file kind without path" --set "trace_kind=file"
expect_stderr "trace=PATH" "file kind without path"
expect_exit 2 "zero trace interval" --grid trace_interval_s=0,2
expect_stderr "trace_interval_s" "zero trace interval"

# A malformed trace file fails the spec with the offending line number.
printf '10 move 2 5 5\n9 wiggle 2\n' > "$TMP/bad.trace"
expect_exit 2 "malformed trace file" --set "trace_kind=file;trace=$TMP/bad.trace"
expect_stderr "line 2" "malformed trace file"

# A trace addressing nodes the topology lacks is caught per grid point,
# before any simulation runs.
printf '10 move 99 5 5\n' > "$TMP/ghost.trace"
expect_exit 2 "trace with unknown node" --quiet --seeds 1 \
    --set "dodag_count=1;nodes_per_dodag=4;warmup_s=30;measure_s=30;trace_kind=file;trace=$TMP/ghost.trace"
expect_stderr "unknown node id 99" "trace with unknown node"

# `validate` vets the whole sweep's traces without running a single slot.
expect_exit 0 "validate sound crashloop grid" validate --seeds 1,2 \
    --grid trace_down_s=20,40 \
    --set "trace_kind=crashloop;trace_cycle_s=90;warmup_s=30;measure_s=60"
if ! grep -q "^validate: 2 points x 2 seeds OK" "$TMP/out"; then
    echo "FAIL: validate did not report the point/seed count" >&2
    cat "$TMP/out" >&2
    fails=$((fails + 1))
fi
expect_exit 2 "validate rejects bad crashloop params" validate \
    --set "trace_kind=crashloop;trace_down_s=200;trace_cycle_s=100"
expect_stderr "trace_cycle_s must exceed trace_down_s" \
    "validate rejects bad crashloop params"
printf '10 fail 2\n10 revive 2\n' > "$TMP/twice.trace"
expect_exit 2 "validate names the offending line" validate \
    --set "trace_kind=file;trace=$TMP/twice.trace"
expect_stderr "line 2" "validate names the offending line"
expect_stderr "strictly after" "validate names the offending line"

# Trace-axis sweep: shard 2 + merge is byte-identical to the unsharded run.
GRID="trace_kind=none,random-walk"
SET="dodag_count=1;nodes_per_dodag=4;warmup_s=30;measure_s=30;trace_movers=2;trace_speed_mps=3;trace_interval_s=5;trace_seed=7"
COMMON="--grid $GRID --seeds 1,2 --quiet"
expect_exit 0 "unsharded trace sweep" $COMMON --set "$SET" --out "$TMP/full"
expect_exit 0 "trace shard 0/2" $COMMON --set "$SET" --shard 0/2 --journal "$TMP/s0.jsonl"
expect_exit 0 "trace shard 1/2" $COMMON --set "$SET" --shard 1/2 --journal "$TMP/s1.jsonl"
expect_exit 0 "merge trace shards" merge --out "$TMP/merged" "$TMP/s0.jsonl" "$TMP/s1.jsonl"
if ! cmp -s "$TMP/full.csv" "$TMP/merged.csv"; then
    echo "FAIL: merged trace-shard CSV differs from unsharded CSV" >&2
    fails=$((fails + 1))
fi

# Resuming against a journal from a different trace_seed: labels, grid and
# seeds all agree — only the campaign fingerprint (which covers every
# trace field) can tell them apart. It must refuse.
SET8=$(printf '%s' "$SET" | sed 's/trace_seed=7/trace_seed=8/')
expect_exit 2 "resume across trace_seed" $COMMON --set "$SET8" --shard 0/2 \
    --resume "$TMP/s0.jsonl"
expect_stderr "does not match this campaign" "resume across trace_seed"
# Same refusal for merging the two seeds' journals together.
expect_exit 0 "trace_seed=8 journal" $COMMON --set "$SET8" --shard 0/2 \
    --journal "$TMP/s8.jsonl"
expect_exit 2 "merge across trace_seed" merge "$TMP/s0.jsonl" "$TMP/s8.jsonl"
expect_stderr "different campaigns" "merge across trace_seed"

# Editing a trace *file* between runs is caught too: the fingerprint
# hashes the file's canonical content, not just its path.
printf '35 move 2 10 10\n' > "$TMP/evolving.trace"
FSET="dodag_count=1;nodes_per_dodag=4;warmup_s=30;measure_s=30;trace_kind=file;trace=$TMP/evolving.trace"
expect_exit 0 "trace-file journal" --seeds 1 --quiet --set "$FSET" --journal "$TMP/file.jsonl"
printf '35 move 2 11 10\n' > "$TMP/evolving.trace"
expect_exit 2 "resume after trace file edit" --seeds 1 --quiet --set "$FSET" \
    --resume "$TMP/file.jsonl"
expect_stderr "does not match this campaign" "resume after trace file edit"

# Resume with the matching trace_seed finds every job and re-runs nothing.
expect_exit 0 "matching resume" $COMMON --set "$SET" --shard 0/2 --resume "$TMP/s0.jsonl"
expect_stderr "resumed: 2 jobs from journal, 0 run now" "matching resume"

# The committed example trace file runs end to end on its documented
# scenario (1x7 DODAG; ids 1..7).
expect_exit 0 "example trace file" --quiet --seeds 1 \
    --set "dodag_count=1;nodes_per_dodag=7;warmup_s=30;measure_s=30;trace_kind=file;trace=$EXAMPLE_TRACE"

# The committed crashloop example fills the recovery columns: both crashed
# leaves reboot and rejoin, so node_rejoins >= 1 and the rejoin latency is
# a real number, not a blank.
expect_exit 0 "crashloop example trace" --quiet --seeds 1 \
    --set "dodag_count=1;nodes_per_dodag=7;warmup_s=40;measure_s=80;trace_kind=file;trace=$CRASHLOOP_TRACE" \
    --out "$TMP/crash"
for col in recovery_rejoin_s_mean recovery_ttr_s_mean node_rejoins; do
    if ! head -1 "$TMP/crash.csv" | tr ',' '\n' | grep -qx "$col"; then
        echo "FAIL: crashloop report lacks column $col" >&2
        fails=$((fails + 1))
    fi
done
rejoins=$(awk -F, 'NR==1 { for (i = 1; i <= NF; i++) if ($i == "node_rejoins") c = i }
                   NR==2 { print $c }' "$TMP/crash.csv")
if [ "${rejoins:-0}" -lt 1 ]; then
    echo "FAIL: crashloop example recorded no rejoins (got '${rejoins:-}')" >&2
    fails=$((fails + 1))
fi

if [ "$fails" -ne 0 ]; then
    echo "$fails trace CLI check(s) failed" >&2
    exit 1
fi
echo "all trace CLI checks passed"
