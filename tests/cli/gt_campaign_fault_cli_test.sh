#!/bin/sh
# Fault-tolerance contract tests for gt_campaign, run by ctest:
#   * chaos campaign (one crashing point, one hanging point) finishes,
#     quarantines exactly the sick jobs, journals their status, reports
#     failed_jobs per point, and exits 3
#   * --isolate results for healthy jobs are byte-identical to a
#     non-isolated --jobs 1 run (CSV and journal)
#   * --resume skips quarantined records; --resume --retry-quarantined
#     re-runs exactly the failed jobs
#   * first SIGINT drains in-flight work, writes artifacts, exits 130
# Usage: gt_campaign_fault_cli_test.sh /path/to/gt_campaign
set -u

BIN=$1
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
fails=0

fail() {
    echo "FAIL: $1" >&2
    [ -f "$TMP/err" ] && cat "$TMP/err" >&2
    fails=$((fails + 1))
}

# expect_exit <expected-code> <label> [args...]
expect_exit() {
    expected=$1; label=$2; shift 2
    "$BIN" "$@" >"$TMP/out" 2>"$TMP/err"
    actual=$?
    if [ "$actual" -ne "$expected" ]; then
        fail "$label: exit $actual, expected $expected"
    fi
}

SET="dodag_count=1;nodes_per_dodag=4;warmup_s=30;measure_s=30"
COMMON="--grid traffic_ppm=30,120 --seeds 1,2 --quiet --set"

# ---- flag grammar ---------------------------------------------------------
expect_exit 2 "bad --job-timeout" $COMMON "$SET" --job-timeout 0
expect_exit 2 "negative --retries" $COMMON "$SET" --isolate --retries -1
expect_exit 2 "--retries without --isolate/--job-timeout" \
    $COMMON "$SET" --retries 2
expect_exit 2 "--retry-quarantined without --resume" \
    $COMMON "$SET" --retry-quarantined
expect_exit 2 "--isolate with --telemetry-dir" \
    $COMMON "$SET" --isolate --telemetry-dir "$TMP/tele"

# ---- isolate byte-identity ------------------------------------------------
expect_exit 0 "plain run" $COMMON "$SET" --jobs 1 \
    --journal "$TMP/plain.jsonl" --out "$TMP/plain"
expect_exit 0 "isolated run" $COMMON "$SET" --jobs 1 --isolate \
    --journal "$TMP/iso.jsonl" --out "$TMP/iso"
cmp -s "$TMP/plain.csv" "$TMP/iso.csv" || fail "isolated CSV differs from plain CSV"
cmp -s "$TMP/plain.jsonl" "$TMP/iso.jsonl" || fail "isolated journal differs from plain journal"

# ---- chaos campaign -------------------------------------------------------
# traffic_ppm=30 crashes (SIGABRT) in the child; traffic_ppm=120 hangs and
# is SIGKILLed by the 2 s watchdog. Healthy points still complete.
CHAOS_GRID="--grid traffic_ppm=30,75,120 --seeds 1,2 --quiet --set"
GTTSCH_CHAOS_POINT="traffic_ppm=30:crash" \
    "$BIN" $CHAOS_GRID "$SET" --jobs 2 --isolate --job-timeout 30 \
    --journal "$TMP/chaos.jsonl" --out "$TMP/chaos" >"$TMP/out" 2>"$TMP/err"
code=$?
[ "$code" -eq 3 ] || fail "chaos crash campaign: exit $code, expected 3"
grep -q '"status": "crashed"' "$TMP/chaos.jsonl" || fail "journal lacks crashed records"
grep -q '"attempts": ' "$TMP/chaos.jsonl" || fail "journal lacks attempt counts"
head -1 "$TMP/chaos.csv" | grep -q ",status,failed_jobs,failure_kinds," \
    || fail "CSV header lacks failure columns"
grep "^traffic_ppm=30," "$TMP/chaos.csv" | grep -q ",failed,2,crashed:2," \
    || fail "CSV lacks the all-failed point row"
grep "^traffic_ppm=75," "$TMP/chaos.csv" | grep -q ",ok,0,," \
    || fail "CSV lacks the healthy point row"
grep -q '"status": "failed"' "$TMP/chaos.json" || fail "JSON lacks status=failed"
grep -q '"failed_jobs": 2' "$TMP/chaos.json" || fail "JSON lacks failed_jobs"
grep -q "quarantined" "$TMP/err" || fail "no failure summary on stderr"

# Hanging jobs: a 2 s timeout SIGKILLs the sleeping child -> timeout records.
GTTSCH_CHAOS_POINT="traffic_ppm=75:hang" \
    "$BIN" $CHAOS_GRID "$SET" --jobs 2 --isolate --job-timeout 2 \
    --journal "$TMP/hang.jsonl" --out "$TMP/hang" >"$TMP/out" 2>"$TMP/err"
code=$?
[ "$code" -eq 3 ] || fail "chaos hang campaign: exit $code, expected 3"
grep -q '"status": "timeout"' "$TMP/hang.jsonl" || fail "journal lacks timeout records"
grep "^traffic_ppm=75," "$TMP/hang.csv" | grep -q ",failed,2,timeout:2," \
    || fail "CSV lacks the timed-out point row"

# ---- resume semantics -----------------------------------------------------
# Plain resume: quarantined stays quarantined, zero jobs run, still exit 3.
"$BIN" $CHAOS_GRID "$SET" --jobs 1 --isolate --job-timeout 30 \
    --resume "$TMP/chaos.jsonl" >"$TMP/out" 2>"$TMP/err"
code=$?
[ "$code" -eq 3 ] || fail "quarantined resume: exit $code, expected 3"
grep -q "resumed: 6 jobs from journal, 0 run now" "$TMP/err" \
    || fail "quarantined resume re-ran jobs"

# --retry-quarantined with the chaos hook cleared: exactly the 2 failed
# jobs re-run, succeed, and the campaign is clean (exit 0).
"$BIN" $CHAOS_GRID "$SET" --jobs 1 --isolate --job-timeout 30 \
    --resume "$TMP/chaos.jsonl" --retry-quarantined >"$TMP/out" 2>"$TMP/err"
code=$?
[ "$code" -eq 0 ] || fail "retry-quarantined: exit $code, expected 0"
grep -q "resumed: 4 jobs from journal, 2 run now" "$TMP/err" \
    || fail "retry-quarantined did not re-run exactly the failed jobs"

# A further resume sees the ok re-runs (they supersede the quarantine).
"$BIN" $CHAOS_GRID "$SET" --jobs 1 --isolate --job-timeout 30 \
    --resume "$TMP/chaos.jsonl" >"$TMP/out" 2>"$TMP/err"
code=$?
[ "$code" -eq 0 ] || fail "post-retry resume: exit $code, expected 0"
grep -q "resumed: 6 jobs from journal, 0 run now" "$TMP/err" \
    || fail "post-retry resume re-ran jobs"

# merge surfaces quarantined records with exit 3 too.
"$BIN" merge --out "$TMP/hangmerge" "$TMP/hang.jsonl" >"$TMP/out" 2>"$TMP/err"
code=$?
[ "$code" -eq 3 ] || fail "merge of quarantined journal: exit $code, expected 3"

# ---- SIGINT ---------------------------------------------------------------
# Hanging isolated jobs with a 3 s per-job timeout: SIGINT lands while the
# first job hangs; that in-flight job drains via its own timeout, no new
# job starts, artifacts are written, exit 130 (which outranks exit 3).
GTTSCH_CHAOS_POINT="traffic_ppm=30:hang" \
    "$BIN" --grid traffic_ppm=30 --seeds 1,2,3,4 --quiet --set "$SET" \
    --jobs 1 --isolate --job-timeout 3 \
    --journal "$TMP/int.jsonl" --out "$TMP/int" >"$TMP/out" 2>"$TMP/err" &
pid=$!
sleep 1
kill -INT "$pid"
wait "$pid"
code=$?
if [ "$code" -ne 130 ]; then
    fail "SIGINT: exit $code, expected 130"
else
    [ -f "$TMP/int.csv" ] || fail "SIGINT: partial artifacts not written"
    grep -q "interrupted" "$TMP/err" || fail "SIGINT: no interrupt notice"
fi

if [ "$fails" -ne 0 ]; then
    echo "$fails fault CLI check(s) failed" >&2
    exit 1
fi
echo "all fault CLI checks passed"
