// Experiment-runner tests: config derivation, metric sanity, seed
// averaging, and the paper's headline comparison (GT-TSCH >= Orchestra
// under heavy load) on a reduced-size run.
#include <gtest/gtest.h>

#include "scenario/experiment.hpp"

namespace gttsch {
namespace {

using namespace literals;

ScenarioConfig small(const std::string& kind, double ppm) {
  ScenarioConfig c;
  c.scheduler = kind;
  c.dodag_count = 1;
  c.nodes_per_dodag = 7;
  c.traffic_ppm = ppm;
  c.warmup = 180_s;
  c.measure = 120_s;
  c.seed = 5;
  return c;
}

TEST(ScenarioConfig, NodeConfigFollowsTableII) {
  ScenarioConfig c;
  const auto nc = c.make_node_config();
  EXPECT_EQ(nc.mac.timing.slot_duration, 15_ms);
  EXPECT_EQ(nc.mac.eb_period, 2_s);
  EXPECT_EQ(nc.mac.max_retries, 4);
  EXPECT_EQ(nc.mac.hopping.sequence(),
            (std::vector<PhysChannel>{17, 23, 15, 25, 19, 11, 13, 21}));
  EXPECT_EQ(nc.sf.gt.layout.length, 32);
  EXPECT_EQ(nc.sf.gt.layout.broadcast_slots, 4);
  EXPECT_EQ(nc.rpl.min_hop_rank_increase, 256);
}

TEST(ScenarioConfig, SlotframeScaling) {
  ScenarioConfig c;
  c.gt_slotframe_length = 80;
  const auto nc = c.make_node_config();
  EXPECT_EQ(nc.sf.gt.layout.length, 80);
  EXPECT_EQ(nc.sf.gt.layout.broadcast_slots, 10);
}

TEST(ScenarioConfig, TopologyMatchesCounts) {
  ScenarioConfig c;
  c.dodag_count = 2;
  c.nodes_per_dodag = 8;
  const auto t = c.make_topology();
  EXPECT_EQ(t.size(), 16u);
  EXPECT_EQ(t.root_count(), 2u);
}

TEST(Experiment, GtRunProducesSaneMetrics) {
  const auto r = run_scenario(small("gt-tsch", 30.0));
  EXPECT_TRUE(r.fully_formed);
  EXPECT_GT(r.metrics.generated, 40u);  // 6 senders x 30ppm x 2min x margin
  EXPECT_GT(r.metrics.pdr_percent, 85.0);
  EXPECT_GT(r.metrics.avg_delay_ms, 10.0);
  EXPECT_LT(r.metrics.avg_delay_ms, 1500.0);
  EXPECT_GT(r.metrics.duty_cycle_percent, 0.5);
  EXPECT_LT(r.metrics.duty_cycle_percent, 60.0);
}

TEST(Experiment, OrchestraRunProducesSaneMetrics) {
  const auto r = run_scenario(small("orchestra", 30.0));
  EXPECT_TRUE(r.fully_formed);
  EXPECT_GT(r.metrics.generated, 40u);
  EXPECT_GT(r.metrics.pdr_percent, 50.0);
}

TEST(Experiment, DeterministicPerSeed) {
  const auto a = run_scenario(small("gt-tsch", 60.0));
  const auto b = run_scenario(small("gt-tsch", 60.0));
  EXPECT_EQ(a.metrics.generated, b.metrics.generated);
  EXPECT_EQ(a.metrics.delivered, b.metrics.delivered);
  EXPECT_DOUBLE_EQ(a.metrics.avg_delay_ms, b.metrics.avg_delay_ms);
}

TEST(Experiment, SeedsChangeOutcomes) {
  auto c = small("gt-tsch", 60.0);
  const auto a = run_scenario(c);
  c.seed = 6;
  const auto b = run_scenario(c);
  EXPECT_NE(a.metrics.generated, b.metrics.generated);
}

TEST(Experiment, HeadlineComparisonUnderHeavyLoad) {
  // The paper's core claim (Fig 8): under heavy traffic GT-TSCH keeps PDR
  // high while Orchestra collapses toward ~50%.
  const auto gt = run_scenario(small("gt-tsch", 120.0));
  const auto orch = run_scenario(small("orchestra", 120.0));
  EXPECT_GT(gt.metrics.pdr_percent, orch.metrics.pdr_percent + 10.0);
  EXPECT_GT(gt.metrics.throughput_per_minute, orch.metrics.throughput_per_minute);
}

TEST(Experiment, AveragingAccumulates) {
  auto c = small("gt-tsch", 30.0);
  c.measure = 60_s;
  const auto avg = run_averaged(c, {1, 2});
  EXPECT_EQ(avg.runs, 2);
  EXPECT_GT(avg.mean.pdr_percent, 0.0);
  EXPECT_GT(avg.medium_sum.transmissions, 0u);
}

TEST(Experiment, DefaultSeedsNonEmpty) {
  const auto seeds = default_seeds();
  EXPECT_GE(seeds.size(), 1u);
  // Distinct seeds.
  for (std::size_t i = 1; i < seeds.size(); ++i) EXPECT_NE(seeds[i], seeds[i - 1]);
}

TEST(Experiment, SchedulerNames) {
  EXPECT_STREQ(scheduler_name("gt-tsch"), "GT-TSCH");
  EXPECT_STREQ(scheduler_name("orchestra"), "Orchestra");
}

}  // namespace
}  // namespace gttsch
