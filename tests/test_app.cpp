// Traffic-source tests: rate accuracy, jitter bounds, start/stop behavior.
#include <gtest/gtest.h>

#include "app/traffic.hpp"

namespace gttsch {
namespace {

using namespace literals;

TEST(PeriodicSource, RateMatchesConfiguredPpm) {
  Simulator sim(77);
  int generated = 0;
  PeriodicSource src(sim, Rng(1), 60.0, [&] { ++generated; });  // 1 pps
  src.start(0);
  sim.run_until(120_s);
  EXPECT_NEAR(generated, 120, 8);  // +/- jitter tolerance
}

TEST(PeriodicSource, HighRate) {
  Simulator sim(77);
  int generated = 0;
  PeriodicSource src(sim, Rng(2), 165.0, [&] { ++generated; });
  src.start(0);
  sim.run_until(60_s);
  EXPECT_NEAR(generated, 165, 12);
}

TEST(PeriodicSource, ZeroRateNeverFires) {
  Simulator sim(77);
  int generated = 0;
  PeriodicSource src(sim, Rng(3), 0.0, [&] { ++generated; });
  src.start(0);
  sim.run_until(60_s);
  EXPECT_EQ(generated, 0);
}

TEST(PeriodicSource, StartDelayHonored) {
  Simulator sim(77);
  TimeUs first = -1;
  PeriodicSource src(sim, Rng(4), 60.0, [&] {
    if (first < 0) first = sim.now();
  });
  src.start(10_s);
  sim.run_until(60_s);
  EXPECT_GE(first, 10_s);
  EXPECT_LE(first, 11_s);  // delay + at most one interval of phase
}

TEST(PeriodicSource, StopHalts) {
  Simulator sim(77);
  int generated = 0;
  PeriodicSource src(sim, Rng(5), 600.0, [&] { ++generated; });
  src.start(0);
  sim.run_until(10_s);
  const int at_stop = generated;
  src.stop();
  sim.run_until(60_s);
  EXPECT_EQ(generated, at_stop);
  EXPECT_GT(at_stop, 50);
}

TEST(PeriodicSource, EndTimeHonored) {
  Simulator sim(77);
  int generated = 0;
  PeriodicSource src(sim, Rng(6), 600.0, [&] { ++generated; });
  src.set_end_time(5_s);
  src.start(0);
  sim.run_until(60_s);
  // ~50 packets in the first 5 s, then silence.
  EXPECT_NEAR(generated, 50, 10);
}

TEST(PeriodicSource, JitterKeepsIntervalsBounded) {
  Simulator sim(77);
  std::vector<TimeUs> times;
  PeriodicSource src(sim, Rng(7), 60.0, [&] { times.push_back(sim.now()); });
  src.start(0);
  sim.run_until(60_s);
  ASSERT_GE(times.size(), 10u);
  for (std::size_t i = 1; i < times.size(); ++i) {
    const TimeUs gap = times[i] - times[i - 1];
    EXPECT_GE(gap, 800_ms);   // 80% of the 1 s mean
    EXPECT_LE(gap, 1200_ms);  // 120%
  }
}

TEST(PeriodicSource, DistinctSeedsDesynchronize) {
  Simulator sim(77);
  TimeUs first_a = -1, first_b = -1;
  PeriodicSource a(sim, Rng(10), 60.0, [&] {
    if (first_a < 0) first_a = sim.now();
  });
  PeriodicSource b(sim, Rng(11), 60.0, [&] {
    if (first_b < 0) first_b = sim.now();
  });
  a.start(0);
  b.start(0);
  sim.run_until(10_s);
  EXPECT_NE(first_a, first_b);
}

TEST(PeriodicSource, GeneratedCounter) {
  Simulator sim(77);
  PeriodicSource src(sim, Rng(12), 120.0, [] {});
  src.start(0);
  sim.run_until(30_s);
  EXPECT_NEAR(static_cast<double>(src.generated()), 60.0, 8.0);
}

}  // namespace
}  // namespace gttsch
