// Energy model and timeline recorder tests.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "phy/medium.hpp"
#include "sim/simulator.hpp"
#include "stats/energy.hpp"
#include "stats/telemetry.hpp"

namespace gttsch {
namespace {

using namespace literals;

TEST(EnergyModel, AverageCurrentWeighted) {
  EnergyModel m;
  // 10% tx, 20% rx, 70% sleep.
  const double i = m.average_current_ma(100_ms, 200_ms, 1_s);
  EXPECT_NEAR(i, 0.1 * 24.0 + 0.2 * 20.0 + 0.7 * 0.0013, 1e-9);
}

TEST(EnergyModel, SleepOnlyIsTiny) {
  EnergyModel m;
  EXPECT_NEAR(m.average_current_ma(0, 0, 1_s), 0.0013, 1e-9);
}

TEST(EnergyModel, ChargeScalesWithTime) {
  EnergyModel m;
  const double one_hour = m.charge_mah(0, 1800_s, 3600_s);  // 50% rx duty
  EXPECT_NEAR(one_hour, 10.0, 0.01);  // 20mA * 0.5 * 1h
}

TEST(EnergyModel, EnergyFromCharge) {
  EnergyModel m;
  // 10 mAh at 3 V = 10 * 3.6 C * 3 V = 108 J = 108000 mJ.
  EXPECT_NEAR(m.energy_mj(0, 1800_s, 3600_s), 108000.0, 100.0);
}

TEST(EnergyModel, LifetimeExtrapolation) {
  EnergyModel m;
  // 1% rx duty -> ~0.2 mA avg -> 2600 mAh AA pair -> ~540 days.
  const double days = m.lifetime_days(2600.0, 0, 10_ms, 1_s);
  EXPECT_GT(days, 400.0);
  EXPECT_LT(days, 700.0);
}

TEST(EnergyModel, HigherDutyShorterLife) {
  EnergyModel m;
  const double low = m.lifetime_days(2600.0, 5_ms, 50_ms, 1_s);
  const double high = m.lifetime_days(2600.0, 20_ms, 200_ms, 1_s);
  EXPECT_GT(low, high);
}

TEST(EnergyMeter, TracksWindowedRadioUse) {
  Simulator sim(5);
  Medium medium(sim, std::make_unique<UnitDiskModel>(10.0), Rng(5));
  Radio radio(sim, medium, 1, {});
  // Some pre-mark activity to be excluded.
  radio.listen(17);
  sim.run_until(500_ms);
  radio.turn_off();

  EnergyMeter meter(radio);
  meter.mark();
  sim.run_until(1_s);
  radio.listen(17);
  sim.run_until(1_s + 250_ms);
  radio.turn_off();
  EXPECT_EQ(meter.rx_time_since_mark(), 250_ms);
  EXPECT_EQ(meter.tx_time_since_mark(), 0);
  // 25% rx over a 1 s window.
  EXPECT_NEAR(meter.average_current_ma(1_s), 0.25 * 20.0, 0.01);
}

TEST(Timeline, SamplesGaugesPeriodically) {
  Simulator sim(1);
  Timeline tl(sim, 1_s);
  double value = 0.0;
  tl.add_gauge("v", [&] { return value; });
  tl.start();
  sim.at(1500_ms, [&] { value = 5.0; });
  sim.run_until(3500_ms);
  ASSERT_EQ(tl.samples().size(), 3u);
  EXPECT_DOUBLE_EQ(tl.samples()[0].values[0], 0.0);
  EXPECT_DOUBLE_EQ(tl.samples()[1].values[0], 5.0);
  EXPECT_DOUBLE_EQ(tl.latest("v"), 5.0);
}

TEST(Timeline, MultipleGaugesKeepOrder) {
  Simulator sim(1);
  Timeline tl(sim, 1_s);
  tl.add_gauge("a", [] { return 1.0; });
  tl.add_gauge("b", [] { return 2.0; });
  tl.start();
  sim.run_until(1_s);
  ASSERT_EQ(tl.gauge_names().size(), 2u);
  ASSERT_EQ(tl.samples().size(), 1u);
  EXPECT_DOUBLE_EQ(tl.samples()[0].values[0], 1.0);
  EXPECT_DOUBLE_EQ(tl.samples()[0].values[1], 2.0);
  EXPECT_DOUBLE_EQ(tl.latest("b"), 2.0);
}

TEST(Timeline, StopHaltsSampling) {
  Simulator sim(1);
  Timeline tl(sim, 1_s);
  tl.add_gauge("x", [] { return 0.0; });
  tl.start();
  sim.run_until(2500_ms);
  tl.stop();
  sim.run_until(10_s);
  EXPECT_EQ(tl.samples().size(), 2u);
}

TEST(Timeline, CsvRoundTrip) {
  Simulator sim(1);
  Timeline tl(sim, 1_s);
  tl.add_gauge("queue", [] { return 3.5; });
  tl.start();
  sim.run_until(2_s);
  const std::string path = ::testing::TempDir() + "/gttsch_timeline.csv";
  ASSERT_TRUE(tl.write_csv(path));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "time_s,queue");
  std::getline(in, line);
  EXPECT_EQ(line, "1,3.5");
  std::remove(path.c_str());
}

TEST(Timeline, LatestOnUnknownGaugeIsNan) {
  Simulator sim(1);
  Timeline tl(sim, 1_s);
  tl.add_gauge("known", [] { return 1.0; });
  EXPECT_TRUE(std::isnan(tl.latest("unknown")));
  EXPECT_TRUE(std::isnan(tl.latest("known")));  // no samples yet
}

}  // namespace
}  // namespace gttsch
