// Fast-path equivalence: idle-slot skipping must be *observably pure* —
// bit-identical MAC counters, Medium stats, RunStats, radio duty times and
// RNG consumption versus per-slot reference stepping
// (MacConfig::per_slot_stepping / GTTSCH_FORCE_PER_SLOT) — while
// processing strictly fewer simulator events.
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "mac/tsch_mac.hpp"
#include "phy/dynamic_link.hpp"
#include "scenario/experiment.hpp"
#include "scenario/network.hpp"
#include "scenario/trace.hpp"
#include "sim/simulator.hpp"

namespace gttsch {
namespace {

using namespace literals;

struct NodeSnapshot {
  MacCounters mac;
  TimeUs radio_on = 0;
  TimeUs radio_tx = 0;
  TimeUs radio_rx = 0;
  TimeUs sync_correction = 0;
  Asn asn = 0;
  std::uint64_t app_generated = 0;
  bool joined = false;
};

struct ModeResult {
  RunMetrics metrics;
  MediumStats medium;
  std::map<NodeId, NodeSnapshot> nodes;
  std::uint64_t events_processed = 0;
  bool fully_formed = false;
};

/// Mirrors run_scenario(), but with direct control of per_slot_stepping.
/// `setup` (optional) runs after start() — e.g. to schedule mid-run moves;
/// it must be deterministic so both stepping modes see identical inputs.
/// ScenarioConfig trace fields are honored the same way run_scenario
/// honors them (generator or file, failures via DynamicLinkModel).
ModeResult run_mode(const ScenarioConfig& sc, std::uint64_t seed, bool per_slot,
                    double max_drift_ppm = 0.0, std::uint16_t broadcast_slots = 0,
                    const std::function<void(Network&)>& setup = nullptr) {
  const TimeUs measure_end = sc.warmup + sc.measure;
  RunStats stats(sc.warmup, measure_end);
  auto nc = sc.make_node_config();
  nc.mac.per_slot_stepping = per_slot;
  nc.max_drift_ppm = max_drift_ppm;
  if (broadcast_slots > 0) nc.sf.gt.layout.broadcast_slots = broadcast_slots;
  const TopologySpec topology = sc.make_topology();
  Trace trace;
  std::string trace_error;
  if (!sc.make_trace(topology, &trace, &trace_error)) {
    ADD_FAILURE() << "trace: " << trace_error;
    return {};
  }
  DynamicLinkModel* failures = nullptr;
  Network net(seed, scenario_link_model_factory(sc, trace, &failures), topology, nc,
              &stats);
  TracePlayer player(net, std::move(trace), failures);
  net.sim().at(sc.warmup, [&stats] { stats.begin_measurement(); });
  net.sim().at(measure_end, [&stats] { stats.end_measurement(); });
  net.start();
  player.start();
  if (setup) setup(net);
  net.medium().reset_stats();
  net.sim().run_until(measure_end + sc.drain);

  ModeResult out;
  for (const auto& [id, node] : net.nodes()) {
    stats.set_joined(id, node->is_root() || node->rpl().joined());
    NodeSnapshot snap;
    snap.mac = node->mac().counters();
    snap.radio_on = node->radio().on_time();
    snap.radio_tx = node->radio().tx_time();
    snap.radio_rx = node->radio().rx_time();
    snap.sync_correction = node->mac().total_sync_correction();
    snap.asn = node->mac().asn();
    snap.app_generated = node->app_generated();
    snap.joined = node->is_root() || node->rpl().joined();
    out.nodes.emplace(id, snap);
  }
  out.metrics = stats.finalize();
  out.medium = net.medium().stats();
  out.events_processed = net.sim().events_processed();
  out.fully_formed = net.fully_formed();
  return out;
}

void expect_identical(const ModeResult& fast, const ModeResult& ref) {
  // MAC counters, radio on-times and ASN per node: exact.
  ASSERT_EQ(fast.nodes.size(), ref.nodes.size());
  for (const auto& [id, f] : fast.nodes) {
    SCOPED_TRACE(::testing::Message() << "node " << id);
    const NodeSnapshot& r = ref.nodes.at(id);
    EXPECT_EQ(f.mac.unicast_tx_attempts, r.mac.unicast_tx_attempts);
    EXPECT_EQ(f.mac.unicast_success, r.mac.unicast_success);
    EXPECT_EQ(f.mac.unicast_drops, r.mac.unicast_drops);
    EXPECT_EQ(f.mac.retransmissions, r.mac.retransmissions);
    EXPECT_EQ(f.mac.broadcast_sent, r.mac.broadcast_sent);
    EXPECT_EQ(f.mac.eb_sent, r.mac.eb_sent);
    EXPECT_EQ(f.mac.rx_frames, r.mac.rx_frames);
    EXPECT_EQ(f.mac.rx_duplicates, r.mac.rx_duplicates);
    EXPECT_EQ(f.mac.acks_sent, r.mac.acks_sent);
    EXPECT_EQ(f.radio_on, r.radio_on);
    EXPECT_EQ(f.radio_tx, r.radio_tx);
    EXPECT_EQ(f.radio_rx, r.radio_rx);
    EXPECT_EQ(f.sync_correction, r.sync_correction);
    EXPECT_EQ(f.asn, r.asn);
    EXPECT_EQ(f.app_generated, r.app_generated);
    EXPECT_EQ(f.joined, r.joined);
  }

  // Medium stats: exact (same RNG draw sequence).
  EXPECT_EQ(fast.medium.transmissions, ref.medium.transmissions);
  EXPECT_EQ(fast.medium.deliveries, ref.medium.deliveries);
  EXPECT_EQ(fast.medium.collision_losses, ref.medium.collision_losses);
  EXPECT_EQ(fast.medium.prr_losses, ref.medium.prr_losses);

  // RunStats: bit-identical doubles, not just approximately equal.
  EXPECT_EQ(fast.metrics.pdr_percent, ref.metrics.pdr_percent);
  EXPECT_EQ(fast.metrics.avg_delay_ms, ref.metrics.avg_delay_ms);
  EXPECT_EQ(fast.metrics.p95_delay_ms, ref.metrics.p95_delay_ms);
  EXPECT_EQ(fast.metrics.loss_per_minute, ref.metrics.loss_per_minute);
  EXPECT_EQ(fast.metrics.duty_cycle_percent, ref.metrics.duty_cycle_percent);
  EXPECT_EQ(fast.metrics.queue_loss_per_node, ref.metrics.queue_loss_per_node);
  EXPECT_EQ(fast.metrics.throughput_per_minute, ref.metrics.throughput_per_minute);
  EXPECT_EQ(fast.metrics.generated, ref.metrics.generated);
  EXPECT_EQ(fast.metrics.delivered, ref.metrics.delivered);
  EXPECT_EQ(fast.metrics.queue_drops, ref.metrics.queue_drops);
  EXPECT_EQ(fast.metrics.mac_drops, ref.metrics.mac_drops);
  EXPECT_EQ(fast.metrics.no_route_drops, ref.metrics.no_route_drops);
  EXPECT_EQ(fast.metrics.mean_hops, ref.metrics.mean_hops);
  EXPECT_EQ(fast.metrics.nodes_joined, ref.metrics.nodes_joined);
  EXPECT_EQ(fast.fully_formed, ref.fully_formed);

  // Recovery accounting rides the same event stream, so it must agree too.
  EXPECT_EQ(fast.metrics.node_failures, ref.metrics.node_failures);
  EXPECT_EQ(fast.metrics.node_revivals, ref.metrics.node_revivals);
  EXPECT_EQ(fast.metrics.node_rejoins, ref.metrics.node_rejoins);
  EXPECT_EQ(fast.metrics.orphan_intervals, ref.metrics.orphan_intervals);
  EXPECT_EQ(fast.metrics.recovery_rejoin_s, ref.metrics.recovery_rejoin_s);
  EXPECT_EQ(fast.metrics.recovery_first_delivery_s,
            ref.metrics.recovery_first_delivery_s);
  EXPECT_EQ(fast.metrics.recovery_ttr_s, ref.metrics.recovery_ttr_s);
  EXPECT_EQ(fast.metrics.recovery_ttr_censored, ref.metrics.recovery_ttr_censored);

  // The entire point: the fast path must do strictly less event work.
  EXPECT_LT(fast.events_processed, ref.events_processed);
}

/// Fig 8 default setup (paper Section VIII), shortened run so the per-slot
/// reference stays cheap under sanitizers.
ScenarioConfig fig8_config(const std::string& kind) {
  ScenarioConfig sc;
  sc.scheduler = kind;
  sc.dodag_count = 2;
  sc.nodes_per_dodag = 7;  // 14 nodes total
  sc.traffic_ppm = 120.0;
  sc.gt_slotframe_length = 32;
  sc.orchestra_unicast_length = 8;
  sc.warmup = 120_s;
  sc.measure = 120_s;
  sc.drain = 10_s;
  return sc;
}

TEST(FastPathEquivalence, GtTschFig8SeedA) {
  const ScenarioConfig sc = fig8_config("gt-tsch");
  const ModeResult fast = run_mode(sc, 1000, /*per_slot=*/false);
  const ModeResult ref = run_mode(sc, 1000, /*per_slot=*/true);
  expect_identical(fast, ref);
}

TEST(FastPathEquivalence, GtTschFig8SeedB) {
  const ScenarioConfig sc = fig8_config("gt-tsch");
  const ModeResult fast = run_mode(sc, 1017, /*per_slot=*/false);
  const ModeResult ref = run_mode(sc, 1017, /*per_slot=*/true);
  expect_identical(fast, ref);
}

TEST(FastPathEquivalence, OrchestraFig8) {
  const ScenarioConfig sc = fig8_config("orchestra");
  const ModeResult fast = run_mode(sc, 1000, /*per_slot=*/false);
  const ModeResult ref = run_mode(sc, 1000, /*per_slot=*/true);
  expect_identical(fast, ref);
}

TEST(FastPathEquivalence, HoldsUnderClockDrift) {
  // ±40 ppm per-node oscillators: skipped spans must accumulate the exact
  // same drifted boundary times (bit-identical double residue) as stepping
  // slot by slot, including across EB time corrections.
  ScenarioConfig sc = fig8_config("gt-tsch");
  sc.dodag_count = 1;
  const ModeResult fast = run_mode(sc, 2000, /*per_slot=*/false, /*drift=*/40.0);
  const ModeResult ref = run_mode(sc, 2000, /*per_slot=*/true, /*drift=*/40.0);
  expect_identical(fast, ref);
}

TEST(FastPathEquivalence, SparseScheduleSkipsProportionally) {
  // Slotframe length 397 with GT-TSCH's default layout rule (m/8 -> 49
  // broadcast slots): ~15% occupancy, so the fast path should shed the
  // ~85% idle boundaries while every rx-guard listen still costs events.
  ScenarioConfig sc = fig8_config("gt-tsch");
  sc.dodag_count = 1;
  sc.gt_slotframe_length = 397;
  sc.traffic_ppm = 30.0;
  const ModeResult fast = run_mode(sc, 1000, /*per_slot=*/false);
  const ModeResult ref = run_mode(sc, 1000, /*per_slot=*/true);
  expect_identical(fast, ref);
  EXPECT_LT(fast.events_processed * 3, ref.events_processed * 2);  // >= 1.5x
}

TEST(FastPathEquivalence, MinimalScheduleSkipsByOccupancy) {
  // 6TiSCH-minimal-style occupancy: length 397 with only 2 broadcast
  // slots (plus the shared/unicast handful) — the idle-slot-dominated
  // regime the bench_sim_core end-to-end benchmark measures. Events must
  // collapse by the occupancy ratio, not a constant factor.
  ScenarioConfig sc = fig8_config("gt-tsch");
  sc.dodag_count = 1;
  sc.gt_slotframe_length = 397;
  sc.traffic_ppm = 30.0;
  const ModeResult fast =
      run_mode(sc, 1000, /*per_slot=*/false, /*drift=*/0.0, /*broadcast_slots=*/2);
  const ModeResult ref =
      run_mode(sc, 1000, /*per_slot=*/true, /*drift=*/0.0, /*broadcast_slots=*/2);
  expect_identical(fast, ref);
  EXPECT_LT(fast.events_processed * 5, ref.events_processed);  // >= 5x fewer
}

TEST(FastPathEquivalence, FiftyNodeGridTopology) {
  // A builder topology at campaign scale: 50-node grid, multihop routes.
  // Equivalence must hold through the heavier contention and the much
  // larger schedule population.
  ScenarioConfig sc = fig8_config("gt-tsch");
  sc.topology = TopologyKind::kGrid;
  sc.topology_nodes = 50;
  sc.traffic_ppm = 30.0;
  sc.warmup = 90_s;
  sc.measure = 60_s;
  const ModeResult fast = run_mode(sc, 1000, /*per_slot=*/false);
  const ModeResult ref = run_mode(sc, 1000, /*per_slot=*/true);
  ASSERT_EQ(fast.nodes.size(), 50u);
  expect_identical(fast, ref);
}

TEST(FastPathEquivalence, MobilityScenario) {
  // Mid-run moves invalidate the medium's link cache incrementally; the
  // skipping MAC must stay bit-identical while links fade and reform.
  ScenarioConfig sc = fig8_config("gt-tsch");
  sc.dodag_count = 1;
  sc.warmup = 120_s;
  sc.measure = 120_s;
  const auto roam = [](Network& net) {
    // Node 6 (a leaf) walks outward, far off, and back — losing and
    // re-gaining its parent link; node 4 jitters in place every 10 s.
    for (int step = 0; step < 8; ++step) {
      const double dx = step < 4 ? 20.0 * (step + 1) : 20.0 * (8 - step);
      net.sim().at(130_s + step * 10_s, [&net, dx] {
        Node& n = net.node(6);
        n.move_to({n.position().x + dx, n.position().y});
      });
    }
    for (int step = 0; step < 12; ++step) {
      const double dy = (step % 2 == 0) ? 2.0 : -2.0;
      net.sim().at(125_s + step * 10_s, [&net, dy] {
        Node& n = net.node(4);
        n.move_to({n.position().x, n.position().y + dy});
      });
    }
  };
  const ModeResult fast = run_mode(sc, 3000, false, 0.0, 0, roam);
  const ModeResult ref = run_mode(sc, 3000, true, 0.0, 0, roam);
  expect_identical(fast, ref);
}

/// Trace-driven churn (shared generator): movers walking plus one node
/// dying mid-measurement. The skipping MAC must stay bit-identical while
/// links fade, the victim's cells go dark, and RPL re-homes children.
ScenarioConfig trace_config(const std::string& kind) {
  ScenarioConfig sc = fig8_config(kind);
  sc.dodag_count = 1;  // 7 nodes
  sc.trace_kind = TraceKind::kRandomWalk;
  sc.trace_seed = 42;
  sc.trace_movers = 3;
  sc.trace_speed_mps = 3.0;
  sc.trace_interval_s = 5.0;
  sc.trace_fail_count = 1;
  sc.trace_fail_at_s = 180.0;  // mid-measurement
  return sc;
}

TEST(FastPathEquivalence, TraceDrivenGtTschTwoSeeds) {
  const ScenarioConfig sc = trace_config("gt-tsch");
  for (const std::uint64_t seed : {4000ull, 4017ull}) {
    SCOPED_TRACE(::testing::Message() << "seed " << seed);
    const ModeResult fast = run_mode(sc, seed, /*per_slot=*/false);
    const ModeResult ref = run_mode(sc, seed, /*per_slot=*/true);
    expect_identical(fast, ref);
  }
}

TEST(FastPathEquivalence, TraceDrivenOrchestraTwoSeeds) {
  const ScenarioConfig sc = trace_config("orchestra");
  for (const std::uint64_t seed : {4000ull, 4017ull}) {
    SCOPED_TRACE(::testing::Message() << "seed " << seed);
    const ModeResult fast = run_mode(sc, seed, /*per_slot=*/false);
    const ModeResult ref = run_mode(sc, seed, /*per_slot=*/true);
    expect_identical(fast, ref);
  }
}

/// Grammar-v2 churn: a leaf crash-reboots mid-measurement (fail -> revive ->
/// beacon-scan rejoin) while link-quality episodes fade and black out other
/// links. The fast path must stay bit-identical through the reboot's fresh
/// stack, the rejoin, and the recovery accounting it feeds.
ScenarioConfig revive_config(const std::string& kind, const std::string& path) {
  ScenarioConfig sc = fig8_config(kind);
  sc.dodag_count = 1;  // 7 nodes: root 1, routers 2-3, leaves 4-7
  sc.measure = 180_s;  // room for the slowest scheduler's beacon-scan rejoin
  sc.trace_kind = TraceKind::kFile;
  sc.trace = path;
  return sc;
}

TEST(FastPathEquivalence, ReviveAndLinkEpisodesTwoSchedulersTwoSeeds) {
  const std::string path = ::testing::TempDir() + "fast_path_revive.trace";
  Trace trace;
  std::string error;
  ASSERT_TRUE(parse_trace(
                  "150 fail 6\n"
                  "165 revive 6\n"
                  "180 prr 2 4 0.5\n"
                  "190 pause 3 5\n"
                  "200 prr 2 4 1\n"
                  "210 resume 3 5\n",
                  &trace, &error))
      << error;
  ASSERT_TRUE(save_trace(path, trace, &error)) << error;

  for (const char* scheduler : {"gt-tsch", "emsf"}) {
    const ScenarioConfig sc = revive_config(scheduler, path);
    for (const std::uint64_t seed : {4000ull, 4017ull}) {
      SCOPED_TRACE(::testing::Message() << scheduler << " seed " << seed);
      const ModeResult fast = run_mode(sc, seed, /*per_slot=*/false);
      const ModeResult ref = run_mode(sc, seed, /*per_slot=*/true);
      expect_identical(fast, ref);
      // The churn actually happened: one crash, one reboot, and the leaf
      // found its way back into the DODAG before the run ended.
      EXPECT_EQ(fast.metrics.node_failures, 1u);
      EXPECT_EQ(fast.metrics.node_revivals, 1u);
      EXPECT_EQ(fast.metrics.node_rejoins, 1u);
      EXPECT_GT(fast.metrics.recovery_rejoin_s, 0.0);
    }
  }
}

TEST(FastPathEquivalence, TraceFileEqualsGeneratorConfig) {
  // The acceptance contract: a scenario driven by a trace *file* and the
  // same scenario driven by the equivalent generator config produce
  // identical RunStats — and the file-driven run is itself bit-identical
  // between fast-path and per-slot stepping.
  const ScenarioConfig generated = trace_config("gt-tsch");

  // Materialize the generator's stream as a file.
  Trace trace;
  std::string error;
  ASSERT_TRUE(generated.make_trace(generated.make_topology(), &trace, &error)) << error;
  ASSERT_FALSE(trace.empty());
  const std::string path = ::testing::TempDir() + "fast_path_equiv.trace";
  ASSERT_TRUE(save_trace(path, trace, &error)) << error;

  ScenarioConfig from_file = generated;
  from_file.trace_kind = TraceKind::kFile;
  from_file.trace = path;

  const ModeResult gen_fast = run_mode(generated, 4000, /*per_slot=*/false);
  const ModeResult file_fast = run_mode(from_file, 4000, /*per_slot=*/false);
  const ModeResult file_ref = run_mode(from_file, 4000, /*per_slot=*/true);

  // File == generator, down to the event count (the very same streams).
  ASSERT_EQ(gen_fast.nodes.size(), file_fast.nodes.size());
  for (const auto& [id, g] : gen_fast.nodes) {
    SCOPED_TRACE(::testing::Message() << "node " << id);
    const NodeSnapshot& f = file_fast.nodes.at(id);
    EXPECT_EQ(g.mac.unicast_tx_attempts, f.mac.unicast_tx_attempts);
    EXPECT_EQ(g.mac.rx_frames, f.mac.rx_frames);
    EXPECT_EQ(g.radio_on, f.radio_on);
    EXPECT_EQ(g.asn, f.asn);
    EXPECT_EQ(g.joined, f.joined);
  }
  EXPECT_EQ(gen_fast.medium.transmissions, file_fast.medium.transmissions);
  EXPECT_EQ(gen_fast.medium.deliveries, file_fast.medium.deliveries);
  EXPECT_EQ(gen_fast.metrics.pdr_percent, file_fast.metrics.pdr_percent);
  EXPECT_EQ(gen_fast.metrics.avg_delay_ms, file_fast.metrics.avg_delay_ms);
  EXPECT_EQ(gen_fast.metrics.delivered, file_fast.metrics.delivered);
  EXPECT_EQ(gen_fast.events_processed, file_fast.events_processed);

  // ...and the file-driven scenario honors the fast-path contract too.
  expect_identical(file_fast, file_ref);
}

TEST(FastPathEquivalence, IdleAssociatedMacReportsCurrentAsn) {
  // A MAC with an empty schedule never wakes, yet asn() must track the
  // slot count a per-slot MAC would report at any query instant.
  Simulator sim(3);
  Medium medium(sim, std::make_unique<UnitDiskModel>(50.0), Rng(3));
  Radio radio(sim, medium, 1, {});
  TschMac mac(sim, medium, radio, MacConfig{}, Rng(4));
  mac.start_as_root();
  sim.run_until(1000 * 15_ms);
  EXPECT_EQ(mac.asn(), 1000u);
  sim.run_until(1000 * 15_ms + 7_ms);  // mid-slot
  EXPECT_EQ(mac.asn(), 1000u);
  sim.run_until(1001 * 15_ms);
  EXPECT_EQ(mac.asn(), 1001u);
}

TEST(FastPathEquivalence, LateInstalledCellIsServed) {
  // Installing a cell while the MAC sleeps through an empty schedule must
  // re-aim the wakeup: EBs start flowing from the next occurrence.
  Simulator sim(5);
  Medium medium(sim, std::make_unique<UnitDiskModel>(50.0), Rng(5));
  Radio radio(sim, medium, 1, {});
  TschMac mac(sim, medium, radio, MacConfig{}, Rng(6));
  mac.set_eb_provider([] { return EbPayload{}; });
  mac.start_as_root();
  sim.run_until(30_s);
  EXPECT_EQ(mac.counters().eb_sent, 0u);  // no cells, nothing to send on
  Cell bcast;
  bcast.slot_offset = 3;
  bcast.channel_offset = 0;
  bcast.options = kCellTx | kCellRx | kCellShared;
  bcast.neighbor = kBroadcastId;
  mac.schedule().add_slotframe(0, 101).add(bcast);
  sim.run_until(90_s);
  EXPECT_GE(mac.counters().eb_sent, 20u);  // EB period 2 s over 60 s
}

}  // namespace
}  // namespace gttsch
