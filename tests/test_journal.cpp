// Journal tests: exact (bit-level) round-trip of results through the
// JSONL format, crash-recovery semantics (truncated last line tolerated,
// mid-file corruption refused), duplicate handling, shard-merge
// re-aggregation, and atomic report writes.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "campaign/journal.hpp"

namespace gttsch {
namespace {

using campaign::JournalRecord;
using campaign::JournalWriter;
using campaign::PointAccumulator;
using campaign::PointAggregate;

std::string temp_path(const char* name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

/// A record whose doubles exercise non-terminating binary fractions —
/// exactly the values that break sloppy serialization.
JournalRecord nasty_record(std::size_t point_index, std::size_t seed_index) {
  JournalRecord r;
  r.point_index = point_index;
  r.seed_index = seed_index;
  r.seed = 1000 + 17 * seed_index;
  r.campaign_fp = 0xfeedface12345678ull;
  r.label = "traffic_ppm=30 scheduler=gt-tsch";
  r.coords = {{"traffic_ppm", "30"}, {"scheduler", "gt-tsch"}};
  r.result.fully_formed = (seed_index % 2) == 0;
  r.result.metrics.pdr_percent = 100.0 / 3.0 + static_cast<double>(seed_index);
  r.result.metrics.avg_delay_ms = 0.1 + 1e-13 * static_cast<double>(point_index);
  r.result.metrics.p95_delay_ms = 281.99999999999989;
  r.result.metrics.loss_per_minute = 1.0 / 7.0;
  r.result.metrics.duty_cycle_percent = 10.29752;
  r.result.metrics.queue_loss_per_node = 0.0;
  r.result.metrics.throughput_per_minute = 98.000000000000014;
  r.result.metrics.mean_hops = 2.0 / 3.0;
  r.result.metrics.measure_minutes = 5.0;
  r.result.metrics.generated = 123456789012345ull;
  r.result.metrics.delivered = 98;
  r.result.metrics.queue_drops = 3;
  r.result.metrics.mac_drops = 4;
  r.result.metrics.no_route_drops = 5;
  r.result.metrics.nodes_joined = 6;
  r.result.metrics.node_count = 7;
  r.result.medium.transmissions = 400;
  r.result.medium.deliveries = 300;
  r.result.medium.collision_losses = 60;
  r.result.medium.prr_losses = 40;
  return r;
}

void expect_equal(const JournalRecord& a, const JournalRecord& b) {
  EXPECT_EQ(a.point_index, b.point_index);
  EXPECT_EQ(a.seed_index, b.seed_index);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.campaign_fp, b.campaign_fp);
  EXPECT_EQ(a.label, b.label);
  EXPECT_EQ(a.coords, b.coords);
  EXPECT_EQ(a.result.fully_formed, b.result.fully_formed);
  // Bit-identical doubles, not approximately equal: resume/merge
  // correctness depends on the exact values coming back.
  EXPECT_EQ(a.result.metrics.pdr_percent, b.result.metrics.pdr_percent);
  EXPECT_EQ(a.result.metrics.avg_delay_ms, b.result.metrics.avg_delay_ms);
  EXPECT_EQ(a.result.metrics.p95_delay_ms, b.result.metrics.p95_delay_ms);
  EXPECT_EQ(a.result.metrics.loss_per_minute, b.result.metrics.loss_per_minute);
  EXPECT_EQ(a.result.metrics.duty_cycle_percent, b.result.metrics.duty_cycle_percent);
  EXPECT_EQ(a.result.metrics.queue_loss_per_node,
            b.result.metrics.queue_loss_per_node);
  EXPECT_EQ(a.result.metrics.throughput_per_minute,
            b.result.metrics.throughput_per_minute);
  EXPECT_EQ(a.result.metrics.mean_hops, b.result.metrics.mean_hops);
  EXPECT_EQ(a.result.metrics.measure_minutes, b.result.metrics.measure_minutes);
  EXPECT_EQ(a.result.metrics.generated, b.result.metrics.generated);
  EXPECT_EQ(a.result.metrics.delivered, b.result.metrics.delivered);
  EXPECT_EQ(a.result.metrics.queue_drops, b.result.metrics.queue_drops);
  EXPECT_EQ(a.result.metrics.mac_drops, b.result.metrics.mac_drops);
  EXPECT_EQ(a.result.metrics.no_route_drops, b.result.metrics.no_route_drops);
  EXPECT_EQ(a.result.metrics.nodes_joined, b.result.metrics.nodes_joined);
  EXPECT_EQ(a.result.metrics.node_count, b.result.metrics.node_count);
  EXPECT_EQ(a.result.medium.transmissions, b.result.medium.transmissions);
  EXPECT_EQ(a.result.medium.deliveries, b.result.medium.deliveries);
  EXPECT_EQ(a.result.medium.collision_losses, b.result.medium.collision_losses);
  EXPECT_EQ(a.result.medium.prr_losses, b.result.medium.prr_losses);
}

TEST(Journal, LineRoundTripsBitExactly) {
  const JournalRecord original = nasty_record(3, 1);
  const std::string line = campaign::render_journal_line(original);
  EXPECT_EQ(line.find('\n'), std::string::npos);

  JournalRecord parsed;
  std::string error;
  ASSERT_TRUE(campaign::parse_journal_line(line, &parsed, &error)) << error;
  expect_equal(original, parsed);
}

TEST(Journal, EscapesLabelsAndCoords) {
  JournalRecord r = nasty_record(0, 0);
  r.label = "weird \"label\"\nwith\ttabs\\and slashes";
  r.coords = {{"key \"x\"", "value\n"}};
  JournalRecord parsed;
  std::string error;
  ASSERT_TRUE(
      campaign::parse_journal_line(campaign::render_journal_line(r), &parsed, &error))
      << error;
  EXPECT_EQ(parsed.label, r.label);
  EXPECT_EQ(parsed.coords, r.coords);
}

TEST(Journal, RejectsMalformedLines) {
  JournalRecord parsed;
  EXPECT_FALSE(campaign::parse_journal_line("", &parsed, nullptr));
  EXPECT_FALSE(campaign::parse_journal_line("not json", &parsed, nullptr));
  EXPECT_FALSE(campaign::parse_journal_line("{\"point_index\": }", &parsed, nullptr));
  const std::string full = campaign::render_journal_line(nasty_record(0, 0));
  // Every strict prefix is a truncation and must be rejected (the reader
  // then drops it when it is the final line).
  for (const std::size_t len : {full.size() - 1, full.size() / 2, std::size_t{1}}) {
    EXPECT_FALSE(campaign::parse_journal_line(full.substr(0, len), &parsed, nullptr))
        << "prefix length " << len;
  }
  // Trailing garbage after the object is also malformed.
  EXPECT_FALSE(campaign::parse_journal_line(full + "}", &parsed, nullptr));
}

TEST(Journal, SkipsUnknownKeysForForwardCompat) {
  std::string line = campaign::render_journal_line(nasty_record(2, 0));
  line.insert(1, "\"future_field\": {\"nested\": \"x\"}, \"another\": 3.5, ");
  JournalRecord parsed;
  std::string error;
  ASSERT_TRUE(campaign::parse_journal_line(line, &parsed, &error)) << error;
  EXPECT_EQ(parsed.point_index, 2u);
}

TEST(Journal, WriterAppendsAndReaderRecovers) {
  const std::string path = temp_path("journal_roundtrip.jsonl");
  std::filesystem::remove(path);
  {
    JournalWriter writer(path, /*append_mode=*/false);
    ASSERT_TRUE(writer.ok());
    EXPECT_TRUE(writer.append(nasty_record(0, 0)));
    EXPECT_TRUE(writer.append(nasty_record(0, 1)));
  }
  {
    // Append mode keeps the existing records (the resume path).
    JournalWriter writer(path, /*append_mode=*/true);
    EXPECT_TRUE(writer.append(nasty_record(1, 0)));
  }
  std::vector<JournalRecord> records;
  std::string error;
  ASSERT_TRUE(campaign::read_journal(path, &records, &error)) << error;
  ASSERT_EQ(records.size(), 3u);
  expect_equal(records[0], nasty_record(0, 0));
  expect_equal(records[1], nasty_record(0, 1));
  expect_equal(records[2], nasty_record(1, 0));
}

TEST(Journal, TruncatedLastLineIsTolerated) {
  const std::string path = temp_path("journal_truncated.jsonl");
  const std::string full = campaign::render_journal_line(nasty_record(0, 0));
  {
    std::ofstream out(path, std::ios::trunc);
    out << campaign::render_journal_line(nasty_record(0, 0)) << '\n'
        << campaign::render_journal_line(nasty_record(0, 1)) << '\n'
        << full.substr(0, full.size() / 2);  // the crash artifact
  }
  std::vector<JournalRecord> records;
  std::string error;
  ASSERT_TRUE(campaign::read_journal(path, &records, &error)) << error;
  EXPECT_EQ(records.size(), 2u);
}

TEST(Journal, AppendAfterCrashTrimsThePartialLine) {
  // Crash artifact + resume: the writer must not glue its first record
  // onto the truncated tail (that would corrupt the journal for the
  // *next* resume).
  const std::string path = temp_path("journal_resume_tail.jsonl");
  const std::string full = campaign::render_journal_line(nasty_record(0, 0));
  {
    std::ofstream out(path, std::ios::trunc);
    out << campaign::render_journal_line(nasty_record(0, 0)) << '\n'
        << full.substr(0, full.size() / 2);
  }
  {
    JournalWriter writer(path, /*append_mode=*/true);
    ASSERT_TRUE(writer.ok());
    EXPECT_TRUE(writer.append(nasty_record(0, 1)));
  }
  std::vector<JournalRecord> records;
  std::string error;
  ASSERT_TRUE(campaign::read_journal(path, &records, &error)) << error;
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].seed_index, 1u);
}

TEST(Journal, CorruptMiddleLineIsAnError) {
  const std::string path = temp_path("journal_corrupt.jsonl");
  {
    std::ofstream out(path, std::ios::trunc);
    out << campaign::render_journal_line(nasty_record(0, 0)) << '\n'
        << "garbage in the middle\n"
        << campaign::render_journal_line(nasty_record(0, 1)) << '\n';
  }
  std::vector<JournalRecord> records;
  std::string error;
  EXPECT_FALSE(campaign::read_journal(path, &records, &error));
  EXPECT_NE(error.find("malformed"), std::string::npos);

  std::vector<JournalRecord> missing;
  EXPECT_FALSE(campaign::read_journal(temp_path("does_not_exist.jsonl"), &missing,
                                      &error));
}

TEST(Journal, DuplicateKeysKeepFirstRecord) {
  const std::string path = temp_path("journal_dup.jsonl");
  JournalRecord first = nasty_record(0, 0);
  JournalRecord second = nasty_record(0, 0);
  second.result.metrics.pdr_percent = 11.0;
  {
    JournalWriter writer(path, false);
    writer.append(first);
    writer.append(second);
  }
  std::vector<JournalRecord> records;
  std::string error;
  ASSERT_TRUE(campaign::read_journal(path, &records, &error)) << error;
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].result.metrics.pdr_percent,
            first.result.metrics.pdr_percent);
}

TEST(Journal, RejectsConflictingDuplicateKeys) {
  // Two campaigns' journals concatenated into one file (`cat a b > all`)
  // collide on (point_index, seed_index) with different identities. If the
  // reader silently kept the first, a single-file merge would print
  // first-campaign-only statistics and exit 0 while `merge a b` on the
  // same data is correctly rejected — so the reader must reject it too.
  const std::string path = temp_path("journal_conflict.jsonl");
  JournalRecord a = nasty_record(0, 0);
  JournalRecord b = nasty_record(0, 0);
  b.seed = 4242;
  b.label = "traffic_ppm=120 scheduler=gt-tsch";
  {
    JournalWriter writer(path, false);
    writer.append(a);
    writer.append(b);
  }
  std::vector<JournalRecord> records;
  std::string error;
  EXPECT_FALSE(campaign::read_journal(path, &records, &error));
  EXPECT_NE(error.find("disagrees"), std::string::npos) << error;
}

TEST(Journal, AggregateRecordsMatchesDirectAccumulation) {
  // Shard-merge contract: records shuffled across shards reduce to the
  // same aggregates as in-process accumulation.
  std::vector<JournalRecord> records;
  for (const std::size_t seed_index : {2, 0, 1}) {  // arrival order scrambled
    records.push_back(nasty_record(1, seed_index));
  }
  records.push_back(nasty_record(0, 0));
  records.push_back(nasty_record(1, 1));  // exact cross-shard duplicate, dropped

  std::vector<PointAggregate> merged;
  std::string agg_error;
  ASSERT_TRUE(campaign::aggregate_records(records, &merged, &agg_error)) << agg_error;
  ASSERT_EQ(merged.size(), 2u);  // ordered by point_index
  EXPECT_EQ(merged[0].runs, 1);
  EXPECT_EQ(merged[1].runs, 3);

  PointAccumulator direct;
  for (const std::size_t s : {0, 1, 2}) {
    direct.add(s, nasty_record(1, s).result);
  }
  const PointAggregate expected = direct.finalize();
  EXPECT_EQ(merged[1].pdr_percent.mean, expected.pdr_percent.mean);
  EXPECT_EQ(merged[1].pdr_percent.stddev, expected.pdr_percent.stddev);
  EXPECT_EQ(merged[1].pdr_percent.ci95_half, expected.pdr_percent.ci95_half);
  EXPECT_EQ(merged[1].mean.generated, expected.mean.generated);
  EXPECT_EQ(merged[1].label, "traffic_ppm=30 scheduler=gt-tsch");
}

TEST(Journal, AggregateRecordsRejectsMixedCampaigns) {
  // Journals from two different campaigns share point indices but not
  // labels (or seed values); merging them must fail loudly rather than
  // silently averaging apples with oranges.
  JournalRecord a = nasty_record(0, 0);
  JournalRecord b = nasty_record(0, 1);
  b.label = "traffic_ppm=120 scheduler=gt-tsch";
  std::vector<PointAggregate> merged;
  std::string error;
  EXPECT_FALSE(campaign::aggregate_records({a, b}, &merged, &error));
  EXPECT_NE(error.find("disagree"), std::string::npos);

  // Same key, same label, different seed value: also two campaigns.
  JournalRecord c = nasty_record(0, 0);
  c.seed = 4242;
  c.result.metrics.pdr_percent = 1.0;
  EXPECT_FALSE(campaign::aggregate_records({a, c}, &merged, &error));
  EXPECT_NE(error.find("seed"), std::string::npos);
}

TEST(Journal, AggregateRecordsRejectsDifferentCampaignFingerprints) {
  // Journals from two campaigns that differ only in the base config (e.g.
  // --set nodes_per_dodag) have identical labels/coords, and sharded
  // journals never collide on a point — only the cross-record campaign
  // fingerprint can catch the mix.
  JournalRecord a = nasty_record(0, 0);
  JournalRecord b = nasty_record(1, 0);
  b.label = "traffic_ppm=120 scheduler=gt-tsch";  // different point: no key clash
  b.coords = {{"traffic_ppm", "120"}, {"scheduler", "gt-tsch"}};
  b.campaign_fp = 0x1111111111111111ull;
  std::vector<PointAggregate> merged;
  std::string error;
  EXPECT_FALSE(campaign::aggregate_records({a, b}, &merged, &error));
  EXPECT_NE(error.find("different campaigns"), std::string::npos) << error;

  // A pre-fingerprint record (fp 0) is a wildcard, not a mismatch.
  b.campaign_fp = 0;
  EXPECT_TRUE(campaign::aggregate_records({a, b}, &merged, &error)) << error;
  EXPECT_EQ(merged.size(), 2u);
}

TEST(Journal, WriteTextAtomicLeavesNoTempFile) {
  const std::string path = temp_path("atomic.txt");
  ASSERT_TRUE(campaign::write_text_atomic(path, "hello\n"));
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "hello\n");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  // Overwrite is atomic too.
  ASSERT_TRUE(campaign::write_text_atomic(path, "second\n"));
  std::ifstream again(path);
  std::string content2((std::istreambuf_iterator<char>(again)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(content2, "second\n");
}

}  // namespace
}  // namespace gttsch
