// Randomized property tests on the wireless medium: conservation laws,
// determinism, metamorphic relations that must hold for any topology, and
// the link-cache contract — incremental refreshes (mobility, dynamic
// links) must be bit-identical to a cache-disabled reference medium and
// cost O(degree) model calls, not O(n^2).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "phy/dynamic_link.hpp"
#include "phy/medium.hpp"
#include "scenario/experiment.hpp"
#include "scenario/network.hpp"
#include "scenario/trace.hpp"
#include "sim/simulator.hpp"

namespace gttsch {
namespace {

using namespace literals;

struct RandomAirScenario {
  std::uint64_t seed;
  int nodes;
  double range;
  int transmissions;
};

/// Runs `transmissions` randomly timed broadcasts from random nodes with
/// all other radios listening on a random channel, and returns the medium
/// stats plus per-node delivery counts.
struct AirResult {
  MediumStats stats;
  std::vector<int> rx_count;
};

AirResult run_random_air(const RandomAirScenario& sc, double range_override = -1) {
  Simulator sim(sc.seed);
  Rng rng(sc.seed * 77 + 1);
  const double range = range_override > 0 ? range_override : sc.range;
  Medium medium(sim, std::make_unique<UnitDiskModel>(range, 1.0, 1.5), Rng(sc.seed));
  std::vector<std::unique_ptr<Radio>> radios;
  AirResult result;
  result.rx_count.assign(static_cast<std::size_t>(sc.nodes), 0);
  for (int i = 0; i < sc.nodes; ++i) {
    radios.push_back(std::make_unique<Radio>(
        sim, medium, static_cast<NodeId>(i),
        Position{rng.uniform_double(0, 100), rng.uniform_double(0, 100)}));
    const auto idx = static_cast<std::size_t>(i);
    radios.back()->on_rx = [&result, idx](FramePtr) { ++result.rx_count[idx]; };
  }
  for (int t = 0; t < sc.transmissions; ++t) {
    const TimeUs at = static_cast<TimeUs>(rng.uniform(60000000));
    const auto sender = static_cast<std::size_t>(rng.uniform(sc.nodes));
    const PhysChannel ch = static_cast<PhysChannel>(11 + rng.uniform(8));
    sim.at(at, [&radios, &medium, sender, ch, sc] {
      // Everyone else listens on the channel (if idle).
      for (std::size_t r = 0; r < radios.size(); ++r) {
        if (r == sender) continue;
        if (radios[r]->state() == RadioState::kOff) radios[r]->listen(ch);
      }
      if (radios[sender]->state() != RadioState::kTransmitting) {
        if (radios[sender]->state() == RadioState::kListening) radios[sender]->turn_off();
        radios[sender]->transmit(
            make_data_frame(static_cast<NodeId>(sender), kBroadcastId, DataPayload{}), ch);
      }
    });
    sim.at(at + 8_ms, [&radios] {
      for (auto& r : radios)
        if (r->state() == RadioState::kListening) r->turn_off();
    });
  }
  sim.run_until(70_s);
  result.stats = medium.stats();
  return result;
}

class MediumProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MediumProperties, AccountingConserved) {
  const RandomAirScenario sc{GetParam(), 8, 45.0, 300};
  const AirResult r = run_random_air(sc);
  // Every loss category is bounded by potential receptions. (A sender
  // drawn while already transmitting skips that round, so allow slack.)
  EXPECT_LE(r.stats.transmissions, 300u);
  EXPECT_GE(r.stats.transmissions, 290u);
  int total_rx = 0;
  for (int c : r.rx_count) total_rx += c;
  EXPECT_EQ(static_cast<std::uint64_t>(total_rx), r.stats.deliveries);
  // deliveries + losses <= transmissions * (nodes-1).
  EXPECT_LE(r.stats.deliveries + r.stats.collision_losses + r.stats.prr_losses,
            r.stats.transmissions * 7);
}

TEST_P(MediumProperties, DeterministicReplay) {
  const RandomAirScenario sc{GetParam(), 6, 45.0, 200};
  const AirResult a = run_random_air(sc);
  const AirResult b = run_random_air(sc);
  EXPECT_EQ(a.stats.deliveries, b.stats.deliveries);
  EXPECT_EQ(a.stats.collision_losses, b.stats.collision_losses);
  EXPECT_EQ(a.rx_count, b.rx_count);
}

TEST_P(MediumProperties, PerfectPrrMeansNoPrrLosses) {
  const RandomAirScenario sc{GetParam(), 8, 45.0, 300};
  const AirResult r = run_random_air(sc);
  EXPECT_EQ(r.stats.prr_losses, 0u);  // unit disk at PRR 1.0
}

TEST_P(MediumProperties, ShrinkingRangeNeverIncreasesDeliveries) {
  // Metamorphic: with the same traffic pattern, a smaller radio range can
  // only remove receivers (and collisions), never add receptions beyond
  // what extra collisions free up... strictly: deliveries with range 0 are
  // 0, and deliveries grow monotonically only without collisions. Use a
  // sparse pattern (few transmissions, overlap unlikely) where
  // monotonicity must hold.
  const RandomAirScenario sc{GetParam(), 6, 60.0, 40};
  const AirResult wide = run_random_air(sc);
  const AirResult narrow = run_random_air(sc, /*range_override=*/20.0);
  if (wide.stats.collision_losses == 0 && narrow.stats.collision_losses == 0) {
    EXPECT_LE(narrow.stats.deliveries, wide.stats.deliveries);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MediumProperties,
                         ::testing::Values(11u, 23u, 37u, 59u, 71u, 97u));

TEST(MediumProperty, ZeroRangeZeroDeliveries) {
  const RandomAirScenario sc{5, 6, 0.0001, 100};
  const AirResult r = run_random_air(sc);
  EXPECT_EQ(r.stats.deliveries, 0u);
}

TEST(MediumProperty, SingleNodeNoReceivers) {
  const RandomAirScenario sc{7, 1, 50.0, 50};
  const AirResult r = run_random_air(sc);
  EXPECT_EQ(r.stats.deliveries, 0u);
  EXPECT_EQ(r.stats.transmissions, 50u);
}

// ---------------------------------------------------------------------------
// Link-cache contract: incremental invalidation vs the uncached reference.
// ---------------------------------------------------------------------------

/// Counts every prr()/interferes() query so the tests can assert how much
/// model work a cache refresh performs.
class CountingModel final : public LinkModel {
 public:
  explicit CountingModel(std::unique_ptr<LinkModel> base) : base_(std::move(base)) {}

  double prr(NodeId tx, const Position& a, NodeId rx, const Position& b) const override {
    ++calls_;
    return base_->prr(tx, a, rx, b);
  }
  bool interferes(NodeId tx, const Position& a, NodeId rx,
                  const Position& b) const override {
    ++calls_;
    return base_->interferes(tx, a, rx, b);
  }
  std::uint64_t version() const override { return base_->version(); }
  double max_interaction_range() const override { return base_->max_interaction_range(); }
  bool changed_nodes_since(std::uint64_t since, std::vector<NodeId>& out) const override {
    return base_->changed_nodes_since(since, out);
  }

  std::uint64_t calls() const { return calls_; }
  void reset_calls() { calls_ = 0; }

 private:
  std::unique_ptr<LinkModel> base_;
  mutable std::uint64_t calls_ = 0;
};

TEST(MediumCacheIncremental, SingleMoveCostsODegreeModelCalls) {
  using namespace literals;
  Simulator sim(1);
  auto counting =
      std::make_unique<CountingModel>(std::make_unique<UnitDiskModel>(40.0, 1.0, 1.5));
  CountingModel* model = counting.get();
  Medium medium(sim, std::move(counting), Rng(1));

  // 100 nodes spread over 600x600 m: interaction range 60 m, so each node
  // has only a handful of grid neighbors.
  constexpr int kNodes = 100;
  Rng place(3);
  std::vector<std::unique_ptr<Radio>> radios;
  for (int i = 0; i < kNodes; ++i) {
    radios.push_back(std::make_unique<Radio>(
        sim, medium, static_cast<NodeId>(i),
        Position{place.uniform_double(0, 600), place.uniform_double(0, 600)}));
    radios.back()->on_rx = [](FramePtr) {};
  }
  // Any delivery resolution compiles the cache.
  const auto kick = [&] {
    radios[1]->listen(17);
    radios[0]->transmit(make_data_frame(0, kBroadcastId, DataPayload{}), 17);
    sim.run_until(sim.now() + 10_ms);
    radios[1]->turn_off();
  };
  kick();
  const std::uint64_t build_calls = model->calls();
  EXPECT_GT(build_calls, 0u);
  // The grid-driven full build already beats all-pairs (2*n*(n-1) calls).
  EXPECT_LT(build_calls, 2u * kNodes * (kNodes - 1));

  // Warm cache: zero model work.
  model->reset_calls();
  kick();
  EXPECT_EQ(model->calls(), 0u);

  // One move refreshes one row/column through the grid neighborhood:
  // O(degree) calls — two orders of magnitude under the ~19800-call
  // all-pairs rebuild, and well under even one full row scan pair (4n).
  radios[5]->set_position(
      Position{radios[5]->position().x + 3.0, radios[5]->position().y - 2.0});
  model->reset_calls();
  kick();
  const std::uint64_t move_calls = model->calls();
  EXPECT_GT(move_calls, 0u);
  EXPECT_LT(move_calls, 2u * kNodes);
  EXPECT_LT(move_calls * 20, build_calls + 1);
}

TEST(MediumCacheIncremental, MatrixModelEditRefreshesOnlyTouchedNodes) {
  // A MatrixLinkModel mutation is attributed through changed_nodes_since:
  // only the touched pair's rows refresh (here: against all peers, since
  // the matrix has no spatial bound), never the full n^2 matrix.
  using namespace literals;
  Simulator sim(2);
  auto matrix_owned = std::make_unique<MatrixLinkModel>();
  MatrixLinkModel* matrix = matrix_owned.get();
  auto counting = std::make_unique<CountingModel>(std::move(matrix_owned));
  CountingModel* model = counting.get();
  Medium medium(sim, std::move(counting), Rng(2));

  constexpr int kNodes = 40;
  std::vector<std::unique_ptr<Radio>> radios;
  for (int i = 0; i < kNodes; ++i) {
    radios.push_back(
        std::make_unique<Radio>(sim, medium, static_cast<NodeId>(i), Position{}));
    radios.back()->on_rx = [](FramePtr) {};
  }
  // A chain 0-1-2-...: every consecutive pair connected.
  for (int i = 0; i + 1 < kNodes; ++i)
    matrix->set(static_cast<NodeId>(i), static_cast<NodeId>(i + 1), 1.0);

  const auto kick = [&] {
    radios[1]->listen(17);
    radios[0]->transmit(make_data_frame(0, kBroadcastId, DataPayload{}), 17);
    sim.run_until(sim.now() + 10_ms);
    radios[1]->turn_off();
  };
  kick();
  model->reset_calls();
  kick();
  EXPECT_EQ(model->calls(), 0u);  // warm cache

  matrix->set(10, 11, 0.25);  // one link degrades
  model->reset_calls();
  kick();
  const std::uint64_t edit_calls = model->calls();
  EXPECT_GT(edit_calls, 0u);
  // Two dirty nodes x (n-1) peers x 2 queries x 2 directions, vs the
  // 2*n*(n-1) = 3120 calls of a full rebuild.
  EXPECT_LE(edit_calls, 8u * kNodes);
  EXPECT_LT(edit_calls, 2u * kNodes * (kNodes - 1) / 2);
}

/// Per-node observable state of a full-stack run, for bit-identity checks.
struct StackSnapshot {
  std::map<NodeId, MacCounters> mac;
  std::map<NodeId, TimeUs> radio_on;
  std::map<NodeId, std::uint64_t> app_generated;
  MediumStats medium;
  std::uint64_t deliveries = 0;
};

bool counters_equal(const MacCounters& a, const MacCounters& b) {
  return a.unicast_tx_attempts == b.unicast_tx_attempts &&
         a.unicast_success == b.unicast_success && a.unicast_drops == b.unicast_drops &&
         a.retransmissions == b.retransmissions && a.broadcast_sent == b.broadcast_sent &&
         a.eb_sent == b.eb_sent && a.rx_frames == b.rx_frames &&
         a.rx_duplicates == b.rx_duplicates && a.acks_sent == b.acks_sent;
}

/// A GT-TSCH network over a DynamicLinkModel with mid-run moves, link
/// overrides (symmetric, directional and cleared again), a blackout
/// episode, and a node kill followed by a revive — every
/// cache-invalidation source at once.
StackSnapshot run_dynamic_stack(bool cache_enabled) {
  using namespace literals;
  ScenarioConfig sc;
  sc.scheduler = "gt-tsch";
  sc.dodag_count = 1;
  sc.nodes_per_dodag = 7;
  sc.traffic_ppm = 60.0;
  sc.warmup = 120_s;
  sc.measure = 120_s;
  auto nc = sc.make_node_config();
  nc.app_end = 0;
  const Network::LinkModelFactory factory = [&sc](Simulator& sim) {
    auto dyn = std::make_unique<DynamicLinkModel>(
        sim, std::make_unique<UnitDiskModel>(sc.radio_range, sc.link_prr,
                                             sc.interference_factor));
    dyn->override_prr(150_s, 2, 4, 0.4);   // link fades mid-run
    dyn->override_prr(190_s, 2, 4, 1.0);   // ...and recovers
    dyn->override_prr(155_s, 3, 6, 0.5, /*symmetric=*/false);  // one-way fade
    dyn->override_prr(160_s, 3, 5, 0.0);   // blackout episode (pause)...
    dyn->clear_override(175_s, 3, 5);      // ...lifted again (resume)
    dyn->kill_node(210_s, 7);              // a leaf dies outright
    dyn->revive_node(225_s, 7);            // ...and crash-reboots
    return dyn;
  };
  Network net(77, factory, sc.make_topology(), nc, nullptr);
  net.medium().set_link_cache_enabled(cache_enabled);
  net.start();
  // Node 6 roams in small steps through the measurement window.
  for (int step = 0; step < 10; ++step) {
    const double dx = (step % 2 == 0) ? 6.0 : -4.0;
    net.sim().at(130_s + step * 9_s, [&net, dx] {
      Node& n = net.node(6);
      n.move_to({n.position().x + dx, n.position().y + 1.0});
    });
  }
  net.sim().run_until(sc.warmup + sc.measure);

  StackSnapshot snap;
  for (const auto& [id, node] : net.nodes()) {
    snap.mac[id] = node->mac().counters();
    snap.radio_on[id] = node->radio().on_time();
    snap.app_generated[id] = node->app_generated();
  }
  snap.medium = net.medium().stats();
  snap.deliveries = snap.medium.deliveries;
  return snap;
}

TEST(MediumCacheIncremental, DynamicStackMatchesUncachedReferenceBitForBit) {
  const StackSnapshot cached = run_dynamic_stack(/*cache_enabled=*/true);
  const StackSnapshot reference = run_dynamic_stack(/*cache_enabled=*/false);

  ASSERT_EQ(cached.mac.size(), reference.mac.size());
  for (const auto& [id, counters] : cached.mac) {
    SCOPED_TRACE(::testing::Message() << "node " << id);
    EXPECT_TRUE(counters_equal(counters, reference.mac.at(id)));
    EXPECT_EQ(cached.radio_on.at(id), reference.radio_on.at(id));
    EXPECT_EQ(cached.app_generated.at(id), reference.app_generated.at(id));
  }
  EXPECT_EQ(cached.medium.transmissions, reference.medium.transmissions);
  EXPECT_EQ(cached.medium.deliveries, reference.medium.deliveries);
  EXPECT_EQ(cached.medium.collision_losses, reference.medium.collision_losses);
  EXPECT_EQ(cached.medium.prr_losses, reference.medium.prr_losses);
  // The scenario must actually have exercised the medium.
  EXPECT_GT(cached.deliveries, 100u);
}

/// A GT-TSCH stack under a random-waypoint trace whose per-tick jumps
/// (speed * interval = 120 m) dwarf the spatial-grid cell size
/// (max_interaction_range = 40 * 1.6 = 64 m): every move teleports the
/// walker across grid cells, exercising the membership-update path of the
/// incremental cache.
StackSnapshot run_waypoint_stack(bool cache_enabled) {
  using namespace literals;
  ScenarioConfig sc;
  sc.scheduler = "gt-tsch";
  sc.dodag_count = 1;
  sc.nodes_per_dodag = 7;
  sc.traffic_ppm = 60.0;
  sc.warmup = 120_s;
  sc.measure = 120_s;
  sc.trace_kind = TraceKind::kRandomWaypoint;
  sc.trace_seed = 99;
  sc.trace_movers = 3;
  sc.trace_speed_mps = 30.0;
  sc.trace_interval_s = 4.0;

  const TopologySpec topo = sc.make_topology();
  Trace trace;
  std::string error;
  if (!sc.make_trace(topo, &trace, &error)) {
    ADD_FAILURE() << error;
    return {};
  }
  auto nc = sc.make_node_config();
  nc.app_end = 0;
  Network net(123, std::make_unique<UnitDiskModel>(sc.radio_range, sc.link_prr,
                                                   sc.interference_factor),
              topo, nc, nullptr);
  net.medium().set_link_cache_enabled(cache_enabled);
  TracePlayer player(net, std::move(trace), nullptr);
  net.start();
  player.start();
  net.sim().run_until(sc.warmup + sc.measure);
  // 3 movers x ~29 ticks: the teleports actually happened.
  EXPECT_GT(player.applied(), 80u);

  StackSnapshot snap;
  for (const auto& [id, node] : net.nodes()) {
    snap.mac[id] = node->mac().counters();
    snap.radio_on[id] = node->radio().on_time();
    snap.app_generated[id] = node->app_generated();
  }
  snap.medium = net.medium().stats();
  snap.deliveries = snap.medium.deliveries;
  return snap;
}

TEST(MediumCacheIncremental, WaypointTeleportsMatchUncachedReferenceBitForBit) {
  const StackSnapshot cached = run_waypoint_stack(/*cache_enabled=*/true);
  const StackSnapshot reference = run_waypoint_stack(/*cache_enabled=*/false);

  ASSERT_EQ(cached.mac.size(), reference.mac.size());
  for (const auto& [id, counters] : cached.mac) {
    SCOPED_TRACE(::testing::Message() << "node " << id);
    EXPECT_TRUE(counters_equal(counters, reference.mac.at(id)));
    EXPECT_EQ(cached.radio_on.at(id), reference.radio_on.at(id));
    EXPECT_EQ(cached.app_generated.at(id), reference.app_generated.at(id));
  }
  EXPECT_EQ(cached.medium.transmissions, reference.medium.transmissions);
  EXPECT_EQ(cached.medium.deliveries, reference.medium.deliveries);
  EXPECT_EQ(cached.medium.collision_losses, reference.medium.collision_losses);
  EXPECT_EQ(cached.medium.prr_losses, reference.medium.prr_losses);
  EXPECT_GT(cached.deliveries, 100u);
}

TEST(MediumCacheIncremental, SingleTraceMoveStaysUnderTwoNModelCalls) {
  // A one-event trace through the full stack: the refresh triggered by
  // the played move must cost O(degree) model calls — strictly under the
  // 2n bound (even one full row+column re-scan would be ~4n).
  using namespace literals;
  ScenarioConfig sc;
  sc.scheduler = "gt-tsch";
  sc.topology = TopologyKind::kRandomDisk;
  sc.topology_nodes = 64;
  sc.disk_radius = 400.0;  // sparse: a 3x3 grid neighborhood holds few nodes
  sc.topology_seed = 5;
  sc.interference_factor = 1.0;  // interaction range 40 m -> small grid cells
  sc.traffic_ppm = 30.0;
  const TopologySpec topo = sc.make_topology();

  auto nc = sc.make_node_config();
  nc.app_end = 0;
  CountingModel* model = nullptr;
  const Network::LinkModelFactory factory =
      [&sc, &model](Simulator&) -> std::unique_ptr<LinkModel> {
    auto counting = std::make_unique<CountingModel>(std::make_unique<UnitDiskModel>(
        sc.radio_range, sc.link_prr, sc.interference_factor));
    model = counting.get();
    return counting;
  };
  Network net(321, factory, topo, nc, nullptr);

  Trace trace;
  trace.events.push_back(
      TraceEvent{66_s, TraceEventKind::kMove, 5, /*peer=*/0,
                 Position{net.node(5).position().x + 3.0,
                          net.node(5).position().y - 2.0},
                 /*value=*/0.0, /*line=*/0});
  TracePlayer player(net, std::move(trace), nullptr);
  net.start();
  player.start();

  // Warm up: the cache compiles during formation traffic.
  net.sim().run_until(60_s);
  model->reset_calls();
  net.sim().run_until(65_s);
  EXPECT_EQ(model->calls(), 0u);  // warm cache, nobody moved

  net.sim().run_until(80_s);  // the trace move lands at 66 s
  EXPECT_EQ(player.applied(), 1u);
  const std::uint64_t move_calls = model->calls();
  EXPECT_GT(move_calls, 0u);
  EXPECT_LT(move_calls, 2u * static_cast<std::uint64_t>(sc.topology_nodes));
}

TEST(MediumCacheIncremental, WholeNetworkMoveCapFiresAtLiveRadioCount) {
  // Regression for the moved-backlog overflow cap in position_changed:
  // the cap must be measured against the *attached* radio count (which
  // shrinks on detach, while the compiled cache keeps its stale size) and
  // must fire at equality — dedup bounds the backlog at the attached
  // count, so a `>` comparison could never trip once radios detach.
  using namespace literals;
  Simulator sim(9);
  auto counting =
      std::make_unique<CountingModel>(std::make_unique<UnitDiskModel>(40.0, 1.0, 1.5));
  CountingModel* model = counting.get();
  Medium medium(sim, std::move(counting), Rng(9));

  constexpr int kNodes = 40;
  Rng place(11);
  std::vector<std::unique_ptr<Radio>> radios;
  for (int i = 0; i < kNodes; ++i) {
    radios.push_back(std::make_unique<Radio>(
        sim, medium, static_cast<NodeId>(i),
        Position{place.uniform_double(0, 400), place.uniform_double(0, 400)}));
    radios.back()->on_rx = [](FramePtr) {};
  }
  const auto kick = [&] {
    radios[1]->listen(17);
    radios[0]->transmit(make_data_frame(0, kBroadcastId, DataPayload{}), 17);
    sim.run_until(sim.now() + 10_ms);
    radios[1]->turn_off();
  };
  kick();
  const std::uint64_t build_calls = model->calls();
  EXPECT_GT(build_calls, 0u);

  // Detach a quarter of the network; the compiled cache still spans all
  // kNodes until the next query rebuilds it.
  for (int i = kNodes - 10; i < kNodes; ++i) radios[static_cast<std::size_t>(i)].reset();

  // Now move every *remaining* radio. The backlog reaches the live count
  // (30) — far below the stale cache size (40) — and must still collapse
  // the whole batch into one full rebuild.
  for (int i = 0; i < kNodes - 10; ++i) {
    auto& r = radios[static_cast<std::size_t>(i)];
    r->set_position(Position{r->position().x + 1.0, r->position().y + 1.0});
  }
  model->reset_calls();
  kick();
  const std::uint64_t batch_calls = model->calls();
  EXPECT_GT(batch_calls, 0u);
  // One rebuild of the shrunken network, not per-mover incremental
  // refreshes stacked on top of it (those would roughly double the work).
  EXPECT_LE(batch_calls, build_calls);

  // The backlog must be gone: a warm-cache query costs nothing, and a
  // single follow-up move costs O(degree), proving no mover lingered.
  model->reset_calls();
  kick();
  EXPECT_EQ(model->calls(), 0u);
  radios[5]->set_position(
      Position{radios[5]->position().x + 2.0, radios[5]->position().y});
  model->reset_calls();
  kick();
  EXPECT_GT(model->calls(), 0u);
  EXPECT_LT(model->calls(), 2u * kNodes);
}

}  // namespace
}  // namespace gttsch
