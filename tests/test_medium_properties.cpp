// Randomized property tests on the wireless medium: conservation laws,
// determinism, and metamorphic relations that must hold for any topology.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "phy/medium.hpp"
#include "sim/simulator.hpp"

namespace gttsch {
namespace {

using namespace literals;

struct RandomAirScenario {
  std::uint64_t seed;
  int nodes;
  double range;
  int transmissions;
};

/// Runs `transmissions` randomly timed broadcasts from random nodes with
/// all other radios listening on a random channel, and returns the medium
/// stats plus per-node delivery counts.
struct AirResult {
  MediumStats stats;
  std::vector<int> rx_count;
};

AirResult run_random_air(const RandomAirScenario& sc, double range_override = -1) {
  Simulator sim(sc.seed);
  Rng rng(sc.seed * 77 + 1);
  const double range = range_override > 0 ? range_override : sc.range;
  Medium medium(sim, std::make_unique<UnitDiskModel>(range, 1.0, 1.5), Rng(sc.seed));
  std::vector<std::unique_ptr<Radio>> radios;
  AirResult result;
  result.rx_count.assign(static_cast<std::size_t>(sc.nodes), 0);
  for (int i = 0; i < sc.nodes; ++i) {
    radios.push_back(std::make_unique<Radio>(
        sim, medium, static_cast<NodeId>(i),
        Position{rng.uniform_double(0, 100), rng.uniform_double(0, 100)}));
    const auto idx = static_cast<std::size_t>(i);
    radios.back()->on_rx = [&result, idx](FramePtr) { ++result.rx_count[idx]; };
  }
  for (int t = 0; t < sc.transmissions; ++t) {
    const TimeUs at = static_cast<TimeUs>(rng.uniform(60000000));
    const auto sender = static_cast<std::size_t>(rng.uniform(sc.nodes));
    const PhysChannel ch = static_cast<PhysChannel>(11 + rng.uniform(8));
    sim.at(at, [&radios, &medium, sender, ch, sc] {
      // Everyone else listens on the channel (if idle).
      for (std::size_t r = 0; r < radios.size(); ++r) {
        if (r == sender) continue;
        if (radios[r]->state() == RadioState::kOff) radios[r]->listen(ch);
      }
      if (radios[sender]->state() != RadioState::kTransmitting) {
        if (radios[sender]->state() == RadioState::kListening) radios[sender]->turn_off();
        radios[sender]->transmit(
            make_data_frame(static_cast<NodeId>(sender), kBroadcastId, DataPayload{}), ch);
      }
    });
    sim.at(at + 8_ms, [&radios] {
      for (auto& r : radios)
        if (r->state() == RadioState::kListening) r->turn_off();
    });
  }
  sim.run_until(70_s);
  result.stats = medium.stats();
  return result;
}

class MediumProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MediumProperties, AccountingConserved) {
  const RandomAirScenario sc{GetParam(), 8, 45.0, 300};
  const AirResult r = run_random_air(sc);
  // Every loss category is bounded by potential receptions. (A sender
  // drawn while already transmitting skips that round, so allow slack.)
  EXPECT_LE(r.stats.transmissions, 300u);
  EXPECT_GE(r.stats.transmissions, 290u);
  int total_rx = 0;
  for (int c : r.rx_count) total_rx += c;
  EXPECT_EQ(static_cast<std::uint64_t>(total_rx), r.stats.deliveries);
  // deliveries + losses <= transmissions * (nodes-1).
  EXPECT_LE(r.stats.deliveries + r.stats.collision_losses + r.stats.prr_losses,
            r.stats.transmissions * 7);
}

TEST_P(MediumProperties, DeterministicReplay) {
  const RandomAirScenario sc{GetParam(), 6, 45.0, 200};
  const AirResult a = run_random_air(sc);
  const AirResult b = run_random_air(sc);
  EXPECT_EQ(a.stats.deliveries, b.stats.deliveries);
  EXPECT_EQ(a.stats.collision_losses, b.stats.collision_losses);
  EXPECT_EQ(a.rx_count, b.rx_count);
}

TEST_P(MediumProperties, PerfectPrrMeansNoPrrLosses) {
  const RandomAirScenario sc{GetParam(), 8, 45.0, 300};
  const AirResult r = run_random_air(sc);
  EXPECT_EQ(r.stats.prr_losses, 0u);  // unit disk at PRR 1.0
}

TEST_P(MediumProperties, ShrinkingRangeNeverIncreasesDeliveries) {
  // Metamorphic: with the same traffic pattern, a smaller radio range can
  // only remove receivers (and collisions), never add receptions beyond
  // what extra collisions free up... strictly: deliveries with range 0 are
  // 0, and deliveries grow monotonically only without collisions. Use a
  // sparse pattern (few transmissions, overlap unlikely) where
  // monotonicity must hold.
  const RandomAirScenario sc{GetParam(), 6, 60.0, 40};
  const AirResult wide = run_random_air(sc);
  const AirResult narrow = run_random_air(sc, /*range_override=*/20.0);
  if (wide.stats.collision_losses == 0 && narrow.stats.collision_losses == 0) {
    EXPECT_LE(narrow.stats.deliveries, wide.stats.deliveries);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MediumProperties,
                         ::testing::Values(11u, 23u, 37u, 59u, 71u, 97u));

TEST(MediumProperty, ZeroRangeZeroDeliveries) {
  const RandomAirScenario sc{5, 6, 0.0001, 100};
  const AirResult r = run_random_air(sc);
  EXPECT_EQ(r.stats.deliveries, 0u);
}

TEST(MediumProperty, SingleNodeNoReceivers) {
  const RandomAirScenario sc{7, 1, 50.0, 50};
  const AirResult r = run_random_air(sc);
  EXPECT_EQ(r.stats.deliveries, 0u);
  EXPECT_EQ(r.stats.transmissions, 50u);
}

}  // namespace
}  // namespace gttsch
