// Scheduler-zoo conformance: every SF in the registry — not a hard-coded
// pair — must (a) register coherently (keys, aliases, display names),
// (b) surface through the campaign spec parser with registry-derived
// error text and a stable fingerprint, (c) cold-boot a fig8-style
// network to >=90% RPL join, and (d) honor the fast-path contract:
// idle-slot skipping bit-identical to per-slot reference stepping.
// A fifth scheduler registered tomorrow is swept by this file with zero
// edits here.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "campaign/spec.hpp"
#include "mac/tsch_mac.hpp"
#include "scenario/experiment.hpp"
#include "scenario/network.hpp"
#include "sixp/sf_registry.hpp"

namespace gttsch {
namespace {

using namespace literals;

// ---------------------------------------------------------------- registry

TEST(SfRegistry, CanonicalEntriesInRegistrationOrder) {
  const auto& reg = SfRegistry::instance();
  ASSERT_GE(reg.entries().size(), 4u);
  // The four papers' schedulers, in the canonical display order.
  const std::vector<std::string> expected = {"gt-tsch", "orchestra", "alice", "emsf"};
  const std::vector<std::string> names = reg.names();
  ASSERT_EQ(names.size(), expected.size());
  EXPECT_EQ(names, expected);
  for (const auto& entry : reg.entries()) {
    EXPECT_FALSE(entry.key.empty());
    EXPECT_FALSE(entry.display_name.empty()) << entry.key;
    EXPECT_FALSE(entry.summary.empty()) << entry.key;
    EXPECT_TRUE(entry.factory != nullptr) << entry.key;
  }
}

TEST(SfRegistry, FindByKeyAliasAndUnknown) {
  const auto& reg = SfRegistry::instance();
  const SfRegistry::Entry* gt = reg.find("gt-tsch");
  ASSERT_NE(gt, nullptr);
  EXPECT_EQ(gt->display_name, "GT-TSCH");
  // Aliases resolve to the same entry as the canonical key.
  EXPECT_EQ(reg.find("gt"), gt);
  const SfRegistry::Entry* emsf = reg.find("emsf");
  ASSERT_NE(emsf, nullptr);
  EXPECT_EQ(reg.find("e-msf"), emsf);
  EXPECT_EQ(emsf->display_name, "e-MSF");
  ASSERT_NE(reg.find("alice"), nullptr);
  EXPECT_EQ(reg.find("alice")->display_name, "ALICE");
  ASSERT_NE(reg.find("orchestra"), nullptr);
  EXPECT_EQ(reg.find("tasa"), nullptr);
  EXPECT_EQ(reg.find(""), nullptr);
}

TEST(SfRegistry, NamesJoinedDrivesUsageText) {
  EXPECT_EQ(SfRegistry::instance().names_joined(), "gt-tsch, orchestra, alice, emsf");
  EXPECT_EQ(SfRegistry::instance().names_joined(","), "gt-tsch,orchestra,alice,emsf");
}

TEST(SfRegistry, DisplayNamesReachExperimentReports) {
  // experiment.cpp's scheduler_name() is a thin registry lookup now.
  EXPECT_STREQ(scheduler_name("gt-tsch"), "GT-TSCH");
  EXPECT_STREQ(scheduler_name("gt"), "GT-TSCH");  // alias resolves too
  EXPECT_STREQ(scheduler_name("orchestra"), "Orchestra");
  EXPECT_STREQ(scheduler_name("alice"), "ALICE");
  EXPECT_STREQ(scheduler_name("emsf"), "e-MSF");
  EXPECT_STREQ(scheduler_name("nope"), "?");
}

// ------------------------------------------------------- campaign surface

TEST(SchedulerAxis, ApplyFieldAcceptsEveryRegisteredName) {
  ScenarioConfig c;
  std::string error;
  for (const std::string& name : SfRegistry::instance().names()) {
    EXPECT_TRUE(campaign::apply_field(c, "scheduler", name, &error)) << error;
    EXPECT_EQ(c.scheduler, name);
  }
}

TEST(SchedulerAxis, UnknownSchedulerErrorEnumeratesRegistry) {
  ScenarioConfig c;
  std::string error;
  ASSERT_FALSE(campaign::apply_field(c, "scheduler", "tasa", &error));
  EXPECT_NE(error.find("tasa"), std::string::npos) << error;
  // The error text is registry-derived: every canonical name appears.
  for (const std::string& name : SfRegistry::instance().names())
    EXPECT_NE(error.find(name), std::string::npos) << error << " missing " << name;
}

TEST(SchedulerAxis, AliasesCanonicalizeBeforeFingerprinting) {
  // "gt" and "gt-tsch" are the same campaign: same labels, same
  // fingerprint — journals and CSV rows cannot fork on spelling.
  std::string error;
  campaign::CampaignSpec canonical;
  canonical.seeds = {1, 2};
  ASSERT_TRUE(campaign::parse_grid("scheduler=gt-tsch,emsf", &canonical.axes, &error));
  campaign::CampaignSpec aliased;
  aliased.seeds = {1, 2};
  ASSERT_TRUE(campaign::parse_grid("scheduler=gt,e-msf", &aliased.axes, &error));
  const auto a = campaign::expand_grid(canonical, &error);
  ASSERT_EQ(a.size(), 2u) << error;
  const auto b = campaign::expand_grid(aliased, &error);
  ASSERT_EQ(b.size(), 2u) << error;
  EXPECT_EQ(a[0].config.scheduler, b[0].config.scheduler);
  EXPECT_EQ(campaign::campaign_fingerprint(a, canonical.seeds),
            campaign::campaign_fingerprint(b, aliased.seeds));
}

TEST(SchedulerAxis, FingerprintMatchesCommittedGolden) {
  // The committed golden below pins the fingerprint of a fixed four-way
  // scheduler sweep. It must never drift across refactors: journal
  // records carry this value, so a silent change orphans every archived
  // campaign. If this fails, you changed campaign identity (config
  // serialization, label format, or scheduler canonicalization) — bump
  // the golden ONLY with a changelog note that old journals invalidate.
  std::string error;
  campaign::CampaignSpec spec;
  spec.seeds = {1, 2, 3};
  ASSERT_TRUE(campaign::parse_grid("scheduler=gt-tsch,orchestra,alice,emsf;traffic_ppm=30,120",
                                   &spec.axes, &error))
      << error;
  const auto points = campaign::expand_grid(spec, &error);
  ASSERT_EQ(points.size(), 8u) << error;
  const std::uint64_t fp = campaign::campaign_fingerprint(points, spec.seeds);
  // Golden bumped when trace_down_s / trace_cycle_s entered mix_config
  // (trace grammar v2): campaigns journaled before that change cannot be
  // resumed or merged across the boundary.
  EXPECT_EQ(fp, 0x5776e30641f0ec27ull);
}

// ----------------------------------------------------- per-SF conformance

class SchedulerZoo : public ::testing::TestWithParam<std::string> {
 protected:
  /// Fig 8 shape (paper Section VIII), shortened: 2 DODAGs x 7 nodes.
  static ScenarioConfig fig8(const std::string& scheduler) {
    ScenarioConfig sc;
    sc.scheduler = scheduler;
    sc.dodag_count = 2;
    sc.nodes_per_dodag = 7;
    sc.traffic_ppm = 60.0;
    sc.warmup = 120_s;
    sc.measure = 120_s;
    sc.drain = 10_s;
    return sc;
  }
};

TEST_P(SchedulerZoo, ColdBootFormsFig8Network) {
  ScenarioConfig sc = fig8(GetParam());
  sc.seed = 7001;
  // Light load and a longer warmup: this is the formation floor, not a
  // throughput comparison. 6P bootstraps (GT-TSCH, e-MSF) need the extra
  // time on the two-DODAG topology.
  sc.traffic_ppm = 30.0;
  sc.warmup = 180_s;
  const auto r = run_scenario(sc);
  const double total = static_cast<double>(sc.dodag_count * sc.nodes_per_dodag);
  // The conformance floor: >=90% of nodes joined, a sane delivery rate.
  // (No 100%-PDR bar here — autonomous SFs pay cross-DODAG hash
  // collisions on this topology, which is the paper's critique, not a
  // conformance failure.)
  EXPECT_GE(static_cast<double>(r.metrics.nodes_joined), 0.9 * total) << GetParam();
  EXPECT_TRUE(r.fully_formed) << GetParam();
  EXPECT_GT(r.metrics.generated, 0u);
  EXPECT_GT(r.metrics.pdr_percent, 60.0) << GetParam();
}

struct ZooModeResult {
  RunMetrics metrics;
  MediumStats medium;
  std::map<NodeId, std::pair<Asn, TimeUs>> nodes;  ///< asn, radio on-time
  std::map<NodeId, std::uint64_t> rx_frames;
  std::uint64_t events_processed = 0;
};

/// test_fast_path.cpp's run_mode, reduced to the zoo's needs: one knob
/// (per-slot reference vs skipping fast path), everything else from the
/// scenario config.
ZooModeResult zoo_run(const ScenarioConfig& sc, bool per_slot) {
  const TimeUs measure_end = sc.warmup + sc.measure;
  RunStats stats(sc.warmup, measure_end);
  auto nc = sc.make_node_config();
  nc.mac.per_slot_stepping = per_slot;
  Network net(sc.seed, std::make_unique<UnitDiskModel>(40.0, 1.0, 1.6), sc.make_topology(),
              nc, &stats);
  net.sim().at(sc.warmup, [&stats] { stats.begin_measurement(); });
  net.sim().at(measure_end, [&stats] { stats.end_measurement(); });
  net.start();
  net.sim().run_until(measure_end + sc.drain);
  ZooModeResult out;
  for (const auto& [id, node] : net.nodes()) {
    stats.set_joined(id, node->is_root() || node->rpl().joined());
    out.nodes.emplace(id, std::make_pair(node->mac().asn(), node->radio().on_time()));
    out.rx_frames.emplace(id, node->mac().counters().rx_frames);
  }
  out.metrics = stats.finalize();
  out.medium = net.medium().stats();
  out.events_processed = net.sim().events_processed();
  return out;
}

TEST_P(SchedulerZoo, FastPathBitIdenticalToPerSlotStepping) {
  // The observable-purity contract every SF must satisfy, whatever its
  // cell population looks like (negotiated, autonomous, or time-varying
  // ALICE rehashes): identical RunStats doubles, medium draws, per-node
  // ASN/radio/rx — on strictly fewer simulator events.
  ScenarioConfig sc = fig8(GetParam());
  sc.seed = 7103;
  const ZooModeResult fast = zoo_run(sc, /*per_slot=*/false);
  const ZooModeResult ref = zoo_run(sc, /*per_slot=*/true);

  ASSERT_EQ(fast.nodes.size(), ref.nodes.size());
  for (const auto& [id, f] : fast.nodes) {
    SCOPED_TRACE(::testing::Message() << GetParam() << " node " << id);
    EXPECT_EQ(f.first, ref.nodes.at(id).first);    // ASN
    EXPECT_EQ(f.second, ref.nodes.at(id).second);  // radio on-time
    EXPECT_EQ(fast.rx_frames.at(id), ref.rx_frames.at(id));
  }
  EXPECT_EQ(fast.medium.transmissions, ref.medium.transmissions);
  EXPECT_EQ(fast.medium.deliveries, ref.medium.deliveries);
  EXPECT_EQ(fast.medium.collision_losses, ref.medium.collision_losses);
  EXPECT_EQ(fast.medium.prr_losses, ref.medium.prr_losses);
  EXPECT_EQ(fast.metrics.pdr_percent, ref.metrics.pdr_percent);
  EXPECT_EQ(fast.metrics.avg_delay_ms, ref.metrics.avg_delay_ms);
  EXPECT_EQ(fast.metrics.duty_cycle_percent, ref.metrics.duty_cycle_percent);
  EXPECT_EQ(fast.metrics.generated, ref.metrics.generated);
  EXPECT_EQ(fast.metrics.delivered, ref.metrics.delivered);
  EXPECT_LT(fast.events_processed, ref.events_processed);
}

TEST_P(SchedulerZoo, OperationalImpliesDedicatedCapacityShape) {
  // The widened introspection interface: after a settled run, every
  // non-root node of a 6P-negotiating SF reports operational() with
  // dedicated Tx capacity; autonomous SFs report operational() from
  // association alone and may run entirely on shared/autonomous cells.
  ScenarioConfig sc = fig8(GetParam());
  sc.dodag_count = 1;  // 7 nodes is enough to settle quickly
  const auto topo = sc.make_topology();
  auto nc = sc.make_node_config();
  Network net(7207, std::make_unique<UnitDiskModel>(40.0, 1.0, 1.6), topo, nc, nullptr);
  net.start();
  net.sim().run_until(300_s);
  ASSERT_TRUE(net.fully_formed()) << GetParam();
  for (const auto& [id, node] : net.nodes()) {
    if (node->is_root()) continue;
    SCOPED_TRACE(::testing::Message() << GetParam() << " node " << id);
    EXPECT_TRUE(node->sf().operational());
    EXPECT_GE(node->sf().dedicated_tx_cells(), 0);
    EXPECT_GE(node->sf().demand_estimate(), 0.0);
    EXPECT_EQ(node->sf().name(), SfRegistry::instance().find(GetParam())->key);
  }
}

INSTANTIATE_TEST_SUITE_P(AllRegisteredSfs, SchedulerZoo,
                         ::testing::ValuesIn(SfRegistry::instance().names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& ch : name)
                             if (ch == '-') ch = '_';
                           return name;
                         });

}  // namespace
}  // namespace gttsch
