// Failure injection and dynamics: time-varying link quality (the paper's
// core motivation), node death with RPL re-parenting, and the GT-TSCH
// child-timeout cell reclamation path.
#include <gtest/gtest.h>

#include "phy/dynamic_link.hpp"
#include "core/gt_tsch_sf.hpp"
#include "scenario/experiment.hpp"
#include "scenario/network.hpp"

namespace gttsch {
namespace {

using namespace literals;

/// GT-specific assertions reach the concrete SF through the common
/// interface; nullptr when the node runs a different scheduler.
const GtTschSf* gt_sf(const Node& n) {
  return dynamic_cast<const GtTschSf*>(&n.sf());
}

NodeStackConfig gt_config(double ppm) {
  ScenarioConfig sc;
  sc.scheduler = "gt-tsch";
  sc.traffic_ppm = ppm;
  auto nc = sc.make_node_config();
  nc.app_start = 60_s;
  nc.app_end = 0;
  return nc;
}

/// Network factory wiring a DynamicLinkModel to the network's simulator.
Network::LinkModelFactory dynamic_disk(DynamicLinkModel** out) {
  return [out](Simulator& sim) {
    auto model =
        std::make_unique<DynamicLinkModel>(sim, std::make_unique<UnitDiskModel>(40.0, 1.0, 1.6));
    *out = model.get();
    return model;
  };
}

TEST(DynamicLink, OverridesTakeEffectAtTime) {
  Simulator sim(1);
  DynamicLinkModel model(sim, std::make_unique<UnitDiskModel>(40.0));
  model.override_prr(10_s, 1, 2, 0.25);
  const Position a{0, 0}, b{10, 0};
  EXPECT_DOUBLE_EQ(model.prr(1, a, 2, b), 1.0);  // before override
  sim.run_until(10_s);
  EXPECT_DOUBLE_EQ(model.prr(1, a, 2, b), 0.25);
  EXPECT_DOUBLE_EQ(model.prr(2, b, 1, a), 0.25);  // symmetric by default
}

TEST(DynamicLink, LaterOverrideWins) {
  Simulator sim(1);
  DynamicLinkModel model(sim, std::make_unique<UnitDiskModel>(40.0));
  model.override_prr(5_s, 1, 2, 0.5);
  model.override_prr(15_s, 1, 2, 0.9);
  sim.run_until(10_s);
  EXPECT_DOUBLE_EQ(model.prr(1, {}, 2, {0, 1}), 0.5);
  sim.run_until(20_s);
  EXPECT_DOUBLE_EQ(model.prr(1, {}, 2, {0, 1}), 0.9);
}

TEST(DynamicLink, AsymmetricOverride) {
  Simulator sim(1);
  DynamicLinkModel model(sim, std::make_unique<UnitDiskModel>(40.0));
  model.override_prr(1_s, 1, 2, 0.3, /*symmetric=*/false);
  sim.run_until(2_s);
  EXPECT_DOUBLE_EQ(model.prr(1, {}, 2, {0, 1}), 0.3);
  EXPECT_DOUBLE_EQ(model.prr(2, {0, 1}, 1, {}), 1.0);
}

TEST(DynamicLink, DeadLinkStopsInterfering) {
  Simulator sim(1);
  DynamicLinkModel model(sim, std::make_unique<UnitDiskModel>(40.0));
  model.override_prr(1_s, 1, 2, 0.0);
  sim.run_until(2_s);
  EXPECT_FALSE(model.interferes(1, {}, 2, {0, 1}));
}

TEST(DynamicLink, KilledNodeSilentBothWays) {
  Simulator sim(1);
  DynamicLinkModel model(sim, std::make_unique<UnitDiskModel>(40.0));
  model.kill_node(5_s, 3);
  sim.run_until(6_s);
  EXPECT_DOUBLE_EQ(model.prr(3, {}, 2, {0, 1}), 0.0);
  EXPECT_DOUBLE_EQ(model.prr(2, {}, 3, {0, 1}), 0.0);
  EXPECT_FALSE(model.interferes(3, {}, 2, {0, 1}));
  // Unrelated links unaffected.
  EXPECT_DOUBLE_EQ(model.prr(1, {}, 2, {0, 1}), 1.0);
}

TEST(DynamicLink, BaseModelPassThrough) {
  Simulator sim(1);
  DynamicLinkModel model(sim, std::make_unique<UnitDiskModel>(40.0, 0.8, 1.5));
  EXPECT_DOUBLE_EQ(model.prr(1, {0, 0}, 2, {0, 39}), 0.8);
  EXPECT_DOUBLE_EQ(model.prr(1, {0, 0}, 2, {0, 41}), 0.0);
  EXPECT_TRUE(model.interferes(1, {0, 0}, 2, {0, 59}));
}

TEST(Failure, EtxReactsToLinkDegradation) {
  // Line root(1) - 2 - 3; the 2-3 link degrades mid-run. Node 3's ETX to
  // its parent must rise, raising its rank (MRHOF).
  const auto topo = build_line(1, {0, 0}, 2, 30.0);
  DynamicLinkModel* dyn = nullptr;
  Network net(77, dynamic_disk(&dyn), topo, gt_config(60.0), nullptr);
  ASSERT_NE(dyn, nullptr);

  dyn->override_prr(240_s, 2, 3, 0.45);
  net.start();
  net.sim().run_until(230_s);
  ASSERT_TRUE(net.fully_formed());
  const double etx_before = net.node(3).etx().etx(2);
  net.sim().run_until(500_s);
  const double etx_after = net.node(3).etx().etx(2);
  EXPECT_LT(etx_before, 1.4);
  EXPECT_GT(etx_after, etx_before + 0.4);  // ~1/0.45 ≈ 2.2 at steady state
  EXPECT_GT(net.node(3).rpl().rank(), 512 + 256);
}

TEST(Failure, GameShrinksHeadroomOnBadLink) {
  // Same degradation; the Eq 15 request with higher ETX must not exceed
  // the healthy-link one (comparative statics, on the live stack).
  const auto topo = build_line(1, {0, 0}, 2, 30.0);
  DynamicLinkModel* dyn = nullptr;
  Network net(85, dynamic_disk(&dyn), topo, gt_config(60.0), nullptr);
  dyn->override_prr(240_s, 2, 3, 0.5);
  net.start();
  net.sim().run_until(230_s);
  ASSERT_TRUE(net.fully_formed());
  net.sim().run_until(500_s);
  // The node still holds enough cells to carry its traffic...
  ASSERT_NE(gt_sf(net.node(3)), nullptr);
  EXPECT_GE(gt_sf(net.node(3))->allocated_tx_cells(), 1);
  // ...but its ETX-driven link cost is visibly above 1.
  EXPECT_GT(net.node(3).etx().etx(2), 1.5);
}

TEST(Failure, LeafReparentsWhenRouterDies) {
  // Diamond: root 1; routers 2 and 3 both reachable from leaf 4.
  TopologySpec topo;
  topo.nodes.push_back(NodeSpec{1, {0, 0}, true});
  topo.nodes.push_back(NodeSpec{2, {30, 12}, false});
  topo.nodes.push_back(NodeSpec{3, {30, -12}, false});
  topo.nodes.push_back(NodeSpec{4, {55, 0}, false});  // reaches 2 and 3 only

  DynamicLinkModel* dyn = nullptr;
  Network net(79, dynamic_disk(&dyn), topo, gt_config(60.0), nullptr);
  net.start();
  net.sim().run_until(200_s);
  ASSERT_TRUE(net.fully_formed());
  const NodeId first_parent = net.node(4).rpl().parent();
  ASSERT_TRUE(first_parent == 2 || first_parent == 3);
  const NodeId other = first_parent == 2 ? 3 : 2;

  dyn->kill_node(210_s, first_parent);
  net.sim().at(210_s, [&] { net.node(first_parent).fail(); });
  net.sim().run_until(600_s);

  EXPECT_TRUE(net.node(first_parent).failed());
  EXPECT_EQ(net.node(4).rpl().parent(), other);
  // The leaf is operational again under the new parent.
  ASSERT_NE(gt_sf(net.node(4)), nullptr);
  EXPECT_EQ(gt_sf(net.node(4))->stage(), GtTschSf::Stage::kOperational);
  EXPECT_EQ(gt_sf(net.node(4))->channel_to_parent(),
            gt_sf(net.node(other))->family_channel());
}

TEST(Failure, ParentReclaimsCellsOfDeadChild) {
  // Line: root 1 - relay 2 - leaf 3. Kill the leaf; after child_timeout
  // the relay must reclaim its Rx cells and erase the child.
  const auto topo = build_line(1, {0, 0}, 2, 30.0);
  auto nc = gt_config(60.0);
  nc.sf.gt.child_timeout = 60_s;
  DynamicLinkModel* dyn = nullptr;
  Network net(81, dynamic_disk(&dyn), topo, nc, nullptr);

  net.start();
  net.sim().run_until(240_s);
  ASSERT_TRUE(net.fully_formed());
  ASSERT_EQ(gt_sf(net.node(2))->child_count(), 1u);
  ASSERT_GT(gt_sf(net.node(2))->allocated_rx_cells(), 0);

  dyn->kill_node(250_s, 3);
  net.sim().at(250_s, [&] { net.node(3).fail(); });
  net.sim().run_until(600_s);

  EXPECT_EQ(gt_sf(net.node(2))->child_count(), 0u);
  EXPECT_EQ(gt_sf(net.node(2))->allocated_rx_cells(), 0);
}

TEST(Failure, DeliveryRecoversAfterRouterFailure) {
  TopologySpec topo;
  topo.nodes.push_back(NodeSpec{1, {0, 0}, true});
  topo.nodes.push_back(NodeSpec{2, {30, 12}, false});
  topo.nodes.push_back(NodeSpec{3, {30, -12}, false});
  topo.nodes.push_back(NodeSpec{4, {55, 0}, false});

  // Measure only the post-failure window.
  RunStats stats(330_s, 630_s);
  DynamicLinkModel* dyn = nullptr;
  Network net(83, dynamic_disk(&dyn), topo, gt_config(60.0), &stats);

  net.start();
  net.sim().run_until(200_s);
  ASSERT_TRUE(net.fully_formed());
  const NodeId victim = net.node(4).rpl().parent();
  dyn->kill_node(210_s, victim);
  net.sim().at(210_s, [&] { net.node(victim).fail(); });
  net.sim().at(330_s, [&] { stats.begin_measurement(); });
  net.sim().at(630_s, [&] { stats.end_measurement(); });
  net.sim().run_until(640_s);

  // The leaf's packets flow again via the surviving router.
  const auto& leaf = stats.per_node().at(4);
  EXPECT_GT(leaf.generated, 200u);
  EXPECT_GT(static_cast<double>(leaf.delivered_origin),
            0.9 * static_cast<double>(leaf.generated));
}

TEST(Failure, OrchestraAlsoRecovers) {
  // Baseline sanity: Orchestra's autonomous cells follow the new parent.
  TopologySpec topo;
  topo.nodes.push_back(NodeSpec{1, {0, 0}, true});
  topo.nodes.push_back(NodeSpec{2, {30, 12}, false});
  topo.nodes.push_back(NodeSpec{3, {30, -12}, false});
  topo.nodes.push_back(NodeSpec{4, {55, 0}, false});

  ScenarioConfig sc;
  sc.scheduler = "orchestra";
  sc.traffic_ppm = 30.0;
  auto nc = sc.make_node_config();
  nc.app_start = 60_s;
  nc.app_end = 0;

  DynamicLinkModel* dyn = nullptr;
  Network net(87, dynamic_disk(&dyn), topo, nc, nullptr);
  net.start();
  net.sim().run_until(200_s);
  ASSERT_TRUE(net.fully_formed());
  const NodeId victim = net.node(4).rpl().parent();
  const NodeId other = victim == 2 ? 3 : 2;
  dyn->kill_node(210_s, victim);
  net.sim().at(210_s, [&] { net.node(victim).fail(); });
  net.sim().run_until(600_s);
  EXPECT_EQ(net.node(4).rpl().parent(), other);
}

}  // namespace
}  // namespace gttsch
