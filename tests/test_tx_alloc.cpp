// Unicast-Data placement tests (Section V): Tx>Rx, Rx interleaving,
// fairness across children, candidate-list (CellList) restriction.
#include <gtest/gtest.h>

#include "core/slotframe_layout.hpp"
#include "core/tx_alloc.hpp"

namespace gttsch {
namespace {

Cell cell(std::uint16_t slot, std::uint8_t options, NodeId nbr,
          ChannelOffset ch = 1) {
  Cell c;
  c.slot_offset = slot;
  c.channel_offset = ch;
  c.options = options;
  c.neighbor = nbr;
  return c;
}

SlotframeLayout layout32() { return SlotframeLayout({32, 4, 3}); }

TEST(TxAlloc, ExtractSeparatesKinds) {
  Slotframe sf(0, 32);
  sf.add(cell(1, kCellTx, 9));                      // data tx
  sf.add(cell(2, kCellRx, 7));                      // data rx
  sf.add(cell(3, kCellTx | kCellSixp, 9));          // 6P: excluded
  sf.add(cell(4, kCellTx | kCellShared, 9));        // shared: excluded
  sf.add(cell(0, kCellTx | kCellRx, kBroadcastId)); // broadcast: excluded
  const auto cells = TxSlotAllocator::extract_data_cells(sf);
  EXPECT_EQ(cells.tx, (std::vector<std::uint16_t>{1}));
  EXPECT_EQ(cells.rx, (std::vector<std::uint16_t>{2}));
  ASSERT_EQ(cells.rx_owner.size(), 1u);
  EXPECT_EQ(cells.rx_owner[0], 7);
}

TEST(TxAlloc, RootGrantsWithoutTxCells) {
  Slotframe sf(0, 32);
  const auto layout = layout32();
  const auto offsets = TxSlotAllocator::place_rx(sf, layout, 5, 4, /*is_root=*/true);
  EXPECT_EQ(offsets.size(), 4u);
  for (auto o : offsets) {
    EXPECT_FALSE(layout.is_broadcast_slot(o));
    EXPECT_FALSE(layout.is_shared_slot(o));
  }
}

TEST(TxAlloc, NonRootNeedsTxFirst) {
  Slotframe sf(0, 32);
  const auto layout = layout32();
  // No Tx cells at all -> cannot grant any Rx (rule a).
  EXPECT_TRUE(TxSlotAllocator::place_rx(sf, layout, 5, 2, false).empty());
  EXPECT_EQ(TxSlotAllocator::grantable_rx(sf, layout, false), 0);
}

TEST(TxAlloc, MarginRuleTxExceedsRx) {
  Slotframe sf(0, 32);
  const auto layout = layout32();
  sf.add(cell(5, kCellTx, 1));
  sf.add(cell(13, kCellTx, 1));
  sf.add(cell(21, kCellTx, 1));
  // 3 Tx, 0 Rx: may grant at most 2 (so Tx=3 > Rx=2 still holds).
  const auto offsets = TxSlotAllocator::place_rx(sf, layout, 7, 10, false);
  EXPECT_EQ(offsets.size(), 2u);
}

TEST(TxAlloc, InterleavingMaintainedAfterPlacement) {
  Slotframe sf(0, 32);
  const auto layout = layout32();
  for (std::uint16_t o : {3, 9, 14, 20, 26}) sf.add(cell(o, kCellTx, 1));
  const auto offsets = TxSlotAllocator::place_rx(sf, layout, 7, 4, false);
  EXPECT_EQ(offsets.size(), 4u);
  for (auto o : offsets) sf.add(cell(o, kCellRx, 7));
  EXPECT_TRUE(TxSlotAllocator::rx_interleaved(sf));
  EXPECT_TRUE(TxSlotAllocator::tx_exceeds_rx(sf));
}

TEST(TxAlloc, GrantableMatchesActualPlacement) {
  Slotframe sf(0, 32);
  const auto layout = layout32();
  for (std::uint16_t o : {3, 9, 14, 20}) sf.add(cell(o, kCellTx, 1));
  const int grantable = TxSlotAllocator::grantable_rx(sf, layout, false);
  const auto offsets = TxSlotAllocator::place_rx(sf, layout, 7, 100, false);
  EXPECT_EQ(static_cast<int>(offsets.size()), grantable);
  EXPECT_EQ(grantable, 3);  // 4 tx - 0 rx - 1
}

TEST(TxAlloc, FairnessPrefersSeparatingChildren) {
  Slotframe sf(0, 32);
  const auto layout = layout32();
  for (std::uint16_t o : {2, 6, 10, 14, 18, 22, 26}) sf.add(cell(o, kCellTx, 1));
  // Child 7 already has Rx at 3 and 11.
  sf.add(cell(3, kCellRx, 7));
  sf.add(cell(11, kCellRx, 7));
  // Grant one more cell to child 7: it should not be adjacent (in Rx
  // order) to 3 or 11 more closely than necessary — concretely, the chosen
  // offset must keep interleaving and maximize distance to 7's cells.
  const auto offsets = TxSlotAllocator::place_rx(sf, layout, 7, 1, false);
  ASSERT_EQ(offsets.size(), 1u);
  const int d3 = std::min<int>(std::abs(offsets[0] - 3), 32 - std::abs(offsets[0] - 3));
  const int d11 = std::min<int>(std::abs(offsets[0] - 11), 32 - std::abs(offsets[0] - 11));
  EXPECT_GE(std::min(d3, d11), 4);
}

TEST(TxAlloc, AllowedListRestrictsPlacement) {
  Slotframe sf(0, 32);
  const auto layout = layout32();
  for (std::uint16_t o : {3, 9, 14, 20, 26}) sf.add(cell(o, kCellTx, 1));
  const std::vector<std::uint16_t> allowed{5, 6};
  const auto offsets = TxSlotAllocator::place_rx(sf, layout, 7, 4, false, &allowed);
  EXPECT_LE(offsets.size(), 2u);
  for (auto o : offsets) EXPECT_TRUE(o == 5 || o == 6);
}

TEST(TxAlloc, EmptyAllowedListGrantsNothing) {
  Slotframe sf(0, 32);
  const auto layout = layout32();
  for (std::uint16_t o : {3, 9}) sf.add(cell(o, kCellTx, 1));
  const std::vector<std::uint16_t> allowed;
  EXPECT_TRUE(TxSlotAllocator::place_rx(sf, layout, 7, 2, false, &allowed).empty());
}

TEST(TxAlloc, PlaceFreeSkipsUsedAndReserved) {
  Slotframe sf(0, 32);
  const auto layout = layout32();
  // First negotiable offset is 1 (0 is broadcast); occupy it.
  sf.add(cell(1, kCellTx | kCellSixp, 2));
  const auto slot = TxSlotAllocator::place_free(sf, layout);
  ASSERT_TRUE(slot.has_value());
  EXPECT_EQ(*slot, 2);
}

TEST(TxAlloc, PlaceFreeRespectsAllowed) {
  Slotframe sf(0, 32);
  const auto layout = layout32();
  const std::vector<std::uint16_t> allowed{10, 11};
  const auto slot = TxSlotAllocator::place_free(sf, layout, &allowed);
  ASSERT_TRUE(slot.has_value());
  EXPECT_EQ(*slot, 10);
}

TEST(TxAlloc, PlaceFreeReturnsNothingWhenFull) {
  Slotframe sf(0, 32);
  const auto layout = layout32();
  for (auto s : layout.negotiable_offsets()) sf.add(cell(s, kCellTx, 2));
  EXPECT_FALSE(TxSlotAllocator::place_free(sf, layout).has_value());
}

TEST(TxAlloc, InterleaveValidatorDetectsViolation) {
  Slotframe sf(0, 32);
  sf.add(cell(5, kCellRx, 7));
  sf.add(cell(6, kCellRx, 8));  // two Rx with no Tx between
  sf.add(cell(20, kCellTx, 1));
  EXPECT_FALSE(TxSlotAllocator::rx_interleaved(sf));
}

TEST(TxAlloc, InterleaveValidatorAcceptsAlternating) {
  Slotframe sf(0, 32);
  sf.add(cell(2, kCellRx, 7));
  sf.add(cell(4, kCellTx, 1));
  sf.add(cell(6, kCellRx, 8));
  sf.add(cell(8, kCellTx, 1));
  EXPECT_TRUE(TxSlotAllocator::rx_interleaved(sf));
}

TEST(TxAlloc, TxExceedsRxValidator) {
  Slotframe sf(0, 32);
  sf.add(cell(2, kCellRx, 7));
  EXPECT_FALSE(TxSlotAllocator::tx_exceeds_rx(sf));
  sf.add(cell(4, kCellTx, 1));
  EXPECT_FALSE(TxSlotAllocator::tx_exceeds_rx(sf));  // 1 == 1
  sf.add(cell(6, kCellTx, 1));
  EXPECT_TRUE(TxSlotAllocator::tx_exceeds_rx(sf));
}

/// Incremental stress: repeatedly grant cells to several children while
/// adding Tx capacity, checking invariants after every step (the situation
/// a busy forwarder faces under rising load).
TEST(TxAlloc, IncrementalGrowthKeepsInvariants) {
  Slotframe sf(0, 32);
  const auto layout = layout32();
  std::uint16_t next_tx_slot = 1;
  int granted = 0;
  for (int round = 0; round < 8; ++round) {
    // Parent acquires two more Tx cells (as if granted by the grandparent).
    for (int i = 0; i < 2; ++i) {
      while (sf.slot_in_use(next_tx_slot) || layout.is_broadcast_slot(next_tx_slot) ||
             layout.is_shared_slot(next_tx_slot))
        ++next_tx_slot;
      if (next_tx_slot >= 32) break;
      sf.add(cell(next_tx_slot, kCellTx, 1));
    }
    const NodeId child = static_cast<NodeId>(10 + round % 3);
    const auto offsets = TxSlotAllocator::place_rx(sf, layout, child, 1, false);
    for (auto o : offsets) {
      sf.add(cell(o, kCellRx, child));
      ++granted;
    }
    EXPECT_TRUE(TxSlotAllocator::tx_exceeds_rx(sf)) << "round " << round;
    EXPECT_TRUE(TxSlotAllocator::rx_interleaved(sf)) << "round " << round;
  }
  EXPECT_GE(granted, 3);
}

}  // namespace
}  // namespace gttsch
