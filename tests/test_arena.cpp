// Fixed-slot arena (util/arena): slot geometry, LIFO slot reuse (the
// reboot-lands-in-its-own-slot contract), block growth, and the
// contiguity that makes Network's stack slab cache-friendly.
#include "util/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <vector>

namespace gttsch {
namespace {

TEST(Arena, SlotsAreAlignedAndRoundedUp) {
  Arena arena(/*slot_bytes=*/24, /*alignment=*/64, /*slots_per_block=*/4);
  EXPECT_EQ(arena.slot_bytes() % 64, 0u);
  EXPECT_GE(arena.slot_bytes(), 24u);
  void* a = arena.allocate();
  void* b = arena.allocate();
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 64, 0u);
  arena.deallocate(b);
  arena.deallocate(a);
}

TEST(Arena, SameBlockAllocationsAreContiguous) {
  Arena arena(128, 64, /*slots_per_block=*/8);
  void* prev = arena.allocate();
  for (int i = 1; i < 8; ++i) {
    void* cur = arena.allocate();
    EXPECT_EQ(static_cast<std::byte*>(cur) - static_cast<std::byte*>(prev),
              static_cast<std::ptrdiff_t>(arena.slot_bytes()));
    prev = cur;
  }
  EXPECT_EQ(arena.blocks(), 1u);
}

TEST(Arena, FreedSlotIsReusedLifo) {
  // The crash-reboot contract: destroy a stack, build the next one, and
  // it must land in the exact slot just vacated.
  Arena arena(256, 64, 16);
  void* first = arena.allocate();
  void* second = arena.allocate();
  arena.deallocate(second);
  EXPECT_EQ(arena.allocate(), second);
  arena.deallocate(second);
  arena.deallocate(first);
  EXPECT_EQ(arena.allocate(), first);
  EXPECT_EQ(arena.allocate(), second);
}

TEST(Arena, GrowsByBlocksAndTracksUsage) {
  Arena arena(64, 64, /*slots_per_block=*/4);
  std::vector<void*> slots;
  for (int i = 0; i < 10; ++i) slots.push_back(arena.allocate());
  EXPECT_EQ(arena.blocks(), 3u);  // ceil(10 / 4)
  EXPECT_EQ(arena.slots_in_use(), 10u);
  // All live slots are distinct.
  EXPECT_EQ(std::set<void*>(slots.begin(), slots.end()).size(), 10u);
  for (void* p : slots) arena.deallocate(p);
  EXPECT_EQ(arena.slots_in_use(), 0u);
  // Draining the freelist hands back only previously-carved slots.
  for (int i = 0; i < 10; ++i) {
    void* p = arena.allocate();
    EXPECT_EQ(std::count(slots.begin(), slots.end(), p), 1);
  }
  EXPECT_EQ(arena.blocks(), 3u);  // no growth while the freelist feeds
}

TEST(Arena, SlotContentsSurviveUntilFreed) {
  Arena arena(sizeof(std::uint64_t) * 4, alignof(std::uint64_t), 4);
  void* a = arena.allocate();
  void* b = arena.allocate();
  std::memset(a, 0xAB, arena.slot_bytes());
  std::memset(b, 0xCD, arena.slot_bytes());
  EXPECT_EQ(static_cast<unsigned char*>(a)[arena.slot_bytes() - 1], 0xAB);
  EXPECT_EQ(static_cast<unsigned char*>(b)[0], 0xCD);
  arena.deallocate(a);
  arena.deallocate(b);
}

TEST(Arena, NullDeallocateIsIgnored) {
  Arena arena(32, 16);
  arena.deallocate(nullptr);
  EXPECT_EQ(arena.slots_in_use(), 0u);
}

}  // namespace
}  // namespace gttsch
