// Nash-equilibrium analysis tests (Theorems 1-2): existence conditions,
// best-response convergence to the closed form, uniqueness from random
// starts, diagonal strict concavity, and the capacity-coupled variant.
#include <gtest/gtest.h>

#include "core/game/nash.hpp"

namespace gttsch::game {
namespace {

PlayerState player(double hops, double etx, double q_frac, double lo, double hi) {
  PlayerState p;
  p.rank = 256 + 256 * hops;
  p.rank_min = 256;
  p.min_step_of_rank = 256;
  p.etx = etx;
  p.queue_max = 16;
  p.queue_avg = q_frac * 16;
  p.l_tx_min = lo;
  p.l_rx_parent = hi;
  return p;
}

std::vector<PlayerState> five_players() {
  return {player(1, 1.0, 0.2, 0, 10), player(1, 1.5, 0.5, 1, 8),
          player(2, 1.2, 0.0, 0, 6),  player(2, 2.0, 0.8, 2, 12),
          player(3, 1.1, 0.4, 0, 9)};
}

TEST(Nash, ExistenceConditionsHold) {
  TxAllocationGame g(Weights{4, 1, 1}, five_players());
  EXPECT_TRUE(g.existence_conditions_hold());
}

TEST(Nash, ExistenceFailsForInvertedBounds) {
  auto players = five_players();
  players[2].l_tx_min = 9;
  players[2].l_rx_parent = 3;  // S_i empty -> not compact-convex-nonempty
  TxAllocationGame g(Weights{4, 1, 1}, players);
  EXPECT_FALSE(g.existence_conditions_hold());
}

TEST(Nash, ClosedFormIsNash) {
  TxAllocationGame g(Weights{4, 1, 1}, five_players());
  EXPECT_TRUE(g.is_nash(g.closed_form_equilibrium()));
}

TEST(Nash, PerturbedProfileIsNotNash) {
  TxAllocationGame g(Weights{4, 1, 1}, five_players());
  auto s = g.closed_form_equilibrium();
  s[0] = g.players()[0].l_tx_min;  // force player 0 off its optimum
  // Only not-Nash if the optimum differed from the bound in the first place.
  ASSERT_GT(g.closed_form_equilibrium()[0], g.players()[0].l_tx_min + 0.5);
  EXPECT_FALSE(g.is_nash(s));
}

TEST(Nash, BestResponseConvergesToClosedForm) {
  TxAllocationGame g(Weights{4, 1, 1}, five_players());
  std::vector<double> init(5, 0.0);
  for (std::size_t i = 0; i < 5; ++i) init[i] = g.players()[i].l_tx_min;
  const auto r = g.best_response_dynamics(init);
  EXPECT_TRUE(r.converged);
  const auto closed = g.closed_form_equilibrium();
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(r.strategies[i], closed[i], 1e-6);
  // Decoupled game: one sweep suffices.
  EXPECT_LE(r.iterations, 3);
}

TEST(Nash, UniqueFromRandomStarts) {
  TxAllocationGame g(Weights{4, 1, 1}, five_players());
  Rng rng(77);
  EXPECT_TRUE(g.unique_equilibrium(rng, 24));
}

TEST(Nash, DiagonalStrictConcavityAtManyPoints) {
  TxAllocationGame g(Weights{4, 1, 1}, five_players());
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> s(5);
    for (std::size_t i = 0; i < 5; ++i) {
      const auto& p = g.players()[i];
      s[i] = p.l_tx_min + rng.uniform_double() * (p.l_rx_parent - p.l_tx_min);
    }
    EXPECT_TRUE(g.diagonally_strictly_concave(s, rng));
  }
}

TEST(Nash, CoupledCapacityRespected) {
  // Five children sharing a parent budget of 12 Rx cells.
  TxAllocationGame g(Weights{4, 1, 1}, five_players());
  std::vector<double> init(5, 0.0);
  const auto r = g.best_response_dynamics(init, /*shared_capacity=*/12.0);
  EXPECT_TRUE(r.converged);
  double total = 0.0;
  for (std::size_t i = 0; i < 5; ++i) {
    total += r.strategies[i];
    EXPECT_GE(r.strategies[i], g.players()[i].l_tx_min - 1e-9);
  }
  // Aggregate demand cannot exceed the budget by more than the forced
  // minima (kept so strategy sets stay non-empty).
  double forced = 0.0;
  for (const auto& p : g.players()) forced += p.l_tx_min;
  EXPECT_LE(total, std::max(12.0, forced) + 1e-6);
}

TEST(Nash, CoupledConvergesFromManyStarts) {
  // When the shared budget binds, the coupled game's equilibrium set is a
  // continuum (order of claims matters), so unlike the decoupled paper
  // formulation we assert convergence + feasibility, not uniqueness.
  TxAllocationGame g(Weights{4, 1, 1}, five_players());
  Rng rng(123);
  for (int start = 0; start < 12; ++start) {
    std::vector<double> init(5);
    for (std::size_t i = 0; i < 5; ++i) {
      const auto& p = g.players()[i];
      init[i] = p.l_tx_min + rng.uniform_double() * (p.l_rx_parent - p.l_tx_min);
    }
    const auto r = g.best_response_dynamics(std::move(init), /*shared_capacity=*/10.0);
    EXPECT_TRUE(r.converged);
    for (std::size_t i = 0; i < 5; ++i)
      EXPECT_GE(r.strategies[i], g.players()[i].l_tx_min - 1e-9);
  }
}

TEST(Nash, CoupledUniqueWhenBudgetSlack) {
  // With a non-binding budget the equilibrium is unique again.
  TxAllocationGame g(Weights{4, 1, 1}, five_players());
  Rng rng(321);
  EXPECT_TRUE(g.unique_equilibrium(rng, 12, /*shared_capacity=*/500.0));
}

TEST(Nash, LooseCouplingMatchesUncoupled) {
  // With a budget far above total demand the coupled solution equals the
  // paper's decoupled closed form.
  TxAllocationGame g(Weights{4, 1, 1}, five_players());
  std::vector<double> init(5, 0.0);
  const auto coupled = g.best_response_dynamics(init, /*shared_capacity=*/1000.0);
  const auto closed = g.closed_form_equilibrium();
  ASSERT_TRUE(coupled.converged);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(coupled.strategies[i], closed[i], 1e-6);
}

// --- Parameterized: equilibrium comparative statics -------------------------

struct StaticsCase {
  double etx_a, etx_b;       // player 0 variants
  double expect_order;       // +1: s(etx_a) > s(etx_b)
};

class NashStatics : public ::testing::TestWithParam<int> {};

TEST_P(NashStatics, WorseLinkNeverIncreasesEquilibriumShare) {
  const int scenario = GetParam();
  const double etx_low = 1.0 + 0.2 * scenario;
  const double etx_high = etx_low + 1.0;
  auto p_low = player(1 + scenario % 3, etx_low, 0.3, 0, 10);
  auto p_high = p_low;
  p_high.etx = etx_high;
  const Weights w{4, 1, 1};
  EXPECT_GE(optimal_tx_slots(w, p_low), optimal_tx_slots(w, p_high));
}

TEST_P(NashStatics, FullerQueueNeverDecreasesEquilibriumShare) {
  const int scenario = GetParam();
  auto p_empty = player(1 + scenario % 3, 1.0 + 0.3 * scenario, 0.1, 0, 10);
  auto p_full = p_empty;
  p_full.queue_avg = 0.9 * p_full.queue_max;
  const Weights w{4, 1, 1};
  EXPECT_LE(optimal_tx_slots(w, p_empty), optimal_tx_slots(w, p_full));
}

TEST_P(NashStatics, ShallowerNodeNeverGetsLess) {
  const int scenario = GetParam();
  auto p_shallow = player(1, 1.0 + 0.25 * scenario, 0.4, 0, 10);
  auto p_deep = p_shallow;
  p_deep.rank = 256 + 256 * 3;
  const Weights w{4, 1, 1};
  EXPECT_GE(optimal_tx_slots(w, p_shallow), optimal_tx_slots(w, p_deep));
}

INSTANTIATE_TEST_SUITE_P(Scenarios, NashStatics, ::testing::Range(0, 8));

}  // namespace
}  // namespace gttsch::game
