// Fault-tolerance tests: journal schema rev 2 (status records, old-line
// compatibility, ok-supersedes-quarantined), failure accounting in the
// aggregates and reports, runner retries/quarantine, resume semantics for
// quarantined records, the job-envelope round trip, the in-child run-job
// protocol (bit-identical to in-process execution), and the in-simulator
// watchdog behind --job-timeout.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "campaign/isolate.hpp"
#include "campaign/journal.hpp"
#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "scenario/experiment.hpp"
#include "sim/simulator.hpp"

namespace gttsch {
namespace {

using namespace literals;
using campaign::JobOutcome;
using campaign::JobStatus;
using campaign::JournalRecord;
using campaign::JournalWriter;
using campaign::PointAccumulator;
using campaign::PointAggregate;

std::string test_file(const char* name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

/// Ok record with metrics whose doubles exercise exact round-tripping.
JournalRecord ok_record(std::size_t point_index, std::size_t seed_index) {
  JournalRecord r;
  r.point_index = point_index;
  r.seed_index = seed_index;
  r.seed = 1000 + 17 * seed_index;
  r.campaign_fp = 0xfeedface12345678ull;
  r.label = "traffic_ppm=30";
  r.coords = {{"traffic_ppm", "30"}};
  r.result.fully_formed = true;
  r.result.metrics.pdr_percent = 100.0 / 3.0;
  r.result.metrics.avg_delay_ms = 281.99999999999989;
  r.result.metrics.generated = 240;
  r.result.metrics.delivered = 200;
  r.result.metrics.node_count = 5;
  r.result.medium.transmissions = 700;
  return r;
}

JournalRecord crashed_record(std::size_t point_index, std::size_t seed_index) {
  JournalRecord r = ok_record(point_index, seed_index);
  r.result = {};
  r.status = JobStatus::kCrashed;
  r.term_signal = 11;
  r.attempts = 3;
  return r;
}

// ---------------------------------------------------------------- status --

TEST(FaultStatus, NameAndParseRoundTrip) {
  for (const JobStatus s : {JobStatus::kOk, JobStatus::kCrashed,
                            JobStatus::kTimeout, JobStatus::kFailed}) {
    JobStatus parsed = JobStatus::kOk;
    ASSERT_TRUE(campaign::parse_job_status(campaign::job_status_name(s), &parsed));
    EXPECT_EQ(parsed, s);
  }
  JobStatus parsed = JobStatus::kOk;
  EXPECT_FALSE(campaign::parse_job_status("exploded", &parsed));
}

// --------------------------------------------------------------- journal --

// Schema rev 2 must not disturb rev-1 output for healthy records: an ok
// record with attempts == 1 renders without any of the new keys, which is
// what keeps --isolate results byte-identical to non-isolated runs and
// old tooling able to read new journals.
TEST(FaultJournal, OkRecordRendersWithoutStatusKeys) {
  const std::string line = campaign::render_journal_line(ok_record(0, 0));
  EXPECT_EQ(line.find("\"status\""), std::string::npos);
  EXPECT_EQ(line.find("\"attempts\""), std::string::npos);
  EXPECT_EQ(line.find("\"exit_code\""), std::string::npos);
  EXPECT_EQ(line.find("\"term_signal\""), std::string::npos);

  JournalRecord parsed;
  std::string error;
  ASSERT_TRUE(campaign::parse_journal_line(line, &parsed, &error)) << error;
  EXPECT_EQ(parsed.status, JobStatus::kOk);
  EXPECT_EQ(parsed.attempts, 1);
}

TEST(FaultJournal, FailureRecordRoundTripsAndCarriesNoMetrics) {
  const JournalRecord r = crashed_record(2, 1);
  const std::string line = campaign::render_journal_line(r);
  EXPECT_NE(line.find("\"status\": \"crashed\""), std::string::npos);
  EXPECT_EQ(line.find("\"metrics\""), std::string::npos);
  EXPECT_EQ(line.find("\"medium\""), std::string::npos);

  JournalRecord parsed;
  std::string error;
  ASSERT_TRUE(campaign::parse_journal_line(line, &parsed, &error)) << error;
  EXPECT_EQ(parsed.status, JobStatus::kCrashed);
  EXPECT_EQ(parsed.term_signal, 11);
  EXPECT_EQ(parsed.attempts, 3);
  EXPECT_EQ(parsed.point_index, 2u);
  EXPECT_EQ(parsed.seed_index, 1u);
  EXPECT_EQ(parsed.label, r.label);
}

// run_job_isolated journals exit_code -1 when waitpid reports neither
// WIFEXITED nor WIFSIGNALED; the parser must accept the sign, or that
// record becomes a malformed non-final line that bricks resume/merge.
TEST(FaultJournal, NegativeExitCodeRoundTrips) {
  JournalRecord r = ok_record(1, 0);
  r.result = {};
  r.status = JobStatus::kFailed;
  r.exit_code = -1;
  r.attempts = 2;
  JournalRecord parsed;
  std::string error;
  ASSERT_TRUE(campaign::parse_journal_line(campaign::render_journal_line(r),
                                           &parsed, &error))
      << error;
  EXPECT_EQ(parsed.status, JobStatus::kFailed);
  EXPECT_EQ(parsed.exit_code, -1);
  EXPECT_EQ(parsed.attempts, 2);
}

TEST(FaultJournal, OkRecordKeepsRetryAttemptCount) {
  JournalRecord r = ok_record(0, 0);
  r.attempts = 2;  // succeeded on the first retry
  JournalRecord parsed;
  std::string error;
  ASSERT_TRUE(campaign::parse_journal_line(campaign::render_journal_line(r),
                                           &parsed, &error))
      << error;
  EXPECT_EQ(parsed.status, JobStatus::kOk);
  EXPECT_EQ(parsed.attempts, 2);
  EXPECT_EQ(parsed.result.metrics.generated, r.result.metrics.generated);
}

// A journal written before schema rev 2 has no status key at all; it must
// still read as all-ok records (resume and merge keep working).
TEST(FaultJournal, PreStatusLineDefaultsToOk) {
  const std::string line =
      "{\"point\": 0, \"seed_index\": 0, \"seed\": 1000, \"label\": \"x\", "
      "\"coords\": {}, \"fully_formed\": true, \"metrics\": {}, "
      "\"medium\": {}}";
  JournalRecord parsed;
  std::string error;
  ASSERT_TRUE(campaign::parse_journal_line(line, &parsed, &error)) << error;
  EXPECT_EQ(parsed.status, JobStatus::kOk);
  EXPECT_EQ(parsed.attempts, 1);
}

// A --retry-quarantined resume appends the ok re-run AFTER the failure
// record; on the next read the ok record must win.
TEST(FaultJournal, OkRecordSupersedesQuarantinedOnReread) {
  const std::string path = test_file("supersede.jsonl");
  std::filesystem::remove(path);
  {
    JournalWriter writer(path, /*append_mode=*/false);
    ASSERT_TRUE(writer.append(crashed_record(0, 0)));
    ASSERT_TRUE(writer.append(ok_record(0, 0)));
    // The reverse order must NOT supersede: once a seed has an ok record,
    // a later failure (e.g. a retried duplicate) cannot erase it.
    ASSERT_TRUE(writer.append(ok_record(0, 1)));
    ASSERT_TRUE(writer.append(crashed_record(0, 1)));
  }
  std::vector<JournalRecord> records;
  std::string error;
  ASSERT_TRUE(campaign::read_journal(path, &records, &error)) << error;
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].status, JobStatus::kOk);
  EXPECT_EQ(records[1].status, JobStatus::kOk);
}

// ------------------------------------------------------------- aggregate --

TEST(FaultAggregate, CountsFailuresByKind) {
  PointAccumulator acc;
  acc.add(0, ok_record(0, 0).result);
  acc.add_failure(1, JobStatus::kCrashed);
  acc.add_failure(2, JobStatus::kTimeout);
  acc.add_failure(3, JobStatus::kCrashed);
  acc.add_failure(4, JobStatus::kFailed);
  const PointAggregate agg = acc.finalize();
  EXPECT_EQ(agg.runs, 1);
  EXPECT_EQ(agg.runs_failed, 4);
  EXPECT_EQ(agg.failed_crashed, 2);
  EXPECT_EQ(agg.failed_timeout, 1);
  EXPECT_EQ(agg.failed_other, 1);
  EXPECT_STREQ(campaign::point_status(agg), "ok");
  EXPECT_EQ(campaign::failure_kinds_label(agg), "crashed:2;timeout:1;failed:1");
}

TEST(FaultAggregate, SuccessSupersedesFailureForTheSameSeed) {
  PointAccumulator acc;
  acc.add_failure(0, JobStatus::kCrashed);
  acc.add(0, ok_record(0, 0).result);  // retry-quarantined re-run succeeded
  acc.add(1, ok_record(0, 1).result);
  acc.add_failure(1, JobStatus::kTimeout);  // stale duplicate: ignored
  const PointAggregate agg = acc.finalize();
  EXPECT_EQ(agg.runs, 2);
  EXPECT_EQ(agg.runs_failed, 0);
}

// Satellite fix: a point whose every job failed used to emit a runs == 0
// row indistinguishable from "not in this shard"; it must now carry
// status=failed with its failure counts intact.
TEST(FaultAggregate, AllFailedPointIsStatusFailedNotEmpty) {
  PointAccumulator acc;
  acc.add_failure(0, JobStatus::kCrashed);
  acc.add_failure(1, JobStatus::kCrashed);
  const PointAggregate agg = acc.finalize();
  EXPECT_EQ(agg.runs, 0);
  EXPECT_EQ(agg.runs_failed, 2);
  EXPECT_STREQ(campaign::point_status(agg), "failed");

  const PointAggregate empty = PointAccumulator().finalize();
  EXPECT_STREQ(campaign::point_status(empty), "empty");
  EXPECT_EQ(campaign::failure_kinds_label(empty), "");
}

TEST(FaultAggregate, MergeAccountsQuarantinedRecords) {
  std::vector<JournalRecord> records;
  records.push_back(ok_record(0, 0));
  records.push_back(crashed_record(0, 1));
  JournalRecord timeout = crashed_record(0, 2);
  timeout.status = JobStatus::kTimeout;
  timeout.term_signal = 9;
  records.push_back(timeout);
  // Cross-file supersede: a later shard carries the ok re-run of seed 1.
  records.push_back(ok_record(0, 1));

  std::vector<PointAggregate> aggregates;
  std::string error;
  ASSERT_TRUE(campaign::aggregate_records(records, &aggregates, &error)) << error;
  ASSERT_EQ(aggregates.size(), 1u);
  EXPECT_EQ(aggregates[0].runs, 2);
  EXPECT_EQ(aggregates[0].runs_failed, 1);
  EXPECT_EQ(aggregates[0].failed_timeout, 1);

  const std::string csv = campaign::render_csv(aggregates);
  EXPECT_NE(csv.find(",status,failed_jobs,failure_kinds"), std::string::npos);
  EXPECT_NE(csv.find("timeout:1"), std::string::npos);
  const std::string json = campaign::render_json(aggregates);
  EXPECT_NE(json.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"failed_jobs\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"timeout\": 1"), std::string::npos);
}

// ---------------------------------------------------------------- runner --

campaign::Job job_at(std::size_t index, std::size_t point_index,
                     std::size_t seed_index) {
  campaign::Job job;
  job.index = index;
  job.point_index = point_index;
  job.seed_index = seed_index;
  job.config.seed = 1 + seed_index;
  return job;
}

TEST(FaultRunner, RetriesUntilSuccessAndCountsAttempts) {
  std::atomic<int> calls{0};
  campaign::RunnerOptions options;
  options.jobs = 1;
  options.retries = 3;
  options.retry_backoff_ms = 1;  // keep the test fast
  options.execute_fn = [&calls](const campaign::Job&) {
    JobOutcome outcome;
    if (++calls < 3) outcome.status = JobStatus::kCrashed;
    return outcome;
  };
  campaign::Runner runner(options);
  const auto result = runner.run({job_at(0, 0, 0)});
  EXPECT_EQ(calls.load(), 3);
  ASSERT_EQ(result.outcomes.size(), 1u);
  EXPECT_EQ(result.outcomes[0].status, JobStatus::kOk);
  EXPECT_EQ(result.outcomes[0].attempts, 3);
}

TEST(FaultRunner, QuarantinesAfterRetriesExhaustedAndContinues) {
  std::atomic<int> sick_calls{0};
  campaign::RunnerOptions options;
  options.jobs = 1;
  options.retries = 2;
  options.retry_backoff_ms = 1;
  options.execute_fn = [&sick_calls](const campaign::Job& job) {
    JobOutcome outcome;
    if (job.seed_index == 0) {  // one deterministic crasher among healthy jobs
      ++sick_calls;
      outcome.status = JobStatus::kCrashed;
      outcome.term_signal = 11;
    }
    return outcome;
  };
  campaign::Runner runner(options);
  const auto result = runner.run({job_at(0, 0, 0), job_at(1, 0, 1)});
  EXPECT_EQ(sick_calls.load(), 3);  // 1 + 2 retries
  EXPECT_FALSE(result.cancelled);
  EXPECT_EQ(result.outcomes[0].status, JobStatus::kCrashed);
  EXPECT_EQ(result.outcomes[0].attempts, 3);
  EXPECT_EQ(result.outcomes[0].term_signal, 11);
  EXPECT_EQ(result.outcomes[1].status, JobStatus::kOk);  // campaign continued
}

TEST(FaultRunner, ExternalCancelFlagStopsClaiming) {
  std::atomic<bool> interrupted{false};
  campaign::RunnerOptions options;
  options.jobs = 1;
  options.cancel_flag = &interrupted;
  options.execute_fn = [](const campaign::Job&) { return JobOutcome{}; };
  options.on_progress = [&interrupted](const campaign::Progress& p) {
    if (p.completed == 2) interrupted.store(true);
  };
  campaign::Runner runner(options);
  std::vector<campaign::Job> jobs;
  for (std::size_t i = 0; i < 6; ++i) jobs.push_back(job_at(i, 0, i));
  const auto result = runner.run(jobs);
  EXPECT_TRUE(result.cancelled);
  std::size_t done = 0;
  for (const std::uint8_t c : result.completed) done += c;
  EXPECT_EQ(done, 2u);
}

// ------------------------------------------------------ campaign + resume --

std::vector<campaign::GridPoint> two_points() {
  campaign::CampaignSpec spec;
  spec.base.dodag_count = 1;
  spec.base.nodes_per_dodag = 4;
  spec.axes = {{"traffic_ppm", {"30", "120"}}};
  spec.seeds = {1};  // expand_grid validates the whole spec, seeds included
  std::string error;
  return campaign::expand_grid(spec, &error);
}

JobOutcome synthetic_outcome(const campaign::Job& job) {
  JobOutcome outcome;
  outcome.result.fully_formed = true;
  outcome.result.metrics.pdr_percent =
      90.0 + static_cast<double>(job.point_index) +
      static_cast<double>(job.seed_index) / 7.0;
  outcome.result.metrics.generated = 100 + job.config.seed;
  outcome.result.metrics.node_count = 4;
  return outcome;
}

TEST(FaultCampaign, QuarantinesJournalAndResumes) {
  const std::string journal = test_file("fault_campaign.jsonl");
  std::filesystem::remove(journal);
  const std::vector<campaign::GridPoint> points = two_points();
  ASSERT_EQ(points.size(), 2u);
  const std::vector<std::uint64_t> seeds = {1, 2, 3};

  // Point 1, seed #1 crashes deterministically; everything else is healthy.
  std::atomic<int> invocations{0};
  auto execute = [&invocations](const campaign::Job& job) {
    ++invocations;
    if (job.point_index == 1 && job.seed_index == 1) {
      JobOutcome outcome;
      outcome.status = JobStatus::kCrashed;
      outcome.term_signal = 6;
      return outcome;
    }
    return synthetic_outcome(job);
  };

  campaign::CampaignOptions options;
  options.runner.jobs = 1;
  options.runner.retries = 1;
  options.runner.retry_backoff_ms = 1;
  options.runner.execute_fn = execute;
  options.journal_path = journal;

  campaign::CampaignResult result;
  std::string error;
  ASSERT_TRUE(campaign::run_points_campaign(points, seeds, options, &result,
                                            &error))
      << error;
  EXPECT_EQ(invocations.load(), 7);  // 6 jobs + 1 retry of the crasher
  EXPECT_EQ(result.jobs_run, 6u);
  EXPECT_EQ(result.jobs_failed, 1u);
  ASSERT_EQ(result.aggregates.size(), 2u);
  EXPECT_EQ(result.aggregates[0].runs, 3);
  EXPECT_EQ(result.aggregates[0].runs_failed, 0);
  EXPECT_EQ(result.aggregates[1].runs, 2);
  EXPECT_EQ(result.aggregates[1].runs_failed, 1);
  EXPECT_EQ(result.aggregates[1].failed_crashed, 1);

  std::vector<JournalRecord> records;
  ASSERT_TRUE(campaign::read_journal(journal, &records, &error)) << error;
  ASSERT_EQ(records.size(), 6u);
  int failures = 0;
  for (const JournalRecord& r : records) {
    if (r.status != JobStatus::kOk) {
      ++failures;
      EXPECT_EQ(r.point_index, 1u);
      EXPECT_EQ(r.seed_index, 1u);
      EXPECT_EQ(r.attempts, 2);
      EXPECT_EQ(r.term_signal, 6);
    }
  }
  EXPECT_EQ(failures, 1);

  // Plain resume: quarantined stays quarantined, nothing re-runs.
  invocations = 0;
  options.resume = true;
  campaign::CampaignResult resumed;
  ASSERT_TRUE(campaign::run_points_campaign(points, seeds, options, &resumed,
                                            &error))
      << error;
  EXPECT_EQ(invocations.load(), 0);
  EXPECT_EQ(resumed.jobs_skipped, 6u);
  EXPECT_EQ(resumed.jobs_failed, 1u);

  // --retry-quarantined: exactly the failed job re-runs. Swap in an
  // all-healthy execute function so the re-run succeeds this time.
  invocations = 0;
  options.runner.execute_fn = [&invocations](const campaign::Job& job) {
    ++invocations;
    return synthetic_outcome(job);
  };
  options.fault.retry_quarantined = true;
  campaign::CampaignResult retried;
  ASSERT_TRUE(campaign::run_points_campaign(points, seeds, options, &retried,
                                            &error))
      << error;
  EXPECT_EQ(invocations.load(), 1);  // exactly the quarantined job
  EXPECT_EQ(retried.jobs_run, 1u);
  EXPECT_EQ(retried.jobs_skipped, 5u);
  EXPECT_EQ(retried.jobs_failed, 0u);
  EXPECT_EQ(retried.aggregates[1].runs, 3);

  // The journal now ends with the ok re-run; a further resume must treat
  // the seed as done even without --retry-quarantined.
  invocations = 0;
  options.fault.retry_quarantined = false;
  campaign::CampaignResult settled;
  ASSERT_TRUE(campaign::run_points_campaign(points, seeds, options, &settled,
                                            &error))
      << error;
  EXPECT_EQ(invocations.load(), 0);
  EXPECT_EQ(settled.jobs_failed, 0u);
  EXPECT_EQ(settled.aggregates[1].runs, 3);
}

TEST(FaultCampaign, IsolateWithoutExecPathIsSpecError) {
  const std::vector<campaign::GridPoint> points = two_points();
  campaign::CampaignOptions options;
  options.fault.isolate = true;
  campaign::CampaignResult result;
  std::string error;
  EXPECT_FALSE(
      campaign::run_points_campaign(points, {1}, options, &result, &error));
  EXPECT_NE(error.find("executable"), std::string::npos);
  EXPECT_EQ(result.error_kind, campaign::CampaignErrorKind::kSpec);
}

TEST(FaultCampaign, FaultModeRejectsCustomRunFunctions) {
  const std::vector<campaign::GridPoint> points = two_points();
  campaign::CampaignOptions options;
  options.fault.job_timeout_s = 5.0;
  options.runner.run_fn = [](const ScenarioConfig&) { return ExperimentResult{}; };
  campaign::CampaignResult result;
  std::string error;
  EXPECT_FALSE(
      campaign::run_points_campaign(points, {1}, options, &result, &error));
  EXPECT_NE(error.find("custom run function"), std::string::npos);
}

// -------------------------------------------------------------- watchdog --

TEST(FaultWatchdog, LivelockDetectorTripsOnZeroDelaySpin) {
  Simulator sim(1);
  Watchdog watchdog;
  watchdog.livelock_events = 1000;
  sim.arm_watchdog(watchdog);
  // A zero-delay self-rescheduling event never advances virtual time.
  std::function<void()> spin = [&] { sim.after(0, [&] { spin(); }); };
  sim.after(0, [&] { spin(); });
  sim.run_until(1000000);
  EXPECT_TRUE(sim.watchdog_tripped());
  EXPECT_NE(sim.watchdog_reason().find("livelock"), std::string::npos);
  // Once tripped, further run calls are inert.
  const std::uint64_t processed = sim.events_processed();
  sim.run_until(2000000);
  EXPECT_EQ(sim.events_processed(), processed);
}

TEST(FaultWatchdog, HealthyRunIsUntouchedByAGenerousWatchdog) {
  Simulator sim(1);
  Watchdog watchdog;
  watchdog.max_wall_s = 3600.0;
  watchdog.livelock_events = 10'000'000;
  sim.arm_watchdog(watchdog);
  int fired = 0;
  for (int i = 1; i <= 100; ++i) sim.after(i, [&fired] { ++fired; });
  sim.run_until(1000);
  EXPECT_FALSE(sim.watchdog_tripped());
  EXPECT_EQ(fired, 100);
}

ScenarioConfig guard_config() {
  ScenarioConfig c;
  c.dodag_count = 1;
  c.nodes_per_dodag = 4;
  c.warmup = 30_s;
  c.measure = 30_s;
  return c;
}

TEST(FaultWatchdog, GuardedRunMatchesUnguardedBitForBit) {
  const ScenarioConfig config = guard_config();
  const ExperimentResult plain = run_scenario(config);
  RunGuard guard;
  guard.max_wall_s = 3600.0;
  ExperimentResult guarded;
  std::string error;
  ASSERT_TRUE(run_scenario_guarded(config, guard, &guarded, &error)) << error;
  EXPECT_EQ(campaign::render_journal_line([&] {
              JournalRecord r;
              r.result = plain;
              return r;
            }()),
            campaign::render_journal_line([&] {
              JournalRecord r;
              r.result = guarded;
              return r;
            }()));
}

TEST(FaultWatchdog, GuardedRunTripsOnTinyWallBudget) {
  RunGuard guard;
  guard.max_wall_s = 1e-9;  // trips at the first wall-clock check
  ExperimentResult out;
  std::string error;
  EXPECT_FALSE(run_scenario_guarded(guard_config(), guard, &out, &error));
  EXPECT_NE(error.find("watchdog"), std::string::npos);
}

// -------------------------------------------------------------- envelope --

TEST(FaultEnvelope, RoundTripsEveryConfigFieldExactly) {
  campaign::JobEnvelope envelope;
  envelope.point_index = 7;
  envelope.seed_index = 3;
  envelope.label = "traffic_ppm=30 scheduler=\"quoted\"";
  ScenarioConfig& c = envelope.config;
  c.scheduler = "orchestra";
  c.topology = TopologyKind::kRandomDisk;
  c.dodag_count = 3;
  c.nodes_per_dodag = 9;
  c.hop_distance = 100.0 / 3.0;
  c.topology_nodes = 77;
  c.disk_radius = 123.456789012345678;
  c.topology_seed = 0xdeadbeefcafef00dull;
  c.radio_range = 41.999999999999993;
  c.interference_factor = 1.7;
  c.link_prr = 0.90000000000000002;
  c.traffic_ppm = 165.0;
  c.gt_slotframe_length = 64;
  c.orchestra_unicast_length = 16;
  c.orchestra_channel_hash = true;
  c.alice_unicast_length = 32;
  c.emsf_slotframe_length = 48;
  c.queue_capacity = 24;
  c.alpha = 4.0 / 3.0;
  c.beta = 0.1;
  c.gamma = 2.5;
  c.enforce_tx_margin = false;
  c.enforce_interleave = false;
  c.warmup = 123456789;
  c.measure = 987654321;
  c.drain = 11111111;
  c.trace_kind = TraceKind::kCrashloop;
  c.trace_seed = 42;
  c.trace_movers = 5;
  c.trace_fail_count = 2;
  c.trace_speed_mps = 1.5;
  c.trace_interval_s = 2.0 / 3.0;
  c.trace_fail_at_s = 250.5;
  c.trace_down_s = 30.25;
  c.trace_cycle_s = 120.75;
  c.trace = "examples/walk \"and\" fail.trace";
  c.seed = 0x123456789abcdef0ull;

  const std::string line = campaign::render_job_envelope(envelope);
  campaign::JobEnvelope parsed;
  std::string error;
  ASSERT_TRUE(campaign::parse_job_envelope(line, &parsed, &error)) << error;
  EXPECT_EQ(parsed.point_index, 7u);
  EXPECT_EQ(parsed.seed_index, 3u);
  EXPECT_EQ(parsed.label, envelope.label);
  // Exact field equality via the renderer itself: a field the parser
  // dropped or perturbed would change the re-rendered line.
  EXPECT_EQ(campaign::render_job_envelope(parsed), line);
  EXPECT_EQ(parsed.config.scheduler, "orchestra");
  EXPECT_EQ(parsed.config.topology, TopologyKind::kRandomDisk);
  EXPECT_EQ(parsed.config.disk_radius, c.disk_radius);
  EXPECT_EQ(parsed.config.link_prr, c.link_prr);
  EXPECT_EQ(parsed.config.warmup, c.warmup);
  EXPECT_EQ(parsed.config.drain, c.drain);
  EXPECT_EQ(parsed.config.trace_kind, TraceKind::kCrashloop);
  EXPECT_EQ(parsed.config.queue_capacity, 24u);
  EXPECT_EQ(parsed.config.seed, c.seed);
  EXPECT_FALSE(parsed.config.enforce_tx_margin);
}

TEST(FaultEnvelope, RejectsMalformedInput) {
  campaign::JobEnvelope parsed;
  std::string error;
  EXPECT_FALSE(campaign::parse_job_envelope("", &parsed, &error));
  EXPECT_FALSE(campaign::parse_job_envelope("{\"point\": 0", &parsed, &error));
  EXPECT_FALSE(campaign::parse_job_envelope("not json at all", &parsed, &error));
}

// -------------------------------------------------------------- protocol --

#if !defined(_WIN32)
// The child half of --isolate, exercised in-process via memory streams:
// its output record must be bit-identical to a direct run_scenario.
TEST(FaultProtocol, RunJobProtocolMatchesInProcessBitForBit) {
  campaign::JobEnvelope envelope;
  envelope.point_index = 0;
  envelope.seed_index = 2;
  envelope.label = "tiny";
  envelope.config = guard_config();
  envelope.config.seed = 1034;

  std::string in_line = campaign::render_job_envelope(envelope);
  in_line += '\n';
  std::FILE* in = fmemopen(in_line.data(), in_line.size(), "r");
  ASSERT_NE(in, nullptr);
  char* out_buf = nullptr;
  std::size_t out_len = 0;
  std::FILE* out = open_memstream(&out_buf, &out_len);
  ASSERT_NE(out, nullptr);

  EXPECT_EQ(campaign::run_job_protocol(in, out), 0);
  std::fclose(in);
  std::fclose(out);
  std::string out_line(out_buf, out_len);
  free(out_buf);
  while (!out_line.empty() && out_line.back() == '\n') out_line.pop_back();

  JournalRecord record;
  std::string error;
  ASSERT_TRUE(campaign::parse_journal_line(out_line, &record, &error)) << error;
  EXPECT_EQ(record.status, JobStatus::kOk);
  EXPECT_EQ(record.point_index, 0u);
  EXPECT_EQ(record.seed_index, 2u);

  const ExperimentResult direct = run_scenario(envelope.config);
  JournalRecord expected = record;
  expected.result = direct;
  EXPECT_EQ(campaign::render_journal_line(record),
            campaign::render_journal_line(expected));
}

TEST(FaultProtocol, RunJobProtocolRejectsGarbageEnvelope) {
  std::string in_line = "this is not an envelope\n";
  std::FILE* in = fmemopen(in_line.data(), in_line.size(), "r");
  ASSERT_NE(in, nullptr);
  char* out_buf = nullptr;
  std::size_t out_len = 0;
  std::FILE* out = open_memstream(&out_buf, &out_len);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(campaign::run_job_protocol(in, out), 2);
  std::fclose(in);
  std::fclose(out);
  free(out_buf);
}
#endif  // !_WIN32

}  // namespace
}  // namespace gttsch
