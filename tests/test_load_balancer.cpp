// Load-balancer tests (Section VI, Eq 1): l^g estimation, l^tx-min, ADD
// count via the game solution, DELETE hysteresis.
#include <gtest/gtest.h>

#include "core/load_balancer.hpp"

namespace gttsch {
namespace {

using namespace literals;
using Action = LoadBalancer::Decision::Action;

LoadBalancer::Inputs base_inputs() {
  LoadBalancer::Inputs in;
  in.generated_since_last_tick = 1;
  in.tick_period = 480_ms;  // slotframe 32 x 15ms
  in.slotframe_duration = 480_ms;
  in.children_demand = 0;
  in.allocated_tx = 0;
  in.l_rx_parent = 10;
  in.queue_length = 0;
  in.rank = 512;
  in.rank_min = 256;
  in.min_step_of_rank = 256;
  in.etx = 1.0;
  in.queue_max = 16;
  return in;
}

LoadBalancerConfig config() {
  LoadBalancerConfig c;
  c.weights = game::Weights{4, 1, 1};
  return c;
}

TEST(LoadBalancer, GenRateToSlots) {
  LoadBalancer lb(config());
  auto in = base_inputs();
  in.generated_since_last_tick = 2;  // 2 packets / 0.48s ≈ 4.17 pps
  lb.tick(in);
  // l^g = ceil(4.17 * 0.48) = 2.
  EXPECT_EQ(lb.l_g(), 2);
}

TEST(LoadBalancer, Eq1LtxMin) {
  LoadBalancer lb(config());
  auto in = base_inputs();
  in.generated_since_last_tick = 1;
  in.children_demand = 3;
  in.allocated_tx = 2;
  lb.tick(in);
  // l^g = 1, demand = 1 + 3 = 4, allocated 2 -> l^tx-min = 2.
  EXPECT_EQ(lb.l_g(), 1);
  EXPECT_EQ(lb.l_tx_min(), 2);
}

TEST(LoadBalancer, AddsWhenShort) {
  LoadBalancer lb(config());
  auto in = base_inputs();
  in.children_demand = 4;
  const auto d = lb.tick(in);
  EXPECT_EQ(d.action, Action::kAdd);
  EXPECT_GE(d.count, lb.l_tx_min());
  EXPECT_LE(d.count, in.l_rx_parent);
}

TEST(LoadBalancer, NoAddWhenParentHasNothing) {
  LoadBalancer lb(config());
  auto in = base_inputs();
  in.children_demand = 4;
  in.l_rx_parent = 0;
  const auto d = lb.tick(in);
  EXPECT_EQ(d.action, Action::kNone);
  EXPECT_GT(lb.l_tx_min(), 0);  // need is still recorded
}

TEST(LoadBalancer, GameBoundsRespectedWhenParentConstrains) {
  LoadBalancer lb(config());
  auto in = base_inputs();
  in.children_demand = 8;
  in.l_rx_parent = 3;  // less than l^tx-min -> request exactly 3 (paper rule)
  const auto d = lb.tick(in);
  EXPECT_EQ(d.action, Action::kAdd);
  EXPECT_EQ(d.count, 3);
}

TEST(LoadBalancer, OpportunisticHeadroomUnderGoodConditions) {
  // Perfect link + sizeable queue backlog: the game optimum exceeds the
  // bare minimum — selfish headroom grabbing (Section VII intro).
  LoadBalancer lb(config());
  auto in = base_inputs();
  in.generated_since_last_tick = 1;
  in.queue_length = 14;  // nearly full queue -> low queue cost
  in.children_demand = 1;
  const auto d = lb.tick(in);
  ASSERT_EQ(d.action, Action::kAdd);
  EXPECT_GT(d.count, lb.l_tx_min());
}

TEST(LoadBalancer, PoorLinkShrinksRequestTowardMinimum) {
  LoadBalancer good(config()), bad(config());
  auto in = base_inputs();
  in.children_demand = 2;
  in.queue_length = 8;
  const auto d_good = good.tick(in);
  in.etx = 4.0;  // lossy link raises the marginal cost
  const auto d_bad = bad.tick(in);
  ASSERT_EQ(d_good.action, Action::kAdd);
  ASSERT_EQ(d_bad.action, Action::kAdd);
  EXPECT_LE(d_bad.count, d_good.count);
}

TEST(LoadBalancer, DeleteNeedsSustainedSurplus) {
  auto cfg = config();
  cfg.surplus_threshold = 2;
  cfg.surplus_ticks = 3;
  LoadBalancer lb(cfg);
  auto in = base_inputs();
  in.generated_since_last_tick = 0;
  in.allocated_tx = 5;  // way more than needed
  // First ticks: establish a zero-rate estimate; no DELETE before streak.
  auto d = lb.tick(in);
  EXPECT_EQ(d.action, Action::kNone);
  d = lb.tick(in);
  EXPECT_EQ(d.action, Action::kNone);
  d = lb.tick(in);
  EXPECT_EQ(d.action, Action::kDelete);
  EXPECT_EQ(d.count, lb.l_tx_min() == 0 ? 4 : -lb.l_tx_min() - 1);
}

TEST(LoadBalancer, SurplusStreakResetsOnDemand) {
  auto cfg = config();
  cfg.surplus_threshold = 2;
  cfg.surplus_ticks = 2;
  LoadBalancer lb(cfg);
  auto in = base_inputs();
  in.generated_since_last_tick = 0;
  in.allocated_tx = 5;
  EXPECT_EQ(lb.tick(in).action, Action::kNone);
  // Burst of demand interrupts the streak.
  in.generated_since_last_tick = 4;
  (void)lb.tick(in);
  in.generated_since_last_tick = 0;
  EXPECT_EQ(lb.tick(in).action, Action::kNone);  // streak restarted
}

TEST(LoadBalancer, QueueMetricFollowsEwma) {
  LoadBalancer lb(config());
  auto in = base_inputs();
  in.queue_length = 8;
  lb.tick(in);
  EXPECT_DOUBLE_EQ(lb.queue_metric(), 8.0);
  in.queue_length = 0;
  lb.tick(in);
  EXPECT_NEAR(lb.queue_metric(), 0.7 * 8.0, 1e-9);
}

TEST(LoadBalancer, RateEstimateSmoothed) {
  LoadBalancer lb(config());
  auto in = base_inputs();
  in.generated_since_last_tick = 4;
  lb.tick(in);
  const double first = lb.gen_rate_pps();
  in.generated_since_last_tick = 0;
  lb.tick(in);
  EXPECT_LT(lb.gen_rate_pps(), first);
  EXPECT_GT(lb.gen_rate_pps(), 0.0);
}

TEST(LoadBalancer, ChildrenDemandDrivesUpwardCascade) {
  // A pure forwarder (no local traffic) still requests cells when its
  // children register demand — the mechanism behind Eq 1's l^tx_cs term.
  LoadBalancer lb(config());
  auto in = base_inputs();
  in.generated_since_last_tick = 0;
  in.children_demand = 6;
  in.allocated_tx = 1;
  const auto d = lb.tick(in);
  EXPECT_EQ(d.action, Action::kAdd);
  EXPECT_GE(d.count, 5);  // at least the missing cells
}

}  // namespace
}  // namespace gttsch
