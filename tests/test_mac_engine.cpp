// TSCH MAC slot-engine tests: association by EB scan, unicast with ACK and
// retransmission, duplicate suppression, shared-cell contention/backoff,
// EB emission and duty accounting.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mac/tsch_mac.hpp"
#include "phy/medium.hpp"
#include "sim/simulator.hpp"

namespace gttsch {
namespace {

using namespace literals;

struct Upcalls final : MacUpcalls {
  std::vector<Frame> received;
  std::vector<std::pair<bool, int>> tx_results;  // (acked, attempts)
  int associated_count = 0;
  Asn associated_asn = 0;

  void mac_associated(Asn asn, const Frame&) override {
    ++associated_count;
    associated_asn = asn;
  }
  void mac_frame_received(const Frame& frame) override { received.push_back(frame); }
  void mac_tx_result(const Frame&, bool acked, int attempts) override {
    tx_results.emplace_back(acked, attempts);
  }
};

Cell make_cell(std::uint16_t slot, ChannelOffset ch, std::uint8_t options,
               NodeId neighbor) {
  Cell c;
  c.slot_offset = slot;
  c.channel_offset = ch;
  c.options = options;
  c.neighbor = neighbor;
  return c;
}

class MacEngineTest : public ::testing::Test {
 protected:
  static constexpr NodeId kRoot = 1;
  static constexpr NodeId kChild = 2;
  static constexpr NodeId kChild2 = 3;

  MacEngineTest()
      : sim_(21),
        model_(new MatrixLinkModel),
        medium_(sim_, std::unique_ptr<LinkModel>(model_), Rng(21)) {
    model_->set(kRoot, kChild, 1.0);
    model_->set(kRoot, kChild2, 1.0);
    model_->set(kChild, kChild2, 1.0);
  }

  std::unique_ptr<TschMac> make_mac(NodeId id, Upcalls& up, MacConfig cfg = {}) {
    radios_.push_back(std::make_unique<Radio>(sim_, medium_, id, Position{}));
    auto mac = std::make_unique<TschMac>(sim_, medium_, *radios_.back(), cfg,
                                         Rng(100 + id));
    mac->set_upcalls(&up);
    return mac;
  }

  /// Minimal always-on broadcast cell so EBs flow (slotframe length 8).
  static void install_broadcast(TschMac& mac) {
    auto& sf = mac.schedule().add_slotframe(0, 8);
    sf.add(make_cell(0, 0, kCellTx | kCellRx | kCellShared, kBroadcastId));
  }

  Simulator sim_;
  MatrixLinkModel* model_;  // owned by medium_
  Medium medium_;
  std::vector<std::unique_ptr<Radio>> radios_;
};

TEST_F(MacEngineTest, RootStartsAssociatedAtAsnZero) {
  Upcalls up;
  auto root = make_mac(kRoot, up);
  root->start_as_root();
  EXPECT_TRUE(root->associated());
  EXPECT_EQ(up.associated_count, 1);
  EXPECT_EQ(up.associated_asn, 0u);
}

TEST_F(MacEngineTest, ScannerAssociatesFromEb) {
  Upcalls up_root, up_child;
  auto root = make_mac(kRoot, up_root);
  auto child = make_mac(kChild, up_child);
  root->set_eb_provider([] { return EbPayload{}; });
  root->start_as_root();
  install_broadcast(*root);
  child->start_scanning();
  sim_.run_until(60_s);
  EXPECT_TRUE(child->associated());
  EXPECT_EQ(up_child.associated_count, 1);
  EXPECT_EQ(child->time_source(), kRoot);
}

TEST_F(MacEngineTest, AssociatedNodesShareAsnTimeline) {
  Upcalls up_root, up_child;
  auto root = make_mac(kRoot, up_root);
  auto child = make_mac(kChild, up_child);
  root->set_eb_provider([] { return EbPayload{}; });
  root->start_as_root();
  install_broadcast(*root);
  child->start_scanning();
  sim_.run_until(60_s);
  ASSERT_TRUE(child->associated());
  install_broadcast(*child);
  sim_.run_until(sim_.now() + 10_s);
  EXPECT_NEAR(static_cast<double>(root->asn()), static_cast<double>(child->asn()), 1.0);
}

TEST_F(MacEngineTest, UnicastDeliveredAndAcked) {
  Upcalls up_root, up_child;
  auto root = make_mac(kRoot, up_root);
  auto child = make_mac(kChild, up_child);
  root->start_as_root();
  install_broadcast(*root);
  // Dedicated link: child Tx at slot 3 offset 2, root Rx mirror.
  root->schedule().get(0)->add(make_cell(3, 2, kCellRx, kChild));
  child->start_scanning();
  root->set_eb_provider([] { return EbPayload{}; });
  sim_.run_until(60_s);
  ASSERT_TRUE(child->associated());
  auto& sf = child->schedule().add_slotframe(0, 8);
  sf.add(make_cell(3, 2, kCellTx, kRoot));

  EXPECT_TRUE(child->enqueue(make_data_frame(kChild, kRoot, DataPayload{kChild, 1, 0, 0})));
  sim_.run_until(sim_.now() + 20_s);
  ASSERT_EQ(up_child.tx_results.size(), 1u);
  EXPECT_TRUE(up_child.tx_results[0].first);
  EXPECT_EQ(up_child.tx_results[0].second, 1);
  ASSERT_GE(up_root.received.size(), 1u);
  bool got_data = false;
  for (const auto& f : up_root.received)
    if (f.type == FrameType::kData) got_data = true;
  EXPECT_TRUE(got_data);
  EXPECT_EQ(child->data_queue_length(), 0u);
}

TEST_F(MacEngineTest, RetransmitsUntilBudgetThenDrops) {
  // Break the link child->root so ACKs never arrive.
  Upcalls up_root, up_child;
  auto root = make_mac(kRoot, up_root);
  auto child = make_mac(kChild, up_child);
  root->start_as_root();
  install_broadcast(*root);
  root->set_eb_provider([] { return EbPayload{}; });
  child->start_scanning();
  sim_.run_until(60_s);
  ASSERT_TRUE(child->associated());
  model_->set(kChild, kRoot, 0.0, /*symmetric=*/false);  // uplink dead
  auto& sf = child->schedule().add_slotframe(0, 8);
  sf.add(make_cell(3, 2, kCellTx, kRoot));

  EXPECT_TRUE(child->enqueue(make_data_frame(kChild, kRoot, DataPayload{kChild, 1, 0, 0})));
  sim_.run_until(sim_.now() + 30_s);
  ASSERT_EQ(up_child.tx_results.size(), 1u);
  EXPECT_FALSE(up_child.tx_results[0].first);
  EXPECT_EQ(up_child.tx_results[0].second, 5);  // 1 initial + 4 retries
  EXPECT_EQ(child->counters().unicast_drops, 1u);
  EXPECT_EQ(child->data_queue_length(), 0u);
}

TEST_F(MacEngineTest, DuplicateSuppressedButAcked) {
  // Lossy reverse path: drop the first ACK by disabling root->child
  // temporarily; the retransmission is then a duplicate at the root.
  Upcalls up_root, up_child;
  auto root = make_mac(kRoot, up_root);
  auto child = make_mac(kChild, up_child);
  root->start_as_root();
  install_broadcast(*root);
  root->set_eb_provider([] { return EbPayload{}; });
  root->schedule().get(0)->add(make_cell(3, 2, kCellRx, kChild));
  child->start_scanning();
  sim_.run_until(60_s);
  ASSERT_TRUE(child->associated());
  auto& sf = child->schedule().add_slotframe(0, 8);
  sf.add(make_cell(3, 2, kCellTx, kRoot));

  model_->set(kRoot, kChild, 0.0, /*symmetric=*/false);  // ACK path dead
  EXPECT_TRUE(child->enqueue(make_data_frame(kChild, kRoot, DataPayload{kChild, 7, 0, 0})));
  sim_.run_until(sim_.now() + 300_ms);  // first attempt happens, ACK lost
  model_->set(kRoot, kChild, 1.0, /*symmetric=*/false);  // heal
  sim_.run_until(sim_.now() + 30_s);

  int data_frames = 0;
  for (const auto& f : up_root.received)
    if (f.type == FrameType::kData) ++data_frames;
  EXPECT_EQ(data_frames, 1);  // duplicate filtered
  EXPECT_GE(root->counters().rx_duplicates, 1u);
  ASSERT_EQ(up_child.tx_results.size(), 1u);
  EXPECT_TRUE(up_child.tx_results[0].first);  // eventually acked
}

TEST_F(MacEngineTest, SharedCellContentionResolvedByBackoff) {
  // Two children transmit to the root in the same shared cell; backoff
  // eventually separates them and both packets arrive.
  Upcalls up_root, up_c1, up_c2;
  auto root = make_mac(kRoot, up_root);
  auto c1 = make_mac(kChild, up_c1);
  auto c2 = make_mac(kChild2, up_c2);
  root->start_as_root();
  install_broadcast(*root);
  root->set_eb_provider([] { return EbPayload{}; });
  // Shared family cell at slot 5.
  root->schedule().get(0)->add(
      make_cell(5, 3, kCellRx | kCellShared, kBroadcastId));
  c1->start_scanning();
  c2->start_scanning();
  sim_.run_until(80_s);
  ASSERT_TRUE(c1->associated());
  ASSERT_TRUE(c2->associated());
  for (auto* mac : {c1.get(), c2.get()}) {
    auto& sf = mac->schedule().add_slotframe(0, 8);
    sf.add(make_cell(5, 3, kCellTx | kCellShared, kRoot));
  }
  EXPECT_TRUE(c1->enqueue(make_data_frame(kChild, kRoot, DataPayload{kChild, 1, 0, 0})));
  EXPECT_TRUE(c2->enqueue(make_data_frame(kChild2, kRoot, DataPayload{kChild2, 1, 0, 0})));
  sim_.run_until(120_s);

  int data_frames = 0;
  for (const auto& f : up_root.received)
    if (f.type == FrameType::kData) ++data_frames;
  EXPECT_EQ(data_frames, 2);
}

TEST_F(MacEngineTest, EbSentPeriodically) {
  Upcalls up;
  auto root = make_mac(kRoot, up);
  root->set_eb_provider([] { return EbPayload{}; });
  root->start_as_root();
  install_broadcast(*root);
  sim_.run_until(60_s);
  // EB period 2s (+jitter up to 0.5s) -> roughly 24-30 EBs in 60s.
  EXPECT_GE(root->counters().eb_sent, 20u);
  EXPECT_LE(root->counters().eb_sent, 32u);
}

TEST_F(MacEngineTest, NoEbWithoutProvider) {
  Upcalls up;
  auto root = make_mac(kRoot, up);
  root->start_as_root();
  install_broadcast(*root);
  sim_.run_until(10_s);
  EXPECT_EQ(root->counters().eb_sent, 0u);
}

TEST_F(MacEngineTest, EbProviderCanSuppress) {
  Upcalls up;
  auto root = make_mac(kRoot, up);
  bool ready = false;
  root->set_eb_provider([&]() -> std::optional<EbPayload> {
    if (!ready) return std::nullopt;
    return EbPayload{};
  });
  root->start_as_root();
  install_broadcast(*root);
  sim_.run_until(10_s);
  EXPECT_EQ(root->counters().eb_sent, 0u);
  ready = true;
  sim_.run_until(20_s);
  EXPECT_GE(root->counters().eb_sent, 2u);
}

TEST_F(MacEngineTest, BroadcastFrameReachesAllListeners) {
  Upcalls up_root, up_c1, up_c2;
  auto root = make_mac(kRoot, up_root);
  auto c1 = make_mac(kChild, up_c1);
  auto c2 = make_mac(kChild2, up_c2);
  root->set_eb_provider([] { return EbPayload{}; });
  root->start_as_root();
  install_broadcast(*root);
  c1->start_scanning();
  c2->start_scanning();
  sim_.run_until(80_s);
  ASSERT_TRUE(c1->associated() && c2->associated());
  install_broadcast(*c1);
  install_broadcast(*c2);

  DioPayload dio;
  dio.rank = 256;
  EXPECT_TRUE(root->enqueue(make_dio_frame(kRoot, dio)));
  sim_.run_until(sim_.now() + 30_s);
  auto got_dio = [](const std::vector<Frame>& v) {
    for (const auto& f : v)
      if (f.type == FrameType::kDio) return true;
    return false;
  };
  EXPECT_TRUE(got_dio(up_c1.received));
  EXPECT_TRUE(got_dio(up_c2.received));
}

TEST_F(MacEngineTest, IdleNodeHasLowDutyCycle) {
  Upcalls up;
  auto root = make_mac(kRoot, up);
  root->start_as_root();
  install_broadcast(*root);  // 1 rx-capable slot in 8
  const TimeUs t0 = radios_[0]->on_time();
  sim_.run_until(60_s);
  const double duty =
      static_cast<double>(radios_[0]->on_time() - t0) / static_cast<double>(60_s);
  // One guard-time listen per 8 slots ~ 2.2ms/120ms ~ 1.8%; EBs add a bit.
  EXPECT_LT(duty, 0.08);
  EXPECT_GT(duty, 0.005);
}

}  // namespace
}  // namespace gttsch
