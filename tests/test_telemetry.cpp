// Telemetry determinism contract (stats/telemetry.hpp): attaching the
// recorder — gauge sampling, per-node detail, and the structured event
// trace, probes OFF — must leave every simulation-visible quantity
// bit-identical to a bare run: per-node MAC counters, radio times, final
// ASN, Medium stats and RunMetrics, in both stepping modes, for both
// schedulers. Probe frames are the one deliberate exception (real
// traffic); they are excluded from the panel metrics unless
// TelemetryConfig::probes_in_panels opts them in.
//
// Also covers the JSONL stream invariants (monotone t_s, bounded event
// trace, trailing summary) and the Log redesign (per-component level
// grammar, JSON sink).
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "mac/tsch_mac.hpp"
#include "phy/dynamic_link.hpp"
#include "scenario/experiment.hpp"
#include "scenario/network.hpp"
#include "scenario/trace.hpp"
#include "sim/log.hpp"
#include "sim/simulator.hpp"
#include "stats/telemetry.hpp"

namespace gttsch {
namespace {

using namespace literals;

struct NodeSnapshot {
  MacCounters mac;
  TimeUs radio_on = 0;
  TimeUs radio_tx = 0;
  TimeUs radio_rx = 0;
  Asn asn = 0;
  std::uint64_t app_generated = 0;
  bool joined = false;
};

struct ModeResult {
  RunMetrics metrics;
  MediumStats medium;
  std::map<NodeId, NodeSnapshot> nodes;
  bool fully_formed = false;
};

/// Mirrors run_scenario(config, telemetry) — same construction and attach
/// order — but keeps the network alive long enough to snapshot per-node
/// MAC counters, radio times and the final ASN.
ModeResult run_mode(const ScenarioConfig& sc, std::uint64_t seed, bool per_slot,
                    Telemetry* telemetry) {
  const TimeUs measure_end = sc.warmup + sc.measure;
  RunStats stats(sc.warmup, measure_end);
  auto nc = sc.make_node_config();
  nc.mac.per_slot_stepping = per_slot;
  const TopologySpec topology = sc.make_topology();
  Trace trace;
  std::string trace_error;
  if (!sc.make_trace(topology, &trace, &trace_error)) {
    ADD_FAILURE() << "trace: " << trace_error;
    return {};
  }
  DynamicLinkModel* failures = nullptr;
  Network net(seed, scenario_link_model_factory(sc, trace, &failures), topology, nc,
              &stats);
  TracePlayer player(net, std::move(trace), failures);
  net.sim().at(sc.warmup, [&stats] { stats.begin_measurement(); });
  net.sim().at(measure_end, [&stats] { stats.end_measurement(); });
  if (telemetry != nullptr) {
    telemetry->default_probe_window(sc.warmup, measure_end);
    telemetry->attach(net, &stats);
  }
  net.start();
  player.start();
  net.medium().reset_stats();
  net.sim().run_until(measure_end + sc.drain);

  ModeResult out;
  for (const auto& [id, node] : net.nodes()) {
    stats.set_joined(id, node->is_root() || node->rpl().joined());
    NodeSnapshot snap;
    snap.mac = node->mac().counters();
    snap.radio_on = node->radio().on_time();
    snap.radio_tx = node->radio().tx_time();
    snap.radio_rx = node->radio().rx_time();
    snap.asn = node->mac().asn();
    snap.app_generated = node->app_generated();
    snap.joined = node->is_root() || node->rpl().joined();
    out.nodes.emplace(id, snap);
  }
  out.metrics = stats.finalize();
  if (telemetry != nullptr) telemetry->fill_probe_metrics(&out.metrics);
  out.medium = net.medium().stats();
  out.fully_formed = net.fully_formed();
  return out;
}

void expect_identical(const ModeResult& with, const ModeResult& without) {
  ASSERT_EQ(with.nodes.size(), without.nodes.size());
  for (const auto& [id, w] : with.nodes) {
    SCOPED_TRACE(::testing::Message() << "node " << id);
    const NodeSnapshot& b = without.nodes.at(id);
    EXPECT_EQ(w.mac.unicast_tx_attempts, b.mac.unicast_tx_attempts);
    EXPECT_EQ(w.mac.unicast_success, b.mac.unicast_success);
    EXPECT_EQ(w.mac.unicast_drops, b.mac.unicast_drops);
    EXPECT_EQ(w.mac.retransmissions, b.mac.retransmissions);
    EXPECT_EQ(w.mac.broadcast_sent, b.mac.broadcast_sent);
    EXPECT_EQ(w.mac.eb_sent, b.mac.eb_sent);
    EXPECT_EQ(w.mac.rx_frames, b.mac.rx_frames);
    EXPECT_EQ(w.mac.acks_sent, b.mac.acks_sent);
    EXPECT_EQ(w.radio_on, b.radio_on);
    EXPECT_EQ(w.radio_tx, b.radio_tx);
    EXPECT_EQ(w.radio_rx, b.radio_rx);
    EXPECT_EQ(w.asn, b.asn);
    EXPECT_EQ(w.app_generated, b.app_generated);
    EXPECT_EQ(w.joined, b.joined);
  }
  EXPECT_EQ(with.medium.transmissions, without.medium.transmissions);
  EXPECT_EQ(with.medium.deliveries, without.medium.deliveries);
  EXPECT_EQ(with.medium.collision_losses, without.medium.collision_losses);
  EXPECT_EQ(with.medium.prr_losses, without.medium.prr_losses);
  EXPECT_EQ(with.metrics.pdr_percent, without.metrics.pdr_percent);
  EXPECT_EQ(with.metrics.avg_delay_ms, without.metrics.avg_delay_ms);
  EXPECT_EQ(with.metrics.p95_delay_ms, without.metrics.p95_delay_ms);
  EXPECT_EQ(with.metrics.duty_cycle_percent, without.metrics.duty_cycle_percent);
  EXPECT_EQ(with.metrics.generated, without.metrics.generated);
  EXPECT_EQ(with.metrics.delivered, without.metrics.delivered);
  EXPECT_EQ(with.metrics.queue_drops, without.metrics.queue_drops);
  EXPECT_EQ(with.metrics.mac_drops, without.metrics.mac_drops);
  EXPECT_EQ(with.metrics.no_route_drops, without.metrics.no_route_drops);
  EXPECT_EQ(with.metrics.mean_hops, without.metrics.mean_hops);
  EXPECT_EQ(with.metrics.nodes_joined, without.metrics.nodes_joined);
  EXPECT_EQ(with.fully_formed, without.fully_formed);
}

/// 7-node single-DODAG scenario with movers and one mid-run failure, so
/// the event trace sees joins, parent switches, trace moves and a death.
ScenarioConfig churny_config(const std::string& kind) {
  ScenarioConfig sc;
  sc.scheduler = kind;
  sc.dodag_count = 1;
  sc.nodes_per_dodag = 7;
  sc.traffic_ppm = 120.0;
  sc.gt_slotframe_length = 32;
  sc.orchestra_unicast_length = 8;
  sc.warmup = 120_s;
  sc.measure = 120_s;
  sc.drain = 10_s;
  sc.trace_kind = TraceKind::kRandomWalk;
  sc.trace_seed = 42;
  sc.trace_movers = 3;
  sc.trace_speed_mps = 3.0;
  sc.trace_interval_s = 5.0;
  sc.trace_fail_count = 1;
  sc.trace_fail_at_s = 180.0;
  return sc;
}

/// Full recorder minus probes: gauges at 1 Hz with per-node detail, plus
/// the structured event trace — everything that must be invisible.
TelemetryConfig passive_config() {
  TelemetryConfig tc;
  tc.sample_period = 1_s;
  tc.per_node = true;
  tc.probe_count = 0;
  return tc;
}

TEST(TelemetryBitIdentity, GtTschBothSteppingModesTwoSeeds) {
  const ScenarioConfig sc = churny_config("gt-tsch");
  for (const std::uint64_t seed : {4000ull, 4017ull}) {
    for (const bool per_slot : {false, true}) {
      SCOPED_TRACE(::testing::Message() << "seed " << seed << " per_slot " << per_slot);
      Telemetry telemetry(passive_config());
      const ModeResult with = run_mode(sc, seed, per_slot, &telemetry);
      const ModeResult without = run_mode(sc, seed, per_slot, nullptr);
      expect_identical(with, without);
      EXPECT_GT(telemetry.records().size(), 0u);
      EXPECT_GT(telemetry.events_recorded(), 0u);
    }
  }
}

TEST(TelemetryBitIdentity, OrchestraBothSteppingModesTwoSeeds) {
  const ScenarioConfig sc = churny_config("orchestra");
  for (const std::uint64_t seed : {4000ull, 4017ull}) {
    for (const bool per_slot : {false, true}) {
      SCOPED_TRACE(::testing::Message() << "seed " << seed << " per_slot " << per_slot);
      Telemetry telemetry(passive_config());
      const ModeResult with = run_mode(sc, seed, per_slot, &telemetry);
      const ModeResult without = run_mode(sc, seed, per_slot, nullptr);
      expect_identical(with, without);
    }
  }
}

TEST(TelemetryProbes, ExcludedFromPanelsByDefault) {
  // Probes are real frames: they load the medium and may shift deliveries.
  // But the *generated* panel counter is pure application traffic, whose
  // generation schedule no probe can perturb — so it must match a
  // probe-free run exactly, while the probe time series itself flows.
  ScenarioConfig sc = churny_config("gt-tsch");
  sc.trace_fail_count = 0;  // keep every prospective probe sender alive
  const ModeResult base = run_mode(sc, 4000, /*per_slot=*/false, nullptr);

  TelemetryConfig tc = passive_config();
  tc.probe_count = 3;
  tc.probe_period = 5_s;
  Telemetry telemetry(tc);
  const ModeResult probed = run_mode(sc, 4000, /*per_slot=*/false, &telemetry);

  EXPECT_EQ(probed.metrics.generated, base.metrics.generated);
  EXPECT_GT(telemetry.probes_sent(), 0u);
  EXPECT_GT(telemetry.probes_delivered(), 0u);
  EXPECT_LE(telemetry.probes_delivered(), telemetry.probes_sent());
  EXPECT_EQ(probed.metrics.probes_sent, telemetry.probes_sent());
  EXPECT_EQ(probed.metrics.probes_delivered, telemetry.probes_delivered());
  EXPECT_GT(probed.metrics.probe_pdr_percent, 0.0);
  EXPECT_GT(probed.metrics.probe_avg_latency_ms, 0.0);
  // The base run reports no probe metrics at all.
  EXPECT_EQ(base.metrics.probes_sent, 0u);
  EXPECT_EQ(base.metrics.probe_pdr_percent, 0.0);

  bool saw_probe_record = false;
  for (const Telemetry::Record& r : telemetry.records()) {
    if (r.json.find("\"type\":\"probe\"") != std::string::npos) {
      saw_probe_record = true;
      EXPECT_NE(r.json.find("\"latency_ms\""), std::string::npos);
      EXPECT_NE(r.json.find("\"origin\""), std::string::npos);
      break;
    }
  }
  EXPECT_TRUE(saw_probe_record);
}

TEST(TelemetryProbes, OptInToPanelsCountsThem) {
  ScenarioConfig sc = churny_config("gt-tsch");
  sc.trace_fail_count = 0;
  const ModeResult base = run_mode(sc, 4000, /*per_slot=*/false, nullptr);

  TelemetryConfig tc = passive_config();
  tc.probe_count = 3;
  tc.probe_period = 5_s;
  tc.probes_in_panels = true;
  Telemetry telemetry(tc);
  const ModeResult probed = run_mode(sc, 4000, /*per_slot=*/false, &telemetry);

  // With the opt-in, probe frames land in the generated panel counter too.
  EXPECT_EQ(probed.metrics.generated,
            base.metrics.generated + telemetry.probes_sent());
  EXPECT_GT(telemetry.probes_sent(), 0u);
}

TEST(TelemetryStream, MonotoneTimestampsAndSummary) {
  const ScenarioConfig sc = churny_config("gt-tsch");
  TelemetryConfig tc = passive_config();
  tc.probe_count = 2;
  Telemetry telemetry(tc);
  run_mode(sc, 4000, /*per_slot=*/false, &telemetry);

  ASSERT_GT(telemetry.records().size(), 10u);
  TimeUs last = 0;
  for (const Telemetry::Record& r : telemetry.records()) {
    EXPECT_GE(r.at, last);
    last = r.at;
    ASSERT_FALSE(r.json.empty());
    EXPECT_EQ(r.json.front(), '{');
    EXPECT_EQ(r.json.back(), '}');
    EXPECT_NE(r.json.find("\"t_s\":"), std::string::npos);
    EXPECT_NE(r.json.find("\"type\":\""), std::string::npos);
  }

  const std::string path = ::testing::TempDir() + "telemetry_stream.jsonl";
  ASSERT_TRUE(telemetry.write_jsonl(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line, last_line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    if (!line.empty()) {
      last_line = line;
      ++lines;
    }
  }
  EXPECT_EQ(lines, telemetry.records().size() + 1);  // + trailing summary
  EXPECT_NE(last_line.find("\"type\":\"summary\""), std::string::npos);
  EXPECT_NE(last_line.find("\"probes_sent\""), std::string::npos);
}

TEST(TelemetryStream, EventTraceIsBounded) {
  const ScenarioConfig sc = churny_config("gt-tsch");
  TelemetryConfig tc = passive_config();
  tc.max_events = 5;
  Telemetry telemetry(tc);
  run_mode(sc, 4000, /*per_slot=*/false, &telemetry);

  EXPECT_EQ(telemetry.events_recorded(), 5u);
  EXPECT_GT(telemetry.events_dropped(), 0u);
  std::size_t event_lines = 0;
  for (const Telemetry::Record& r : telemetry.records()) {
    if (r.json.find("\"type\":\"event\"") != std::string::npos) ++event_lines;
  }
  EXPECT_EQ(event_lines, 5u);
}

TEST(TelemetryStream, SamplesCarryGaugePanel) {
  const ScenarioConfig sc = churny_config("gt-tsch");
  Telemetry telemetry(passive_config());
  run_mode(sc, 4000, /*per_slot=*/false, &telemetry);

  ASSERT_NE(telemetry.timeline(), nullptr);
  EXPECT_GT(telemetry.timeline()->samples().size(), 100u);  // 250 s at 1 Hz
  bool saw_sample = false;
  for (const Telemetry::Record& r : telemetry.records()) {
    if (r.json.find("\"type\":\"sample\"") == std::string::npos) continue;
    saw_sample = true;
    for (const char* key : {"\"joined\"", "\"queue\"", "\"tx_cells\"",
                            "\"mean_etx\"", "\"duty_percent\"", "\"drops\"",
                            "\"nodes\""}) {
      EXPECT_NE(r.json.find(key), std::string::npos) << key << " in " << r.json;
    }
    break;
  }
  EXPECT_TRUE(saw_sample);
}

// ---------------------------------------------------------------- Log ----

/// Restores the global Log state (level, overrides, sink) on scope exit so
/// these tests cannot leak verbosity into each other.
struct LogStateGuard {
  ~LogStateGuard() {
    Log::set_json_sink(nullptr);
    Log::set_component_level("", LogLevel::kNone);
    Log::set_level(LogLevel::kNone);
  }
};

TEST(LogConfigure, GrammarAcceptsLevelsAndOverrides) {
  LogStateGuard guard;
  std::string error;
  ASSERT_TRUE(Log::configure("warn,mac=debug,rpl=info", &error)) << error;
  EXPECT_EQ(Log::level(), LogLevel::kDebug);  // max over base + overrides
  EXPECT_EQ(Log::component_level("mac"), LogLevel::kDebug);
  EXPECT_EQ(Log::component_level("rpl"), LogLevel::kInfo);
  EXPECT_EQ(Log::component_level("medium"), LogLevel::kWarn);  // base

  // Re-configuring replaces the previous override set entirely.
  ASSERT_TRUE(Log::configure("error", &error)) << error;
  EXPECT_EQ(Log::level(), LogLevel::kError);
  EXPECT_EQ(Log::component_level("mac"), LogLevel::kError);

  // Last occurrence of a component wins.
  ASSERT_TRUE(Log::configure("mac=info,mac=none", &error)) << error;
  EXPECT_EQ(Log::component_level("mac"), LogLevel::kNone);
}

TEST(LogConfigure, RejectsMalformedSpecsWithoutApplying) {
  LogStateGuard guard;
  std::string error;
  ASSERT_TRUE(Log::configure("warn,mac=debug", &error)) << error;

  for (const char* bad : {"", "bogus", "mac=", "=debug", "mac=shout",
                          "warn,,mac=debug", "warn,info", "debug,warn"}) {
    SCOPED_TRACE(bad);
    error.clear();
    EXPECT_FALSE(Log::configure(bad, &error));
    EXPECT_FALSE(error.empty());
    // The previous configuration survives a failed parse untouched.
    EXPECT_EQ(Log::component_level("mac"), LogLevel::kDebug);
    EXPECT_EQ(Log::component_level("rpl"), LogLevel::kWarn);
  }
}

TEST(LogConfigure, ComponentOverridesGateEmission) {
  LogStateGuard guard;
  std::string error;
  ASSERT_TRUE(Log::configure("none,mac=info", &error)) << error;

  std::vector<std::string> sunk;
  Log::set_json_sink([&sunk](const std::string& line) { sunk.push_back(line); });
  GTTSCH_LOG_INFO("mac", "cell %d fired", 7);
  GTTSCH_LOG_INFO("rpl", "should be muted");
  ASSERT_EQ(sunk.size(), 1u);
  EXPECT_NE(sunk[0].find("\"level\":\"info\""), std::string::npos);
  EXPECT_NE(sunk[0].find("\"component\":\"mac\""), std::string::npos);
  EXPECT_NE(sunk[0].find("cell 7 fired"), std::string::npos);
}

TEST(LogConfigure, JsonSinkEscapesMessages) {
  LogStateGuard guard;
  Log::set_level(LogLevel::kInfo);
  std::vector<std::string> sunk;
  Log::set_json_sink([&sunk](const std::string& line) { sunk.push_back(line); });
  GTTSCH_LOG_INFO("test", "quote \" backslash \\ tab \t done");
  ASSERT_EQ(sunk.size(), 1u);
  EXPECT_NE(sunk[0].find("quote \\\" backslash \\\\ tab \\u0009 done"),
            std::string::npos);
}

}  // namespace
}  // namespace gttsch
