// Unit tests for the discrete-event kernel: ordering, cancellation, timers,
// trickle behavior.
#include <gtest/gtest.h>

#include <vector>

#include "net/trickle.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace gttsch {
namespace {

using namespace literals;

TEST(EventQueue, FifoAtEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(10, [&] { order.push_back(2); });
  q.schedule(5, [&] { order.push_back(0); });
  TimeUs t = 0;
  while (q.run_next(t)) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.schedule(1, [&] { ran = true; });
  q.cancel(id);
  EXPECT_TRUE(q.empty());
  TimeUs t = 0;
  EXPECT_FALSE(q.run_next(t));
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceIsSafe) {
  EventQueue q;
  const EventId id = q.schedule(1, [] {});
  q.cancel(id);
  q.cancel(id);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.schedule(1, [] {});
  q.schedule(9, [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), 9);
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.schedule(1, [] {});
  q.schedule(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancelAfterFireIsSafe) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.schedule(1, [&] { ++fired; });
  TimeUs t = 0;
  EXPECT_TRUE(q.run_next(t));
  // The slot may already be reused by a new event; cancelling the stale id
  // must neither abort nor kill the unrelated newcomer.
  const EventId newer = q.schedule(2, [&] { ++fired; });
  q.cancel(id);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.run_next(t));
  EXPECT_EQ(fired, 2);
  q.cancel(newer);  // also stale now
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, LowerKeyRunsFirstAtEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(10, [&] { order.push_back(9); });  // default key, inserted first
  q.schedule_keyed(10, 2, [&] { order.push_back(2); });
  q.schedule_keyed(10, 1, [&] { order.push_back(1); });
  TimeUs t = 0;
  while (q.run_next(t)) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 9}));
}

TEST(EventQueue, MemoryBoundedAcross10MEvents) {
  // Regression for the former cancelled_flags_ bitmap, which grew one bit
  // per EventId ever issued: ids are recycled via a slot pool, so memory
  // tracks the peak number of *pending* events, not lifetime throughput.
  EventQueue q;
  constexpr int kPendingTarget = 64;
  std::uint64_t scheduled = 0;
  std::uint64_t fired = 0;
  TimeUs t = 0;
  auto fn = [&fired] { ++fired; };
  for (int i = 0; i < kPendingTarget; ++i) q.schedule(static_cast<TimeUs>(++scheduled), fn);
  while (scheduled < 10'000'000) {
    ASSERT_TRUE(q.run_next(t));
    q.schedule(static_cast<TimeUs>(++scheduled), fn);
    if (scheduled % 5 == 0) {  // exercise cancellation reclamation too
      const EventId id = q.schedule(static_cast<TimeUs>(scheduled + 1), fn);
      q.cancel(id);
    }
  }
  while (q.run_next(t)) {
  }
  EXPECT_EQ(fired, scheduled);  // every non-cancelled event ran
  // Pool growth is bounded by peak concurrency (pending + a cancelled
  // entry awaiting lazy reclamation), nowhere near the 10M ids issued.
  EXPECT_LE(q.slot_pool_size(), 2 * kPendingTarget);
}

TEST(Simulator, ClockAdvancesToEventTimes) {
  Simulator sim(1);
  std::vector<TimeUs> seen;
  sim.at(100, [&] { seen.push_back(sim.now()); });
  sim.at(300, [&] { seen.push_back(sim.now()); });
  sim.run_until(1000);
  EXPECT_EQ(seen, (std::vector<TimeUs>{100, 300}));
  EXPECT_EQ(sim.now(), 1000);
}

TEST(Simulator, RunUntilIncludesBoundary) {
  Simulator sim(1);
  bool ran = false;
  sim.at(50, [&] { ran = true; });
  sim.run_until(50);
  EXPECT_TRUE(ran);
}

TEST(Simulator, EventsScheduleMoreEvents) {
  Simulator sim(1);
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) sim.after(10, chain);
  };
  sim.after(10, chain);
  sim.run_until(1000);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.events_processed(), 5u);
}

TEST(Simulator, AfterUsesCurrentTime) {
  Simulator sim(1);
  TimeUs fired_at = -1;
  sim.at(40, [&] { sim.after(5, [&] { fired_at = sim.now(); }); });
  sim.run_until(100);
  EXPECT_EQ(fired_at, 45);
}

TEST(Simulator, RunUntilPastQueueLeavesClockAtBound) {
  Simulator sim(1);
  sim.run_until(123);
  EXPECT_EQ(sim.now(), 123);
}

TEST(OneShotTimer, FiresOnce) {
  Simulator sim(1);
  OneShotTimer t(sim);
  int fires = 0;
  t.start(10, [&] { ++fires; });
  sim.run_until(100);
  EXPECT_EQ(fires, 1);
  EXPECT_FALSE(t.running());
}

TEST(OneShotTimer, RestartCancelsPrevious) {
  Simulator sim(1);
  OneShotTimer t(sim);
  int value = 0;
  t.start(10, [&] { value = 1; });
  t.start(20, [&] { value = 2; });
  sim.run_until(100);
  EXPECT_EQ(value, 2);
}

TEST(OneShotTimer, StopPreventsFire) {
  Simulator sim(1);
  OneShotTimer t(sim);
  bool fired = false;
  t.start(10, [&] { fired = true; });
  t.stop();
  sim.run_until(100);
  EXPECT_FALSE(fired);
}

TEST(PeriodicTimer, FiresAtFixedPeriod) {
  Simulator sim(1);
  PeriodicTimer t(sim);
  std::vector<TimeUs> fires;
  t.start(10, 100, [&] { fires.push_back(sim.now()); });
  sim.run_until(450);
  EXPECT_EQ(fires, (std::vector<TimeUs>{10, 110, 210, 310, 410}));
}

TEST(PeriodicTimer, StopInsideCallback) {
  Simulator sim(1);
  PeriodicTimer t(sim);
  int fires = 0;
  t.start(10, 10, [&] {
    if (++fires == 3) t.stop();
  });
  sim.run_until(1000);
  EXPECT_EQ(fires, 3);
}

TEST(PeriodicTimer, JitterStaysWithinBound) {
  Simulator sim(1);
  Rng rng(5);
  PeriodicTimer t(sim);
  std::vector<TimeUs> fires;
  t.start(0, 100, [&] { fires.push_back(sim.now()); }, &rng, 50);
  sim.run_until(2000);
  ASSERT_GE(fires.size(), 2u);
  for (std::size_t i = 1; i < fires.size(); ++i) {
    const TimeUs gap = fires[i] - fires[i - 1];
    EXPECT_GE(gap, 100);
    EXPECT_LE(gap, 200);  // period + own jitter + previous-fire shift
  }
}

TEST(Trickle, FirstFireWithinFirstInterval) {
  Simulator sim(1);
  TimeUs fired = -1;
  TrickleTimer t(sim, Rng(3), 1000, 4, [&] { fired = sim.now(); });
  t.start();
  sim.run_until(1000);
  EXPECT_GE(fired, 500);   // in [I/2, I)
  EXPECT_LT(fired, 1000);
}

TEST(Trickle, IntervalDoublesUpToImax) {
  Simulator sim(1);
  TrickleTimer t(sim, Rng(3), 1000, 2, [] {});
  t.start();
  EXPECT_EQ(t.current_interval(), 1000);
  sim.run_until(1000);
  EXPECT_EQ(t.current_interval(), 2000);
  sim.run_until(3000);
  EXPECT_EQ(t.current_interval(), 4000);
  sim.run_until(60000);
  EXPECT_EQ(t.current_interval(), 4000);  // Imax = 1000 << 2
}

TEST(Trickle, ResetShrinksToImin) {
  Simulator sim(1);
  TrickleTimer t(sim, Rng(3), 1000, 4, [] {});
  t.start();
  sim.run_until(3100);
  EXPECT_GT(t.current_interval(), 1000);
  t.reset();
  EXPECT_EQ(t.current_interval(), 1000);
}

TEST(Trickle, FiresRepeatedly) {
  Simulator sim(1);
  int fires = 0;
  TrickleTimer t(sim, Rng(3), 1000, 8, [&] { ++fires; });
  t.start();
  sim.run_until(30000);
  EXPECT_GE(fires, 4);  // intervals 1k,2k,4k,8k,16k -> at least 5 fires
}

TEST(Trickle, StopHaltsFiring) {
  Simulator sim(1);
  int fires = 0;
  TrickleTimer t(sim, Rng(3), 1000, 4, [&] { ++fires; });
  t.start();
  sim.run_until(1000);
  const int at_stop = fires;
  t.stop();
  sim.run_until(50000);
  EXPECT_EQ(fires, at_stop);
}

}  // namespace
}  // namespace gttsch
