// Statistics tests: summary stats, histogram quantiles, run-metric
// windowing and the six panel computations.
#include <gtest/gtest.h>

#include "phy/medium.hpp"
#include "sim/simulator.hpp"
#include "stats/histogram.hpp"
#include "stats/run_stats.hpp"

namespace gttsch {
namespace {

using namespace literals;

TEST(SummaryStats, MeanMinMax) {
  SummaryStats s;
  for (double v : {2.0, 4.0, 6.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_EQ(s.count(), 3u);
}

TEST(SummaryStats, Variance) {
  SummaryStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
  EXPECT_NEAR(s.variance(), 2.5, 1e-12);  // sample variance
  EXPECT_NEAR(s.stddev(), 1.5811, 1e-3);
}

TEST(SummaryStats, EmptyIsZero) {
  SummaryStats s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Histogram, QuantilesApproximate) {
  Histogram h(0, 100, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.95), 95.0, 1.5);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1.5);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0, 10, 10);
  h.add(-5);
  h.add(50);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.bins().front(), 1u);
  EXPECT_EQ(h.bins().back(), 1u);
}

class RunStatsTest : public ::testing::Test {
 protected:
  RunStatsTest() : stats_(10_s, 70_s) {
    stats_.register_node(1, true, nullptr);
    stats_.register_node(2, false, nullptr);
    stats_.register_node(3, false, nullptr);
  }

  DataPayload data(NodeId origin, TimeUs gen, std::uint8_t hops = 1) {
    DataPayload d;
    d.origin = origin;
    d.generated_at = gen;
    d.hops = hops;
    return d;
  }

  RunStats stats_;
};

TEST_F(RunStatsTest, CountsOnlyInsideWindow) {
  stats_.on_generated(2, 5_s);    // before warmup: ignored
  stats_.on_generated(2, 20_s);   // counted
  stats_.on_generated(2, 80_s);   // after end: ignored
  const auto m = stats_.finalize();
  EXPECT_EQ(m.generated, 1u);
}

TEST_F(RunStatsTest, DeliveryKeyedOnGenerationTime) {
  stats_.on_generated(2, 20_s);
  // Delivered after measure end, but generated inside: still counts.
  stats_.on_delivered(1, data(2, 20_s), 71_s);
  const auto m = stats_.finalize();
  EXPECT_EQ(m.delivered, 1u);
  EXPECT_DOUBLE_EQ(m.pdr_percent, 100.0);
}

TEST_F(RunStatsTest, WarmupTrafficExcludedFromDelivery) {
  stats_.on_delivered(1, data(2, 5_s), 12_s);  // generated pre-warmup
  const auto m = stats_.finalize();
  EXPECT_EQ(m.delivered, 0u);
}

TEST_F(RunStatsTest, DelayAveraged) {
  stats_.on_generated(2, 20_s);
  stats_.on_generated(3, 21_s);
  stats_.on_delivered(1, data(2, 20_s), 20_s + 100_ms);
  stats_.on_delivered(1, data(3, 21_s), 21_s + 300_ms);
  const auto m = stats_.finalize();
  EXPECT_NEAR(m.avg_delay_ms, 200.0, 1e-9);
}

TEST_F(RunStatsTest, PanelMetricArithmetic) {
  // 1 minute window: warmup 10s, end 70s.
  for (int i = 0; i < 10; ++i) stats_.on_generated(2, 20_s);
  for (int i = 0; i < 8; ++i) stats_.on_delivered(1, data(2, 20_s), 25_s);
  stats_.on_queue_drop(2, 30_s);
  stats_.on_queue_drop(3, 30_s);
  stats_.on_mac_drop(2, 30_s);
  const auto m = stats_.finalize();
  EXPECT_NEAR(m.pdr_percent, 80.0, 1e-9);
  EXPECT_NEAR(m.loss_per_minute, 2.0, 1e-9);        // 2 lost / 1 min
  EXPECT_NEAR(m.throughput_per_minute, 8.0, 1e-9);  // 8 delivered / 1 min
  EXPECT_NEAR(m.queue_loss_per_node, 2.0 / 3.0, 1e-9);
  EXPECT_EQ(m.mac_drops, 1u);
}

TEST_F(RunStatsTest, MeanHops) {
  stats_.on_generated(2, 20_s);
  stats_.on_generated(3, 20_s);
  stats_.on_delivered(1, data(2, 20_s, 1), 21_s);
  stats_.on_delivered(1, data(3, 20_s, 3), 21_s);
  EXPECT_DOUBLE_EQ(stats_.finalize().mean_hops, 2.0);
}

TEST_F(RunStatsTest, JoinedCounting) {
  stats_.set_joined(2, true);
  const auto m = stats_.finalize();
  // Root (1) + node 2.
  EXPECT_EQ(m.nodes_joined, 2u);
  EXPECT_EQ(m.node_count, 3u);
}

TEST(RunStatsDuty, DutyCycleFromRadioWindow) {
  Simulator sim(9);
  Medium medium(sim, std::make_unique<UnitDiskModel>(10.0), Rng(9));
  Radio radio(sim, medium, 1, {});
  RunStats stats(1_s, 2_s);
  stats.register_node(1, false, &radio);

  sim.at(1_s, [&] { stats.begin_measurement(); });
  // Radio on for 0.25s of the 1s window.
  sim.at(1200_ms, [&] { radio.listen(17); });
  sim.at(1450_ms, [&] { radio.turn_off(); });
  sim.at(2_s, [&] { stats.end_measurement(); });
  sim.run_until(3_s);

  const auto m = stats.finalize();
  EXPECT_NEAR(m.duty_cycle_percent, 25.0, 0.1);
}

}  // namespace
}  // namespace gttsch
