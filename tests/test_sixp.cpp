// 6P transaction-engine tests (request/response matching, seqnums,
// timeouts, single-outstanding rule) using a loopback-style SF stub.
#include <gtest/gtest.h>

#include <memory>

#include "phy/medium.hpp"
#include "sim/simulator.hpp"
#include "sixp/sixp.hpp"

namespace gttsch {
namespace {

using namespace literals;

struct SfStub final : SixpSfCallbacks {
  SixpReturnCode respond_with = SixpReturnCode::kSuccess;
  int requests = 0;
  std::vector<std::tuple<NodeId, SixpCommand, bool>> done;  // peer, cmd, timeout

  SixpPayload sixp_handle_request(NodeId, const SixpPayload& request) override {
    ++requests;
    SixpPayload r;
    r.code = respond_with;
    r.num_cells = request.num_cells;
    r.free_rx = 11;
    return r;
  }
  void sixp_transaction_done(NodeId peer, SixpCommand cmd, bool timed_out,
                             const SixpPayload&) override {
    done.emplace_back(peer, cmd, timed_out);
  }
};

/// Two MACs wired over a perfect medium with an always-on shared cell so 6P
/// frames actually flow.
class SixpTest : public ::testing::Test {
 protected:
  SixpTest()
      : sim_(31),
        model_(new MatrixLinkModel),
        medium_(sim_, std::unique_ptr<LinkModel>(model_), Rng(31)),
        radio_a_(sim_, medium_, 1, {}),
        radio_b_(sim_, medium_, 2, {}),
        mac_a_(sim_, medium_, radio_a_, MacConfig{}, Rng(1)),
        mac_b_(sim_, medium_, radio_b_, MacConfig{}, Rng(2)),
        sixp_a_(sim_, mac_a_, 8_s),
        sixp_b_(sim_, mac_b_, 8_s),
        up_a_(sixp_a_),
        up_b_(sixp_b_) {
    model_->set(1, 2, 1.0);
    sixp_a_.set_callbacks(&sf_a_);
    sixp_b_.set_callbacks(&sf_b_);
    mac_a_.set_upcalls(&up_a_);
    mac_b_.set_upcalls(&up_b_);
    mac_a_.set_eb_provider([] { return EbPayload{}; });
    mac_a_.start_as_root();
    install_cells(mac_a_);
    mac_b_.start_scanning();
    sim_.run_until(sim_.now() + 40_s);
    EXPECT_TRUE(mac_b_.associated());
    install_cells(mac_b_);
  }

  static void install_cells(TschMac& mac) {
    auto& sf = mac.schedule().add_slotframe(0, 8);
    Cell c;
    c.slot_offset = 0;
    c.channel_offset = 0;
    c.options = kCellTx | kCellRx | kCellShared;
    c.neighbor = kBroadcastId;
    sf.add(c);
    Cell s = c;
    s.slot_offset = 4;
    s.channel_offset = 2;
    sf.add(s);
  }

  struct Dispatcher final : MacUpcalls {
    explicit Dispatcher(SixpAgent& agent) : agent(agent) {}
    SixpAgent& agent;
    void mac_associated(Asn, const Frame&) override {}
    void mac_frame_received(const Frame& f) override {
      if (f.type == FrameType::kSixp) agent.on_frame(f);
    }
    void mac_tx_result(const Frame&, bool, int) override {}
  };

  Simulator sim_;
  MatrixLinkModel* model_;
  Medium medium_;
  Radio radio_a_, radio_b_;
  TschMac mac_a_, mac_b_;
  SixpAgent sixp_a_, sixp_b_;
  SfStub sf_a_, sf_b_;
  Dispatcher up_a_, up_b_;
};

TEST_F(SixpTest, RequestResponseRoundTrip) {
  SixpPayload add;
  add.command = SixpCommand::kAdd;
  add.num_cells = 3;
  EXPECT_TRUE(sixp_b_.request(1, add));
  EXPECT_TRUE(sixp_b_.busy_with(1));
  sim_.run_until(sim_.now() + 40_s);
  EXPECT_FALSE(sixp_b_.busy_with(1));
  EXPECT_EQ(sf_a_.requests, 1);
  ASSERT_EQ(sf_b_.done.size(), 1u);
  EXPECT_EQ(std::get<0>(sf_b_.done[0]), 1);
  EXPECT_EQ(std::get<1>(sf_b_.done[0]), SixpCommand::kAdd);
  EXPECT_FALSE(std::get<2>(sf_b_.done[0]));
  EXPECT_EQ(sixp_b_.counters().responses_received, 1u);
}

TEST_F(SixpTest, SingleOutstandingPerPeer) {
  SixpPayload p;
  p.command = SixpCommand::kAdd;
  EXPECT_TRUE(sixp_b_.request(1, p));
  EXPECT_FALSE(sixp_b_.request(1, p));  // rejected while outstanding
  EXPECT_EQ(sixp_b_.counters().busy_rejections, 1u);
  sim_.run_until(sim_.now() + 40_s);
  EXPECT_TRUE(sixp_b_.request(1, p));  // free again after completion
}

TEST_F(SixpTest, TimeoutWhenPeerUnreachable) {
  model_->set(1, 2, 0.0);  // kill the link
  SixpPayload p;
  p.command = SixpCommand::kAskChannel;
  EXPECT_TRUE(sixp_b_.request(1, p));
  sim_.run_until(sim_.now() + 40_s);
  ASSERT_EQ(sf_b_.done.size(), 1u);
  EXPECT_TRUE(std::get<2>(sf_b_.done[0]));  // timed out
  EXPECT_EQ(sixp_b_.counters().timeouts, 1u);
  EXPECT_FALSE(sixp_b_.busy_with(1));
}

TEST_F(SixpTest, AbortPeerForgetsTransaction) {
  SixpPayload p;
  p.command = SixpCommand::kAdd;
  EXPECT_TRUE(sixp_b_.request(1, p));
  sixp_b_.abort_peer(1);
  EXPECT_FALSE(sixp_b_.busy_with(1));
  sim_.run_until(sim_.now() + 40_s);
  // The (now unsolicited) response is dropped as stale.
  EXPECT_TRUE(sf_b_.done.empty());
  EXPECT_GE(sixp_b_.counters().stale_responses, 0u);
}

TEST_F(SixpTest, SequentialTransactionsIncrementSeqnum) {
  for (int i = 0; i < 3; ++i) {
    SixpPayload p;
    p.command = SixpCommand::kAdd;
    EXPECT_TRUE(sixp_b_.request(1, p));
    sim_.run_until(sim_.now() + 30_s);
    EXPECT_FALSE(sixp_b_.busy_with(1));
  }
  EXPECT_EQ(sf_b_.done.size(), 3u);
  EXPECT_EQ(sixp_b_.counters().requests_sent, 3u);
  EXPECT_EQ(sixp_b_.counters().responses_received, 3u);
}

TEST_F(SixpTest, ResponseCarriesFreeRx) {
  SixpPayload p;
  p.command = SixpCommand::kAdd;
  std::uint16_t seen_free_rx = 0;
  struct Capture final : SixpSfCallbacks {
    std::uint16_t* out;
    explicit Capture(std::uint16_t* out) : out(out) {}
    SixpPayload sixp_handle_request(NodeId, const SixpPayload&) override { return {}; }
    void sixp_transaction_done(NodeId, SixpCommand, bool timed_out,
                               const SixpPayload& resp) override {
      if (!timed_out) *out = resp.free_rx;
    }
  } capture(&seen_free_rx);
  sixp_b_.set_callbacks(&capture);
  EXPECT_TRUE(sixp_b_.request(1, p));
  sim_.run_until(sim_.now() + 40_s);
  EXPECT_EQ(seen_free_rx, 11);
}

}  // namespace
}  // namespace gttsch
