// Full-stack integration tests: network formation, GT-TSCH bootstrap
// (channel allocation + 6P + data cells), end-to-end delivery under both
// schedulers, and the Section III / V invariants checked on live schedules.
#include <gtest/gtest.h>

#include "core/gt_tsch_sf.hpp"
#include "core/tx_alloc.hpp"
#include "scenario/experiment.hpp"
#include "scenario/network.hpp"

namespace gttsch {
namespace {

using namespace literals;

/// GT-specific assertions reach the concrete SF through the common
/// interface; nullptr when the node runs a different scheduler.
const GtTschSf* gt_sf(const Node& n) {
  return dynamic_cast<const GtTschSf*>(&n.sf());
}

NodeStackConfig gt_config(double ppm = 30.0) {
  ScenarioConfig sc;
  sc.scheduler = "gt-tsch";
  sc.traffic_ppm = ppm;
  auto nc = sc.make_node_config();
  nc.app_start = 60_s;
  nc.app_end = 0;
  return nc;
}

NodeStackConfig orchestra_config(double ppm = 30.0) {
  ScenarioConfig sc;
  sc.scheduler = "orchestra";
  sc.traffic_ppm = ppm;
  auto nc = sc.make_node_config();
  nc.app_start = 60_s;
  nc.app_end = 0;
  return nc;
}

std::unique_ptr<LinkModel> disk() {
  return std::make_unique<UnitDiskModel>(40.0, 1.0, 1.6);
}

TEST(Integration, GtNetworkFormsSevenNodes) {
  const auto topo = build_dodag(1, {0, 0}, 7, 30.0);
  Network net(11, disk(), topo, gt_config(), nullptr);
  net.start();
  net.sim().run_until(180_s);
  EXPECT_TRUE(net.fully_formed());
  // Routers (in root range) attach directly.
  EXPECT_EQ(net.node(2).rpl().parent(), 1);
  EXPECT_EQ(net.node(3).rpl().parent(), 1);
  // Every node has a loop-free upward path to the root. (Leaves may ride
  // through a sibling leaf transiently — normal RPL behavior — so exact
  // depth is not asserted.)
  for (NodeId start = 2; start <= 7; ++start) {
    NodeId hop = start;
    int steps = 0;
    while (hop != 1 && steps < 7) {
      hop = net.node(hop).rpl().parent();
      ASSERT_NE(hop, kNoNode) << "node " << start;
      ++steps;
    }
    EXPECT_EQ(hop, 1) << "node " << start << " does not reach the root";
  }
}

TEST(Integration, OrchestraNetworkForms) {
  const auto topo = build_dodag(1, {0, 0}, 7, 30.0);
  Network net(13, disk(), topo, orchestra_config(), nullptr);
  net.start();
  net.sim().run_until(180_s);
  EXPECT_TRUE(net.fully_formed());
}

TEST(Integration, GtBootstrapReachesOperational) {
  const auto topo = build_dodag(1, {0, 0}, 7, 30.0);
  Network net(17, disk(), topo, gt_config(), nullptr);
  net.start();
  net.sim().run_until(240_s);
  for (const auto& [id, node] : net.nodes()) {
    const auto* sf = gt_sf(*node);
    ASSERT_NE(sf, nullptr);
    EXPECT_EQ(sf->stage(), GtTschSf::Stage::kOperational) << "node " << id;
    EXPECT_NE(sf->family_channel(), kNoChannel) << "node " << id;
  }
}

TEST(Integration, GtChannelPropertiesHoldOnLiveTree) {
  const auto topo = build_dodag(1, {0, 0}, 7, 30.0);
  Network net(19, disk(), topo, gt_config(), nullptr);
  net.start();
  net.sim().run_until(240_s);
  // Three-hop uniqueness on every leaf -> router -> root path.
  for (NodeId leaf = 4; leaf <= 7; ++leaf) {
    const auto* leaf_sf = gt_sf(net.node(leaf));
    const NodeId router = net.node(leaf).rpl().parent();
    const auto* router_sf = gt_sf(net.node(router));
    ASSERT_NE(leaf_sf, nullptr);
    ASSERT_NE(router_sf, nullptr);
    // Leaf tx channel == router family channel.
    EXPECT_EQ(leaf_sf->channel_to_parent(), router_sf->family_channel());
    // Distinct along the path.
    EXPECT_NE(leaf_sf->channel_to_parent(), router_sf->channel_to_parent());
    EXPECT_NE(leaf_sf->family_channel(), router_sf->family_channel());
    EXPECT_NE(leaf_sf->family_channel(), leaf_sf->channel_to_parent());
  }
  // Sibling routers have distinct family channels.
  EXPECT_NE(gt_sf(net.node(2))->family_channel(), gt_sf(net.node(3))->family_channel());
}

TEST(Integration, GtSectionVInvariantsOnLiveSchedules) {
  const auto topo = build_dodag(1, {0, 0}, 7, 30.0);
  auto config = gt_config(60.0);
  Network net(23, disk(), topo, config, nullptr);
  net.start();
  net.sim().run_until(300_s);
  for (const auto& [id, node] : net.nodes()) {
    if (node->is_root()) continue;
    const Slotframe* sf = node->mac().schedule().get(0);
    ASSERT_NE(sf, nullptr);
    EXPECT_TRUE(TxSlotAllocator::tx_exceeds_rx(*sf)) << "node " << id;
    EXPECT_TRUE(TxSlotAllocator::rx_interleaved(*sf)) << "node " << id;
  }
}

TEST(Integration, GtDataCellsFollowDemand) {
  const auto topo = build_dodag(1, {0, 0}, 7, 30.0);
  Network net(29, disk(), topo, gt_config(120.0), nullptr);
  net.start();
  net.sim().run_until(300_s);
  // Routers forward two leaves' traffic plus their own: they must have
  // acquired more Tx cells than the leaves.
  const int router_tx = gt_sf(net.node(2))->allocated_tx_cells();
  const int leaf_tx = gt_sf(net.node(4))->allocated_tx_cells();
  EXPECT_GT(router_tx, 0);
  EXPECT_GT(leaf_tx, 0);
  EXPECT_GE(router_tx, leaf_tx);
}

TEST(Integration, EndToEndDeliveryGt) {
  const auto topo = build_dodag(1, {0, 0}, 7, 30.0);
  RunStats stats(180_s, 360_s);
  auto nc = gt_config(60.0);
  Network net(31, disk(), topo, nc, &stats);
  net.sim().at(180_s, [&] { stats.begin_measurement(); });
  net.sim().at(360_s, [&] { stats.end_measurement(); });
  net.start();
  net.sim().run_until(365_s);
  const auto m = stats.finalize();
  EXPECT_GT(m.generated, 0u);
  EXPECT_GT(m.pdr_percent, 90.0);
  EXPECT_GT(m.avg_delay_ms, 0.0);
  EXPECT_LT(m.avg_delay_ms, 2000.0);
}

TEST(Integration, EndToEndDeliveryOrchestra) {
  const auto topo = build_dodag(1, {0, 0}, 7, 30.0);
  RunStats stats(180_s, 360_s);
  auto nc = orchestra_config(30.0);
  Network net(37, disk(), topo, nc, &stats);
  net.sim().at(180_s, [&] { stats.begin_measurement(); });
  net.sim().at(360_s, [&] { stats.end_measurement(); });
  net.start();
  net.sim().run_until(365_s);
  const auto m = stats.finalize();
  EXPECT_GT(m.generated, 0u);
  // Light load: Orchestra delivers most packets (paper: ~99% at 1 ppm,
  // still high at 30 ppm).
  EXPECT_GT(m.pdr_percent, 70.0);
}

TEST(Integration, TwoDodagsStayIsolated) {
  const auto topo = build_multi_dodag(2, 7, 30.0);
  Network net(41, disk(), topo, gt_config(), nullptr);
  net.start();
  net.sim().run_until(240_s);
  EXPECT_TRUE(net.fully_formed());
  // Every node's DODAG root is its own root (1 or 8).
  for (const auto& [id, node] : net.nodes()) {
    if (node->is_root()) continue;
    EXPECT_EQ(node->rpl().dodag_root(), id <= 7 ? 1 : 8) << "node " << id;
  }
}

TEST(Integration, HopCountsRecordedInDelivery) {
  const auto topo = build_dodag(1, {0, 0}, 7, 30.0);
  RunStats stats(180_s, 300_s);
  Network net(43, disk(), topo, gt_config(30.0), &stats);
  net.sim().at(180_s, [&] { stats.begin_measurement(); });
  net.start();
  net.sim().run_until(305_s);
  const auto m = stats.finalize();
  // Mix of 1-hop (routers) and 2-hop (leaves) sources.
  EXPECT_GT(m.mean_hops, 0.4);
  EXPECT_LT(m.mean_hops, 2.1);
}

TEST(Integration, LineTopologyMultiHop) {
  const auto topo = build_line(1, {0, 0}, 3, 30.0);
  RunStats stats(240_s, 420_s);
  Network net(47, disk(), topo, gt_config(30.0), &stats);
  net.sim().at(240_s, [&] { stats.begin_measurement(); });
  net.start();
  net.sim().run_until(425_s);
  EXPECT_TRUE(net.fully_formed());
  const auto m = stats.finalize();
  EXPECT_GT(m.pdr_percent, 80.0);
}

TEST(Integration, GtDeterministicForSameSeed) {
  const auto topo = build_dodag(1, {0, 0}, 7, 30.0);
  auto run_once = [&](std::uint64_t seed) {
    RunStats stats(180_s, 300_s);
    Network net(seed, disk(), topo, gt_config(60.0), &stats);
    net.sim().at(180_s, [&] { stats.begin_measurement(); });
    net.start();
    net.sim().run_until(305_s);
    const auto m = stats.finalize();
    return std::make_tuple(m.generated, m.delivered, m.queue_drops);
  };
  EXPECT_EQ(run_once(99), run_once(99));
  EXPECT_NE(std::get<0>(run_once(99)), 0u);
}

}  // namespace
}  // namespace gttsch
