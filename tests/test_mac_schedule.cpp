// Tests for TSCH schedule containers, hopping, and transmit queues.
#include <gtest/gtest.h>

#include "mac/hopping.hpp"
#include "mac/schedule.hpp"
#include "mac/txqueue.hpp"

namespace gttsch {
namespace {

Cell make_cell(std::uint16_t slot, ChannelOffset ch, std::uint8_t options,
               NodeId neighbor = kBroadcastId) {
  Cell c;
  c.slot_offset = slot;
  c.channel_offset = ch;
  c.options = options;
  c.neighbor = neighbor;
  return c;
}

TEST(Hopping, DefaultIsTableII) {
  HoppingSequence h;
  EXPECT_EQ(h.sequence(), (std::vector<PhysChannel>{17, 23, 15, 25, 19, 11, 13, 21}));
  EXPECT_EQ(h.num_offsets(), 8u);
}

TEST(Hopping, ChannelForFollowsFormula) {
  HoppingSequence h;
  EXPECT_EQ(h.channel_for(0, 0), 17);
  EXPECT_EQ(h.channel_for(0, 1), 23);
  EXPECT_EQ(h.channel_for(1, 0), 23);
  EXPECT_EQ(h.channel_for(8, 0), 17);  // wraps
  EXPECT_EQ(h.channel_for(7, 3), h.channel_for(15, 3));
}

TEST(Hopping, DistinctOffsetsNeverCollideInASlot) {
  HoppingSequence h;
  for (Asn asn = 0; asn < 64; ++asn)
    for (ChannelOffset o1 = 0; o1 < 8; ++o1)
      for (ChannelOffset o2 = static_cast<ChannelOffset>(o1 + 1); o2 < 8; ++o2)
        EXPECT_NE(h.channel_for(asn, o1), h.channel_for(asn, o2));
}

TEST(Slotframe, AddRemoveFind) {
  Slotframe sf(0, 10);
  const Cell c = make_cell(3, 2, kCellTx, 7);
  EXPECT_TRUE(sf.add(c));
  EXPECT_FALSE(sf.add(c));  // duplicate
  EXPECT_EQ(sf.size(), 1u);
  ASSERT_EQ(sf.cells_at(3).size(), 1u);
  EXPECT_EQ(sf.cells_at(3)[0].neighbor, 7);
  EXPECT_TRUE(sf.remove(c));
  EXPECT_FALSE(sf.remove(c));
  EXPECT_EQ(sf.size(), 0u);
}

TEST(Slotframe, MultipleCellsPerSlot) {
  Slotframe sf(0, 10);
  sf.add(make_cell(3, 1, kCellTx, 7));
  sf.add(make_cell(3, 2, kCellRx, 8));
  EXPECT_EQ(sf.cells_at(3).size(), 2u);
}

TEST(Slotframe, RemoveIf) {
  Slotframe sf(0, 10);
  sf.add(make_cell(1, 1, kCellTx, 7));
  sf.add(make_cell(2, 1, kCellRx, 7));
  sf.add(make_cell(3, 1, kCellTx, 8));
  const auto removed = sf.remove_if([](const Cell& c) { return c.neighbor == 7; });
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(sf.size(), 1u);
}

TEST(Slotframe, FreeSlots) {
  Slotframe sf(0, 5);
  sf.add(make_cell(1, 0, kCellTx));
  sf.add(make_cell(3, 0, kCellRx));
  EXPECT_EQ(sf.free_slots(), (std::vector<std::uint16_t>{0, 2, 4}));
  EXPECT_TRUE(sf.slot_in_use(1));
  EXPECT_FALSE(sf.slot_in_use(0));
}

TEST(Schedule, ActiveCellsAcrossSlotframes) {
  TschSchedule s;
  s.add_slotframe(0, 4).add(make_cell(2, 0, kCellTx));
  s.add_slotframe(1, 3).add(make_cell(2, 1, kCellRx));
  // ASN 2: sf0 slot 2 active, sf1 slot 2 active.
  auto cells = s.active_cells(2);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].first, 0);  // handle order
  EXPECT_EQ(cells[1].first, 1);
  // ASN 6: sf0 slot 2, sf1 slot 0 (empty).
  cells = s.active_cells(6);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].first, 0);
}

TEST(Schedule, ActiveCellsIntoMatchesAllocatingVariant) {
  TschSchedule s;
  s.add_slotframe(0, 4).add(make_cell(2, 0, kCellTx));
  s.add_slotframe(1, 3).add(make_cell(2, 1, kCellRx));
  std::vector<TschSchedule::ActiveCell> scratch;
  for (Asn asn = 0; asn < 24; ++asn) {
    s.active_cells_into(asn, scratch);
    EXPECT_EQ(scratch, s.active_cells(asn)) << "asn " << asn;
  }
}

TEST(Schedule, NextActiveAsnSkipsEmptySlots) {
  TschSchedule s;
  s.add_slotframe(0, 8).add(make_cell(5, 0, kCellTx));
  // Slot 5 of 8: occurrences at 5, 13, 21, ...
  EXPECT_EQ(s.next_active_asn(0), 5u);
  EXPECT_EQ(s.next_active_asn(4), 5u);
  EXPECT_EQ(s.next_active_asn(5), 13u);  // strictly greater than `after`
  EXPECT_EQ(s.next_active_asn(12), 13u);
  EXPECT_EQ(s.next_active_asn(1000), 1005u);
}

TEST(Schedule, NextActiveAsnMergesSlotframes) {
  TschSchedule s;
  s.add_slotframe(0, 10).add(make_cell(7, 0, kCellTx));
  s.add_slotframe(1, 3).add(make_cell(1, 0, kCellRx));
  // sf1 hits at 1, 4, 7, 10, ...; sf0 hits at 7, 17, 27, ...
  EXPECT_EQ(s.next_active_asn(0), 1u);
  EXPECT_EQ(s.next_active_asn(1), 4u);
  EXPECT_EQ(s.next_active_asn(5), 7u);  // both frames; earliest wins
}

TEST(Schedule, NextActiveAsnTracksMutations) {
  TschSchedule s;
  EXPECT_EQ(s.next_active_asn(0), TschSchedule::kNoActiveAsn);
  auto& sf = s.add_slotframe(0, 16);
  EXPECT_EQ(s.next_active_asn(0), TschSchedule::kNoActiveAsn);
  const Cell c = make_cell(9, 2, kCellTx, 7);
  sf.add(c);
  EXPECT_EQ(s.next_active_asn(0), 9u);
  sf.remove(c);
  EXPECT_EQ(s.next_active_asn(0), TschSchedule::kNoActiveAsn);
  sf.add(make_cell(3, 0, kCellRx));
  sf.remove_if([](const Cell&) { return true; });
  EXPECT_EQ(s.next_active_asn(0), TschSchedule::kNoActiveAsn);
  s.add_slotframe(2, 5).add(make_cell(0, 0, kCellTx));
  EXPECT_EQ(s.next_active_asn(0), 5u);  // slot 0 of len 5: 0, 5, 10, ...
  s.remove_slotframe(2);
  EXPECT_EQ(s.next_active_asn(0), TschSchedule::kNoActiveAsn);
}

TEST(Schedule, ChangeListenerFiresOnEveryMutation) {
  TschSchedule s;
  int calls = 0;
  s.set_change_listener([&] { ++calls; });
  auto& sf = s.add_slotframe(0, 8);
  EXPECT_EQ(calls, 1);
  const Cell c = make_cell(1, 0, kCellTx, 3);
  sf.add(c);
  EXPECT_EQ(calls, 2);
  sf.add(c);  // duplicate: no change, no notification
  EXPECT_EQ(calls, 2);
  sf.remove(c);
  EXPECT_EQ(calls, 3);
  sf.remove(c);  // absent: no change
  EXPECT_EQ(calls, 3);
  const std::uint64_t v = s.version();
  s.remove_slotframe(0);
  EXPECT_EQ(calls, 4);
  EXPECT_GT(s.version(), v);
}

TEST(Schedule, RemoveSlotframe) {
  TschSchedule s;
  s.add_slotframe(0, 4);
  s.add_slotframe(2, 8);
  EXPECT_EQ(s.slotframe_count(), 2u);
  s.remove_slotframe(0);
  EXPECT_EQ(s.slotframe_count(), 1u);
  EXPECT_EQ(s.get(0), nullptr);
  EXPECT_NE(s.get(2), nullptr);
}

TEST(Schedule, TotalCells) {
  TschSchedule s;
  s.add_slotframe(0, 4).add(make_cell(0, 0, kCellTx));
  auto& sf = *s.get(0);
  sf.add(make_cell(1, 0, kCellRx));
  EXPECT_EQ(s.total_cells(), 2u);
}

// --- TxQueues --------------------------------------------------------------

FramePtr data_frame(NodeId src, NodeId dst) { return make_data_frame(src, dst, DataPayload{}); }

TEST(TxQueues, DataCapacityIsGlobal) {
  TxQueues q(3, 8);
  EXPECT_TRUE(q.enqueue_unicast(10, data_frame(1, 10), 1, 0));
  EXPECT_TRUE(q.enqueue_unicast(11, data_frame(1, 11), 2, 0));
  EXPECT_TRUE(q.enqueue_unicast(10, data_frame(1, 10), 3, 0));
  EXPECT_FALSE(q.enqueue_unicast(12, data_frame(1, 12), 4, 0));  // cap 3
  EXPECT_EQ(q.data_queued(), 3u);
}

TEST(TxQueues, ControlCapacityPerQueue) {
  TxQueues q(32, 2);
  SixpPayload p;
  EXPECT_TRUE(q.enqueue_unicast(5, make_sixp_frame(1, 5, p), 1, 0));
  EXPECT_TRUE(q.enqueue_unicast(5, make_sixp_frame(1, 5, p), 2, 0));
  EXPECT_FALSE(q.enqueue_unicast(5, make_sixp_frame(1, 5, p), 3, 0));
  // Control cap does not affect data.
  EXPECT_TRUE(q.enqueue_unicast(5, data_frame(1, 5), 4, 0));
}

TEST(TxQueues, FifoPerNeighbor) {
  TxQueues q(8, 8);
  q.enqueue_unicast(5, data_frame(1, 5), 100, 0);
  q.enqueue_unicast(5, data_frame(1, 5), 101, 0);
  ASSERT_NE(q.peek_unicast(5), nullptr);
  EXPECT_EQ(q.peek_unicast(5)->mac_seq, 100u);
  q.pop_unicast(5);
  EXPECT_EQ(q.peek_unicast(5)->mac_seq, 101u);
  q.pop_unicast(5);
  EXPECT_EQ(q.peek_unicast(5), nullptr);
  EXPECT_EQ(q.data_queued(), 0u);
}

TEST(TxQueues, BroadcastQueueSeparate) {
  TxQueues q(1, 8);
  q.enqueue_unicast(5, data_frame(1, 5), 1, 0);  // fills data cap
  DioPayload dio;
  EXPECT_TRUE(q.enqueue_broadcast(make_dio_frame(1, dio), 2, 0));
  EXPECT_EQ(q.broadcast_queued(), 1u);
  q.pop_broadcast();
  EXPECT_EQ(q.peek_broadcast(), nullptr);
}

TEST(TxQueues, RoundRobinSharedPick) {
  TxQueues q(8, 8);
  q.enqueue_unicast(5, data_frame(1, 5), 1, 0);
  q.enqueue_unicast(9, data_frame(1, 9), 2, 0);
  const auto first = q.pick_any_unicast_shared();
  const auto second = q.pick_any_unicast_shared();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(*first, *second);  // alternates between backlogged neighbors
}

TEST(TxQueues, SharedPickHonorsBackoff) {
  TxQueues q(8, 8);
  q.enqueue_unicast(5, data_frame(1, 5), 1, 0);
  q.ensure_queue(5).backoff_window = 2;
  EXPECT_FALSE(q.pick_any_unicast_shared().has_value());  // window 2 -> 1
  EXPECT_FALSE(q.pick_any_unicast_shared().has_value());  // window 1 -> 0
  EXPECT_TRUE(q.pick_any_unicast_shared().has_value());
}

TEST(TxQueues, RetargetMovesDataRewritesDst) {
  TxQueues q(8, 8);
  q.enqueue_unicast(5, data_frame(1, 5), 1, 0);
  q.enqueue_unicast(5, data_frame(1, 5), 2, 0);
  SixpPayload p;
  q.enqueue_unicast(5, make_sixp_frame(1, 5, p), 3, 0);  // control: dropped
  const auto moved = q.retarget(5, 9);
  EXPECT_EQ(moved, 2u);
  EXPECT_EQ(q.peek_unicast(5), nullptr);
  ASSERT_NE(q.peek_unicast(9), nullptr);
  EXPECT_EQ(q.peek_unicast(9)->frame->dst, 9);
  EXPECT_EQ(q.data_queued(), 2u);
}

TEST(TxQueues, DropQueueUpdatesDataCount) {
  TxQueues q(8, 8);
  q.enqueue_unicast(5, data_frame(1, 5), 1, 0);
  q.enqueue_unicast(6, data_frame(1, 6), 2, 0);
  EXPECT_EQ(q.drop_queue(5), 1u);
  EXPECT_EQ(q.data_queued(), 1u);
}

TEST(TxQueues, BackloggedNeighbors) {
  TxQueues q(8, 8);
  q.enqueue_unicast(5, data_frame(1, 5), 1, 0);
  q.enqueue_unicast(7, data_frame(1, 7), 2, 0);
  const auto b = q.backlogged_neighbors();
  EXPECT_EQ(b, (std::vector<NodeId>{5, 7}));
}

}  // namespace
}  // namespace gttsch
