// RPL-lite and ETX estimator unit tests.
#include <gtest/gtest.h>

#include <memory>

#include "net/etx.hpp"
#include "net/rpl.hpp"
#include "phy/medium.hpp"
#include "sim/simulator.hpp"

namespace gttsch {
namespace {

using namespace literals;

TEST(Etx, UnknownNeighborIsOptimistic) {
  EtxEstimator e;
  EXPECT_DOUBLE_EQ(e.etx(42), 1.0);
  EXPECT_FALSE(e.has_estimate(42));
}

TEST(Etx, FirstSampleSetsValue) {
  EtxEstimator e;
  e.record(1, true, 3);
  EXPECT_DOUBLE_EQ(e.etx(1), 3.0);
}

TEST(Etx, EwmaConverges) {
  EtxEstimator e(0.9, 8.0);
  e.record(1, true, 1);
  for (int i = 0; i < 400; ++i) e.record(1, true, 2);
  EXPECT_NEAR(e.etx(1), 2.0, 0.05);
}

TEST(Etx, FailurePenalty) {
  EtxEstimator e(0.9, 8.0);
  e.record(1, true, 1);
  const double before = e.etx(1);
  e.record(1, false, 5);
  EXPECT_GT(e.etx(1), before);
}

TEST(Etx, NeverBelowOne) {
  EtxEstimator e;
  e.record(1, true, 1);
  for (int i = 0; i < 50; ++i) e.record(1, true, 1);
  EXPECT_GE(e.etx(1), 1.0);
  EXPECT_DOUBLE_EQ(e.prr(1), 1.0);
}

TEST(Etx, ForgetRemovesState) {
  EtxEstimator e;
  e.record(1, true, 4);
  e.forget(1);
  EXPECT_DOUBLE_EQ(e.etx(1), 1.0);
}

// --- RPL -------------------------------------------------------------------

struct RplEvents final : RplCallbacks {
  std::vector<std::pair<NodeId, NodeId>> parent_changes;
  std::vector<std::uint16_t> ranks;
  void rpl_parent_changed(NodeId o, NodeId n) override { parent_changes.emplace_back(o, n); }
  void rpl_rank_changed(std::uint16_t r) override { ranks.push_back(r); }
};

class RplTest : public ::testing::Test {
 protected:
  RplTest()
      : sim_(5),
        medium_(sim_, std::make_unique<UnitDiskModel>(100.0), Rng(5)),
        radio_(sim_, medium_, 10, {}),
        mac_(sim_, medium_, radio_, MacConfig{}, Rng(6)),
        rpl_(sim_, mac_, etx_, RplConfig{}, Rng(7)) {
    rpl_.set_callbacks(&events_);
  }

  Frame dio_from(NodeId src, std::uint16_t rank, NodeId root = 1,
                 std::uint16_t free_rx = 0) {
    DioPayload p;
    p.dodag_root = root;
    p.rank = rank;
    p.free_rx_cells = free_rx;
    return *make_dio_frame(src, p);
  }

  Simulator sim_;
  Medium medium_;
  Radio radio_;
  TschMac mac_;
  EtxEstimator etx_;
  RplEvents events_;
  RplAgent rpl_;
};

TEST_F(RplTest, RootHasRootRank) {
  rpl_.start_as_root();
  EXPECT_TRUE(rpl_.is_root());
  EXPECT_TRUE(rpl_.joined());
  EXPECT_EQ(rpl_.rank(), 256);
  EXPECT_EQ(rpl_.hops(), 0);
}

TEST_F(RplTest, JoinsOnFirstDio) {
  rpl_.start();
  EXPECT_FALSE(rpl_.joined());
  rpl_.on_dio(dio_from(1, 256));
  EXPECT_TRUE(rpl_.joined());
  EXPECT_EQ(rpl_.parent(), 1);
  EXPECT_EQ(rpl_.dodag_root(), 1);
  // Rank = parent rank + ETX(=1) * 256.
  EXPECT_EQ(rpl_.rank(), 512);
  EXPECT_EQ(rpl_.hops(), 1);
  ASSERT_EQ(events_.parent_changes.size(), 1u);
  EXPECT_EQ(events_.parent_changes[0].first, kNoNode);
  EXPECT_EQ(events_.parent_changes[0].second, 1);
}

TEST_F(RplTest, PrefersLowerPathCost) {
  rpl_.start();
  rpl_.on_dio(dio_from(2, 512));  // 2-hop path
  EXPECT_EQ(rpl_.parent(), 2);
  rpl_.on_dio(dio_from(1, 256));  // direct root: much better
  EXPECT_EQ(rpl_.parent(), 1);
  EXPECT_EQ(rpl_.rank(), 512);
}

TEST_F(RplTest, HysteresisBlocksMarginalSwitch) {
  rpl_.start();
  rpl_.on_dio(dio_from(2, 300));
  ASSERT_EQ(rpl_.parent(), 2);
  // Candidate 3 is better by only 100 rank units < threshold 192.
  rpl_.on_dio(dio_from(3, 200));
  EXPECT_EQ(rpl_.parent(), 2);
  // Candidate 4 is better by 250 > 192: switch.
  rpl_.on_dio(dio_from(4, 50));
  EXPECT_EQ(rpl_.parent(), 4);
}

TEST_F(RplTest, EtxDegradationRaisesRankAndCanSwitch) {
  rpl_.start();
  rpl_.on_dio(dio_from(2, 256));
  rpl_.on_dio(dio_from(3, 300));
  ASSERT_EQ(rpl_.parent(), 2);
  const auto rank_before = rpl_.rank();
  // Repeated failures to 2: ETX climbs, rank climbs, eventually 3 wins.
  for (int i = 0; i < 40; ++i) rpl_.on_tx_result(2, false, 5);
  EXPECT_GT(rpl_.rank(), rank_before);
  EXPECT_EQ(rpl_.parent(), 3);
}

TEST_F(RplTest, IgnoresOtherDodagAfterJoining) {
  rpl_.start();
  rpl_.on_dio(dio_from(2, 256, /*root=*/1));
  rpl_.on_dio(dio_from(9, 100, /*root=*/50));  // different DODAG, better rank
  EXPECT_EQ(rpl_.parent(), 2);
  EXPECT_EQ(rpl_.dodag_root(), 1);
}

TEST_F(RplTest, ParentFreeRxTracksLatestDio) {
  rpl_.start();
  rpl_.on_dio(dio_from(2, 256, 1, 5));
  EXPECT_EQ(rpl_.parent_free_rx(), 5);
  rpl_.on_dio(dio_from(2, 256, 1, 9));
  EXPECT_EQ(rpl_.parent_free_rx(), 9);
}

TEST_F(RplTest, RootIgnoresDios) {
  rpl_.start_as_root();
  rpl_.on_dio(dio_from(2, 100));
  EXPECT_EQ(rpl_.parent(), kNoNode);
  EXPECT_EQ(rpl_.rank(), 256);
}

TEST_F(RplTest, DioCarriesProviderValue) {
  rpl_.set_free_rx_provider([] { return std::uint16_t{7}; });
  rpl_.start_as_root();
  sim_.run_until(10_s);  // trickle fires at least once
  // The DIO landed in the MAC broadcast queue.
  ASSERT_GE(mac_.queues().broadcast_queued(), 1u);
  const auto* pkt = mac_.queues().peek_broadcast();
  ASSERT_NE(pkt, nullptr);
  ASSERT_EQ(pkt->frame->type, FrameType::kDio);
  EXPECT_EQ(pkt->frame->as<DioPayload>().free_rx_cells, 7);
  EXPECT_EQ(pkt->frame->as<DioPayload>().rank, 256);
}

TEST_F(RplTest, HopsFromRank) {
  rpl_.start();
  rpl_.on_dio(dio_from(2, 512));
  EXPECT_EQ(rpl_.rank(), 768);
  EXPECT_EQ(rpl_.hops(), 2);
}

TEST_F(RplTest, NeighborRankVisible) {
  rpl_.start();
  rpl_.on_dio(dio_from(2, 300));
  ASSERT_TRUE(rpl_.neighbor_rank(2).has_value());
  EXPECT_EQ(*rpl_.neighbor_rank(2), 300);
  EXPECT_FALSE(rpl_.neighbor_rank(99).has_value());
}

TEST_F(RplTest, DetachesWhenParentDiesWithoutAlternative) {
  rpl_.start();
  rpl_.on_dio(dio_from(2, 256));
  ASSERT_EQ(rpl_.parent(), 2);
  // Dead link: repeated total failures push ETX past the detach threshold.
  for (int i = 0; i < 40; ++i) rpl_.on_tx_result(2, false, 5);
  EXPECT_FALSE(rpl_.joined());
  EXPECT_EQ(rpl_.parent(), kNoNode);
  EXPECT_EQ(rpl_.rank(), 0xFFFF);
  ASSERT_EQ(events_.parent_changes.size(), 2u);
  EXPECT_EQ(events_.parent_changes[1].second, kNoNode);
  // A fresh DIO re-joins immediately.
  rpl_.on_dio(dio_from(3, 256));
  EXPECT_TRUE(rpl_.joined());
  EXPECT_EQ(rpl_.parent(), 3);
}

TEST_F(RplTest, SwitchesInsteadOfDetachingWhenAlternativeExists) {
  rpl_.start();
  rpl_.on_dio(dio_from(2, 256));
  rpl_.on_dio(dio_from(3, 300));
  ASSERT_EQ(rpl_.parent(), 2);
  for (int i = 0; i < 40; ++i) rpl_.on_tx_result(2, false, 5);
  EXPECT_TRUE(rpl_.joined());
  EXPECT_EQ(rpl_.parent(), 3);  // local repair via the alternative
}

TEST_F(RplTest, PoisonedParentTriggersDetach) {
  rpl_.start();
  rpl_.on_dio(dio_from(2, 256));
  ASSERT_EQ(rpl_.parent(), 2);
  rpl_.on_dio(dio_from(2, 0xFFFF));  // parent poisons itself
  EXPECT_FALSE(rpl_.joined());
}

TEST_F(RplTest, PoisonedCandidateNeverSelected) {
  rpl_.start();
  rpl_.on_dio(dio_from(9, 0xFFFF));
  EXPECT_FALSE(rpl_.joined());
  rpl_.on_dio(dio_from(2, 512));
  EXPECT_EQ(rpl_.parent(), 2);
}

TEST_F(RplTest, DetachEnqueuesPoisonDio) {
  rpl_.start();
  rpl_.on_dio(dio_from(2, 256));
  const auto before = mac_.queues().broadcast_queued();
  for (int i = 0; i < 40; ++i) rpl_.on_tx_result(2, false, 5);
  ASSERT_FALSE(rpl_.joined());
  ASSERT_GT(mac_.queues().broadcast_queued(), before);
  const auto* pkt = mac_.queues().peek_broadcast();
  ASSERT_NE(pkt, nullptr);
  ASSERT_EQ(pkt->frame->type, FrameType::kDio);
  EXPECT_EQ(pkt->frame->as<DioPayload>().rank, 0xFFFF);
}

}  // namespace
}  // namespace gttsch
