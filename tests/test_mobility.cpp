// Mobility: node positions feed the distance-based link models live, so a
// moving node's links fade and RPL + GT-TSCH re-home it (the scenario of
// the authors' companion work DT-SF, exercised here as an extension).
#include <gtest/gtest.h>

#include "core/gt_tsch_sf.hpp"
#include "scenario/experiment.hpp"
#include "scenario/network.hpp"

namespace gttsch {
namespace {

using namespace literals;

/// GT-specific assertions reach the concrete SF through the common
/// interface; nullptr when the node runs a different scheduler.
const GtTschSf* gt_sf(const Node& n) {
  return dynamic_cast<const GtTschSf*>(&n.sf());
}

NodeStackConfig gt_config(double ppm) {
  ScenarioConfig sc;
  sc.scheduler = "gt-tsch";
  sc.traffic_ppm = ppm;
  auto nc = sc.make_node_config();
  nc.app_start = 60_s;
  nc.app_end = 0;
  return nc;
}

TEST(Mobility, PositionUpdatesAffectLinks) {
  // Two routers; the mobile node walks from router 2's area to router 3's.
  TopologySpec topo;
  topo.nodes.push_back(NodeSpec{1, {0, 0}, true});
  topo.nodes.push_back(NodeSpec{2, {0, 35}, false});
  topo.nodes.push_back(NodeSpec{3, {0, -35}, false});
  topo.nodes.push_back(NodeSpec{4, {25, 35}, false});  // near router 2

  Network net(101, std::make_unique<UnitDiskModel>(40.0, 1.0, 1.6), topo, gt_config(60.0),
              nullptr);
  net.start();
  net.sim().run_until(200_s);
  ASSERT_TRUE(net.fully_formed());
  ASSERT_EQ(net.node(4).rpl().parent(), 2);

  // Teleport-walk south in steps (a slow walk, 5 steps over 50 s).
  for (int step = 1; step <= 5; ++step) {
    const double y = 35.0 - 14.0 * step;  // ends at -35
    net.sim().at(200_s + step * 10_s, [&net, y] { net.node(4).move_to({25, y}); });
  }
  net.sim().run_until(600_s);

  // The old link is out of range now; the node must have re-homed to 3.
  EXPECT_EQ(net.node(4).rpl().parent(), 3);
  ASSERT_NE(gt_sf(net.node(4)), nullptr);
  EXPECT_EQ(gt_sf(net.node(4))->stage(), GtTschSf::Stage::kOperational);
  EXPECT_EQ(gt_sf(net.node(4))->channel_to_parent(),
            gt_sf(net.node(3))->family_channel());
}

TEST(Mobility, DeliveryContinuesAfterRoam) {
  TopologySpec topo;
  topo.nodes.push_back(NodeSpec{1, {0, 0}, true});
  topo.nodes.push_back(NodeSpec{2, {0, 35}, false});
  topo.nodes.push_back(NodeSpec{3, {0, -35}, false});
  topo.nodes.push_back(NodeSpec{4, {25, 35}, false});

  RunStats stats(420_s, 720_s);  // measure after the roam settles
  Network net(103, std::make_unique<UnitDiskModel>(40.0, 1.0, 1.6), topo, gt_config(60.0),
              &stats);
  net.sim().at(420_s, [&] { stats.begin_measurement(); });
  net.sim().at(720_s, [&] { stats.end_measurement(); });
  net.start();
  net.sim().run_until(200_s);
  ASSERT_TRUE(net.fully_formed());
  for (int step = 1; step <= 5; ++step) {
    const double y = 35.0 - 14.0 * step;
    net.sim().at(200_s + step * 10_s, [&net, y] { net.node(4).move_to({25, y}); });
  }
  net.sim().run_until(730_s);

  const auto& roamer = stats.per_node().at(4);
  EXPECT_GT(roamer.generated, 200u);
  EXPECT_GT(static_cast<double>(roamer.delivered_origin),
            0.85 * static_cast<double>(roamer.generated));
}

TEST(Mobility, StationaryNetworkUnaffectedByFarRoamer) {
  // A node roaming far out of everyone's range must not disturb others.
  TopologySpec topo;
  topo.nodes.push_back(NodeSpec{1, {0, 0}, true});
  topo.nodes.push_back(NodeSpec{2, {30, 0}, false});
  topo.nodes.push_back(NodeSpec{3, {30, 20}, false});

  RunStats stats(300_s, 540_s);
  Network net(107, std::make_unique<UnitDiskModel>(40.0, 1.0, 1.6), topo, gt_config(60.0),
              &stats);
  net.sim().at(300_s, [&] { stats.begin_measurement(); });
  net.sim().at(540_s, [&] { stats.end_measurement(); });
  net.start();
  net.sim().run_until(200_s);
  ASSERT_TRUE(net.fully_formed());
  net.sim().at(250_s, [&] { net.node(3).move_to({5000, 5000}); });
  net.sim().run_until(550_s);

  // Node 2 keeps delivering flawlessly.
  const auto& n2 = stats.per_node().at(2);
  EXPECT_GT(n2.generated, 200u);
  EXPECT_GT(static_cast<double>(n2.delivered_origin),
            0.95 * static_cast<double>(n2.generated));
}

}  // namespace
}  // namespace gttsch
