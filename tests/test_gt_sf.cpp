// GT-TSCH scheduling-function unit tests, driving the 6P request handlers
// and bootstrap machinery directly (no full network needed): channel
// assignment per Algorithm 1, 6P-cell and data-cell ADD semantics,
// DELETE/CLEAR, demand registration, and the l^rx advertisement.
#include <gtest/gtest.h>

#include <memory>

#include "core/gt_tsch_sf.hpp"
#include "phy/medium.hpp"
#include "sim/simulator.hpp"

namespace gttsch {
namespace {

using namespace literals;

class GtSfTest : public ::testing::Test {
 protected:
  GtSfTest()
      : sim_(51),
        medium_(sim_, std::make_unique<UnitDiskModel>(100.0), Rng(51)),
        radio_(sim_, medium_, 1, {}),
        mac_(sim_, medium_, radio_, MacConfig{}, Rng(52)),
        rpl_(sim_, mac_, etx_, RplConfig{}, Rng(53)),
        sixp_(sim_, mac_),
        sf_(sim_, mac_, rpl_, sixp_, etx_, GtTschConfig{}, Rng(54)) {}

  /// Boot node 1 as an operational root. (The fixture drives the SF
  /// directly, so the association upcall is delivered by hand.)
  void become_root() {
    sf_.start(true);
    rpl_.start_as_root();
    mac_.start_as_root();
    sf_.on_associated();
    ASSERT_EQ(sf_.stage(), GtTschSf::Stage::kOperational);
  }

  SixpPayload ask_channel(NodeId peer) {
    SixpPayload ask;
    ask.command = SixpCommand::kAskChannel;
    return sf_.sixp_handle_request(peer, ask);
  }

  SixpPayload add_sixp_cells(NodeId peer) {
    SixpPayload add;
    add.command = SixpCommand::kAdd;
    add.num_cells = 2;
    add.cell_options = kCellSixp;
    return sf_.sixp_handle_request(peer, add);
  }

  SixpPayload add_data_cells(NodeId peer, int count) {
    SixpPayload add;
    add.command = SixpCommand::kAdd;
    add.num_cells = static_cast<std::uint8_t>(count);
    add.cell_options = kCellTx;
    return sf_.sixp_handle_request(peer, add);
  }

  Simulator sim_;
  Medium medium_;
  Radio radio_;
  TschMac mac_;
  EtxEstimator etx_;
  RplAgent rpl_;
  SixpAgent sixp_;
  GtTschSf sf_;
};

TEST_F(GtSfTest, RootBecomesOperationalWithFamilyChannel) {
  become_root();
  EXPECT_NE(sf_.family_channel(), kNoChannel);
  EXPECT_NE(sf_.family_channel(), 0);  // not f_bcast
  EXPECT_EQ(sf_.level(), 0u);
  EXPECT_EQ(sf_.channel_to_parent(), kNoChannel);
}

TEST_F(GtSfTest, BaseCellsInstalled) {
  become_root();
  const Slotframe* sf = mac_.schedule().get(0);
  ASSERT_NE(sf, nullptr);
  // 4 broadcast cells + 3 shared (even parity) for Table-II defaults.
  int broadcast = 0, shared = 0;
  for (const Cell& c : sf->all_cells()) {
    if (c.channel_offset == 0 && c.is_shared()) ++broadcast;
    if (c.channel_offset == sf_.family_channel() && c.is_shared()) ++shared;
  }
  EXPECT_EQ(broadcast, 4);
  EXPECT_EQ(shared, 3);
}

TEST_F(GtSfTest, AskChannelAssignsDistinctChannelsPerChild) {
  become_root();
  const auto r1 = ask_channel(10);
  const auto r2 = ask_channel(11);
  ASSERT_EQ(r1.code, SixpReturnCode::kSuccess);
  ASSERT_EQ(r2.code, SixpReturnCode::kSuccess);
  EXPECT_NE(r1.channel_offset, r2.channel_offset);
  EXPECT_NE(r1.channel_offset, sf_.family_channel());
  EXPECT_NE(r2.channel_offset, sf_.family_channel());
  EXPECT_EQ(r1.level, 1);  // children sit one level below the root
  EXPECT_EQ(sf_.child_count(), 2u);
}

TEST_F(GtSfTest, AskChannelIdempotentPerChild) {
  become_root();
  const auto first = ask_channel(10);
  const auto second = ask_channel(10);
  EXPECT_EQ(first.channel_offset, second.channel_offset);
  EXPECT_EQ(sf_.child_count(), 1u);
}

TEST_F(GtSfTest, AskChannelExhaustsAtMaxChildren) {
  become_root();
  // |F|=8, f_bcast + own family -> at most 6 assignable, but the paper's
  // bound is |F|-3 = 5 (the root has no parent channel; our allocator
  // then allows one extra). Request many and count successes.
  int granted = 0;
  for (NodeId child = 10; child < 24; ++child)
    if (ask_channel(child).code == SixpReturnCode::kSuccess) ++granted;
  EXPECT_GE(granted, 5);
  EXPECT_LE(granted, 6);
  // Subsequent requests keep failing.
  EXPECT_EQ(ask_channel(99).code, SixpReturnCode::kErrNoResource);
}

TEST_F(GtSfTest, SixpCellPairGranted) {
  become_root();
  ask_channel(10);
  const auto r = add_sixp_cells(10);
  ASSERT_EQ(r.code, SixpReturnCode::kSuccess);
  ASSERT_EQ(r.cell_list.size(), 2u);
  // Requester perspective: one Tx (child->parent), one Rx (parent->child).
  EXPECT_TRUE(r.cell_list[0].is_tx());
  EXPECT_TRUE(r.cell_list[0].is_sixp());
  EXPECT_TRUE(r.cell_list[1].is_rx());
  // Both on the root's family channel.
  EXPECT_EQ(r.cell_list[0].channel_offset, sf_.family_channel());
  // Mirrored cells installed locally.
  int installed = 0;
  for (const Cell& c : mac_.schedule().get(0)->all_cells())
    if (c.neighbor == 10 && c.is_sixp()) ++installed;
  EXPECT_EQ(installed, 2);
}

TEST_F(GtSfTest, SixpCellPairIdempotent) {
  become_root();
  ask_channel(10);
  const auto first = add_sixp_cells(10);
  const auto again = add_sixp_cells(10);
  ASSERT_EQ(again.code, SixpReturnCode::kSuccess);
  EXPECT_EQ(first.cell_list.size(), again.cell_list.size());
  int installed = 0;
  for (const Cell& c : mac_.schedule().get(0)->all_cells())
    if (c.neighbor == 10 && c.is_sixp()) ++installed;
  EXPECT_EQ(installed, 2);  // no duplicates
}

TEST_F(GtSfTest, DataAddGrantsAndRegistersDemand) {
  become_root();
  ask_channel(10);
  const auto r = add_data_cells(10, 3);
  ASSERT_EQ(r.code, SixpReturnCode::kSuccess);
  EXPECT_EQ(static_cast<int>(r.cell_list.size()), 3);
  for (const Cell& c : r.cell_list) {
    EXPECT_TRUE(c.is_tx());  // requester perspective
    EXPECT_FALSE(c.is_sixp());
    EXPECT_EQ(c.channel_offset, sf_.family_channel());
  }
  EXPECT_EQ(sf_.allocated_rx_cells(), 3);
}

TEST_F(GtSfTest, DataAddHonorsCandidateList) {
  become_root();
  ask_channel(10);
  SixpPayload add;
  add.command = SixpCommand::kAdd;
  add.num_cells = 4;
  add.cell_options = kCellTx;
  Cell cand;
  cand.slot_offset = 5;
  cand.options = kCellTx;
  add.cell_list.push_back(cand);
  cand.slot_offset = 6;
  add.cell_list.push_back(cand);
  const auto r = sf_.sixp_handle_request(10, add);
  EXPECT_LE(r.cell_list.size(), 2u);
  for (const Cell& c : r.cell_list) EXPECT_TRUE(c.slot_offset == 5 || c.slot_offset == 6);
}

TEST_F(GtSfTest, DataDeleteRemovesCells) {
  become_root();
  ask_channel(10);
  const auto granted = add_data_cells(10, 2);
  ASSERT_EQ(granted.cell_list.size(), 2u);
  SixpPayload del;
  del.command = SixpCommand::kDelete;
  del.cell_list = granted.cell_list;
  del.num_cells = 2;
  const auto r = sf_.sixp_handle_request(10, del);
  EXPECT_EQ(r.code, SixpReturnCode::kSuccess);
  EXPECT_EQ(r.num_cells, 2);
  EXPECT_EQ(sf_.allocated_rx_cells(), 0);
}

TEST_F(GtSfTest, ClearRemovesChildEntirely) {
  become_root();
  ask_channel(10);
  add_sixp_cells(10);
  add_data_cells(10, 2);
  SixpPayload clear;
  clear.command = SixpCommand::kClear;
  sf_.sixp_handle_request(10, clear);
  EXPECT_EQ(sf_.child_count(), 0u);
  for (const Cell& c : mac_.schedule().get(0)->all_cells()) EXPECT_NE(c.neighbor, 10);
}

TEST_F(GtSfTest, AdvertisedFreeRxShrinksWithGrants) {
  become_root();
  ask_channel(10);
  const int before = sf_.advertised_free_rx();
  ASSERT_GT(before, 0);
  add_data_cells(10, 3);
  const int after = sf_.advertised_free_rx();
  EXPECT_LT(after, before);
}

TEST_F(GtSfTest, ResponsesCarryFreeRx) {
  become_root();
  const auto r = ask_channel(10);
  EXPECT_GT(r.free_rx, 0);
}

TEST_F(GtSfTest, NonRootRejectsAskChannelUntilOperational) {
  sf_.start(false);
  rpl_.start();
  const auto r = ask_channel(10);
  EXPECT_EQ(r.code, SixpReturnCode::kErrBusy);
  EXPECT_EQ(sf_.child_count(), 0u);
}

TEST_F(GtSfTest, EbInfoOnlyWhenOperational) {
  sf_.start(false);
  EXPECT_FALSE(sf_.eb_info().has_value());
  // Root path: operational immediately.
  GtSfTest* self = this;
  (void)self;
}

TEST_F(GtSfTest, RootEbCarriesFamilyChannel) {
  become_root();
  const auto eb = sf_.eb_info();
  ASSERT_TRUE(eb.has_value());
  EXPECT_TRUE(eb->has_family_channel);
  EXPECT_EQ(eb->family_channel, sf_.family_channel());
  EXPECT_EQ(eb->join_priority, 0);
  EXPECT_EQ(eb->slotframe_length, 32);
}

TEST_F(GtSfTest, SectionVHoldsAtRootAfterManyGrants) {
  become_root();
  for (NodeId child : {10, 11, 12}) {
    ask_channel(child);
    add_sixp_cells(child);
    add_data_cells(child, 2);
  }
  const Slotframe* sf = mac_.schedule().get(0);
  // Root is exempt from Tx>Rx, but fairness still spreads the cells; check
  // no slot double-booked.
  for (std::uint16_t s = 0; s < sf->length(); ++s)
    EXPECT_LE(sf->cells_at(s).size(), 1u) << "slot " << s;
}

TEST_F(GtSfTest, ChildDemandAccumulatesForEq1) {
  become_root();
  ask_channel(10);
  ask_channel(11);
  add_data_cells(10, 2);
  add_data_cells(11, 3);
  // Demand is visible via the advertisement path indirectly; directly we
  // can only observe grants here: 5 Rx cells total.
  EXPECT_EQ(sf_.allocated_rx_cells(), 5);
}

}  // namespace
}  // namespace gttsch
