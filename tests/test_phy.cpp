// PHY tests: link models, frame encoding, radio accounting, and the
// medium's collision / hidden-terminal semantics.
#include <gtest/gtest.h>

#include "phy/link_model.hpp"
#include "phy/medium.hpp"
#include "phy/radio.hpp"
#include "phy/wire.hpp"
#include "sim/simulator.hpp"

namespace gttsch {
namespace {

using namespace literals;

TEST(Geometry, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
}

TEST(UnitDisk, PrrInsideAndOutside) {
  UnitDiskModel m(10.0, 0.9, 1.5);
  EXPECT_DOUBLE_EQ(m.prr(1, {0, 0}, 2, {0, 9.9}), 0.9);
  EXPECT_DOUBLE_EQ(m.prr(1, {0, 0}, 2, {0, 10.1}), 0.0);
}

TEST(UnitDisk, InterferenceExtendsBeyondRange) {
  UnitDiskModel m(10.0, 1.0, 1.5);
  EXPECT_TRUE(m.interferes(1, {0, 0}, 2, {0, 14.9}));
  EXPECT_FALSE(m.interferes(1, {0, 0}, 2, {0, 15.1}));
}

TEST(DistancePrr, GreyRegionLinear) {
  DistancePrrModel m(10.0, 20.0);
  EXPECT_DOUBLE_EQ(m.prr(1, {0, 0}, 2, {0, 5}), 1.0);
  EXPECT_NEAR(m.prr(1, {0, 0}, 2, {0, 15}), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(m.prr(1, {0, 0}, 2, {0, 25}), 0.0);
}

TEST(MatrixModel, ExplicitLinks) {
  MatrixLinkModel m;
  m.set(1, 2, 0.8);
  EXPECT_DOUBLE_EQ(m.prr(1, {}, 2, {}), 0.8);
  EXPECT_DOUBLE_EQ(m.prr(2, {}, 1, {}), 0.8);  // symmetric
  EXPECT_DOUBLE_EQ(m.prr(1, {}, 3, {}), 0.0);
  EXPECT_TRUE(m.interferes(1, {}, 2, {}));
  EXPECT_FALSE(m.interferes(1, {}, 3, {}));
}

TEST(MatrixModel, AsymmetricAndInterferenceOverride) {
  MatrixLinkModel m;
  m.set(1, 2, 0.5, /*symmetric=*/false);
  EXPECT_DOUBLE_EQ(m.prr(2, {}, 1, {}), 0.0);
  m.set_interference(3, 2, true);
  EXPECT_TRUE(m.interferes(3, {}, 2, {}));
}

TEST(Wire, DefaultLengthsAndAirtime) {
  EXPECT_EQ(default_frame_length(FrameType::kAck), 26);
  EXPECT_GT(default_frame_length(FrameType::kData), default_frame_length(FrameType::kEb));
  // 110 bytes at 32us/byte + 192us preamble.
  EXPECT_EQ(frame_airtime(110), 192 + 110 * 32);
}

TEST(Wire, FactoriesSetTypeAndPayload) {
  const auto data = make_data_frame(3, 4, DataPayload{3, 7, 1000, 2});
  EXPECT_EQ(data->type, FrameType::kData);
  EXPECT_EQ(data->src, 3);
  EXPECT_EQ(data->dst, 4);
  EXPECT_EQ(data->as<DataPayload>().seq, 7u);

  EbPayload eb;
  eb.asn = 99;
  const auto ebf = make_eb_frame(5, eb);
  EXPECT_EQ(ebf->dst, kBroadcastId);
  EXPECT_EQ(ebf->as<EbPayload>().asn, 99u);

  SixpPayload sp;
  sp.cell_list.resize(3);
  const auto spf = make_sixp_frame(1, 2, sp);
  EXPECT_EQ(spf->length_bytes, default_frame_length(FrameType::kSixp) + 12);
}

class MediumTest : public ::testing::Test {
 protected:
  MediumTest()
      : sim_(7),
        medium_(sim_, std::make_unique<UnitDiskModel>(10.0, 1.0, 1.5), Rng(7)),
        a_(sim_, medium_, 1, {0, 0}),
        b_(sim_, medium_, 2, {5, 0}),
        c_(sim_, medium_, 3, {10, 0}),   // in range of b, at edge from a
        d_(sim_, medium_, 4, {30, 0}) {  // far away from everyone
  }

  Simulator sim_;
  Medium medium_;
  Radio a_, b_, c_, d_;
};

TEST_F(MediumTest, DeliversToListenerOnChannel) {
  FramePtr got;
  b_.on_rx = [&](FramePtr f) { got = std::move(f); };
  b_.listen(17);
  a_.transmit(make_data_frame(1, 2, DataPayload{}), 17);
  sim_.run_until(1_s);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->src, 1);
  EXPECT_EQ(medium_.stats().deliveries, 1u);
}

TEST_F(MediumTest, NoDeliveryOnOtherChannel) {
  FramePtr got;
  b_.on_rx = [&](FramePtr f) { got = std::move(f); };
  b_.listen(21);
  a_.transmit(make_data_frame(1, 2, DataPayload{}), 17);
  sim_.run_until(1_s);
  EXPECT_EQ(got, nullptr);
}

TEST_F(MediumTest, NoDeliveryWhenRadioOff) {
  FramePtr got;
  b_.on_rx = [&](FramePtr f) { got = std::move(f); };
  a_.transmit(make_data_frame(1, 2, DataPayload{}), 17);
  sim_.run_until(1_s);
  EXPECT_EQ(got, nullptr);
}

TEST_F(MediumTest, LateListenerMissesFrame) {
  FramePtr got;
  b_.on_rx = [&](FramePtr f) { got = std::move(f); };
  a_.transmit(make_data_frame(1, 2, DataPayload{}), 17);
  sim_.after(100, [&] { b_.listen(17); });  // after tx started
  sim_.run_until(1_s);
  EXPECT_EQ(got, nullptr);
}

TEST_F(MediumTest, OutOfRangeReceiverGetsNothing) {
  FramePtr got;
  d_.on_rx = [&](FramePtr f) { got = std::move(f); };
  d_.listen(17);
  a_.transmit(make_data_frame(1, 4, DataPayload{}), 17);
  sim_.run_until(1_s);
  EXPECT_EQ(got, nullptr);
}

TEST_F(MediumTest, ConcurrentSameChannelCollides) {
  // a and c both transmit; b hears both -> collision, nothing delivered.
  int rx = 0;
  b_.on_rx = [&](FramePtr) { ++rx; };
  b_.listen(17);
  a_.transmit(make_data_frame(1, 2, DataPayload{}), 17);
  c_.transmit(make_data_frame(3, 2, DataPayload{}), 17);
  sim_.run_until(1_s);
  EXPECT_EQ(rx, 0);
  EXPECT_GE(medium_.stats().collision_losses, 1u);
}

TEST_F(MediumTest, ConcurrentDifferentChannelsDeliver) {
  int rx_b = 0, rx_c = 0;
  b_.on_rx = [&](FramePtr) { ++rx_b; };
  // c listens on another channel and receives from d? d too far; use b<-a on
  // 17 while c<-b impossible (b transmits? no) — use a->b on 17, c->? No
  // second pair in range; instead verify a->b unaffected by d's tx far away.
  b_.listen(17);
  a_.transmit(make_data_frame(1, 2, DataPayload{}), 17);
  d_.transmit(make_data_frame(4, 3, DataPayload{}), 17);  // out of range of b
  sim_.run_until(1_s);
  EXPECT_EQ(rx_b, 1);
  (void)rx_c;
}

TEST_F(MediumTest, HiddenTerminalCorruptsReception) {
  // Receiver b at (5,0): a at (0,0) and c at (10,0) cannot hear each other
  // (distance 10 = range edge... use interference via overlap): both reach b.
  // Classic hidden terminal: both transmit to b concurrently.
  int rx = 0;
  b_.on_rx = [&](FramePtr) { ++rx; };
  b_.listen(17);
  a_.transmit(make_data_frame(1, 2, DataPayload{}), 17);
  sim_.after(1000, [&] { c_.transmit(make_data_frame(3, 2, DataPayload{}), 17); });
  sim_.run_until(1_s);
  EXPECT_EQ(rx, 0);  // overlapping in time at b
  EXPECT_GE(medium_.stats().collision_losses, 1u);
}

TEST_F(MediumTest, PrrLossesCounted) {
  Simulator sim(11);
  Medium lossy(sim, std::make_unique<UnitDiskModel>(10.0, 0.5, 1.5), Rng(11));
  Radio tx(sim, lossy, 1, {0, 0});
  Radio rx(sim, lossy, 2, {5, 0});
  int got = 0;
  rx.on_rx = [&](FramePtr) { ++got; };
  for (int i = 0; i < 200; ++i) {
    sim.at(i * 10000, [&] {
      rx.listen(17);
      tx.transmit(make_data_frame(1, 2, DataPayload{}), 17);
    });
  }
  sim.run_until(10_s);
  EXPECT_GT(got, 60);
  EXPECT_LT(got, 140);
  EXPECT_EQ(lossy.stats().prr_losses + static_cast<std::uint64_t>(got), 200u);
}

TEST_F(MediumTest, BusyUntilSeesInFlightFrame) {
  b_.listen(17);
  a_.transmit(make_data_frame(1, 2, DataPayload{}), 17);
  sim_.after(500, [&] {
    EXPECT_GT(medium_.busy_until(2, 17), sim_.now());
    EXPECT_EQ(medium_.busy_until(2, 21), 0);   // other channel clear
    EXPECT_EQ(medium_.busy_until(4, 17), 0);   // out of earshot
  });
  sim_.run_until(1_s);
}

TEST_F(MediumTest, RadioAccountsOnTime) {
  b_.listen(17);
  sim_.run_until(1000);
  b_.turn_off();
  EXPECT_EQ(b_.on_time(), 1000);
  EXPECT_EQ(b_.rx_time(), 1000);
  EXPECT_EQ(b_.tx_time(), 0);
}

TEST_F(MediumTest, TransmitAccountsAirtime) {
  const auto f = make_data_frame(1, 2, DataPayload{});
  const TimeUs air = frame_airtime(f->length_bytes);
  bool done = false;
  a_.on_tx_done = [&] { done = true; };
  a_.transmit(f, 17);
  sim_.run_until(1_s);
  EXPECT_TRUE(done);
  EXPECT_EQ(a_.tx_time(), air);
  EXPECT_EQ(a_.state(), RadioState::kOff);
}

TEST_F(MediumTest, LinkPrrQuery) {
  EXPECT_DOUBLE_EQ(medium_.link_prr(1, 2), 1.0);
  EXPECT_DOUBLE_EQ(medium_.link_prr(1, 4), 0.0);
}

}  // namespace
}  // namespace gttsch
