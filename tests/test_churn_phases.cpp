// Churn-phase windows (stats/run_stats.hpp): when a scenario's trace kills
// nodes mid-run, RunStats splits the measurement window at the first
// failure and at last failure + kChurnSettle, attributing both generated
// and delivered packets by *generation* time. The invariant locked here:
// the three per-phase counters partition the whole-run counters exactly —
// no packet lost or double-counted at a boundary — in both stepping modes.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>

#include "scenario/experiment.hpp"
#include "stats/run_stats.hpp"

namespace gttsch {
namespace {

using namespace literals;

/// Forces the per-slot reference stepping for the enclosing scope via the
/// same env knob the fast-path tests and CI use.
struct PerSlotGuard {
  PerSlotGuard() { ::setenv("GTTSCH_FORCE_PER_SLOT", "1", 1); }
  ~PerSlotGuard() { ::unsetenv("GTTSCH_FORCE_PER_SLOT"); }
};

/// 7 nodes, one killed mid-measurement: the kill at 180 s lands inside the
/// [120 s, 240 s) measurement window, so all three phases are non-trivial
/// (pre: 120-180, churn: 180-240 given the 60 s settle, post: empty here —
/// a second config below moves the kill early so post is populated too).
ScenarioConfig killed_config(const std::string& kind, double fail_at_s) {
  ScenarioConfig sc;
  sc.scheduler = kind;
  sc.dodag_count = 1;
  sc.nodes_per_dodag = 7;
  sc.traffic_ppm = 120.0;
  sc.gt_slotframe_length = 32;
  sc.orchestra_unicast_length = 8;
  sc.warmup = 120_s;
  sc.measure = 180_s;
  sc.drain = 10_s;
  sc.trace_kind = TraceKind::kRandomWalk;
  sc.trace_seed = 42;
  sc.trace_movers = 2;
  sc.trace_speed_mps = 2.0;
  sc.trace_interval_s = 5.0;
  sc.trace_fail_count = 1;
  sc.trace_fail_at_s = fail_at_s;
  return sc;
}

void expect_phases_partition(const RunMetrics& m) {
  EXPECT_EQ(m.churn_phases, 1u);
  EXPECT_EQ(m.pre_generated + m.churn_generated + m.post_generated, m.generated);
  EXPECT_EQ(m.pre_delivered + m.churn_delivered + m.post_delivered, m.delivered);
  // Phase PDRs are consistent with their own counters.
  if (m.pre_generated > 0) {
    EXPECT_DOUBLE_EQ(m.pre_pdr_percent,
                     100.0 * static_cast<double>(m.pre_delivered) /
                         static_cast<double>(m.pre_generated));
  }
  if (m.churn_generated > 0) {
    EXPECT_DOUBLE_EQ(m.churn_pdr_percent,
                     100.0 * static_cast<double>(m.churn_delivered) /
                         static_cast<double>(m.churn_generated));
  }
  if (m.post_generated > 0) {
    EXPECT_DOUBLE_EQ(m.post_pdr_percent,
                     100.0 * static_cast<double>(m.post_delivered) /
                         static_cast<double>(m.post_generated));
  }
}

TEST(ChurnPhases, PartitionExactlyGtTsch) {
  // Kill at 150 s: pre = [120, 150), churn = [150, 210), post = [210, 300).
  const ScenarioConfig sc = killed_config("gt-tsch", 150.0);
  for (const std::uint64_t seed : {4000ull, 4017ull}) {
    SCOPED_TRACE(::testing::Message() << "seed " << seed);
    ScenarioConfig run = sc;
    run.seed = seed;
    const ExperimentResult r = run_scenario(run);
    expect_phases_partition(r.metrics);
    EXPECT_GT(r.metrics.pre_generated, 0u);
    EXPECT_GT(r.metrics.churn_generated, 0u);
    EXPECT_GT(r.metrics.post_generated, 0u);
  }
}

TEST(ChurnPhases, PartitionExactlyOrchestra) {
  const ScenarioConfig sc = killed_config("orchestra", 150.0);
  ScenarioConfig run = sc;
  run.seed = 4000;
  const ExperimentResult r = run_scenario(run);
  expect_phases_partition(r.metrics);
}

TEST(ChurnPhases, FastPathAndPerSlotAgreeExactly) {
  ScenarioConfig sc = killed_config("gt-tsch", 150.0);
  sc.seed = 4000;
  const ExperimentResult fast = run_scenario(sc);
  ExperimentResult ref;
  {
    PerSlotGuard per_slot;
    ref = run_scenario(sc);
  }
  expect_phases_partition(fast.metrics);
  expect_phases_partition(ref.metrics);
  EXPECT_EQ(fast.metrics.pre_generated, ref.metrics.pre_generated);
  EXPECT_EQ(fast.metrics.churn_generated, ref.metrics.churn_generated);
  EXPECT_EQ(fast.metrics.post_generated, ref.metrics.post_generated);
  EXPECT_EQ(fast.metrics.pre_delivered, ref.metrics.pre_delivered);
  EXPECT_EQ(fast.metrics.churn_delivered, ref.metrics.churn_delivered);
  EXPECT_EQ(fast.metrics.post_delivered, ref.metrics.post_delivered);
  EXPECT_EQ(fast.metrics.pre_pdr_percent, ref.metrics.pre_pdr_percent);
  EXPECT_EQ(fast.metrics.churn_pdr_percent, ref.metrics.churn_pdr_percent);
  EXPECT_EQ(fast.metrics.post_pdr_percent, ref.metrics.post_pdr_percent);
  EXPECT_EQ(fast.metrics.pre_avg_delay_ms, ref.metrics.pre_avg_delay_ms);
  EXPECT_EQ(fast.metrics.churn_avg_delay_ms, ref.metrics.churn_avg_delay_ms);
  EXPECT_EQ(fast.metrics.post_avg_delay_ms, ref.metrics.post_avg_delay_ms);
}

TEST(ChurnPhases, LateKillLeavesPostEmpty) {
  // Kill at 280 s: churn runs to 340 s, past measure_end (300 s) — the
  // post phase window is empty and its counters must stay zero.
  ScenarioConfig sc = killed_config("gt-tsch", 280.0);
  sc.seed = 4000;
  const ExperimentResult r = run_scenario(sc);
  expect_phases_partition(r.metrics);
  EXPECT_GT(r.metrics.pre_generated, 0u);
  EXPECT_EQ(r.metrics.post_generated, 0u);
  EXPECT_EQ(r.metrics.post_delivered, 0u);
  EXPECT_EQ(r.metrics.post_pdr_percent, 0.0);
}

TEST(ChurnPhases, NoFailuresMeansNoPhases) {
  ScenarioConfig sc = killed_config("gt-tsch", 150.0);
  sc.trace_fail_count = 0;
  sc.seed = 4000;
  const ExperimentResult r = run_scenario(sc);
  EXPECT_EQ(r.metrics.churn_phases, 0u);
  EXPECT_EQ(r.metrics.pre_generated + r.metrics.churn_generated +
                r.metrics.post_generated,
            0u);
  EXPECT_EQ(r.metrics.pre_pdr_percent, 0.0);
}

}  // namespace
}  // namespace gttsch
