// Clock-drift and time-synchronization tests: drifted nodes stay slot-
// aligned through EB time corrections, and a realistic network keeps
// delivering with per-node oscillator errors.
#include <gtest/gtest.h>

#include <memory>

#include "mac/tsch_mac.hpp"
#include "phy/medium.hpp"
#include "scenario/experiment.hpp"
#include "scenario/network.hpp"
#include "sim/simulator.hpp"

namespace gttsch {
namespace {

using namespace literals;

struct NullUpcalls final : MacUpcalls {
  void mac_associated(Asn, const Frame&) override {}
  void mac_frame_received(const Frame&) override {}
  void mac_tx_result(const Frame&, bool, int) override {}
};

Cell broadcast_cell() {
  Cell c;
  c.slot_offset = 0;
  c.channel_offset = 0;
  c.options = kCellTx | kCellRx | kCellShared;
  c.neighbor = kBroadcastId;
  return c;
}

TEST(Drift, DriftedSlotsRunLong) {
  Simulator sim(9);
  Medium medium(sim, std::make_unique<UnitDiskModel>(50.0), Rng(9));
  Radio radio(sim, medium, 1, {});
  MacConfig cfg;
  cfg.drift_ppm = 100.0;  // exaggerated for observability
  TschMac mac(sim, medium, radio, cfg, Rng(10));
  NullUpcalls up;
  mac.set_upcalls(&up);
  mac.start_as_root();
  mac.schedule().add_slotframe(0, 8).add(broadcast_cell());
  // After 1000 nominal slots, a +100ppm node has ticked fewer slots:
  // expected asn ~ 1000 / 1.0001 ≈ 999.9.
  sim.run_until(1000 * 15_ms);
  EXPECT_LE(mac.asn(), 1000u);
  EXPECT_GE(mac.asn(), 998u);
}

TEST(Drift, ZeroDriftExactTiming) {
  Simulator sim(9);
  Medium medium(sim, std::make_unique<UnitDiskModel>(50.0), Rng(9));
  Radio radio(sim, medium, 1, {});
  TschMac mac(sim, medium, radio, MacConfig{}, Rng(10));
  NullUpcalls up;
  mac.set_upcalls(&up);
  mac.start_as_root();
  mac.schedule().add_slotframe(0, 8).add(broadcast_cell());
  sim.run_until(500 * 15_ms);
  EXPECT_EQ(mac.asn(), 500u);
  EXPECT_EQ(mac.total_sync_correction(), 0);
}

TEST(Drift, ChildResyncsToTimeSource) {
  Simulator sim(11);
  auto* model = new MatrixLinkModel;
  model->set(1, 2, 1.0);
  Medium medium(sim, std::unique_ptr<LinkModel>(model), Rng(11));
  Radio r1(sim, medium, 1, {});
  Radio r2(sim, medium, 2, {});
  MacConfig root_cfg;  // root is the time reference
  MacConfig child_cfg;
  child_cfg.drift_ppm = 40.0;  // CC2538-class crystal error
  TschMac root(sim, medium, r1, root_cfg, Rng(12));
  TschMac child(sim, medium, r2, child_cfg, Rng(13));
  NullUpcalls up;
  root.set_upcalls(&up);
  child.set_upcalls(&up);
  root.set_eb_provider([] { return EbPayload{}; });
  root.start_as_root();
  root.schedule().add_slotframe(0, 8).add(broadcast_cell());
  child.start_scanning();
  // Install cells promptly after association (as a real SF does): an idle
  // drifted node would otherwise walk out of the guard within ~30 s.
  while (!child.associated() && sim.now() < 60_s) sim.run_until(sim.now() + 500_ms);
  ASSERT_TRUE(child.associated());
  child.schedule().add_slotframe(0, 8).add(broadcast_cell());

  // 30 simulated minutes: uncorrected 40ppm drift would be 72 ms — far
  // beyond the 1.1 ms guard. EB corrections must keep the ASN aligned
  // (within one slot: the drifted boundary fires a hair later than the
  // reference at the sampling instant).
  sim.run_until(30_min);
  const auto asn_gap = child.asn() > root.asn() ? child.asn() - root.asn()
                                                : root.asn() - child.asn();
  EXPECT_LE(asn_gap, 1u);
  EXPECT_GT(child.total_sync_correction(), 0);
  // And the child still hears the root's beacons (sync alive).
  const auto rx_before = child.counters().rx_frames;
  sim.run_until(31_min);
  EXPECT_GT(child.counters().rx_frames, rx_before);
}

TEST(Drift, NetworkDeliversWithRealisticClocks) {
  // Full GT-TSCH stack with ±40 ppm per-node clocks (typical crystal).
  ScenarioConfig sc;
  sc.scheduler = "gt-tsch";
  sc.traffic_ppm = 60.0;
  auto nc = sc.make_node_config();
  nc.app_start = 60_s;
  nc.app_end = 0;
  nc.max_drift_ppm = 40.0;

  const auto topo = build_dodag(1, {0, 0}, 7, 30.0);
  RunStats stats(180_s, 480_s);
  Network net(91, std::make_unique<UnitDiskModel>(40.0, 1.0, 1.6), topo, nc, &stats);
  net.sim().at(180_s, [&] { stats.begin_measurement(); });
  net.sim().at(480_s, [&] { stats.end_measurement(); });
  net.start();
  net.sim().run_until(485_s);
  EXPECT_TRUE(net.fully_formed());
  const auto m = stats.finalize();
  EXPECT_GT(m.pdr_percent, 90.0);
  // Someone actually needed corrections.
  TimeUs total_corrections = 0;
  for (const auto& [id, node] : net.nodes())
    total_corrections += node->mac().total_sync_correction();
  EXPECT_GT(total_corrections, 0);
}

TEST(Drift, LargeOffsetRejectedByResync) {
  // A bogus EB claiming the current ASN but wildly misaligned must not
  // yank the slot boundary (correction beyond the guard is ignored).
  Simulator sim(13);
  auto* model = new MatrixLinkModel;
  model->set(1, 2, 1.0);
  Medium medium(sim, std::unique_ptr<LinkModel>(model), Rng(13));
  Radio r1(sim, medium, 1, {});
  Radio r2(sim, medium, 2, {});
  TschMac root(sim, medium, r1, MacConfig{}, Rng(14));
  TschMac child(sim, medium, r2, MacConfig{}, Rng(15));
  NullUpcalls up;
  root.set_upcalls(&up);
  child.set_upcalls(&up);
  root.set_eb_provider([] { return EbPayload{}; });
  root.start_as_root();
  root.schedule().add_slotframe(0, 8).add(broadcast_cell());
  child.start_scanning();
  sim.run_until(60_s);
  ASSERT_TRUE(child.associated());
  child.schedule().add_slotframe(0, 8).add(broadcast_cell());
  sim.run_until(120_s);
  // Perfect clocks: corrections should stay (near) zero even though EBs
  // keep arriving — the anchor is already exact.
  EXPECT_LE(child.total_sync_correction(), 16);
  EXPECT_EQ(child.asn(), root.asn());
}

}  // namespace
}  // namespace gttsch
