// Channel-allocation tests (Section III / Algorithm 1): the four problem
// cases must be structurally impossible under GT-TSCH's assignment.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/channel_alloc.hpp"

namespace gttsch {
namespace {

TEST(ChannelAlloc, MaxChildrenFormula) {
  EXPECT_EQ(ChannelAllocator(8, 0).max_children(), 5u);  // paper's example
  EXPECT_EQ(ChannelAllocator(4, 0).max_children(), 1u);
  EXPECT_EQ(ChannelAllocator(16, 3).max_children(), 13u);
}

TEST(ChannelAlloc, RootChannelAvoidsBroadcast) {
  ChannelAllocator a(8, 2);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const ChannelOffset ch = a.pick_root_family_channel(rng);
    EXPECT_NE(ch, 2);
    EXPECT_LT(ch, 8);
  }
}

TEST(ChannelAlloc, RootChannelCoversAllNonBroadcast) {
  ChannelAllocator a(8, 0);
  Rng rng(7);
  std::set<ChannelOffset> seen;
  for (int i = 0; i < 500; ++i) seen.insert(a.pick_root_family_channel(rng));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(seen.count(0), 0u);
}

TEST(ChannelAlloc, AssignmentAvoidsReservedSet) {
  ChannelAllocator a(8, 0);
  // Node with f_to_parent=1, f_own=2; siblings already took 3 and 4.
  const auto ch = a.assign_child_family_channel(1, 2, {3, 4});
  ASSERT_TRUE(ch.has_value());
  EXPECT_NE(*ch, 0);  // broadcast
  EXPECT_NE(*ch, 1);
  EXPECT_NE(*ch, 2);
  EXPECT_NE(*ch, 3);
  EXPECT_NE(*ch, 4);
}

TEST(ChannelAlloc, ExhaustionReturnsNothing) {
  ChannelAllocator a(8, 0);
  // f_bcast=0, parent=1, own=2, siblings take 3,4,5,6,7 -> nothing left.
  EXPECT_FALSE(a.assign_child_family_channel(1, 2, {3, 4, 5, 6, 7}).has_value());
}

TEST(ChannelAlloc, RootHasNoParentConstraint) {
  ChannelAllocator a(4, 0);
  // At the root (f_to_parent = kNoChannel), only bcast + own excluded.
  const auto ch = a.assign_child_family_channel(kNoChannel, 1, {});
  ASSERT_TRUE(ch.has_value());
  EXPECT_TRUE(*ch == 2 || *ch == 3);
}

TEST(ChannelAlloc, ThreeHopUniquenessValidator) {
  ChannelAllocator a(8, 0);
  EXPECT_TRUE(a.three_hop_unique(3, 2, 1));
  EXPECT_FALSE(a.three_hop_unique(2, 2, 1));   // child == own
  EXPECT_FALSE(a.three_hop_unique(1, 2, 1));   // child == parent-link
  EXPECT_FALSE(a.three_hop_unique(3, 1, 1));   // own == parent-link
  EXPECT_FALSE(a.three_hop_unique(0, 2, 1));   // broadcast reuse
  EXPECT_TRUE(a.three_hop_unique(3, 2, kNoChannel));  // at root
}

/// Build a whole tree via Algorithm 1 and verify the paper's properties
/// globally: per-family uniqueness, sibling-family separation, and
/// three-hop path uniqueness (kills problems 2, 3 and 4 of Section III).
class TreeAllocation : public ::testing::TestWithParam<int> {
 protected:
  struct NodeCh {
    ChannelOffset to_parent = kNoChannel;
    ChannelOffset family = kNoChannel;
    int parent = -1;
    std::vector<int> children;
  };

  // Builds a complete tree with `branching` children per node, 3 levels.
  std::vector<NodeCh> build(int branching) {
    ChannelAllocator alloc(8, 0);
    Rng rng(42);
    std::vector<NodeCh> nodes(1);
    nodes[0].family = alloc.pick_root_family_channel(rng);
    std::vector<int> frontier{0};
    for (int level = 0; level < 2; ++level) {
      std::vector<int> next;
      for (int parent : frontier) {
        std::vector<ChannelOffset> sibling_channels;
        for (int c = 0; c < branching; ++c) {
          const int id = static_cast<int>(nodes.size());
          nodes.push_back(NodeCh{});
          nodes[id].parent = parent;
          nodes[id].to_parent = nodes[parent].family;
          const auto ch = alloc.assign_child_family_channel(
              nodes[parent].to_parent, nodes[parent].family, sibling_channels);
          if (ch.has_value()) {
            nodes[id].family = *ch;
            sibling_channels.push_back(*ch);
          }
          nodes[parent].children.push_back(id);
          next.push_back(id);
        }
      }
      frontier = next;
    }
    return nodes;
  }
};

TEST_P(TreeAllocation, AllFamiliesAssigned) {
  const auto nodes = build(GetParam());
  for (const auto& n : nodes) EXPECT_NE(n.family, kNoChannel);
}

TEST_P(TreeAllocation, SiblingFamiliesDistinct) {
  const auto nodes = build(GetParam());
  for (const auto& n : nodes) {
    std::set<ChannelOffset> fams;
    for (int c : n.children) fams.insert(nodes[c].family);
    EXPECT_EQ(fams.size(), n.children.size());
  }
}

TEST_P(TreeAllocation, ThreeHopPathsUnique) {
  ChannelAllocator alloc(8, 0);
  const auto nodes = build(GetParam());
  // For every node with a grandparent: the three upward links use three
  // distinct channels (f_child_family used by ITS children, f_own, f_up).
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    const auto& n = nodes[i];
    const ChannelOffset up = n.to_parent;                        // i -> parent
    const ChannelOffset own = n.family;                          // children -> i
    if (n.parent >= 0) {
      const ChannelOffset parent_up = nodes[n.parent].to_parent;  // parent -> gp
      EXPECT_NE(own, up);
      if (parent_up != kNoChannel) {
        EXPECT_TRUE(alloc.three_hop_unique(own, up, parent_up))
            << "violation at node " << i;
      }
    }
  }
}

TEST_P(TreeAllocation, UnclesUseDifferentChannelsThanNephews) {
  // Problem 3: nodes one hop apart in depth must not share channels when
  // within interference range. Structurally: a node's family channel
  // differs from its grandchildren-side channels via three-hop uniqueness,
  // and sibling subtrees are separated at assignment time.
  const auto nodes = build(GetParam());
  for (const auto& n : nodes) {
    for (int c1 : n.children) {
      for (int c2 : n.children) {
        if (c1 != c2) {
          EXPECT_NE(nodes[c1].family, nodes[c2].family);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Branching, TreeAllocation, ::testing::Values(1, 2));

TEST(ChannelAlloc, RequiresMinimumOffsets) {
  EXPECT_DEATH(ChannelAllocator(3, 0), "");
}

}  // namespace
}  // namespace gttsch
