// Island-parallel equivalence: stepping interference islands concurrently
// (Simulator::set_parallel fed by the Medium's partition) must be
// *observably pure* — bit-identical MAC counters, Medium stats, RunStats,
// radio duty times and recovery accounting versus the sequential reference
// mode (parallel_islands = 0 / GTTSCH_FORCE_SEQUENTIAL) — across every
// scheduler, both stepping modes, and mobility/crashloop churn.
//
// Event counts are deliberately NOT compared: the medium keeps one drain
// rendezvous per (channel, end) per island shard, so the parallel run may
// schedule a different (still deterministic) number of events.
#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "mac/tsch_mac.hpp"
#include "phy/dynamic_link.hpp"
#include "scenario/experiment.hpp"
#include "scenario/network.hpp"
#include "scenario/trace.hpp"
#include "sim/simulator.hpp"
#include "stats/run_stats.hpp"

namespace gttsch {
namespace {

using namespace literals;

struct NodeSnapshot {
  MacCounters mac;
  TimeUs radio_on = 0;
  TimeUs radio_tx = 0;
  TimeUs radio_rx = 0;
  Asn asn = 0;
  std::uint64_t app_generated = 0;
  bool joined = false;
};

struct ModeResult {
  RunMetrics metrics;
  MediumStats medium;
  std::map<NodeId, NodeSnapshot> nodes;
  std::uint32_t ctx_count = 1;
  bool fully_formed = false;
};

/// Mirrors run_scenario(), but drives Simulator::set_parallel directly so
/// the test exercises real island lanes even on a small CI machine
/// (run_scenario's available_island_workers clamp would demote to
/// sequential on a 1-2 core runner and the comparison would be vacuous).
ModeResult run_mode(const ScenarioConfig& sc, std::uint64_t seed, int lanes,
                    bool per_slot = false,
                    const std::function<void(Network&)>& setup = nullptr) {
  const TimeUs measure_end = sc.warmup + sc.measure;
  RunStats stats(sc.warmup, measure_end);
  auto nc = sc.make_node_config();
  nc.mac.per_slot_stepping = per_slot;
  const TopologySpec topology = sc.make_topology();
  Trace trace;
  std::string trace_error;
  if (!sc.make_trace(topology, &trace, &trace_error)) {
    ADD_FAILURE() << "trace: " << trace_error;
    return {};
  }
  DynamicLinkModel* failures = nullptr;
  Network net(seed, scenario_link_model_factory(sc, trace, &failures), topology, nc,
              &stats);
  TracePlayer player(net, std::move(trace), failures);
  if (lanes > 1) {
    net.sim().set_parallel(lanes, &net.medium());
    stats.set_concurrent(true, &net.sim());
  }
  net.sim().at(sc.warmup, [&stats] { stats.begin_measurement(); });
  net.sim().at(measure_end, [&stats] { stats.end_measurement(); });
  net.start();
  player.start();
  if (setup) setup(net);
  net.medium().reset_stats();
  net.sim().run_until(measure_end + sc.drain);

  ModeResult out;
  for (const auto& [id, node] : net.nodes()) {
    stats.set_joined(id, node->is_root() || node->rpl().joined());
    NodeSnapshot snap;
    snap.mac = node->mac().counters();
    snap.radio_on = node->radio().on_time();
    snap.radio_tx = node->radio().tx_time();
    snap.radio_rx = node->radio().rx_time();
    snap.asn = node->mac().asn();
    snap.app_generated = node->app_generated();
    snap.joined = node->is_root() || node->rpl().joined();
    out.nodes.emplace(id, snap);
  }
  out.metrics = stats.finalize();
  out.medium = net.medium().stats();
  out.ctx_count = net.sim().ctx_count();
  out.fully_formed = net.fully_formed();
  return out;
}

void expect_identical(const ModeResult& par, const ModeResult& ref) {
  // MAC counters, radio times and ASN per node: exact.
  ASSERT_EQ(par.nodes.size(), ref.nodes.size());
  for (const auto& [id, p] : par.nodes) {
    SCOPED_TRACE(::testing::Message() << "node " << id);
    const NodeSnapshot& r = ref.nodes.at(id);
    EXPECT_EQ(p.mac.unicast_tx_attempts, r.mac.unicast_tx_attempts);
    EXPECT_EQ(p.mac.unicast_success, r.mac.unicast_success);
    EXPECT_EQ(p.mac.unicast_drops, r.mac.unicast_drops);
    EXPECT_EQ(p.mac.retransmissions, r.mac.retransmissions);
    EXPECT_EQ(p.mac.broadcast_sent, r.mac.broadcast_sent);
    EXPECT_EQ(p.mac.eb_sent, r.mac.eb_sent);
    EXPECT_EQ(p.mac.rx_frames, r.mac.rx_frames);
    EXPECT_EQ(p.mac.rx_duplicates, r.mac.rx_duplicates);
    EXPECT_EQ(p.mac.acks_sent, r.mac.acks_sent);
    EXPECT_EQ(p.radio_on, r.radio_on);
    EXPECT_EQ(p.radio_tx, r.radio_tx);
    EXPECT_EQ(p.radio_rx, r.radio_rx);
    EXPECT_EQ(p.asn, r.asn);
    EXPECT_EQ(p.app_generated, r.app_generated);
    EXPECT_EQ(p.joined, r.joined);
  }

  // Medium stats: exact (same per-receiver RNG draw sequences).
  EXPECT_EQ(par.medium.transmissions, ref.medium.transmissions);
  EXPECT_EQ(par.medium.deliveries, ref.medium.deliveries);
  EXPECT_EQ(par.medium.collision_losses, ref.medium.collision_losses);
  EXPECT_EQ(par.medium.prr_losses, ref.medium.prr_losses);

  // RunStats: bit-identical doubles (the concurrent op-log replays in the
  // exact sequential event order, so FP accumulation order is the same).
  EXPECT_EQ(par.metrics.pdr_percent, ref.metrics.pdr_percent);
  EXPECT_EQ(par.metrics.avg_delay_ms, ref.metrics.avg_delay_ms);
  EXPECT_EQ(par.metrics.p95_delay_ms, ref.metrics.p95_delay_ms);
  EXPECT_EQ(par.metrics.loss_per_minute, ref.metrics.loss_per_minute);
  EXPECT_EQ(par.metrics.duty_cycle_percent, ref.metrics.duty_cycle_percent);
  EXPECT_EQ(par.metrics.queue_loss_per_node, ref.metrics.queue_loss_per_node);
  EXPECT_EQ(par.metrics.throughput_per_minute, ref.metrics.throughput_per_minute);
  EXPECT_EQ(par.metrics.generated, ref.metrics.generated);
  EXPECT_EQ(par.metrics.delivered, ref.metrics.delivered);
  EXPECT_EQ(par.metrics.queue_drops, ref.metrics.queue_drops);
  EXPECT_EQ(par.metrics.mac_drops, ref.metrics.mac_drops);
  EXPECT_EQ(par.metrics.no_route_drops, ref.metrics.no_route_drops);
  EXPECT_EQ(par.metrics.mean_hops, ref.metrics.mean_hops);
  EXPECT_EQ(par.metrics.nodes_joined, ref.metrics.nodes_joined);
  EXPECT_EQ(par.fully_formed, ref.fully_formed);

  // Churn-phase split + recovery accounting ride the same event stream.
  EXPECT_EQ(par.metrics.pre_pdr_percent, ref.metrics.pre_pdr_percent);
  EXPECT_EQ(par.metrics.churn_pdr_percent, ref.metrics.churn_pdr_percent);
  EXPECT_EQ(par.metrics.post_pdr_percent, ref.metrics.post_pdr_percent);
  EXPECT_EQ(par.metrics.node_failures, ref.metrics.node_failures);
  EXPECT_EQ(par.metrics.node_revivals, ref.metrics.node_revivals);
  EXPECT_EQ(par.metrics.node_rejoins, ref.metrics.node_rejoins);
  EXPECT_EQ(par.metrics.orphan_intervals, ref.metrics.orphan_intervals);
  EXPECT_EQ(par.metrics.recovery_rejoin_s, ref.metrics.recovery_rejoin_s);
  EXPECT_EQ(par.metrics.recovery_first_delivery_s,
            ref.metrics.recovery_first_delivery_s);
  EXPECT_EQ(par.metrics.recovery_ttr_s, ref.metrics.recovery_ttr_s);
  EXPECT_EQ(par.metrics.recovery_ttr_censored, ref.metrics.recovery_ttr_censored);
}

/// Fig 8 defaults, shortened: two DODAGs 30 km apart — two genuine
/// interference islands the partitioner must find and step concurrently.
ScenarioConfig two_dodag_config(const std::string& kind) {
  ScenarioConfig sc;
  sc.scheduler = kind;
  sc.dodag_count = 2;
  sc.nodes_per_dodag = 7;  // 14 nodes total
  sc.traffic_ppm = 120.0;
  sc.warmup = 120_s;
  sc.measure = 120_s;
  sc.drain = 10_s;
  return sc;
}

TEST(ParallelIslands, AllFourSchedulersTwoDodags) {
  for (const char* kind : {"gt-tsch", "orchestra", "alice", "emsf"}) {
    SCOPED_TRACE(::testing::Message() << "scheduler " << kind);
    const ScenarioConfig sc = two_dodag_config(kind);
    const ModeResult par = run_mode(sc, 1000, /*lanes=*/3);
    const ModeResult ref = run_mode(sc, 1000, /*lanes=*/0);
    // The partition actually engaged: two islands + the global context.
    EXPECT_GE(par.ctx_count, 3u);
    EXPECT_EQ(ref.ctx_count, 1u);
    expect_identical(par, ref);
  }
}

TEST(ParallelIslands, PerSlotSteppingReference) {
  // The per-slot MAC (no idle-slot skipping) exercises far more same-time
  // slot-boundary events per island; ordering keys must keep it identical.
  const ScenarioConfig sc = two_dodag_config("gt-tsch");
  const ModeResult par = run_mode(sc, 1017, /*lanes=*/3, /*per_slot=*/true);
  const ModeResult ref = run_mode(sc, 1017, /*lanes=*/0, /*per_slot=*/true);
  expect_identical(par, ref);
}

TEST(ParallelIslands, MobilityTraceSplitsAndMergesIslands) {
  // Random-walk movers inside each DODAG plus one mid-run failure: moves
  // dirty the link cache, the partition epoch advances, and islands can
  // split (a mover walks out of range) and re-merge. Every repartition
  // re-homes in-flight transmissions and drains; equivalence must survive
  // all of it. Two seeds, two schedulers.
  ScenarioConfig sc = two_dodag_config("gt-tsch");
  sc.trace_kind = TraceKind::kRandomWalk;
  sc.trace_seed = 42;
  sc.trace_movers = 4;
  sc.trace_speed_mps = 3.0;
  sc.trace_interval_s = 5.0;
  sc.trace_fail_count = 1;
  sc.trace_fail_at_s = 180.0;  // mid-measurement
  for (const char* kind : {"gt-tsch", "alice"}) {
    sc.scheduler = kind;
    for (const std::uint64_t seed : {4000ull, 4017ull}) {
      SCOPED_TRACE(::testing::Message() << kind << " seed " << seed);
      const ModeResult par = run_mode(sc, seed, /*lanes=*/4);
      const ModeResult ref = run_mode(sc, seed, /*lanes=*/0);
      expect_identical(par, ref);
    }
  }
}

TEST(ParallelIslands, CrashloopTraceWithRevivals) {
  // Crash-looping nodes (fail -> dead window -> revive -> beacon-scan
  // rejoin) stress the ScopedOwner entry points: fail() and reboot() home
  // a node's whole causal chain to its island, and the recovery pipeline
  // (orphan intervals, rejoin/TTR sums) replays through the op-log.
  ScenarioConfig sc = two_dodag_config("gt-tsch");
  sc.measure = 180_s;
  sc.trace_kind = TraceKind::kCrashloop;
  sc.trace_seed = 7;
  sc.trace_fail_count = 2;
  sc.trace_down_s = 20.0;
  sc.trace_cycle_s = 90.0;
  for (const char* kind : {"gt-tsch", "orchestra"}) {
    sc.scheduler = kind;
    SCOPED_TRACE(::testing::Message() << "scheduler " << kind);
    const ModeResult par = run_mode(sc, 5000, /*lanes=*/3);
    const ModeResult ref = run_mode(sc, 5000, /*lanes=*/0);
    expect_identical(par, ref);
    EXPECT_GT(par.metrics.node_failures, 0u);
    EXPECT_GT(par.metrics.node_revivals, 0u);
  }
}

TEST(ParallelIslands, SingleIslandDemotesGracefully) {
  // One DODAG: every node interferes with every other, so the partition
  // has a single island and parallel stepping adds lanes it cannot use.
  // Results must still match the sequential reference exactly.
  ScenarioConfig sc = two_dodag_config("gt-tsch");
  sc.dodag_count = 1;
  const ModeResult par = run_mode(sc, 1000, /*lanes=*/4);
  const ModeResult ref = run_mode(sc, 1000, /*lanes=*/0);
  expect_identical(par, ref);
}

TEST(ParallelIslands, RunScenarioHonorsParallelIslandsConfig) {
  // The public entry point: ScenarioConfig::parallel_islands versus the
  // sequential default must agree metric for metric. (On a small machine
  // available_island_workers may demote the run to sequential — the
  // comparison is then trivially true, which is exactly the contract.)
  ScenarioConfig sc = two_dodag_config("gt-tsch");
  ScenarioConfig par_sc = sc;
  par_sc.parallel_islands = 3;
  const ExperimentResult ref = run_scenario(sc);
  const ExperimentResult par = run_scenario(par_sc);
  EXPECT_EQ(par.metrics.pdr_percent, ref.metrics.pdr_percent);
  EXPECT_EQ(par.metrics.avg_delay_ms, ref.metrics.avg_delay_ms);
  EXPECT_EQ(par.metrics.p95_delay_ms, ref.metrics.p95_delay_ms);
  EXPECT_EQ(par.metrics.duty_cycle_percent, ref.metrics.duty_cycle_percent);
  EXPECT_EQ(par.metrics.generated, ref.metrics.generated);
  EXPECT_EQ(par.metrics.delivered, ref.metrics.delivered);
  EXPECT_EQ(par.metrics.nodes_joined, ref.metrics.nodes_joined);
  EXPECT_EQ(par.medium.transmissions, ref.medium.transmissions);
  EXPECT_EQ(par.medium.deliveries, ref.medium.deliveries);
  EXPECT_EQ(par.fully_formed, ref.fully_formed);
}

TEST(ParallelIslands, ForceSequentialEnvWins) {
  // GTTSCH_FORCE_SEQUENTIAL (non-empty, non-"0") overrides any lane
  // request — the escape hatch the README documents for debugging.
  ScenarioConfig sc = two_dodag_config("gt-tsch");
  sc.measure = 60_s;
  sc.parallel_islands = 4;
  ::setenv("GTTSCH_FORCE_SEQUENTIAL", "1", 1);
  const ExperimentResult forced = run_scenario(sc);
  ::unsetenv("GTTSCH_FORCE_SEQUENTIAL");
  sc.parallel_islands = 0;
  const ExperimentResult ref = run_scenario(sc);
  EXPECT_EQ(forced.metrics.pdr_percent, ref.metrics.pdr_percent);
  EXPECT_EQ(forced.metrics.delivered, ref.metrics.delivered);
  EXPECT_EQ(forced.medium.transmissions, ref.medium.transmissions);
}

}  // namespace
}  // namespace gttsch
