// Unit tests for util: RNG determinism/distribution, tables, CSV, flags.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>

#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/types.hpp"

namespace gttsch {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIndependence) {
  Rng parent(7);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (c1.next_u64() == c2.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(9), b(9);
  Rng fa = a.fork(5), fb = b.fork(5);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(fa.next_u64(), fb.next_u64());
}

TEST(Rng, UniformBoundRespected) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.uniform(17), 17u);
}

TEST(Rng, UniformZeroBound) {
  Rng r(3);
  EXPECT_EQ(r.uniform(0), 0u);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng r(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformDoubleMeanNearHalf) {
  Rng r(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.uniform_double();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, BernoulliExtremes) {
  Rng r(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng r(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (r.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng r(23);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal(5.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.25);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(TimeLiterals, Conversions) {
  using namespace literals;
  EXPECT_EQ(1_s, 1000000);
  EXPECT_EQ(15_ms, 15000);
  EXPECT_EQ(2_min, 120000000);
  EXPECT_DOUBLE_EQ(us_to_ms(1500), 1.5);
  EXPECT_DOUBLE_EQ(us_to_s(2500000), 2.5);
  EXPECT_DOUBLE_EQ(us_to_min(90000000), 1.5);
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"long-name", "2.50"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("long-name"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TablePrinter, NumberFormatting) {
  EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::num(static_cast<std::int64_t>(42)), "42");
  EXPECT_EQ(TablePrinter::num(99.5, 0), "100");
}

TEST(TablePrinter, ShortRowsPadded) {
  TablePrinter t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NO_THROW(t.to_string());
}

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/gttsch_test.csv";
  {
    CsvWriter w(path, {"a", "b"});
    w.add_row({"1", "2"});
    w.add_row({"x,y", "quote\"d"});
    EXPECT_TRUE(w.ok());
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "\"x,y\",\"quote\"\"d\"");
  std::remove(path.c_str());
}

TEST(Flags, ParsesEqualsAndSpaceForms) {
  // Space-form flags consume the next non-flag token, so a bare boolean
  // flag must come last (or use --flag=true).
  const char* argv[] = {"prog", "--alpha=2.5", "--name", "abc", "pos", "--flag"};
  Flags f(6, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(f.get_double("alpha", 0.0), 2.5);
  EXPECT_EQ(f.get("name", ""), "abc");
  EXPECT_TRUE(f.get_bool("flag", false));
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "pos");
}

TEST(Flags, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  Flags f(1, const_cast<char**>(argv));
  EXPECT_EQ(f.get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(f.get_double("x", 1.5), 1.5);
  EXPECT_FALSE(f.get_bool("b", false));
  EXPECT_FALSE(f.has("missing"));
}

TEST(Flags, UnknownTracking) {
  const char* argv[] = {"prog", "--used=1", "--typo=2"};
  Flags f(3, const_cast<char**>(argv));
  (void)f.get_int("used", 0);
  const auto unknown = f.unknown();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(Flags, BoolSpellings) {
  const char* argv[] = {"prog", "--a=true", "--b=0", "--c=yes", "--d=off"};
  Flags f(5, const_cast<char**>(argv));
  EXPECT_TRUE(f.get_bool("a", false));
  EXPECT_FALSE(f.get_bool("b", true));
  EXPECT_TRUE(f.get_bool("c", false));
  EXPECT_FALSE(f.get_bool("d", true));
}

}  // namespace
}  // namespace gttsch
