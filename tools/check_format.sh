#!/bin/sh
# clang-format dry run over the C++ tree; exits nonzero when any file
# needs reformatting. Wired into CI as a non-blocking step — style drift
# is reported, not build-breaking. Run `tools/check_format.sh --fix` to
# apply the formatting in place.
set -u
cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
    echo "check_format: clang-format not found; skipping" >&2
    exit 0
fi

mode="--dry-run"
if [ "${1:-}" = "--fix" ]; then
    mode="-i"
fi

status=0
for f in $(find src tests tools bench examples -name '*.cpp' -o -name '*.hpp' | sort); do
    if ! clang-format $mode --Werror "$f" 2>/dev/null; then
        echo "needs formatting: $f"
        status=1
    fi
done

if [ "$status" -eq 0 ]; then
    echo "check_format: all files clean"
else
    echo "check_format: run tools/check_format.sh --fix to apply" >&2
fi
exit $status
