#!/usr/bin/env python3
"""Validate telemetry JSONL files emitted by gt_campaign --telemetry-dir.

Usage: check_telemetry.py FILE.jsonl [FILE.jsonl ...]

Checks, per file:
  * every line parses as one JSON object,
  * every record has a numeric "t_s" and a known "type"
    (sample / probe / event / summary),
  * timestamps are monotone non-decreasing across the stream,
  * type-specific schema keys are present (samples carry the gauge
    panel, probes carry origin/seq/latency_ms, events carry event/node),
  * the stream contains at least one sample and ends with the summary.

Exit codes: 0 all files valid, 1 validation failure, 2 unreadable file
or bad usage.
"""

import json
import sys

KNOWN_TYPES = {"sample", "probe", "event", "summary"}
REQUIRED_KEYS = {
    "sample": ("joined", "queue", "tx_cells", "mean_etx", "duty_percent",
               "drops", "probes_sent", "probes_delivered"),
    "probe": ("origin", "seq", "latency_ms", "hops"),
    "event": ("event", "node"),
    "summary": ("samples", "events", "events_dropped", "probes_sent",
                "probes_delivered"),
}

# Extra keys required per event name (trace grammar v2: link episodes name
# their peer, prr overrides carry the probability).
EVENT_EXTRA_KEYS = {
    "trace_prr": ("peer", "prr"),
    "trace_pause": ("peer",),
    "trace_resume": ("peer",),
}


def check_file(path):
    """Returns a list of problem strings (empty = valid)."""
    problems = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        raise SystemExit(f"check_telemetry: cannot read {path}: {e}")

    last_t = None
    counts = {t: 0 for t in KNOWN_TYPES}
    last_type = None
    for i, line in enumerate(lines, start=1):
        if not line.strip():
            problems.append(f"line {i}: empty line")
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as e:
            problems.append(f"line {i}: not JSON ({e})")
            continue
        if not isinstance(record, dict):
            problems.append(f"line {i}: not a JSON object")
            continue
        t_s = record.get("t_s")
        if not isinstance(t_s, (int, float)):
            problems.append(f"line {i}: missing numeric t_s")
        elif last_t is not None and t_s < last_t:
            problems.append(f"line {i}: t_s {t_s} < previous {last_t}")
        else:
            last_t = t_s
        kind = record.get("type")
        if kind not in KNOWN_TYPES:
            problems.append(f"line {i}: unknown type {kind!r}")
            continue
        counts[kind] += 1
        last_type = kind
        missing = [k for k in REQUIRED_KEYS[kind] if k not in record]
        if missing:
            problems.append(f"line {i}: {kind} record missing {missing}")
        if kind == "event":
            name = record.get("event")
            extra = [k for k in EVENT_EXTRA_KEYS.get(name, ()) if k not in record]
            if extra:
                problems.append(f"line {i}: {name} event missing {extra}")
            prr = record.get("prr")
            if name == "trace_prr" and not (
                isinstance(prr, (int, float)) and 0.0 <= prr <= 1.0
            ):
                problems.append(f"line {i}: trace_prr value {prr!r} not in [0, 1]")

    if not lines:
        problems.append("file is empty")
    if counts["sample"] == 0:
        problems.append("no sample records")
    if counts["summary"] != 1 or last_type != "summary":
        problems.append("stream must end with exactly one summary record")
    return problems


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        problems = check_file(path)
        if problems:
            failed = True
            for p in problems[:20]:
                print(f"{path}: {p}", file=sys.stderr)
            if len(problems) > 20:
                print(f"{path}: ... {len(problems) - 20} more", file=sys.stderr)
        else:
            print(f"{path}: OK")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
