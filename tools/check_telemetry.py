#!/usr/bin/env python3
"""Validate telemetry JSONL files emitted by gt_campaign --telemetry-dir,
or campaign report JSON files written by gt_campaign --out.

Usage: check_telemetry.py FILE [FILE ...]

A file whose first non-space byte is "[" is treated as a campaign report
(PREFIX.json); anything else as a telemetry JSONL stream.

Telemetry checks, per file:
  * every line parses as one JSON object,
  * every record has a numeric "t_s" and a known "type"
    (sample / probe / event / summary),
  * timestamps are monotone non-decreasing across the stream,
  * type-specific schema keys are present (samples carry the gauge
    panel, probes carry origin/seq/latency_ms, events carry event/node),
  * the stream contains at least one sample and ends with the summary.

Report checks, per point object (schema only, no metric semantics):
  * required keys present (label/runs/status/failed_jobs/failure_kinds),
  * status is one of ok/failed/empty and consistent with runs/failed_jobs,
  * failure_kinds counts are non-negative and sum to failed_jobs.

Exit codes: 0 all files valid, 1 validation failure, 2 unreadable file
or bad usage.
"""

import json
import sys

KNOWN_TYPES = {"sample", "probe", "event", "summary"}
REQUIRED_KEYS = {
    "sample": ("joined", "queue", "tx_cells", "mean_etx", "duty_percent",
               "drops", "probes_sent", "probes_delivered"),
    "probe": ("origin", "seq", "latency_ms", "hops"),
    "event": ("event", "node"),
    "summary": ("samples", "events", "events_dropped", "probes_sent",
                "probes_delivered"),
}

# Extra keys required per event name (trace grammar v2: link episodes name
# their peer, prr overrides carry the probability).
EVENT_EXTRA_KEYS = {
    "trace_prr": ("peer", "prr"),
    "trace_pause": ("peer",),
    "trace_resume": ("peer",),
}


def check_file(path):
    """Returns a list of problem strings (empty = valid)."""
    problems = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        raise SystemExit(f"check_telemetry: cannot read {path}: {e}")

    last_t = None
    counts = {t: 0 for t in KNOWN_TYPES}
    last_type = None
    for i, line in enumerate(lines, start=1):
        if not line.strip():
            problems.append(f"line {i}: empty line")
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as e:
            problems.append(f"line {i}: not JSON ({e})")
            continue
        if not isinstance(record, dict):
            problems.append(f"line {i}: not a JSON object")
            continue
        t_s = record.get("t_s")
        if not isinstance(t_s, (int, float)):
            problems.append(f"line {i}: missing numeric t_s")
        elif last_t is not None and t_s < last_t:
            problems.append(f"line {i}: t_s {t_s} < previous {last_t}")
        else:
            last_t = t_s
        kind = record.get("type")
        if kind not in KNOWN_TYPES:
            problems.append(f"line {i}: unknown type {kind!r}")
            continue
        counts[kind] += 1
        last_type = kind
        missing = [k for k in REQUIRED_KEYS[kind] if k not in record]
        if missing:
            problems.append(f"line {i}: {kind} record missing {missing}")
        if kind == "event":
            name = record.get("event")
            extra = [k for k in EVENT_EXTRA_KEYS.get(name, ()) if k not in record]
            if extra:
                problems.append(f"line {i}: {name} event missing {extra}")
            prr = record.get("prr")
            if name == "trace_prr" and not (
                isinstance(prr, (int, float)) and 0.0 <= prr <= 1.0
            ):
                problems.append(f"line {i}: trace_prr value {prr!r} not in [0, 1]")

    if not lines:
        problems.append("file is empty")
    if counts["sample"] == 0:
        problems.append("no sample records")
    if counts["summary"] != 1 or last_type != "summary":
        problems.append("stream must end with exactly one summary record")
    return problems


REPORT_REQUIRED_KEYS = ("label", "coords", "runs", "fully_formed_runs",
                        "status", "failed_jobs", "failure_kinds", "metrics")
REPORT_STATUSES = {"ok", "failed", "empty"}
FAILURE_KIND_KEYS = ("crashed", "timeout", "failed")


def check_report(path):
    """Schema check for a gt_campaign report JSON (the failure summary
    block in particular). Returns a list of problem strings."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            document = json.load(f)
    except OSError as e:
        raise SystemExit(f"check_telemetry: cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        return [f"not JSON ({e})"]

    if not isinstance(document, list):
        return ["report must be a JSON array of point objects"]
    if not document:
        return ["report contains no points"]
    problems = []
    for i, point in enumerate(document):
        where = f"point {i}"
        if not isinstance(point, dict):
            problems.append(f"{where}: not a JSON object")
            continue
        if isinstance(point.get("label"), str) and point["label"]:
            where = f"point {i} ({point['label']})"
        missing = [k for k in REPORT_REQUIRED_KEYS if k not in point]
        if missing:
            problems.append(f"{where}: missing {missing}")
            continue
        runs = point["runs"]
        failed_jobs = point["failed_jobs"]
        status = point["status"]
        kinds = point["failure_kinds"]
        if not isinstance(runs, int) or runs < 0:
            problems.append(f"{where}: runs {runs!r} not a non-negative int")
            continue
        if not isinstance(failed_jobs, int) or failed_jobs < 0:
            problems.append(
                f"{where}: failed_jobs {failed_jobs!r} not a non-negative int")
            continue
        if status not in REPORT_STATUSES:
            problems.append(f"{where}: unknown status {status!r}")
        elif runs > 0 and status != "ok":
            problems.append(f"{where}: runs {runs} > 0 but status {status!r}")
        elif runs == 0 and failed_jobs > 0 and status != "failed":
            problems.append(
                f"{where}: all {failed_jobs} jobs failed but status {status!r}")
        if not isinstance(kinds, dict):
            problems.append(f"{where}: failure_kinds is not an object")
            continue
        unknown = [k for k in kinds if k not in FAILURE_KIND_KEYS]
        if unknown:
            problems.append(f"{where}: unknown failure kinds {unknown}")
        bad = [k for k, v in kinds.items()
               if not isinstance(v, int) or v < 0]
        if bad:
            problems.append(f"{where}: non-count failure kinds {bad}")
            continue
        total = sum(kinds.get(k, 0) for k in FAILURE_KIND_KEYS)
        if total != failed_jobs:
            problems.append(
                f"{where}: failure_kinds sum {total} != failed_jobs {failed_jobs}")
    return problems


def is_report(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            head = f.read(64)
    except OSError as e:
        raise SystemExit(f"check_telemetry: cannot read {path}: {e}")
    return head.lstrip()[:1] == "["


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        problems = check_report(path) if is_report(path) else check_file(path)
        if problems:
            failed = True
            for p in problems[:20]:
                print(f"{path}: {p}", file=sys.stderr)
            if len(problems) > 20:
                print(f"{path}: ... {len(problems) - 20} more", file=sys.stderr)
        else:
            print(f"{path}: OK")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
