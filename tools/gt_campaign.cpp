// gt_campaign: one-command parallel experiment campaigns.
//
// Expands a declarative parameter grid over ScenarioConfig fields into
// (grid point x seed) jobs, runs them on a worker pool, and reports
// seed-aggregated metrics (mean / stddev / 95% CI) as a table plus
// optional CSV/JSON artifacts.
//
// Example — the Fig 8 traffic-load sweep, both schedulers, in parallel:
//   gt_campaign --grid "scheduler=gt-tsch,orchestra;traffic_ppm=30,75,120,165"
//               --seeds 1000,1017,1034 --jobs $(nproc) --out fig8
#include <cstdio>
#include <cstdlib>

#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

using namespace gttsch;

void print_usage() {
  std::printf(
      "Usage: gt_campaign [options]\n"
      "  --grid SPEC    axes as \"field=v1,v2;field2=v3,v4\" (cartesian product)\n"
      "  --set SPEC     base-config overrides, same \"field=v;field2=v\" grammar\n"
      "  --seeds LIST   comma-separated seed list (default: the bench seeds,\n"
      "                 count adjustable via GTTSCH_SEEDS)\n"
      "  --jobs N       worker threads (default: hardware concurrency)\n"
      "  --out PREFIX   write PREFIX.csv and PREFIX.json artifacts\n"
      "  --quiet        suppress per-job progress on stderr\n"
      "  --list-fields  print the sweepable ScenarioConfig fields and exit\n");
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);

  if (flags.get_bool("help", false)) {
    print_usage();
    return 0;
  }
  if (flags.get_bool("list-fields", false)) {
    for (const std::string& name : campaign::known_fields()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }

  campaign::CampaignSpec spec;
  std::string error;

  // Base-config overrides reuse the axis grammar with single values.
  std::vector<campaign::Axis> overrides;
  if (!campaign::parse_grid(flags.get("set", ""), &overrides, &error)) {
    std::fprintf(stderr, "gt_campaign: --set: %s\n", error.c_str());
    return 2;
  }
  for (const campaign::Axis& o : overrides) {
    if (o.values.size() != 1) {
      std::fprintf(stderr, "gt_campaign: --set %s: exactly one value expected\n",
                   o.field.c_str());
      return 2;
    }
    if (!campaign::apply_field(spec.base, o.field, o.values.front(), &error)) {
      std::fprintf(stderr, "gt_campaign: --set: %s\n", error.c_str());
      return 2;
    }
  }

  if (!campaign::parse_grid(flags.get("grid", ""), &spec.axes, &error)) {
    std::fprintf(stderr, "gt_campaign: --grid: %s\n", error.c_str());
    return 2;
  }

  if (flags.has("seeds")) {
    if (!campaign::parse_seeds(flags.get("seeds", ""), &spec.seeds, &error)) {
      std::fprintf(stderr, "gt_campaign: --seeds: %s\n", error.c_str());
      return 2;
    }
  } else {
    spec.seeds = default_seeds();
  }

  campaign::RunnerOptions options;
  options.jobs = static_cast<int>(flags.get_int("jobs", 0));
  const bool quiet = flags.get_bool("quiet", false);
  if (!quiet) {
    options.on_progress = [](const campaign::Progress& p) {
      std::fprintf(stderr, "[campaign] %zu/%zu jobs done (point %zu, seed #%zu)\n",
                   p.completed, p.total, p.job->point_index, p.job->seed_index);
    };
  }

  const std::string out_prefix = flags.get("out", "");
  for (const std::string& flag : flags.unknown()) {
    std::fprintf(stderr, "gt_campaign: unknown flag --%s (see --help)\n",
                 flag.c_str());
    return 2;
  }

  campaign::CampaignResult result;
  if (!campaign::run_campaign(spec, options, &result, &error)) {
    std::fprintf(stderr, "gt_campaign: invalid campaign: %s\n", error.c_str());
    return 2;
  }

  TablePrinter table({"point", "runs", "PDR % (±sd)", "delay ms (±sd)",
                      "loss/min (±sd)", "duty % (±sd)", "qloss/node (±sd)",
                      "rx/min (±sd)"});
  auto cell = [](const campaign::SampleStats& s, int precision) {
    return TablePrinter::num(s.mean, precision) + " ±" +
           TablePrinter::num(s.stddev, precision);
  };
  for (const campaign::PointAggregate& a : result.aggregates) {
    table.add_row({a.label.empty() ? std::string("base") : a.label,
                   TablePrinter::num(static_cast<std::int64_t>(a.runs)),
                   cell(a.pdr_percent, 1), cell(a.avg_delay_ms, 0),
                   cell(a.loss_per_minute, 1), cell(a.duty_cycle_percent, 2),
                   cell(a.queue_loss_per_node, 1),
                   cell(a.throughput_per_minute, 0)});
  }
  table.print();

  if (!out_prefix.empty()) {
    const std::string csv_path = out_prefix + ".csv";
    const std::string json_path = out_prefix + ".json";
    if (!campaign::write_csv(csv_path, result.aggregates)) {
      std::fprintf(stderr, "gt_campaign: failed to write %s\n", csv_path.c_str());
      return 1;
    }
    if (!campaign::write_json(json_path, result.aggregates)) {
      std::fprintf(stderr, "gt_campaign: failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "[campaign] wrote %s and %s\n", csv_path.c_str(),
                 json_path.c_str());
  }
  return result.cancelled ? 1 : 0;
}
