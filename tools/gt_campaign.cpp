// gt_campaign: one-command parallel experiment campaigns, shardable
// across processes/hosts, resumable after a crash, and optionally
// adaptive in seed count.
//
// Expands a declarative parameter grid over ScenarioConfig fields into
// (grid point x seed) jobs, runs this process's shard of them on a
// worker pool, journals every completed job, and reports seed-aggregated
// metrics (mean / stddev / 95% CI) as a table plus optional CSV/JSON
// artifacts.
//
// Example — the Fig 8 traffic-load sweep split across two hosts:
//   host A: gt_campaign --grid "scheduler=gt-tsch,orchestra;traffic_ppm=30,75,120,165"
//                       --seeds 1000,1017,1034 --shard 0/2 --journal a.jsonl
//   host B: same with --shard 1/2 --journal b.jsonl
//   then:   gt_campaign merge --out fig8 a.jsonl b.jsonl
//
// Exit codes: 0 success, 1 runtime/I-O failure or cancellation, 2 bad
// usage (unknown flag/field, malformed value, mismatched journal).
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <set>

#include "campaign/journal.hpp"
#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "sixp/sf_registry.hpp"
#include "stats/telemetry.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

using namespace gttsch;

void print_usage() {
  std::printf(
      "Usage: gt_campaign [run] [options]\n"
      "       gt_campaign merge --out PREFIX JOURNAL.jsonl [JOURNAL.jsonl...]\n"
      "       gt_campaign validate [--set SPEC] [--grid SPEC] [--seeds LIST]\n"
      "\n"
      "Run options:\n"
      "  --grid SPEC    axes as \"field=v1,v2;field2=v3,v4\" (cartesian product)\n"
      "                 schedulers sweep like any field, e.g.\n"
      "                 \"scheduler=%s\";\n"
      "                 mobility/failure traces too, e.g.\n"
      "                 \"trace_kind=none,random-walk;trace_seed=1,2\" or\n"
      "                 \"trace=a.trace,b.trace\" (see --list-fields)\n"
      "  --set SPEC     base-config overrides, same \"field=v;field2=v\" grammar\n"
      "  --seeds LIST   comma-separated seed list (default: the bench seeds,\n"
      "                 count adjustable via GTTSCH_SEEDS)\n"
      "  --jobs N       worker threads (default: hardware concurrency)\n"
      "  --shard i/N    run only this shard's share of the jobs (default 0/1)\n"
      "  --journal PATH append one JSONL record per completed job\n"
      "  --resume PATH  skip jobs already in PATH, append new ones to it\n"
      "  --ci-rel FRAC  adaptive seeding: stop a grid point once the 95%% CI\n"
      "                 half-width of --metric is under FRAC * |mean|\n"
      "  --max-seeds N  adaptive cap per point (default: seed-list length)\n"
      "  --min-seeds N  never stop a point below N seeds (default 3)\n"
      "  --batch N      seeds added per adaptive wave (default 2)\n"
      "  --metric NAME  adaptive stopping metric (default pdr_percent)\n"
      "  --out PREFIX   write PREFIX.csv and PREFIX.json artifacts\n"
      "  --telemetry-dir DIR     write one telemetry JSONL per job into DIR\n"
      "                          (pointNNN_seedNN.jsonl: gauge samples, event\n"
      "                          trace, probe records; see README Observability)\n"
      "  --telemetry-period S    gauge sampling period in seconds (default 1)\n"
      "  --telemetry-probes N    probe-sender nodes per run (default 0; probes\n"
      "                          are excluded from the panel metrics)\n"
      "  --telemetry-probe-period S  per-sender probe period (default 10)\n"
      "  --quiet        suppress per-job progress on stderr\n"
      "  --list-fields  print the sweepable ScenarioConfig fields and exit\n"
      "  --list-metrics print the adaptive stopping metrics and exit\n"
      "\n"
      "merge combines per-shard journals into one aggregate report,\n"
      "bit-identical to an unsharded run over the same jobs.\n"
      "\n"
      "validate dry-runs the grid expansion and checks every resolved\n"
      "point's trace setup (file parse with line numbers, node ids against\n"
      "that point's topology, generator parameter ranges) without running\n"
      "any simulation. Exit 0 = sound, 2 = invalid (details on stderr).\n",
      SfRegistry::instance().names_joined(",").c_str());
}

int fail_usage(const char* what, const std::string& detail) {
  std::fprintf(stderr, "gt_campaign: %s: %s\n", what, detail.c_str());
  return 2;
}

void print_table(const std::vector<campaign::PointAggregate>& aggregates) {
  TablePrinter table({"point", "runs", "PDR % (±sd)", "delay ms (±sd)",
                      "loss/min (±sd)", "duty % (±sd)", "qloss/node (±sd)",
                      "rx/min (±sd)"});
  auto cell = [](const campaign::SampleStats& s, int precision) {
    return TablePrinter::num(s.mean, precision) + " ±" +
           TablePrinter::num(s.stddev, precision);
  };
  for (const campaign::PointAggregate& a : aggregates) {
    table.add_row({a.label.empty() ? std::string("base") : a.label,
                   TablePrinter::num(static_cast<std::int64_t>(a.runs)),
                   cell(a.pdr_percent, 1), cell(a.avg_delay_ms, 0),
                   cell(a.loss_per_minute, 1), cell(a.duty_cycle_percent, 2),
                   cell(a.queue_loss_per_node, 1),
                   cell(a.throughput_per_minute, 0)});
  }
  table.print();
}

/// Writes PREFIX.csv / PREFIX.json (atomically); returns the exit code.
int write_artifacts(const std::string& out_prefix,
                    const std::vector<campaign::PointAggregate>& aggregates) {
  if (out_prefix.empty()) return 0;
  const std::string csv_path = out_prefix + ".csv";
  const std::string json_path = out_prefix + ".json";
  if (!campaign::write_csv(csv_path, aggregates)) {
    std::fprintf(stderr, "gt_campaign: failed to write %s\n", csv_path.c_str());
    return 1;
  }
  if (!campaign::write_json(json_path, aggregates)) {
    std::fprintf(stderr, "gt_campaign: failed to write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "[campaign] wrote %s and %s\n", csv_path.c_str(),
               json_path.c_str());
  return 0;
}

/// `gt_campaign merge --out PREFIX journal...`: re-aggregate per-shard
/// journals into the report an unsharded run would have produced.
int run_merge(const Flags& flags, const std::vector<std::string>& journals) {
  const std::string out_prefix = flags.get("out", "");
  for (const std::string& flag : flags.unknown()) {
    return fail_usage("merge: unknown flag", "--" + flag + " (see --help)");
  }
  if (journals.empty()) {
    return fail_usage("merge", "at least one journal file is required");
  }
  std::vector<campaign::JournalRecord> records;
  std::string error;
  for (const std::string& path : journals) {
    std::vector<campaign::JournalRecord> shard_records;
    if (!campaign::read_journal(path, &shard_records, &error)) {
      return fail_usage("merge", error);
    }
    std::fprintf(stderr, "[merge] %s: %zu records\n", path.c_str(),
                 shard_records.size());
    records.insert(records.end(), shard_records.begin(), shard_records.end());
  }
  std::vector<campaign::PointAggregate> aggregates;
  if (!campaign::aggregate_records(records, &aggregates, &error)) {
    return fail_usage("merge", error);
  }
  if (aggregates.empty()) {
    return fail_usage("merge", "journals contain no records");
  }
  print_table(aggregates);
  return write_artifacts(out_prefix, aggregates);
}

/// Builds the campaign spec from --set / --grid / --seeds (shared by the
/// run and validate subcommands). Returns 0 on success, else the exit code.
int parse_spec_flags(const Flags& flags, campaign::CampaignSpec* spec) {
  std::string error;

  // Base-config overrides reuse the axis grammar with single values; a
  // repeated key would silently shadow an earlier override, so reject it.
  std::vector<campaign::Axis> overrides;
  if (!campaign::parse_grid(flags.get("set", ""), &overrides, &error)) {
    return fail_usage("--set", error);
  }
  std::set<std::string> override_keys;
  for (const campaign::Axis& o : overrides) {
    if (o.values.size() != 1) {
      return fail_usage("--set", o.field + ": exactly one value expected");
    }
    if (!override_keys.insert(o.field).second) {
      return fail_usage("--set", o.field + ": key appears twice");
    }
    if (!campaign::apply_field(spec->base, o.field, o.values.front(), &error)) {
      return fail_usage("--set", error);
    }
  }

  if (!campaign::parse_grid(flags.get("grid", ""), &spec->axes, &error)) {
    return fail_usage("--grid", error);
  }

  if (flags.has("seeds")) {
    if (!campaign::parse_seeds(flags.get("seeds", ""), &spec->seeds, &error)) {
      return fail_usage("--seeds", error);
    }
  } else {
    spec->seeds = default_seeds();
  }
  return 0;
}

/// `gt_campaign validate`: expand the grid and run the campaign's
/// pre-flight trace checks — file parse (with the offending line number),
/// per-point node-id/topology cross-check, generator parameter ranges —
/// then exit without simulating anything.
int run_validate(const Flags& flags) {
  campaign::CampaignSpec spec;
  const int code = parse_spec_flags(flags, &spec);
  if (code != 0) return code;
  for (const std::string& flag : flags.unknown()) {
    return fail_usage("validate: unknown flag", "--" + flag + " (see --help)");
  }
  std::string error;
  const std::vector<campaign::GridPoint> points = campaign::expand_grid(spec, &error);
  if (points.empty()) {
    return fail_usage("invalid campaign", error);
  }
  if (!campaign::validate_points_trace(points, &error)) {
    return fail_usage("invalid trace setup", error);
  }
  std::printf("validate: %zu point%s x %zu seed%s OK\n", points.size(),
              points.size() == 1 ? "" : "s", spec.seeds.size(),
              spec.seeds.size() == 1 ? "" : "s");
  return 0;
}

int run_campaign_command(const Flags& flags) {
  campaign::CampaignSpec spec;
  const int spec_code = parse_spec_flags(flags, &spec);
  if (spec_code != 0) return spec_code;
  std::string error;

  campaign::CampaignOptions options;
  const bool quiet = flags.get_bool("quiet", false);
  if (!quiet) {
    options.runner.on_progress = [](const campaign::Progress& p) {
      std::fprintf(stderr, "[campaign] %zu/%zu jobs done (point %zu, seed #%zu)\n",
                   p.completed, p.total, p.job->point_index, p.job->seed_index);
    };
  }

  if (!campaign::parse_campaign_flags(flags, &options, &error)) {
    return fail_usage("bad option", error);
  }

  // In-run telemetry: when --telemetry-dir is given, each job runs with a
  // private Telemetry recorder and writes DIR/pointNNN_seedNN.jsonl. The
  // sub-flags are meaningless without the directory, so reject them alone
  // rather than silently ignoring a half-typed request.
  const std::string telemetry_dir = flags.get("telemetry-dir", "");
  const double telemetry_period_s = flags.get_double("telemetry-period", 1.0);
  const double probe_period_s = flags.get_double("telemetry-probe-period", 10.0);
  const std::int64_t telemetry_probes = flags.get_int("telemetry-probes", 0);
  if (telemetry_dir.empty()) {
    for (const char* sub :
         {"telemetry-period", "telemetry-probes", "telemetry-probe-period"}) {
      if (flags.has(sub)) {
        return fail_usage(("--" + std::string(sub)).c_str(),
                          "requires --telemetry-dir");
      }
    }
  } else {
    if (telemetry_period_s <= 0.0) {
      return fail_usage("--telemetry-period", "must be > 0 seconds");
    }
    if (probe_period_s <= 0.0) {
      return fail_usage("--telemetry-probe-period", "must be > 0 seconds");
    }
    if (telemetry_probes < 0) {
      return fail_usage("--telemetry-probes", "must be >= 0");
    }
    std::error_code ec;
    std::filesystem::create_directories(telemetry_dir, ec);
    if (ec) {
      std::fprintf(stderr, "gt_campaign: cannot create %s: %s\n",
                   telemetry_dir.c_str(), ec.message().c_str());
      return 1;
    }
    TelemetryConfig telemetry_config;
    telemetry_config.sample_period =
        static_cast<TimeUs>(telemetry_period_s * 1e6);
    telemetry_config.probe_count = static_cast<int>(telemetry_probes);
    telemetry_config.probe_period = static_cast<TimeUs>(probe_period_s * 1e6);
    options.runner.run_job_fn = [telemetry_dir, telemetry_config](
                                    const campaign::Job& job) {
      Telemetry telemetry(telemetry_config);
      const ExperimentResult result = run_scenario(job.config, &telemetry);
      char name[48];
      std::snprintf(name, sizeof name, "point%03zu_seed%02zu.jsonl",
                    job.point_index, job.seed_index);
      const std::string path = telemetry_dir + "/" + name;
      // A failed artifact write must not poison the campaign result;
      // warn and keep the (already computed) metrics.
      if (!telemetry.write_jsonl(path)) {
        std::fprintf(stderr, "gt_campaign: failed to write %s\n", path.c_str());
      }
      return result;
    };
  }

  const std::string out_prefix = flags.get("out", "");
  for (const std::string& flag : flags.unknown()) {
    return fail_usage("unknown flag", "--" + flag + " (see --help)");
  }

  campaign::CampaignResult result;
  if (!campaign::run_campaign(spec, options, &result, &error)) {
    if (result.error_kind == campaign::CampaignErrorKind::kIo) {
      std::fprintf(stderr, "gt_campaign: %s\n", error.c_str());
      return 1;
    }
    return fail_usage("invalid campaign", error);
  }
  if (result.jobs_skipped > 0) {
    std::fprintf(stderr, "[campaign] resumed: %zu jobs from journal, %zu run now\n",
                 result.jobs_skipped, result.jobs_run);
  }

  print_table(result.aggregates);

  const int artifact_code = write_artifacts(out_prefix, result.aggregates);
  if (artifact_code != 0) return artifact_code;
  return result.cancelled ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);

  if (flags.get_bool("help", false)) {
    print_usage();
    return 0;
  }
  if (flags.get_bool("list-fields", false)) {
    for (const std::string& name : campaign::known_fields()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  if (flags.get_bool("list-metrics", false)) {
    for (const std::string& name : campaign::metric_names()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }

  // Subcommand dispatch. Stray positionals used to be silently ignored
  // (a typo'd invocation would run the full default campaign and exit 0);
  // now anything unrecognized is a usage error.
  std::vector<std::string> positional = flags.positional();
  if (!positional.empty() && positional.front() == "merge") {
    positional.erase(positional.begin());
    return run_merge(flags, positional);
  }
  if (!positional.empty() && positional.front() == "validate") {
    positional.erase(positional.begin());
    if (!positional.empty()) {
      return fail_usage("validate: unexpected argument",
                        "'" + positional.front() + "' (see --help)");
    }
    return run_validate(flags);
  }
  if (!positional.empty() && positional.front() == "run") {
    positional.erase(positional.begin());
  }
  if (!positional.empty()) {
    return fail_usage("unexpected argument",
                      "'" + positional.front() + "' (see --help)");
  }
  return run_campaign_command(flags);
}
