// gt_campaign: one-command parallel experiment campaigns, shardable
// across processes/hosts, resumable after a crash, and optionally
// adaptive in seed count.
//
// Expands a declarative parameter grid over ScenarioConfig fields into
// (grid point x seed) jobs, runs this process's shard of them on a
// worker pool, journals every completed job, and reports seed-aggregated
// metrics (mean / stddev / 95% CI) as a table plus optional CSV/JSON
// artifacts.
//
// Example — the Fig 8 traffic-load sweep split across two hosts:
//   host A: gt_campaign --grid "scheduler=gt-tsch,orchestra;traffic_ppm=30,75,120,165"
//                       --seeds 1000,1017,1034 --shard 0/2 --journal a.jsonl
//   host B: same with --shard 1/2 --journal b.jsonl
//   then:   gt_campaign merge --out fig8 a.jsonl b.jsonl
//
// Exit codes: 0 success, 1 runtime/I-O failure or cancellation, 2 bad
// usage (unknown flag/field, malformed value, mismatched journal),
// 3 campaign completed but quarantined at least one failed job,
// 130 interrupted (SIGINT/SIGTERM; partial artifacts are still written).
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <set>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include "campaign/isolate.hpp"
#include "campaign/journal.hpp"
#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "sixp/sf_registry.hpp"
#include "stats/telemetry.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

using namespace gttsch;

// Graceful shutdown: the first SIGINT/SIGTERM flips the cancel flag the
// runner polls between jobs — in-flight jobs finish, the journal stays
// valid, partial artifacts are written, and the process exits 130. A
// second signal hard-exits for users who really mean it.
std::atomic<bool> g_interrupted{false};
std::atomic<int> g_signal_count{0};

extern "C" void handle_interrupt(int /*signum*/) {
  if (g_signal_count.fetch_add(1) == 0) {
    g_interrupted.store(true);
  } else {
    _exit(130);  // async-signal-safe, unlike std::exit
  }
}

void install_signal_handlers() {
  std::signal(SIGINT, handle_interrupt);
  std::signal(SIGTERM, handle_interrupt);
}

/// Path of this binary, for re-entering via `run-job` in isolated mode.
/// /proc/self/exe survives PATH-relative invocation and cwd changes;
/// argv[0] is the portable fallback.
std::string self_exe_path(const char* argv0) {
#if defined(__linux__)
  char buf[4096];
  const ssize_t n = readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
#endif
  return argv0 != nullptr ? argv0 : "";
}

void print_usage() {
  std::printf(
      "Usage: gt_campaign [run] [options]\n"
      "       gt_campaign merge --out PREFIX JOURNAL.jsonl [JOURNAL.jsonl...]\n"
      "       gt_campaign validate [--set SPEC] [--grid SPEC] [--seeds LIST]\n"
      "\n"
      "Run options:\n"
      "  --grid SPEC    axes as \"field=v1,v2;field2=v3,v4\" (cartesian product)\n"
      "                 schedulers sweep like any field, e.g.\n"
      "                 \"scheduler=%s\";\n"
      "                 mobility/failure traces too, e.g.\n"
      "                 \"trace_kind=none,random-walk;trace_seed=1,2\" or\n"
      "                 \"trace=a.trace,b.trace\" (see --list-fields)\n"
      "  --set SPEC     base-config overrides, same \"field=v;field2=v\" grammar\n"
      "  --seeds LIST   comma-separated seed list (default: the bench seeds,\n"
      "                 count adjustable via GTTSCH_SEEDS)\n"
      "  --jobs N       worker threads (default: hardware concurrency)\n"
      "  --shard i/N    run only this shard's share of the jobs (default 0/1)\n"
      "  --journal PATH append one JSONL record per completed job\n"
      "  --resume PATH  skip jobs already in PATH, append new ones to it\n"
      "  --ci-rel FRAC  adaptive seeding: stop a grid point once the 95%% CI\n"
      "                 half-width of --metric is under FRAC * |mean|\n"
      "  --max-seeds N  adaptive cap per point (default: seed-list length)\n"
      "  --min-seeds N  never stop a point below N seeds (default 3)\n"
      "  --batch N      seeds added per adaptive wave (default 2)\n"
      "  --metric NAME  adaptive stopping metric (default pdr_percent)\n"
      "  --isolate      run each job in a forked child process, so a crash\n"
      "                 or OOM kill quarantines one job instead of killing\n"
      "                 the campaign (exit 3 when any job stays quarantined)\n"
      "  --job-timeout S  per-job wall-clock budget: isolated jobs are\n"
      "                 SIGKILLed on expiry; without --isolate an in-process\n"
      "                 watchdog aborts the run (both -> quarantine)\n"
      "  --retries N    re-run a failing job up to N times (exponential\n"
      "                 backoff) before quarantining it (default 0;\n"
      "                 requires --isolate or --job-timeout)\n"
      "  --retry-quarantined  with --resume: re-run quarantined journal\n"
      "                 records instead of keeping them failed\n"
      "  --out PREFIX   write PREFIX.csv and PREFIX.json artifacts\n"
      "  --telemetry-dir DIR     write one telemetry JSONL per job into DIR\n"
      "                          (pointNNN_seedNN.jsonl: gauge samples, event\n"
      "                          trace, probe records; see README Observability)\n"
      "  --telemetry-period S    gauge sampling period in seconds (default 1)\n"
      "  --telemetry-probes N    probe-sender nodes per run (default 0; probes\n"
      "                          are excluded from the panel metrics)\n"
      "  --telemetry-probe-period S  per-sender probe period (default 10)\n"
      "  --quiet        suppress per-job progress on stderr\n"
      "  --list-fields  print the sweepable ScenarioConfig fields and exit\n"
      "  --list-metrics print the adaptive stopping metrics and exit\n"
      "\n"
      "merge combines per-shard journals into one aggregate report,\n"
      "bit-identical to an unsharded run over the same jobs.\n"
      "\n"
      "validate dry-runs the grid expansion and checks every resolved\n"
      "point's trace setup (file parse with line numbers, node ids against\n"
      "that point's topology, generator parameter ranges) without running\n"
      "any simulation. Exit 0 = sound, 2 = invalid (details on stderr).\n"
      "\n"
      "Exit codes: 0 success, 1 runtime/I-O failure, 2 bad usage,\n"
      "3 completed with quarantined (failed) jobs, 130 interrupted.\n",
      SfRegistry::instance().names_joined(",").c_str());
}

int fail_usage(const char* what, const std::string& detail) {
  std::fprintf(stderr, "gt_campaign: %s: %s\n", what, detail.c_str());
  return 2;
}

void print_table(const std::vector<campaign::PointAggregate>& aggregates) {
  // The failed column only appears when some point actually quarantined a
  // job, keeping the healthy-path table (and everything that greps it)
  // unchanged.
  bool any_failed = false;
  for (const campaign::PointAggregate& a : aggregates) {
    if (a.runs_failed > 0) any_failed = true;
  }
  std::vector<std::string> columns{"point", "runs"};
  if (any_failed) columns.push_back("failed");
  for (const char* name : {"PDR % (±sd)", "delay ms (±sd)", "loss/min (±sd)",
                           "duty % (±sd)", "qloss/node (±sd)", "rx/min (±sd)"}) {
    columns.push_back(name);
  }
  TablePrinter table(columns);
  auto cell = [](const campaign::SampleStats& s, int precision) {
    return TablePrinter::num(s.mean, precision) + " ±" +
           TablePrinter::num(s.stddev, precision);
  };
  for (const campaign::PointAggregate& a : aggregates) {
    std::vector<std::string> row{a.label.empty() ? std::string("base") : a.label,
                                 TablePrinter::num(static_cast<std::int64_t>(a.runs))};
    if (any_failed) {
      row.push_back(TablePrinter::num(static_cast<std::int64_t>(a.runs_failed)));
    }
    for (std::string& value :
         std::vector<std::string>{cell(a.pdr_percent, 1), cell(a.avg_delay_ms, 0),
                                  cell(a.loss_per_minute, 1),
                                  cell(a.duty_cycle_percent, 2),
                                  cell(a.queue_loss_per_node, 1),
                                  cell(a.throughput_per_minute, 0)}) {
      row.push_back(std::move(value));
    }
    table.add_row(row);
  }
  table.print();
}

/// Per-point quarantine summary on stderr + the total; returns the count.
std::size_t print_failure_summary(
    const std::vector<campaign::PointAggregate>& aggregates) {
  std::size_t total = 0;
  for (const campaign::PointAggregate& a : aggregates) {
    total += static_cast<std::size_t>(a.runs_failed);
  }
  if (total == 0) return 0;
  std::fprintf(stderr, "[campaign] %zu job(s) quarantined after retries:\n",
               total);
  for (const campaign::PointAggregate& a : aggregates) {
    if (a.runs_failed == 0) continue;
    std::fprintf(stderr, "[campaign]   %s: %d failed (%s), %d ok\n",
                 a.label.empty() ? "base" : a.label.c_str(), a.runs_failed,
                 campaign::failure_kinds_label(a).c_str(), a.runs);
  }
  return total;
}

/// Writes PREFIX.csv / PREFIX.json (atomically); returns the exit code.
int write_artifacts(const std::string& out_prefix,
                    const std::vector<campaign::PointAggregate>& aggregates) {
  if (out_prefix.empty()) return 0;
  const std::string csv_path = out_prefix + ".csv";
  const std::string json_path = out_prefix + ".json";
  if (!campaign::write_csv(csv_path, aggregates)) {
    std::fprintf(stderr, "gt_campaign: failed to write %s\n", csv_path.c_str());
    return 1;
  }
  if (!campaign::write_json(json_path, aggregates)) {
    std::fprintf(stderr, "gt_campaign: failed to write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "[campaign] wrote %s and %s\n", csv_path.c_str(),
               json_path.c_str());
  return 0;
}

/// `gt_campaign merge --out PREFIX journal...`: re-aggregate per-shard
/// journals into the report an unsharded run would have produced.
int run_merge(const Flags& flags, const std::vector<std::string>& journals) {
  const std::string out_prefix = flags.get("out", "");
  for (const std::string& flag : flags.unknown()) {
    return fail_usage("merge: unknown flag", "--" + flag + " (see --help)");
  }
  if (journals.empty()) {
    return fail_usage("merge", "at least one journal file is required");
  }
  std::vector<campaign::JournalRecord> records;
  std::string error;
  for (const std::string& path : journals) {
    std::vector<campaign::JournalRecord> shard_records;
    if (!campaign::read_journal(path, &shard_records, &error)) {
      return fail_usage("merge", error);
    }
    std::fprintf(stderr, "[merge] %s: %zu records\n", path.c_str(),
                 shard_records.size());
    records.insert(records.end(), shard_records.begin(), shard_records.end());
  }
  std::vector<campaign::PointAggregate> aggregates;
  if (!campaign::aggregate_records(records, &aggregates, &error)) {
    return fail_usage("merge", error);
  }
  if (aggregates.empty()) {
    return fail_usage("merge", "journals contain no records");
  }
  print_table(aggregates);
  const int artifact_code = write_artifacts(out_prefix, aggregates);
  if (artifact_code != 0) return artifact_code;
  // Quarantined records survive the merge; surface them the same way a
  // run does so a scripted merge can branch on exit 3.
  return print_failure_summary(aggregates) > 0 ? 3 : 0;
}

/// Builds the campaign spec from --set / --grid / --seeds (shared by the
/// run and validate subcommands). Returns 0 on success, else the exit code.
int parse_spec_flags(const Flags& flags, campaign::CampaignSpec* spec) {
  std::string error;

  // Base-config overrides reuse the axis grammar with single values; a
  // repeated key would silently shadow an earlier override, so reject it.
  std::vector<campaign::Axis> overrides;
  if (!campaign::parse_grid(flags.get("set", ""), &overrides, &error)) {
    return fail_usage("--set", error);
  }
  std::set<std::string> override_keys;
  for (const campaign::Axis& o : overrides) {
    if (o.values.size() != 1) {
      return fail_usage("--set", o.field + ": exactly one value expected");
    }
    if (!override_keys.insert(o.field).second) {
      return fail_usage("--set", o.field + ": key appears twice");
    }
    if (!campaign::apply_field(spec->base, o.field, o.values.front(), &error)) {
      return fail_usage("--set", error);
    }
  }

  if (!campaign::parse_grid(flags.get("grid", ""), &spec->axes, &error)) {
    return fail_usage("--grid", error);
  }

  if (flags.has("seeds")) {
    if (!campaign::parse_seeds(flags.get("seeds", ""), &spec->seeds, &error)) {
      return fail_usage("--seeds", error);
    }
  } else {
    spec->seeds = default_seeds();
  }
  return 0;
}

/// `gt_campaign validate`: expand the grid and run the campaign's
/// pre-flight trace checks — file parse (with the offending line number),
/// per-point node-id/topology cross-check, generator parameter ranges —
/// then exit without simulating anything.
int run_validate(const Flags& flags) {
  campaign::CampaignSpec spec;
  const int code = parse_spec_flags(flags, &spec);
  if (code != 0) return code;
  for (const std::string& flag : flags.unknown()) {
    return fail_usage("validate: unknown flag", "--" + flag + " (see --help)");
  }
  std::string error;
  const std::vector<campaign::GridPoint> points = campaign::expand_grid(spec, &error);
  if (points.empty()) {
    return fail_usage("invalid campaign", error);
  }
  if (!campaign::validate_points_trace(points, &error)) {
    return fail_usage("invalid trace setup", error);
  }
  std::printf("validate: %zu point%s x %zu seed%s OK\n", points.size(),
              points.size() == 1 ? "" : "s", spec.seeds.size(),
              spec.seeds.size() == 1 ? "" : "s");
  return 0;
}

int run_campaign_command(const Flags& flags, const char* argv0) {
  campaign::CampaignSpec spec;
  const int spec_code = parse_spec_flags(flags, &spec);
  if (spec_code != 0) return spec_code;
  std::string error;

  campaign::CampaignOptions options;
  const bool quiet = flags.get_bool("quiet", false);
  if (!quiet) {
    options.runner.on_progress = [](const campaign::Progress& p) {
      if (p.outcome != nullptr &&
          p.outcome->status != campaign::JobStatus::kOk) {
        std::fprintf(stderr,
                     "[campaign] %zu/%zu jobs done (point %zu, seed #%zu) -- "
                     "%s after %d attempt(s)%s%s\n",
                     p.completed, p.total, p.job->point_index,
                     p.job->seed_index,
                     campaign::job_status_name(p.outcome->status),
                     p.outcome->attempts, p.outcome->detail.empty() ? "" : ": ",
                     p.outcome->detail.c_str());
        return;
      }
      std::fprintf(stderr, "[campaign] %zu/%zu jobs done (point %zu, seed #%zu)\n",
                   p.completed, p.total, p.job->point_index, p.job->seed_index);
    };
  }

  if (!campaign::parse_campaign_flags(flags, &options, &error)) {
    return fail_usage("bad option", error);
  }
  if (options.fault.isolate) {
#if defined(_WIN32)
    return fail_usage("--isolate", "not supported on this platform");
#else
    options.fault.exec_path = self_exe_path(argv0);
    if (options.fault.exec_path.empty()) {
      return fail_usage("--isolate", "cannot determine own executable path");
    }
#endif
  }
  install_signal_handlers();
  options.runner.cancel_flag = &g_interrupted;

  // In-run telemetry: when --telemetry-dir is given, each job runs with a
  // private Telemetry recorder and writes DIR/pointNNN_seedNN.jsonl. The
  // sub-flags are meaningless without the directory, so reject them alone
  // rather than silently ignoring a half-typed request.
  const std::string telemetry_dir = flags.get("telemetry-dir", "");
  const double telemetry_period_s = flags.get_double("telemetry-period", 1.0);
  const double probe_period_s = flags.get_double("telemetry-probe-period", 10.0);
  const std::int64_t telemetry_probes = flags.get_int("telemetry-probes", 0);
  if (telemetry_dir.empty()) {
    for (const char* sub :
         {"telemetry-period", "telemetry-probes", "telemetry-probe-period"}) {
      if (flags.has(sub)) {
        return fail_usage(("--" + std::string(sub)).c_str(),
                          "requires --telemetry-dir");
      }
    }
  } else {
    if (telemetry_period_s <= 0.0) {
      return fail_usage("--telemetry-period", "must be > 0 seconds");
    }
    if (probe_period_s <= 0.0) {
      return fail_usage("--telemetry-probe-period", "must be > 0 seconds");
    }
    if (telemetry_probes < 0) {
      return fail_usage("--telemetry-probes", "must be >= 0");
    }
    std::error_code ec;
    std::filesystem::create_directories(telemetry_dir, ec);
    if (ec) {
      std::fprintf(stderr, "gt_campaign: cannot create %s: %s\n",
                   telemetry_dir.c_str(), ec.message().c_str());
      return 1;
    }
    TelemetryConfig telemetry_config;
    telemetry_config.sample_period =
        static_cast<TimeUs>(telemetry_period_s * 1e6);
    telemetry_config.probe_count = static_cast<int>(telemetry_probes);
    telemetry_config.probe_period = static_cast<TimeUs>(probe_period_s * 1e6);
    options.runner.run_job_fn = [telemetry_dir, telemetry_config](
                                    const campaign::Job& job) {
      Telemetry telemetry(telemetry_config);
      const ExperimentResult result = run_scenario(job.config, &telemetry);
      char name[48];
      std::snprintf(name, sizeof name, "point%03zu_seed%02zu.jsonl",
                    job.point_index, job.seed_index);
      const std::string path = telemetry_dir + "/" + name;
      // A failed artifact write must not poison the campaign result;
      // warn and keep the (already computed) metrics.
      if (!telemetry.write_jsonl(path)) {
        std::fprintf(stderr, "gt_campaign: failed to write %s\n", path.c_str());
      }
      return result;
    };
  }

  const std::string out_prefix = flags.get("out", "");
  for (const std::string& flag : flags.unknown()) {
    return fail_usage("unknown flag", "--" + flag + " (see --help)");
  }

  campaign::CampaignResult result;
  if (!campaign::run_campaign(spec, options, &result, &error)) {
    if (result.error_kind == campaign::CampaignErrorKind::kIo) {
      std::fprintf(stderr, "gt_campaign: %s\n", error.c_str());
      return 1;
    }
    return fail_usage("invalid campaign", error);
  }
  if (result.jobs_skipped > 0) {
    std::fprintf(stderr, "[campaign] resumed: %zu jobs from journal, %zu run now\n",
                 result.jobs_skipped, result.jobs_run);
  }

  print_table(result.aggregates);

  // Artifacts are written even for interrupted runs: the journal already
  // holds the finished jobs, and a partial report beats no report.
  const int artifact_code = write_artifacts(out_prefix, result.aggregates);
  if (artifact_code != 0) return artifact_code;
  const std::size_t quarantined = print_failure_summary(result.aggregates);
  if (g_interrupted.load()) {
    std::fprintf(stderr,
                 "[campaign] interrupted: %zu jobs finished; resume with "
                 "--resume to continue\n",
                 result.jobs_run);
    return 130;
  }
  if (result.cancelled) return 1;
  return quarantined > 0 ? 3 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Hidden child-process entry for --isolate: one envelope line on stdin,
  // one record line on stdout. Dispatched before any flag parsing so the
  // protocol surface cannot drift with the CLI grammar.
  if (argc >= 2 && std::string(argv[1]) == "run-job") {
    return campaign::run_job_protocol(stdin, stdout);
  }

  Flags flags(argc, argv);

  if (flags.get_bool("help", false)) {
    print_usage();
    return 0;
  }
  if (flags.get_bool("list-fields", false)) {
    for (const std::string& name : campaign::known_fields()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  if (flags.get_bool("list-metrics", false)) {
    for (const std::string& name : campaign::metric_names()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }

  // Subcommand dispatch. Stray positionals used to be silently ignored
  // (a typo'd invocation would run the full default campaign and exit 0);
  // now anything unrecognized is a usage error.
  std::vector<std::string> positional = flags.positional();
  if (!positional.empty() && positional.front() == "merge") {
    positional.erase(positional.begin());
    return run_merge(flags, positional);
  }
  if (!positional.empty() && positional.front() == "validate") {
    positional.erase(positional.begin());
    if (!positional.empty()) {
      return fail_usage("validate: unexpected argument",
                        "'" + positional.front() + "' (see --help)");
    }
    return run_validate(flags);
  }
  if (!positional.empty() && positional.front() == "run") {
    positional.erase(positional.begin());
  }
  if (!positional.empty()) {
    return fail_usage("unexpected argument",
                      "'" + positional.front() + "' (see --help)");
  }
  return run_campaign_command(flags, argv[0]);
}
