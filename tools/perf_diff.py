#!/usr/bin/env python3
"""Diff two BENCH_simcore.json baselines and print a per-scenario table.

Usage: perf_diff.py BASELINE.json FRESH.json

Prints, for every scenario present in either file, the fast-path
sim-seconds-per-wall-second, wall seconds and event count side by side
with the relative delta. Exit code is always 0 (the CI perf-smoke job is
informational — shared runners have noisy clocks), except for unreadable
or malformed input, which exits 2 so a broken bench run is visible.
"""

import json
import sys


def load_scenarios(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as err:
        print(f"perf_diff: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    if "scenarios" in doc:
        return {s["name"]: s for s in doc["scenarios"]}
    # Pre-multi-point format: a single unnamed sparse scenario.
    if "fast_path" in doc:
        return {"sparse-7": doc}
    print(f"perf_diff: {path} is not a BENCH_simcore baseline", file=sys.stderr)
    sys.exit(2)


def fmt_delta(old, new):
    if old is None or new is None:
        return "      -"
    if old == 0:
        return "      ?"
    pct = 100.0 * (new - old) / old
    return f"{pct:+6.1f}%"


def metric(scenario, key):
    if scenario is None:
        return None
    return scenario.get("fast_path", {}).get(key)


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        sys.exit(2)
    base = load_scenarios(sys.argv[1])
    fresh = load_scenarios(sys.argv[2])

    names = list(base.keys()) + [n for n in fresh.keys() if n not in base]
    header = (
        f"{'scenario':<20} {'sim-s/wall-s':>14} {'(was)':>10} {'delta':>7}"
        f" {'wall-s':>9} {'(was)':>9} {'delta':>7} {'events':>12} {'delta':>7}"
    )
    print(header)
    print("-" * len(header))
    for name in names:
        b = base.get(name)
        f = fresh.get(name)
        spw_b = metric(b, "sim_seconds_per_wall_second")
        spw_f = metric(f, "sim_seconds_per_wall_second")
        wall_b = metric(b, "wall_seconds")
        wall_f = metric(f, "wall_seconds")
        ev_b = metric(b, "events_processed")
        ev_f = metric(f, "events_processed")

        def num(v, width, fmt):
            return f"{v:{width}{fmt}}" if v is not None else f"{'-':>{width}}"

        print(
            f"{name:<20} {num(spw_f, 14, ',.0f')} {num(spw_b, 10, ',.0f')}"
            f" {fmt_delta(spw_b, spw_f)} {num(wall_f, 9, '.2f')} {num(wall_b, 9, '.2f')}"
            f" {fmt_delta(wall_b, wall_f)} {num(ev_f, 12, ',d')} {fmt_delta(ev_b, ev_f)}"
        )

    # Island-parallel points: the wall-clock ratio against the sequential
    # sibling (same scenario name minus "-parallel") is the speedup the
    # parallel stepping delivers on this runner. <1.0x on single-core
    # runners is expected — the coordination overhead with no cores to
    # spread islands over — and still worth tracking.
    speedups = []
    for name in names:
        if not name.endswith("-parallel"):
            continue
        sibling = name[: -len("-parallel")]
        wall_par = metric(fresh.get(name), "wall_seconds")
        wall_seq = metric(fresh.get(sibling), "wall_seconds")
        if wall_par and wall_seq:
            speedups.append(f"{sibling}: {wall_seq / wall_par:.2f}x")
    if speedups:
        print(f"\nparallel speedup vs sequential (fresh): {', '.join(speedups)}")
    print(
        "\n(deltas are fresh vs baseline; sim-s/wall-s up and wall-s/events"
        " down are improvements; shared-runner clocks are noisy — event"
        " counts are the stable signal)"
    )


if __name__ == "__main__":
    main()
