#include "app/traffic.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace gttsch {

PeriodicSource::PeriodicSource(Simulator& sim, Rng rng, double packets_per_minute,
                               std::function<void()> on_generate)
    : sim_(sim),
      rng_(rng),
      ppm_(packets_per_minute),
      mean_interval_(packets_per_minute > 0
                         ? static_cast<TimeUs>(60e6 / packets_per_minute)
                         : 0),
      on_generate_(std::move(on_generate)),
      timer_(sim) {}

void PeriodicSource::start(TimeUs start_delay) {
  if (ppm_ <= 0) return;
  GTTSCH_CHECK(mean_interval_ > 0);
  // Random initial phase spreads nodes uniformly over one interval.
  const TimeUs phase =
      static_cast<TimeUs>(rng_.uniform(static_cast<std::uint64_t>(mean_interval_)));
  timer_.start(start_delay + phase, [this] { arm_next(); });
}

void PeriodicSource::stop() { timer_.stop(); }

void PeriodicSource::arm_next() {
  if (end_time_ != 0 && sim_.now() >= end_time_) return;
  ++generated_;
  on_generate_();
  // +/-20% jitter around the mean interval.
  const TimeUs lo = mean_interval_ * 8 / 10;
  const TimeUs hi = mean_interval_ * 12 / 10;
  const TimeUs next =
      lo + static_cast<TimeUs>(rng_.uniform(static_cast<std::uint64_t>(hi - lo + 1)));
  timer_.start(next, [this] { arm_next(); });
}

}  // namespace gttsch
