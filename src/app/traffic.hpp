// Application-layer traffic sources for the convergecast workloads of the
// paper's evaluation (each node generating 30..165 packets per minute).
#pragma once

#include <functional>

#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "util/rng.hpp"

namespace gttsch {

/// Periodic (CBR) source with per-packet jitter. Calls `on_generate` at a
/// mean rate of `packets_per_minute`; jitter desynchronises nodes so
/// generation does not phase-lock to slotframes.
class PeriodicSource {
 public:
  PeriodicSource(Simulator& sim, Rng rng, double packets_per_minute,
                 std::function<void()> on_generate);

  /// Begin generating after `start_delay` (plus a random initial phase).
  void start(TimeUs start_delay);
  void stop();

  /// Stop generating after this absolute sim time (0 = never).
  void set_end_time(TimeUs end) { end_time_ = end; }

  double rate_ppm() const { return ppm_; }
  std::uint64_t generated() const { return generated_; }

 private:
  void arm_next();

  Simulator& sim_;
  Rng rng_;
  double ppm_;
  TimeUs mean_interval_;
  std::function<void()> on_generate_;
  OneShotTimer timer_;
  TimeUs end_time_ = 0;
  std::uint64_t generated_ = 0;
};

}  // namespace gttsch
