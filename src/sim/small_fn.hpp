// A move-only `void()` callable with guaranteed small-buffer storage.
//
// The simulator's steady-state loop arms and fires millions of tiny
// closures (slot timers, ACK deadlines, medium completions), all of which
// capture a `this` pointer plus at most a few scalars. std::function's
// small-object optimisation is an implementation detail (libstdc++ caps it
// at 16 bytes); SmallFn makes the no-allocation guarantee explicit: any
// nothrow-movable callable up to kInlineSize bytes lives inside the object,
// larger ones fall back to the heap so the type stays fully general.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace gttsch {

class SmallFn {
 public:
  /// Large enough for `this` + several captured scalars, and for a moved-in
  /// std::function (32 bytes in libstdc++), with room to spare.
  static constexpr std::size_t kInlineSize = 48;

  SmallFn() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, SmallFn> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor): callable wrapper
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  SmallFn(SmallFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) ops_->relocate(other.buf_, buf_);
    other.ops_ = nullptr;
  }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this == &other) return *this;
    reset();
    ops_ = other.ops_;
    if (ops_ != nullptr) ops_->relocate(other.buf_, buf_);
    other.ops_ = nullptr;
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

 private:
  struct Ops {
    void (*invoke)(void* self);
    /// Move-construct the callable at `dst` from `src`, then destroy `src`.
    void (*relocate)(void* src, void* dst);
    void (*destroy)(void* self);
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineSize && alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* self) { (*std::launder(reinterpret_cast<Fn*>(self)))(); },
      [](void* src, void* dst) {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* self) { std::launder(reinterpret_cast<Fn*>(self))->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](void* self) { (**std::launder(reinterpret_cast<Fn**>(self)))(); },
      [](void* src, void* dst) {
        ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
      },
      [](void* self) { delete *std::launder(reinterpret_cast<Fn**>(self)); },
  };

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace gttsch
