// Restartable one-shot and periodic timers bound to a Simulator.
#pragma once

#include <functional>

#include "sim/simulator.hpp"

namespace gttsch {

/// One-shot timer; re-arming cancels any pending expiry.
///
/// The callback is stored in the timer object (SmallFn), and the scheduled
/// event captures only `this` — so arming a timer never heap-allocates for
/// the usual small closures, which keeps the per-slot MAC hot path
/// allocation-free. `key` (default kDefaultEventKey) selects the event's
/// same-time ordering class; the MAC slot timer passes the node id.
class OneShotTimer {
 public:
  explicit OneShotTimer(Simulator& sim, std::uint32_t key = kDefaultEventKey)
      : sim_(sim), key_(key) {}
  ~OneShotTimer() { stop(); }
  OneShotTimer(const OneShotTimer&) = delete;
  OneShotTimer& operator=(const OneShotTimer&) = delete;

  void start(TimeUs delay, SmallFn fn);
  void stop();
  bool running() const { return id_ != kInvalidEvent; }

 private:
  Simulator& sim_;
  std::uint32_t key_;
  EventId id_ = kInvalidEvent;
  SmallFn fn_;
};

/// Fixed-period timer. The callback runs every `period` after `start`,
/// optionally with a uniformly random per-tick jitter in [0, jitter).
class PeriodicTimer {
 public:
  explicit PeriodicTimer(Simulator& sim) : sim_(sim) {}
  ~PeriodicTimer() { stop(); }
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void start(TimeUs first_delay, TimeUs period, std::function<void()> fn,
             Rng* jitter_rng = nullptr, TimeUs jitter = 0);
  void stop();
  bool running() const { return id_ != kInvalidEvent; }

 private:
  void arm(TimeUs delay);

  Simulator& sim_;
  EventId id_ = kInvalidEvent;
  TimeUs period_ = 0;
  TimeUs jitter_ = 0;
  Rng* jitter_rng_ = nullptr;
  std::function<void()> fn_;
};

}  // namespace gttsch
