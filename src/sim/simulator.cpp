#include "sim/simulator.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "util/check.hpp"
#include "util/concurrency.hpp"

namespace gttsch {

namespace sim_internal {
thread_local TlsBinding t_binding;
}  // namespace sim_internal

namespace {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

/// One execution lane: a heap of events it owns, its own virtual clock,
/// and a private slot freelist so steady-state slot reuse needs no
/// synchronization. Context 0 is the global / sequential lane; contexts
/// 1..k step island 0..k-1. Cache-line aligned: island lanes hammer
/// their own now/processed/live counters concurrently.
struct alignas(64) SimContext {
  EventHeap heap;
  std::vector<std::uint32_t> free_slots;
  std::uint64_t next_seq = 1;
  TimeUs now = 0;
  std::uint64_t processed = 0;
  std::size_t live = 0;
  std::uint32_t owner = kGlobalOwner;  ///< owner of the executing event
  std::uint32_t key = kDefaultEventKey;  ///< key of the executing event
  std::uint32_t index = 0;
  TimeUs wd_last_time = -1;  ///< virtual time of the livelock window
  std::uint64_t wd_same = 0;
};

Simulator::Simulator(std::uint64_t seed) : rng_(seed), seed_(seed) {
  ctxs_.push_back(std::make_unique<SimContext>());
  main_now_ = &ctxs_.front()->now;
}

Simulator::~Simulator() = default;

SimContext& Simulator::current_context() const {
  const sim_internal::TlsBinding& b = sim_internal::t_binding;
  if (b.sim == this) return *b.ctx;
  return *ctxs_.front();
}

std::uint32_t Simulator::current_owner() const {
  return current_context().owner;
}

std::uint32_t Simulator::current_key() const {
  return current_context().key;
}

std::uint32_t Simulator::current_ctx() const {
  return current_context().index;
}

std::uint32_t Simulator::island_of(std::uint32_t owner) const {
  const auto it = owner_ctx_.find(owner);
  return it == owner_ctx_.end() ? 0u : it->second;
}

Simulator::ScopedOwner::ScopedOwner(Simulator& sim, std::uint32_t owner) {
  SimContext& c = sim.current_context();
  slot_ = &c.owner;
  saved_ = c.owner;
  c.owner = owner;
}

Simulator::ScopedOwner::~ScopedOwner() { *slot_ = saved_; }

void Simulator::arm_watchdog(const Watchdog& watchdog) {
  watchdog_ = watchdog;
  watchdog_armed_ = watchdog.max_wall_s > 0.0 || watchdog.livelock_events > 0;
  watchdog_tripped_.store(false, std::memory_order_relaxed);
  watchdog_reason_.clear();
  watchdog_deadline_ =
      watchdog.max_wall_s > 0.0 ? steady_seconds() + watchdog.max_wall_s : 0.0;
  for (auto& c : ctxs_) {
    c->wd_last_time = -1;
    c->wd_same = 0;
  }
}

void Simulator::trip_watchdog(const std::string& reason) {
  std::lock_guard<std::mutex> lock(watchdog_mutex_);
  if (watchdog_tripped_.load(std::memory_order_relaxed)) return;
  watchdog_reason_ = reason;
  watchdog_tripped_.store(true, std::memory_order_release);
}

bool Simulator::watchdog_step(SimContext& c) {
  if (watchdog_tripped_.load(std::memory_order_relaxed)) return true;
  if (watchdog_.livelock_events > 0) {
    if (c.now == c.wd_last_time) {
      if (++c.wd_same > watchdog_.livelock_events) {
        trip_watchdog("livelock: over " +
                      std::to_string(watchdog_.livelock_events) +
                      " events at virtual time " + std::to_string(c.now) +
                      " us");
        return true;
      }
    } else {
      c.wd_last_time = c.now;
      c.wd_same = 1;
    }
  }
  if (watchdog_deadline_ > 0.0 && (c.processed & 0xFFF) == 0 &&
      steady_seconds() > watchdog_deadline_) {
    trip_watchdog("wall-clock budget of " + std::to_string(watchdog_.max_wall_s) +
                  " s exceeded");
    return true;
  }
  return false;
}

EventId Simulator::at(TimeUs when, SmallFn fn) {
  return at_keyed(when, kDefaultEventKey, std::move(fn));
}

EventId Simulator::after(TimeUs delay, SmallFn fn) {
  return after_keyed(delay, kDefaultEventKey, std::move(fn));
}

EventId Simulator::at_keyed(TimeUs when, std::uint32_t key, SmallFn fn) {
  GTTSCH_CHECK(when >= now());
  return schedule_impl(when, key, std::move(fn));
}

EventId Simulator::after_keyed(TimeUs delay, std::uint32_t key, SmallFn fn) {
  GTTSCH_CHECK(delay >= 0);
  return schedule_impl(now() + delay, key, std::move(fn));
}

EventId Simulator::schedule_impl(TimeUs when, std::uint32_t key, SmallFn fn) {
  SimContext& cur = current_context();
  // The event inherits the owner of the event being executed, and is
  // homed to that owner's context: its sequence number comes from the
  // *target* heap (so one owner's FIFO order is a single counter stream
  // regardless of which thread scheduled it), while the slot comes from
  // the *calling* context's freelist (thread-local reuse). Island lanes
  // only ever schedule for their own island, so cur is already home.
  SimContext* home = &cur;
  if (cur.index == 0 && !owner_ctx_.empty()) {
    const auto it = owner_ctx_.find(cur.owner);
    if (it != owner_ctx_.end()) home = ctxs_[it->second].get();
  }
  const std::uint32_t slot = pool_.alloc(cur.free_slots);
  EventRecord& rec = pool_.record(slot);
  rec.fn = std::move(fn);
  rec.armed = true;
  rec.cancelled = false;
  rec.ctx = home->index;
  home->heap.push(EventEntry{when, home->next_seq++, key, cur.owner, slot});
  ++home->live;
  return make_event_id(rec.generation, slot);
}

void Simulator::cancel(EventId id) {
  EventRecord* rec = pool_.record_for(id);
  if (rec == nullptr || !rec->armed || rec->cancelled) return;
  rec->cancelled = true;
  rec->fn.reset();  // release captures now; the heap entry dies lazily
  GTTSCH_CHECK(rec->ctx < ctxs_.size());
  SimContext& home = *ctxs_[rec->ctx];
  GTTSCH_CHECK(home.live > 0);
  --home.live;
}

void Simulator::drop_cancelled(SimContext& c) {
  while (!c.heap.empty() && pool_.record(c.heap.top().slot).cancelled) {
    pool_.release(c.heap.top().slot, c.free_slots);
    c.heap.pop();
  }
}

std::size_t Simulator::pending_events() const {
  std::size_t total = 0;
  for (const auto& c : ctxs_) total += c->live;
  return total;
}

std::uint64_t Simulator::events_processed() const {
  std::uint64_t total = 0;
  for (const auto& c : ctxs_) total += c->processed;
  return total;
}

void Simulator::run_until(TimeUs until) {
  if (watchdog_tripped()) return;
  if (parallel_) {
    run_until_parallel(until);
  } else {
    run_until_sequential(until);
  }
}

void Simulator::run_until_sequential(TimeUs until) {
  SimContext& g = main_ctx();
  for (;;) {
    drop_cancelled(g);
    if (g.heap.empty() || g.heap.top().at > until) break;
    const EventEntry e = g.heap.pop();
    GTTSCH_CHECK(e.at >= g.now);
    // Advance the clock before running: callbacks must see now() == e.at.
    g.now = e.at;
    g.owner = e.owner;
    g.key = e.key;
    // Move the callback out before running it: the callback may schedule
    // new events and mutate both the heap and the slot pool.
    SmallFn fn = std::move(pool_.record(e.slot).fn);
    pool_.release(e.slot, g.free_slots);
    GTTSCH_CHECK(g.live > 0);
    --g.live;
    fn();
    ++g.processed;
    g.owner = kGlobalOwner;
    g.key = kDefaultEventKey;
    if (watchdog_armed_ && watchdog_step(g)) return;
  }
  if (g.now < until) g.now = until;
}

void Simulator::run_all() {
  if (watchdog_tripped()) return;
  if (ctxs_.size() > 1) {
    parallel_ = false;
    collapse_islands();
    if (source_ != nullptr) source_->on_partition();
  }
  SimContext& g = main_ctx();
  for (;;) {
    drop_cancelled(g);
    if (g.heap.empty()) break;
    const EventEntry e = g.heap.pop();
    GTTSCH_CHECK(e.at >= g.now);
    g.now = e.at;
    g.owner = e.owner;
    g.key = e.key;
    SmallFn fn = std::move(pool_.record(e.slot).fn);
    pool_.release(e.slot, g.free_slots);
    GTTSCH_CHECK(g.live > 0);
    --g.live;
    fn();
    ++g.processed;
    g.owner = kGlobalOwner;
    g.key = kDefaultEventKey;
    if (watchdog_armed_ && watchdog_step(g)) return;
  }
}

void Simulator::set_parallel(int workers, IslandSource* source) {
  parallel_workers_ = workers < 1 ? 1 : workers;
  source_ = source;
  const bool enable = parallel_workers_ > 1 && source != nullptr;
  if (!enable && ctxs_.size() > 1) {
    collapse_islands();
    if (source_ != nullptr) source_->on_partition();
  }
  parallel_ = enable;
  have_partition_ = false;
  worker_pool_.reset();
}

void Simulator::run_until_parallel(TimeUs until) {
  SimContext& g = main_ctx();
  if (until < g.now) return;
  for (;;) {
    if (watchdog_tripped()) return;
    drop_cancelled(g);
    // Bring lazily-maintained shared state (interference cache, link
    // model activations) up to date on this thread, so island lanes only
    // read it. Must precede the bound computation: repartitioning
    // *migrates events between heaps* (pre-partition events homed to the
    // global context move out to their islands, orphaned-owner events
    // move back in), so the global top is only meaningful afterwards.
    source_->settle(g.now);
    maybe_repartition();
    if (!parallel_) {  // no usable partition: finish sequentially
      run_until_sequential(until);
      return;
    }
    drop_cancelled(g);
    // The phase boundary: the earliest global-owner event within the
    // horizon, or a sentinel that sorts after every event at `until`.
    // Everything strictly below it in the (at, key, owner, seq) order is
    // provably island-local and runs concurrently this phase.
    const bool have_global = !g.heap.empty() && g.heap.top().at <= until;
    const EventEntry bound =
        have_global ? g.heap.top()
                    : EventEntry{until, std::numeric_limits<std::uint64_t>::max(),
                                 0xFFFFFFFFu, kGlobalOwner, 0};
    GTTSCH_CHECK(bound.at >= g.now);
    g.now = bound.at;
    run_islands(bound);
    if (watchdog_tripped()) return;
    if (!have_global) break;
    // The single global event of this phase runs on the main thread.
    // Island lanes never touch the global heap, so the top is still
    // `bound`.
    const EventEntry e = g.heap.pop();
    g.owner = e.owner;
    g.key = e.key;
    SmallFn fn = std::move(pool_.record(e.slot).fn);
    pool_.release(e.slot, g.free_slots);
    GTTSCH_CHECK(g.live > 0);
    --g.live;
    fn();
    ++g.processed;
    g.owner = kGlobalOwner;
    g.key = kDefaultEventKey;
    if (watchdog_armed_ && watchdog_step(g)) return;
  }
  if (g.now < until) g.now = until;
}

void Simulator::maybe_repartition() {
  const std::uint64_t epoch = source_->partition_epoch();
  if (have_partition_ && epoch == partition_epoch_) return;
  partition_epoch_ = epoch;
  have_partition_ = true;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> owner_island;
  std::uint32_t count = 0;
  if (!source_->compute_islands(&owner_island, &count) || count == 0) {
    // No usable partition (interference cache inactive): demote to the
    // sequential path for the rest of the run.
    parallel_ = false;
    collapse_islands();
    source_->on_partition();
    return;
  }
  adopt_partition(owner_island, count);
}

void Simulator::redistribute_entries() {
  migrate_scratch_.clear();
  for (auto& c : ctxs_) {
    auto& raw = c->heap.raw();
    migrate_scratch_.insert(migrate_scratch_.end(), raw.begin(), raw.end());
    raw.clear();
    c->live = 0;
  }
}

void Simulator::adopt_partition(
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& owner_island,
    std::uint32_t island_count) {
  std::unordered_map<std::uint32_t, std::uint32_t> next;
  next.reserve(owner_island.size());
  for (const auto& p : owner_island) next.emplace(p.first, p.second + 1);
  const std::size_t want = static_cast<std::size_t>(island_count) + 1;
  if (next == owner_ctx_ && ctxs_.size() == want) return;  // same structure
  owner_ctx_ = std::move(next);

  redistribute_entries();
  std::uint64_t max_seq = 1;
  for (const auto& c : ctxs_) max_seq = std::max(max_seq, c->next_seq);
  while (ctxs_.size() > want) {
    auto& fs = main_ctx().free_slots;
    auto& victim = ctxs_.back()->free_slots;
    fs.insert(fs.end(), victim.begin(), victim.end());
    ctxs_.pop_back();
  }
  while (ctxs_.size() < want) {
    ctxs_.push_back(std::make_unique<SimContext>());
    ctxs_.back()->index = static_cast<std::uint32_t>(ctxs_.size() - 1);
  }
  SimContext& g = main_ctx();
  for (auto& c : ctxs_) {
    // Aligning every sequence counter to the global max preserves one
    // owner's FIFO order across migrations between contexts.
    c->next_seq = max_seq;
    c->now = g.now;
    c->wd_last_time = -1;
    c->wd_same = 0;
  }
  for (const EventEntry& e : migrate_scratch_) {
    EventRecord& rec = pool_.record(e.slot);
    if (rec.cancelled) {
      pool_.release(e.slot, g.free_slots);
      continue;
    }
    const auto it = owner_ctx_.find(e.owner);
    SimContext& home = it == owner_ctx_.end() ? g : *ctxs_[it->second];
    rec.ctx = home.index;
    home.heap.raw().push_back(e);
    ++home.live;
  }
  for (auto& c : ctxs_) c->heap.heapify();
  source_->on_partition();
}

void Simulator::collapse_islands() {
  if (ctxs_.size() <= 1 && owner_ctx_.empty()) return;
  redistribute_entries();
  std::uint64_t max_seq = 1;
  for (const auto& c : ctxs_) max_seq = std::max(max_seq, c->next_seq);
  while (ctxs_.size() > 1) {
    auto& fs = main_ctx().free_slots;
    auto& victim = ctxs_.back()->free_slots;
    fs.insert(fs.end(), victim.begin(), victim.end());
    ctxs_.pop_back();
  }
  owner_ctx_.clear();
  SimContext& g = main_ctx();
  g.next_seq = max_seq;
  for (const EventEntry& e : migrate_scratch_) {
    EventRecord& rec = pool_.record(e.slot);
    if (rec.cancelled) {
      pool_.release(e.slot, g.free_slots);
      continue;
    }
    rec.ctx = 0;
    g.heap.raw().push_back(e);
    ++g.live;
  }
  g.heap.heapify();
}

void Simulator::run_islands(const EventEntry& bound) {
  active_scratch_.clear();
  for (std::size_t i = 1; i < ctxs_.size(); ++i) {
    SimContext& c = *ctxs_[i];
    drop_cancelled(c);
    if (!c.heap.empty() && event_before(c.heap.top(), bound)) {
      active_scratch_.push_back(&c);
    }
  }
  if (active_scratch_.empty()) return;
  const int lanes = std::min<int>(parallel_workers_,
                                  static_cast<int>(active_scratch_.size()));
  if (lanes <= 1) {
    // One active island (or one lane): step it inline — keeps single-core
    // and sparse-phase runs free of dispatch overhead.
    for (SimContext* c : active_scratch_) {
      run_island_phase(*c, bound);
      if (watchdog_tripped()) return;
    }
    return;
  }
  if (worker_pool_ == nullptr) {
    worker_pool_ = std::make_unique<WorkerPool>(parallel_workers_);
  }
  std::atomic<std::size_t> next{0};
  const std::vector<SimContext*>& active = active_scratch_;
  const std::function<void(int)> lane_fn = [&](int) {
    for (;;) {
      const std::size_t idx = next.fetch_add(1, std::memory_order_relaxed);
      if (idx >= active.size()) return;
      run_island_phase(*active[idx], bound);
    }
  };
  worker_pool_->run(lanes, lane_fn);
}

void Simulator::run_island_phase(SimContext& c, const EventEntry& bound) {
  sim_internal::TlsBinding& b = sim_internal::t_binding;
  const sim_internal::TlsBinding saved = b;
  b = {this, &c, &c.now};
  for (;;) {
    drop_cancelled(c);
    if (c.heap.empty() || !event_before(c.heap.top(), bound)) break;
    const EventEntry e = c.heap.pop();
    GTTSCH_CHECK(e.at >= c.now);
    c.now = e.at;
    c.owner = e.owner;
    c.key = e.key;
    SmallFn fn = std::move(pool_.record(e.slot).fn);
    pool_.release(e.slot, c.free_slots);
    GTTSCH_CHECK(c.live > 0);
    --c.live;
    fn();
    ++c.processed;
    if (watchdog_armed_ && watchdog_step(c)) break;
  }
  c.owner = kGlobalOwner;
  c.key = kDefaultEventKey;
  b = saved;
}

}  // namespace gttsch
