#include "sim/simulator.hpp"

#include "util/check.hpp"

namespace gttsch {

Simulator::Simulator(std::uint64_t seed) : rng_(seed), seed_(seed) {}

EventId Simulator::at(TimeUs when, std::function<void()> fn) {
  GTTSCH_CHECK(when >= now_);
  return queue_.schedule(when, std::move(fn));
}

EventId Simulator::after(TimeUs delay, std::function<void()> fn) {
  GTTSCH_CHECK(delay >= 0);
  return queue_.schedule(now_ + delay, std::move(fn));
}

void Simulator::cancel(EventId id) { queue_.cancel(id); }

void Simulator::run_until(TimeUs until) {
  while (queue_.next_time() <= until) {
    TimeUs t = 0;
    std::function<void()> fn;
    if (!queue_.pop_next(t, fn)) break;
    GTTSCH_CHECK(t >= now_);
    // Advance the clock before running: callbacks must see now() == t.
    now_ = t;
    fn();
    ++processed_;
  }
  if (now_ < until) now_ = until;
}

void Simulator::run_all() {
  TimeUs t = 0;
  std::function<void()> fn;
  while (queue_.pop_next(t, fn)) {
    GTTSCH_CHECK(t >= now_);
    now_ = t;
    fn();
    ++processed_;
  }
}

}  // namespace gttsch
