#include "sim/simulator.hpp"

#include <chrono>

#include "util/check.hpp"

namespace gttsch {
namespace {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Simulator::Simulator(std::uint64_t seed) : rng_(seed), seed_(seed) {}

void Simulator::arm_watchdog(const Watchdog& watchdog) {
  watchdog_ = watchdog;
  watchdog_armed_ = watchdog.max_wall_s > 0.0 || watchdog.livelock_events > 0;
  watchdog_tripped_ = false;
  watchdog_reason_.clear();
  watchdog_deadline_ =
      watchdog.max_wall_s > 0.0 ? steady_seconds() + watchdog.max_wall_s : 0.0;
  watchdog_last_time_ = -1;
  watchdog_same_time_events_ = 0;
}

bool Simulator::watchdog_step() {
  if (!watchdog_armed_) return false;
  if (watchdog_tripped_) return true;
  if (watchdog_.livelock_events > 0) {
    if (now_ == watchdog_last_time_) {
      if (++watchdog_same_time_events_ > watchdog_.livelock_events) {
        watchdog_tripped_ = true;
        watchdog_reason_ = "livelock: over " +
                           std::to_string(watchdog_.livelock_events) +
                           " events at virtual time " + std::to_string(now_) +
                           " us";
        return true;
      }
    } else {
      watchdog_last_time_ = now_;
      watchdog_same_time_events_ = 1;
    }
  }
  if (watchdog_deadline_ > 0.0 && (processed_ & 0xFFF) == 0 &&
      steady_seconds() > watchdog_deadline_) {
    watchdog_tripped_ = true;
    watchdog_reason_ = "wall-clock budget of " +
                       std::to_string(watchdog_.max_wall_s) + " s exceeded";
    return true;
  }
  return false;
}

EventId Simulator::at(TimeUs when, SmallFn fn) {
  return at_keyed(when, kDefaultEventKey, std::move(fn));
}

EventId Simulator::after(TimeUs delay, SmallFn fn) {
  return after_keyed(delay, kDefaultEventKey, std::move(fn));
}

EventId Simulator::at_keyed(TimeUs when, std::uint32_t key, SmallFn fn) {
  GTTSCH_CHECK(when >= now_);
  return queue_.schedule_keyed(when, key, std::move(fn));
}

EventId Simulator::after_keyed(TimeUs delay, std::uint32_t key, SmallFn fn) {
  GTTSCH_CHECK(delay >= 0);
  return queue_.schedule_keyed(now_ + delay, key, std::move(fn));
}

void Simulator::cancel(EventId id) { queue_.cancel(id); }

void Simulator::run_until(TimeUs until) {
  if (watchdog_tripped_) return;
  SmallFn fn;
  while (queue_.next_time() <= until) {
    TimeUs t = 0;
    if (!queue_.pop_next(t, fn)) break;
    GTTSCH_CHECK(t >= now_);
    // Advance the clock before running: callbacks must see now() == t.
    now_ = t;
    fn();
    ++processed_;
    if (watchdog_armed_ && watchdog_step()) return;
  }
  if (now_ < until) now_ = until;
}

void Simulator::run_all() {
  if (watchdog_tripped_) return;
  TimeUs t = 0;
  SmallFn fn;
  while (queue_.pop_next(t, fn)) {
    GTTSCH_CHECK(t >= now_);
    now_ = t;
    fn();
    ++processed_;
    if (watchdog_armed_ && watchdog_step()) return;
  }
}

}  // namespace gttsch
