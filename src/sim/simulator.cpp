#include "sim/simulator.hpp"

#include "util/check.hpp"

namespace gttsch {

Simulator::Simulator(std::uint64_t seed) : rng_(seed), seed_(seed) {}

EventId Simulator::at(TimeUs when, SmallFn fn) {
  return at_keyed(when, kDefaultEventKey, std::move(fn));
}

EventId Simulator::after(TimeUs delay, SmallFn fn) {
  return after_keyed(delay, kDefaultEventKey, std::move(fn));
}

EventId Simulator::at_keyed(TimeUs when, std::uint32_t key, SmallFn fn) {
  GTTSCH_CHECK(when >= now_);
  return queue_.schedule_keyed(when, key, std::move(fn));
}

EventId Simulator::after_keyed(TimeUs delay, std::uint32_t key, SmallFn fn) {
  GTTSCH_CHECK(delay >= 0);
  return queue_.schedule_keyed(now_ + delay, key, std::move(fn));
}

void Simulator::cancel(EventId id) { queue_.cancel(id); }

void Simulator::run_until(TimeUs until) {
  SmallFn fn;
  while (queue_.next_time() <= until) {
    TimeUs t = 0;
    if (!queue_.pop_next(t, fn)) break;
    GTTSCH_CHECK(t >= now_);
    // Advance the clock before running: callbacks must see now() == t.
    now_ = t;
    fn();
    ++processed_;
  }
  if (now_ < until) now_ = until;
}

void Simulator::run_all() {
  TimeUs t = 0;
  SmallFn fn;
  while (queue_.pop_next(t, fn)) {
    GTTSCH_CHECK(t >= now_);
    now_ = t;
    fn();
    ++processed_;
  }
}

}  // namespace gttsch
