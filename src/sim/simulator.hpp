// Discrete-event simulation core: a virtual clock plus an event queue.
//
// Since PR 10 the core can also step *interference islands* in parallel.
// An external IslandSource (the PHY medium) partitions node ids into
// groups that provably cannot interact before the next global event; the
// simulator keeps one execution context (heap + clock + slot freelist)
// per island and runs a phase of island-local events concurrently between
// consecutive global-owner events. Determinism does not depend on thread
// scheduling: the full event order (at, key, owner, seq) is the same
// total order the sequential reference mode uses, so parallel runs are
// bit-identical to `parallel_islands = 0`.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace gttsch {

class Simulator;
class WorkerPool;
struct SimContext;

namespace sim_internal {
/// Per-thread binding of a worker lane to the island context it is
/// stepping. `now` denormalizes &ctx->now so Simulator::now() stays an
/// inline two-load fast path on the unbound (sequential) side.
struct TlsBinding {
  Simulator* sim = nullptr;
  SimContext* ctx = nullptr;
  const TimeUs* now = nullptr;
};
extern thread_local TlsBinding t_binding;
}  // namespace sim_internal

/// Runaway-run protection for the event loop: a wall-clock budget plus a
/// livelock detector (too many events without the virtual clock moving —
/// a zero-delay self-rescheduling event would otherwise spin forever and
/// never hit a wall-clock check cheaply). Both limits <= 0 disable the
/// respective check.
struct Watchdog {
  double max_wall_s = 0.0;           ///< wall-clock budget for the whole run
  std::uint64_t livelock_events = 0; ///< same-virtual-time event budget
};

/// What the parallel scheduler needs from the component that knows the
/// interaction structure (implemented by phy::Medium, so the sim layer
/// stays below the PHY in the dependency order).
class IslandSource {
 public:
  virtual ~IslandSource() = default;

  /// Cheap token; a changed value means the partition may have changed
  /// and compute_islands should run again at the next phase boundary.
  virtual std::uint64_t partition_epoch() const = 0;

  /// Fill owner -> island assignments (island ids 0..count-1). Returns
  /// false when no partition can be computed (e.g. the interference
  /// cache is inactive); the simulator then reverts to sequential
  /// stepping for the rest of the run.
  virtual bool compute_islands(
      std::vector<std::pair<std::uint32_t, std::uint32_t>>* owner_island,
      std::uint32_t* island_count) = 0;

  /// Called on the main thread after the simulator adopted a new
  /// partition, so the source can re-shard its own per-island state.
  virtual void on_partition() = 0;

  /// Bring lazily-maintained shared state up to date with virtual time
  /// `now`. Runs on the main thread before every parallel phase, so
  /// island threads only ever *read* the shared state.
  virtual void settle(TimeUs now) = 0;
};

class Simulator {
 public:
  /// `seed` is the run seed from which all component streams are forked.
  explicit Simulator(std::uint64_t seed = 1);
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Virtual time of the calling thread's execution context: island
  /// lanes see their island clock, everyone else the main clock.
  TimeUs now() const {
    const sim_internal::TlsBinding& b = sim_internal::t_binding;
    return b.sim == this ? *b.now : *main_now_;
  }

  /// Schedule `fn` at absolute virtual time `at` (must be >= now()).
  EventId at(TimeUs when, SmallFn fn);

  /// Schedule `fn` after `delay` microseconds.
  EventId after(TimeUs delay, SmallFn fn);

  /// Keyed variants: `key` picks the ordering class among same-time events
  /// (lower first; see kDefaultEventKey). Slot-boundary timers use the
  /// node id so boundary ordering is independent of when they were armed.
  EventId at_keyed(TimeUs when, std::uint32_t key, SmallFn fn);
  EventId after_keyed(TimeUs delay, std::uint32_t key, SmallFn fn);

  void cancel(EventId id);

  /// Run events until the queue drains or the clock passes `until`.
  /// Events scheduled exactly at `until` still run.
  void run_until(TimeUs until);

  /// Run everything (use only in tests with naturally finite event sets).
  void run_all();

  std::size_t pending_events() const;
  std::uint64_t events_processed() const;

  /// Root RNG for this run; components should fork() their own streams.
  Rng& rng() { return rng_; }
  std::uint64_t seed() const { return seed_; }

  /// Arms the runaway-run watchdog (idempotent; call before run_until).
  /// When it trips, the current run_until/run_all returns early and every
  /// later call returns immediately — the run is over, only partially
  /// simulated, and must not be finalized as a result.
  void arm_watchdog(const Watchdog& watchdog);

  bool watchdog_tripped() const {
    return watchdog_tripped_.load(std::memory_order_relaxed);
  }
  /// Human-readable cause ("" while not tripped). Call after run_until
  /// returned; not synchronized against a phase in flight.
  const std::string& watchdog_reason() const { return watchdog_reason_; }

  // --- Island-parallel stepping -------------------------------------

  /// Enable parallel island stepping with up to `workers` lanes fed by
  /// `source`. workers <= 1 or a null source keeps the sequential path
  /// (and tears down any existing island contexts). Call before
  /// run_until, from the main thread.
  void set_parallel(int workers, IslandSource* source);
  bool parallel_enabled() const { return parallel_; }

  /// Owner id attributed to the event being executed on the calling
  /// thread (kGlobalOwner outside events / for unattributed events).
  std::uint32_t current_owner() const;

  /// Ordering key of the event being executed on the calling thread
  /// (kDefaultEventKey outside events). Together with the timestamp,
  /// current_owner() and per-owner FIFO order this reconstructs the
  /// sequential total event order — RunStats' concurrent log sorts by it.
  std::uint32_t current_key() const;

  /// Execution-context index of the calling thread: 0 for the global /
  /// sequential context, i >= 1 for island i-1's lane.
  std::uint32_t current_ctx() const;

  /// Number of execution contexts (1 + islands; 1 when sequential).
  std::uint32_t ctx_count() const { return static_cast<std::uint32_t>(ctxs_.size()); }

  /// Context index an owner's events are homed to (0 when unpartitioned).
  std::uint32_t island_of(std::uint32_t owner) const;

  /// Attribute everything scheduled in the enclosing scope to `owner`.
  /// Owners propagate automatically from a running event to the events
  /// it schedules; explicit scopes are only needed at the entry points
  /// that *start* a node's causal chain (boot, trace application).
  class ScopedOwner {
   public:
    ScopedOwner(Simulator& sim, std::uint32_t owner);
    ~ScopedOwner();
    ScopedOwner(const ScopedOwner&) = delete;
    ScopedOwner& operator=(const ScopedOwner&) = delete;

   private:
    std::uint32_t* slot_;
    std::uint32_t saved_;
  };

 private:
  SimContext& main_ctx() { return *ctxs_.front(); }
  SimContext& current_context() const;
  EventId schedule_impl(TimeUs when, std::uint32_t key, SmallFn fn);
  void drop_cancelled(SimContext& c);
  void run_until_sequential(TimeUs until);
  void run_until_parallel(TimeUs until);
  void run_islands(const EventEntry& bound);
  void run_island_phase(SimContext& c, const EventEntry& bound);
  void maybe_repartition();
  void adopt_partition(
      const std::vector<std::pair<std::uint32_t, std::uint32_t>>& owner_island,
      std::uint32_t island_count);
  void collapse_islands();
  void redistribute_entries();

  /// Returns true when the armed watchdog says stop. The wall clock is
  /// only consulted every 4096th event: a steady_clock read per event
  /// would dominate the event loop, and a 4096-event granularity is still
  /// well under a millisecond of overshoot for this simulator.
  bool watchdog_step(SimContext& c);
  void trip_watchdog(const std::string& reason);

  EventPool pool_;
  std::vector<std::unique_ptr<SimContext>> ctxs_;
  const TimeUs* main_now_ = nullptr;  ///< &main_ctx().now, for inline now()
  Rng rng_;
  std::uint64_t seed_;

  // Parallel state.
  bool parallel_ = false;
  int parallel_workers_ = 1;
  IslandSource* source_ = nullptr;
  std::unique_ptr<WorkerPool> worker_pool_;
  std::unordered_map<std::uint32_t, std::uint32_t> owner_ctx_;
  std::uint64_t partition_epoch_ = 0;
  bool have_partition_ = false;
  std::vector<SimContext*> active_scratch_;
  std::vector<EventEntry> migrate_scratch_;

  Watchdog watchdog_;
  bool watchdog_armed_ = false;
  std::atomic<bool> watchdog_tripped_{false};
  std::string watchdog_reason_;
  std::mutex watchdog_mutex_;       ///< guards the first-trip reason write
  double watchdog_deadline_ = 0.0;  ///< steady_clock seconds; 0 = no limit
};

}  // namespace gttsch
