// Discrete-event simulation core: a virtual clock plus an event queue.
#pragma once

#include "sim/event_queue.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace gttsch {

class Simulator {
 public:
  /// `seed` is the run seed from which all component streams are forked.
  explicit Simulator(std::uint64_t seed = 1);

  TimeUs now() const { return now_; }

  /// Schedule `fn` at absolute virtual time `at` (must be >= now()).
  EventId at(TimeUs when, SmallFn fn);

  /// Schedule `fn` after `delay` microseconds.
  EventId after(TimeUs delay, SmallFn fn);

  /// Keyed variants: `key` picks the ordering class among same-time events
  /// (lower first; see kDefaultEventKey). Slot-boundary timers use the
  /// node id so boundary ordering is independent of when they were armed.
  EventId at_keyed(TimeUs when, std::uint32_t key, SmallFn fn);
  EventId after_keyed(TimeUs delay, std::uint32_t key, SmallFn fn);

  void cancel(EventId id);

  /// Run events until the queue drains or the clock passes `until`.
  /// Events scheduled exactly at `until` still run.
  void run_until(TimeUs until);

  /// Run everything (use only in tests with naturally finite event sets).
  void run_all();

  std::size_t pending_events() const { return queue_.size(); }
  std::uint64_t events_processed() const { return processed_; }

  /// Root RNG for this run; components should fork() their own streams.
  Rng& rng() { return rng_; }
  std::uint64_t seed() const { return seed_; }

 private:
  TimeUs now_ = 0;
  EventQueue queue_;
  Rng rng_;
  std::uint64_t seed_;
  std::uint64_t processed_ = 0;
};

}  // namespace gttsch
