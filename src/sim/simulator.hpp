// Discrete-event simulation core: a virtual clock plus an event queue.
#pragma once

#include <string>

#include "sim/event_queue.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace gttsch {

/// Runaway-run protection for the event loop: a wall-clock budget plus a
/// livelock detector (too many events without the virtual clock moving —
/// a zero-delay self-rescheduling event would otherwise spin forever and
/// never hit a wall-clock check cheaply). Both limits <= 0 disable the
/// respective check.
struct Watchdog {
  double max_wall_s = 0.0;           ///< wall-clock budget for the whole run
  std::uint64_t livelock_events = 0; ///< same-virtual-time event budget
};

class Simulator {
 public:
  /// `seed` is the run seed from which all component streams are forked.
  explicit Simulator(std::uint64_t seed = 1);

  TimeUs now() const { return now_; }

  /// Schedule `fn` at absolute virtual time `at` (must be >= now()).
  EventId at(TimeUs when, SmallFn fn);

  /// Schedule `fn` after `delay` microseconds.
  EventId after(TimeUs delay, SmallFn fn);

  /// Keyed variants: `key` picks the ordering class among same-time events
  /// (lower first; see kDefaultEventKey). Slot-boundary timers use the
  /// node id so boundary ordering is independent of when they were armed.
  EventId at_keyed(TimeUs when, std::uint32_t key, SmallFn fn);
  EventId after_keyed(TimeUs delay, std::uint32_t key, SmallFn fn);

  void cancel(EventId id);

  /// Run events until the queue drains or the clock passes `until`.
  /// Events scheduled exactly at `until` still run.
  void run_until(TimeUs until);

  /// Run everything (use only in tests with naturally finite event sets).
  void run_all();

  std::size_t pending_events() const { return queue_.size(); }
  std::uint64_t events_processed() const { return processed_; }

  /// Root RNG for this run; components should fork() their own streams.
  Rng& rng() { return rng_; }
  std::uint64_t seed() const { return seed_; }

  /// Arms the runaway-run watchdog (idempotent; call before run_until).
  /// When it trips, the current run_until/run_all returns early and every
  /// later call returns immediately — the run is over, only partially
  /// simulated, and must not be finalized as a result.
  void arm_watchdog(const Watchdog& watchdog);

  bool watchdog_tripped() const { return watchdog_tripped_; }
  /// Human-readable cause ("" while not tripped).
  const std::string& watchdog_reason() const { return watchdog_reason_; }

 private:
  /// Returns true when the armed watchdog says stop. The wall clock is
  /// only consulted every 4096th event: a steady_clock read per event
  /// would dominate the event loop, and a 4096-event granularity is still
  /// well under a millisecond of overshoot for this simulator.
  bool watchdog_step();

  TimeUs now_ = 0;
  EventQueue queue_;
  Rng rng_;
  std::uint64_t seed_;
  std::uint64_t processed_ = 0;

  Watchdog watchdog_;
  bool watchdog_armed_ = false;
  bool watchdog_tripped_ = false;
  std::string watchdog_reason_;
  double watchdog_deadline_ = 0.0;   ///< steady_clock seconds; 0 = no limit
  TimeUs watchdog_last_time_ = -1;   ///< virtual time of the livelock window
  std::uint64_t watchdog_same_time_events_ = 0;
};

}  // namespace gttsch
