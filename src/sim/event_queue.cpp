#include "sim/event_queue.hpp"

#include "util/check.hpp"

namespace gttsch {

EventId EventQueue::schedule(TimeUs at, std::function<void()> fn) {
  const EventId id = next_id_++;
  heap_.push(Entry{at, id, std::move(fn)});
  ++live_;
  return id;
}

bool EventQueue::is_cancelled(EventId id) const {
  return id < cancelled_flags_.size() && cancelled_flags_[id];
}

void EventQueue::cancel(EventId id) {
  if (id == kInvalidEvent || id >= next_id_ || is_cancelled(id)) return;
  if (cancelled_flags_.size() <= id) cancelled_flags_.resize(id + 1, false);
  cancelled_flags_[id] = true;
  GTTSCH_CHECK(live_ > 0);
  --live_;
}

void EventQueue::drop_cancelled() {
  while (!heap_.empty() && is_cancelled(heap_.top().id)) heap_.pop();
}

TimeUs EventQueue::next_time() {
  drop_cancelled();
  return heap_.empty() ? kInfiniteTime : heap_.top().at;
}

bool EventQueue::pop_next(TimeUs& out_time, std::function<void()>& out_fn) {
  drop_cancelled();
  if (heap_.empty()) return false;
  // Move the callback out before running it: the callback may schedule
  // new events and mutate the heap.
  Entry top = heap_.top();
  heap_.pop();
  GTTSCH_CHECK(live_ > 0);
  --live_;
  out_time = top.at;
  out_fn = std::move(top.fn);
  return true;
}

bool EventQueue::run_next(TimeUs& out_time) {
  std::function<void()> fn;
  if (!pop_next(out_time, fn)) return false;
  fn();
  return true;
}

}  // namespace gttsch
