#include "sim/event_queue.hpp"

#include "util/check.hpp"

namespace gttsch {

namespace {
// An EventId packs (generation << 32) | (slot + 1); the +1 keeps 0 free for
// kInvalidEvent. Generations advance when a slot is reclaimed, so stale ids
// (fired or cancelled long ago) can never alias a live event.
constexpr EventId make_id(std::uint32_t generation, std::uint32_t slot) {
  return (static_cast<EventId>(generation) << 32) | (slot + 1u);
}
constexpr std::uint32_t id_slot(EventId id) {
  return static_cast<std::uint32_t>(id & 0xFFFFFFFFu) - 1u;
}
constexpr std::uint32_t id_generation(EventId id) {
  return static_cast<std::uint32_t>(id >> 32);
}
}  // namespace

EventId EventQueue::schedule_keyed(TimeUs at, std::uint32_t key, SmallFn fn) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(pool_.size());
    pool_.emplace_back();
  }
  Record& rec = pool_[slot];
  rec.fn = std::move(fn);
  rec.armed = true;
  rec.cancelled = false;
  heap_.push(Entry{at, next_seq_++, key, slot});
  ++live_;
  return make_id(rec.generation, slot);
}

EventQueue::Record* EventQueue::record_for(EventId id) {
  if (id == kInvalidEvent) return nullptr;
  const std::uint32_t slot = id_slot(id);
  if (slot >= pool_.size()) return nullptr;
  Record& rec = pool_[slot];
  if (rec.generation != id_generation(id)) return nullptr;  // already reclaimed
  return &rec;
}

void EventQueue::cancel(EventId id) {
  Record* rec = record_for(id);
  if (rec == nullptr || !rec->armed || rec->cancelled) return;
  rec->cancelled = true;
  rec->fn.reset();  // release captures now; the heap entry dies lazily
  GTTSCH_CHECK(live_ > 0);
  --live_;
}

void EventQueue::release_slot(std::uint32_t slot) {
  Record& rec = pool_[slot];
  rec.fn.reset();
  rec.armed = false;
  rec.cancelled = false;
  ++rec.generation;
  free_slots_.push_back(slot);
}

void EventQueue::drop_cancelled() {
  while (!heap_.empty() && pool_[heap_.top().slot].cancelled) {
    release_slot(heap_.top().slot);
    heap_.pop();
  }
}

TimeUs EventQueue::next_time() {
  drop_cancelled();
  return heap_.empty() ? kInfiniteTime : heap_.top().at;
}

bool EventQueue::pop_next(TimeUs& out_time, SmallFn& out_fn) {
  drop_cancelled();
  if (heap_.empty()) return false;
  // Move the callback out before running it: the callback may schedule
  // new events and mutate both the heap and the slot pool.
  const Entry top = heap_.top();
  heap_.pop();
  out_time = top.at;
  out_fn = std::move(pool_[top.slot].fn);
  release_slot(top.slot);
  GTTSCH_CHECK(live_ > 0);
  --live_;
  return true;
}

bool EventQueue::run_next(TimeUs& out_time) {
  SmallFn fn;
  if (!pop_next(out_time, fn)) return false;
  fn();
  return true;
}

}  // namespace gttsch
