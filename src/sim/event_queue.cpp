#include "sim/event_queue.hpp"

#include "util/check.hpp"

namespace gttsch {

EventPool::~EventPool() {
  const std::uint32_t used = next_fresh_.load(std::memory_order_acquire);
  const std::uint32_t chunk_count = (used + kChunkSize - 1u) >> kChunkShift;
  for (std::uint32_t i = 0; i < chunk_count; ++i) {
    delete[] chunks_[i].load(std::memory_order_acquire);
  }
}

std::uint32_t EventPool::alloc(std::vector<std::uint32_t>& free_slots) {
  if (!free_slots.empty()) {
    const std::uint32_t slot = free_slots.back();
    free_slots.pop_back();
    return slot;
  }
  const std::uint32_t slot = next_fresh_.fetch_add(1, std::memory_order_relaxed);
  const std::uint32_t chunk = slot >> kChunkShift;
  GTTSCH_CHECK(chunk < kMaxChunks);
  if (chunks_[chunk].load(std::memory_order_acquire) == nullptr) {
    std::lock_guard<std::mutex> lock(grow_mutex_);
    if (chunks_[chunk].load(std::memory_order_relaxed) == nullptr) {
      chunks_[chunk].store(new EventRecord[kChunkSize],
                           std::memory_order_release);
    }
  }
  return slot;
}

void EventPool::release(std::uint32_t slot,
                        std::vector<std::uint32_t>& free_slots) {
  EventRecord& rec = record(slot);
  rec.fn.reset();
  rec.armed = false;
  rec.cancelled = false;
  ++rec.generation;
  free_slots.push_back(slot);
}

EventRecord* EventPool::record_for(EventId id) {
  if (id == kInvalidEvent) return nullptr;
  const std::uint32_t slot = event_id_slot(id);
  if (slot >= next_fresh_.load(std::memory_order_acquire)) return nullptr;
  EventRecord& rec = record(slot);
  if (rec.generation != event_id_generation(id)) return nullptr;  // reclaimed
  return &rec;
}

EventId EventQueue::schedule_keyed(TimeUs at, std::uint32_t key, SmallFn fn) {
  const std::uint32_t slot = pool_.alloc(free_slots_);
  EventRecord& rec = pool_.record(slot);
  rec.fn = std::move(fn);
  rec.armed = true;
  rec.cancelled = false;
  heap_.push(EventEntry{at, next_seq_++, key, kGlobalOwner, slot});
  ++live_;
  return make_event_id(rec.generation, slot);
}

void EventQueue::cancel(EventId id) {
  EventRecord* rec = pool_.record_for(id);
  if (rec == nullptr || !rec->armed || rec->cancelled) return;
  rec->cancelled = true;
  rec->fn.reset();  // release captures now; the heap entry dies lazily
  GTTSCH_CHECK(live_ > 0);
  --live_;
}

void EventQueue::drop_cancelled() {
  while (!heap_.empty() && pool_.record(heap_.top().slot).cancelled) {
    pool_.release(heap_.top().slot, free_slots_);
    heap_.pop();
  }
}

TimeUs EventQueue::next_time() {
  drop_cancelled();
  return heap_.empty() ? kInfiniteTime : heap_.top().at;
}

bool EventQueue::pop_next(TimeUs& out_time, SmallFn& out_fn) {
  drop_cancelled();
  if (heap_.empty()) return false;
  // Move the callback out before running it: the callback may schedule
  // new events and mutate both the heap and the slot pool.
  const EventEntry top = heap_.pop();
  out_time = top.at;
  out_fn = std::move(pool_.record(top.slot).fn);
  pool_.release(top.slot, free_slots_);
  GTTSCH_CHECK(live_ > 0);
  --live_;
  return true;
}

bool EventQueue::run_next(TimeUs& out_time) {
  SmallFn fn;
  if (!pop_next(out_time, fn)) return false;
  fn();
  return true;
}

}  // namespace gttsch
