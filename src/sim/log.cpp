#include "sim/log.hpp"

#include <atomic>
#include <cstdio>

namespace gttsch {
namespace {
// Atomics: the campaign runner drives many simulators from worker threads,
// and all of them consult the shared level/clock.
std::atomic<LogLevel> g_level{LogLevel::kNone};
std::atomic<const TimeUs*> g_clock{nullptr};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "E";
    case LogLevel::kWarn: return "W";
    case LogLevel::kInfo: return "I";
    case LogLevel::kDebug: return "D";
    default: return "?";
  }
}
}  // namespace

void Log::set_level(LogLevel level) { g_level = level; }
LogLevel Log::level() { return g_level; }
void Log::set_clock(const TimeUs* now) { g_clock = now; }

void Log::write(LogLevel level, const char* component, const char* fmt, ...) {
  if (static_cast<int>(g_level.load(std::memory_order_relaxed)) <
      static_cast<int>(level)) {
    return;
  }
  char body[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(body, sizeof body, fmt, args);
  va_end(args);
  const TimeUs* clock = g_clock.load(std::memory_order_relaxed);
  if (clock != nullptr) {
    std::fprintf(stderr, "[%10.4fs] %s %-8s %s\n", us_to_s(*clock), level_tag(level),
                 component, body);
  } else {
    std::fprintf(stderr, "%s %-8s %s\n", level_tag(level), component, body);
  }
}

}  // namespace gttsch
