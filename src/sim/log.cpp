#include "sim/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

namespace gttsch {
namespace {
// Atomics: the campaign runner drives many simulators from worker threads,
// and all of them consult the shared level/clock. g_max is the fast gate
// (max of the base level and every override); the per-component map and
// the JSON sink live behind g_mutex on the slow emit path.
std::atomic<LogLevel> g_base{LogLevel::kNone};
std::atomic<LogLevel> g_max{LogLevel::kNone};
std::atomic<bool> g_has_overrides{false};
std::atomic<const TimeUs*> g_clock{nullptr};
std::mutex g_mutex;
std::map<std::string, LogLevel>& overrides() {
  static std::map<std::string, LogLevel> map;
  return map;
}
std::function<void(const std::string&)>& json_sink() {
  static std::function<void(const std::string&)> sink;
  return sink;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "E";
    case LogLevel::kWarn: return "W";
    case LogLevel::kInfo: return "I";
    case LogLevel::kDebug: return "D";
    default: return "?";
  }
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
    default: return "none";
  }
}

bool parse_level(const std::string& word, LogLevel* out) {
  if (word == "none") *out = LogLevel::kNone;
  else if (word == "error") *out = LogLevel::kError;
  else if (word == "warn") *out = LogLevel::kWarn;
  else if (word == "info") *out = LogLevel::kInfo;
  else if (word == "debug") *out = LogLevel::kDebug;
  else return false;
  return true;
}

/// Recomputes g_max from the base level and overrides. Call under g_mutex.
void refresh_max() {
  LogLevel max = g_base.load(std::memory_order_relaxed);
  for (const auto& [component, level] : overrides()) {
    if (static_cast<int>(level) > static_cast<int>(max)) max = level;
  }
  g_max.store(max, std::memory_order_relaxed);
  g_has_overrides.store(!overrides().empty(), std::memory_order_relaxed);
}

void append_json_escaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
      *out += buf;
    } else {
      out->push_back(c);
    }
  }
}

// $GTTSCH_LOG is applied before main so every binary honors it without
// per-tool wiring.
const bool g_env_applied = [] {
  Log::init_from_env();
  return true;
}();

}  // namespace

void Log::set_level(LogLevel level) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_base.store(level, std::memory_order_relaxed);
  refresh_max();
}

LogLevel Log::level() { return g_max.load(std::memory_order_relaxed); }

void Log::set_component_level(const std::string& component, LogLevel level) {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (component.empty()) {
    overrides().clear();
  } else {
    overrides()[component] = level;
  }
  refresh_max();
}

LogLevel Log::component_level(const std::string& component) {
  std::lock_guard<std::mutex> lock(g_mutex);
  const auto it = overrides().find(component);
  return it != overrides().end() ? it->second
                                 : g_base.load(std::memory_order_relaxed);
}

bool Log::configure(const std::string& spec, std::string* error) {
  LogLevel base = g_base.load(std::memory_order_relaxed);
  bool base_set = false;
  std::map<std::string, LogLevel> parsed;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string item =
        spec.substr(pos, (comma == std::string::npos ? spec.size() : comma) - pos);
    pos = comma == std::string::npos ? spec.size() + 1 : comma + 1;
    if (item.empty()) {
      if (error != nullptr) *error = "empty item in log spec \"" + spec + "\"";
      return false;
    }
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      if (!parse_level(item, &base)) {
        if (error != nullptr) *error = "unknown log level \"" + item + "\"";
        return false;
      }
      if (base_set) {
        if (error != nullptr)
          *error = "global level given twice in \"" + spec + "\"";
        return false;
      }
      base_set = true;
      continue;
    }
    const std::string component = item.substr(0, eq);
    const std::string level_word = item.substr(eq + 1);
    LogLevel level;
    if (component.empty() || !parse_level(level_word, &level)) {
      if (error != nullptr) *error = "malformed log item \"" + item + "\"";
      return false;
    }
    parsed[component] = level;  // last occurrence wins
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  g_base.store(base, std::memory_order_relaxed);
  overrides() = std::move(parsed);
  refresh_max();
  return true;
}

void Log::init_from_env() {
  const char* spec = std::getenv("GTTSCH_LOG");
  if (spec == nullptr || *spec == '\0') return;
  std::string error;
  if (!configure(spec, &error)) {
    std::fprintf(stderr, "GTTSCH_LOG: %s\n", error.c_str());
    std::exit(2);
  }
}

void Log::set_clock(const TimeUs* now) { g_clock = now; }

void Log::set_json_sink(std::function<void(const std::string&)> sink) {
  std::lock_guard<std::mutex> lock(g_mutex);
  json_sink() = std::move(sink);
}

void Log::write(LogLevel level, const char* component, const char* fmt, ...) {
  if (static_cast<int>(g_max.load(std::memory_order_relaxed)) <
      static_cast<int>(level)) {
    return;
  }
  if (g_has_overrides.load(std::memory_order_relaxed) &&
      static_cast<int>(component_level(component)) < static_cast<int>(level)) {
    return;
  }
  char body[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(body, sizeof body, fmt, args);
  va_end(args);
  const TimeUs* clock = g_clock.load(std::memory_order_relaxed);
  if (clock != nullptr) {
    std::fprintf(stderr, "[%10.4fs] %s %-8s %s\n", us_to_s(*clock), level_tag(level),
                 component, body);
  } else {
    std::fprintf(stderr, "%s %-8s %s\n", level_tag(level), component, body);
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  if (json_sink()) {
    std::string line = "{";
    if (clock != nullptr) {
      char head[48];
      std::snprintf(head, sizeof head, "\"t_s\":%.6f,", us_to_s(*clock));
      line += head;
    }
    line += "\"level\":\"";
    line += level_name(level);
    line += "\",\"component\":\"";
    append_json_escaped(&line, component);
    line += "\",\"msg\":\"";
    append_json_escaped(&line, body);
    line += "\"}";
    json_sink()(line);
  }
}

}  // namespace gttsch
