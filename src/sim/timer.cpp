#include "sim/timer.hpp"

namespace gttsch {

void OneShotTimer::start(TimeUs delay, SmallFn fn) {
  stop();
  fn_ = std::move(fn);
  id_ = sim_.after_keyed(delay, key_, [this] {
    id_ = kInvalidEvent;
    // Move to a local first: the callback may re-arm this timer (which
    // assigns fn_) without destroying the closure mid-invocation.
    SmallFn f = std::move(fn_);
    f();
  });
}

void OneShotTimer::stop() {
  if (id_ != kInvalidEvent) {
    sim_.cancel(id_);
    id_ = kInvalidEvent;
  }
  fn_.reset();
}

void PeriodicTimer::start(TimeUs first_delay, TimeUs period, std::function<void()> fn,
                          Rng* jitter_rng, TimeUs jitter) {
  stop();
  period_ = period;
  jitter_ = jitter;
  jitter_rng_ = jitter_rng;
  fn_ = std::move(fn);
  arm(first_delay);
}

void PeriodicTimer::arm(TimeUs delay) {
  TimeUs extra = 0;
  if (jitter_ > 0 && jitter_rng_ != nullptr)
    extra = static_cast<TimeUs>(jitter_rng_->uniform(static_cast<std::uint64_t>(jitter_)));
  id_ = sim_.after(delay + extra, [this] {
    id_ = kInvalidEvent;
    fn_();
    // fn_ may have stopped the timer; only re-arm if still configured.
    if (period_ > 0 && id_ == kInvalidEvent && fn_) arm(period_);
  });
}

void PeriodicTimer::stop() {
  if (id_ != kInvalidEvent) {
    sim_.cancel(id_);
    id_ = kInvalidEvent;
  }
  period_ = 0;
  fn_ = nullptr;
}

}  // namespace gttsch
