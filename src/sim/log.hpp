// Sim-time-stamped logging with per-run verbosity. Off by default so large
// parameter sweeps stay quiet; tests and examples can raise the level.
//
// Per-component overrides let 200-node debugging keep the medium layer
// quiet: the GTTSCH_LOG environment variable (or Log::configure) accepts
// "debug" (global level), "mac=debug,rpl=info" (component overrides) or a
// mix ("warn,mac=debug"). Malformed specs abort the process at startup.
//
// Besides the printf path to stderr, a machine-readable JSON sink can be
// installed: every emitted line is also rendered as one JSON object
// {"t_s":..., "level":..., "component":..., "msg":...} and handed to it.
#pragma once

#include <cstdarg>
#include <functional>
#include <string>

#include "util/types.hpp"

namespace gttsch {

enum class LogLevel { kNone = 0, kError, kWarn, kInfo, kDebug };

class Log {
 public:
  static void set_level(LogLevel level);

  /// The most verbose level any component can emit at — the cheap gate
  /// the GTTSCH_LOG macro uses before the per-component check in write().
  static LogLevel level();

  /// Level override for one component ("" clears all overrides).
  static void set_component_level(const std::string& component, LogLevel level);

  /// Effective level for a component (its override, else the global base).
  static LogLevel component_level(const std::string& component);

  /// Parse and apply a level spec: "LEVEL" and/or "component=LEVEL" items,
  /// comma-separated; levels are none/error/warn/info/debug. Replaces any
  /// previous overrides. Returns false (without applying anything) on a
  /// malformed spec, with a diagnostic in `error`.
  static bool configure(const std::string& spec, std::string* error);

  /// Apply $GTTSCH_LOG; a malformed value prints the parse error and
  /// exits(2) — misconfigured debugging should fail loudly, not silently
  /// log nothing. Runs automatically at program startup.
  static void init_from_env();

  /// Sim clock used for timestamps; may be null (wall-less logging).
  static void set_clock(const TimeUs* now);

  /// Machine-readable sink: receives each emitted record as one JSON
  /// object (no trailing newline) alongside the stderr printf path.
  /// Pass nullptr to uninstall. The sink runs under the log mutex.
  static void set_json_sink(std::function<void(const std::string&)> sink);

  static void write(LogLevel level, const char* component, const char* fmt, ...)
      __attribute__((format(printf, 3, 4)));
};

#define GTTSCH_LOG(lvl, component, ...)                                   \
  do {                                                                    \
    if (static_cast<int>(::gttsch::Log::level()) >= static_cast<int>(lvl)) \
      ::gttsch::Log::write(lvl, component, __VA_ARGS__);                  \
  } while (false)

#define GTTSCH_LOG_INFO(component, ...) GTTSCH_LOG(::gttsch::LogLevel::kInfo, component, __VA_ARGS__)
#define GTTSCH_LOG_WARN(component, ...) GTTSCH_LOG(::gttsch::LogLevel::kWarn, component, __VA_ARGS__)
#define GTTSCH_LOG_DEBUG(component, ...) GTTSCH_LOG(::gttsch::LogLevel::kDebug, component, __VA_ARGS__)

}  // namespace gttsch
