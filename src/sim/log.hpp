// Sim-time-stamped logging with per-run verbosity. Off by default so large
// parameter sweeps stay quiet; tests and examples can raise the level.
#pragma once

#include <cstdarg>
#include <string>

#include "util/types.hpp"

namespace gttsch {

enum class LogLevel { kNone = 0, kError, kWarn, kInfo, kDebug };

class Log {
 public:
  static void set_level(LogLevel level);
  static LogLevel level();

  /// Sim clock used for timestamps; may be null (wall-less logging).
  static void set_clock(const TimeUs* now);

  static void write(LogLevel level, const char* component, const char* fmt, ...)
      __attribute__((format(printf, 3, 4)));
};

#define GTTSCH_LOG(lvl, component, ...)                                   \
  do {                                                                    \
    if (static_cast<int>(::gttsch::Log::level()) >= static_cast<int>(lvl)) \
      ::gttsch::Log::write(lvl, component, __VA_ARGS__);                  \
  } while (false)

#define GTTSCH_LOG_INFO(component, ...) GTTSCH_LOG(::gttsch::LogLevel::kInfo, component, __VA_ARGS__)
#define GTTSCH_LOG_WARN(component, ...) GTTSCH_LOG(::gttsch::LogLevel::kWarn, component, __VA_ARGS__)
#define GTTSCH_LOG_DEBUG(component, ...) GTTSCH_LOG(::gttsch::LogLevel::kDebug, component, __VA_ARGS__)

}  // namespace gttsch
