// Priority queue of timed events with stable FIFO ordering at equal times.
//
// Since the island-parallel scheduler (PR 10) the event machinery is split
// into three pieces so multiple per-island heaps can share one callback
// store:
//   * EventPool — chunked, address-stable slot storage for callbacks.
//     EventIds stay valid while their entry migrates between heaps during
//     island repartitioning, and chunk growth is thread-safe so islands
//     can allocate slots concurrently.
//   * EventHeap — an iterable binary heap of EventEntry (std::push_heap /
//     std::pop_heap over a plain vector), so a repartition can sweep and
//     redistribute entries without draining through the comparator.
//   * EventQueue — the legacy single-threaded facade composed of one pool
//     and one heap; unit tests and simple consumers use it unchanged.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "sim/small_fn.hpp"
#include "util/types.hpp"

namespace gttsch {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/// Ordering class for events that share a timestamp. Most events use the
/// default key and keep FIFO (insertion-order) semantics among themselves;
/// lower keys run first. TSCH slot-boundary events are keyed by node id so
/// that (a) a slot boundary always precedes same-instant protocol events —
/// mirroring a real MAC, where the slot interrupt preempts deferred work —
/// and (b) nodes whose boundaries coincide fire in a fixed id order. Both
/// properties make the slot-skipping fast path bit-identical to per-slot
/// stepping: they decouple tie-breaking from *when* a timer was armed,
/// which is precisely what differs between the two modes.
inline constexpr std::uint32_t kDefaultEventKey = 0xFFFFFFFFu;

/// Owner of an event that belongs to no particular node: scenario-level
/// bookkeeping (trace application, measurement boundaries, stats timers).
/// Global-owner events sort after node-owned events at equal (at, key) and
/// always execute on the main thread between island phases.
inline constexpr std::uint32_t kGlobalOwner = 0xFFFFFFFFu;

/// A scheduled event as it sits in a heap. `owner` is the node the event
/// belongs to (kGlobalOwner for scenario-level events); it participates in
/// the ordering so that ties between events of *different* nodes resolve
/// by node id — independent of which island executed the scheduling code,
/// which is what makes parallel island stepping bit-identical to the
/// sequential reference mode. Ties within one owner keep FIFO order via
/// `seq`, whose per-owner relative order is mode-independent as well.
struct EventEntry {
  TimeUs at = 0;
  std::uint64_t seq = 0;                 // per-context insertion order
  std::uint32_t key = kDefaultEventKey;  // ordering class at equal times
  std::uint32_t owner = kGlobalOwner;    // node id, or kGlobalOwner
  std::uint32_t slot = 0;                // index into the EventPool
};

/// Heap comparator: "a fires later than b". Full event order is
/// (at, key, owner, seq) ascending.
struct EventLater {
  bool operator()(const EventEntry& a, const EventEntry& b) const {
    if (a.at != b.at) return a.at > b.at;
    if (a.key != b.key) return a.key > b.key;
    if (a.owner != b.owner) return a.owner > b.owner;
    return a.seq > b.seq;
  }
};

/// True when `a` fires strictly before `b` in the full event order.
inline bool event_before(const EventEntry& a, const EventEntry& b) {
  return EventLater{}(b, a);
}

/// An EventId packs (generation << 32) | (slot + 1); the +1 keeps 0 free
/// for kInvalidEvent. Generations advance when a slot is reclaimed, so
/// stale ids (fired or cancelled long ago) can never alias a live event.
constexpr EventId make_event_id(std::uint32_t generation, std::uint32_t slot) {
  return (static_cast<EventId>(generation) << 32) | (slot + 1u);
}
constexpr std::uint32_t event_id_slot(EventId id) {
  return static_cast<std::uint32_t>(id & 0xFFFFFFFFu) - 1u;
}
constexpr std::uint32_t event_id_generation(EventId id) {
  return static_cast<std::uint32_t>(id >> 32);
}

/// Callback slot: the payload an EventEntry points at.
struct EventRecord {
  SmallFn fn;
  std::uint32_t generation = 1;
  std::uint32_t ctx = 0;   // execution context whose heap holds the entry
  bool armed = false;      // a heap entry references this slot
  bool cancelled = false;  // armed but logically dead; reclaimed on pop
};

/// Chunked slot store. Chunks are allocated once and never move, so
/// `record()` references stay valid across growth — and growth itself is
/// guarded so concurrent island threads can allocate fresh slots safely.
/// Freelists are *external* (owned by each execution context): slot reuse
/// is context-local and needs no synchronization.
class EventPool {
 public:
  static constexpr std::uint32_t kChunkShift = 12;  // 4096 records per chunk
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  static constexpr std::uint32_t kMaxChunks = 2048;  // 8M concurrent events

  EventPool() = default;
  ~EventPool();
  EventPool(const EventPool&) = delete;
  EventPool& operator=(const EventPool&) = delete;

  /// Pop a slot from `free_slots`, or carve a fresh one from the chunk
  /// store. The returned record has fn reset and armed/cancelled false.
  std::uint32_t alloc(std::vector<std::uint32_t>& free_slots);

  /// Reclaim a slot after its entry left a heap: resets the callback,
  /// bumps the generation, and pushes the slot onto `free_slots`.
  void release(std::uint32_t slot, std::vector<std::uint32_t>& free_slots);

  EventRecord& record(std::uint32_t slot) {
    return chunks_[slot >> kChunkShift].load(std::memory_order_acquire)
        [slot & (kChunkSize - 1u)];
  }

  /// Generation-checked lookup; nullptr for invalid/stale ids.
  EventRecord* record_for(EventId id);

  /// Slots ever carved from the chunk store — bounded by the peak count of
  /// concurrently pending events (regression hook for the memory tests).
  std::size_t slots_allocated() const {
    return next_fresh_.load(std::memory_order_acquire);
  }

 private:
  std::array<std::atomic<EventRecord*>, kMaxChunks> chunks_{};
  std::atomic<std::uint32_t> next_fresh_{0};
  std::mutex grow_mutex_;
};

/// Iterable min-heap of EventEntry. Exposes its backing vector so a
/// repartition can sweep entries out and `heapify()` what remains.
class EventHeap {
 public:
  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  const EventEntry& top() const { return entries_.front(); }

  void push(const EventEntry& entry) {
    entries_.push_back(entry);
    std::push_heap(entries_.begin(), entries_.end(), EventLater{});
  }

  EventEntry pop() {
    std::pop_heap(entries_.begin(), entries_.end(), EventLater{});
    EventEntry top = entries_.back();
    entries_.pop_back();
    return top;
  }

  /// Direct access for redistribution; call heapify() after mutating.
  std::vector<EventEntry>& raw() { return entries_; }
  void heapify() {
    std::make_heap(entries_.begin(), entries_.end(), EventLater{});
  }

 private:
  std::vector<EventEntry> entries_;
};

/// Min-heap of (time, key, owner, insertion order) -> callback. Events
/// inserted earlier fire first among equal (time, key, owner) tuples,
/// which keeps runs reproducible. Cancellation is lazy: cancelled entries
/// are skipped on pop.
///
/// Callbacks live in a recycled slot pool (an EventId is slot + generation),
/// so the queue performs no per-event heap allocation in steady state and
/// its memory footprint is bounded by the peak number of *concurrently
/// pending* events — not, as the earlier id-indexed cancellation bitmap
/// was, by the total number of events ever scheduled.
class EventQueue {
 public:
  EventId schedule(TimeUs at, SmallFn fn) {
    return schedule_keyed(at, kDefaultEventKey, std::move(fn));
  }
  EventId schedule_keyed(TimeUs at, std::uint32_t key, SmallFn fn);
  void cancel(EventId id);

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  /// Time of the earliest live event; kInfiniteTime when empty.
  TimeUs next_time();

  /// Pop the earliest live event without running it. Returns false if
  /// none. The caller advances its clock to `out_time` *before* invoking
  /// `out_fn`, so callbacks observe the correct current time.
  bool pop_next(TimeUs& out_time, SmallFn& out_fn);

  /// Pop and run the earliest live event. Returns false if none.
  bool run_next(TimeUs& out_time);

  /// Number of callback slots ever allocated — bounded by the peak count of
  /// concurrently pending events (regression hook for the memory tests).
  std::size_t slot_pool_size() const { return pool_.slots_allocated(); }

 private:
  void drop_cancelled();

  EventPool pool_;
  EventHeap heap_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_ = 0;
  std::uint64_t next_seq_ = 1;
};

}  // namespace gttsch
