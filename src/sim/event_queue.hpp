// Priority queue of timed events with stable FIFO ordering at equal times.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/types.hpp"

namespace gttsch {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/// Min-heap of (time, insertion order) -> callback. Events inserted earlier
/// fire first among equal timestamps, which keeps runs reproducible.
/// Cancellation is lazy: cancelled entries are skipped on pop.
class EventQueue {
 public:
  EventId schedule(TimeUs at, std::function<void()> fn);
  void cancel(EventId id);

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  /// Time of the earliest live event; kInfiniteTime when empty.
  TimeUs next_time();

  /// Pop the earliest live event without running it. Returns false if
  /// none. The caller advances its clock to `out_time` *before* invoking
  /// `out_fn`, so callbacks observe the correct current time.
  bool pop_next(TimeUs& out_time, std::function<void()>& out_fn);

  /// Pop and run the earliest live event. Returns false if none.
  bool run_next(TimeUs& out_time);

 private:
  struct Entry {
    TimeUs at;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;
    }
  };

  void drop_cancelled();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::vector<EventId> cancelled_;  // sorted lazily via flag set
  std::size_t live_ = 0;
  EventId next_id_ = 1;

  bool is_cancelled(EventId id) const;
  std::vector<bool> cancelled_flags_;  // indexed by id (grows as needed)
};

}  // namespace gttsch
