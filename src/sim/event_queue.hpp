// Priority queue of timed events with stable FIFO ordering at equal times.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/small_fn.hpp"
#include "util/types.hpp"

namespace gttsch {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/// Ordering class for events that share a timestamp. Most events use the
/// default key and keep FIFO (insertion-order) semantics among themselves;
/// lower keys run first. TSCH slot-boundary events are keyed by node id so
/// that (a) a slot boundary always precedes same-instant protocol events —
/// mirroring a real MAC, where the slot interrupt preempts deferred work —
/// and (b) nodes whose boundaries coincide fire in a fixed id order. Both
/// properties make the slot-skipping fast path bit-identical to per-slot
/// stepping: they decouple tie-breaking from *when* a timer was armed,
/// which is precisely what differs between the two modes.
inline constexpr std::uint32_t kDefaultEventKey = 0xFFFFFFFFu;

/// Min-heap of (time, key, insertion order) -> callback. Events inserted
/// earlier fire first among equal (time, key) pairs, which keeps runs
/// reproducible. Cancellation is lazy: cancelled entries are skipped on pop.
///
/// Callbacks live in a recycled slot pool (an EventId is slot + generation),
/// so the queue performs no per-event heap allocation in steady state and
/// its memory footprint is bounded by the peak number of *concurrently
/// pending* events — not, as the earlier id-indexed cancellation bitmap
/// was, by the total number of events ever scheduled.
class EventQueue {
 public:
  EventId schedule(TimeUs at, SmallFn fn) {
    return schedule_keyed(at, kDefaultEventKey, std::move(fn));
  }
  EventId schedule_keyed(TimeUs at, std::uint32_t key, SmallFn fn);
  void cancel(EventId id);

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  /// Time of the earliest live event; kInfiniteTime when empty.
  TimeUs next_time();

  /// Pop the earliest live event without running it. Returns false if
  /// none. The caller advances its clock to `out_time` *before* invoking
  /// `out_fn`, so callbacks observe the correct current time.
  bool pop_next(TimeUs& out_time, SmallFn& out_fn);

  /// Pop and run the earliest live event. Returns false if none.
  bool run_next(TimeUs& out_time);

  /// Number of callback slots ever allocated — bounded by the peak count of
  /// concurrently pending events (regression hook for the memory tests).
  std::size_t slot_pool_size() const { return pool_.size(); }

 private:
  struct Entry {
    TimeUs at;
    std::uint64_t seq;   // global insertion order (FIFO tie-break)
    std::uint32_t key;   // ordering class at equal times
    std::uint32_t slot;  // index into pool_
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      if (a.key != b.key) return a.key > b.key;
      return a.seq > b.seq;
    }
  };
  struct Record {
    SmallFn fn;
    std::uint32_t generation = 1;
    bool armed = false;      // an entry in the heap references this slot
    bool cancelled = false;  // armed but logically dead; reclaimed on pop
  };

  void drop_cancelled();
  void release_slot(std::uint32_t slot);
  Record* record_for(EventId id);

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::vector<Record> pool_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_ = 0;
  std::uint64_t next_seq_ = 1;
};

}  // namespace gttsch
