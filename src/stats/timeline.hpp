// Time-series recorder: samples named per-node gauges on a fixed period
// and dumps them as CSV — used to visualise the game's convergence (queue
// lengths, allocated Tx cells, ETX) over a run.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "util/types.hpp"

namespace gttsch {

class Timeline {
 public:
  Timeline(Simulator& sim, TimeUs period);

  /// Register a gauge; `fn` is sampled once per period.
  void add_gauge(std::string name, std::function<double()> fn);

  /// Begin sampling (first sample after one period).
  void start();
  void stop();

  struct Sample {
    TimeUs at;
    std::vector<double> values;  ///< parallel to gauge registration order
  };

  const std::vector<std::string>& gauge_names() const { return names_; }
  const std::vector<Sample>& samples() const { return samples_; }

  /// Write "time_s,<gauge...>" rows to `path`. Returns false on I/O error.
  bool write_csv(const std::string& path) const;

  /// Last sampled value of a gauge (by name); NaN if never sampled.
  double latest(const std::string& name) const;

 private:
  void sample_once();

  Simulator& sim_;
  TimeUs period_;
  std::vector<std::string> names_;
  std::vector<std::function<double()>> gauges_;
  std::vector<Sample> samples_;
  PeriodicTimer timer_;
};

}  // namespace gttsch
