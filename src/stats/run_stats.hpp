// Run-level metric collection: everything the paper's six evaluation
// panels report (PDR, end-to-end delay, packet loss per minute, radio duty
// cycle, queue loss per node, received packets per minute).
//
// Measurement windowing: packets count toward PDR/throughput only when
// generated inside [warmup, measure_end] — join transients and the final
// drain are excluded, like steady-state Cooja measurements.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "phy/radio.hpp"
#include "phy/wire.hpp"
#include "stats/histogram.hpp"
#include "util/types.hpp"

namespace gttsch {

struct NodeCounters {
  std::uint64_t generated = 0;       ///< app packets originated (in window)
  std::uint64_t delivered_origin = 0;  ///< of those, delivered to a root
  std::uint64_t delivered_sink = 0;    ///< packets this (root) node sank
  std::uint64_t forwarded = 0;
  std::uint64_t queue_drops = 0;  ///< enqueue failures (queue loss)
  std::uint64_t mac_drops = 0;    ///< retry budget exhausted
  std::uint64_t no_route_drops = 0;
};

/// The six panel metrics plus diagnostics.
struct RunMetrics {
  double pdr_percent = 0.0;
  double avg_delay_ms = 0.0;
  double p95_delay_ms = 0.0;
  double loss_per_minute = 0.0;        ///< (generated - delivered) / min
  double duty_cycle_percent = 0.0;     ///< mean over nodes
  double queue_loss_per_node = 0.0;    ///< total queue drops / #nodes
  double throughput_per_minute = 0.0;  ///< delivered / min
  std::uint64_t generated = 0;
  std::uint64_t delivered = 0;
  std::uint64_t queue_drops = 0;
  std::uint64_t mac_drops = 0;
  std::uint64_t no_route_drops = 0;
  double mean_hops = 0.0;
  double measure_minutes = 0.0;
  std::uint64_t nodes_joined = 0;  ///< nodes with an RPL parent (or root)
  std::uint64_t node_count = 0;

  // --- churn-phase split (set when the run's trace kills nodes) --------
  // The measurement window is partitioned at the first failure (t1) and
  // the last failure plus a settle margin (t2): pre = [warmup, t1),
  // churn = [t1, t2), post = [t2, measure_end]. Both generated and
  // delivered are attributed by *generation* time, so the three phases
  // sum exactly to the whole-run counters above.
  std::uint64_t churn_phases = 0;     ///< 0 = no split, 1 = split active
  std::uint64_t pre_generated = 0;
  std::uint64_t churn_generated = 0;
  std::uint64_t post_generated = 0;
  std::uint64_t pre_delivered = 0;
  std::uint64_t churn_delivered = 0;
  std::uint64_t post_delivered = 0;
  double pre_pdr_percent = 0.0;
  double churn_pdr_percent = 0.0;
  double post_pdr_percent = 0.0;
  double pre_avg_delay_ms = 0.0;
  double churn_avg_delay_ms = 0.0;
  double post_avg_delay_ms = 0.0;

  // --- probe time-series summary (telemetry runs only) -----------------
  std::uint64_t probes_sent = 0;
  std::uint64_t probes_delivered = 0;
  double probe_pdr_percent = 0.0;
  double probe_avg_latency_ms = 0.0;

  // --- recovery metrics (fault-injection runs) -------------------------
  // Per-node recovery is a three-stage pipeline per failure: fail ->
  // reboot -> re-associate (rejoin) -> first packet delivered at a root.
  // A later failure of the same node abandons (censors) any unfinished
  // pipeline. Network-level time-to-recover (TTR) is measured from the
  // last churn event until the 10 s generation-time-bucketed PDR climbs
  // back to >= 95% of the pre-churn baseline and stays there; runs that
  // never recover report the censored distance to measure_end.
  std::uint64_t node_failures = 0;    ///< fail events on registered nodes
  std::uint64_t node_revivals = 0;    ///< completed reboots
  std::uint64_t node_rejoins = 0;     ///< reboots that re-associated in-run
  std::uint64_t orphan_intervals = 0; ///< joined -> orphan transitions
  std::uint64_t recovery_ttr_censored = 0;  ///< 1 = PDR never re-converged
  double recovery_rejoin_s = 0.0;     ///< mean fail -> re-association (s)
  double recovery_first_delivery_s = 0.0;  ///< mean fail -> first delivery (s)
  double recovery_ttr_s = 0.0;        ///< last churn -> PDR recovered (s)
};

/// Settle margin after the last trace churn event before the "post"
/// churn phase begins: routes usually need tens of seconds to re-converge.
inline constexpr TimeUs kChurnSettle = 60000000;

/// Generation-time bucket width for the TTR (time-to-recover) scan.
inline constexpr TimeUs kRecoveryBucket = 10000000;
/// A post-churn bucket counts as recovered once its PDR reaches this
/// fraction of the pre-churn baseline PDR.
inline constexpr double kRecoveryFraction = 0.95;

class RunStats {
 public:
  /// Window: [warmup, measure_end]. The simulation may run a little past
  /// measure_end so in-flight packets can still be delivered and counted.
  RunStats(TimeUs warmup, TimeUs measure_end);

  void register_node(NodeId id, bool is_root, const Radio* radio);

  // --- event hooks (called by the Node layer) ---------------------------
  void on_generated(NodeId origin, TimeUs now);
  void on_delivered(NodeId root, const DataPayload& data, TimeUs now);
  void on_forwarded(NodeId node, TimeUs now);
  void on_queue_drop(NodeId node, TimeUs now);
  void on_mac_drop(NodeId node, TimeUs now);
  void on_no_route(NodeId node, TimeUs now);

  // --- node-lifecycle hooks (fault injection) ---------------------------
  /// The node's stack halted (trace `fail`). Opens a recovery pipeline;
  /// an unfinished pipeline from an earlier failure is abandoned.
  void on_node_failed(NodeId node, TimeUs now);
  /// The node crash-rebooted (trace `revive`).
  void on_node_rebooted(NodeId node, TimeUs now);
  /// The node (re-)associated with the TSCH network. Only associations
  /// following a reboot feed the rejoin-latency metric.
  void on_associated(NodeId node, TimeUs now);

  /// Call exactly at t = warmup to snapshot radio on-times.
  void begin_measurement();

  /// Call exactly at t = measure_end to close the duty-cycle window (the
  /// drain period afterwards is excluded).
  void end_measurement();

  /// Report whether a node ended the run joined. `at` orders the update
  /// against the event hooks in concurrent mode; the default (infinity)
  /// is for the post-run sweep, which must land after every run event.
  void set_joined(NodeId node, bool joined, TimeUs at = kInfiniteTime);

  /// Enable the churn-phase split: pre = [warmup, t1), churn = [t1, t2),
  /// post = [t2, measure_end]. Call before the run starts.
  void set_churn_phases(TimeUs t1, TimeUs t2);

  /// Concurrent recording mode (island-parallel runs): every event hook
  /// appends to a per-*event-owner* log instead of mutating shared state
  /// — an op's owner is always a node of the executing island, so each
  /// lane only touches its own logs, no locking — and finalize() replays
  /// the merged log sorted by (time, event key, owner) with per-owner
  /// recorded order breaking ties. That is exactly the simulator's
  /// sequential event order, so the replayed accumulation (including
  /// every order-sensitive floating-point sum) is bit-identical to the
  /// direct sequential application, whichever mode recorded the ops.
  /// Only begin/end_measurement and finalize stay main-thread-only.
  void set_concurrent(bool concurrent, const Simulator* sim) {
    concurrent_ = concurrent && sim != nullptr;
    sim_ = sim;
  }
  bool concurrent() const { return concurrent_; }

  /// Replays any pending concurrent log (no-op in sequential mode), then
  /// computes the metrics. Idempotent, but no longer const: replay folds
  /// the logs into the accumulator state.
  RunMetrics finalize();
  /// NOTE: in concurrent mode this is only up to date after finalize().
  const std::map<NodeId, NodeCounters>& per_node() const { return counters_; }
  TimeUs warmup() const { return warmup_; }
  TimeUs measure_end() const { return measure_end_; }

 private:
  enum class OpType : std::uint8_t {
    kGenerated,
    kDelivered,
    kForwarded,
    kQueueDrop,
    kMacDrop,
    kNoRoute,
    kFailed,
    kRebooted,
    kAssociated,
    kJoined,
  };
  /// One logged event hook (concurrent mode). `recorder` is the node the
  /// hook names; `key` the executing event's ordering key (part of the
  /// replay sort); `a`/`t2`/`hops` carry the delivery payload fields;
  /// `flag` carries set_joined's value.
  struct Op {
    TimeUs at;
    TimeUs t2 = 0;
    std::uint32_t key = 0;
    NodeId recorder = 0;
    NodeId a = 0;
    std::uint16_t hops = 0;
    OpType type = OpType::kGenerated;
    bool flag = false;
  };
  void record(NodeId recorder, Op op);
  void replay();
  void apply(const Op& op);

  void apply_generated(NodeId origin, TimeUs now);
  void apply_delivered(NodeId root, NodeId origin, TimeUs generated_at,
                       std::uint16_t hops, TimeUs now);
  void apply_forwarded(NodeId node, TimeUs now);
  void apply_queue_drop(NodeId node, TimeUs now);
  void apply_mac_drop(NodeId node, TimeUs now);
  void apply_no_route(NodeId node, TimeUs now);
  void apply_node_failed(NodeId node, TimeUs now);
  void apply_node_rebooted(NodeId node, TimeUs now);
  void apply_associated(NodeId node, TimeUs now);
  void apply_joined(NodeId node, bool joined);

  bool in_window(TimeUs t) const { return t >= warmup_ && t <= measure_end_; }
  /// Phase index (0 pre / 1 churn / 2 post) of an in-window timestamp.
  std::size_t phase_of(TimeUs t) const {
    return t < phase_t1_ ? 0 : t < phase_t2_ ? 1 : 2;
  }

  /// Generation-time bucket index of an in-window timestamp.
  std::size_t bucket_of(TimeUs t) const {
    return static_cast<std::size_t>((t - warmup_) / kRecoveryBucket);
  }
  struct Bucket;
  Bucket& bucket_at(TimeUs t) const;

  TimeUs warmup_;
  TimeUs measure_end_;
  bool phases_enabled_ = false;
  TimeUs phase_t1_ = 0;
  TimeUs phase_t2_ = 0;
  /// Last churn event (TTR anchor): derived from t2 - kChurnSettle.
  TimeUs churn_anchor_ = 0;
  std::uint64_t phase_generated_[3] = {0, 0, 0};
  std::uint64_t phase_delivered_[3] = {0, 0, 0};
  SummaryStats phase_delay_ms_[3];
  /// 10 s generation-time PDR buckets (churn runs only), lazily grown.
  struct Bucket {
    std::uint64_t generated = 0;
    std::uint64_t delivered = 0;
  };
  mutable std::vector<Bucket> buckets_;
  std::uint64_t failures_ = 0;
  std::uint64_t revivals_ = 0;
  std::uint64_t rejoins_ = 0;
  std::uint64_t orphan_intervals_ = 0;
  SummaryStats rejoin_s_;
  SummaryStats first_delivery_s_;
  struct NodeEntry {
    bool is_root = false;
    const Radio* radio = nullptr;
    TimeUs on_time_at_warmup = 0;
    TimeUs on_time_at_end = -1;  ///< -1 until end_measurement() runs
    bool joined = false;
    // Recovery pipeline for the node's most recent failure (-1 = none).
    TimeUs failed_at = -1;
    bool rebooted = false;            ///< reboot seen for this failure
    bool rejoined = false;            ///< re-association recorded
    bool awaiting_delivery = false;   ///< first post-rejoin delivery pending
  };
  std::map<NodeId, NodeEntry> nodes_;
  std::map<NodeId, NodeCounters> counters_;
  SummaryStats delay_ms_;
  Histogram delay_hist_{0.0, 5000.0, 250};
  SummaryStats hops_;

  bool concurrent_ = false;
  const Simulator* sim_ = nullptr;  ///< owner/key source (concurrent mode)
  /// Per-event-owner op logs (concurrent mode), keyed by owner id
  /// (kGlobalOwner for unattributed events). Pre-created at register_node
  /// so the map structure is never mutated mid-run: island lanes only
  /// push_back into their own owners' vectors.
  std::map<std::uint32_t, std::vector<Op>> logs_;
};

}  // namespace gttsch
