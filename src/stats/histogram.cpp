#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace gttsch {

void SummaryStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double SummaryStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double SummaryStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), bins_(bins, 0) {
  GTTSCH_CHECK(hi > lo && bins > 0);
}

void Histogram::add(double x) {
  const double clamped = std::clamp(x, lo_, std::nextafter(hi_, lo_));
  auto idx = static_cast<std::size_t>((clamped - lo_) / width_);
  idx = std::min(idx, bins_.size() - 1);
  ++bins_[idx];
  ++total_;
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const double next = cum + static_cast<double>(bins_[i]);
    if (next >= target) {
      const double frac = bins_[i] == 0 ? 0.0 : (target - cum) / static_cast<double>(bins_[i]);
      return lo_ + (static_cast<double>(i) + frac) * width_;
    }
    cum = next;
  }
  return hi_;
}

}  // namespace gttsch
