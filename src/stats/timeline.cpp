#include "stats/timeline.hpp"

#include <cmath>
#include <fstream>

#include "util/check.hpp"

namespace gttsch {

Timeline::Timeline(Simulator& sim, TimeUs period)
    : sim_(sim), period_(period), timer_(sim) {
  GTTSCH_CHECK(period > 0);
}

void Timeline::add_gauge(std::string name, std::function<double()> fn) {
  GTTSCH_CHECK(fn != nullptr);
  names_.push_back(std::move(name));
  gauges_.push_back(std::move(fn));
}

void Timeline::start() {
  timer_.start(period_, period_, [this] { sample_once(); });
}

void Timeline::stop() { timer_.stop(); }

void Timeline::sample_once() {
  Sample s;
  s.at = sim_.now();
  s.values.reserve(gauges_.size());
  for (const auto& g : gauges_) s.values.push_back(g());
  samples_.push_back(std::move(s));
}

bool Timeline::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out.good()) return false;
  out << "time_s";
  for (const auto& name : names_) out << ',' << name;
  out << '\n';
  for (const auto& s : samples_) {
    out << us_to_s(s.at);
    for (double v : s.values) out << ',' << v;
    out << '\n';
  }
  return out.good();
}

double Timeline::latest(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] != name) continue;
    if (samples_.empty()) break;
    return samples_.back().values[i];
  }
  return std::nan("");
}

}  // namespace gttsch
