#include "stats/run_stats.hpp"

#include "util/check.hpp"

namespace gttsch {

RunStats::RunStats(TimeUs warmup, TimeUs measure_end)
    : warmup_(warmup), measure_end_(measure_end) {
  GTTSCH_CHECK(measure_end > warmup);
}

void RunStats::register_node(NodeId id, bool is_root, const Radio* radio) {
  NodeEntry entry;
  entry.is_root = is_root;
  entry.radio = radio;
  entry.joined = is_root;  // roots are always part of their DODAG
  nodes_[id] = entry;
  counters_[id];  // default-construct
}

void RunStats::set_churn_phases(TimeUs t1, TimeUs t2) {
  GTTSCH_CHECK(t1 <= t2);
  phases_enabled_ = true;
  phase_t1_ = t1;
  phase_t2_ = t2;
}

void RunStats::on_generated(NodeId origin, TimeUs now) {
  if (!in_window(now)) return;
  ++counters_[origin].generated;
  if (phases_enabled_) ++phase_generated_[phase_of(now)];
}

void RunStats::on_delivered(NodeId root, const DataPayload& data, TimeUs now) {
  ++counters_[root].delivered_sink;
  if (!in_window(data.generated_at)) return;
  ++counters_[data.origin].delivered_origin;
  delay_ms_.add(us_to_ms(now - data.generated_at));
  delay_hist_.add(us_to_ms(now - data.generated_at));
  hops_.add(static_cast<double>(data.hops));
  if (phases_enabled_) {
    // Attributed by generation time (like the window itself), so the
    // per-phase counters sum exactly to the whole-run ones.
    const std::size_t phase = phase_of(data.generated_at);
    ++phase_delivered_[phase];
    phase_delay_ms_[phase].add(us_to_ms(now - data.generated_at));
  }
}

void RunStats::on_forwarded(NodeId node, TimeUs now) {
  if (in_window(now)) ++counters_[node].forwarded;
}

void RunStats::on_queue_drop(NodeId node, TimeUs now) {
  if (in_window(now)) ++counters_[node].queue_drops;
}

void RunStats::on_mac_drop(NodeId node, TimeUs now) {
  if (in_window(now)) ++counters_[node].mac_drops;
}

void RunStats::on_no_route(NodeId node, TimeUs now) {
  if (in_window(now)) ++counters_[node].no_route_drops;
}

void RunStats::begin_measurement() {
  for (auto& [id, entry] : nodes_)
    if (entry.radio != nullptr) entry.on_time_at_warmup = entry.radio->on_time();
}

void RunStats::end_measurement() {
  for (auto& [id, entry] : nodes_)
    if (entry.radio != nullptr) entry.on_time_at_end = entry.radio->on_time();
}

void RunStats::set_joined(NodeId node, bool joined) {
  const auto it = nodes_.find(node);
  if (it != nodes_.end()) it->second.joined = joined || it->second.is_root;
}

RunMetrics RunStats::finalize() const {
  RunMetrics m;
  m.node_count = nodes_.size();
  for (const auto& [id, c] : counters_) {
    m.generated += c.generated;
    m.delivered += c.delivered_origin;
    m.queue_drops += c.queue_drops;
    m.mac_drops += c.mac_drops;
    m.no_route_drops += c.no_route_drops;
  }
  const double minutes = us_to_min(measure_end_ - warmup_);
  m.measure_minutes = minutes;
  m.pdr_percent =
      m.generated == 0 ? 0.0
                       : 100.0 * static_cast<double>(m.delivered) /
                             static_cast<double>(m.generated);
  m.avg_delay_ms = delay_ms_.mean();
  m.p95_delay_ms = delay_hist_.quantile(0.95);
  m.loss_per_minute =
      minutes <= 0.0 ? 0.0
                     : static_cast<double>(m.generated - m.delivered) / minutes;
  m.throughput_per_minute =
      minutes <= 0.0 ? 0.0 : static_cast<double>(m.delivered) / minutes;
  m.queue_loss_per_node =
      nodes_.empty() ? 0.0
                     : static_cast<double>(m.queue_drops) /
                           static_cast<double>(nodes_.size());
  m.mean_hops = hops_.mean();

  double duty_sum = 0.0;
  std::size_t duty_n = 0;
  const double window = static_cast<double>(measure_end_ - warmup_);
  for (const auto& [id, entry] : nodes_) {
    if (entry.radio == nullptr || window <= 0.0) continue;
    const TimeUs end_on =
        entry.on_time_at_end >= 0 ? entry.on_time_at_end : entry.radio->on_time();
    const double on = static_cast<double>(end_on - entry.on_time_at_warmup);
    duty_sum += 100.0 * on / window;
    ++duty_n;
  }
  m.duty_cycle_percent = duty_n == 0 ? 0.0 : duty_sum / static_cast<double>(duty_n);

  for (const auto& [id, entry] : nodes_)
    if (entry.joined) ++m.nodes_joined;

  if (phases_enabled_) {
    m.churn_phases = 1;
    m.pre_generated = phase_generated_[0];
    m.churn_generated = phase_generated_[1];
    m.post_generated = phase_generated_[2];
    m.pre_delivered = phase_delivered_[0];
    m.churn_delivered = phase_delivered_[1];
    m.post_delivered = phase_delivered_[2];
    const auto pdr = [](std::uint64_t gen, std::uint64_t del) {
      return gen == 0 ? 0.0
                      : 100.0 * static_cast<double>(del) /
                            static_cast<double>(gen);
    };
    m.pre_pdr_percent = pdr(m.pre_generated, m.pre_delivered);
    m.churn_pdr_percent = pdr(m.churn_generated, m.churn_delivered);
    m.post_pdr_percent = pdr(m.post_generated, m.post_delivered);
    m.pre_avg_delay_ms = phase_delay_ms_[0].mean();
    m.churn_avg_delay_ms = phase_delay_ms_[1].mean();
    m.post_avg_delay_ms = phase_delay_ms_[2].mean();
  }
  return m;
}

}  // namespace gttsch
