// Energy model for the paper's target hardware (Zolertia Firefly, CC2538
// SoC): converts radio on-time into charge/energy and battery-lifetime
// estimates. The paper reports radio duty cycle as its energy proxy; this
// model turns the same measurements into milliamp-hours so deployments can
// reason about battery budgets.
#pragma once

#include "phy/radio.hpp"
#include "util/types.hpp"

namespace gttsch {

struct EnergyModel {
  // CC2538 datasheet figures (radio active at 0 dBm) plus deep-sleep draw.
  double voltage = 3.0;            ///< V (2x AA)
  double tx_current_ma = 24.0;     ///< radio transmitting
  double rx_current_ma = 20.0;     ///< radio listening/receiving
  double sleep_current_ma = 0.0013;  ///< LPM2 with RAM retention

  /// Average current over a window with the given radio activity (mA).
  double average_current_ma(TimeUs tx_time, TimeUs rx_time, TimeUs window) const;

  /// Charge drawn over the window (mAh).
  double charge_mah(TimeUs tx_time, TimeUs rx_time, TimeUs window) const;

  /// Energy drawn over the window (mJ).
  double energy_mj(TimeUs tx_time, TimeUs rx_time, TimeUs window) const;

  /// Extrapolated lifetime (days) on a battery of `battery_mah`, assuming
  /// the measured window is representative.
  double lifetime_days(double battery_mah, TimeUs tx_time, TimeUs rx_time,
                       TimeUs window) const;
};

/// Snapshot-based per-node meter: bind to a radio, mark the window start,
/// then read consumption since the mark.
class EnergyMeter {
 public:
  EnergyMeter(const Radio& radio, EnergyModel model = {});

  /// Start (or restart) the measurement window now.
  void mark();

  TimeUs tx_time_since_mark() const;
  TimeUs rx_time_since_mark() const;

  double average_current_ma(TimeUs window) const;
  double charge_mah(TimeUs window) const;
  double lifetime_days(double battery_mah, TimeUs window) const;

  const EnergyModel& model() const { return model_; }

 private:
  const Radio& radio_;
  EnergyModel model_;
  TimeUs tx_mark_ = 0;
  TimeUs rx_mark_ = 0;
};

}  // namespace gttsch
