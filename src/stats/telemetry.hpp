// In-run telemetry: a run-attached recorder producing (1) periodic gauge
// samples (joined count, queue depths, allocated Tx cells, mean ETX, duty
// cycle, cumulative drops), (2) probe-frame latency/PDR time series from a
// configurable subset of nodes, and (3) a bounded structured event trace
// (join, parent switch, 6P conclusions, drops, trace moves/failures) —
// all emitted as one time-ordered JSONL stream.
//
// Determinism contract: the recorder only *reads* simulation state. Gauge
// sampling rides ordinary default-key events (they run after same-time
// slot boundaries, like trace playback), consumes no RNG stream and never
// mutates a node — so a telemetry-attached run is bit-identical to a bare
// run in every simulation-visible quantity (MAC counters, RunMetrics,
// final ASN). The one deliberate exception is probe frames, which are
// real traffic: they are off by default and excluded from the RunStats
// panel metrics via DataPayload::is_probe unless
// TelemetryConfig::probes_in_panels is set.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "phy/wire.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "stats/histogram.hpp"
#include "util/types.hpp"

namespace gttsch {

class Network;
class RunStats;

/// Time-series recorder: samples named gauges on a fixed period and dumps
/// them as CSV. This is the single sampling engine — Telemetry drives it
/// for its gauge registry, and benches (formation_time) use it directly.
class Timeline {
 public:
  Timeline(Simulator& sim, TimeUs period);

  /// Register a gauge; `fn` is sampled once per period.
  void add_gauge(std::string name, std::function<double()> fn);

  /// Begin sampling (first sample after one period).
  void start();
  void stop();

  struct Sample {
    TimeUs at;
    std::vector<double> values;  ///< parallel to gauge registration order
  };

  const std::vector<std::string>& gauge_names() const { return names_; }
  const std::vector<Sample>& samples() const { return samples_; }

  /// Invoked after every sample (used by Telemetry to render JSONL rows).
  void set_sample_observer(std::function<void(const Sample&)> fn);

  /// Write "time_s,<gauge...>" rows to `path`. Returns false on I/O error.
  bool write_csv(const std::string& path) const;

  /// Last sampled value of a gauge (by name); NaN if never sampled.
  double latest(const std::string& name) const;

 private:
  void sample_once();

  Simulator& sim_;
  TimeUs period_;
  std::vector<std::string> names_;
  std::vector<std::function<double()>> gauges_;
  std::vector<Sample> samples_;
  std::function<void(const Sample&)> observer_;
  PeriodicTimer timer_;
};

struct TelemetryConfig {
  TimeUs sample_period = 1000000;  ///< gauge sampling period (0 = no samples)
  bool per_node = false;           ///< per-node detail in sample records
  int probe_count = 0;             ///< non-root probe senders (0 = no probes)
  TimeUs probe_period = 10000000;  ///< per-sender probe period
  /// Probe window (absolute sim time). run_scenario fills these with the
  /// measurement window when left at 0.
  TimeUs probe_start = 0;
  TimeUs probe_end = 0;
  /// When true, probe frames also count in the RunStats panel metrics
  /// (default: excluded, so panels match a probe-free run's traffic mix).
  bool probes_in_panels = false;
  std::size_t max_events = 10000;  ///< structured-event trace bound
};

class Telemetry {
 public:
  enum class DropKind : std::uint8_t { kQueue, kMac, kNoRoute };

  explicit Telemetry(const TelemetryConfig& config);
  ~Telemetry();
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  /// Wire the recorder into a built (not yet started) network: registers
  /// the gauge panel, hooks every node's event taps, and schedules gauge
  /// samples plus probe sends. `stats` may be null (benches).
  void attach(Network& net, RunStats* stats);

  const TelemetryConfig& config() const { return config_; }
  bool probes_in_panels() const { return config_.probes_in_panels; }

  /// Default the probe window (no-op when the config already set one).
  /// Must be called before attach().
  void default_probe_window(TimeUs start, TimeUs end);

  /// Severs the network/simulator references and stops the sampling timer.
  /// ~Network calls this (the recorder usually outlives the run so its
  /// records can be written afterwards); records stay readable.
  void detach();

  // --- event taps (called by Node / TracePlayer / SixpAgent glue) -------
  void on_associated(NodeId node);
  void on_join(NodeId node, NodeId parent);
  void on_parent_switch(NodeId node, NodeId old_parent, NodeId new_parent);
  void on_detach(NodeId node, NodeId old_parent);
  void on_drop(NodeId node, DropKind kind);
  void on_sixp_done(NodeId node, NodeId peer, SixpCommand command, bool timed_out,
                    bool ok);
  void on_trace_move(NodeId node, double x, double y);
  void on_trace_fail(NodeId node);
  void on_trace_revive(NodeId node);
  void on_trace_prr(NodeId node, NodeId peer, double prr);
  void on_trace_pause(NodeId node, NodeId peer);
  void on_trace_resume(NodeId node, NodeId peer);
  void on_probe_sent(NodeId origin, std::uint32_t seq);
  void on_probe_delivered(NodeId origin, std::uint32_t seq, TimeUs generated_at,
                          std::uint8_t hops, TimeUs now);

  /// One rendered JSONL line plus its timestamp; records are appended in
  /// occurrence order, so timestamps are monotone non-decreasing.
  struct Record {
    TimeUs at = 0;
    std::string json;  ///< one JSON object, no trailing newline
  };

  const std::vector<Record>& records() const { return records_; }
  std::size_t events_recorded() const { return events_recorded_; }
  std::size_t events_dropped() const { return events_dropped_; }
  std::uint64_t probes_sent() const { return probes_sent_; }
  std::uint64_t probes_delivered() const { return probes_delivered_; }
  const SummaryStats& probe_latency_ms() const { return probe_latency_ms_; }

  /// Gauge sampling engine (for CSV export); null until attach() with a
  /// non-zero sample period.
  Timeline* timeline() { return timeline_.get(); }

  /// Copy the probe summary into `m` (probes_sent/delivered, PDR, mean
  /// latency) so it flows through campaign journals and reports.
  void fill_probe_metrics(struct RunMetrics* m) const;

  /// Write every record plus a trailing summary line to `path` as JSONL.
  bool write_jsonl(const std::string& path) const;

 private:
  void append(TimeUs at, std::string json);
  /// Bounded variant for structured events (samples/probes are already
  /// bounded by their periods).
  void append_event(std::string json);
  void render_sample(const Timeline::Sample& s);
  std::string summary_json() const;

  TelemetryConfig config_;
  Network* net_ = nullptr;
  Simulator* sim_ = nullptr;
  RunStats* stats_ = nullptr;
  std::unique_ptr<Timeline> timeline_;
  std::vector<Record> records_;
  std::size_t events_recorded_ = 0;
  std::size_t events_dropped_ = 0;
  std::uint64_t probes_sent_ = 0;
  std::uint64_t probes_delivered_ = 0;
  SummaryStats probe_latency_ms_;
};

}  // namespace gttsch
