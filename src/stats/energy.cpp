#include "stats/energy.hpp"

#include "util/check.hpp"

namespace gttsch {

double EnergyModel::average_current_ma(TimeUs tx_time, TimeUs rx_time, TimeUs window) const {
  GTTSCH_CHECK(window > 0);
  GTTSCH_CHECK(tx_time >= 0 && rx_time >= 0 && tx_time + rx_time <= window);
  const double tx_frac = static_cast<double>(tx_time) / static_cast<double>(window);
  const double rx_frac = static_cast<double>(rx_time) / static_cast<double>(window);
  const double sleep_frac = 1.0 - tx_frac - rx_frac;
  return tx_current_ma * tx_frac + rx_current_ma * rx_frac + sleep_current_ma * sleep_frac;
}

double EnergyModel::charge_mah(TimeUs tx_time, TimeUs rx_time, TimeUs window) const {
  const double hours = us_to_s(window) / 3600.0;
  return average_current_ma(tx_time, rx_time, window) * hours;
}

double EnergyModel::energy_mj(TimeUs tx_time, TimeUs rx_time, TimeUs window) const {
  // E = Q * V; 1 mAh = 3.6 C, so mAh * V * 3.6 = joules -> *1000 = mJ.
  return charge_mah(tx_time, rx_time, window) * voltage * 3600.0;
}

double EnergyModel::lifetime_days(double battery_mah, TimeUs tx_time, TimeUs rx_time,
                                  TimeUs window) const {
  const double current = average_current_ma(tx_time, rx_time, window);
  if (current <= 0.0) return 0.0;
  return battery_mah / current / 24.0;
}

EnergyMeter::EnergyMeter(const Radio& radio, EnergyModel model)
    : radio_(radio), model_(model) {
  mark();
}

void EnergyMeter::mark() {
  tx_mark_ = radio_.tx_time();
  rx_mark_ = radio_.rx_time();
}

TimeUs EnergyMeter::tx_time_since_mark() const { return radio_.tx_time() - tx_mark_; }
TimeUs EnergyMeter::rx_time_since_mark() const { return radio_.rx_time() - rx_mark_; }

double EnergyMeter::average_current_ma(TimeUs window) const {
  return model_.average_current_ma(tx_time_since_mark(), rx_time_since_mark(), window);
}

double EnergyMeter::charge_mah(TimeUs window) const {
  return model_.charge_mah(tx_time_since_mark(), rx_time_since_mark(), window);
}

double EnergyMeter::lifetime_days(double battery_mah, TimeUs window) const {
  return model_.lifetime_days(battery_mah, tx_time_since_mark(), rx_time_since_mark(),
                              window);
}

}  // namespace gttsch
