#include "stats/telemetry.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "scenario/network.hpp"
#include "stats/run_stats.hpp"
#include "util/check.hpp"

namespace gttsch {

// ---------------------------------------------------------------------------
// Timeline (the sampling engine, folded in from the old stats/timeline).
// ---------------------------------------------------------------------------

Timeline::Timeline(Simulator& sim, TimeUs period)
    : sim_(sim), period_(period), timer_(sim) {
  GTTSCH_CHECK(period > 0);
}

void Timeline::add_gauge(std::string name, std::function<double()> fn) {
  GTTSCH_CHECK(fn != nullptr);
  names_.push_back(std::move(name));
  gauges_.push_back(std::move(fn));
}

void Timeline::start() {
  timer_.start(period_, period_, [this] { sample_once(); });
}

void Timeline::stop() { timer_.stop(); }

void Timeline::set_sample_observer(std::function<void(const Sample&)> fn) {
  observer_ = std::move(fn);
}

void Timeline::sample_once() {
  Sample s;
  s.at = sim_.now();
  s.values.reserve(gauges_.size());
  for (const auto& g : gauges_) s.values.push_back(g());
  samples_.push_back(std::move(s));
  if (observer_) observer_(samples_.back());
}

bool Timeline::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out.good()) return false;
  out << "time_s";
  for (const auto& name : names_) out << ',' << name;
  out << '\n';
  for (const auto& s : samples_) {
    out << us_to_s(s.at);
    for (double v : s.values) out << ',' << v;
    out << '\n';
  }
  return out.good();
}

double Timeline::latest(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] != name) continue;
    if (samples_.empty()) break;
    return samples_.back().values[i];
  }
  return std::nan("");
}

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

namespace {

std::string json_head(TimeUs at, const char* type) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "{\"t_s\":%.6f,\"type\":\"%s\"", us_to_s(at),
                type);
  return buf;
}

const char* sixp_command_name(SixpCommand command) {
  switch (command) {
    case SixpCommand::kAdd: return "add";
    case SixpCommand::kDelete: return "delete";
    case SixpCommand::kClear: return "clear";
    case SixpCommand::kAskChannel: return "ask-channel";
  }
  return "unknown";
}

const char* drop_kind_name(Telemetry::DropKind kind) {
  switch (kind) {
    case Telemetry::DropKind::kQueue: return "queue_drop";
    case Telemetry::DropKind::kMac: return "mac_drop";
    case Telemetry::DropKind::kNoRoute: return "no_route_drop";
  }
  return "drop";
}

}  // namespace

Telemetry::Telemetry(const TelemetryConfig& config) : config_(config) {}

Telemetry::~Telemetry() = default;

void Telemetry::default_probe_window(TimeUs start, TimeUs end) {
  GTTSCH_CHECK(net_ == nullptr);  // before attach
  if (config_.probe_start == 0 && config_.probe_end == 0) {
    config_.probe_start = start;
    config_.probe_end = end;
  }
}

void Telemetry::attach(Network& net, RunStats* stats) {
  GTTSCH_CHECK(net_ == nullptr);  // one recorder per run, attached once
  net_ = &net;
  sim_ = &net.sim();
  stats_ = stats;
  net.set_telemetry(this);

  if (config_.sample_period > 0) {
    timeline_ = std::make_unique<Timeline>(*sim_, config_.sample_period);
    timeline_->add_gauge("joined", [this] {
      return static_cast<double>(net_->joined_count());
    });
    timeline_->add_gauge("queue", [this] {
      std::size_t total = 0;
      for (const auto& [id, node] : net_->nodes()) {
        total += node->mac().data_queue_length();
      }
      return static_cast<double>(total);
    });
    timeline_->add_gauge("tx_cells", [this] {
      std::size_t total = 0;
      for (const auto& [id, node] : net_->nodes()) {
        node->mac().schedule().for_each([&total](const Slotframe& sf) {
          for (const Cell& cell : sf.all_cells()) {
            if (cell.is_tx() && !cell.is_shared()) ++total;
          }
        });
      }
      return static_cast<double>(total);
    });
    timeline_->add_gauge("mean_etx", [this] {
      double sum = 0.0;
      std::size_t n = 0;
      for (const auto& [id, node] : net_->nodes()) {
        if (node->is_root()) continue;
        const NodeId parent = node->rpl().parent();
        if (parent == kNoNode) continue;
        sum += node->etx().etx(parent);
        ++n;
      }
      return n == 0 ? 0.0 : sum / static_cast<double>(n);
    });
    timeline_->add_gauge("duty_percent", [this] {
      const TimeUs now = sim_->now();
      if (now == 0 || net_->size() == 0) return 0.0;
      double sum = 0.0;
      for (const auto& [id, node] : net_->nodes()) {
        sum += static_cast<double>(node->radio().on_time()) /
               static_cast<double>(now);
      }
      return 100.0 * sum / static_cast<double>(net_->size());
    });
    timeline_->add_gauge("drops", [this] {
      if (stats_ == nullptr) return 0.0;
      std::uint64_t total = 0;
      for (const auto& [id, counters] : stats_->per_node()) {
        total += counters.queue_drops + counters.mac_drops +
                 counters.no_route_drops;
      }
      return static_cast<double>(total);
    });
    timeline_->add_gauge("demand", [this] {
      // Network-wide scheduler demand, through the common SF interface
      // (GT-TSCH: Eq 1's l^tx-min; e-MSF: utilization; autonomous SFs: 0).
      double sum = 0.0;
      for (const auto& [id, node] : net_->nodes()) sum += node->sf().demand_estimate();
      return sum;
    });
    timeline_->set_sample_observer(
        [this](const Timeline::Sample& s) { render_sample(s); });
    timeline_->start();
  }

  if (config_.probe_count > 0 && config_.probe_end > config_.probe_start) {
    std::vector<NodeId> senders;
    for (const auto& [id, node] : net.nodes()) {
      if (node->is_root()) continue;
      senders.push_back(id);
      if (senders.size() == static_cast<std::size_t>(config_.probe_count)) break;
    }
    // All sends are scheduled up front (like trace playback), so their
    // same-time ordering is fixed by the config alone. Senders are
    // staggered across one period to avoid synchronized probe bursts.
    for (std::size_t i = 0; i < senders.size(); ++i) {
      const TimeUs offset =
          config_.probe_period * static_cast<TimeUs>(i + 1) /
          static_cast<TimeUs>(senders.size() + 1);
      Node* node = &net.node(senders[i]);
      for (TimeUs t = config_.probe_start + offset; t < config_.probe_end;
           t += config_.probe_period) {
        sim_->at(t, [node] { node->send_probe(); });
      }
    }
  }
}

void Telemetry::detach() {
  // Stop the sampling timer while the simulator still exists — a pending
  // timer event must not be cancelled against a dead sim later. The
  // Timeline object (and its collected samples) stays readable.
  if (timeline_ != nullptr) timeline_->stop();
  net_ = nullptr;
  sim_ = nullptr;
  stats_ = nullptr;
}

void Telemetry::append(TimeUs at, std::string json) {
  records_.push_back(Record{at, std::move(json)});
}

void Telemetry::append_event(std::string json) {
  if (events_recorded_ >= config_.max_events) {
    ++events_dropped_;
    return;
  }
  ++events_recorded_;
  append(sim_->now(), std::move(json));
}

void Telemetry::render_sample(const Timeline::Sample& s) {
  std::string line = json_head(s.at, "sample");
  char buf[96];
  const auto& names = timeline_->gauge_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    std::snprintf(buf, sizeof buf, ",\"%s\":%.6g", names[i].c_str(),
                  s.values[i]);
    line += buf;
  }
  std::snprintf(buf, sizeof buf, ",\"probes_sent\":%llu,\"probes_delivered\":%llu",
                static_cast<unsigned long long>(probes_sent_),
                static_cast<unsigned long long>(probes_delivered_));
  line += buf;
  if (config_.per_node) {
    line += ",\"nodes\":{";
    bool first = true;
    for (const auto& [id, node] : net_->nodes()) {
      if (node->is_root()) continue;
      const NodeId parent = node->rpl().parent();
      std::snprintf(buf, sizeof buf, "%s\"%u\":{\"q\":%zu,\"etx\":%.4g}",
                    first ? "" : ",", static_cast<unsigned>(id),
                    node->mac().data_queue_length(),
                    parent == kNoNode ? 0.0 : node->etx().etx(parent));
      line += buf;
      first = false;
    }
    line += '}';
  }
  line += '}';
  append(s.at, std::move(line));
}

void Telemetry::on_associated(NodeId node) {
  char buf[96];
  std::snprintf(buf, sizeof buf, ",\"event\":\"associated\",\"node\":%u}",
                static_cast<unsigned>(node));
  append_event(json_head(sim_->now(), "event") + buf);
}

void Telemetry::on_join(NodeId node, NodeId parent) {
  char buf[96];
  std::snprintf(buf, sizeof buf, ",\"event\":\"join\",\"node\":%u,\"parent\":%u}",
                static_cast<unsigned>(node), static_cast<unsigned>(parent));
  append_event(json_head(sim_->now(), "event") + buf);
}

void Telemetry::on_parent_switch(NodeId node, NodeId old_parent,
                                 NodeId new_parent) {
  char buf[128];
  std::snprintf(buf, sizeof buf,
                ",\"event\":\"parent_switch\",\"node\":%u,\"old\":%u,\"new\":%u}",
                static_cast<unsigned>(node), static_cast<unsigned>(old_parent),
                static_cast<unsigned>(new_parent));
  append_event(json_head(sim_->now(), "event") + buf);
}

void Telemetry::on_detach(NodeId node, NodeId old_parent) {
  char buf[96];
  std::snprintf(buf, sizeof buf, ",\"event\":\"detach\",\"node\":%u,\"old\":%u}",
                static_cast<unsigned>(node), static_cast<unsigned>(old_parent));
  append_event(json_head(sim_->now(), "event") + buf);
}

void Telemetry::on_drop(NodeId node, DropKind kind) {
  char buf[96];
  std::snprintf(buf, sizeof buf, ",\"event\":\"%s\",\"node\":%u}",
                drop_kind_name(kind), static_cast<unsigned>(node));
  append_event(json_head(sim_->now(), "event") + buf);
}

void Telemetry::on_sixp_done(NodeId node, NodeId peer, SixpCommand command,
                             bool timed_out, bool ok) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                ",\"event\":\"sixp_%s\",\"node\":%u,\"peer\":%u,"
                "\"timeout\":%s,\"ok\":%s}",
                sixp_command_name(command), static_cast<unsigned>(node),
                static_cast<unsigned>(peer), timed_out ? "true" : "false",
                ok ? "true" : "false");
  append_event(json_head(sim_->now(), "event") + buf);
}

void Telemetry::on_trace_move(NodeId node, double x, double y) {
  char buf[128];
  std::snprintf(buf, sizeof buf,
                ",\"event\":\"trace_move\",\"node\":%u,\"x\":%.3f,\"y\":%.3f}",
                static_cast<unsigned>(node), x, y);
  append_event(json_head(sim_->now(), "event") + buf);
}

void Telemetry::on_trace_fail(NodeId node) {
  char buf[96];
  std::snprintf(buf, sizeof buf, ",\"event\":\"trace_fail\",\"node\":%u}",
                static_cast<unsigned>(node));
  append_event(json_head(sim_->now(), "event") + buf);
}

void Telemetry::on_trace_revive(NodeId node) {
  char buf[96];
  std::snprintf(buf, sizeof buf, ",\"event\":\"trace_revive\",\"node\":%u}",
                static_cast<unsigned>(node));
  append_event(json_head(sim_->now(), "event") + buf);
}

void Telemetry::on_trace_prr(NodeId node, NodeId peer, double prr) {
  char buf[128];
  std::snprintf(buf, sizeof buf,
                ",\"event\":\"trace_prr\",\"node\":%u,\"peer\":%u,\"prr\":%.6f}",
                static_cast<unsigned>(node), static_cast<unsigned>(peer), prr);
  append_event(json_head(sim_->now(), "event") + buf);
}

void Telemetry::on_trace_pause(NodeId node, NodeId peer) {
  char buf[96];
  std::snprintf(buf, sizeof buf, ",\"event\":\"trace_pause\",\"node\":%u,\"peer\":%u}",
                static_cast<unsigned>(node), static_cast<unsigned>(peer));
  append_event(json_head(sim_->now(), "event") + buf);
}

void Telemetry::on_trace_resume(NodeId node, NodeId peer) {
  char buf[96];
  std::snprintf(buf, sizeof buf,
                ",\"event\":\"trace_resume\",\"node\":%u,\"peer\":%u}",
                static_cast<unsigned>(node), static_cast<unsigned>(peer));
  append_event(json_head(sim_->now(), "event") + buf);
}

void Telemetry::on_probe_sent(NodeId origin, std::uint32_t seq) {
  ++probes_sent_;
  char buf[96];
  std::snprintf(buf, sizeof buf, ",\"event\":\"probe_sent\",\"node\":%u,\"seq\":%u}",
                static_cast<unsigned>(origin), seq);
  append_event(json_head(sim_->now(), "event") + buf);
}

void Telemetry::on_probe_delivered(NodeId origin, std::uint32_t seq,
                                   TimeUs generated_at, std::uint8_t hops,
                                   TimeUs now) {
  ++probes_delivered_;
  const double latency_ms = static_cast<double>(now - generated_at) / 1000.0;
  probe_latency_ms_.add(latency_ms);
  char buf[160];
  std::snprintf(buf, sizeof buf,
                ",\"origin\":%u,\"seq\":%u,\"latency_ms\":%.3f,\"hops\":%u}",
                static_cast<unsigned>(origin), seq, latency_ms,
                static_cast<unsigned>(hops));
  append(now, json_head(now, "probe") + buf);
}

void Telemetry::fill_probe_metrics(RunMetrics* m) const {
  m->probes_sent = probes_sent_;
  m->probes_delivered = probes_delivered_;
  m->probe_pdr_percent =
      probes_sent_ == 0 ? 0.0
                        : 100.0 * static_cast<double>(probes_delivered_) /
                              static_cast<double>(probes_sent_);
  m->probe_avg_latency_ms = probe_latency_ms_.mean();
}

std::string Telemetry::summary_json() const {
  // Stamped with the last record's time, not sim_->now(): write_jsonl is
  // typically called after run_scenario returned and its Simulator died,
  // and the summary must not break the stream's monotone-t_s invariant.
  const TimeUs at = records_.empty() ? 0 : records_.back().at;
  char buf[224];
  std::snprintf(buf, sizeof buf,
                ",\"samples\":%zu,\"events\":%zu,\"events_dropped\":%zu,"
                "\"probes_sent\":%llu,\"probes_delivered\":%llu}",
                timeline_ != nullptr ? timeline_->samples().size() : 0,
                events_recorded_, events_dropped_,
                static_cast<unsigned long long>(probes_sent_),
                static_cast<unsigned long long>(probes_delivered_));
  return json_head(at, "summary") + buf;
}

bool Telemetry::write_jsonl(const std::string& path) const {
  std::ofstream out(path);
  if (!out.good()) return false;
  for (const Record& r : records_) out << r.json << '\n';
  out << summary_json() << '\n';
  return out.good();
}

}  // namespace gttsch
