// Streaming summary statistics and a fixed-bin histogram for latency data.
#pragma once

#include <cstdint>
#include <vector>

namespace gttsch {

/// Mean / min / max / variance without storing samples (Welford).
class SummaryStats {
 public:
  void add(double x);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  double min() const { return n_ == 0 ? 0.0 : min_; }
  double max() const { return n_ == 0 ? 0.0 : max_; }
  double variance() const;  ///< sample variance
  double stddev() const;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width bins over [lo, hi); out-of-range samples clamp to the edge
/// bins. Supports approximate quantiles.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::uint64_t count() const { return total_; }

  /// Approximate quantile (q in [0,1]) via linear interpolation in-bin.
  double quantile(double q) const;

  const std::vector<std::uint64_t>& bins() const { return bins_; }
  double bin_width() const { return width_; }

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t total_ = 0;
};

}  // namespace gttsch
