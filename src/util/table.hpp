// Aligned plain-text tables for benchmark / example output.
#pragma once

#include <string>
#include <vector>

namespace gttsch {

/// Collects rows of cells and renders them with aligned columns, in the
/// style of the series the paper's figures report.
class TablePrinter {
 public:
  /// Construct with column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with fixed precision.
  static std::string num(double v, int precision = 2);
  static std::string num(std::int64_t v);

  /// Render the full table (headers, separator, rows).
  std::string to_string() const;

  /// Render and write to stdout.
  void print() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gttsch
