// Tiny command-line flag parser for examples and figure harnesses.
// Accepts `--name=value` and `--name value`; unknown flags are reported.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gttsch {

class Flags {
 public:
  Flags(int argc, char** argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Flags seen but never queried; useful to warn about typos.
  std::vector<std::string> unknown() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
};

}  // namespace gttsch
