#include "util/rng.hpp"

#include <cmath>

namespace gttsch {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng Rng::fork(std::uint64_t tag) const {
  // Mix the current state with the tag through splitmix so sibling forks
  // with different tags diverge immediately.
  std::uint64_t mix = s_[0] ^ rotl(s_[2], 17) ^ (tag * 0x9E3779B97F4A7C15ULL);
  return Rng(splitmix64(mix));
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (hi <= lo) return lo;
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::uniform_double() {
  // 53 high-quality bits into [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform_double(double lo, double hi) {
  return lo + (hi - lo) * uniform_double();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform_double() < p;
}

double Rng::normal(double mean, double stddev) {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform_double();
  } while (u1 <= 1e-300);
  const double u2 = uniform_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double two_pi = 6.283185307179586;
  spare_normal_ = mag * std::sin(two_pi * u2);
  have_spare_normal_ = true;
  return mean + stddev * mag * std::cos(two_pi * u2);
}

}  // namespace gttsch
