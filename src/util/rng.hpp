// Deterministic pseudo-random number generation.
//
// Every stochastic component (medium, backoff, trickle, traffic jitter)
// derives its own stream from a run seed, so a scenario replays identically
// for a given seed regardless of how components interleave their draws.
#pragma once

#include <cstdint>
#include <vector>

namespace gttsch {

/// xoshiro256** with splitmix64 seeding. Small, fast, good quality, and —
/// unlike std::mt19937 uses — fully specified so results are portable.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Derive an independent child stream, e.g. one per node or per component.
  /// Child streams with distinct tags never correlate with the parent.
  Rng fork(std::uint64_t tag) const;

  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound == 0 returns 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform_double();

  /// Uniform double in [lo, hi).
  double uniform_double(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Standard normal via Box-Muller (deterministic pairing).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Pick a uniformly random element; v must be non-empty.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[static_cast<std::size_t>(uniform(v.size()))];
  }

 private:
  std::uint64_t s_[4];
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace gttsch
