// Shared thread machinery for the two places the simulator goes parallel:
// the campaign runner (one job per worker) and the island scheduler inside
// a single run (one interference island per worker). Both draw from the
// same process-wide worker budget so that GTTSCH_JOBS x islands never
// oversubscribes the machine: campaign workers *reserve* their count while
// a campaign is running, and the island scheduler divides the remaining
// hardware threads among the runs in flight.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gttsch {

/// Resolve a worker count from (explicit request, hardware report, env
/// override), in that precedence order. Pure so the clamping rules are
/// unit-testable:
///   * requested > 0 wins outright;
///   * otherwise a positive integer env value (e.g. GTTSCH_JOBS) wins;
///   * otherwise the hardware report — which the standard permits to be 0,
///     in which case the answer is 1, never 0 workers.
int resolve_worker_count(int requested, unsigned hardware_threads,
                         const char* env_value);

/// resolve_worker_count with live inputs: getenv(env_name) and
/// std::thread::hardware_concurrency().
int default_worker_count(int requested = 0, const char* env_name = "GTTSCH_JOBS");

/// Workers currently reserved process-wide (see WorkerReservation).
int reserved_workers();

/// RAII reservation against the process-wide worker budget. The campaign
/// runner holds one for the lifetime of Runner::run; nested parallelism
/// (island scheduling inside each job) consults reserved_workers() to size
/// itself into the leftover hardware threads.
class WorkerReservation {
 public:
  explicit WorkerReservation(int count);
  ~WorkerReservation();
  WorkerReservation(const WorkerReservation&) = delete;
  WorkerReservation& operator=(const WorkerReservation&) = delete;

 private:
  int count_;
};

/// Workers available to one simulation run that wants up to `requested`
/// lanes: clamped so that (campaign reservation) x (island lanes) stays
/// within the hardware thread count. With a fully reserved machine this
/// returns 1 — the run stays sequential rather than oversubscribing.
int available_island_workers(int requested);

/// A persistent pool of `lanes - 1` helper threads plus the calling
/// thread. run(n, fn) invokes fn(lane) for lanes 0..n-1 concurrently (the
/// caller takes lane 0) and blocks until all lanes return. Dispatch and
/// completion hand off through one mutex/condition pair, which doubles as
/// the happens-before edge: everything written before run() is visible to
/// every lane, and everything lanes wrote is visible after run() returns.
class WorkerPool {
 public:
  /// `lanes` total lanes (>= 1); spawns lanes - 1 threads.
  explicit WorkerPool(int lanes);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int lanes() const { return lanes_; }

  /// Run fn(lane) on min(n, lanes()) lanes; the calling thread executes
  /// lane 0. Not reentrant; one run() at a time.
  void run(int n, const std::function<void(int)>& fn);

 private:
  void worker_main(int lane);

  int lanes_;
  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* job_ = nullptr;
  int job_lanes_ = 0;
  std::uint64_t generation_ = 0;
  int outstanding_ = 0;
  bool shutdown_ = false;
};

}  // namespace gttsch
