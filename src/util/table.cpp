#include "util/table.hpp"

#include <cstdio>
#include <sstream>

namespace gttsch {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::num(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  return buf;
}

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> width(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      if (row[c].size() > width[c]) width[c] = row[c].size();

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) out << std::string(width[c] - row[c].size() + 2, ' ');
    }
    out << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c + 1 < width.size() ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TablePrinter::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace gttsch
