#include "util/csv.hpp"

namespace gttsch {

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  write_row(header);
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char ch : cell) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  std::vector<std::string> row = cells;
  row.resize(columns_);
  write_row(row);
}

}  // namespace gttsch
