// Fundamental identifiers and time units shared by every layer.
#pragma once

#include <cstdint>
#include <limits>

namespace gttsch {

/// Node (MAC/short) address. The simulator uses one flat address space.
using NodeId = std::uint16_t;

/// Destination address used by broadcast frames (EB, DIO).
inline constexpr NodeId kBroadcastId = 0xFFFF;

/// Sentinel for "no node" (e.g. no RPL parent yet).
inline constexpr NodeId kNoNode = 0xFFFE;

/// TSCH logical channel (channel offset). The physical channel is derived
/// from the hopping sequence: phys = seq[(ASN + offset) % |seq|].
using ChannelOffset = std::uint8_t;

/// Physical IEEE 802.15.4 channel number (11..26).
using PhysChannel = std::uint8_t;

/// Absolute Slot Number since network start.
using Asn = std::uint64_t;

/// Simulation time in microseconds.
using TimeUs = std::int64_t;

inline constexpr TimeUs kInfiniteTime = std::numeric_limits<TimeUs>::max();

namespace literals {
constexpr TimeUs operator"" _us(unsigned long long v) { return static_cast<TimeUs>(v); }
constexpr TimeUs operator"" _ms(unsigned long long v) { return static_cast<TimeUs>(v) * 1000; }
constexpr TimeUs operator"" _s(unsigned long long v) { return static_cast<TimeUs>(v) * 1000000; }
constexpr TimeUs operator"" _min(unsigned long long v) { return static_cast<TimeUs>(v) * 60000000; }
}  // namespace literals

/// Convert microseconds to fractional milliseconds / seconds / minutes.
constexpr double us_to_ms(TimeUs t) { return static_cast<double>(t) / 1e3; }
constexpr double us_to_s(TimeUs t) { return static_cast<double>(t) / 1e6; }
constexpr double us_to_min(TimeUs t) { return static_cast<double>(t) / 60e6; }

}  // namespace gttsch
