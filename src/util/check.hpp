// Lightweight always-on invariant checks. The simulator is deterministic, so
// a failed check is a programming error worth aborting on even in Release.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace gttsch::detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "GTTSCH_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}
}  // namespace gttsch::detail

#define GTTSCH_CHECK(expr)                                              \
  do {                                                                  \
    if (!(expr)) ::gttsch::detail::check_failed(#expr, __FILE__, __LINE__); \
  } while (false)
