// Fixed-slot arena: block allocation for many same-sized objects with
// LIFO slot reuse. The scenario layer backs every node's protocol-stack
// slab with one arena so (a) stacks of neighboring nodes sit in one
// contiguous block — the simulator's hot path walks them in node order —
// and (b) a crash-reboot tears a stack down and rebuilds it into the
// exact slot it just vacated, so churn-heavy campaigns stop round-tripping
// through the global allocator and a rebooted node stays cache-resident.
//
// Not thread-safe by design: each arena belongs to one Network, and a
// node's stack is only (de)allocated from its own island's lane or from
// the global context — never concurrently (fail/reboot are trace-driven
// global events).
#pragma once

#include <cstddef>
#include <new>
#include <vector>

#include "util/check.hpp"

namespace gttsch {

class Arena {
 public:
  /// Slots of `slot_bytes` rounded up to `alignment`; blocks hold
  /// `slots_per_block` slots each. Alignment must be a power of two.
  Arena(std::size_t slot_bytes, std::size_t alignment,
        std::size_t slots_per_block = 64)
      : align_(alignment < alignof(std::max_align_t) ? alignof(std::max_align_t)
                                                     : alignment),
        slot_(((slot_bytes == 0 ? 1 : slot_bytes) + align_ - 1) / align_ * align_),
        per_block_(slots_per_block == 0 ? 1 : slots_per_block) {
    GTTSCH_CHECK((align_ & (align_ - 1)) == 0);
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  ~Arena() {
    for (std::byte* b : blocks_) {
      ::operator delete[](b, std::align_val_t(align_));
    }
  }

  /// Pops the most recently freed slot when one exists (LIFO: a reboot
  /// lands exactly where the dead stack was), otherwise carves the next
  /// slot from the newest block, growing by one block when full.
  void* allocate() {
    ++in_use_;
    if (free_head_ != nullptr) {
      void* p = free_head_;
      free_head_ = *static_cast<void**>(p);
      return p;
    }
    if (next_ == per_block_ || blocks_.empty()) {
      blocks_.push_back(static_cast<std::byte*>(
          ::operator new[](slot_ * per_block_, std::align_val_t(align_))));
      next_ = 0;
    }
    return blocks_.back() + slot_ * next_++;
  }

  /// Returns a slot to the freelist. Must be a live pointer previously
  /// returned by allocate() on this arena; null is ignored. The freed
  /// slot itself stores the freelist link — no allocation, truly noexcept.
  void deallocate(void* p) noexcept {
    if (p == nullptr) return;
    GTTSCH_CHECK(in_use_ > 0);
    --in_use_;
    *static_cast<void**>(p) = free_head_;
    free_head_ = p;
  }

  std::size_t slot_bytes() const { return slot_; }
  std::size_t slots_in_use() const { return in_use_; }
  std::size_t blocks() const { return blocks_.size(); }

 private:
  std::size_t align_;
  std::size_t slot_;
  std::size_t per_block_;
  std::size_t next_ = 0;  ///< slots carved from the newest block
  std::size_t in_use_ = 0;
  std::vector<std::byte*> blocks_;
  void* free_head_ = nullptr;  ///< intrusive LIFO freelist through dead slots
};

}  // namespace gttsch
