#include "util/concurrency.hpp"

#include <cstdlib>

namespace gttsch {

namespace {
std::atomic<int> g_reserved_workers{0};
}  // namespace

int resolve_worker_count(int requested, unsigned hardware_threads,
                         const char* env_value) {
  if (requested > 0) return requested;
  if (env_value != nullptr) {
    const int parsed = std::atoi(env_value);
    if (parsed > 0) return parsed;
  }
  return hardware_threads > 0 ? static_cast<int>(hardware_threads) : 1;
}

int default_worker_count(int requested, const char* env_name) {
  return resolve_worker_count(requested, std::thread::hardware_concurrency(),
                              std::getenv(env_name));
}

int reserved_workers() {
  return g_reserved_workers.load(std::memory_order_relaxed);
}

WorkerReservation::WorkerReservation(int count) : count_(count) {
  g_reserved_workers.fetch_add(count_, std::memory_order_relaxed);
}

WorkerReservation::~WorkerReservation() {
  g_reserved_workers.fetch_sub(count_, std::memory_order_relaxed);
}

int available_island_workers(int requested) {
  if (requested <= 1) return 1;
  const unsigned hw = std::thread::hardware_concurrency();
  const int hardware = hw > 0 ? static_cast<int>(hw) : 1;
  const int reserved = reserved_workers();
  // Each reserved campaign worker is a run that may itself go parallel;
  // divide the hardware among them so jobs x islands <= hardware.
  const int per_run = hardware / (reserved > 1 ? reserved : 1);
  const int budget = per_run > 0 ? per_run : 1;
  return requested < budget ? requested : budget;
}

WorkerPool::WorkerPool(int lanes) : lanes_(lanes < 1 ? 1 : lanes) {
  threads_.reserve(static_cast<std::size_t>(lanes_ - 1));
  for (int lane = 1; lane < lanes_; ++lane) {
    threads_.emplace_back([this, lane] { worker_main(lane); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::run(int n, const std::function<void(int)>& fn) {
  int active = n < lanes_ ? n : lanes_;
  if (active < 1) active = 1;
  if (active == 1) {
    fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    job_lanes_ = active;
    outstanding_ = active - 1;  // helper lanes only; lane 0 is the caller
    ++generation_;
  }
  start_cv_.notify_all();
  fn(0);
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return outstanding_ == 0; });
  job_ = nullptr;
}

void WorkerPool::worker_main(int lane) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [this, seen] {
        return shutdown_ || generation_ != seen;
      });
      if (shutdown_) return;
      seen = generation_;
      if (lane < job_lanes_) {
        job = job_;
      } else {
        // Not part of this dispatch; it still counted only active lanes,
        // so nothing to signal.
        continue;
      }
    }
    (*job)(lane);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --outstanding_;
    }
    done_cv_.notify_one();
  }
}

}  // namespace gttsch
