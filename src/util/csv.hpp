// Minimal CSV emission for benchmark series (easy to plot externally).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace gttsch {

class CsvWriter {
 public:
  /// Opens (truncates) `path` and writes the header row immediately.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void add_row(const std::vector<std::string>& cells);

  bool ok() const { return out_.good(); }

  /// RFC-4180-style quoting, shared with renderers that build CSV text
  /// in memory (e.g. campaign reports written via atomic rename).
  static std::string escape(const std::string& cell);

 private:
  std::ofstream out_;
  std::size_t columns_;
  void write_row(const std::vector<std::string>& cells);
};

}  // namespace gttsch
