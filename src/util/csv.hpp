// Minimal CSV emission for benchmark series (easy to plot externally).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace gttsch {

class CsvWriter {
 public:
  /// Opens (truncates) `path` and writes the header row immediately.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void add_row(const std::vector<std::string>& cells);

  bool ok() const { return out_.good(); }

 private:
  std::ofstream out_;
  std::size_t columns_;

  static std::string escape(const std::string& cell);
  void write_row(const std::vector<std::string>& cells);
};

}  // namespace gttsch
