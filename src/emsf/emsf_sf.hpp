// e-MSF baseline (Domingo-Prieto et al., "Enhanced Minimal Scheduling
// Function for IEEE 802.15.4e TSCH", arXiv:1901.10591; the MSF lineage of
// RFC 9033) — 6P-adaptive scheduling driven by cell-utilization
// thresholds with hysteresis.
//
// Bootstrap plane (autonomous, 6TiSCH-minimal style), one slotframe:
//   * a shared broadcast cell at slot 0 (EBs, DIOs, unicast fallback),
//   * an autonomous Rx cell at hash(self) — where children reach us
//     before negotiation,
//   * a shared autonomous Tx cell at hash(parent) — how 6P requests and
//     early data reach the parent (siblings contend, CSMA backoff),
//   * a shared autonomous Tx cell at hash(child), installed lazily on the
//     first 6P request from that child — how 6P *responses* reach it.
//     Without this the response would ride the network-wide slot-0 cell,
//     where data traffic starves it: the transaction times out at the
//     child while the parent keeps the grant, leaking one Rx cell per
//     bootstrap retry until the slotframe fills.
//
// Adaptation: each slotframe the SF compares the packets it tried to send
// upward against the dedicated Tx cells available. Utilization above
// `add_threshold` for `hysteresis_ticks` consecutive ticks triggers a 6P
// ADD of one cell; below `delete_threshold` equally long triggers a 6P
// DELETE (never below `min_cells`). The hysteresis is e-MSF's fix for
// MSF's add/delete oscillation under bursty traffic.
#pragma once

#include <map>
#include <vector>

#include "mac/tsch_mac.hpp"
#include "net/rpl.hpp"
#include "sim/timer.hpp"
#include "sixp/sf.hpp"
#include "sixp/sixp.hpp"

namespace gttsch {

struct EmsfConfig {
  std::uint16_t slotframe_length = 32;
  ChannelOffset broadcast_offset = 0;       ///< shared cell's channel
  std::uint8_t num_channel_offsets = 8;
  double add_threshold = 0.75;     ///< utilization above -> ADD
  double delete_threshold = 0.25;  ///< utilization below -> DELETE
  int hysteresis_ticks = 2;        ///< consecutive ticks before acting
  int min_cells = 1;               ///< dedicated-cell floor (never deleted)
  int max_cells = 16;              ///< dedicated-cell ceiling
  /// Reclaim a child's granted cells when nothing was heard from it for
  /// this long (covers CLEAR lost during re-parenting). 0 disables.
  TimeUs child_timeout = 120000000;
};

class EmsfSf final : public SchedulingFunction, public SixpSfCallbacks {
 public:
  EmsfSf(Simulator& sim, TschMac& mac, RplAgent& rpl, SixpAgent& sixp,
         EmsfConfig config);

  // SchedulingFunction:
  const char* name() const override { return "emsf"; }
  void start(bool is_root) override;
  void on_associated() override;
  void on_frame(const Frame& frame) override;
  void on_parent_changed(NodeId old_parent, NodeId new_parent) override;
  void on_local_packet_generated() override { ++sent_this_tick_; }
  std::uint16_t advertised_free_rx() override { return 0; }
  std::optional<EbPayload> eb_info() override;

  bool operational() const override {
    return associated_ && (is_root_ || dedicated_tx_cells() > 0);
  }
  int dedicated_tx_cells() const override;
  int dedicated_rx_cells() const override;
  double demand_estimate() const override { return utilization_; }

  // SixpSfCallbacks:
  SixpPayload sixp_handle_request(NodeId peer, const SixpPayload& request) override;
  void sixp_transaction_done(NodeId peer, SixpCommand command, bool timed_out,
                             const SixpPayload& response) override;

  const EmsfConfig& config() const { return config_; }

 private:
  struct ChildState {
    int granted_rx = 0;
    TimeUs last_heard = 0;
  };

  Slotframe& own_slotframe();
  /// Per-link channel for negotiated cells: both endpoints derive it from
  /// the (child, parent) pair, over [1, num_channel_offsets).
  ChannelOffset link_channel(NodeId child, NodeId parent) const;
  void install_autonomous_cells();
  /// Shared Tx mirror of `peer`'s autonomous Rx cell (slot/channel both
  /// derive from peer's id). Idempotent: used for the parent at
  /// association/re-parenting and lazily for each requesting child.
  void install_unicast_tx(NodeId peer);
  void monitor_tick();
  std::vector<Cell> free_candidate_cells(NodeId parent) const;

  Simulator& sim_;
  TschMac& mac_;
  RplAgent& rpl_;
  SixpAgent& sixp_;
  EmsfConfig config_;
  bool is_root_ = false;
  bool associated_ = false;
  PeriodicTimer monitor_;
  int sent_this_tick_ = 0;   ///< generated + forwarded packets this window
  double utilization_ = 0.0; ///< last tick's used / capacity
  int over_streak_ = 0;
  int under_streak_ = 0;
  /// Set when the parent refuses a bootstrap ADD for lack of resources:
  /// its grant books are ahead of ours (lost responses). The next monitor
  /// tick sends CLEAR to resynchronize before re-bootstrapping.
  bool needs_clear_ = false;
  std::map<NodeId, ChildState> children_;
  /// Granted cells we could not install (slot taken while the transaction
  /// was in flight); returned to the parent via DELETE on the next tick.
  std::vector<Cell> conflicted_cells_;
};

}  // namespace gttsch
