#include "emsf/emsf_sf.hpp"

#include <algorithm>

#include "sixp/sf_registry.hpp"
#include "util/check.hpp"

namespace gttsch {

namespace {
constexpr std::uint16_t kSlotframeHandle = 0;

std::uint32_t node_hash(NodeId id) {
  return static_cast<std::uint32_t>(id) * 2654435761u;
}
}  // namespace

EmsfSf::EmsfSf(Simulator& sim, TschMac& mac, RplAgent& rpl, SixpAgent& sixp,
               EmsfConfig config)
    : sim_(sim), mac_(mac), rpl_(rpl), sixp_(sixp), config_(config), monitor_(sim) {
  GTTSCH_CHECK(config_.slotframe_length > 1);
  GTTSCH_CHECK(config_.num_channel_offsets > 1);
  GTTSCH_CHECK(config_.min_cells >= 0 && config_.max_cells >= config_.min_cells);
  sixp_.set_callbacks(this);
}

Slotframe& EmsfSf::own_slotframe() {
  Slotframe* sf = mac_.schedule().get(kSlotframeHandle);
  GTTSCH_CHECK(sf != nullptr);
  return *sf;
}

ChannelOffset EmsfSf::link_channel(NodeId child, NodeId parent) const {
  // Negotiated cells hop over [1, num_channel_offsets) — offset 0 is the
  // broadcast plane. Mixing both endpoints de-correlates sibling links.
  const std::uint32_t h = node_hash(child) ^ (node_hash(parent) >> 7);
  return static_cast<ChannelOffset>(
      1 + h % static_cast<std::uint32_t>(config_.num_channel_offsets - 1));
}

void EmsfSf::start(bool is_root) { is_root_ = is_root; }

void EmsfSf::on_associated() {
  associated_ = true;
  install_autonomous_cells();
  if (!is_root_ && rpl_.parent() != kNoNode) install_unicast_tx(rpl_.parent());
  const TimeUs period = mac_.slotframe_duration(config_.slotframe_length);
  monitor_.start(period, period, [this] { monitor_tick(); });
}

void EmsfSf::install_autonomous_cells() {
  if (mac_.schedule().get(kSlotframeHandle) == nullptr)
    mac_.schedule().add_slotframe(kSlotframeHandle, config_.slotframe_length);
  Slotframe& sf = own_slotframe();

  // The 6TiSCH minimal cell: EBs, DIOs and unicast fallback all contend here.
  Cell shared;
  shared.slot_offset = 0;
  shared.channel_offset = config_.broadcast_offset;
  shared.options = kCellTx | kCellRx | kCellShared;
  shared.neighbor = kBroadcastId;
  sf.add(shared);

  // Autonomous Rx at hash(self): where children reach us pre-negotiation.
  // Slot and channel derive from the owner's id, so senders can compute
  // them without signalling.
  Cell rx;
  rx.slot_offset = static_cast<std::uint16_t>(
      1 + node_hash(mac_.id()) % (config_.slotframe_length - 1));
  rx.channel_offset = static_cast<ChannelOffset>(
      1 + (node_hash(mac_.id()) >> 16) % (config_.num_channel_offsets - 1));
  rx.options = kCellRx | kCellShared;
  rx.neighbor = kBroadcastId;
  sf.add(rx);
}

void EmsfSf::install_unicast_tx(NodeId peer) {
  // The mirror of the peer's autonomous Rx cell: shared, because every
  // node with traffic for the peer derives the same (slot, channel) —
  // CSMA backoff arbitrates.
  Slotframe& sf = own_slotframe();
  const std::uint16_t slot = static_cast<std::uint16_t>(
      1 + node_hash(peer) % (config_.slotframe_length - 1));
  for (const Cell& c : sf.all_cells()) {
    if (c.slot_offset == slot && c.neighbor == peer && c.is_tx()) return;
  }
  Cell tx;
  tx.slot_offset = slot;
  tx.channel_offset = static_cast<ChannelOffset>(
      1 + (node_hash(peer) >> 16) % (config_.num_channel_offsets - 1));
  tx.options = kCellTx | kCellShared;
  tx.neighbor = peer;
  sf.add(tx);
}

std::vector<Cell> EmsfSf::free_candidate_cells(NodeId parent) const {
  std::vector<Cell> out;
  const Slotframe* sf = mac_.schedule().get(kSlotframeHandle);
  if (sf == nullptr) return out;
  for (std::uint16_t s = 1; s < config_.slotframe_length; ++s) {
    if (sf->slot_in_use(s)) continue;
    if (out.size() >= kMaxSixpCellListCells) break;  // 127-byte 6P frame cap
    Cell c;
    c.slot_offset = s;
    c.channel_offset = link_channel(mac_.id(), parent);
    c.options = kCellTx;
    c.neighbor = kNoNode;
    out.push_back(c);
  }
  return out;
}

int EmsfSf::dedicated_tx_cells() const {
  const Slotframe* sf = mac_.schedule().get(kSlotframeHandle);
  if (sf == nullptr) return 0;
  int count = 0;
  for (const Cell& c : sf->all_cells()) {
    if (c.is_tx() && !c.is_shared()) ++count;
  }
  return count;
}

int EmsfSf::dedicated_rx_cells() const {
  const Slotframe* sf = mac_.schedule().get(kSlotframeHandle);
  if (sf == nullptr) return 0;
  int count = 0;
  for (const Cell& c : sf->all_cells()) {
    if (c.is_rx() && !c.is_shared() && c.neighbor != kBroadcastId) ++count;
  }
  return count;
}

void EmsfSf::on_frame(const Frame& frame) {
  const auto child_it = children_.find(frame.src);
  if (child_it != children_.end()) child_it->second.last_heard = sim_.now();
  // Data addressed to us (we are not the sink) will be forwarded upward —
  // it loads our Tx cells exactly like locally generated traffic.
  if (frame.type == FrameType::kData && frame.dst == mac_.id() && !is_root_)
    ++sent_this_tick_;
}

void EmsfSf::on_parent_changed(NodeId old_parent, NodeId new_parent) {
  if (is_root_) return;
  if (old_parent != kNoNode) {
    sixp_.abort_peer(old_parent);
    // Best-effort CLEAR so the old parent releases our Rx grants promptly;
    // its child_timeout is the backstop when this frame is lost.
    SixpPayload clear;
    clear.command = SixpCommand::kClear;
    sixp_.request(old_parent, clear);
    if (mac_.schedule().get(kSlotframeHandle) != nullptr) {
      own_slotframe().remove_if(
          [old_parent](const Cell& c) { return c.neighbor == old_parent; });
    }
  }
  conflicted_cells_.clear();
  needs_clear_ = false;
  over_streak_ = 0;
  under_streak_ = 0;
  if (associated_ && new_parent != kNoNode) install_unicast_tx(new_parent);
}

std::optional<EbPayload> EmsfSf::eb_info() {
  if (!is_root_ && !rpl_.joined()) return std::nullopt;
  EbPayload eb;
  eb.join_priority = rpl_.hops();
  eb.slotframe_length = config_.slotframe_length;
  eb.has_family_channel = false;
  eb.dodag_root = rpl_.dodag_root();
  return eb;
}

void EmsfSf::monitor_tick() {
  if (!mac_.associated()) return;

  // Reclaim grants of children that went silent (lost CLEAR or dead node).
  if (config_.child_timeout > 0) {
    for (auto it = children_.begin(); it != children_.end();) {
      if (it->second.last_heard > 0 &&
          sim_.now() - it->second.last_heard > config_.child_timeout) {
        const NodeId gone = it->first;
        own_slotframe().remove_if([gone](const Cell& c) { return c.neighbor == gone; });
        it = children_.erase(it);
      } else {
        ++it;
      }
    }
  }

  const int used = sent_this_tick_;
  sent_this_tick_ = 0;

  if (is_root_) return;
  const NodeId parent = rpl_.parent();
  if (parent == kNoNode) return;

  // Hand back cells we refused during a stale-candidate conflict before
  // anything else — the parent is holding Rx state we will never use.
  if (!conflicted_cells_.empty() && !sixp_.busy_with(parent)) {
    SixpPayload del;
    del.command = SixpCommand::kDelete;
    const std::size_t chunk = std::min(conflicted_cells_.size(), kMaxSixpCellListCells);
    del.num_cells = static_cast<std::uint8_t>(chunk);
    del.cell_list.assign(conflicted_cells_.begin(),
                         conflicted_cells_.begin() + static_cast<std::ptrdiff_t>(chunk));
    conflicted_cells_.erase(
        conflicted_cells_.begin(),
        conflicted_cells_.begin() + static_cast<std::ptrdiff_t>(chunk));
    sixp_.request(parent, del);
    return;  // one transaction per tick
  }

  // Grant-state desync (parent at its cap, we hold nothing): wipe both
  // sides with CLEAR and let the next tick's bootstrap ADD start afresh.
  if (needs_clear_ && !sixp_.busy_with(parent)) {
    needs_clear_ = false;
    SixpPayload clear;
    clear.command = SixpCommand::kClear;
    sixp_.request(parent, clear);
    return;  // one transaction per tick
  }

  const int negotiated = dedicated_tx_cells();

  // Bootstrap: a joined node with zero dedicated cells requests its first
  // immediately (and keeps retrying every tick until granted) — the shared
  // fallback cell alone cannot carry steady traffic.
  if (negotiated == 0) {
    utilization_ = used > 0 ? 1.0 : 0.0;
    over_streak_ = 0;
    under_streak_ = 0;
    if (!sixp_.busy_with(parent)) {
      SixpPayload add;
      add.command = SixpCommand::kAdd;
      add.num_cells = static_cast<std::uint8_t>(std::max(1, config_.min_cells));
      add.cell_options = kCellTx;
      add.cell_list = free_candidate_cells(parent);
      sixp_.request(parent, add);
    }
    return;
  }

  // e-MSF's utilization estimator: packets offered this slotframe over the
  // dedicated Tx capacity, smoothed only by the hysteresis streaks.
  utilization_ = static_cast<double>(used) / static_cast<double>(negotiated);

  if (utilization_ > config_.add_threshold) {
    ++over_streak_;
    under_streak_ = 0;
  } else if (utilization_ < config_.delete_threshold) {
    ++under_streak_;
    over_streak_ = 0;
  } else {
    over_streak_ = 0;
    under_streak_ = 0;
  }

  if (over_streak_ >= config_.hysteresis_ticks && negotiated < config_.max_cells &&
      !sixp_.busy_with(parent)) {
    over_streak_ = 0;
    SixpPayload add;
    add.command = SixpCommand::kAdd;
    add.num_cells = 1;
    add.cell_options = kCellTx;
    add.cell_list = free_candidate_cells(parent);
    sixp_.request(parent, add);
  } else if (under_streak_ >= config_.hysteresis_ticks && negotiated > config_.min_cells &&
             !sixp_.busy_with(parent)) {
    under_streak_ = 0;
    // Release the highest-offset dedicated cell toward the parent.
    const std::vector<Cell> cells = own_slotframe().all_cells();
    const Cell* victim = nullptr;
    for (const Cell& c : cells) {
      if (!c.is_tx() || c.is_shared() || c.neighbor != parent) continue;
      if (victim == nullptr || c.slot_offset > victim->slot_offset) victim = &c;
    }
    if (victim != nullptr) {
      SixpPayload del;
      del.command = SixpCommand::kDelete;
      del.num_cells = 1;
      del.cell_list.push_back(*victim);
      sixp_.request(parent, del);
    }
  }
}

// ---------------------------------------------------------------------------
// Parent-side 6P handling.
// ---------------------------------------------------------------------------

SixpPayload EmsfSf::sixp_handle_request(NodeId peer, const SixpPayload& request) {
  SixpPayload r;
  switch (request.command) {
    case SixpCommand::kAdd: {
      ChildState& child = children_[peer];
      child.last_heard = sim_.now();
      // Make sure the response (and future unicast) can reach the child
      // over its autonomous Rx cell instead of the congested slot-0 plane.
      install_unicast_tx(peer);
      // Bound the grant leak from lost responses: a child that already
      // holds a full complement re-requests only when its side is out of
      // sync, and the child_timeout GC — not more grants — resolves that.
      if (child.granted_rx >= config_.max_cells) {
        r.code = SixpReturnCode::kErrNoResource;
        break;
      }
      Slotframe& sf = own_slotframe();
      for (const Cell& proposed : request.cell_list) {
        if (r.cell_list.size() >= static_cast<std::size_t>(request.num_cells)) break;
        if (proposed.slot_offset == 0 ||
            proposed.slot_offset >= config_.slotframe_length)
          continue;
        if (sf.slot_in_use(proposed.slot_offset)) continue;
        Cell mine;
        mine.slot_offset = proposed.slot_offset;
        mine.channel_offset = proposed.channel_offset;
        mine.options = kCellRx;
        mine.neighbor = peer;
        sf.add(mine);
        Cell theirs = mine;
        theirs.options = kCellTx;
        theirs.neighbor = kNoNode;  // filled in by the requester
        r.cell_list.push_back(theirs);
      }
      child.granted_rx += static_cast<int>(r.cell_list.size());
      r.num_cells = static_cast<std::uint8_t>(r.cell_list.size());
      r.code = r.cell_list.empty() ? SixpReturnCode::kErrNoResource
                                   : SixpReturnCode::kSuccess;
      break;
    }
    case SixpCommand::kDelete: {
      Slotframe& sf = own_slotframe();
      int removed = 0;
      for (const Cell& c : request.cell_list) {
        // Cells arrive in the requester's (Tx) perspective; ours mirror it.
        const std::size_t n = sf.remove_if([&](const Cell& mine) {
          return mine.neighbor == peer && mine.slot_offset == c.slot_offset &&
                 mine.is_rx() && !mine.is_shared();
        });
        if (n > 0) {
          ++removed;
          r.cell_list.push_back(c);
        }
      }
      const auto it = children_.find(peer);
      if (it != children_.end()) {
        it->second.last_heard = sim_.now();
        it->second.granted_rx = std::max(0, it->second.granted_rx - removed);
      }
      r.num_cells = static_cast<std::uint8_t>(r.cell_list.size());
      r.code = SixpReturnCode::kSuccess;
      break;
    }
    case SixpCommand::kClear: {
      own_slotframe().remove_if([peer](const Cell& c) { return c.neighbor == peer; });
      children_.erase(peer);
      r.code = SixpReturnCode::kSuccess;
      break;
    }
    case SixpCommand::kAskChannel:
      r.code = SixpReturnCode::kErr;  // GT-TSCH-specific; not part of e-MSF
      break;
  }
  return r;
}

// ---------------------------------------------------------------------------
// Child-side transaction completion.
// ---------------------------------------------------------------------------

void EmsfSf::sixp_transaction_done(NodeId peer, SixpCommand command, bool timed_out,
                                   const SixpPayload& response) {
  if (timed_out) return;  // the monitor retries
  if (peer != rpl_.parent()) return;

  switch (command) {
    case SixpCommand::kAdd: {
      if (response.code == SixpReturnCode::kErrNoResource && dedicated_tx_cells() == 0) {
        // The parent refused a *bootstrap* ADD: its books say we already
        // hold cells (responses lost in flight). 6P inconsistency recovery.
        needs_clear_ = true;
        return;
      }
      if (response.code != SixpReturnCode::kSuccess) return;
      Slotframe& sf = own_slotframe();
      for (Cell c : response.cell_list) {
        c.neighbor = peer;
        // Our proposal may have gone stale while in flight (we granted the
        // slot to one of our own children). Never double-book the radio:
        // refuse the cell and hand it back via DELETE.
        if (sf.slot_in_use(c.slot_offset)) {
          conflicted_cells_.push_back(c);
          continue;
        }
        sf.add(c);
      }
      return;
    }
    case SixpCommand::kDelete: {
      Slotframe& sf = own_slotframe();
      for (const Cell& c : response.cell_list) {
        sf.remove_if([&](const Cell& mine) {
          return mine.neighbor == peer && mine.slot_offset == c.slot_offset &&
                 mine.is_tx() && !mine.is_shared();
        });
      }
      return;
    }
    case SixpCommand::kClear:
    case SixpCommand::kAskChannel:
      return;
  }
}

void register_emsf_sf(SfRegistry& registry) {
  SfRegistry::Entry entry;
  entry.key = "emsf";
  entry.display_name = "e-MSF";
  entry.summary = "6P ADD/DELETE from cell-utilization thresholds with hysteresis";
  entry.aliases = {"e-msf"};
  entry.factory = [](const SfContext& ctx) -> std::unique_ptr<SchedulingFunction> {
    return std::make_unique<EmsfSf>(ctx.sim, ctx.mac, ctx.rpl, ctx.sixp,
                                    ctx.configs.emsf);
  };
  registry.add(std::move(entry));
}

}  // namespace gttsch
