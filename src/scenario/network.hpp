// Network: a simulator, a shared medium and a set of Nodes built from a
// TopologySpec — the unit a scenario runs.
#pragma once

#include <map>
#include <memory>

#include "phy/medium.hpp"
#include "scenario/node.hpp"
#include "util/arena.hpp"
#include "scenario/topology.hpp"
#include "sim/simulator.hpp"
#include "stats/run_stats.hpp"

namespace gttsch {

class Network {
 public:
  /// Factory for link models that need the network's simulator (e.g.
  /// DynamicLinkModel reading the clock for failure injection).
  using LinkModelFactory = std::function<std::unique_ptr<LinkModel>(Simulator&)>;

  /// `link_model` ownership moves in; `stats` may be null (tests).
  Network(std::uint64_t seed, std::unique_ptr<LinkModel> link_model,
          const TopologySpec& topology, const NodeStackConfig& node_config,
          RunStats* stats);

  /// Same, but the model is built against this network's simulator.
  Network(std::uint64_t seed, const LinkModelFactory& factory,
          const TopologySpec& topology, const NodeStackConfig& node_config,
          RunStats* stats);

  /// Detaches any telemetry recorder while the simulator is still alive:
  /// the recorder usually outlives the network (its records are written
  /// after the run), and its sampling timer must not outlive the sim.
  ~Network();

  /// Boots every node (roots first) — call once, then run the simulator.
  void start();

  Simulator& sim() { return sim_; }
  Medium& medium() { return medium_; }
  Node& node(NodeId id);
  const std::map<NodeId, std::unique_ptr<Node>>& nodes() const { return nodes_; }
  std::size_t size() const { return nodes_.size(); }

  /// Number of non-root nodes currently joined to a DODAG.
  std::size_t joined_count() const;

  /// True when every non-root node has an RPL parent and an associated MAC.
  bool fully_formed() const;

  /// Attach a telemetry recorder to every node (null detaches). Called by
  /// Telemetry::attach; TracePlayer reads it back for move/fail events.
  void set_telemetry(Telemetry* telemetry);
  Telemetry* telemetry() const { return telemetry_; }

 private:
  Simulator sim_;
  Medium medium_;
  /// Slab behind every node's protocol stack: one block holds the whole
  /// network, reboots reuse their own slot. Declared before nodes_ so the
  /// arena outlives the stacks it backs.
  Arena stack_arena_;
  std::map<NodeId, std::unique_ptr<Node>> nodes_;
  RunStats* stats_;
  Telemetry* telemetry_ = nullptr;
};

}  // namespace gttsch
