#include "scenario/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "phy/dynamic_link.hpp"
#include "stats/telemetry.hpp"
#include "util/check.hpp"
#include "util/concurrency.hpp"

namespace gttsch {

NodeStackConfig ScenarioConfig::make_node_config() const {
  using namespace literals;
  NodeStackConfig nc;
  nc.scheduler = scheduler;

  // MAC per Table II: 15 ms slots, sequence {17,23,15,25,19,11,13,21},
  // EB period 2 s, 4 retransmissions.
  nc.mac.timing.slot_duration = 15_ms;
  nc.mac.eb_period = 2_s;
  nc.mac.max_retries = 4;
  nc.mac.data_queue_capacity = queue_capacity;

  // RPL: MRHOF-style ETX objective.
  nc.rpl.min_hop_rank_increase = 256;
  nc.rpl.root_rank = 256;

  // GT-TSCH layout: broadcast slots scale with the slotframe (m/8), three
  // shared slots per family (ceil(max_children/2) with |F|=8 -> 5 children).
  nc.sf.gt.layout.length = gt_slotframe_length;
  nc.sf.gt.layout.broadcast_slots =
      std::max<std::uint16_t>(2, static_cast<std::uint16_t>(gt_slotframe_length / 8));
  nc.sf.gt.layout.shared_slots = 3;
  nc.sf.gt.broadcast_offset = 0;
  nc.sf.gt.queue_max = static_cast<double>(queue_capacity);
  nc.sf.gt.load_balancer.weights = game::Weights{alpha, beta, gamma};
  nc.sf.gt.placement_rules.tx_margin = enforce_tx_margin;
  nc.sf.gt.placement_rules.interleave = enforce_interleave;

  nc.sf.orchestra.unicast_slotframe_length = orchestra_unicast_length;
  nc.sf.orchestra.unicast_channel_hash = orchestra_channel_hash;

  nc.sf.alice.unicast_slotframe_length = alice_unicast_length;
  nc.sf.emsf.slotframe_length = emsf_slotframe_length;

  nc.app_rate_ppm = traffic_ppm;
  nc.app_start = std::max<TimeUs>(5_s, warmup / 3);
  nc.app_end = warmup + measure;
  return nc;
}

TopologySpec ScenarioConfig::make_topology() const {
  switch (topology) {
    case TopologyKind::kMultiDodag:
      return build_multi_dodag(dodag_count, nodes_per_dodag, hop_distance);
    case TopologyKind::kGrid: {
      // Squarest grid holding topology_nodes; surplus corner cells (when
      // n is not a product of the chosen sides) are trimmed off the end.
      const int n = std::max(topology_nodes, 1);
      const int cols = std::max(1, static_cast<int>(std::ceil(std::sqrt(n))));
      const int rows = (n + cols - 1) / cols;
      TopologySpec spec = build_grid(1, Position{0.0, 0.0}, cols, rows, hop_distance);
      spec.nodes.resize(static_cast<std::size_t>(n));
      return spec;
    }
    case TopologyKind::kLine: {
      // build_line counts hops, so a 1-node "line" is just the root.
      if (topology_nodes <= 1) return build_grid(1, Position{0.0, 0.0}, 1, 1, hop_distance);
      return build_line(1, Position{0.0, 0.0}, topology_nodes - 1, hop_distance);
    }
    case TopologyKind::kRandomDisk:
      return build_random_disk(1, Position{0.0, 0.0}, std::max(topology_nodes, 1),
                               disk_radius, hop_distance, topology_seed);
  }
  GTTSCH_CHECK(false);
  return {};
}

namespace {

bool fail_with(std::string* error, const char* message) {
  if (error != nullptr) *error = message;
  return false;
}

/// Range checks shared by make_trace (before synthesizing) and
/// validate_trace (which must stay cheap — no synthesis).
bool check_generator_params(const ScenarioConfig& c, std::string* error) {
  if (!(c.trace_interval_s > 0) || !std::isfinite(c.trace_interval_s)) {
    return fail_with(error, "trace_interval_s must be a positive number of seconds");
  }
  if (c.trace_speed_mps < 0 || !std::isfinite(c.trace_speed_mps)) {
    return fail_with(error, "trace_speed_mps must be a non-negative speed");
  }
  if (c.trace_movers < 0) return fail_with(error, "trace_movers must be >= 0");
  if (c.trace_fail_count < 0) return fail_with(error, "trace_fail_count must be >= 0");
  if (c.trace_fail_at_s < 0 || !std::isfinite(c.trace_fail_at_s)) {
    return fail_with(error, "trace_fail_at_s must be a non-negative time in seconds");
  }
  if (c.trace_kind == TraceKind::kCrashloop) {
    if (!(c.trace_down_s > 0) || !std::isfinite(c.trace_down_s)) {
      return fail_with(error, "trace_down_s must be a positive number of seconds");
    }
    if (!(c.trace_cycle_s > c.trace_down_s) || !std::isfinite(c.trace_cycle_s)) {
      return fail_with(error, "trace_cycle_s must exceed trace_down_s");
    }
  }
  return true;
}

}  // namespace

bool ScenarioConfig::make_trace(const TopologySpec& topology, Trace* out,
                                std::string* error) const {
  out->events.clear();
  switch (trace_kind) {
    case TraceKind::kNone:
      return true;  // stray trace_* params are inert without a kind
    case TraceKind::kFile:
      if (trace.empty()) {
        return fail_with(error, "trace_kind=file requires trace=PATH");
      }
      if (!load_trace(trace, out, error)) return false;
      return validate_trace_nodes(*out, topology, error);
    case TraceKind::kRandomWalk:
    case TraceKind::kRandomWaypoint:
    case TraceKind::kCrashloop: {
      if (!check_generator_params(*this, error)) return false;
      TraceGenParams params;
      params.seed = trace_seed;
      params.movers = trace_movers;
      params.speed_mps = trace_speed_mps;
      params.interval_s = trace_interval_s;
      params.fail_count = trace_fail_count;
      params.fail_at_s =
          trace_fail_at_s > 0 ? trace_fail_at_s : us_to_s(warmup + measure / 2);
      params.down_s = trace_down_s;
      params.cycle_s = trace_cycle_s;
      params.start = warmup;
      params.end = warmup + measure;
      *out = generate_trace(trace_kind, topology, params);
      return true;
    }
  }
  GTTSCH_CHECK(false);
  return false;
}

bool ScenarioConfig::validate_trace(std::string* error) const {
  switch (trace_kind) {
    case TraceKind::kNone:
      return true;
    case TraceKind::kFile: {
      if (trace.empty()) {
        return fail_with(error, "trace_kind=file requires trace=PATH");
      }
      Trace t;
      if (!load_trace(trace, &t, error)) return false;
      return validate_trace_nodes(t, make_topology(), error);
    }
    case TraceKind::kRandomWalk:
    case TraceKind::kRandomWaypoint:
    case TraceKind::kCrashloop:
      return check_generator_params(*this, error);
  }
  GTTSCH_CHECK(false);
  return false;
}

Network::LinkModelFactory scenario_link_model_factory(const ScenarioConfig& config,
                                                      const Trace& trace,
                                                      DynamicLinkModel** failures) {
  const double radio_range = config.radio_range;
  const double link_prr = config.link_prr;
  const double interference_factor = config.interference_factor;
  const bool wants_failures = trace.needs_dynamic_model();
  return [radio_range, link_prr, interference_factor, wants_failures,
          failures](Simulator& sim) -> std::unique_ptr<LinkModel> {
    auto base =
        std::make_unique<UnitDiskModel>(radio_range, link_prr, interference_factor);
    if (!wants_failures) return base;
    auto dynamic = std::make_unique<DynamicLinkModel>(sim, std::move(base));
    if (failures != nullptr) *failures = dynamic.get();
    return dynamic;
  };
}

ExperimentResult run_scenario(const ScenarioConfig& config) {
  return run_scenario(config, nullptr);
}

namespace {

/// Shared body of run_scenario and run_scenario_guarded. `guard` == null
/// runs unguarded (always returns true); with a guard, a watchdog trip
/// returns false before any finalization so a partial run can never be
/// mistaken for a result.
bool run_scenario_impl(const ScenarioConfig& config, Telemetry* telemetry,
                       const RunGuard* guard, ExperimentResult* out,
                       std::string* error) {
  GTTSCH_CHECK(config.measure > 0);
  const TimeUs measure_end = config.warmup + config.measure;
  const TopologySpec topology = config.make_topology();

  Trace trace;
  std::string trace_error;
  if (!config.make_trace(topology, &trace, &trace_error)) {
    std::fprintf(stderr, "run_scenario: %s\n", trace_error.c_str());
    GTTSCH_CHECK(false && "invalid trace configuration");
  }

  RunStats stats(config.warmup, measure_end);
  if (trace.needs_dynamic_model()) {
    // Churn-phase split at the first churn event and the last churn event
    // of ANY kind (fail/revive/prr/pause/resume) + settle: a revival or a
    // link episode disturbs routing just like a failure, so the "post"
    // window must not start before the network last changed.
    TimeUs first_churn = 0, last_churn = 0;
    bool seen = false;
    for (const TraceEvent& e : trace.events) {
      if (e.kind == TraceEventKind::kMove) continue;
      if (!seen || e.at < first_churn) first_churn = e.at;
      if (!seen || e.at > last_churn) last_churn = e.at;
      seen = true;
    }
    stats.set_churn_phases(first_churn, last_churn + kChurnSettle);
  }
  DynamicLinkModel* failures = nullptr;
  Network net(config.seed, scenario_link_model_factory(config, trace, &failures),
              topology, config.make_node_config(), &stats);
  TracePlayer player(net, std::move(trace), failures);

  // Island-parallel stepping. Bit-identical to the sequential path (see
  // sim/simulator.hpp), so this only decides *how* the run executes.
  int lanes = config.parallel_islands;
  if (lanes == 0) {
    if (const char* env = std::getenv("GTTSCH_PARALLEL")) {
      const int parsed = std::atoi(env);
      if (parsed > 0) lanes = parsed;
    }
  }
  if (const char* env = std::getenv("GTTSCH_FORCE_SEQUENTIAL");
      env != nullptr && env[0] != '\0' && env[0] != '0') {
    lanes = 0;
  }
  if (telemetry != nullptr) lanes = 0;  // telemetry reads stats mid-run
  lanes = available_island_workers(lanes);
  if (lanes > 1) {
    net.sim().set_parallel(lanes, &net.medium());
    stats.set_concurrent(true, &net.sim());
  }

  net.sim().at(config.warmup, [&stats] { stats.begin_measurement(); });
  net.sim().at(measure_end, [&stats] { stats.end_measurement(); });

  if (telemetry != nullptr) {
    telemetry->default_probe_window(config.warmup, measure_end);
    telemetry->attach(net, &stats);
  }

  if (guard != nullptr) {
    Watchdog watchdog;
    watchdog.max_wall_s = guard->max_wall_s;
    watchdog.livelock_events = guard->livelock_events;
    net.sim().arm_watchdog(watchdog);
  }

  auto tripped = [&] {
    if (!net.sim().watchdog_tripped()) return false;
    if (error != nullptr) {
      *error = "run aborted by watchdog: " + net.sim().watchdog_reason();
    }
    return true;
  };

  net.start();
  player.start();
  net.medium().reset_stats();  // formation noise excluded below via snapshot
  net.sim().run_until(config.warmup);
  if (tripped()) return false;
  const MediumStats at_warmup = net.medium().stats();
  net.sim().run_until(measure_end + config.drain);
  if (tripped()) return false;

  // Mark join state for the report.
  for (const auto& [id, node] : net.nodes())
    stats.set_joined(id, node->is_root() || node->rpl().joined());

  out->metrics = stats.finalize();
  if (telemetry != nullptr) telemetry->fill_probe_metrics(&out->metrics);
  MediumStats window = net.medium().stats();
  window.transmissions -= at_warmup.transmissions;
  window.deliveries -= at_warmup.deliveries;
  window.collision_losses -= at_warmup.collision_losses;
  window.prr_losses -= at_warmup.prr_losses;
  out->medium = window;
  out->fully_formed = net.fully_formed();
  return true;
}

}  // namespace

ExperimentResult run_scenario(const ScenarioConfig& config, Telemetry* telemetry) {
  ExperimentResult result;
  const bool ok =
      run_scenario_impl(config, telemetry, /*guard=*/nullptr, &result, nullptr);
  GTTSCH_CHECK(ok);  // unguarded runs cannot trip
  return result;
}

bool run_scenario_guarded(const ScenarioConfig& config, const RunGuard& guard,
                          ExperimentResult* out, std::string* error) {
  return run_scenario_impl(config, /*telemetry=*/nullptr, &guard, out, error);
}

AveragedMetrics run_averaged(ScenarioConfig config,
                             const std::vector<std::uint64_t>& seeds) {
  GTTSCH_CHECK(!seeds.empty());
  AveragedMetrics out;
  RunMetrics sum;
  for (const std::uint64_t seed : seeds) {
    config.seed = seed;
    const ExperimentResult r = run_scenario(config);
    sum.pdr_percent += r.metrics.pdr_percent;
    sum.avg_delay_ms += r.metrics.avg_delay_ms;
    sum.p95_delay_ms += r.metrics.p95_delay_ms;
    sum.loss_per_minute += r.metrics.loss_per_minute;
    sum.duty_cycle_percent += r.metrics.duty_cycle_percent;
    sum.queue_loss_per_node += r.metrics.queue_loss_per_node;
    sum.throughput_per_minute += r.metrics.throughput_per_minute;
    sum.generated += r.metrics.generated;
    sum.delivered += r.metrics.delivered;
    sum.queue_drops += r.metrics.queue_drops;
    sum.mac_drops += r.metrics.mac_drops;
    sum.no_route_drops += r.metrics.no_route_drops;
    sum.mean_hops += r.metrics.mean_hops;
    sum.measure_minutes += r.metrics.measure_minutes;
    sum.nodes_joined += r.metrics.nodes_joined;
    sum.node_count = r.metrics.node_count;
    sum.churn_phases |= r.metrics.churn_phases;
    sum.pre_generated += r.metrics.pre_generated;
    sum.churn_generated += r.metrics.churn_generated;
    sum.post_generated += r.metrics.post_generated;
    sum.pre_delivered += r.metrics.pre_delivered;
    sum.churn_delivered += r.metrics.churn_delivered;
    sum.post_delivered += r.metrics.post_delivered;
    sum.pre_pdr_percent += r.metrics.pre_pdr_percent;
    sum.churn_pdr_percent += r.metrics.churn_pdr_percent;
    sum.post_pdr_percent += r.metrics.post_pdr_percent;
    sum.pre_avg_delay_ms += r.metrics.pre_avg_delay_ms;
    sum.churn_avg_delay_ms += r.metrics.churn_avg_delay_ms;
    sum.post_avg_delay_ms += r.metrics.post_avg_delay_ms;
    sum.node_failures += r.metrics.node_failures;
    sum.node_revivals += r.metrics.node_revivals;
    sum.node_rejoins += r.metrics.node_rejoins;
    sum.orphan_intervals += r.metrics.orphan_intervals;
    sum.recovery_ttr_censored += r.metrics.recovery_ttr_censored;
    sum.recovery_rejoin_s += r.metrics.recovery_rejoin_s;
    sum.recovery_first_delivery_s += r.metrics.recovery_first_delivery_s;
    sum.recovery_ttr_s += r.metrics.recovery_ttr_s;
    out.medium_sum.transmissions += r.medium.transmissions;
    out.medium_sum.deliveries += r.medium.deliveries;
    out.medium_sum.collision_losses += r.medium.collision_losses;
    out.medium_sum.prr_losses += r.medium.prr_losses;
    if (r.fully_formed) ++out.fully_formed_runs;
    ++out.runs;
  }
  const double n = static_cast<double>(out.runs);
  out.mean = sum;
  out.mean.pdr_percent /= n;
  out.mean.avg_delay_ms /= n;
  out.mean.p95_delay_ms /= n;
  out.mean.loss_per_minute /= n;
  out.mean.duty_cycle_percent /= n;
  out.mean.queue_loss_per_node /= n;
  out.mean.throughput_per_minute /= n;
  out.mean.mean_hops /= n;
  out.mean.measure_minutes /= n;
  out.mean.pre_pdr_percent /= n;
  out.mean.churn_pdr_percent /= n;
  out.mean.post_pdr_percent /= n;
  out.mean.pre_avg_delay_ms /= n;
  out.mean.churn_avg_delay_ms /= n;
  out.mean.post_avg_delay_ms /= n;
  out.mean.recovery_rejoin_s /= n;
  out.mean.recovery_first_delivery_s /= n;
  out.mean.recovery_ttr_s /= n;
  return out;
}

std::vector<std::uint64_t> default_seeds() {
  int count = 3;
  if (const char* env = std::getenv("GTTSCH_SEEDS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0 && parsed <= 64) count = parsed;
  }
  std::vector<std::uint64_t> seeds;
  for (int i = 0; i < count; ++i) seeds.push_back(1000 + 17ull * static_cast<std::uint64_t>(i));
  return seeds;
}

const char* scheduler_name(const std::string& key) {
  const SfRegistry::Entry* entry = SfRegistry::instance().find(key);
  // The singleton's entries are stable for the process lifetime, so the
  // returned c_str() stays valid like the old literal did.
  return entry != nullptr ? entry->display_name.c_str() : "?";
}

const char* topology_name(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kMultiDodag:
      return "multi-dodag";
    case TopologyKind::kGrid:
      return "grid";
    case TopologyKind::kLine:
      return "line";
    case TopologyKind::kRandomDisk:
      return "random-disk";
  }
  return "?";
}

}  // namespace gttsch
