// The full per-node protocol stack: radio + TSCH MAC + RPL + 6P + a
// scheduling function + application traffic. This is the integration
// layer that dispatches MAC upcalls to the right protocol module and
// implements convergecast forwarding. The scheduling function is chosen
// by registry key (sixp/sf_registry.hpp) and driven exclusively through
// the SchedulingFunction interface — no downcasts.
//
// The protocol stack lives behind one indirection (Stack) so a failed
// node can crash-reboot: reboot() destroys every protocol object (RAII
// timers cancel all pending callbacks) and rebuilds them from the stored
// boot config — fresh MAC/RPL/SF state, same radio hardware (position,
// oscillator drift, energy accounting persist).
#pragma once

#include <memory>
#include <string>

#include "app/traffic.hpp"
#include "mac/tsch_mac.hpp"
#include "net/rpl.hpp"
#include "phy/medium.hpp"
#include "scenario/topology.hpp"
#include "sixp/sf.hpp"
#include "sixp/sf_registry.hpp"
#include "sixp/sixp.hpp"
#include "stats/run_stats.hpp"

namespace gttsch {

class Telemetry;

struct NodeStackConfig {
  std::string scheduler = "gt-tsch";  ///< SfRegistry key (or alias)
  MacConfig mac;
  RplConfig rpl;
  SfConfigs sf;  ///< per-scheduler config blobs; the factory reads its own
  double app_rate_ppm = 0.0;  ///< 0 = no local traffic (roots)
  TimeUs app_start = 5000000;
  TimeUs app_end = 0;  ///< absolute; 0 = run forever
  /// Non-root nodes begin scanning after a random delay below this bound.
  TimeUs max_scan_start_delay = 2000000;
  /// Per-node oscillator error drawn uniformly from [-max, +max] ppm
  /// (0 = perfect clocks). EB time corrections keep drifted nodes aligned.
  double max_drift_ppm = 0.0;
};

class Arena;

class Node final : public MacUpcalls, public RplCallbacks {
 public:
  /// `stack_arena` (optional) slab-allocates the protocol stack: pass the
  /// network-wide arena so all stacks share contiguous blocks and a
  /// reboot rebuilds into the slot it just vacated. Must outlive the node.
  Node(Simulator& sim, Medium& medium, const NodeSpec& spec, const NodeStackConfig& config,
       RunStats* stats, Rng rng, Arena* stack_arena = nullptr);
  ~Node() override;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Boot the stack (roots start the TSCH network; others scan).
  void start();

  /// Simulate node failure: the stack halts and the radio goes silent.
  /// Pair with DynamicLinkModel::kill_node so in-flight frames die too.
  void fail();

  /// Crash-reboot a failed node: the entire protocol stack is torn down
  /// and reconstructed (fresh MAC/RPL/SF/6P/app state, queues empty) and
  /// the node re-associates from a beacon scan. The radio object persists
  /// — position and energy accounting carry over, and the oscillator
  /// keeps its drift (same hardware). App/probe sequence counters also
  /// persist so delivered-packet accounting stays unambiguous at the root.
  /// Pair with DynamicLinkModel::revive_node. Deterministic: boot k draws
  /// its protocol RNG streams from fork tags fixed by (node seed, k).
  void reboot();

  bool failed() const { return failed_; }
  /// Number of completed reboot() calls.
  int reboots() const { return reboots_; }

  /// Relocate the node (mobility). Takes effect for all subsequent
  /// transmissions; link qualities follow the distance-based model.
  void move_to(Position pos) { radio_.set_position(pos); }
  const Position& position() const { return radio_.position(); }

  NodeId id() const { return id_; }
  bool is_root() const { return is_root_; }

  /// Slot geometry of the private Stack slab, for sizing a shared Arena.
  static std::size_t stack_slot_size();
  static std::size_t stack_slot_align();

  Radio& radio() { return radio_; }
  TschMac& mac() { return stack_->mac; }
  RplAgent& rpl() { return stack_->rpl; }
  SixpAgent& sixp() { return stack_->sixp; }
  EtxEstimator& etx() { return stack_->etx; }
  SchedulingFunction& sf() { return *stack_->sf; }
  const SchedulingFunction& sf() const { return *stack_->sf; }

  std::uint64_t app_generated() const { return app_generated_; }

  /// Attach a telemetry recorder (null detaches). Hooks are pointer-gated
  /// null checks, so a run without telemetry stays allocation-free.
  void set_telemetry(Telemetry* telemetry);

  /// Send one telemetry probe frame toward the root: real traffic marked
  /// DataPayload::is_probe, excluded from the RunStats panel metrics
  /// unless the telemetry config counts probes in panels. Only valid with
  /// a telemetry recorder attached.
  void send_probe();

  // MacUpcalls:
  void mac_associated(Asn asn, const Frame& eb) override;
  void mac_frame_received(const Frame& frame) override;
  void mac_tx_result(const Frame& frame, bool acked, int attempts) override;

  // RplCallbacks:
  void rpl_parent_changed(NodeId old_parent, NodeId new_parent) override;
  void rpl_rank_changed(std::uint16_t rank) override;

 private:
  /// Every protocol object above the radio, grouped so reboot() can tear
  /// them down and rebuild them as one unit. Construction wires the MAC
  /// upcalls, RPL callbacks and the SF factory exactly like first boot.
  struct Stack {
    Stack(Node& node, const MacConfig& mac_config, const Rng& rng);

    TschMac mac;
    EtxEstimator etx;
    RplAgent rpl;
    SixpAgent sixp;
    std::unique_ptr<SchedulingFunction> sf;
    PeriodicSource app;
  };

  /// Destroys a Stack through its arena (or the heap when arena-less).
  struct StackDeleter {
    Arena* arena = nullptr;
    void operator()(Stack* stack) const noexcept;
  };

  /// Builds a Stack in the arena slot (or on the heap) for (re)boot.
  std::unique_ptr<Stack, StackDeleter> make_stack(const Rng& rng);

  /// Shared boot path: provider wiring + SF/RPL/MAC start + app start.
  void boot_stack();
  void generate_packet();
  void handle_data(const Frame& frame);
  /// False only for probe frames the telemetry config excludes from the
  /// panel metrics.
  bool count_in_panels(const DataPayload& data) const;

  Simulator& sim_;
  Medium& medium_;
  NodeId id_;
  bool is_root_;
  RunStats* stats_;
  Telemetry* telemetry_ = nullptr;
  Rng rng_;
  /// Immutable copy of the construction RNG: reboot k derives its stack
  /// streams as boot_rng_.fork(kRebootForkBase + k), so replay is exact in
  /// both stepping modes and independent of how much entropy the first
  /// life consumed.
  const Rng boot_rng_;
  const NodeStackConfig config_;
  const MacConfig mac_config_;  ///< resolved once (drift = the oscillator)

  Arena* stack_arena_;
  Radio radio_;
  std::unique_ptr<Stack, StackDeleter> stack_;
  TimeUs app_start_;
  TimeUs max_scan_start_delay_;

  std::uint32_t app_seq_ = 0;
  std::uint64_t app_generated_ = 0;
  std::uint32_t probe_seq_ = 0;
  int reboots_ = 0;
  bool failed_ = false;
};

}  // namespace gttsch
