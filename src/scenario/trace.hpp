// First-class fault-injection traces: a time-ordered event stream that
// drives a scenario's dynamics — parsed from a line-oriented text file
// with strict validation, or synthesized by deterministic generators
// (random-walk, random-waypoint, crashloop) — plus a TracePlayer that
// schedules the events into a running Network.
//
// File grammar (one event per line; `#` starts a comment; timestamps are
// seconds of simulated time and must be non-decreasing):
//   <t_s> move <node> <x> <y>     relocate node to (x, y) meters
//   <t_s> fail <node>             node dies (stack halts, radio silent)
//   <t_s> revive <node>           crash-reboot a failed node: fresh
//                                 MAC/RPL/SF state, re-associates from scan
//   <t_s> prr <a> <b> <value>     scripted link quality: the a->b link
//                                 delivers with probability <value> in [0,1]
//   <t_s> pause <a> <b>           blackout the a<->b link (both directions)
//   <t_s> resume <a> <b>          end the blackout: a<->b reverts to the
//                                 base model (clears scripted prr too)
// Every malformed line — bad keyword, wrong arity, non-numeric field,
// backwards timestamp, out-of-range coordinate or prr, reserved node id,
// event on a dead node or link, revive without a prior fail, resume
// without a matching pause — is rejected with its line number.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "phy/geometry.hpp"
#include "scenario/topology.hpp"
#include "util/types.hpp"

namespace gttsch {

class Network;
class DynamicLinkModel;

/// How a scenario's trace is produced. kNone = static run; kFile plays a
/// trace file; the generator kinds synthesize a deterministic stream.
enum class TraceKind : std::uint8_t {
  kNone,
  kFile,
  kRandomWalk,
  kRandomWaypoint,
  kCrashloop,
};

const char* trace_kind_name(TraceKind kind);
bool parse_trace_kind(const std::string& text, TraceKind* out);

enum class TraceEventKind : std::uint8_t { kMove, kFail, kRevive, kPrr, kPause, kResume };

struct TraceEvent {
  TimeUs at = 0;
  TraceEventKind kind = TraceEventKind::kMove;
  NodeId node = 0;
  NodeId peer = 0;    ///< kPrr/kPause/kResume: the link's other endpoint
  Position pos;       ///< kMove only
  double value = 0.0; ///< kPrr only: delivery probability in [0, 1]
  int line = 0;       ///< source line for parsed traces (0 = generated)

  /// Equality over the event's *content* (source line excluded), so a
  /// generated trace and its file round trip compare equal.
  friend bool operator==(const TraceEvent& a, const TraceEvent& b) {
    return a.at == b.at && a.kind == b.kind && a.node == b.node && a.peer == b.peer &&
           a.pos.x == b.pos.x && a.pos.y == b.pos.y && a.value == b.value;
  }
};

struct Trace {
  std::vector<TraceEvent> events;  ///< non-decreasing by `at`

  bool empty() const { return events.empty(); }
  bool has_failures() const;
  /// True when playback needs a DynamicLinkModel wrapper: any event kind
  /// that manipulates node liveness or link quality (everything but move).
  bool needs_dynamic_model() const;
};

/// Largest node id a trace may address (kNoNode / kBroadcastId reserved).
inline constexpr NodeId kMaxTraceNodeId = 0xFFFD;
/// Coordinates beyond this magnitude are rejected as malformed.
inline constexpr double kMaxTraceCoordinate = 1e6;
/// Timestamps beyond this many seconds are rejected as malformed.
inline constexpr double kMaxTraceSeconds = 1e9;

/// Parses the file grammar above. On failure returns false with `error`
/// naming the offending line ("line N: ...").
bool parse_trace(const std::string& text, Trace* out, std::string* error);

/// parse_trace over a file's contents; unreadable paths fail with the path
/// in `error`.
bool load_trace(const std::string& path, Trace* out, std::string* error);

/// Serializes a trace back to the file grammar. Microsecond-exact times
/// and %.17g coordinates: parse_trace(format_trace(t)) reproduces every
/// event bit for bit.
std::string format_trace(const Trace& trace);

bool save_trace(const std::string& path, const Trace& trace, std::string* error);

/// Checks that every event addresses nodes of `topology`; reports the
/// offending line number for parsed traces.
bool validate_trace_nodes(const Trace& trace, const TopologySpec& topology,
                          std::string* error);

/// Knobs for the synthetic generators. Movers and failing nodes are drawn
/// deterministically from the topology's non-root nodes; every position in
/// the emitted stream follows from `seed` alone (IEEE arithmetic only — no
/// libm trig — so streams are portable across hosts).
struct TraceGenParams {
  std::uint64_t seed = 1;
  int movers = 0;
  double speed_mps = 1.5;    ///< step length per tick = speed * interval
  double interval_s = 2.0;   ///< tick period (> 0)
  int fail_count = 0;
  double fail_at_s = 0.0;    ///< first failure (absolute sim seconds)
  double down_s = 30.0;      ///< crashloop: fail -> revive gap (> 0)
  double cycle_s = 120.0;    ///< crashloop: fail -> next fail period (> down_s)
  TimeUs start = 0;          ///< first move tick lands at start + interval
  TimeUs end = 0;            ///< no events at/after this time
};

/// Synthesizes a trace (`kind` selects the preset):
///   random-walk:     each mover steps `speed * interval` in a uniformly
///                    random direction every tick, clamped to the
///                    deployment bounding box (plus margin).
///   random-waypoint: each mover heads to a uniformly drawn waypoint at
///                    `speed`, picking a fresh waypoint on arrival.
///   crashloop:       `fail_count` nodes crash-reboot on staggered cycles:
///                    the i-th crasher first fails at fail_at_s +
///                    i * interval_s, revives down_s later, and fails
///                    again every cycle_s until `end` (a node whose
///                    revive would land at/after `end` stays dead).
/// For the mobility kinds the i-th failing node dies at `fail_at_s +
/// i * interval_s` and a mover that fails stops moving at its failure
/// time. Same params ⇒ the same event stream, independent of host/build.
Trace generate_trace(TraceKind kind, const TopologySpec& topology,
                     const TraceGenParams& params);

/// Schedules a trace's events into a network: moves via Node::move_to,
/// failures via Node::fail, revivals via Node::reboot — plus the matching
/// DynamicLinkModel calls (kill_node / revive_node / override_prr /
/// clear_override) when a dynamic model is supplied, so in-flight frames
/// and link quality change at the same instant the stacks do. All events
/// are scheduled up front by start() (default event key: slot boundaries
/// keyed lower still run first at equal times), which keeps replay
/// bit-identical between fast-path and per-slot stepping. The player must
/// outlive the simulation run.
class TracePlayer {
 public:
  TracePlayer(Network& net, Trace trace, DynamicLinkModel* failures = nullptr);

  /// Validates node ids against the live network (aborts on unknown ids —
  /// call validate_trace_nodes first for a recoverable error), registers
  /// the link-model hooks, and schedules every event. Call once, after
  /// Network::start() (or before; events only need at >= now).
  void start();

  std::size_t applied() const { return applied_; }

 private:
  void apply(const TraceEvent& event);

  Network& net_;
  Trace trace_;
  DynamicLinkModel* failures_;
  std::size_t applied_ = 0;
  bool started_ = false;
};

}  // namespace gttsch
