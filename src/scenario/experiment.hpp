// Experiment runner: turns a declarative ScenarioConfig (Table II settings,
// topology, traffic, scheduler) into seed-averaged RunMetrics — the engine
// behind every figure-reproduction bench.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/network.hpp"
#include "scenario/trace.hpp"

namespace gttsch {

/// Topology family a scenario is built on. kMultiDodag is the paper's
/// setup (independent Fig-6-shaped DODAGs); the builder kinds open the
/// large-scale workloads (50/100/200-node grids, chains and random
/// multihop meshes) as first-class, campaign-sweepable scenarios.
enum class TopologyKind : std::uint8_t { kMultiDodag, kGrid, kLine, kRandomDisk };

struct ScenarioConfig {
  /// SfRegistry key ("gt-tsch", "orchestra", "alice", "emsf"); the
  /// campaign parser canonicalizes aliases before runs and fingerprints.
  std::string scheduler = "gt-tsch";

  // Topology. kMultiDodag uses dodag_count x nodes_per_dodag; the builder
  // kinds (grid / line / random-disk) place `topology_nodes` total nodes
  // with `hop_distance` spacing (grid pitch, chain step, or the
  // random-disk connectivity radius).
  TopologyKind topology = TopologyKind::kMultiDodag;
  int dodag_count = 2;
  int nodes_per_dodag = 7;
  double hop_distance = 30.0;
  int topology_nodes = 50;        ///< total nodes for grid/line/random-disk
  double disk_radius = 120.0;     ///< random-disk placement radius
  std::uint64_t topology_seed = 1;  ///< random-disk placement stream

  // Radio / medium.
  double radio_range = 40.0;
  double interference_factor = 1.6;
  double link_prr = 1.0;

  // Traffic (per non-root node).
  double traffic_ppm = 30.0;

  // Schedules. GT-TSCH uses one slotframe of gt_slotframe_length; per the
  // paper's fairness rule (Section VIII) it is 4x Orchestra's unicast
  // slotframe length in the Fig 10 sweep.
  std::uint16_t gt_slotframe_length = 32;
  std::uint16_t orchestra_unicast_length = 8;

  // Orchestra channel strategy (the Section III critique): false = one
  // fixed unicast offset (Contiki-NG default), true = hashed per receiver.
  bool orchestra_channel_hash = false;

  // Baseline-scheduler knobs (sweepable like the two above): ALICE's
  // unicast/rehash slotframe length and e-MSF's single slotframe length.
  std::uint16_t alice_unicast_length = 8;
  std::uint16_t emsf_slotframe_length = 32;

  // Queueing (Q_Max).
  std::size_t queue_capacity = 16;

  // Game weights (alpha, beta, gamma).
  double alpha = 4.0;
  double beta = 1.0;
  double gamma = 1.0;

  // Section V placement-rule toggles (for the ablation bench).
  bool enforce_tx_margin = true;
  bool enforce_interleave = true;

  // Timing.
  TimeUs warmup = 180000000;    ///< formation + settling
  TimeUs measure = 300000000;   ///< measurement window length
  TimeUs drain = 10000000;      ///< run-out so in-flight packets arrive

  // Mobility & failure trace (scenario/trace.hpp). kNone runs static;
  // kFile plays the `trace` file; the generator kinds synthesize a
  // deterministic stream over [warmup, warmup + measure) from trace_seed.
  TraceKind trace_kind = TraceKind::kNone;
  std::uint64_t trace_seed = 1;     ///< generator stream (independent of `seed`)
  int trace_movers = 8;             ///< nodes walking (generator kinds)
  int trace_fail_count = 0;         ///< nodes that die mid-run
  double trace_speed_mps = 1.5;     ///< mover speed (meters/second)
  double trace_interval_s = 2.0;    ///< move tick / failure stagger period
  double trace_fail_at_s = 0.0;     ///< first failure (absolute s); 0 = window midpoint
  double trace_down_s = 30.0;       ///< crashloop: downtime before each revive
  double trace_cycle_s = 120.0;     ///< crashloop: fail-to-fail period per node
  std::string trace;                ///< trace file path (trace_kind == kFile)

  std::uint64_t seed = 1;

  /// Island-parallel stepping (PR 10): number of worker lanes the run may
  /// use to step interference islands concurrently; 0 or 1 = the
  /// sequential reference mode. Results are bit-identical either way, so
  /// this is an execution knob, NOT part of the scenario's identity — the
  /// campaign fingerprint excludes it. Environment overrides:
  /// GTTSCH_PARALLEL supplies a default when this is 0, and
  /// GTTSCH_FORCE_SEQUENTIAL (non-empty, non-"0") forces sequential.
  /// The effective lane count is also clamped against the machine and
  /// any campaign worker reservation (util/concurrency.hpp), and runs
  /// with a telemetry recorder attached always step sequentially
  /// (telemetry reads the stats accumulator mid-run).
  int parallel_islands = 0;

  /// Derived: Table-II-style MAC settings for this scenario.
  NodeStackConfig make_node_config() const;
  TopologySpec make_topology() const;

  /// Builds this scenario's trace against `topology` (empty for kNone):
  /// loads + validates the file for kFile, synthesizes for the generator
  /// kinds. Returns false with a message (including the offending line for
  /// file traces) on any invalid configuration.
  bool make_trace(const TopologySpec& topology, Trace* out, std::string* error) const;

  /// The campaign layer's pre-run check that a grid point's trace setup is
  /// sound before any simulation starts: generator params range-checked,
  /// file traces loaded and their node ids checked against this config's
  /// own topology. Cheap — never synthesizes a generator stream.
  bool validate_trace(std::string* error) const;
};

/// Link-model factory for a scenario run: the UnitDisk model from the
/// config's radio fields, wrapped in a DynamicLinkModel only when `trace`
/// carries failure events (kill_node silences in-flight frames; move-only
/// and static runs stay on the plain model). `*failures` (optional)
/// receives the wrapper when the factory runs — hand it to TracePlayer.
/// Captures by value: safe to use after `config`/`trace` go out of scope.
Network::LinkModelFactory scenario_link_model_factory(const ScenarioConfig& config,
                                                      const Trace& trace,
                                                      DynamicLinkModel** failures);

/// One run (single seed). Exposes the end-state network for inspection.
struct ExperimentResult {
  RunMetrics metrics;
  MediumStats medium;
  bool fully_formed = false;
};

ExperimentResult run_scenario(const ScenarioConfig& config);

/// Runaway-run guard for fault-tolerant campaigns (--job-timeout without
/// --isolate): limits on the wall clock and on same-virtual-time event
/// storms, enforced inside the simulator's event loop.
struct RunGuard {
  double max_wall_s = 0.0;  ///< wall-clock budget (s); <= 0 = unlimited
  /// Events allowed at one virtual timestamp before the run is declared
  /// livelocked. The default is far above anything a healthy scenario
  /// produces (a whole run processes a few million events) while still
  /// catching a zero-delay event spin within seconds.
  std::uint64_t livelock_events = 10'000'000;
};

/// run_scenario with the guard armed: returns true with `*out` filled —
/// bit-identical to run_scenario(config) — when the run finishes within
/// budget, false with `*error` describing the trip (and `*out`
/// unspecified) when the watchdog aborts it. Never throws/aborts on a
/// guard trip; config errors still abort exactly like run_scenario.
bool run_scenario_guarded(const ScenarioConfig& config, const RunGuard& guard,
                          ExperimentResult* out, std::string* error);

/// Same run with a telemetry recorder attached: gauge samples, probe
/// frames and the structured event trace accumulate in `telemetry`
/// (constructed by the caller, written out by the caller), and its probe
/// summary is copied into the returned metrics. Telemetry lives outside
/// ScenarioConfig on purpose: it is not part of a scenario's identity
/// (campaign fingerprints are unchanged), and with probes disabled the
/// result is bit-identical to run_scenario(config).
class Telemetry;
ExperimentResult run_scenario(const ScenarioConfig& config, Telemetry* telemetry);

/// Averages the panel metrics over `seeds` runs of the same scenario.
struct AveragedMetrics {
  RunMetrics mean;          ///< each field averaged over seeds
  MediumStats medium_sum;   ///< summed medium counters
  int runs = 0;
  int fully_formed_runs = 0;
};

AveragedMetrics run_averaged(ScenarioConfig config, const std::vector<std::uint64_t>& seeds);

/// Default seed list used by the figure benches (override length with the
/// GTTSCH_SEEDS environment variable).
std::vector<std::uint64_t> default_seeds();

/// Registry display name ("GT-TSCH") for a scheduler key or alias; "?"
/// for unknown keys — derived from SfRegistry, never a parallel table.
const char* scheduler_name(const std::string& key);
const char* topology_name(TopologyKind kind);

}  // namespace gttsch
