#include "scenario/node.hpp"

#include <new>

#include "sim/log.hpp"
#include "stats/telemetry.hpp"
#include "util/arena.hpp"
#include "util/check.hpp"

namespace gttsch {

namespace {
/// Fork-tag base for reboot RNG derivation: boot k (k >= 1) builds its
/// stack from boot_rng_.fork(kRebootForkBase + k). Distinct from every
/// per-module tag used below, so reboot streams never collide with the
/// first boot's.
constexpr std::uint64_t kRebootForkBase = 0xB007;

/// Instantiate this node's MAC config, drawing its oscillator error.
MacConfig node_mac_config(const NodeStackConfig& config, Rng rng) {
  MacConfig mc = config.mac;
  if (config.max_drift_ppm > 0.0) {
    mc.drift_ppm =
        rng.fork(0xD81F).uniform_double(-config.max_drift_ppm, config.max_drift_ppm);
  }
  return mc;
}
}  // namespace

Node::Stack::Stack(Node& node, const MacConfig& mac_config, const Rng& rng)
    : mac(node.sim_, node.medium_, node.radio_, mac_config, rng.fork(0x3AC)),
      etx(),
      rpl(node.sim_, mac, etx, node.config_.rpl, rng.fork(0x491)),
      sixp(node.sim_, mac),
      app(node.sim_, rng.fork(0xA99), node.is_root_ ? 0.0 : node.config_.app_rate_ppm,
          [&node] { node.generate_packet(); }) {
  mac.set_upcalls(&node);
  rpl.set_callbacks(&node);
  sf = SfRegistry::instance().create(
      node.config_.scheduler,
      SfContext{node.sim_, mac, rpl, sixp, etx, rng.fork(0x67), node.config_.sf});
  if (node.config_.app_end != 0) app.set_end_time(node.config_.app_end);
}

Node::Node(Simulator& sim, Medium& medium, const NodeSpec& spec,
           const NodeStackConfig& config, RunStats* stats, Rng rng,
           Arena* stack_arena)
    : sim_(sim),
      medium_(medium),
      id_(spec.id),
      is_root_(spec.is_root),
      stats_(stats),
      rng_(rng),
      boot_rng_(rng),
      config_(config),
      mac_config_(node_mac_config(config, rng)),
      stack_arena_(stack_arena),
      radio_(sim, medium, spec.id, spec.pos),
      stack_(make_stack(rng)),
      app_start_(config.app_start),
      max_scan_start_delay_(config.max_scan_start_delay) {}

Node::~Node() = default;

std::size_t Node::stack_slot_size() { return sizeof(Stack); }
std::size_t Node::stack_slot_align() { return alignof(Stack); }

void Node::StackDeleter::operator()(Stack* stack) const noexcept {
  if (arena == nullptr) {
    delete stack;
    return;
  }
  stack->~Stack();
  arena->deallocate(stack);
}

auto Node::make_stack(const Rng& rng) -> std::unique_ptr<Stack, StackDeleter> {
  if (stack_arena_ == nullptr) {
    return {new Stack(*this, mac_config_, rng), StackDeleter{nullptr}};
  }
  void* slot = stack_arena_->allocate();
  return {new (slot) Stack(*this, mac_config_, rng), StackDeleter{stack_arena_}};
}

void Node::boot_stack() {
  // Provider wiring lives here, not in each SF: every scheduler answers
  // these through the common interface (advertised_free_rx defaults to 0
  // for autonomous SFs, so the DIO option stays inert for them).
  stack_->rpl.set_free_rx_provider([this] { return stack_->sf->advertised_free_rx(); });
  stack_->mac.set_eb_provider([this] { return stack_->sf->eb_info(); });
  stack_->sf->start(is_root_);
  if (is_root_) {
    stack_->rpl.start_as_root();
    stack_->mac.start_as_root();
  } else {
    stack_->rpl.start();
    const TimeUs delay = static_cast<TimeUs>(
        rng_.uniform(static_cast<std::uint64_t>(std::max<TimeUs>(1, max_scan_start_delay_))));
    // The epoch guard keeps a scan-start scheduled by this life from
    // firing into a later one (or a failed node): a crash inside the
    // delay window would otherwise start the next stack's scan twice.
    const int boot = reboots_;
    sim_.after(delay, [this, boot] {
      if (reboots_ == boot && !failed_) stack_->mac.start_scanning();
    });
  }
  stack_->app.start(app_start_);
}

// start/fail/reboot are the entry points that begin a node's causal chain
// (boot events, trace application): the ScopedOwner attributes everything
// they schedule — in both execution modes, so owners (part of the event
// order) never differ between them — to this node, homing the chain to the
// node's island.

void Node::start() {
  Simulator::ScopedOwner owner(sim_, id_);
  boot_stack();
}

void Node::fail() {
  Simulator::ScopedOwner owner(sim_, id_);
  failed_ = true;
  stack_->app.stop();
  stack_->mac.shutdown();
  if (stats_ != nullptr) stats_->on_node_failed(id_, sim_.now());
}

void Node::reboot() {
  GTTSCH_CHECK(failed_ && "reboot() requires a prior fail()");
  Simulator::ScopedOwner owner(sim_, id_);
  ++reboots_;
  // Destroying the stack cancels every pending timer/callback of the old
  // life (RAII), so nothing from before the crash can fire afterwards.
  // The MAC destructor severs the radio hooks; the new MAC re-wires them.
  // With an arena the LIFO freelist hands the new stack the very slot the
  // old one vacated — the rebooted node stays where its neighbors expect
  // it in the slab, and churn never touches the global allocator.
  stack_.reset();
  stack_ = make_stack(
      boot_rng_.fork(kRebootForkBase + static_cast<std::uint64_t>(reboots_)));
  failed_ = false;
  set_telemetry(telemetry_);  // re-aim the 6P observer at the new agent
  boot_stack();
  if (stats_ != nullptr) stats_->on_node_rebooted(id_, sim_.now());
}

void Node::set_telemetry(Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry_ != nullptr) {
    stack_->sixp.set_transaction_observer(
        [this](NodeId peer, SixpCommand command, bool timed_out, bool ok) {
          telemetry_->on_sixp_done(id_, peer, command, timed_out, ok);
        });
  } else {
    stack_->sixp.set_transaction_observer(nullptr);
  }
}

bool Node::count_in_panels(const DataPayload& data) const {
  return !data.is_probe || telemetry_ == nullptr || telemetry_->probes_in_panels();
}

void Node::mac_associated(Asn, const Frame&) {
  if (telemetry_ != nullptr) telemetry_->on_associated(id_);
  if (stats_ != nullptr) stats_->on_associated(id_, sim_.now());
  stack_->sf->on_associated();
  stack_->rpl.start_soliciting();
}

void Node::mac_frame_received(const Frame& frame) {
  // SF-specific sniffing sees everything (GT-TSCH learns channels from EBs
  // and l^rx from DIOs).
  stack_->sf->on_frame(frame);
  switch (frame.type) {
    case FrameType::kData:
      handle_data(frame);
      break;
    case FrameType::kDio:
      stack_->rpl.on_dio(frame);
      break;
    case FrameType::kDis:
      stack_->rpl.on_dis(frame);
      break;
    case FrameType::kSixp:
      stack_->sixp.on_frame(frame);
      break;
    case FrameType::kEb:
    case FrameType::kAck:
      break;
  }
}

void Node::mac_tx_result(const Frame& frame, bool acked, int attempts) {
  if (frame.dst == kBroadcastId) return;
  stack_->rpl.on_tx_result(frame.dst, acked, attempts);
  if (!acked && frame.type == FrameType::kData) {
    const DataPayload& data = frame.as<DataPayload>();
    if (telemetry_ != nullptr) telemetry_->on_drop(id_, Telemetry::DropKind::kMac);
    if (stats_ != nullptr && count_in_panels(data))
      stats_->on_mac_drop(id_, sim_.now());
  }
}

void Node::rpl_parent_changed(NodeId old_parent, NodeId new_parent) {
  if (telemetry_ != nullptr) {
    if (old_parent == kNoNode) {
      telemetry_->on_join(id_, new_parent);
    } else if (new_parent != kNoNode) {
      telemetry_->on_parent_switch(id_, old_parent, new_parent);
    } else {
      telemetry_->on_detach(id_, old_parent);
    }
  }
  if (old_parent != kNoNode) {
    if (new_parent != kNoNode) {
      stack_->mac.queues().retarget(old_parent, new_parent);
    } else {
      // Detached (local repair): the backlog has nowhere to go.
      const std::size_t dropped = stack_->mac.queues().drop_queue(old_parent);
      for (std::size_t i = 0; i < dropped; ++i) {
        if (telemetry_ != nullptr)
          telemetry_->on_drop(id_, Telemetry::DropKind::kNoRoute);
        if (stats_ != nullptr) stats_->on_no_route(id_, sim_.now());
      }
    }
  }
  stack_->sixp.abort_peer(old_parent);
  stack_->sf->on_parent_changed(old_parent, new_parent);
  if (stats_ != nullptr) stats_->set_joined(id_, new_parent != kNoNode, sim_.now());
}

void Node::rpl_rank_changed(std::uint16_t) {}

void Node::generate_packet() {
  GTTSCH_CHECK(!is_root_);
  ++app_generated_;
  stack_->sf->on_local_packet_generated();
  const NodeId parent = stack_->rpl.parent();
  if (stats_ != nullptr) stats_->on_generated(id_, sim_.now());
  if (parent == kNoNode || !stack_->mac.associated()) {
    if (telemetry_ != nullptr) telemetry_->on_drop(id_, Telemetry::DropKind::kNoRoute);
    if (stats_ != nullptr) stats_->on_no_route(id_, sim_.now());
    return;
  }
  DataPayload data;
  data.origin = id_;
  data.seq = app_seq_++;
  data.generated_at = sim_.now();
  data.hops = 0;
  if (!stack_->mac.enqueue(make_data_frame(id_, parent, data))) {
    if (telemetry_ != nullptr) telemetry_->on_drop(id_, Telemetry::DropKind::kQueue);
    if (stats_ != nullptr) stats_->on_queue_drop(id_, sim_.now());
  }
}

void Node::send_probe() {
  GTTSCH_CHECK(telemetry_ != nullptr);
  if (failed_ || is_root_) return;
  const TimeUs now = sim_.now();
  DataPayload data;
  data.origin = id_;
  data.seq = probe_seq_++;
  data.generated_at = now;
  data.hops = 0;
  data.is_probe = true;
  telemetry_->on_probe_sent(id_, data.seq);
  // Probes deliberately skip sf->on_local_packet_generated(): they are
  // measurement traffic and must not inflate the scheduler's demand
  // estimate.
  const bool panels = telemetry_->probes_in_panels();
  if (panels && stats_ != nullptr) stats_->on_generated(id_, now);
  const NodeId parent = stack_->rpl.parent();
  if (parent == kNoNode || !stack_->mac.associated()) {
    telemetry_->on_drop(id_, Telemetry::DropKind::kNoRoute);
    if (panels && stats_ != nullptr) stats_->on_no_route(id_, now);
    return;
  }
  if (!stack_->mac.enqueue(make_data_frame(id_, parent, data))) {
    telemetry_->on_drop(id_, Telemetry::DropKind::kQueue);
    if (panels && stats_ != nullptr) stats_->on_queue_drop(id_, now);
  }
}

void Node::handle_data(const Frame& frame) {
  const DataPayload& data = frame.as<DataPayload>();
  if (is_root_) {
    if (data.is_probe && telemetry_ != nullptr)
      telemetry_->on_probe_delivered(data.origin, data.seq, data.generated_at,
                                     data.hops, sim_.now());
    if (stats_ != nullptr && count_in_panels(data))
      stats_->on_delivered(id_, data, sim_.now());
    return;
  }
  // Forward upward.
  const NodeId parent = stack_->rpl.parent();
  if (parent == kNoNode) {
    if (telemetry_ != nullptr) telemetry_->on_drop(id_, Telemetry::DropKind::kNoRoute);
    if (stats_ != nullptr && count_in_panels(data)) stats_->on_no_route(id_, sim_.now());
    return;
  }
  DataPayload fwd = data;
  fwd.hops = static_cast<std::uint8_t>(data.hops + 1);
  if (!stack_->mac.enqueue(make_data_frame(id_, parent, fwd))) {
    if (telemetry_ != nullptr) telemetry_->on_drop(id_, Telemetry::DropKind::kQueue);
    if (stats_ != nullptr && count_in_panels(data)) stats_->on_queue_drop(id_, sim_.now());
    return;
  }
  if (stats_ != nullptr && count_in_panels(data)) stats_->on_forwarded(id_, sim_.now());
}

}  // namespace gttsch
