#include "scenario/node.hpp"

#include "sim/log.hpp"
#include "stats/telemetry.hpp"
#include "util/check.hpp"

namespace gttsch {

namespace {
/// Instantiate this node's MAC config, drawing its oscillator error.
MacConfig node_mac_config(const NodeStackConfig& config, Rng rng) {
  MacConfig mc = config.mac;
  if (config.max_drift_ppm > 0.0) {
    mc.drift_ppm =
        rng.fork(0xD81F).uniform_double(-config.max_drift_ppm, config.max_drift_ppm);
  }
  return mc;
}
}  // namespace

Node::Node(Simulator& sim, Medium& medium, const NodeSpec& spec,
           const NodeStackConfig& config, RunStats* stats, Rng rng)
    : sim_(sim),
      id_(spec.id),
      is_root_(spec.is_root),
      stats_(stats),
      rng_(rng),
      radio_(sim, medium, spec.id, spec.pos),
      mac_(sim, medium, radio_, node_mac_config(config, rng), rng.fork(0x3AC)),
      etx_(),
      rpl_(sim, mac_, etx_, config.rpl, rng.fork(0x491)),
      sixp_(sim, mac_),
      app_(sim, rng.fork(0xA99), spec.is_root ? 0.0 : config.app_rate_ppm,
           [this] { generate_packet(); }),
      app_start_(config.app_start),
      max_scan_start_delay_(config.max_scan_start_delay) {
  mac_.set_upcalls(this);
  rpl_.set_callbacks(this);
  sf_ = SfRegistry::instance().create(
      config.scheduler,
      SfContext{sim, mac_, rpl_, sixp_, etx_, rng.fork(0x67), config.sf});
  if (config.app_end != 0) app_.set_end_time(config.app_end);
}

Node::~Node() = default;

void Node::start() {
  // Provider wiring lives here, not in each SF: every scheduler answers
  // these through the common interface (advertised_free_rx defaults to 0
  // for autonomous SFs, so the DIO option stays inert for them).
  rpl_.set_free_rx_provider([this] { return sf_->advertised_free_rx(); });
  mac_.set_eb_provider([this] { return sf_->eb_info(); });
  sf_->start(is_root_);
  if (is_root_) {
    rpl_.start_as_root();
    mac_.start_as_root();
  } else {
    rpl_.start();
    const TimeUs delay = static_cast<TimeUs>(
        rng_.uniform(static_cast<std::uint64_t>(std::max<TimeUs>(1, max_scan_start_delay_))));
    sim_.after(delay, [this] { mac_.start_scanning(); });
  }
  app_.start(app_start_);
}

void Node::fail() {
  failed_ = true;
  app_.stop();
  mac_.shutdown();
}

void Node::set_telemetry(Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry_ != nullptr) {
    sixp_.set_transaction_observer(
        [this](NodeId peer, SixpCommand command, bool timed_out, bool ok) {
          telemetry_->on_sixp_done(id_, peer, command, timed_out, ok);
        });
  } else {
    sixp_.set_transaction_observer(nullptr);
  }
}

bool Node::count_in_panels(const DataPayload& data) const {
  return !data.is_probe || telemetry_ == nullptr || telemetry_->probes_in_panels();
}

void Node::mac_associated(Asn, const Frame&) {
  if (telemetry_ != nullptr) telemetry_->on_associated(id_);
  sf_->on_associated();
  rpl_.start_soliciting();
}

void Node::mac_frame_received(const Frame& frame) {
  // SF-specific sniffing sees everything (GT-TSCH learns channels from EBs
  // and l^rx from DIOs).
  sf_->on_frame(frame);
  switch (frame.type) {
    case FrameType::kData:
      handle_data(frame);
      break;
    case FrameType::kDio:
      rpl_.on_dio(frame);
      break;
    case FrameType::kDis:
      rpl_.on_dis(frame);
      break;
    case FrameType::kSixp:
      sixp_.on_frame(frame);
      break;
    case FrameType::kEb:
    case FrameType::kAck:
      break;
  }
}

void Node::mac_tx_result(const Frame& frame, bool acked, int attempts) {
  if (frame.dst == kBroadcastId) return;
  rpl_.on_tx_result(frame.dst, acked, attempts);
  if (!acked && frame.type == FrameType::kData) {
    const DataPayload& data = frame.as<DataPayload>();
    if (telemetry_ != nullptr) telemetry_->on_drop(id_, Telemetry::DropKind::kMac);
    if (stats_ != nullptr && count_in_panels(data))
      stats_->on_mac_drop(id_, sim_.now());
  }
}

void Node::rpl_parent_changed(NodeId old_parent, NodeId new_parent) {
  if (telemetry_ != nullptr) {
    if (old_parent == kNoNode) {
      telemetry_->on_join(id_, new_parent);
    } else if (new_parent != kNoNode) {
      telemetry_->on_parent_switch(id_, old_parent, new_parent);
    } else {
      telemetry_->on_detach(id_, old_parent);
    }
  }
  if (old_parent != kNoNode) {
    if (new_parent != kNoNode) {
      mac_.queues().retarget(old_parent, new_parent);
    } else {
      // Detached (local repair): the backlog has nowhere to go.
      const std::size_t dropped = mac_.queues().drop_queue(old_parent);
      for (std::size_t i = 0; i < dropped; ++i) {
        if (telemetry_ != nullptr)
          telemetry_->on_drop(id_, Telemetry::DropKind::kNoRoute);
        if (stats_ != nullptr) stats_->on_no_route(id_, sim_.now());
      }
    }
  }
  sixp_.abort_peer(old_parent);
  sf_->on_parent_changed(old_parent, new_parent);
  if (stats_ != nullptr) stats_->set_joined(id_, new_parent != kNoNode);
}

void Node::rpl_rank_changed(std::uint16_t) {}

void Node::generate_packet() {
  GTTSCH_CHECK(!is_root_);
  ++app_generated_;
  sf_->on_local_packet_generated();
  const NodeId parent = rpl_.parent();
  if (stats_ != nullptr) stats_->on_generated(id_, sim_.now());
  if (parent == kNoNode || !mac_.associated()) {
    if (telemetry_ != nullptr) telemetry_->on_drop(id_, Telemetry::DropKind::kNoRoute);
    if (stats_ != nullptr) stats_->on_no_route(id_, sim_.now());
    return;
  }
  DataPayload data;
  data.origin = id_;
  data.seq = app_seq_++;
  data.generated_at = sim_.now();
  data.hops = 0;
  if (!mac_.enqueue(make_data_frame(id_, parent, data))) {
    if (telemetry_ != nullptr) telemetry_->on_drop(id_, Telemetry::DropKind::kQueue);
    if (stats_ != nullptr) stats_->on_queue_drop(id_, sim_.now());
  }
}

void Node::send_probe() {
  GTTSCH_CHECK(telemetry_ != nullptr);
  if (failed_ || is_root_) return;
  const TimeUs now = sim_.now();
  DataPayload data;
  data.origin = id_;
  data.seq = probe_seq_++;
  data.generated_at = now;
  data.hops = 0;
  data.is_probe = true;
  telemetry_->on_probe_sent(id_, data.seq);
  // Probes deliberately skip sf_->on_local_packet_generated(): they are
  // measurement traffic and must not inflate the scheduler's demand
  // estimate.
  const bool panels = telemetry_->probes_in_panels();
  if (panels && stats_ != nullptr) stats_->on_generated(id_, now);
  const NodeId parent = rpl_.parent();
  if (parent == kNoNode || !mac_.associated()) {
    telemetry_->on_drop(id_, Telemetry::DropKind::kNoRoute);
    if (panels && stats_ != nullptr) stats_->on_no_route(id_, now);
    return;
  }
  if (!mac_.enqueue(make_data_frame(id_, parent, data))) {
    telemetry_->on_drop(id_, Telemetry::DropKind::kQueue);
    if (panels && stats_ != nullptr) stats_->on_queue_drop(id_, now);
  }
}

void Node::handle_data(const Frame& frame) {
  const DataPayload& data = frame.as<DataPayload>();
  if (is_root_) {
    if (data.is_probe && telemetry_ != nullptr)
      telemetry_->on_probe_delivered(data.origin, data.seq, data.generated_at,
                                     data.hops, sim_.now());
    if (stats_ != nullptr && count_in_panels(data))
      stats_->on_delivered(id_, data, sim_.now());
    return;
  }
  // Forward upward.
  const NodeId parent = rpl_.parent();
  if (parent == kNoNode) {
    if (telemetry_ != nullptr) telemetry_->on_drop(id_, Telemetry::DropKind::kNoRoute);
    if (stats_ != nullptr && count_in_panels(data)) stats_->on_no_route(id_, sim_.now());
    return;
  }
  DataPayload fwd = data;
  fwd.hops = static_cast<std::uint8_t>(data.hops + 1);
  if (!mac_.enqueue(make_data_frame(id_, parent, fwd))) {
    if (telemetry_ != nullptr) telemetry_->on_drop(id_, Telemetry::DropKind::kQueue);
    if (stats_ != nullptr && count_in_panels(data)) stats_->on_queue_drop(id_, sim_.now());
    return;
  }
  if (stats_ != nullptr && count_in_panels(data)) stats_->on_forwarded(id_, sim_.now());
}

}  // namespace gttsch
