#include "scenario/network.hpp"

#include "stats/telemetry.hpp"
#include "util/check.hpp"

namespace gttsch {

Network::Network(std::uint64_t seed, std::unique_ptr<LinkModel> link_model,
                 const TopologySpec& topology, const NodeStackConfig& node_config,
                 RunStats* stats)
    : Network(
          seed,
          [shared = std::make_shared<std::unique_ptr<LinkModel>>(std::move(link_model))](
              Simulator&) { return std::move(*shared); },
          topology, node_config, stats) {}

Network::Network(std::uint64_t seed, const LinkModelFactory& factory,
                 const TopologySpec& topology, const NodeStackConfig& node_config,
                 RunStats* stats)
    : sim_(seed),
      medium_(sim_, factory(sim_), Rng(seed).fork(0x3ED1)),
      // One block spanning the whole topology: node stacks land
      // contiguously in construction (= id) order.
      stack_arena_(Node::stack_slot_size(), Node::stack_slot_align(),
                   topology.nodes.empty() ? 1 : topology.nodes.size()),
      stats_(stats) {
  Rng root_rng(seed);
  for (const NodeSpec& spec : topology.nodes) {
    auto node = std::make_unique<Node>(sim_, medium_, spec, node_config, stats,
                                       root_rng.fork(spec.id), &stack_arena_);
    if (stats_ != nullptr) stats_->register_node(spec.id, spec.is_root, &node->radio());
    nodes_.emplace(spec.id, std::move(node));
  }
}

Network::~Network() {
  if (telemetry_ != nullptr) telemetry_->detach();
}

void Network::start() {
  for (auto& [id, node] : nodes_)
    if (node->is_root()) node->start();
  for (auto& [id, node] : nodes_)
    if (!node->is_root()) node->start();
}

void Network::set_telemetry(Telemetry* telemetry) {
  telemetry_ = telemetry;
  for (auto& [id, node] : nodes_) node->set_telemetry(telemetry);
}

Node& Network::node(NodeId id) {
  const auto it = nodes_.find(id);
  GTTSCH_CHECK(it != nodes_.end());
  return *it->second;
}

std::size_t Network::joined_count() const {
  std::size_t n = 0;
  for (const auto& [id, node] : nodes_)
    if (!node->is_root() && node->rpl().joined()) ++n;
  return n;
}

bool Network::fully_formed() const {
  for (const auto& [id, node] : nodes_) {
    if (node->is_root()) continue;
    if (!node->rpl().joined() || !node->mac().associated()) return false;
  }
  return true;
}

}  // namespace gttsch
