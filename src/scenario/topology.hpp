// Topology builders for the paper's experiments: tree-shaped DODAGs placed
// so that parent-child links are reliable while sibling / uncle / two-hop
// transmissions interfere — the four problem cases of Section III.
#pragma once

#include <cstdint>
#include <vector>

#include "phy/geometry.hpp"
#include "util/types.hpp"

namespace gttsch {

struct NodeSpec {
  NodeId id = 0;
  Position pos;
  bool is_root = false;
};

struct TopologySpec {
  std::vector<NodeSpec> nodes;

  std::size_t size() const { return nodes.size(); }
  std::size_t root_count() const;
  std::vector<NodeId> roots() const;
};

/// One DODAG of `n_nodes` total (including the root at `center`), shaped
/// like the paper's Fig 6: a ring of first-hop routers at `hop_distance`,
/// and leaf nodes one further hop outward, attached round-robin.
/// First-hop count is ceil((n-1)/3) (paper sizes 6..9 give 2..3 routers).
TopologySpec build_dodag(NodeId first_id, Position center, int n_nodes,
                         double hop_distance);

/// The paper's main setup: `dodag_count` independent DODAGs of
/// `nodes_per_dodag` nodes each, spaced far apart (no mutual interference),
/// e.g. two 7-node DODAGs = the 14-node network of Fig 8.
TopologySpec build_multi_dodag(int dodag_count, int nodes_per_dodag, double hop_distance);

/// A simple line (chain) topology: root plus `hops` relays in a row.
TopologySpec build_line(NodeId first_id, Position start, int hops, double hop_distance);

/// Regular grid with the root in a corner; for the monitoring example.
TopologySpec build_grid(NodeId first_id, Position origin, int cols, int rows,
                        double spacing);

/// Random multihop mesh with *guaranteed* connectivity: the root sits at
/// `center`, and the remaining `n_nodes - 1` nodes are drawn uniformly
/// from the disk of `radius` around it, redrawing any candidate farther
/// than `connect_range` from every already-placed node — so the unit-disk
/// graph at radio range >= connect_range is connected by construction.
/// After many rejections a candidate is snapped next to a random placed
/// node instead, which keeps the builder total even for sparse disks.
/// Deterministic in `seed` (placement is independent of the run seed, so
/// seed-averaged campaigns run on one fixed topology per point).
TopologySpec build_random_disk(NodeId first_id, Position center, int n_nodes,
                               double radius, double connect_range,
                               std::uint64_t seed);

}  // namespace gttsch
