#include "scenario/topology.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace gttsch {

std::size_t TopologySpec::root_count() const {
  std::size_t n = 0;
  for (const auto& node : nodes)
    if (node.is_root) ++n;
  return n;
}

std::vector<NodeId> TopologySpec::roots() const {
  std::vector<NodeId> out;
  for (const auto& node : nodes)
    if (node.is_root) out.push_back(node.id);
  return out;
}

TopologySpec build_dodag(NodeId first_id, Position center, int n_nodes,
                         double hop_distance) {
  GTTSCH_CHECK(n_nodes >= 2);
  TopologySpec spec;
  NodeId next = first_id;
  spec.nodes.push_back(NodeSpec{next++, center, true});

  const int routers = std::max(1, (n_nodes - 1 + 2) / 3);  // ceil((n-1)/3)
  const int ring1 = std::min(routers, n_nodes - 1);
  const int leaves = n_nodes - 1 - ring1;

  // First-hop routers on a circle around the root. The angular spread
  // keeps siblings within interference range of each other.
  const double two_pi = 6.283185307179586;
  std::vector<Position> router_pos;
  for (int i = 0; i < ring1; ++i) {
    const double angle = two_pi * static_cast<double>(i) / std::max(ring1, 2) + 0.35;
    Position p{center.x + hop_distance * std::cos(angle),
               center.y + hop_distance * std::sin(angle)};
    router_pos.push_back(p);
    spec.nodes.push_back(NodeSpec{next++, p, false});
  }

  // Leaves one hop outward from their router, fanned slightly so two
  // leaves of one router do not coincide.
  std::vector<int> leaf_count(static_cast<std::size_t>(ring1), 0);
  for (int i = 0; i < leaves; ++i) {
    const int r = i % ring1;
    const Position& rp = router_pos[static_cast<std::size_t>(r)];
    const double out_x = rp.x - center.x;
    const double out_y = rp.y - center.y;
    const double norm = std::sqrt(out_x * out_x + out_y * out_y);
    const double fan = 0.55 * static_cast<double>(leaf_count[static_cast<std::size_t>(r)]++) -
                       0.27;
    // Rotate the outward direction by `fan` radians.
    const double ux = (out_x * std::cos(fan) - out_y * std::sin(fan)) / norm;
    const double uy = (out_x * std::sin(fan) + out_y * std::cos(fan)) / norm;
    Position p{rp.x + hop_distance * ux, rp.y + hop_distance * uy};
    spec.nodes.push_back(NodeSpec{next++, p, false});
  }
  return spec;
}

TopologySpec build_multi_dodag(int dodag_count, int nodes_per_dodag, double hop_distance) {
  GTTSCH_CHECK(dodag_count >= 1);
  TopologySpec spec;
  const double separation = hop_distance * 1000.0;  // radio silence between DODAGs
  NodeId next = 1;
  for (int d = 0; d < dodag_count; ++d) {
    const Position center{separation * d, 0.0};
    TopologySpec one = build_dodag(next, center, nodes_per_dodag, hop_distance);
    next = static_cast<NodeId>(next + one.nodes.size());
    spec.nodes.insert(spec.nodes.end(), one.nodes.begin(), one.nodes.end());
  }
  return spec;
}

TopologySpec build_line(NodeId first_id, Position start, int hops, double hop_distance) {
  GTTSCH_CHECK(hops >= 1);
  TopologySpec spec;
  for (int i = 0; i <= hops; ++i) {
    spec.nodes.push_back(
        NodeSpec{static_cast<NodeId>(first_id + i),
                 Position{start.x + hop_distance * i, start.y}, i == 0});
  }
  return spec;
}

TopologySpec build_random_disk(NodeId first_id, Position center, int n_nodes,
                               double radius, double connect_range,
                               std::uint64_t seed) {
  GTTSCH_CHECK(n_nodes >= 1);
  GTTSCH_CHECK(radius > 0.0 && connect_range > 0.0);
  const double two_pi = 6.283185307179586;
  TopologySpec spec;
  NodeId next = first_id;
  spec.nodes.push_back(NodeSpec{next++, center, true});
  Rng rng(seed);
  // Candidates beyond connect_range of every placed node are redrawn; a
  // node that keeps missing (sparse disk, unlucky stream) is snapped one
  // connect_range away from a random placed node so the builder is total.
  constexpr int kMaxDraws = 256;
  for (int i = 1; i < n_nodes; ++i) {
    Position pos{};
    bool connected = false;
    for (int attempt = 0; attempt < kMaxDraws && !connected; ++attempt) {
      const double r = radius * std::sqrt(rng.uniform_double());
      const double theta = two_pi * rng.uniform_double();
      pos = Position{center.x + r * std::cos(theta), center.y + r * std::sin(theta)};
      for (const NodeSpec& placed : spec.nodes) {
        if (distance(placed.pos, pos) <= connect_range) {
          connected = true;
          break;
        }
      }
    }
    if (!connected) {
      const auto anchor = static_cast<std::size_t>(rng.uniform(spec.nodes.size()));
      const double theta = two_pi * rng.uniform_double();
      const Position& ap = spec.nodes[anchor].pos;
      pos = Position{ap.x + 0.9 * connect_range * std::cos(theta),
                     ap.y + 0.9 * connect_range * std::sin(theta)};
    }
    spec.nodes.push_back(NodeSpec{next++, pos, false});
  }
  return spec;
}

TopologySpec build_grid(NodeId first_id, Position origin, int cols, int rows,
                        double spacing) {
  GTTSCH_CHECK(cols >= 1 && rows >= 1);
  TopologySpec spec;
  NodeId next = first_id;
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      spec.nodes.push_back(NodeSpec{
          next++, Position{origin.x + spacing * c, origin.y + spacing * r},
          r == 0 && c == 0});
  return spec;
}

}  // namespace gttsch
