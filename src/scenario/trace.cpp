#include "scenario/trace.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "phy/dynamic_link.hpp"
#include "scenario/network.hpp"
#include "stats/telemetry.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace gttsch {
namespace {

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

std::string at_line(int line, const std::string& message) {
  if (line <= 0) return message;
  return "line " + std::to_string(line) + ": " + message;
}

/// strtod with a restricted charset: plain decimal/scientific notation
/// only, full consumption, finite result. Rejects the hex, inf and nan
/// spellings strtod would otherwise accept.
bool parse_finite_double(const std::string& text, double* out) {
  if (text.empty() ||
      text.find_first_not_of("0123456789.+-eE") != std::string::npos) {
    return false;
  }
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || errno == ERANGE || !std::isfinite(v)) {
    return false;
  }
  *out = v;
  return true;
}

bool parse_node_id(const std::string& text, NodeId* out) {
  if (text.empty() || text.size() > 5 ||
      text.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  const unsigned long v = std::strtoul(text.c_str(), nullptr, 10);
  if (v > kMaxTraceNodeId) return false;
  *out = static_cast<NodeId>(v);
  return true;
}

std::vector<std::string> split_whitespace(const std::string& line) {
  // '\r' counts as whitespace so CRLF trace files parse identically to LF.
  const auto is_space = [](char c) { return c == ' ' || c == '\t' || c == '\r'; };
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && is_space(line[i])) ++i;
    const std::size_t start = i;
    while (i < line.size() && !is_space(line[i])) ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

/// Microsecond-exact time formatting ("35.000000"); the parsing direction
/// (strtod + llround(v * 1e6)) reproduces the exact TimeUs for any value
/// within kMaxTraceSeconds, so format/parse round trips are lossless.
std::string format_time(TimeUs at) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%lld.%06lld",
                static_cast<long long>(at / 1000000),
                static_cast<long long>(at % 1000000));
  return buf;
}

std::string format_coord(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Canonical unordered key for a link's pause/resume bookkeeping.
std::pair<NodeId, NodeId> link_key(NodeId a, NodeId b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

struct Bounds {
  double min_x = 0, max_x = 0, min_y = 0, max_y = 0;
};

/// Deployment bounding box plus a margin, so movers may roam a little
/// beyond the initial placements without escaping to infinity.
Bounds walk_bounds(const TopologySpec& topology) {
  Bounds b;
  bool first = true;
  for (const NodeSpec& n : topology.nodes) {
    if (first) {
      b.min_x = b.max_x = n.pos.x;
      b.min_y = b.max_y = n.pos.y;
      first = false;
      continue;
    }
    b.min_x = std::min(b.min_x, n.pos.x);
    b.max_x = std::max(b.max_x, n.pos.x);
    b.min_y = std::min(b.min_y, n.pos.y);
    b.max_y = std::max(b.max_y, n.pos.y);
  }
  const double margin =
      std::max(10.0, 0.15 * std::max(b.max_x - b.min_x, b.max_y - b.min_y));
  b.min_x -= margin;
  b.max_x += margin;
  b.min_y -= margin;
  b.max_y += margin;
  return b;
}

double clamp(double v, double lo, double hi) { return std::min(std::max(v, lo), hi); }

/// Uniform direction via rejection sampling in the unit disk: avoids libm
/// trig (whose rounding varies across libms) so generated streams are
/// bit-portable. Returns a vector of length `step`.
void random_step(Rng& rng, double step, double* dx, double* dy) {
  double x = 0, y = 0, n2 = 0;
  do {
    x = rng.uniform_double(-1.0, 1.0);
    y = rng.uniform_double(-1.0, 1.0);
    n2 = x * x + y * y;
  } while (n2 > 1.0 || n2 < 1e-12);
  const double scale = step / std::sqrt(n2);
  *dx = x * scale;
  *dy = y * scale;
}

bool is_link_event(TraceEventKind kind) {
  return kind == TraceEventKind::kPrr || kind == TraceEventKind::kPause ||
         kind == TraceEventKind::kResume;
}

}  // namespace

bool Trace::has_failures() const {
  for (const TraceEvent& e : events) {
    if (e.kind == TraceEventKind::kFail) return true;
  }
  return false;
}

bool Trace::needs_dynamic_model() const {
  for (const TraceEvent& e : events) {
    if (e.kind != TraceEventKind::kMove) return true;
  }
  return false;
}

const char* trace_kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kNone:
      return "none";
    case TraceKind::kFile:
      return "file";
    case TraceKind::kRandomWalk:
      return "random-walk";
    case TraceKind::kRandomWaypoint:
      return "random-waypoint";
    case TraceKind::kCrashloop:
      return "crashloop";
  }
  return "?";
}

bool parse_trace_kind(const std::string& text, TraceKind* out) {
  for (const TraceKind kind :
       {TraceKind::kNone, TraceKind::kFile, TraceKind::kRandomWalk,
        TraceKind::kRandomWaypoint, TraceKind::kCrashloop}) {
    if (text == trace_kind_name(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

bool parse_trace(const std::string& text, Trace* out, std::string* error) {
  out->events.clear();
  std::istringstream stream(text);
  std::string line;
  int line_no = 0;
  TimeUs last_at = 0;
  // Liveness per node (present = currently dead) and blackout state per
  // unordered link, so the grammar can reject events on dead nodes,
  // revivals of the living, and unbalanced pause/resume pairs.
  struct FailureSite {
    int line = 0;
    TimeUs at = 0;
  };
  std::map<NodeId, FailureSite> dead;
  std::map<std::pair<NodeId, NodeId>, int> paused_on_line;
  while (std::getline(stream, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::vector<std::string> tokens = split_whitespace(line);
    if (tokens.empty()) continue;
    const auto err = [&](const std::string& message) {
      return fail(error, at_line(line_no, message));
    };
    if (tokens.size() < 2) {
      return err(
          "expected '<t> move|fail|revive|prr|pause|resume ...' (see the trace "
          "grammar)");
    }
    double t_s = 0;
    if (!parse_finite_double(tokens[0], &t_s) || t_s < 0 || t_s > kMaxTraceSeconds) {
      return err("bad timestamp '" + tokens[0] +
                 "' (expected seconds in [0, 1e9])");
    }
    TraceEvent event;
    event.at = static_cast<TimeUs>(std::llround(t_s * 1e6));
    event.line = line_no;
    if (!out->events.empty() && event.at < last_at) {
      return err("timestamp " + tokens[0] + " goes backwards (previous event at " +
                 format_time(last_at) + " s)");
    }
    const std::string& keyword = tokens[1];
    if (keyword == "move") {
      if (tokens.size() != 5) {
        return err("move takes exactly '<t> move <node> <x> <y>'");
      }
      event.kind = TraceEventKind::kMove;
      if (!parse_node_id(tokens[2], &event.node)) {
        return err("bad node id '" + tokens[2] + "'");
      }
      double coords[2] = {0, 0};
      for (int c = 0; c < 2; ++c) {
        if (!parse_finite_double(tokens[static_cast<std::size_t>(3 + c)], &coords[c]) ||
            std::abs(coords[c]) > kMaxTraceCoordinate) {
          return err("coordinate '" + tokens[static_cast<std::size_t>(3 + c)] +
                     "' is not a number in [-1e6, 1e6]");
        }
      }
      event.pos = Position{coords[0], coords[1]};
    } else if (keyword == "fail" || keyword == "revive") {
      if (tokens.size() != 3) {
        return err(keyword + " takes exactly '<t> " + keyword + " <node>'");
      }
      event.kind =
          keyword == "fail" ? TraceEventKind::kFail : TraceEventKind::kRevive;
      if (!parse_node_id(tokens[2], &event.node)) {
        return err("bad node id '" + tokens[2] + "'");
      }
    } else if (keyword == "prr" || keyword == "pause" || keyword == "resume") {
      const std::size_t arity = keyword == "prr" ? 5 : 4;
      if (tokens.size() != arity) {
        return err(keyword + " takes exactly '<t> " + keyword + " <a> <b>" +
                   (keyword == "prr" ? " <value>'" : "'"));
      }
      event.kind = keyword == "prr"     ? TraceEventKind::kPrr
                   : keyword == "pause" ? TraceEventKind::kPause
                                        : TraceEventKind::kResume;
      if (!parse_node_id(tokens[2], &event.node)) {
        return err("bad node id '" + tokens[2] + "'");
      }
      if (!parse_node_id(tokens[3], &event.peer)) {
        return err("bad node id '" + tokens[3] + "'");
      }
      if (event.node == event.peer) {
        return err("link endpoints must differ (got " + tokens[2] + " " +
                   tokens[3] + ")");
      }
      if (keyword == "prr") {
        if (!parse_finite_double(tokens[4], &event.value) || event.value < 0.0 ||
            event.value > 1.0) {
          return err("prr value '" + tokens[4] + "' is not a number in [0, 1]");
        }
      }
    } else {
      return err("unknown event '" + keyword +
                 "' (expected move, fail, revive, prr, pause or resume)");
    }

    // Lifecycle checks: no events touch a dead node (revive excepted),
    // revive requires a strictly earlier fail, pause/resume must balance.
    const auto reject_dead = [&](NodeId id) {
      const auto it = dead.find(id);
      if (it == dead.end()) return true;
      return err("node " + std::to_string(id) + " already failed on line " +
                 std::to_string(it->second.line));
    };
    switch (event.kind) {
      case TraceEventKind::kFail:
        if (!reject_dead(event.node)) return false;
        dead[event.node] = FailureSite{line_no, event.at};
        break;
      case TraceEventKind::kRevive: {
        const auto it = dead.find(event.node);
        if (it == dead.end()) {
          return err("revive of node " + std::to_string(event.node) +
                     " without a prior fail");
        }
        if (event.at <= it->second.at) {
          return err("revive must come strictly after the failure on line " +
                     std::to_string(it->second.line));
        }
        dead.erase(it);
        break;
      }
      default:
        if (!reject_dead(event.node)) return false;
        if (is_link_event(event.kind) && !reject_dead(event.peer)) return false;
        break;
    }
    if (event.kind == TraceEventKind::kPause) {
      const auto key = link_key(event.node, event.peer);
      const auto it = paused_on_line.find(key);
      if (it != paused_on_line.end()) {
        return err("link " + std::to_string(event.node) + "<->" +
                   std::to_string(event.peer) + " already paused on line " +
                   std::to_string(it->second));
      }
      paused_on_line[key] = line_no;
    } else if (event.kind == TraceEventKind::kResume) {
      const auto key = link_key(event.node, event.peer);
      if (paused_on_line.erase(key) == 0) {
        return err("resume of link " + std::to_string(event.node) + "<->" +
                   std::to_string(event.peer) + " without a matching pause");
      }
    }
    last_at = event.at;
    out->events.push_back(event);
  }
  return true;
}

bool load_trace(const std::string& path, Trace* out, std::string* error) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return fail(error, "cannot read trace file '" + path + "'");
  std::ostringstream content;
  content << file.rdbuf();
  if (file.bad()) return fail(error, "cannot read trace file '" + path + "'");
  if (!parse_trace(content.str(), out, error)) {
    return fail(error, path + ": " + (error != nullptr ? *error : ""));
  }
  return true;
}

std::string format_trace(const Trace& trace) {
  std::string out;
  for (const TraceEvent& e : trace.events) {
    out += format_time(e.at);
    switch (e.kind) {
      case TraceEventKind::kMove:
        out += " move " + std::to_string(e.node) + ' ' + format_coord(e.pos.x) +
               ' ' + format_coord(e.pos.y);
        break;
      case TraceEventKind::kFail:
        out += " fail " + std::to_string(e.node);
        break;
      case TraceEventKind::kRevive:
        out += " revive " + std::to_string(e.node);
        break;
      case TraceEventKind::kPrr:
        out += " prr " + std::to_string(e.node) + ' ' + std::to_string(e.peer) +
               ' ' + format_coord(e.value);
        break;
      case TraceEventKind::kPause:
        out += " pause " + std::to_string(e.node) + ' ' + std::to_string(e.peer);
        break;
      case TraceEventKind::kResume:
        out += " resume " + std::to_string(e.node) + ' ' + std::to_string(e.peer);
        break;
    }
    out += '\n';
  }
  return out;
}

bool save_trace(const std::string& path, const Trace& trace, std::string* error) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return fail(error, "cannot write trace file '" + path + "'");
  file << format_trace(trace);
  file.flush();
  if (!file) return fail(error, "cannot write trace file '" + path + "'");
  return true;
}

bool validate_trace_nodes(const Trace& trace, const TopologySpec& topology,
                          std::string* error) {
  std::set<NodeId> known;
  for (const NodeSpec& n : topology.nodes) known.insert(n.id);
  const auto check = [&](const TraceEvent& e, NodeId id) {
    if (known.count(id) != 0) return true;
    return fail(error, at_line(e.line, "unknown node id " + std::to_string(id) +
                                           " (topology has " +
                                           std::to_string(topology.nodes.size()) +
                                           " nodes)"));
  };
  for (const TraceEvent& e : trace.events) {
    if (!check(e, e.node)) return false;
    if (is_link_event(e.kind) && !check(e, e.peer)) return false;
  }
  return true;
}

Trace generate_trace(TraceKind kind, const TopologySpec& topology,
                     const TraceGenParams& params) {
  GTTSCH_CHECK(kind == TraceKind::kRandomWalk || kind == TraceKind::kRandomWaypoint ||
               kind == TraceKind::kCrashloop);
  GTTSCH_CHECK(params.interval_s > 0 && std::isfinite(params.interval_s));
  GTTSCH_CHECK(params.speed_mps >= 0 && std::isfinite(params.speed_mps));
  GTTSCH_CHECK(params.movers >= 0 && params.fail_count >= 0);
  GTTSCH_CHECK(params.fail_count == 0 ||
               (params.fail_at_s >= 0 && std::isfinite(params.fail_at_s)));

  Trace out;
  // Non-root candidates in ascending id order, so the selection below is a
  // pure function of (topology, seed).
  std::vector<NodeSpec> candidates;
  for (const NodeSpec& n : topology.nodes) {
    if (!n.is_root) candidates.push_back(n);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const NodeSpec& a, const NodeSpec& b) { return a.id < b.id; });
  if (candidates.empty()) return out;

  Rng rng(params.seed);
  std::vector<std::size_t> order(candidates.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);

  const std::size_t n_movers =
      std::min<std::size_t>(static_cast<std::size_t>(params.movers), order.size());
  const std::size_t n_fails =
      std::min<std::size_t>(static_cast<std::size_t>(params.fail_count), order.size());
  const TimeUs interval_us =
      std::max<TimeUs>(1, static_cast<TimeUs>(std::llround(params.interval_s * 1e6)));

  if (kind == TraceKind::kCrashloop) {
    // Staggered fail -> revive cycles; no mobility. Each crasher first
    // fails one tick after the previous one, stays down for down_s, and
    // re-crashes every cycle_s until the window closes. A revive that
    // would land at/after `end` is dropped: the node stays dead.
    GTTSCH_CHECK(params.down_s > 0 && std::isfinite(params.down_s));
    GTTSCH_CHECK(params.cycle_s > params.down_s && std::isfinite(params.cycle_s));
    const TimeUs down_us =
        std::max<TimeUs>(1, static_cast<TimeUs>(std::llround(params.down_s * 1e6)));
    const TimeUs cycle_us = std::max<TimeUs>(
        down_us + 1, static_cast<TimeUs>(std::llround(params.cycle_s * 1e6)));
    for (std::size_t i = 0; i < n_fails; ++i) {
      const NodeId id = candidates[order[order.size() - 1 - i]].id;
      TimeUs t_fail = static_cast<TimeUs>(std::llround(params.fail_at_s * 1e6)) +
                      static_cast<TimeUs>(i) * interval_us;
      while (t_fail < params.end) {
        out.events.push_back(TraceEvent{t_fail, TraceEventKind::kFail, id, 0,
                                        Position{}, 0.0, 0});
        const TimeUs t_revive = t_fail + down_us;
        if (t_revive >= params.end) break;
        out.events.push_back(TraceEvent{t_revive, TraceEventKind::kRevive, id, 0,
                                        Position{}, 0.0, 0});
        t_fail += cycle_us;
      }
    }
    std::stable_sort(
        out.events.begin(), out.events.end(),
        [](const TraceEvent& a, const TraceEvent& b) { return a.at < b.at; });
    return out;
  }

  // Failing nodes come from the *end* of the shuffled order, so they only
  // overlap the movers (drawn from the front) when fail_count + movers
  // exceeds the population. The i-th failure is staggered one tick apart.
  std::map<NodeId, TimeUs> fail_time;
  for (std::size_t i = 0; i < n_fails; ++i) {
    const NodeId id = candidates[order[order.size() - 1 - i]].id;
    const TimeUs at = static_cast<TimeUs>(std::llround(params.fail_at_s * 1e6)) +
                      static_cast<TimeUs>(i) * interval_us;
    fail_time[id] = at;
  }

  struct MoverState {
    NodeId id;
    Position pos;
    Position target;
    bool has_target = false;
    Rng rng;
  };
  std::vector<MoverState> movers;
  for (std::size_t i = 0; i < n_movers; ++i) {
    const NodeSpec& spec = candidates[order[i]];
    movers.push_back(MoverState{spec.id, spec.pos, Position{}, false, rng.fork(spec.id)});
  }

  const Bounds bounds = walk_bounds(topology);
  const double step = params.speed_mps * params.interval_s;
  for (TimeUs t = params.start + interval_us; t < params.end; t += interval_us) {
    for (MoverState& m : movers) {
      const auto dies = fail_time.find(m.id);
      if (dies != fail_time.end() && t >= dies->second) continue;  // dead men don't walk
      if (kind == TraceKind::kRandomWalk) {
        double dx = 0, dy = 0;
        random_step(m.rng, step, &dx, &dy);
        m.pos.x = clamp(m.pos.x + dx, bounds.min_x, bounds.max_x);
        m.pos.y = clamp(m.pos.y + dy, bounds.min_y, bounds.max_y);
      } else {
        if (!m.has_target) {
          m.target = Position{m.rng.uniform_double(bounds.min_x, bounds.max_x),
                              m.rng.uniform_double(bounds.min_y, bounds.max_y)};
          m.has_target = true;
        }
        const double dx = m.target.x - m.pos.x;
        const double dy = m.target.y - m.pos.y;
        const double dist = std::sqrt(dx * dx + dy * dy);
        if (dist <= step) {
          m.pos = m.target;
          m.has_target = false;  // next tick heads for a fresh waypoint
        } else {
          m.pos.x += dx * (step / dist);
          m.pos.y += dy * (step / dist);
        }
      }
      out.events.push_back(
          TraceEvent{t, TraceEventKind::kMove, m.id, 0, m.pos, 0.0, 0});
    }
  }

  for (const auto& [id, at] : fail_time) {
    if (at < params.end) {
      out.events.push_back(
          TraceEvent{at, TraceEventKind::kFail, id, 0, Position{}, 0.0, 0});
    }
  }
  // Moves were emitted tick-major (already time-sorted); a stable sort
  // threads the failures in while preserving the per-tick mover order.
  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.at < b.at; });
  return out;
}

TracePlayer::TracePlayer(Network& net, Trace trace, DynamicLinkModel* failures)
    : net_(net), trace_(std::move(trace)), failures_(failures) {}

void TracePlayer::start() {
  GTTSCH_CHECK(!started_);
  started_ = true;
  for (const TraceEvent& e : trace_.events) {
    if (net_.nodes().find(e.node) == net_.nodes().end() ||
        (is_link_event(e.kind) &&
         net_.nodes().find(e.peer) == net_.nodes().end())) {
      std::fprintf(stderr, "TracePlayer: %s\n",
                   at_line(e.line, "unknown node id " + std::to_string(e.node)).c_str());
      GTTSCH_CHECK(false && "trace addresses a node the network does not have");
    }
    if (failures_ == nullptr) continue;
    switch (e.kind) {
      case TraceEventKind::kFail:
        failures_->kill_node(e.at, e.node);
        break;
      case TraceEventKind::kRevive:
        failures_->revive_node(e.at, e.node);
        break;
      case TraceEventKind::kPrr:
        failures_->override_prr(e.at, e.node, e.peer, e.value, /*symmetric=*/false);
        break;
      case TraceEventKind::kPause:
        failures_->override_prr(e.at, e.node, e.peer, 0.0, /*symmetric=*/true);
        break;
      case TraceEventKind::kResume:
        failures_->clear_override(e.at, e.node, e.peer);
        break;
      case TraceEventKind::kMove:
        break;
    }
  }
  // All events are scheduled up front (not chained): their queue insertion
  // order is then fixed by the trace alone, so same-instant ties against
  // other default-key events resolve identically whatever the stepping
  // mode — the fast-path bit-equivalence tests lean on this.
  for (const TraceEvent& e : trace_.events) {
    net_.sim().at(e.at, [this, &e] { apply(e); });
  }
}

void TracePlayer::apply(const TraceEvent& event) {
  Node& node = net_.node(event.node);
  Telemetry* telemetry = net_.telemetry();
  switch (event.kind) {
    case TraceEventKind::kMove:
      node.move_to(event.pos);
      if (telemetry != nullptr)
        telemetry->on_trace_move(event.node, event.pos.x, event.pos.y);
      break;
    case TraceEventKind::kFail:
      node.fail();
      if (telemetry != nullptr) telemetry->on_trace_fail(event.node);
      break;
    case TraceEventKind::kRevive:
      node.reboot();
      if (telemetry != nullptr) telemetry->on_trace_revive(event.node);
      break;
    case TraceEventKind::kPrr:
      if (telemetry != nullptr)
        telemetry->on_trace_prr(event.node, event.peer, event.value);
      break;
    case TraceEventKind::kPause:
      if (telemetry != nullptr) telemetry->on_trace_pause(event.node, event.peer);
      break;
    case TraceEventKind::kResume:
      if (telemetry != nullptr) telemetry->on_trace_resume(event.node, event.peer);
      break;
  }
  ++applied_;
}

}  // namespace gttsch
