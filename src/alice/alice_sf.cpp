#include "alice/alice_sf.hpp"

#include "sixp/sf_registry.hpp"
#include "util/check.hpp"

namespace gttsch {

namespace {
constexpr std::uint16_t kEbHandle = 0;
constexpr std::uint16_t kCommonHandle = 1;
constexpr std::uint16_t kUnicastHandle = 2;

/// Orchestra-style node hash for the EB slotframe (same constant as
/// OrchestraSf::hash; the EB plane is identical in both schedulers).
std::uint16_t node_hash(NodeId id, std::uint16_t modulus) {
  GTTSCH_CHECK(modulus > 0);
  return static_cast<std::uint16_t>((static_cast<std::uint32_t>(id) * 2654435761u) %
                                    modulus);
}
}  // namespace

AliceSf::AliceSf(Simulator& sim, TschMac& mac, RplAgent& rpl, AliceConfig config)
    : sim_(sim), mac_(mac), rpl_(rpl), config_(config), rehash_(sim) {
  GTTSCH_CHECK(config_.num_channel_offsets > 2);  // offsets 0/1 are EB/common
}

std::uint64_t AliceSf::link_hash(NodeId src, NodeId dst, std::uint64_t asfn) {
  // splitmix64 finalizer over the packed (src, dst, asfn) triple: both
  // endpoints compute the same value, and consecutive ASFNs decorrelate.
  std::uint64_t z = (static_cast<std::uint64_t>(src) << 48) ^
                    (static_cast<std::uint64_t>(dst) << 32) ^ asfn;
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t AliceSf::current_asfn() const {
  const TimeUs period = mac_.slotframe_duration(config_.unicast_slotframe_length);
  return static_cast<std::uint64_t>(sim_.now()) / static_cast<std::uint64_t>(period);
}

void AliceSf::start(bool is_root) { is_root_ = is_root; }

void AliceSf::on_associated() {
  associated_ = true;
  install_base_slotframes();
  reinstall_link_cells(current_asfn());
  // Re-derive the link cells at every global slotframe boundary. The
  // boundaries are multiples of the nominal slotframe duration in
  // simulation time, so every ALICE node rehashes at the same instants
  // and link endpoints never disagree about the current ASFN.
  rehash_tick();
}

void AliceSf::install_base_slotframes() {
  TschSchedule& sched = mac_.schedule();

  Slotframe& eb = sched.add_slotframe(kEbHandle, config_.eb_slotframe_length);
  Cell eb_tx;
  eb_tx.slot_offset = node_hash(mac_.id(), config_.eb_slotframe_length);
  eb_tx.channel_offset = config_.eb_channel_offset;
  eb_tx.options = kCellTx;
  eb_tx.neighbor = kBroadcastId;
  eb.add(eb_tx);
  if (!is_root_ && mac_.time_source() != kNoNode) {
    eb_rx_source_ = mac_.time_source();
    Cell eb_rx;
    eb_rx.slot_offset = node_hash(eb_rx_source_, config_.eb_slotframe_length);
    eb_rx.channel_offset = config_.eb_channel_offset;
    eb_rx.options = kCellRx;
    eb_rx.neighbor = kBroadcastId;
    eb.add(eb_rx);
  }

  Slotframe& common = sched.add_slotframe(kCommonHandle, config_.common_slotframe_length);
  Cell shared;
  shared.slot_offset = 0;
  shared.channel_offset = config_.common_channel_offset;
  shared.options = kCellTx | kCellRx | kCellShared;
  shared.neighbor = kBroadcastId;
  common.add(shared);

  sched.add_slotframe(kUnicastHandle, config_.unicast_slotframe_length);
}

void AliceSf::reinstall_link_cells(std::uint64_t asfn) {
  Slotframe* unicast = mac_.schedule().get(kUnicastHandle);
  if (unicast == nullptr) return;
  unicast->remove_if([](const Cell&) { return true; });

  const std::uint16_t length = config_.unicast_slotframe_length;
  const std::uint8_t channel_span =
      static_cast<std::uint8_t>(config_.num_channel_offsets - 2);
  const auto link_cell = [&](NodeId src, NodeId dst) {
    const std::uint64_t h = link_hash(src, dst, asfn);
    Cell c;
    c.slot_offset = static_cast<std::uint16_t>(h % length);
    // An independent bit slice for the channel, over [2, num_offsets)
    // so link cells never collide with the EB/common planes.
    c.channel_offset = static_cast<ChannelOffset>(2 + (h >> 16) % channel_span);
    return c;
  };

  // Tx toward the parent: our half of the directed link self -> parent.
  const NodeId parent = rpl_.parent();
  if (!is_root_ && parent != kNoNode) {
    Cell tx = link_cell(mac_.id(), parent);
    tx.options = kCellTx;
    tx.neighbor = parent;
    unicast->add(tx);
  }

  // Rx per live neighbor: their half of neighbor -> self. Pruning
  // happens here (once per slotframe) so the set cannot grow unbounded.
  if (config_.neighbor_timeout > 0) {
    const TimeUs now = sim_.now();
    for (auto it = neighbors_.begin(); it != neighbors_.end();) {
      if (now - it->second > config_.neighbor_timeout) {
        it = neighbors_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& [neighbor, last_heard] : neighbors_) {
    (void)last_heard;
    if (neighbor == parent) continue;  // convergecast: no Rx from the parent
    Cell rx = link_cell(neighbor, mac_.id());
    rx.options = kCellRx;
    rx.neighbor = kBroadcastId;  // any sender that hashed onto this link slot
    unicast->add(rx);
  }
}

void AliceSf::rehash_tick() {
  const TimeUs period = mac_.slotframe_duration(config_.unicast_slotframe_length);
  const std::uint64_t asfn = current_asfn();
  reinstall_link_cells(asfn);
  const TimeUs next_boundary = static_cast<TimeUs>((asfn + 1) *
                                                   static_cast<std::uint64_t>(period));
  rehash_.start(next_boundary - sim_.now(), [this] { rehash_tick(); });
}

void AliceSf::on_frame(const Frame& frame) {
  if (frame.src == kNoNode || frame.src == mac_.id()) return;
  const auto [it, inserted] = neighbors_.insert_or_assign(frame.src, sim_.now());
  (void)it;
  // A brand-new neighbor gets its Rx link cell immediately (mid-window):
  // its unicast traffic must not wait a full slotframe for the rehash.
  if (inserted && associated_) reinstall_link_cells(current_asfn());
}

void AliceSf::on_parent_changed(NodeId, NodeId) {
  if (associated_) reinstall_link_cells(current_asfn());
}

std::optional<EbPayload> AliceSf::eb_info() {
  if (!is_root_ && !rpl_.joined()) return std::nullopt;
  EbPayload eb;
  eb.join_priority = rpl_.hops();
  eb.slotframe_length = config_.unicast_slotframe_length;
  eb.has_family_channel = false;
  eb.dodag_root = rpl_.dodag_root();
  return eb;
}

int AliceSf::dedicated_tx_cells() const {
  const Slotframe* unicast = mac_.schedule().get(kUnicastHandle);
  if (unicast == nullptr) return 0;
  int count = 0;
  for (const Cell& c : unicast->all_cells()) {
    if (c.is_tx()) ++count;
  }
  return count;
}

int AliceSf::dedicated_rx_cells() const {
  const Slotframe* unicast = mac_.schedule().get(kUnicastHandle);
  if (unicast == nullptr) return 0;
  int count = 0;
  for (const Cell& c : unicast->all_cells()) {
    if (c.is_rx()) ++count;
  }
  return count;
}

void register_alice_sf(SfRegistry& registry) {
  SfRegistry::Entry entry;
  entry.key = "alice";
  entry.display_name = "ALICE";
  entry.summary = "autonomous per-link cells, hash(src,dst,ASFN), no 6P";
  entry.factory = [](const SfContext& ctx) -> std::unique_ptr<SchedulingFunction> {
    return std::make_unique<AliceSf>(ctx.sim, ctx.mac, ctx.rpl, ctx.configs.alice);
  };
  registry.add(std::move(entry));
}

}  // namespace gttsch
