// ALICE baseline (Kim, Kim & Kim, "ALICE: Autonomous Link-based Cell
// scheduling for TSCH", IPSN'19) — autonomous, link-based, time-varying
// cell scheduling with zero 6P traffic.
//
// Like Orchestra it derives the whole schedule from hashes, but cells are
// per *directed link*, not per node, and the hash input includes the
// absolute slotframe number (ASFN), so a link's (slot, channel) pair
// rotates every slotframe — recurring hash collisions between neighboring
// links de-synchronize instead of persisting.
//
// Three slotframes, priority by handle:
//   0: EB slotframe       — Tx cell at hash(self), Rx cell at hash(time src)
//   1: common/broadcast   — one shared Tx|Rx cell at slot 0 (DIOs, fallback)
//   2: unicast            — per-link, time-varying: a Tx cell toward the
//      parent at hash(self -> parent, ASFN) and one Rx cell per known
//      neighbor at hash(neighbor -> self, ASFN). Both endpoints recompute
//      at every slotframe boundary from the same global ASFN, so they
//      agree without signalling.
//
// Rx cells are installed per *neighbor* (anyone heard recently), not per
// confirmed child: a new child's first unicast frame must find its parent
// already listening on the link cell, and RPL here has no downward routes
// to learn children from.
#pragma once

#include <map>

#include "mac/tsch_mac.hpp"
#include "net/rpl.hpp"
#include "sim/timer.hpp"
#include "sixp/sf.hpp"

namespace gttsch {

struct AliceConfig {
  std::uint16_t eb_slotframe_length = 41;
  std::uint16_t common_slotframe_length = 31;
  std::uint16_t unicast_slotframe_length = 8;  ///< L_u; the rehash period
  ChannelOffset eb_channel_offset = 0;
  ChannelOffset common_channel_offset = 1;
  /// Link channels hash over [2, num_channel_offsets) — ALICE always
  /// channel-hops per link (there is no fixed-offset mode).
  std::uint8_t num_channel_offsets = 8;
  /// Forget a neighbor (and stop scheduling its Rx link cell) when
  /// nothing was heard from it for this long. 0 disables.
  TimeUs neighbor_timeout = 120000000;
};

class AliceSf final : public SchedulingFunction {
 public:
  AliceSf(Simulator& sim, TschMac& mac, RplAgent& rpl, AliceConfig config);

  const char* name() const override { return "alice"; }
  void start(bool is_root) override;
  void on_associated() override;
  void on_frame(const Frame& frame) override;
  void on_parent_changed(NodeId old_parent, NodeId new_parent) override;
  void on_local_packet_generated() override {}
  std::uint16_t advertised_free_rx() override { return 0; }
  std::optional<EbPayload> eb_info() override;

  bool operational() const override { return associated_; }
  int dedicated_tx_cells() const override;
  int dedicated_rx_cells() const override;

  /// ALICE's per-link hash: mixes (src, dst, asfn) through a splitmix64
  /// finalizer — deterministic across hosts, identical on both endpoints.
  static std::uint64_t link_hash(NodeId src, NodeId dst, std::uint64_t asfn);

  const AliceConfig& config() const { return config_; }

 private:
  /// The global slotframe number both link endpoints agree on: sim time
  /// over the nominal slotframe duration. Wall-clock-based on purpose —
  /// per-node ASN counters start at association and differ, while the
  /// simulation clock (which TSCH sync tracks) is shared.
  std::uint64_t current_asfn() const;
  void install_base_slotframes();
  /// Drop and re-create every unicast link cell for `asfn`.
  void reinstall_link_cells(std::uint64_t asfn);
  void rehash_tick();

  Simulator& sim_;
  TschMac& mac_;
  RplAgent& rpl_;
  AliceConfig config_;
  bool is_root_ = false;
  bool associated_ = false;
  NodeId eb_rx_source_ = kNoNode;
  /// Liveness of everyone we heard (any frame type) — the Rx-cell set.
  std::map<NodeId, TimeUs> neighbors_;
  OneShotTimer rehash_;
};

}  // namespace gttsch
