// String-keyed scheduling-function registry: the one table every
// scheduler-name surface derives from. Node construction, the campaign
// spec parser (`scheduler=` axis), gt_campaign's usage text and
// experiment.cpp's display names all consult this registry, so adding a
// scheduler is one file pair implementing SchedulingFunction plus one
// registration entry here — no parallel switch statements to keep in
// sync.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "alice/alice_sf.hpp"
#include "core/gt_tsch_sf.hpp"
#include "emsf/emsf_sf.hpp"
#include "orchestra/orchestra_sf.hpp"
#include "sixp/sf.hpp"

namespace gttsch {

/// Per-scheduler configuration blobs, one member per registered SF. A
/// NodeStackConfig carries all of them; each factory reads only its own.
struct SfConfigs {
  GtTschConfig gt;
  OrchestraConfig orchestra;
  AliceConfig alice;
  EmsfConfig emsf;
};

/// Everything a scheduling-function factory may wire against. The Rng is
/// a per-node fork dedicated to the SF (pass-by-value: forking the
/// parent stream is const and does not perturb other consumers).
struct SfContext {
  Simulator& sim;
  TschMac& mac;
  RplAgent& rpl;
  SixpAgent& sixp;
  EtxEstimator& etx;
  Rng rng;
  const SfConfigs& configs;
};

class SfRegistry {
 public:
  using Factory = std::function<std::unique_ptr<SchedulingFunction>(const SfContext&)>;

  struct Entry {
    std::string key;           ///< canonical name ("gt-tsch")
    std::string display_name;  ///< report label ("GT-TSCH")
    std::string summary;       ///< one-liner for usage/README text
    std::vector<std::string> aliases;  ///< accepted spellings ("gt")
    Factory factory;
  };

  /// The process-wide registry, populated on first use by the explicit
  /// registration calls below (explicit, not static-initializer magic:
  /// a static library would dead-strip self-registering object files).
  static const SfRegistry& instance();

  /// Lookup by canonical key or alias; nullptr when unknown.
  const Entry* find(const std::string& name) const;

  /// All entries in registration order (the canonical display order).
  const std::vector<Entry>& entries() const { return entries_; }

  /// Canonical keys in registration order.
  std::vector<std::string> names() const;

  /// "gt-tsch, orchestra, alice, emsf" — for usage and error text.
  std::string names_joined(const char* separator = ", ") const;

  /// Construct the named scheduler. Aborts (GTTSCH_CHECK) on an unknown
  /// name: callers validate user input through find() first.
  std::unique_ptr<SchedulingFunction> create(const std::string& name,
                                             const SfContext& context) const;

  /// Registration API for the per-scheduler register_*_sf functions.
  void add(Entry entry);

 private:
  SfRegistry() = default;
  std::vector<Entry> entries_;
};

// One registration function per scheduler, defined next to the scheduler
// it registers (gt_tsch_sf.cpp, orchestra_sf.cpp, ...). sf_registry.cpp
// calls them in canonical order to build the singleton.
void register_gt_tsch_sf(SfRegistry& registry);
void register_orchestra_sf(SfRegistry& registry);
void register_alice_sf(SfRegistry& registry);
void register_emsf_sf(SfRegistry& registry);

}  // namespace gttsch
