#include "sixp/sixp.hpp"

#include "sim/log.hpp"
#include "util/check.hpp"

namespace gttsch {

SixpAgent::SixpAgent(Simulator& sim, TschMac& mac, TimeUs response_timeout)
    : sim_(sim), mac_(mac), response_timeout_(response_timeout) {}

bool SixpAgent::request(NodeId peer, SixpPayload payload) {
  GTTSCH_CHECK(peer != kBroadcastId && peer != kNoNode);
  if (outstanding_.count(peer) > 0) {
    ++counters_.busy_rejections;
    return false;
  }
  payload.type = SixpMsgType::kRequest;
  payload.seqnum = next_seqnum_[peer]++;

  if (!mac_.enqueue(make_sixp_frame(mac_.id(), peer, payload))) return false;

  Transaction tx;
  tx.command = payload.command;
  tx.seqnum = payload.seqnum;
  tx.timer = std::make_unique<OneShotTimer>(sim_);
  tx.timer->start(response_timeout_, [this, peer] { on_timeout(peer); });
  outstanding_.emplace(peer, std::move(tx));
  ++counters_.requests_sent;
  return true;
}

void SixpAgent::on_frame(const Frame& frame) {
  GTTSCH_CHECK(frame.type == FrameType::kSixp);
  const SixpPayload& p = frame.as<SixpPayload>();
  const NodeId peer = frame.src;

  if (p.type == SixpMsgType::kRequest) {
    if (callbacks_ == nullptr) return;
    SixpPayload response = callbacks_->sixp_handle_request(peer, p);
    response.type = SixpMsgType::kResponse;
    response.command = p.command;
    response.seqnum = p.seqnum;
    mac_.enqueue(make_sixp_frame(mac_.id(), peer, response));
    ++counters_.responses_sent;
    return;
  }

  // Response path.
  const auto it = outstanding_.find(peer);
  if (it == outstanding_.end() || it->second.seqnum != p.seqnum ||
      it->second.command != p.command) {
    ++counters_.stale_responses;
    return;
  }
  const SixpCommand command = it->second.command;
  outstanding_.erase(it);
  ++counters_.responses_received;
  if (observer_) observer_(peer, command, false, p.code == SixpReturnCode::kSuccess);
  if (callbacks_ != nullptr) callbacks_->sixp_transaction_done(peer, command, false, p);
}

void SixpAgent::on_timeout(NodeId peer) {
  const auto it = outstanding_.find(peer);
  if (it == outstanding_.end()) return;
  const SixpCommand command = it->second.command;
  outstanding_.erase(it);
  ++counters_.timeouts;
  GTTSCH_LOG_DEBUG("6p", "node %u: transaction to %u timed out", mac_.id(), peer);
  if (observer_) observer_(peer, command, true, false);
  if (callbacks_ != nullptr)
    callbacks_->sixp_transaction_done(peer, command, true, SixpPayload{});
}

void SixpAgent::abort_peer(NodeId peer) { outstanding_.erase(peer); }

}  // namespace gttsch
