// 6top protocol (6P, RFC 8480) transaction engine.
//
// Two-step request/response transactions between one-hop neighbors, with
// per-peer sequence numbers, a single outstanding transaction per peer and
// timeouts. Carries ADD / DELETE / CLEAR plus the paper's ASK-CHANNEL
// command (0x0A) used by GT-TSCH's channel-allocation process.
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "mac/tsch_mac.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace gttsch {

/// The scheduling function plugs in here (RFC 8480's "SF" role).
class SixpSfCallbacks {
 public:
  virtual ~SixpSfCallbacks() = default;

  /// A peer sent us a request. Build and return the response payload
  /// (type/seqnum are filled in by the agent).
  virtual SixpPayload sixp_handle_request(NodeId peer, const SixpPayload& request) = 0;

  /// A transaction we initiated concluded. `timed_out` true means no
  /// response arrived within the timeout (response is then empty).
  virtual void sixp_transaction_done(NodeId peer, SixpCommand command, bool timed_out,
                                     const SixpPayload& response) = 0;
};

struct SixpCounters {
  std::uint64_t requests_sent = 0;
  std::uint64_t responses_sent = 0;
  std::uint64_t responses_received = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t stale_responses = 0;
  std::uint64_t busy_rejections = 0;
};

class SixpAgent {
 public:
  SixpAgent(Simulator& sim, TschMac& mac, TimeUs response_timeout = 8000000);

  void set_callbacks(SixpSfCallbacks* cb) { callbacks_ = cb; }

  /// Read-only telemetry tap, invoked (before the SF callback) whenever a
  /// transaction this agent initiated concludes. `ok` means a response
  /// arrived with return code SUCCESS.
  using TransactionObserver =
      std::function<void(NodeId peer, SixpCommand command, bool timed_out, bool ok)>;
  void set_transaction_observer(TransactionObserver observer) {
    observer_ = std::move(observer);
  }

  /// Initiate a transaction toward `peer`. Returns false when one is
  /// already outstanding toward that peer (RFC 8480 rule) or the request
  /// could not be queued.
  bool request(NodeId peer, SixpPayload payload);

  /// Dispatch an incoming 6P frame (from the Node layer).
  void on_frame(const Frame& frame);

  /// Abort any outstanding transaction toward `peer` without a callback
  /// (used on parent switches).
  void abort_peer(NodeId peer);

  bool busy_with(NodeId peer) const { return outstanding_.count(peer) > 0; }
  const SixpCounters& counters() const { return counters_; }

 private:
  struct Transaction {
    SixpCommand command;
    std::uint8_t seqnum;
    std::unique_ptr<OneShotTimer> timer;
  };

  void on_timeout(NodeId peer);

  Simulator& sim_;
  TschMac& mac_;
  TimeUs response_timeout_;
  SixpSfCallbacks* callbacks_ = nullptr;
  TransactionObserver observer_;
  std::map<NodeId, std::uint8_t> next_seqnum_;
  std::map<NodeId, Transaction> outstanding_;
  SixpCounters counters_;
};

}  // namespace gttsch
