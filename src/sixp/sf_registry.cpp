#include "sixp/sf_registry.hpp"

#include "util/check.hpp"

namespace gttsch {

const SfRegistry& SfRegistry::instance() {
  static const SfRegistry registry = [] {
    SfRegistry r;
    // Canonical order: the paper's scheduler first, then the baselines in
    // the order they joined the zoo. This order is user-visible (usage
    // text, README table) — append, don't reorder.
    register_gt_tsch_sf(r);
    register_orchestra_sf(r);
    register_alice_sf(r);
    register_emsf_sf(r);
    return r;
  }();
  return registry;
}

void SfRegistry::add(Entry entry) {
  GTTSCH_CHECK(!entry.key.empty());
  GTTSCH_CHECK(entry.factory != nullptr);
  GTTSCH_CHECK(find(entry.key) == nullptr);  // keys and aliases are unique
  for (const std::string& alias : entry.aliases) GTTSCH_CHECK(find(alias) == nullptr);
  entries_.push_back(std::move(entry));
}

const SfRegistry::Entry* SfRegistry::find(const std::string& name) const {
  for (const Entry& entry : entries_) {
    if (entry.key == name) return &entry;
    for (const std::string& alias : entry.aliases) {
      if (alias == name) return &entry;
    }
  }
  return nullptr;
}

std::vector<std::string> SfRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) out.push_back(entry.key);
  return out;
}

std::string SfRegistry::names_joined(const char* separator) const {
  std::string out;
  for (const Entry& entry : entries_) {
    if (!out.empty()) out += separator;
    out += entry.key;
  }
  return out;
}

std::unique_ptr<SchedulingFunction> SfRegistry::create(const std::string& name,
                                                       const SfContext& context) const {
  const Entry* entry = find(name);
  GTTSCH_CHECK(entry != nullptr && "unknown scheduler name");
  return entry->factory(context);
}

}  // namespace gttsch
