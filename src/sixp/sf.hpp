// The scheduling-function interface (the "SF" role of RFC 8480/8180):
// the pluggable policy that owns the TSCH schedule content. Every
// scheduler in the zoo (GT-TSCH, Orchestra, ALICE, e-MSF, ...) implements
// it; the Node integration layer drives it with MAC/RPL events and reads
// it back only through this interface — no downcasts. New schedulers
// plug in via the SfRegistry (sixp/sf_registry.hpp).
#pragma once

#include <optional>

#include "phy/wire.hpp"
#include "util/types.hpp"

namespace gttsch {

class SchedulingFunction {
 public:
  virtual ~SchedulingFunction() = default;

  /// Canonical registry key ("gt-tsch", "orchestra", "alice", "emsf").
  virtual const char* name() const = 0;

  /// Called once after the node's stack is wired (before association).
  virtual void start(bool is_root) = 0;

  /// The MAC joined a TSCH network (always called for roots at startup).
  virtual void on_associated() = 0;

  /// Every decodable frame the MAC passed up, for SF-specific sniffing
  /// (e.g. GT-TSCH learns family channels from EBs). Called in addition to
  /// the normal protocol dispatch.
  virtual void on_frame(const Frame& frame) = 0;

  /// RPL selected / changed the preferred parent.
  virtual void on_parent_changed(NodeId old_parent, NodeId new_parent) = 0;

  /// A local application generated a packet (drives l^g estimation).
  virtual void on_local_packet_generated() = 0;

  /// Value of the paper's DIO option: free Rx cells this node can grant.
  virtual std::uint16_t advertised_free_rx() = 0;

  /// EB content (join priority, GT-TSCH family channel). nullopt = do not
  /// beacon yet.
  virtual std::optional<EbPayload> eb_info() = 0;

  // Introspection hooks for the integration layer (telemetry, benches,
  // the parametrized conformance suite). Defaults describe an autonomous
  // scheduler with no negotiated state, so purely hash-based SFs need not
  // override them.

  /// True once the SF has finished its own bootstrap and is serving
  /// traffic (GT-TSCH: the 6P handshake completed; autonomous SFs: as
  /// soon as the MAC associated). Join state is tracked by RPL, not here.
  virtual bool operational() const { return true; }

  /// Dedicated (negotiated or per-link autonomous, non-shared) data Tx
  /// cells currently installed toward the preferred parent.
  virtual int dedicated_tx_cells() const { return 0; }

  /// Dedicated data Rx cells currently installed for children.
  virtual int dedicated_rx_cells() const { return 0; }

  /// The SF's current local-demand estimate in cells per slotframe
  /// (GT-TSCH: Eq 1's l^tx-min; e-MSF: its utilization target). 0 for
  /// schedulers that do not estimate demand.
  virtual double demand_estimate() const { return 0.0; }
};

}  // namespace gttsch
