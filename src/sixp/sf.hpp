// The scheduling-function interface (the "SF" role of RFC 8480/8180):
// the pluggable policy that owns the TSCH schedule content. GT-TSCH and
// the Orchestra baseline both implement it; the Node integration layer
// drives it with MAC/RPL events.
#pragma once

#include <optional>

#include "phy/wire.hpp"
#include "util/types.hpp"

namespace gttsch {

class SchedulingFunction {
 public:
  virtual ~SchedulingFunction() = default;

  /// Name for reports ("gt-tsch", "orchestra").
  virtual const char* name() const = 0;

  /// Called once after the node's stack is wired (before association).
  virtual void start(bool is_root) = 0;

  /// The MAC joined a TSCH network (always called for roots at startup).
  virtual void on_associated() = 0;

  /// Every decodable frame the MAC passed up, for SF-specific sniffing
  /// (e.g. GT-TSCH learns family channels from EBs). Called in addition to
  /// the normal protocol dispatch.
  virtual void on_frame(const Frame& frame) = 0;

  /// RPL selected / changed the preferred parent.
  virtual void on_parent_changed(NodeId old_parent, NodeId new_parent) = 0;

  /// A local application generated a packet (drives l^g estimation).
  virtual void on_local_packet_generated() = 0;

  /// Value of the paper's DIO option: free Rx cells this node can grant.
  virtual std::uint16_t advertised_free_rx() = 0;

  /// EB content (join priority, GT-TSCH family channel). nullopt = do not
  /// beacon yet.
  virtual std::optional<EbPayload> eb_info() = 0;
};

}  // namespace gttsch
