#include "orchestra/orchestra_sf.hpp"

#include "sixp/sf_registry.hpp"
#include "util/check.hpp"

namespace gttsch {

namespace {
constexpr std::uint16_t kEbHandle = 0;
constexpr std::uint16_t kCommonHandle = 1;
constexpr std::uint16_t kUnicastHandle = 2;
}  // namespace

OrchestraSf::OrchestraSf(TschMac& mac, RplAgent& rpl, OrchestraConfig config)
    : mac_(mac), rpl_(rpl), config_(config) {}

std::uint16_t OrchestraSf::hash(NodeId id, std::uint16_t modulus) {
  GTTSCH_CHECK(modulus > 0);
  return static_cast<std::uint16_t>((static_cast<std::uint32_t>(id) * 2654435761u) % modulus);
}

ChannelOffset OrchestraSf::unicast_offset_for(NodeId receiver) const {
  if (!config_.unicast_channel_hash) return config_.unicast_channel_offset;
  // Hash over offsets [3, num_channel_offsets) to avoid the EB/common ones.
  const std::uint8_t span = static_cast<std::uint8_t>(config_.num_channel_offsets - 3);
  return static_cast<ChannelOffset>(3 + hash(receiver, span));
}

void OrchestraSf::start(bool is_root) { is_root_ = is_root; }

void OrchestraSf::on_associated() {
  TschSchedule& sched = mac_.schedule();

  // EB slotframe: autonomous Tx cell for our own beacons.
  Slotframe& eb = sched.add_slotframe(kEbHandle, config_.eb_slotframe_length);
  Cell eb_tx;
  eb_tx.slot_offset = hash(mac_.id(), config_.eb_slotframe_length);
  eb_tx.channel_offset = config_.eb_channel_offset;
  eb_tx.options = kCellTx;
  eb_tx.neighbor = kBroadcastId;
  eb.add(eb_tx);
  // Rx cell for the time source's beacons (keep-alive/sync).
  if (!is_root_ && mac_.time_source() != kNoNode) {
    eb_rx_source_ = mac_.time_source();
    Cell eb_rx;
    eb_rx.slot_offset = hash(eb_rx_source_, config_.eb_slotframe_length);
    eb_rx.channel_offset = config_.eb_channel_offset;
    eb_rx.options = kCellRx;
    eb_rx.neighbor = kBroadcastId;
    eb.add(eb_rx);
  }

  // Common slotframe: one shared broadcast cell at slot 0.
  Slotframe& common = sched.add_slotframe(kCommonHandle, config_.common_slotframe_length);
  Cell shared;
  shared.slot_offset = 0;
  shared.channel_offset = config_.common_channel_offset;
  shared.options = kCellTx | kCellRx | kCellShared;
  shared.neighbor = kBroadcastId;
  common.add(shared);

  // Unicast slotframe, receiver-based: our dedicated Rx cell.
  Slotframe& unicast = sched.add_slotframe(kUnicastHandle, config_.unicast_slotframe_length);
  Cell rx;
  rx.slot_offset = hash(mac_.id(), config_.unicast_slotframe_length);
  rx.channel_offset = unicast_offset_for(mac_.id());
  rx.options = kCellRx;
  rx.neighbor = kBroadcastId;  // any sender that hashed onto us
  unicast.add(rx);
}

void OrchestraSf::install_unicast_tx(NodeId parent) {
  Slotframe* unicast = mac_.schedule().get(kUnicastHandle);
  if (unicast == nullptr) return;
  Cell tx;
  tx.slot_offset = hash(parent, config_.unicast_slotframe_length);
  tx.channel_offset = unicast_offset_for(parent);
  // Shared: all the parent's children transmit in this same cell, so TSCH
  // CSMA backoff must arbitrate it.
  tx.options = kCellTx | kCellShared;
  tx.neighbor = parent;
  unicast->add(tx);
}

void OrchestraSf::on_parent_changed(NodeId old_parent, NodeId new_parent) {
  Slotframe* unicast = mac_.schedule().get(kUnicastHandle);
  if (unicast == nullptr) return;
  if (old_parent != kNoNode)
    unicast->remove_if(
        [old_parent](const Cell& c) { return c.is_tx() && c.neighbor == old_parent; });
  if (new_parent != kNoNode) install_unicast_tx(new_parent);
}

void OrchestraSf::on_frame(const Frame&) {}

std::optional<EbPayload> OrchestraSf::eb_info() {
  if (!is_root_ && !rpl_.joined()) return std::nullopt;
  EbPayload eb;
  eb.join_priority = rpl_.hops();
  eb.slotframe_length = config_.unicast_slotframe_length;
  eb.has_family_channel = false;
  eb.dodag_root = rpl_.dodag_root();
  return eb;
}

void register_orchestra_sf(SfRegistry& registry) {
  SfRegistry::Entry entry;
  entry.key = "orchestra";
  entry.display_name = "Orchestra";
  entry.summary = "receiver-based autonomous cells, no 6P (SenSys'15)";
  entry.factory = [](const SfContext& ctx) -> std::unique_ptr<SchedulingFunction> {
    return std::make_unique<OrchestraSf>(ctx.mac, ctx.rpl, ctx.configs.orchestra);
  };
  registry.add(std::move(entry));
}

}  // namespace gttsch
