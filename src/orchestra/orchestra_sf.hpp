// Orchestra baseline (Duquennoy et al., SenSys'15), receiver-based variant
// as shipped in Contiki-NG — the comparison scheduler of the paper.
//
// Three autonomous slotframes, priority by handle:
//   0: EB slotframe       — Tx cell at hash(self), Rx cell at hash(time src)
//   1: common/broadcast   — one shared Tx|Rx cell at slot 0 (DIOs, fallback)
//   2: unicast            — receiver-based: dedicated Rx cell at
//      hash(self); a shared Tx cell at hash(nbr) per RPL neighbor (parent
//      here: traffic is convergecast). Multiple children of one parent
//      hash onto the *same* (slot, channel) cell, which is exactly the
//      contention GT-TSCH's Section III criticises; the shared flag
//      engages TSCH CSMA backoff on collisions.
//
// No 6P signalling, no schedule adaptation to load — schedules follow the
// topology only.
#pragma once

#include "mac/tsch_mac.hpp"
#include "net/rpl.hpp"
#include "sixp/sf.hpp"

namespace gttsch {

struct OrchestraConfig {
  std::uint16_t eb_slotframe_length = 41;
  std::uint16_t common_slotframe_length = 31;
  std::uint16_t unicast_slotframe_length = 8;  ///< L_u; paper Fig 10 sweeps this
  ChannelOffset eb_channel_offset = 0;
  ChannelOffset common_channel_offset = 1;
  ChannelOffset unicast_channel_offset = 2;
  /// Contiki-NG option: hash the unicast channel offset per receiver over
  /// the remaining offsets instead of using one fixed offset.
  bool unicast_channel_hash = false;
  std::uint8_t num_channel_offsets = 8;
};

class OrchestraSf final : public SchedulingFunction {
 public:
  OrchestraSf(TschMac& mac, RplAgent& rpl, OrchestraConfig config);

  const char* name() const override { return "orchestra"; }
  void start(bool is_root) override;
  void on_associated() override;
  void on_frame(const Frame& frame) override;
  void on_parent_changed(NodeId old_parent, NodeId new_parent) override;
  void on_local_packet_generated() override {}
  std::uint16_t advertised_free_rx() override { return 0; }
  std::optional<EbPayload> eb_info() override;

  /// Orchestra's hash: Contiki-NG uses (id * prime) % L.
  static std::uint16_t hash(NodeId id, std::uint16_t modulus);

  const OrchestraConfig& config() const { return config_; }

 private:
  ChannelOffset unicast_offset_for(NodeId receiver) const;
  void install_unicast_tx(NodeId parent);

  TschMac& mac_;
  RplAgent& rpl_;
  OrchestraConfig config_;
  bool is_root_ = false;
  NodeId eb_rx_source_ = kNoNode;
};

}  // namespace gttsch
