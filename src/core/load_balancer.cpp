#include "core/load_balancer.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace gttsch {

LoadBalancer::LoadBalancer(LoadBalancerConfig config)
    : config_(config), queue_(config.queue_zeta) {}

LoadBalancer::Decision LoadBalancer::tick(const Inputs& in) {
  GTTSCH_CHECK(in.tick_period > 0 && in.slotframe_duration > 0);

  // Eq 6: smoothed queue metric.
  queue_.update(in.queue_length);

  // Generation-rate estimate (packets per second, smoothed).
  const double inst_rate =
      static_cast<double>(in.generated_since_last_tick) / us_to_s(in.tick_period);
  if (!rate_initialized_) {
    gen_rate_pps_ = inst_rate;
    rate_initialized_ = true;
  } else {
    gen_rate_pps_ = config_.gen_rate_alpha * gen_rate_pps_ +
                    (1.0 - config_.gen_rate_alpha) * inst_rate;
  }

  // l^g: Tx slots per slotframe needed for local generation.
  l_g_ = static_cast<int>(std::ceil(gen_rate_pps_ * us_to_s(in.slotframe_duration) - 1e-9));

  // Eq 1: l^tx-min = l^g + l^tx_cs - l^tx-free, with l^tx-free the entire
  // currently allocated (and thus re-usable) Tx capacity.
  const int needed = l_g_ + in.children_demand;
  l_tx_min_ = needed - in.allocated_tx;

  Decision d;
  if (l_tx_min_ > 0) {
    surplus_streak_ = 0;
    if (in.l_rx_parent <= 0) return d;  // parent cannot grant anything now
    game::PlayerState p;
    p.rank = in.rank;
    p.rank_min = in.rank_min;
    p.min_step_of_rank = in.min_step_of_rank;
    p.etx = std::max(1.0, in.etx);
    p.queue_avg = std::min(queue_.value(), in.queue_max);
    p.queue_max = in.queue_max;
    p.l_tx_min = l_tx_min_;
    p.l_rx_parent = in.l_rx_parent;
    d.action = Decision::Action::kAdd;
    d.count = std::max(1, game::optimal_tx_slots_int(config_.weights, p));
    return d;
  }

  const int surplus = -l_tx_min_;
  if (surplus >= config_.surplus_threshold) {
    ++surplus_streak_;
    if (surplus_streak_ >= config_.surplus_ticks) {
      surplus_streak_ = 0;
      d.action = Decision::Action::kDelete;
      d.count = surplus - 1;  // keep one slot of headroom
      return d;
    }
  } else {
    surplus_streak_ = 0;
  }
  return d;
}

}  // namespace gttsch
