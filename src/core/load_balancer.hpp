// GT-TSCH load balancing (Section VI): the periodic monitor computing
// l^tx-min (Eq 1) from the local generation rate and the children's
// aggregated demand, deciding when to ADD (via the game solution, Eq 15)
// or DELETE Tx cells.
#pragma once

#include <cstdint>

#include "core/game/queue_ewma.hpp"
#include "core/game/solver.hpp"
#include "util/types.hpp"

namespace gttsch {

struct LoadBalancerConfig {
  game::Weights weights;      ///< alpha / beta / gamma of the payoff
  double queue_zeta = 0.7;    ///< Eq 6 smoothing factor
  double gen_rate_alpha = 0.5;  ///< EWMA over per-tick generation counts
  int surplus_threshold = 2;  ///< unused-Tx surplus that triggers DELETE…
  int surplus_ticks = 4;      ///< …after this many consecutive ticks
};

class LoadBalancer {
 public:
  explicit LoadBalancer(LoadBalancerConfig config);

  struct Inputs {
    int generated_since_last_tick = 0;  ///< local app packets this window
    TimeUs tick_period = 0;             ///< monitor period
    TimeUs slotframe_duration = 0;
    int children_demand = 0;  ///< sum of child-requested Tx totals (l^tx_cs)
    int allocated_tx = 0;     ///< current data Tx cells toward the parent
    int l_rx_parent = 0;      ///< parent's advertised free Rx cells
    std::size_t queue_length = 0;  ///< instantaneous q_i
    // Game context:
    double rank = 0.0;
    double rank_min = 0.0;
    double min_step_of_rank = 256.0;
    double etx = 1.0;
    double queue_max = 16.0;
  };

  struct Decision {
    enum class Action { kNone, kAdd, kDelete };
    Action action = Action::kNone;
    int count = 0;
  };

  /// Run one monitor period. Root nodes never request cells (no parent);
  /// callers simply don't tick a root's ADD path (children_demand still
  /// feeds the DIO advertisement elsewhere).
  Decision tick(const Inputs& in);

  /// Eq 1 outputs from the latest tick (for tests / introspection).
  int l_g() const { return l_g_; }
  int l_tx_min() const { return l_tx_min_; }
  double queue_metric() const { return queue_.value(); }
  double gen_rate_pps() const { return gen_rate_pps_; }

 private:
  LoadBalancerConfig config_;
  game::QueueEwma queue_;
  double gen_rate_pps_ = 0.0;
  bool rate_initialized_ = false;
  int l_g_ = 0;
  int l_tx_min_ = 0;
  int surplus_streak_ = 0;
};

}  // namespace gttsch
