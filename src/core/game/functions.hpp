// The building blocks of the GT-TSCH payoff (Section VII.A-D):
// utility (Eqs 2-3), link-quality cost (Eqs 4-5), queue cost (Eq 7) and the
// combined payoff (Eq 8), together with first and second derivatives in the
// player's own strategy (used by the KKT solution and the Nash analysis).
#pragma once

#include "core/game/types.hpp"

namespace gttsch::game {

/// Eq 3: transformed rank, MinStepOfRank / (Rank_i - Rank_min).
/// Larger for nodes logically closer to the root. Requires rank > rank_min
/// (the root itself does not play: it has no parent to request cells from).
double rank_tilde(const PlayerState& p);

/// Eq 2: u_i(s) = rank_tilde * ln(s + 1). Strictly concave in s.
double utility(const PlayerState& p, double s);
double utility_d1(const PlayerState& p, double s);
double utility_d2(const PlayerState& p, double s);

/// Eq 5: d_i(s) = s * (ETX - 1). Zero on a perfect link.
double link_cost(const PlayerState& p, double s);
double link_cost_d1(const PlayerState& p);

/// Eq 7: z_i(s) = s * (1 - Q_i / Q_max). Shrinks as the queue fills,
/// prioritising congested nodes.
double queue_cost(const PlayerState& p, double s);
double queue_cost_d1(const PlayerState& p);

/// Eq 8: v_i(s) = alpha*u - beta*d - gamma*z.
double payoff(const Weights& w, const PlayerState& p, double s);
double payoff_d1(const Weights& w, const PlayerState& p, double s);
double payoff_d2(const Weights& w, const PlayerState& p, double s);

}  // namespace gttsch::game
