#include "core/game/queue_ewma.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace gttsch::game {

QueueEwma::QueueEwma(double zeta) : zeta_(std::clamp(zeta, 0.0, 1.0)) {}

void QueueEwma::update(std::size_t queue_length) {
  const double q = static_cast<double>(queue_length);
  if (!initialized_) {
    value_ = q;
    initialized_ = true;
    return;
  }
  value_ = zeta_ * value_ + (1.0 - zeta_) * q;
}

}  // namespace gttsch::game
