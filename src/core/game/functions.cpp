#include "core/game/functions.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace gttsch::game {

double rank_tilde(const PlayerState& p) {
  const double depth = p.rank - p.rank_min;
  GTTSCH_CHECK(depth > 0.0);  // the root does not play the game
  return p.min_step_of_rank / depth;
}

double utility(const PlayerState& p, double s) {
  GTTSCH_CHECK(s > -1.0);
  return rank_tilde(p) * std::log(s + 1.0);
}

double utility_d1(const PlayerState& p, double s) { return rank_tilde(p) / (s + 1.0); }

double utility_d2(const PlayerState& p, double s) {
  const double d = s + 1.0;
  return -rank_tilde(p) / (d * d);
}

double link_cost(const PlayerState& p, double s) { return s * (p.etx - 1.0); }

double link_cost_d1(const PlayerState& p) { return p.etx - 1.0; }

double queue_cost(const PlayerState& p, double s) {
  GTTSCH_CHECK(p.queue_max > 0.0);
  return s * (1.0 - p.queue_avg / p.queue_max);
}

double queue_cost_d1(const PlayerState& p) { return 1.0 - p.queue_avg / p.queue_max; }

double payoff(const Weights& w, const PlayerState& p, double s) {
  return w.alpha * utility(p, s) - w.beta * link_cost(p, s) - w.gamma * queue_cost(p, s);
}

double payoff_d1(const Weights& w, const PlayerState& p, double s) {
  return w.alpha * utility_d1(p, s) - w.beta * link_cost_d1(p) - w.gamma * queue_cost_d1(p);
}

double payoff_d2(const Weights& w, const PlayerState& p, double s) {
  return w.alpha * utility_d2(p, s);
}

}  // namespace gttsch::game
