#include "core/game/solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace gttsch::game {

double unconstrained_optimum(const Weights& w, const PlayerState& p) {
  const double marginal_cost =
      w.gamma * queue_cost_d1(p) + w.beta * link_cost_d1(p);
  if (marginal_cost <= 0.0) return std::numeric_limits<double>::infinity();
  return w.alpha * rank_tilde(p) / marginal_cost - 1.0;
}

double optimal_tx_slots(const Weights& w, const PlayerState& p) {
  GTTSCH_CHECK(p.l_tx_min >= 0.0);
  // Degenerate strategy set: the paper requests l_rx_parent outright.
  if (p.l_rx_parent <= p.l_tx_min) return p.l_rx_parent;
  const double x = unconstrained_optimum(w, p);
  if (p.l_tx_min >= x) return p.l_tx_min;
  if (p.l_rx_parent <= x) return p.l_rx_parent;
  return x;
}

int optimal_tx_slots_int(const Weights& w, const PlayerState& p) {
  const double lo_d = std::ceil(p.l_tx_min - 1e-9);
  const double hi_d = std::floor(p.l_rx_parent + 1e-9);
  const int lo = static_cast<int>(lo_d);
  const int hi = static_cast<int>(hi_d);
  if (hi <= lo) return std::max(0, hi);

  const double s = optimal_tx_slots(w, p);
  const int fl = std::clamp(static_cast<int>(std::floor(s)), lo, hi);
  const int ce = std::clamp(static_cast<int>(std::ceil(s)), lo, hi);
  if (fl == ce) return fl;
  return payoff(w, p, static_cast<double>(fl)) >= payoff(w, p, static_cast<double>(ce)) ? fl
                                                                                        : ce;
}

KktPoint solve_kkt(const Weights& w, const PlayerState& p) {
  KktPoint k;
  k.s = optimal_tx_slots(w, p);
  const double grad = payoff_d1(w, p, k.s);
  // Stationarity: dv/ds + w1 - w2 = 0 with complementary slackness.
  if (std::abs(k.s - p.l_tx_min) < 1e-12 && grad < 0.0) {
    k.w1 = -grad;  // lower bound active, payoff decreasing
  } else if (std::abs(k.s - p.l_rx_parent) < 1e-12 && grad > 0.0) {
    k.w2 = grad;  // upper bound active, payoff still increasing
  }
  return k;
}

bool kkt_satisfied(const Weights& w, const PlayerState& p, const KktPoint& k, double tol) {
  // 1) primal feasibility (skip when the set is degenerate).
  if (p.l_rx_parent > p.l_tx_min) {
    if (k.s < p.l_tx_min - tol || k.s > p.l_rx_parent + tol) return false;
  }
  // 2) dual feasibility.
  if (k.w1 < -tol || k.w2 < -tol) return false;
  // 3) stationarity: dv/ds - w1*d(l_tx_min - s)/ds - w2*d(s - l_rx)/ds
  //    = dv/ds + w1 - w2 = 0.
  const double stationarity = payoff_d1(w, p, k.s) + k.w1 - k.w2;
  if (std::abs(stationarity) > 1e-6) return false;
  // 4) complementary slackness.
  if (std::abs(k.w1 * (p.l_tx_min - k.s)) > tol) return false;
  if (std::abs(k.w2 * (k.s - p.l_rx_parent)) > tol) return false;
  return true;
}

}  // namespace gttsch::game
