#include "core/game/nash.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace gttsch::game {

TxAllocationGame::TxAllocationGame(Weights weights, std::vector<PlayerState> players)
    : weights_(weights), players_(std::move(players)) {
  GTTSCH_CHECK(!players_.empty());
}

double TxAllocationGame::best_response(std::size_t i, double others_total,
                                       double shared_capacity) const {
  PlayerState p = players_[i];
  if (shared_capacity >= 0.0) {
    const double available = std::max(0.0, shared_capacity - others_total);
    p.l_rx_parent = std::min(p.l_rx_parent, available);
    p.l_rx_parent = std::max(p.l_rx_parent, p.l_tx_min);  // keep the set non-empty
  }
  return optimal_tx_slots(weights_, p);
}

BestResponseResult TxAllocationGame::best_response_dynamics(std::vector<double> s,
                                                            double shared_capacity,
                                                            int max_iterations,
                                                            double tol) const {
  GTTSCH_CHECK(s.size() == players_.size());
  BestResponseResult result;
  double total = 0.0;
  for (double v : s) total += v;

  for (int iter = 0; iter < max_iterations; ++iter) {
    double max_delta = 0.0;
    // Gauss-Seidel sweep: each player responds to the freshest profile.
    for (std::size_t i = 0; i < players_.size(); ++i) {
      const double others = total - s[i];
      const double next = best_response(i, others, shared_capacity);
      max_delta = std::max(max_delta, std::abs(next - s[i]));
      total += next - s[i];
      s[i] = next;
    }
    result.iterations = iter + 1;
    if (max_delta < tol) {
      result.converged = true;
      break;
    }
  }
  result.strategies = std::move(s);
  return result;
}

std::vector<double> TxAllocationGame::closed_form_equilibrium() const {
  std::vector<double> out;
  out.reserve(players_.size());
  for (const PlayerState& p : players_) out.push_back(optimal_tx_slots(weights_, p));
  return out;
}

bool TxAllocationGame::is_nash(const std::vector<double>& s, int samples, double tol) const {
  GTTSCH_CHECK(s.size() == players_.size());
  for (std::size_t i = 0; i < players_.size(); ++i) {
    const PlayerState& p = players_[i];
    if (p.l_rx_parent <= p.l_tx_min) continue;  // degenerate set: no deviation
    const double v_star = payoff(weights_, p, s[i]);
    for (int k = 0; k <= samples; ++k) {
      const double cand =
          p.l_tx_min + (p.l_rx_parent - p.l_tx_min) * static_cast<double>(k) / samples;
      if (payoff(weights_, p, cand) > v_star + tol) return false;
    }
  }
  return true;
}

bool TxAllocationGame::existence_conditions_hold() const {
  for (const PlayerState& p : players_) {
    // S_i compact & convex: a closed bounded interval with lo <= hi.
    if (!(p.l_tx_min >= 0.0) || !(p.l_rx_parent >= p.l_tx_min)) return false;
    // Strict concavity in own strategy: v'' < 0 across the interval.
    for (double s = p.l_tx_min; s <= p.l_rx_parent + 1e-12;
         s += std::max(0.25, (p.l_rx_parent - p.l_tx_min) / 16.0)) {
      if (!(payoff_d2(weights_, p, s) < 0.0)) return false;
      if (p.l_rx_parent == p.l_tx_min) break;
    }
  }
  return true;
}

bool TxAllocationGame::diagonally_strictly_concave(const std::vector<double>& s, Rng& rng,
                                                   int directions) const {
  GTTSCH_CHECK(s.size() == players_.size());
  const std::size_t n = players_.size();
  // Cross-partials of v_i w.r.t. s_j (j != i) vanish, so J is diagonal with
  // entries v_i''(s_i); J + J^T is negative definite iff all entries < 0.
  std::vector<double> diag(n);
  for (std::size_t i = 0; i < n; ++i) diag[i] = 2.0 * payoff_d2(weights_, players_[i], s[i]);

  for (int d = 0; d < directions; ++d) {
    std::vector<double> x(n);
    double norm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = rng.normal();
      norm += x[i] * x[i];
    }
    if (norm < 1e-12) continue;
    double quad = 0.0;
    for (std::size_t i = 0; i < n; ++i) quad += diag[i] * x[i] * x[i];
    if (!(quad < 0.0)) return false;
  }
  return true;
}

bool TxAllocationGame::unique_equilibrium(Rng& rng, int starts, double shared_capacity,
                                          double tol) const {
  std::vector<double> reference;
  for (int k = 0; k < starts; ++k) {
    std::vector<double> init(players_.size());
    for (std::size_t i = 0; i < players_.size(); ++i) {
      const PlayerState& p = players_[i];
      init[i] = p.l_tx_min + rng.uniform_double() * std::max(0.0, p.l_rx_parent - p.l_tx_min);
    }
    const auto result = best_response_dynamics(std::move(init), shared_capacity);
    if (!result.converged) return false;
    if (reference.empty()) {
      reference = result.strategies;
      continue;
    }
    for (std::size_t i = 0; i < reference.size(); ++i)
      if (std::abs(reference[i] - result.strategies[i]) > tol) return false;
  }
  return true;
}

}  // namespace gttsch::game
