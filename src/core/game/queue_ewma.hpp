// Eq 6: the smoothed queue metric Q_i(t) = zeta*Q_i(t-1) + (1-zeta)*q_i(t).
#pragma once

#include <cstddef>

namespace gttsch::game {

class QueueEwma {
 public:
  /// `zeta` is the smoothing factor of Eq 6 (memory of the past estimate).
  explicit QueueEwma(double zeta = 0.7);

  /// Feed the instantaneous queue length q_i(t) at the end of a time frame.
  void update(std::size_t queue_length);

  double value() const { return value_; }
  void reset() { value_ = 0.0; initialized_ = false; }
  bool initialized() const { return initialized_; }
  double zeta() const { return zeta_; }

 private:
  double zeta_;
  double value_ = 0.0;
  bool initialized_ = false;
};

}  // namespace gttsch::game
