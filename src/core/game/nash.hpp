// Numerical Nash-equilibrium analysis (Section VII.E, Theorems 1-2).
//
// The paper proves existence via Debreu (compact convex strategy sets,
// concave continuous payoffs) and uniqueness via Rosen (diagonal strict
// concavity). This module makes those properties *checkable*: it hosts an
// N-player instance, runs best-response dynamics, and evaluates the
// concavity conditions numerically, including the Rosen condition
// x^T (J + J^T) x < 0 on the pseudo-gradient Jacobian.
//
// Beyond the paper's decoupled formulation we also support a capacity-
// coupled variant where siblings share the parent's finite Rx budget —
// the situation the deployed protocol actually faces — and show best-
// response dynamics still converge to a unique fixed point.
#pragma once

#include <vector>

#include "core/game/solver.hpp"
#include "util/rng.hpp"

namespace gttsch::game {

struct BestResponseResult {
  std::vector<double> strategies;
  int iterations = 0;
  bool converged = false;
};

class TxAllocationGame {
 public:
  TxAllocationGame(Weights weights, std::vector<PlayerState> players);

  std::size_t num_players() const { return players_.size(); }
  const Weights& weights() const { return weights_; }
  const std::vector<PlayerState>& players() const { return players_; }

  /// Best response of player i given the others' strategies. In the
  /// uncoupled paper formulation this ignores `others_total`; with
  /// `shared_capacity` >= 0 the upper bound shrinks to the unclaimed
  /// share of the parent's Rx budget.
  double best_response(std::size_t i, double others_total, double shared_capacity) const;

  /// Iterate simultaneous best responses from `initial` until the largest
  /// per-player change falls below `tol`. shared_capacity < 0 disables the
  /// coupling (the paper's formulation: strategy sets are independent).
  BestResponseResult best_response_dynamics(std::vector<double> initial,
                                            double shared_capacity = -1.0,
                                            int max_iterations = 1000,
                                            double tol = 1e-9) const;

  /// The closed-form equilibrium (every player at its Eq 15 optimum).
  std::vector<double> closed_form_equilibrium() const;

  /// Nash check: no player can improve by a unilateral deviation (sampled
  /// over `samples` points of its strategy interval).
  bool is_nash(const std::vector<double>& s, int samples = 64, double tol = 1e-7) const;

  /// Theorem 1 conditions, numerically: strategy sets non-degenerate and
  /// payoffs concave in own strategy across the strategy box.
  bool existence_conditions_hold() const;

  /// Rosen's diagonal strict concavity at point `s`: with the pseudo-
  /// gradient g(s) = [dv_i/ds_i], checks x^T (J + J^T) x < 0 for a set of
  /// random directions x (J is diagonal here, so this is exact up to the
  /// diagonal sign check, but we keep the general quadratic-form test).
  bool diagonally_strictly_concave(const std::vector<double>& s, Rng& rng,
                                   int directions = 32) const;

  /// Uniqueness probe: run best-response dynamics from `starts` random
  /// initial profiles and verify all converge to the same point.
  bool unique_equilibrium(Rng& rng, int starts = 16, double shared_capacity = -1.0,
                          double tol = 1e-6) const;

 private:
  Weights weights_;
  std::vector<PlayerState> players_;
};

}  // namespace gttsch::game
