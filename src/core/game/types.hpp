// Shared types for the GT-TSCH non-cooperative game (Section VII).
#pragma once

namespace gttsch::game {

/// User-preference weights of the payoff function (Eq 8):
///   v_i = alpha*u_i - beta*d_i - gamma*z_i.
struct Weights {
  double alpha = 4.0;  ///< utility (Rank-scaled log of Tx cells)
  double beta = 1.0;   ///< link-quality cost (ETX)
  double gamma = 1.0;  ///< queue cost
};

/// Everything player i needs to evaluate its payoff and strategy set.
struct PlayerState {
  double rank = 512.0;            ///< Rank_i (raw RPL rank)
  double rank_min = 256.0;        ///< Rank of the DODAG root
  double min_step_of_rank = 256;  ///< MinHopRankIncrease
  double etx = 1.0;               ///< ETX_{i,p_i} >= 1 (Eq 4)
  double queue_avg = 0.0;         ///< Q_i, EWMA queue metric (Eq 6)
  double queue_max = 16.0;        ///< Q_Max
  double l_tx_min = 0.0;          ///< lower bound of S_i (Eq 1)
  double l_rx_parent = 0.0;       ///< upper bound of S_i (parent's l^rx)
};

}  // namespace gttsch::game
