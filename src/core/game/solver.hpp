// Closed-form game solution (Section VII.F): the KKT conditions of the
// constrained payoff maximisation reduce to the clamped expression of
// Eq 15 / Algorithm 2.
#pragma once

#include <optional>

#include "core/game/functions.hpp"

namespace gttsch::game {

/// The interior stationary point X of Eq 15:
///   X = alpha*rank_tilde / (gamma*(1 - Q/Qmax) + beta*(ETX-1)) - 1.
/// Returns +infinity when the marginal cost is zero (perfect link AND full
/// queue): the payoff is then strictly increasing, so the upper bound wins.
double unconstrained_optimum(const Weights& w, const PlayerState& p);

/// Algorithm 2: the optimal number of TSCH Tx timeslots, clamped into the
/// strategy set [l_tx_min, l_rx_parent]. Continuous version.
/// Pre-condition per the paper's protocol: requests are only issued when
/// l_rx_parent > 0; if l_rx_parent <= l_tx_min the paper prescribes
/// requesting l_rx_parent.
double optimal_tx_slots(const Weights& w, const PlayerState& p);

/// Integer-valued variant for actual cell counts: evaluates the payoff at
/// floor/ceil of the continuous optimum (concavity makes one of them the
/// integer argmax) and clamps into the integer strategy set.
int optimal_tx_slots_int(const Weights& w, const PlayerState& p);

/// Lagrange multipliers recovered from the KKT stationarity condition
/// (Section VII.F conditions 1-4). Useful to verify optimality in tests.
struct KktPoint {
  double s = 0.0;   ///< primal solution
  double w1 = 0.0;  ///< multiplier of (l_tx_min - s) <= 0
  double w2 = 0.0;  ///< multiplier of (s - l_rx_parent) <= 0
};

KktPoint solve_kkt(const Weights& w, const PlayerState& p);

/// True when (s, w1, w2) satisfies all four KKT conditions within `tol`.
bool kkt_satisfied(const Weights& w, const PlayerState& p, const KktPoint& k,
                   double tol = 1e-9);

}  // namespace gttsch::game
