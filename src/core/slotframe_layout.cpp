#include "core/slotframe_layout.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace gttsch {

SlotframeLayout::SlotframeLayout(SlotframeLayoutConfig config) : config_(config) {
  const std::uint16_t m = config_.length;
  const std::uint16_t k = config_.broadcast_slots;
  GTTSCH_CHECK(m > 0 && k > 0 && k < m);
  GTTSCH_CHECK(2 * config_.shared_slots + k < m);

  // Rule 1: uniformly distributed broadcast slots.
  const std::uint16_t period = static_cast<std::uint16_t>(m / k);
  for (std::uint16_t i = 0; i < k; ++i)
    broadcast_.push_back(static_cast<std::uint16_t>(i * period));

  // Shared blocks fill from the tail, skipping broadcast slots.
  std::vector<std::uint16_t> tail;
  for (std::uint16_t s = m; s-- > 0;) {
    if (std::find(broadcast_.begin(), broadcast_.end(), s) != broadcast_.end()) continue;
    tail.push_back(s);
    if (tail.size() == static_cast<std::size_t>(2 * config_.shared_slots)) break;
  }
  GTTSCH_CHECK(tail.size() == static_cast<std::size_t>(2 * config_.shared_slots));
  shared_even_.assign(tail.begin(), tail.begin() + config_.shared_slots);
  shared_odd_.assign(tail.begin() + config_.shared_slots, tail.end());
  std::sort(shared_even_.begin(), shared_even_.end());
  std::sort(shared_odd_.begin(), shared_odd_.end());

  for (std::uint16_t s = 0; s < m; ++s)
    if (!is_broadcast_slot(s) && !is_shared_slot(s)) negotiable_.push_back(s);
}

bool SlotframeLayout::is_broadcast_slot(std::uint16_t offset) const {
  return std::find(broadcast_.begin(), broadcast_.end(), offset) != broadcast_.end();
}

bool SlotframeLayout::is_shared_slot(std::uint16_t offset) const {
  return std::find(shared_even_.begin(), shared_even_.end(), offset) != shared_even_.end() ||
         std::find(shared_odd_.begin(), shared_odd_.end(), offset) != shared_odd_.end();
}

}  // namespace gttsch
