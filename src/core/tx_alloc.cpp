#include "core/tx_alloc.hpp"

#include <algorithm>
#include <limits>

namespace gttsch {

namespace {

bool is_data_cell(const Cell& c) {
  return !c.is_sixp() && !c.is_shared() && c.neighbor != kBroadcastId &&
         (c.is_tx() || c.is_rx());
}

/// Cyclic distance from a to b walking forward (a -> b) in a ring of `m`.
std::uint16_t forward_dist(std::uint16_t a, std::uint16_t b, std::uint16_t m) {
  return static_cast<std::uint16_t>((b + m - a) % m);
}

/// True if any element of `tx` lies strictly between a and b cyclically.
bool tx_between(const std::vector<std::uint16_t>& tx, std::uint16_t a, std::uint16_t b,
                std::uint16_t m) {
  const std::uint16_t span = forward_dist(a, b, m);
  if (span <= 1) return false;
  for (std::uint16_t t : tx) {
    const std::uint16_t d = forward_dist(a, t, m);
    if (d > 0 && d < span) return true;
  }
  return false;
}

/// Min cyclic distance from `cand` to any element of the *sorted* list `v`
/// (m when empty). The cyclically nearest element is the sorted
/// predecessor or successor, so two lookups replace a full scan — place_rx
/// runs this once per candidate per pick, which at long slotframes (the
/// fig10 sweep, l^rx dry runs) used to make placement cubic in the free
/// slot count.
std::uint16_t nearest_cyclic(const std::vector<std::uint16_t>& v, std::uint16_t cand,
                             std::uint16_t m) {
  if (v.empty()) return m;
  const auto it = std::lower_bound(v.begin(), v.end(), cand);
  const std::uint16_t next = it == v.end() ? v.front() : *it;
  const std::uint16_t prev = it == v.begin() ? v.back() : *(it - 1);
  const std::uint16_t d_next =
      std::min(forward_dist(cand, next, m), forward_dist(next, cand, m));
  const std::uint16_t d_prev =
      std::min(forward_dist(cand, prev, m), forward_dist(prev, cand, m));
  return std::min(d_prev, d_next);
}

}  // namespace

TxSlotAllocator::DataCells TxSlotAllocator::extract_data_cells(const Slotframe& sf) {
  DataCells out;
  for (const Cell& c : sf.all_cells()) {
    if (!is_data_cell(c)) continue;
    if (c.is_tx()) out.tx.push_back(c.slot_offset);
    if (c.is_rx()) {
      out.rx.push_back(c.slot_offset);
      out.rx_owner.push_back(c.neighbor);
    }
  }
  std::sort(out.tx.begin(), out.tx.end());
  // rx and rx_owner sorted together.
  std::vector<std::size_t> idx(out.rx.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(),
            [&](std::size_t a, std::size_t b) { return out.rx[a] < out.rx[b]; });
  DataCells sorted;
  sorted.tx = out.tx;
  for (std::size_t i : idx) {
    sorted.rx.push_back(out.rx[i]);
    sorted.rx_owner.push_back(out.rx_owner[i]);
  }
  return sorted;
}

bool TxSlotAllocator::placement_valid(const std::vector<std::uint16_t>& tx,
                                      const std::vector<std::uint16_t>& rx,
                                      std::uint16_t cand, std::uint16_t length) {
  if (rx.empty()) return !tx.empty();
  // Cyclic neighbors of cand among the (sorted) existing rx offsets.
  const auto it = std::lower_bound(rx.begin(), rx.end(), cand);
  const std::uint16_t next = it == rx.end() ? rx.front() : *it;
  const std::uint16_t prev = it == rx.begin() ? rx.back() : *(it - 1);
  return tx_between(tx, prev, cand, length) && tx_between(tx, cand, next, length);
}

int TxSlotAllocator::grantable_rx(const Slotframe& sf, const SlotframeLayout& layout,
                                  bool is_root, const PlacementRules& rules) {
  if (is_root || (!rules.tx_margin && !rules.interleave)) {
    // No rule constrains the root (it is the sink): every free negotiable
    // offset is grantable, so skip the greedy dry run entirely.
    int free = 0;
    for (std::uint16_t s : layout.negotiable_offsets())
      if (!sf.slot_in_use(s)) ++free;
    return free;
  }
  // Dry-run placement for a hypothetical child; the count is identical for
  // every requester since the rules constrain offsets, not identities.
  const auto placed = place_rx(sf, layout, kNoNode, std::numeric_limits<int>::max() / 2,
                               is_root, nullptr, rules);
  return static_cast<int>(placed.size());
}

std::vector<std::uint16_t> TxSlotAllocator::place_rx(
    const Slotframe& sf, const SlotframeLayout& layout, NodeId child, int count,
    bool is_root, const std::vector<std::uint16_t>* allowed,
    const PlacementRules& rules) {
  std::vector<std::uint16_t> chosen;
  if (count <= 0) return chosen;

  DataCells cells = extract_data_cells(sf);
  // Free negotiable offsets (optionally intersected with the requester's
  // candidate list so the slot is free on both sides).
  std::vector<std::uint16_t> free;
  for (std::uint16_t s : layout.negotiable_offsets()) {
    if (sf.slot_in_use(s)) continue;
    if (allowed != nullptr &&
        std::find(allowed->begin(), allowed->end(), s) == allowed->end())
      continue;
    free.push_back(s);
  }

  const std::uint16_t m = sf.length();

  // Rule (a) budget: after granting g cells, #Tx > #Rx must still hold.
  int budget = count;
  if (!is_root && rules.tx_margin) {
    const int margin = static_cast<int>(cells.tx.size()) -
                       static_cast<int>(cells.rx.size()) - 1;
    budget = std::min(budget, std::max(0, margin));
  }

  // Sorted offsets of `child`'s existing Rx cells (fairness rule c below);
  // cells.rx is sorted, so the filtered view is too.
  std::vector<std::uint16_t> own;
  for (std::size_t i = 0; i < cells.rx.size(); ++i)
    if (cells.rx_owner[i] == child) own.push_back(cells.rx[i]);

  while (static_cast<int>(chosen.size()) < budget && !free.empty()) {
    std::uint16_t best = 0;
    long best_score = std::numeric_limits<long>::min();
    bool found = false;
    for (std::uint16_t cand : free) {
      if (!is_root && rules.interleave && !placement_valid(cells.tx, cells.rx, cand, m))
        continue;
      // Fairness scoring (rule c): prefer offsets whose cyclically nearest
      // Rx cells belong to other children, and spread a child's own cells.
      long score = 4L * nearest_cyclic(own, cand, m) + nearest_cyclic(cells.rx, cand, m);
      score -= cand / 4;  // mild bias toward early offsets (lower latency)
      if (score > best_score) {
        best_score = score;
        best = cand;
        found = true;
      }
    }
    if (!found) break;
    chosen.push_back(best);
    // Keep rx sorted together with owners for the validity checks.
    const auto pos = std::lower_bound(cells.rx.begin(), cells.rx.end(), best);
    cells.rx_owner.insert(cells.rx_owner.begin() + (pos - cells.rx.begin()), child);
    cells.rx.insert(pos, best);
    own.insert(std::lower_bound(own.begin(), own.end(), best), best);
    free.erase(std::find(free.begin(), free.end(), best));
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

std::optional<std::uint16_t> TxSlotAllocator::place_free(
    const Slotframe& sf, const SlotframeLayout& layout,
    const std::vector<std::uint16_t>* allowed) {
  for (std::uint16_t s : layout.negotiable_offsets()) {
    if (sf.slot_in_use(s)) continue;
    if (allowed != nullptr &&
        std::find(allowed->begin(), allowed->end(), s) == allowed->end())
      continue;
    return s;
  }
  return std::nullopt;
}

bool TxSlotAllocator::tx_exceeds_rx(const Slotframe& sf) {
  const DataCells cells = extract_data_cells(sf);
  if (cells.rx.empty()) return true;
  return cells.tx.size() > cells.rx.size();
}

bool TxSlotAllocator::rx_interleaved(const Slotframe& sf) {
  const DataCells cells = extract_data_cells(sf);
  return lists_interleaved(cells.tx, cells.rx, sf.length());
}

bool TxSlotAllocator::lists_interleaved(const std::vector<std::uint16_t>& tx,
                                        const std::vector<std::uint16_t>& rx,
                                        std::uint16_t length) {
  if (rx.size() < 2) return true;
  std::vector<std::uint16_t> sorted_rx = rx;
  std::sort(sorted_rx.begin(), sorted_rx.end());
  for (std::size_t i = 0; i < sorted_rx.size(); ++i) {
    const std::uint16_t a = sorted_rx[i];
    const std::uint16_t b = sorted_rx[(i + 1) % sorted_rx.size()];
    if (!tx_between(tx, a, b, length)) return false;
  }
  return true;
}

}  // namespace gttsch
