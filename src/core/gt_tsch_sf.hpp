// GT-TSCH: the paper's distributed scheduling function.
//
// Composition of the pieces from Sections III-VII:
//   * slotframe layout (broadcast / shared blocks; Section IV),
//   * channel allocation via EB piggyback + 6P ASK-CHANNEL (Section III),
//   * dedicated Unicast-6P cells per link (Section IV rule 2),
//   * Unicast-Data placement under the Section V rules (parent side),
//   * periodic load balancing (Eq 1) choosing ADD counts by the game
//     solution (Eq 15) — Section VI/VII.
//
// Bootstrap of a non-root node, once RPL picks a parent:
//   WaitChannel --(parent EB seen)--> AskChannel --(6P ASK-CHANNEL)-->
//   AddSixp --(6P ADD of the two 6P cells)--> Operational (monitor runs).
#pragma once

#include <algorithm>
#include <map>
#include <optional>
#include <vector>

#include "core/channel_alloc.hpp"
#include "core/load_balancer.hpp"
#include "core/slotframe_layout.hpp"
#include "core/tx_alloc.hpp"
#include "mac/tsch_mac.hpp"
#include "net/rpl.hpp"
#include "sim/timer.hpp"
#include "sixp/sf.hpp"
#include "sixp/sixp.hpp"

namespace gttsch {

struct GtTschConfig {
  SlotframeLayoutConfig layout;          ///< m, k, shared slots
  ChannelOffset broadcast_offset = 0;    ///< f_bcast
  std::uint16_t sixp_cells_per_link = 2; ///< Section IV rule 2
  LoadBalancerConfig load_balancer;
  double queue_max = 16.0;  ///< Q_Max of the queue cost (Eq 7)
  PlacementRules placement_rules;  ///< Section V rules (ablation toggles)
  /// Reclaim a child's cells when nothing was heard from it for this long
  /// (covers CLEAR messages lost during re-parenting). 0 disables.
  TimeUs child_timeout = 120000000;
};

class GtTschSf final : public SchedulingFunction, public SixpSfCallbacks {
 public:
  GtTschSf(Simulator& sim, TschMac& mac, RplAgent& rpl, SixpAgent& sixp, EtxEstimator& etx,
           GtTschConfig config, Rng rng);

  // SchedulingFunction:
  const char* name() const override { return "gt-tsch"; }
  void start(bool is_root) override;
  void on_associated() override;
  void on_frame(const Frame& frame) override;
  void on_parent_changed(NodeId old_parent, NodeId new_parent) override;
  void on_local_packet_generated() override { ++generated_since_tick_; }
  std::uint16_t advertised_free_rx() override;
  std::optional<EbPayload> eb_info() override;

  bool operational() const override { return stage_ == Stage::kOperational; }
  int dedicated_tx_cells() const override { return allocated_tx_cells(); }
  int dedicated_rx_cells() const override { return allocated_rx_cells(); }
  /// Eq 1's l^tx-min: the game solution's current per-node demand
  /// (clamped: the balancer's -1 "not yet solved" sentinel reads as 0).
  double demand_estimate() const override {
    return balancer_.l_tx_min() > 0 ? static_cast<double>(balancer_.l_tx_min()) : 0.0;
  }

  // SixpSfCallbacks:
  SixpPayload sixp_handle_request(NodeId peer, const SixpPayload& request) override;
  void sixp_transaction_done(NodeId peer, SixpCommand command, bool timed_out,
                             const SixpPayload& response) override;

  // Introspection (tests, reports):
  enum class Stage { kIdle, kWaitChannel, kAskChannel, kAddSixp, kOperational };
  Stage stage() const { return stage_; }
  ChannelOffset family_channel() const { return f_own_family_; }
  ChannelOffset channel_to_parent() const { return f_to_parent_; }
  unsigned level() const { return level_; }
  int allocated_tx_cells() const;
  int allocated_rx_cells() const;
  std::size_t child_count() const { return children_.size(); }
  const LoadBalancer& load_balancer() const { return balancer_; }
  const SlotframeLayout& layout() const { return layout_; }

 private:
  struct ChildState {
    ChannelOffset family_channel = kNoChannel;  ///< f_{child,cs_child}
    int granted_rx = 0;     ///< data Rx cells currently granted
    int demanded = 0;       ///< child's latest requested total (l^tx_cs share)
    bool sixp_cells = false;
    TimeUs last_heard = 0;  ///< for inactivity garbage collection
  };

  Slotframe& own_slotframe();
  std::vector<Cell> free_candidate_cells();
  void install_base_cells();
  void install_family_shared_cells(unsigned parent_level, ChannelOffset channel,
                                   bool as_parent);
  /// Drop and re-create all family shared cells from current state
  /// (f_to_parent_, f_own_family_, level_); keeps re-parenting and level
  /// changes from leaving stale cells in the wrong parity block.
  void reinstall_shared_cells();
  void remove_cells_with(NodeId peer);
  void begin_bootstrap();
  void continue_bootstrap();
  void monitor_tick();
  int children_demand() const;
  SixpPayload handle_ask_channel(NodeId peer);
  SixpPayload handle_add(NodeId peer, const SixpPayload& request);
  SixpPayload handle_delete(NodeId peer, const SixpPayload& request);
  void handle_clear(NodeId peer);

  Simulator& sim_;
  TschMac& mac_;
  RplAgent& rpl_;
  SixpAgent& sixp_;
  EtxEstimator& etx_;
  GtTschConfig config_;
  Rng rng_;
  SlotframeLayout layout_;
  ChannelAllocator channels_;
  LoadBalancer balancer_;

  bool is_root_ = false;
  Stage stage_ = Stage::kIdle;
  unsigned level_ = 0;  ///< DAG level (root = 0); set during bootstrap

  ChannelOffset f_to_parent_ = kNoChannel;   ///< f_{i,p_i}
  ChannelOffset f_own_family_ = kNoChannel;  ///< f_{i,cs_i}

  /// Family channels + levels learned from neighbors' EBs.
  struct NeighborInfo {
    ChannelOffset family_channel = kNoChannel;
    std::uint8_t level = 0;
  };
  std::map<NodeId, NeighborInfo> neighbor_info_;

  std::map<NodeId, ChildState> children_;
  /// Granted cells we could not install (slot taken while the ADD was in
  /// flight); returned to the parent via DELETE at the next monitor tick.
  std::vector<Cell> conflicted_cells_;
  PeriodicTimer monitor_;
  int generated_since_tick_ = 0;
  /// Parent's free Rx capacity, refreshed from DIOs and 6P responses.
  std::uint16_t parent_free_rx_cache_ = 0;
  std::uint16_t last_advertised_rx_ = 0;
  int probe_counter_ = 0;
  /// Memoized grantable_rx result, keyed on the schedule's mutation
  /// counter: advertised_free_rx runs on every DIO, 6P response and
  /// monitor tick, but its input (the slotframe content) only changes
  /// when the schedule version moves.
  std::uint64_t grantable_cache_version_ = 0;
  bool grantable_cache_valid_ = false;
  std::uint16_t grantable_cache_ = 0;
};

}  // namespace gttsch
