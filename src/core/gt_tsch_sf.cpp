#include "core/gt_tsch_sf.hpp"

#include <algorithm>

#include "sim/log.hpp"
#include "sixp/sf_registry.hpp"
#include "util/check.hpp"

namespace gttsch {

namespace {
constexpr std::uint16_t kSlotframeHandle = 0;
/// With l^rx cached at 0, probe the parent with a minimal ADD this often
/// (in monitor ticks) so a stale advertisement cannot deadlock a child.
constexpr int kProbeInterval = 8;
}  // namespace

GtTschSf::GtTschSf(Simulator& sim, TschMac& mac, RplAgent& rpl, SixpAgent& sixp,
                   EtxEstimator& etx, GtTschConfig config, Rng rng)
    : sim_(sim),
      mac_(mac),
      rpl_(rpl),
      sixp_(sixp),
      etx_(etx),
      config_(config),
      rng_(rng),
      layout_(config.layout),
      channels_(mac.config().hopping.num_offsets(), config.broadcast_offset),
      balancer_(config.load_balancer),
      monitor_(sim) {
  sixp_.set_callbacks(this);
}

Slotframe& GtTschSf::own_slotframe() {
  Slotframe* sf = mac_.schedule().get(kSlotframeHandle);
  GTTSCH_CHECK(sf != nullptr);
  return *sf;
}

void GtTschSf::start(bool is_root) { is_root_ = is_root; }

void GtTschSf::on_associated() {
  install_base_cells();
  if (is_root_) {
    f_own_family_ = channels_.pick_root_family_channel(rng_);
    level_ = 0;
    install_family_shared_cells(level_, f_own_family_, /*as_parent=*/true);
    stage_ = Stage::kOperational;
  } else {
    stage_ = Stage::kWaitChannel;
  }
  const TimeUs period = mac_.slotframe_duration(layout_.length());
  monitor_.start(period, period, [this] { monitor_tick(); });
}

void GtTschSf::install_base_cells() {
  if (mac_.schedule().get(kSlotframeHandle) == nullptr)
    mac_.schedule().add_slotframe(kSlotframeHandle, layout_.length());
  Slotframe& sf = own_slotframe();
  for (std::uint16_t offset : layout_.broadcast_offsets()) {
    Cell c;
    c.slot_offset = offset;
    c.channel_offset = config_.broadcast_offset;
    c.options = kCellTx | kCellRx | kCellShared;
    c.neighbor = kBroadcastId;
    sf.add(c);
  }
}

void GtTschSf::install_family_shared_cells(unsigned parent_level, ChannelOffset channel,
                                           bool as_parent) {
  (void)as_parent;  // both roles install identical Tx|Rx|Shared cells
  Slotframe& sf = own_slotframe();
  for (std::uint16_t offset : layout_.shared_offsets(parent_level)) {
    Cell c;
    c.slot_offset = offset;
    c.channel_offset = channel;
    c.options = kCellTx | kCellRx | kCellShared;
    c.neighbor = kBroadcastId;
    sf.add(c);
  }
}

void GtTschSf::reinstall_shared_cells() {
  Slotframe& sf = own_slotframe();
  const ChannelOffset bcast = config_.broadcast_offset;
  sf.remove_if([bcast](const Cell& c) {
    return c.is_shared() && c.neighbor == kBroadcastId && c.channel_offset != bcast;
  });
  if (!is_root_ && f_to_parent_ != kNoChannel && level_ > 0)
    install_family_shared_cells(level_ - 1, f_to_parent_, /*as_parent=*/false);
  if (f_own_family_ != kNoChannel)
    install_family_shared_cells(level_, f_own_family_, /*as_parent=*/true);
}

void GtTschSf::remove_cells_with(NodeId peer) {
  if (mac_.schedule().get(kSlotframeHandle) == nullptr) return;
  own_slotframe().remove_if([peer](const Cell& c) { return c.neighbor == peer; });
}

void GtTschSf::on_frame(const Frame& frame) {
  // Any traffic from a registered child refreshes its liveness.
  const auto child_it = children_.find(frame.src);
  if (child_it != children_.end()) child_it->second.last_heard = sim_.now();

  if (frame.type == FrameType::kEb) {
    const EbPayload& eb = frame.as<EbPayload>();
    if (!eb.has_family_channel) return;
    neighbor_info_[frame.src] = NeighborInfo{eb.family_channel, eb.join_priority};
    if (stage_ == Stage::kWaitChannel && frame.src == rpl_.parent()) {
      begin_bootstrap();
    } else if (stage_ == Stage::kOperational && !is_root_ && frame.src == rpl_.parent() &&
               eb.family_channel != f_to_parent_) {
      // The parent migrated its family channel; rejoin its family.
      GTTSCH_LOG_INFO("gt-tsch", "node %u: parent family channel moved %u->%u", mac_.id(),
                      f_to_parent_, eb.family_channel);
      sixp_.abort_peer(frame.src);
      Slotframe& sf = own_slotframe();
      const ChannelOffset stale = f_to_parent_;
      sf.remove_if([&](const Cell& c) {
        return c.neighbor == frame.src ||
               (c.is_shared() && c.neighbor == kBroadcastId && c.channel_offset == stale);
      });
      f_to_parent_ = kNoChannel;
      stage_ = Stage::kWaitChannel;
      begin_bootstrap();
    }
    return;
  }
  if (frame.type == FrameType::kDio && frame.src == rpl_.parent()) {
    parent_free_rx_cache_ = frame.as<DioPayload>().free_rx_cells;
  }
}

void GtTschSf::on_parent_changed(NodeId old_parent, NodeId new_parent) {
  if (is_root_) return;
  if (old_parent != kNoNode) {
    sixp_.abort_peer(old_parent);
    // Best-effort CLEAR so the old parent releases our cells promptly.
    SixpPayload clear;
    clear.command = SixpCommand::kClear;
    sixp_.request(old_parent, clear);
    Slotframe& sf = own_slotframe();
    const ChannelOffset stale = f_to_parent_;
    sf.remove_if([&](const Cell& c) {
      return c.neighbor == old_parent ||
             (stale != kNoChannel && c.is_shared() && c.neighbor == kBroadcastId &&
              c.channel_offset == stale && c.channel_offset != f_own_family_);
    });
  }
  f_to_parent_ = kNoChannel;
  parent_free_rx_cache_ = 0;
  stage_ = Stage::kWaitChannel;
  if (new_parent != kNoNode) begin_bootstrap();
}

void GtTschSf::begin_bootstrap() {
  if (stage_ != Stage::kWaitChannel) return;
  const NodeId parent = rpl_.parent();
  if (parent == kNoNode) return;
  const auto it = neighbor_info_.find(parent);
  if (it == neighbor_info_.end() || it->second.family_channel == kNoChannel)
    return;  // wait for the parent's EB
  f_to_parent_ = it->second.family_channel;
  level_ = static_cast<unsigned>(it->second.level) + 1;
  reinstall_shared_cells();
  stage_ = Stage::kAskChannel;
  continue_bootstrap();
}

void GtTschSf::continue_bootstrap() {
  const NodeId parent = rpl_.parent();
  if (parent == kNoNode || is_root_) return;
  switch (stage_) {
    case Stage::kWaitChannel:
      begin_bootstrap();
      break;
    case Stage::kAskChannel: {
      if (sixp_.busy_with(parent)) return;
      SixpPayload ask;
      ask.command = SixpCommand::kAskChannel;
      sixp_.request(parent, ask);
      break;
    }
    case Stage::kAddSixp: {
      if (sixp_.busy_with(parent)) return;
      SixpPayload add;
      add.command = SixpCommand::kAdd;
      add.num_cells = static_cast<std::uint8_t>(config_.sixp_cells_per_link);
      add.cell_options = kCellSixp;
      add.cell_list = free_candidate_cells();
      sixp_.request(parent, add);
      break;
    }
    default:
      break;
  }
}

int GtTschSf::children_demand() const {
  int total = 0;
  for (const auto& [_, child] : children_) total += child.demanded;
  return total;
}

int GtTschSf::allocated_tx_cells() const {
  const Slotframe* sf = mac_.schedule().get(kSlotframeHandle);
  if (sf == nullptr) return 0;
  return static_cast<int>(TxSlotAllocator::extract_data_cells(*sf).tx.size());
}

int GtTschSf::allocated_rx_cells() const {
  const Slotframe* sf = mac_.schedule().get(kSlotframeHandle);
  if (sf == nullptr) return 0;
  return static_cast<int>(TxSlotAllocator::extract_data_cells(*sf).rx.size());
}

std::uint16_t GtTschSf::advertised_free_rx() {
  const Slotframe* sf = mac_.schedule().get(kSlotframeHandle);
  if (sf == nullptr || stage_ != Stage::kOperational) return 0;
  // grantable_rx scans the slotframe; memoize on the schedule version so
  // the many callers between schedule mutations (DIOs, 6P responses,
  // monitor ticks) pay for the scan once.
  const std::uint64_t version = mac_.schedule().version();
  if (grantable_cache_valid_ && grantable_cache_version_ == version)
    return grantable_cache_;
  const int grantable =
      TxSlotAllocator::grantable_rx(*sf, layout_, is_root_, config_.placement_rules);
  grantable_cache_ = static_cast<std::uint16_t>(std::clamp(grantable, 0, 0xFFFF));
  grantable_cache_version_ = version;
  grantable_cache_valid_ = true;
  return grantable_cache_;
}

std::optional<EbPayload> GtTschSf::eb_info() {
  if (stage_ != Stage::kOperational || f_own_family_ == kNoChannel) return std::nullopt;
  if (!is_root_ && !rpl_.joined()) return std::nullopt;
  EbPayload eb;
  eb.join_priority = static_cast<std::uint8_t>(level_);
  eb.slotframe_length = layout_.length();
  eb.has_family_channel = true;
  eb.family_channel = f_own_family_;
  eb.dodag_root = rpl_.dodag_root();
  return eb;
}

void GtTschSf::monitor_tick() {
  if (!mac_.associated()) return;

  // Reclaim cells of children that went silent (lost CLEAR after a parent
  // switch, or a dead node).
  if (config_.child_timeout > 0) {
    for (auto it = children_.begin(); it != children_.end();) {
      if (it->second.last_heard > 0 &&
          sim_.now() - it->second.last_heard > config_.child_timeout) {
        const NodeId gone = it->first;
        ++it;  // handle_clear erases from children_
        GTTSCH_LOG_INFO("gt-tsch", "node %u: reclaiming cells of silent child %u",
                        mac_.id(), gone);
        handle_clear(gone);
      } else {
        ++it;
      }
    }
  }

  // Keep the advertised l^rx fresh: a 0 <-> nonzero flip matters to
  // children, so nudge the DIO trickle.
  const std::uint16_t adv = advertised_free_rx();
  if ((adv == 0) != (last_advertised_rx_ == 0)) rpl_.notify_metric_changed();
  last_advertised_rx_ = adv;

  // Return cells we refused during a stale-candidate conflict (must run in
  // every stage: a conflicted 6P pair would otherwise block the bootstrap).
  if (!conflicted_cells_.empty() && !is_root_ && rpl_.parent() != kNoNode &&
      !sixp_.busy_with(rpl_.parent())) {
    SixpPayload del;
    del.command = SixpCommand::kDelete;
    // The CellList must fit the 127-byte 6P frame; heavy churn can pile up
    // more conflicted cells than that, so flush in chunks — the remainder
    // goes out on later ticks.
    const std::size_t chunk =
        std::min(conflicted_cells_.size(), kMaxSixpCellListCells);
    del.num_cells = static_cast<std::uint8_t>(chunk);
    del.cell_list.assign(conflicted_cells_.begin(),
                         conflicted_cells_.begin() + static_cast<std::ptrdiff_t>(chunk));
    conflicted_cells_.erase(conflicted_cells_.begin(),
                            conflicted_cells_.begin() + static_cast<std::ptrdiff_t>(chunk));
    sixp_.request(rpl_.parent(), del);
    generated_since_tick_ = 0;
    return;  // one transaction per tick
  }

  if (stage_ != Stage::kOperational) {
    generated_since_tick_ = 0;
    continue_bootstrap();
    return;
  }
  if (is_root_) {
    generated_since_tick_ = 0;
    return;
  }
  const NodeId parent = rpl_.parent();
  if (parent == kNoNode) return;

  LoadBalancer::Inputs in;
  in.generated_since_last_tick = generated_since_tick_;
  generated_since_tick_ = 0;
  in.tick_period = mac_.slotframe_duration(layout_.length());
  in.slotframe_duration = in.tick_period;
  in.children_demand = children_demand();
  in.allocated_tx = allocated_tx_cells();
  in.l_rx_parent = std::max<int>(parent_free_rx_cache_, rpl_.parent_free_rx());
  in.queue_length = mac_.data_queue_length();
  in.rank = rpl_.rank();
  in.rank_min = rpl_.root_rank();
  in.min_step_of_rank = rpl_.min_hop_rank_increase();
  in.etx = etx_.etx(parent);
  in.queue_max = config_.queue_max;

  // Stale-advertisement probe: occasionally ask even when l^rx reads 0.
  if (in.l_rx_parent <= 0) {
    ++probe_counter_;
    if (probe_counter_ >= kProbeInterval) {
      probe_counter_ = 0;
      in.l_rx_parent = 1;
    }
  } else {
    probe_counter_ = 0;
  }

  const LoadBalancer::Decision d = balancer_.tick(in);
  if (d.action == LoadBalancer::Decision::Action::kAdd && !sixp_.busy_with(parent)) {
    SixpPayload add;
    add.command = SixpCommand::kAdd;
    add.num_cells = static_cast<std::uint8_t>(std::clamp(d.count, 1, 255));
    add.cell_options = kCellTx;
    add.cell_list = free_candidate_cells();
    sixp_.request(parent, add);
  } else if (d.action == LoadBalancer::Decision::Action::kDelete &&
             !sixp_.busy_with(parent)) {
    // Offer Tx data cells for removal, highest offsets first, but only
    // where the Section V invariants survive the deletion (a removed Tx
    // cell must not leave two Rx cells un-interleaved).
    const Slotframe& sf = own_slotframe();
    auto cells = TxSlotAllocator::extract_data_cells(sf);
    std::vector<Cell> candidates;
    for (const Cell& c : sf.all_cells()) {
      if (c.is_tx() && !c.is_sixp() && !c.is_shared() && c.neighbor == parent)
        candidates.push_back(c);
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Cell& a, const Cell& b) { return a.slot_offset > b.slot_offset; });
    std::vector<Cell> chosen;
    std::vector<std::uint16_t> remaining_tx = cells.tx;
    for (const Cell& cand : candidates) {
      if (static_cast<int>(chosen.size()) >= d.count) break;
      if (chosen.size() >= kMaxSixpCellListCells) break;  // 127-byte frame cap
      std::vector<std::uint16_t> trial = remaining_tx;
      std::erase(trial, cand.slot_offset);
      const bool margin_ok = trial.size() > cells.rx.size() || cells.rx.empty();
      if (!margin_ok) continue;
      if (!TxSlotAllocator::lists_interleaved(trial, cells.rx, sf.length())) continue;
      chosen.push_back(cand);
      remaining_tx = std::move(trial);
    }
    if (!chosen.empty()) {
      SixpPayload del;
      del.command = SixpCommand::kDelete;
      del.num_cells = static_cast<std::uint8_t>(chosen.size());
      del.cell_list = chosen;
      sixp_.request(parent, del);
    }
  }
}

// ---------------------------------------------------------------------------
// Parent-side 6P handling.
// ---------------------------------------------------------------------------

SixpPayload GtTschSf::sixp_handle_request(NodeId peer, const SixpPayload& request) {
  const auto child_it = children_.find(peer);
  if (child_it != children_.end()) child_it->second.last_heard = sim_.now();
  SixpPayload response;
  switch (request.command) {
    case SixpCommand::kAskChannel:
      response = handle_ask_channel(peer);
      break;
    case SixpCommand::kAdd:
      response = handle_add(peer, request);
      break;
    case SixpCommand::kDelete:
      response = handle_delete(peer, request);
      break;
    case SixpCommand::kClear:
      handle_clear(peer);
      response.code = SixpReturnCode::kSuccess;
      break;
  }
  response.free_rx = advertised_free_rx();
  return response;
}

SixpPayload GtTschSf::handle_ask_channel(NodeId peer) {
  SixpPayload r;
  if (f_own_family_ == kNoChannel || stage_ != Stage::kOperational) {
    r.code = SixpReturnCode::kErrBusy;
    return r;
  }
  ChildState& child = children_[peer];
  child.last_heard = sim_.now();
  if (child.family_channel == kNoChannel) {
    if (children_.size() > channels_.max_children()) {
      children_.erase(peer);
      r.code = SixpReturnCode::kErrNoResource;
      return r;
    }
    std::vector<ChannelOffset> siblings;
    for (const auto& [id, c] : children_)
      if (id != peer && c.family_channel != kNoChannel) siblings.push_back(c.family_channel);
    const auto assigned =
        channels_.assign_child_family_channel(f_to_parent_, f_own_family_, siblings);
    if (!assigned.has_value()) {
      children_.erase(peer);
      r.code = SixpReturnCode::kErrNoResource;
      return r;
    }
    child.family_channel = *assigned;
  }
  r.code = SixpReturnCode::kSuccess;
  r.channel_offset = child.family_channel;
  r.level = static_cast<std::uint8_t>(level_ + 1);
  return r;
}

std::vector<Cell> GtTschSf::free_candidate_cells() {
  // Our free negotiable offsets, proposed to the responder so granted
  // slots are free on both sides (RFC 8480 CellList).
  std::vector<Cell> out;
  const Slotframe& sf = own_slotframe();
  for (std::uint16_t s : layout_.negotiable_offsets()) {
    if (sf.slot_in_use(s)) continue;
    // Long slotframes can have hundreds of free offsets; the CellList must
    // fit the 127-byte 6P frame or its airtime outgrows the timeslot.
    if (out.size() >= kMaxSixpCellListCells) break;
    Cell c;
    c.slot_offset = s;
    c.channel_offset = f_to_parent_;
    c.options = kCellTx;
    c.neighbor = kNoNode;
    out.push_back(c);
  }
  return out;
}

SixpPayload GtTschSf::handle_add(NodeId peer, const SixpPayload& request) {
  SixpPayload r;
  Slotframe& sf = own_slotframe();
  ChildState& child = children_[peer];

  std::vector<std::uint16_t> allowed;
  allowed.reserve(request.cell_list.size());
  for (const Cell& c : request.cell_list) allowed.push_back(c.slot_offset);
  const std::vector<std::uint16_t>* allowed_ptr =
      request.cell_list.empty() ? nullptr : &allowed;

  if (request.cell_options & kCellSixp) {
    if (child.sixp_cells) {
      // Idempotent: re-grant the existing pair.
      for (const Cell& c : sf.all_cells()) {
        if (c.neighbor == peer && c.is_sixp()) {
          Cell mirrored = c;  // flip back to the child's perspective
          mirrored.options = static_cast<std::uint8_t>(
              (c.is_rx() ? kCellTx : kCellRx) | kCellSixp);
          mirrored.neighbor = kNoNode;  // filled in by the requester
          r.cell_list.push_back(mirrored);
        }
      }
      r.num_cells = static_cast<std::uint8_t>(r.cell_list.size());
      r.code = SixpReturnCode::kSuccess;
      return r;
    }
    std::vector<std::uint16_t> remaining = allowed;
    for (int i = 0; i < request.num_cells; ++i) {
      const auto slot = TxSlotAllocator::place_free(
          sf, layout_, allowed_ptr == nullptr ? nullptr : &remaining);
      if (!slot.has_value()) break;
      std::erase(remaining, *slot);
      // First cell: child -> parent (our Rx); second: parent -> child.
      const bool child_tx = i == 0;
      Cell mine;
      mine.slot_offset = *slot;
      mine.channel_offset = f_own_family_;
      mine.options = static_cast<std::uint8_t>((child_tx ? kCellRx : kCellTx) | kCellSixp);
      mine.neighbor = peer;
      sf.add(mine);
      Cell theirs = mine;
      theirs.options = static_cast<std::uint8_t>((child_tx ? kCellTx : kCellRx) | kCellSixp);
      theirs.neighbor = kNoNode;
      r.cell_list.push_back(theirs);
    }
    child.sixp_cells = !r.cell_list.empty();
    r.num_cells = static_cast<std::uint8_t>(r.cell_list.size());
    r.code = r.cell_list.empty() ? SixpReturnCode::kErrNoResource : SixpReturnCode::kSuccess;
    return r;
  }

  // Unicast-Data ADD: register demand, then grant what the rules allow —
  // at most a response CellList's worth per transaction (127-byte frame).
  child.demanded = child.granted_rx + request.num_cells;
  const int grant_cap = std::min<int>(request.num_cells,
                                      static_cast<int>(kMaxSixpCellListCells));
  const auto offsets = TxSlotAllocator::place_rx(sf, layout_, peer, grant_cap, is_root_,
                                                 allowed_ptr, config_.placement_rules);
  for (std::uint16_t offset : offsets) {
    Cell mine;
    mine.slot_offset = offset;
    mine.channel_offset = f_own_family_;
    mine.options = kCellRx;
    mine.neighbor = peer;
    sf.add(mine);
    Cell theirs = mine;
    theirs.options = kCellTx;
    theirs.neighbor = kNoNode;
    r.cell_list.push_back(theirs);
  }
  child.granted_rx += static_cast<int>(offsets.size());
  r.num_cells = static_cast<std::uint8_t>(offsets.size());
  r.code = offsets.empty() ? SixpReturnCode::kErrNoResource : SixpReturnCode::kSuccess;
  return r;
}

SixpPayload GtTschSf::handle_delete(NodeId peer, const SixpPayload& request) {
  SixpPayload r;
  Slotframe& sf = own_slotframe();
  int removed_data = 0;
  bool removed_sixp = false;
  for (const Cell& c : request.cell_list) {
    // Cells arrive in the requester's perspective; ours are mirrored.
    const std::size_t n = sf.remove_if([&](const Cell& mine) {
      if (mine.neighbor != peer || mine.slot_offset != c.slot_offset) return false;
      if (mine.is_sixp() != c.is_sixp()) return false;
      return (c.is_tx() && mine.is_rx()) || (c.is_rx() && mine.is_tx());
    });
    if (n > 0) {
      if (c.is_sixp())
        removed_sixp = true;
      else
        ++removed_data;
      r.cell_list.push_back(c);
    }
  }
  auto it = children_.find(peer);
  if (it != children_.end()) {
    it->second.granted_rx = std::max(0, it->second.granted_rx - removed_data);
    it->second.demanded = it->second.granted_rx;
    // A surrendered 6P pair will be re-negotiated from fresh candidates.
    if (removed_sixp) it->second.sixp_cells = false;
  }
  r.num_cells = static_cast<std::uint8_t>(r.cell_list.size());
  r.code = SixpReturnCode::kSuccess;
  return r;
}

void GtTschSf::handle_clear(NodeId peer) {
  remove_cells_with(peer);
  children_.erase(peer);
}

// ---------------------------------------------------------------------------
// Child-side transaction completion.
// ---------------------------------------------------------------------------

void GtTschSf::sixp_transaction_done(NodeId peer, SixpCommand command, bool timed_out,
                                     const SixpPayload& response) {
  if (timed_out) return;  // the monitor retries stage transitions
  if (peer != rpl_.parent()) return;
  parent_free_rx_cache_ = response.free_rx;

  switch (command) {
    case SixpCommand::kAskChannel: {
      if (response.code != SixpReturnCode::kSuccess) return;
      const ChannelOffset old = f_own_family_;
      f_own_family_ = response.channel_offset;
      level_ = response.level;
      if (old != kNoChannel && old != f_own_family_) {
        // Our family moved channel: drop the old family's negotiated cells;
        // children rejoin via our next EBs.
        Slotframe& sf = own_slotframe();
        sf.remove_if([&](const Cell& c) {
          return !c.is_shared() && c.neighbor != kBroadcastId && c.channel_offset == old;
        });
        children_.clear();
      }
      // Shared cells are rebuilt from scratch: the level parity may have
      // changed even when the channel did not.
      reinstall_shared_cells();
      if (stage_ == Stage::kAskChannel) {
        stage_ = Stage::kAddSixp;
        continue_bootstrap();
      }
      return;
    }
    case SixpCommand::kAdd: {
      if (response.code != SixpReturnCode::kSuccess) return;
      Slotframe& sf = own_slotframe();
      bool installed_sixp = false;
      for (Cell c : response.cell_list) {
        c.neighbor = peer;
        // Our candidate list may have gone stale while the transaction was
        // in flight (we granted the slot to one of our own children).
        // Never double-book the radio: refuse the cell and hand it back.
        if (sf.slot_in_use(c.slot_offset)) {
          conflicted_cells_.push_back(c);
          continue;
        }
        sf.add(c);
        if (c.is_sixp()) installed_sixp = true;
      }
      if (stage_ == Stage::kAddSixp && installed_sixp) {
        stage_ = Stage::kOperational;
        GTTSCH_LOG_INFO("gt-tsch", "node %u operational (level %u, fam ch %u)", mac_.id(),
                        level_, f_own_family_);
      }
      return;
    }
    case SixpCommand::kDelete: {
      Slotframe& sf = own_slotframe();
      for (const Cell& c : response.cell_list) {
        sf.remove_if([&](const Cell& mine) {
          return mine.neighbor == peer && mine.slot_offset == c.slot_offset && mine.is_tx() &&
                 !mine.is_sixp();
        });
      }
      return;
    }
    case SixpCommand::kClear:
      return;
  }
}

void register_gt_tsch_sf(SfRegistry& registry) {
  SfRegistry::Entry entry;
  entry.key = "gt-tsch";
  entry.display_name = "GT-TSCH";
  entry.summary = "game-theoretic 6P scheduling, family channels, load balancer";
  entry.aliases = {"gt"};
  entry.factory = [](const SfContext& ctx) -> std::unique_ptr<SchedulingFunction> {
    return std::make_unique<GtTschSf>(ctx.sim, ctx.mac, ctx.rpl, ctx.sixp, ctx.etx,
                                      ctx.configs.gt, ctx.rng);
  };
  registry.add(std::move(entry));
}

}  // namespace gttsch
