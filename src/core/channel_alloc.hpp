// GT-TSCH channel allocation (Section III, Algorithm 1).
//
// Channels here are TSCH *channel offsets*; the hopping sequence maps them
// to distinct physical channels within any slot, so two cells with
// different offsets never collide in frequency. The allocator enforces the
// paper's strategies:
//   - one channel per family: all children of node i reach i on f_{i,cs_i};
//   - each node uses different channels toward its parent and children;
//   - channels are unique on any three-hop routing path (and among sibling
//     families), eliminating hidden-terminal collisions (problem 4);
//   - one reserved broadcast channel f_bcast; consequently at most
//     |F| - 3 children per node.
#pragma once

#include <optional>
#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace gttsch {

inline constexpr ChannelOffset kNoChannel = 0xFF;

class ChannelAllocator {
 public:
  /// `num_offsets` is |F| (usable channel offsets, e.g. the hopping
  /// sequence length); `broadcast_offset` is f_bcast.
  ChannelAllocator(std::size_t num_offsets, ChannelOffset broadcast_offset);

  ChannelOffset broadcast_offset() const { return broadcast_offset_; }
  std::size_t num_offsets() const { return num_offsets_; }

  /// The paper's children bound: |F| - 2 - 1.
  std::size_t max_children() const { return num_offsets_ - 3; }

  /// Root bootstrap: pick f_{root,cs} at random from F - {f_bcast}.
  ChannelOffset pick_root_family_channel(Rng& rng) const;

  /// Algorithm 1 inner loop, run at node i answering child j's
  /// ASK-CHANNEL: choose z in F - {f_bcast, f_{i,p_i}, f_{i,cs_i}} not yet
  /// assigned to a sibling. `f_to_parent` is kNoChannel at the root.
  /// Returns nullopt when every channel is taken (too many children).
  std::optional<ChannelOffset> assign_child_family_channel(
      ChannelOffset f_to_parent, ChannelOffset f_own_family,
      const std::vector<ChannelOffset>& sibling_family_channels) const;

  /// Validation helper (tests / assertions): true if the three channels on
  /// a path segment child->node->parent are pairwise distinct and distinct
  /// from f_bcast (the paper's three-hop uniqueness property).
  bool three_hop_unique(ChannelOffset f_child_family, ChannelOffset f_own_family,
                        ChannelOffset f_to_parent) const;

 private:
  std::size_t num_offsets_;
  ChannelOffset broadcast_offset_;
};

}  // namespace gttsch
