// Unicast-Data timeslot placement (Section V).
//
// The parent owns its slotframe layout: a child's Tx cells toward the
// parent are the parent's Rx cells, placed by the parent under three rules:
//   (a) the parent keeps #Tx > #Rx among its own data cells (it must drain
//       faster than it fills; vacuous at the root, which is the sink);
//   (b) at least one of its Tx cells lies between any two of its Rx cells
//       in cyclic slot order (bounds queue growth within a slotframe);
//   (c) fairness: avoid granting a child a cell cyclically adjacent to its
//       own existing Rx cells while other children hold cells too.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/slotframe_layout.hpp"
#include "mac/schedule.hpp"

namespace gttsch {

/// Rule toggles, used by the ablation bench to isolate the contribution of
/// the Section V placement rules (production default: all on).
struct PlacementRules {
  bool tx_margin = true;   ///< rule (a): #Tx > #Rx
  bool interleave = true;  ///< rule (b): a Tx between consecutive Rx
};

class TxSlotAllocator {
 public:
  /// A node's data cells, extracted from its slotframe. "Data" excludes
  /// broadcast, shared and 6P cells.
  struct DataCells {
    std::vector<std::uint16_t> tx;  ///< to the parent (sorted)
    std::vector<std::uint16_t> rx;  ///< from children (sorted)
    std::vector<NodeId> rx_owner;   ///< child per rx entry (parallel array)
  };

  static DataCells extract_data_cells(const Slotframe& sf);

  /// How many additional Rx cells this node could currently grant while
  /// honouring rules (a) and (b). This is the l^rx advertised in DIOs.
  static int grantable_rx(const Slotframe& sf, const SlotframeLayout& layout, bool is_root,
                          const PlacementRules& rules = {});

  /// Choose up to `count` slot offsets for new Rx cells granted to `child`.
  /// Returns fewer (possibly zero) offsets when the rules forbid more.
  /// `allowed`, when non-null, restricts candidates to offsets that are
  /// also free on the requester's side (RFC 8480 CellList negotiation).
  static std::vector<std::uint16_t> place_rx(const Slotframe& sf,
                                             const SlotframeLayout& layout, NodeId child,
                                             int count, bool is_root,
                                             const std::vector<std::uint16_t>* allowed = nullptr,
                                             const PlacementRules& rules = {});

  /// First free negotiable slot (for 6P signalling cells); nullopt if full.
  /// `allowed` as in place_rx.
  static std::optional<std::uint16_t> place_free(
      const Slotframe& sf, const SlotframeLayout& layout,
      const std::vector<std::uint16_t>* allowed = nullptr);

  // --- invariant checks (used by tests and debug assertions) -----------
  /// Rule (a): #data-Tx > #data-Rx (non-root with any Rx).
  static bool tx_exceeds_rx(const Slotframe& sf);
  /// Rule (b): every cyclically-consecutive Rx pair has a Tx in between.
  static bool rx_interleaved(const Slotframe& sf);
  /// Rule (b) on raw offset lists (e.g. to vet a hypothetical deletion).
  static bool lists_interleaved(const std::vector<std::uint16_t>& tx,
                                const std::vector<std::uint16_t>& rx,
                                std::uint16_t length);

 private:
  static bool placement_valid(const std::vector<std::uint16_t>& tx,
                              const std::vector<std::uint16_t>& rx, std::uint16_t cand,
                              std::uint16_t length);
};

}  // namespace gttsch
