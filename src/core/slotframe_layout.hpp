// GT-TSCH slotframe structure (Section IV): a single slotframe of length m
// partitioned into the five timeslot types. Broadcast and shared offsets
// are deterministic functions of (m, k, n_shared), so every node derives
// the same layout without signalling; 6P and unicast-data cells are then
// negotiated out of the remaining pool.
//
// Shared cells are per-family (a parent and its children) and separated by
// the parity of the parent's DAG level so that a node's two families (its
// parent's and its own) never contend for the same slot.
#pragma once

#include <cstdint>
#include <vector>

namespace gttsch {

struct SlotframeLayoutConfig {
  std::uint16_t length = 32;      ///< m, slotframe size (Table II: 32)
  std::uint16_t broadcast_slots = 4;  ///< k
  std::uint16_t shared_slots = 3;     ///< per family: ceil(max_children / 2)
};

class SlotframeLayout {
 public:
  explicit SlotframeLayout(SlotframeLayoutConfig config);

  std::uint16_t length() const { return config_.length; }

  /// Broadcast slot offsets: {x | x % floor(m/k) == 0}, first k of them,
  /// uniformly spreading control traffic over the slotframe (Section IV
  /// rule 1; e.g. m=20, k=5 -> {0,4,8,12,16}).
  const std::vector<std::uint16_t>& broadcast_offsets() const { return broadcast_; }

  /// Shared cells of a family whose parent sits at DAG level `level`
  /// (root = 0). Even levels use the last block, odd levels the one before
  /// it, so adjacent families never overlap in time.
  const std::vector<std::uint16_t>& shared_offsets(unsigned level) const {
    return level % 2 == 0 ? shared_even_ : shared_odd_;
  }

  /// Slots available for negotiated cells (Unicast-6P and Unicast-Data).
  const std::vector<std::uint16_t>& negotiable_offsets() const { return negotiable_; }

  bool is_broadcast_slot(std::uint16_t offset) const;
  bool is_shared_slot(std::uint16_t offset) const;

 private:
  SlotframeLayoutConfig config_;
  std::vector<std::uint16_t> broadcast_;
  std::vector<std::uint16_t> shared_even_;
  std::vector<std::uint16_t> shared_odd_;
  std::vector<std::uint16_t> negotiable_;
};

}  // namespace gttsch
