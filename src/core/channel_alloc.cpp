#include "core/channel_alloc.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace gttsch {

ChannelAllocator::ChannelAllocator(std::size_t num_offsets, ChannelOffset broadcast_offset)
    : num_offsets_(num_offsets), broadcast_offset_(broadcast_offset) {
  GTTSCH_CHECK(num_offsets >= 4);  // f_bcast + parent + own + >=1 child family
  GTTSCH_CHECK(broadcast_offset < num_offsets);
}

ChannelOffset ChannelAllocator::pick_root_family_channel(Rng& rng) const {
  // Uniform over F - {f_bcast}.
  const auto idx = rng.uniform(num_offsets_ - 1);
  ChannelOffset ch = static_cast<ChannelOffset>(idx);
  if (ch >= broadcast_offset_) ch = static_cast<ChannelOffset>(ch + 1);
  return ch;
}

std::optional<ChannelOffset> ChannelAllocator::assign_child_family_channel(
    ChannelOffset f_to_parent, ChannelOffset f_own_family,
    const std::vector<ChannelOffset>& sibling_family_channels) const {
  for (std::size_t z = 0; z < num_offsets_; ++z) {
    const auto ch = static_cast<ChannelOffset>(z);
    if (ch == broadcast_offset_ || ch == f_own_family) continue;
    if (f_to_parent != kNoChannel && ch == f_to_parent) continue;
    if (std::find(sibling_family_channels.begin(), sibling_family_channels.end(), ch) !=
        sibling_family_channels.end())
      continue;
    return ch;
  }
  return std::nullopt;
}

bool ChannelAllocator::three_hop_unique(ChannelOffset f_child_family,
                                        ChannelOffset f_own_family,
                                        ChannelOffset f_to_parent) const {
  if (f_child_family == broadcast_offset_ || f_own_family == broadcast_offset_) return false;
  if (f_child_family == f_own_family) return false;
  if (f_to_parent == kNoChannel) return true;  // node is the root
  if (f_to_parent == broadcast_offset_) return false;
  return f_child_family != f_to_parent && f_own_family != f_to_parent;
}

}  // namespace gttsch
