#include "phy/wire.hpp"

#include "util/check.hpp"

namespace gttsch {

namespace {
FramePtr finish(Frame f) {
  if (f.length_bytes == 0) f.length_bytes = default_frame_length(f.type);
  return std::make_shared<const Frame>(std::move(f));
}
}  // namespace

FramePtr make_data_frame(NodeId src, NodeId dst, DataPayload p) {
  Frame f;
  f.type = FrameType::kData;
  f.src = src;
  f.dst = dst;
  f.payload = p;
  return finish(std::move(f));
}

FramePtr make_eb_frame(NodeId src, EbPayload p) {
  Frame f;
  f.type = FrameType::kEb;
  f.src = src;
  f.dst = kBroadcastId;
  f.payload = p;
  return finish(std::move(f));
}

FramePtr make_dio_frame(NodeId src, DioPayload p) {
  Frame f;
  f.type = FrameType::kDio;
  f.src = src;
  f.dst = kBroadcastId;
  f.payload = p;
  return finish(std::move(f));
}

FramePtr make_dis_frame(NodeId src) {
  Frame f;
  f.type = FrameType::kDis;
  f.src = src;
  f.dst = kBroadcastId;
  f.payload = DisPayload{};
  return finish(std::move(f));
}

FramePtr make_sixp_frame(NodeId src, NodeId dst, SixpPayload p) {
  Frame f;
  f.type = FrameType::kSixp;
  f.src = src;
  f.dst = dst;
  // A 6P frame grows with its cell list (4 bytes per encoded cell).
  // Producers chunk their CellLists to kMaxSixpCellListCells; an oversized
  // list here would outlive the timeslot in the air, so trip loudly.
  GTTSCH_CHECK(p.cell_list.size() <= kMaxSixpCellListCells);
  f.length_bytes =
      static_cast<std::uint16_t>(default_frame_length(FrameType::kSixp) + 4 * p.cell_list.size());
  f.payload = std::move(p);
  return finish(std::move(f));
}

FramePtr make_ack_frame(NodeId src, NodeId dst) {
  Frame f;
  f.type = FrameType::kAck;
  f.src = src;
  f.dst = dst;
  f.payload = AckPayload{};
  return finish(std::move(f));
}

const char* frame_type_name(FrameType type) {
  switch (type) {
    case FrameType::kData: return "DATA";
    case FrameType::kEb: return "EB";
    case FrameType::kDio: return "DIO";
    case FrameType::kDis: return "DIS";
    case FrameType::kSixp: return "6P";
    case FrameType::kAck: return "ACK";
  }
  return "?";
}

}  // namespace gttsch
