// Link-quality models: map a (sender, receiver) pair to a packet reception
// ratio, and decide whether a sender's signal can interfere at a receiver.
#pragma once

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "phy/geometry.hpp"
#include "util/types.hpp"

namespace gttsch {

/// Abstract link model. PRR is per-frame reception probability on a clean
/// channel; interference reach is typically >= communication reach.
class LinkModel {
 public:
  virtual ~LinkModel() = default;

  /// Probability that a frame from `tx` at `tx_pos` is decodable by `rx` at
  /// `rx_pos` absent interference, in [0,1].
  virtual double prr(NodeId tx, const Position& tx_pos, NodeId rx,
                     const Position& rx_pos) const = 0;

  /// True if energy from `tx` is strong enough at `rx` to corrupt a
  /// concurrent reception (even if not decodable).
  virtual bool interferes(NodeId tx, const Position& tx_pos, NodeId rx,
                          const Position& rx_pos) const = 0;

  /// Monotone change counter: must return a new (larger) value whenever
  /// prr()/interferes() may answer differently than before for identical
  /// positions. Purely geometric models are constant (0); mutable or
  /// time-varying models bump it so the Medium's pairwise link cache can
  /// invalidate itself.
  virtual std::uint64_t version() const { return 0; }

  /// Spatial locality bound: two nodes farther apart than this can neither
  /// communicate (prr() == 0) nor interfere (interferes() == false),
  /// whatever their ids. The Medium sizes its uniform-grid spatial index
  /// from it, so per-node cache refreshes touch only the grid
  /// neighborhood. Models without a geometric bound return infinity (the
  /// grid then degenerates to all-pairs per refreshed node — still never
  /// O(n^2) per move). The bound must hold for the model's *current*
  /// answers at all times; a model whose bound grows must bump version()
  /// no later than the first answer exceeding the old bound (the Medium
  /// re-reads the bound whenever version() moves).
  virtual double max_interaction_range() const;

  /// Appends the ids of every node whose links may answer differently now
  /// than they did at version `since` (a value previously returned by
  /// version()). Returns true when the list is exhaustive — the caller may
  /// then refresh only those rows/columns of a link cache; false when the
  /// model cannot attribute the change (full rebuild required). The
  /// default attributes nothing.
  virtual bool changed_nodes_since(std::uint64_t since, std::vector<NodeId>& out) const;
};

/// Cooja-UDGM-style disk: PRR = `prr_in_range` within `range`, zero outside;
/// interference extends to `range * interference_factor`.
class UnitDiskModel final : public LinkModel {
 public:
  UnitDiskModel(double range, double prr_in_range = 1.0, double interference_factor = 1.5);

  double prr(NodeId, const Position& a, NodeId, const Position& b) const override;
  bool interferes(NodeId, const Position& a, NodeId, const Position& b) const override;
  double max_interaction_range() const override;

  double range() const { return range_; }

 private:
  double range_;
  double prr_in_range_;
  double interference_range_;
};

/// Distance-graded PRR: perfect up to `full_range`, then linear decay to 0
/// at `max_range` (the classic "grey region" of low-power radios).
class DistancePrrModel final : public LinkModel {
 public:
  DistancePrrModel(double full_range, double max_range, double interference_factor = 1.5);

  double prr(NodeId, const Position& a, NodeId, const Position& b) const override;
  bool interferes(NodeId, const Position& a, NodeId, const Position& b) const override;
  double max_interaction_range() const override;

 private:
  double full_range_;
  double max_range_;
  double interference_range_;
};

/// Explicit per-link PRR table; anything not listed has PRR 0. Interference
/// follows connectivity (links with PRR > 0 interfere). For unit tests.
class MatrixLinkModel final : public LinkModel {
 public:
  void set(NodeId tx, NodeId rx, double prr, bool symmetric = true);
  void set_interference(NodeId tx, NodeId rx, bool on, bool symmetric = true);

  double prr(NodeId tx, const Position&, NodeId rx, const Position&) const override;
  bool interferes(NodeId tx, const Position&, NodeId rx, const Position&) const override;
  std::uint64_t version() const override { return version_; }
  bool changed_nodes_since(std::uint64_t since, std::vector<NodeId>& out) const override;

 private:
  std::map<std::pair<NodeId, NodeId>, double> prr_;
  std::map<std::pair<NodeId, NodeId>, bool> interference_;
  std::uint64_t version_ = 0;  ///< bumped on every set()/set_interference()
  /// One entry per version bump: the pair that mutation touched
  /// (change_log_[v] caused version v -> v+1), behind changed_nodes_since.
  std::vector<std::pair<NodeId, NodeId>> change_log_;
};

}  // namespace gttsch
