// The shared wireless medium: transports frames between radios, resolving
// per-receiver outcomes (link loss, collisions, hidden terminals).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "phy/link_model.hpp"
#include "phy/radio.hpp"
#include "phy/wire.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace gttsch {

/// Aggregate medium statistics (useful for tests and the channel-allocation
/// ablation: GT-TSCH's claim is precisely that collisions vanish).
struct MediumStats {
  std::uint64_t transmissions = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t collision_losses = 0;  ///< receiver lost frame to interference
  std::uint64_t prr_losses = 0;        ///< receiver lost frame to link quality
};

class Medium {
 public:
  Medium(Simulator& sim, std::unique_ptr<LinkModel> model, Rng rng);

  void attach(Radio* radio);
  void detach(NodeId id);

  /// Called by Radio::transmit. Takes care of completion and delivery.
  void start_transmission(Radio& sender, FramePtr frame, PhysChannel channel);

  const MediumStats& stats() const { return stats_; }
  void reset_stats() { stats_ = MediumStats{}; }

  /// Latest end time of any in-flight transmission on `channel` audible at
  /// `listener` (carrier sense). Returns 0 when the channel is clear.
  TimeUs busy_until(NodeId listener, PhysChannel channel) const;

  const LinkModel& link_model() const { return *model_; }

  /// PRR between two attached radios under the current model (testing aid).
  double link_prr(NodeId tx, NodeId rx) const;

 private:
  struct Transmission {
    std::uint64_t id;
    NodeId sender;
    FramePtr frame;
    PhysChannel channel;
    TimeUs start;
    TimeUs end;
  };

  void finish_transmission(std::uint64_t tx_id);
  bool suffers_collision(const Transmission& tx, const Radio& rx) const;

  Simulator& sim_;
  std::unique_ptr<LinkModel> model_;
  Rng rng_;
  std::map<NodeId, Radio*> radios_;
  std::vector<Transmission> in_flight_;  // includes recently-ended, pruned lazily
  std::uint64_t next_tx_id_ = 1;
  MediumStats stats_;
};

}  // namespace gttsch
