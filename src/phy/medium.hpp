// The shared wireless medium: transports frames between radios, resolving
// per-receiver outcomes (link loss, collisions, hidden terminals).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "phy/link_model.hpp"
#include "phy/radio.hpp"
#include "phy/wire.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace gttsch {

/// Aggregate medium statistics (useful for tests and the channel-allocation
/// ablation: GT-TSCH's claim is precisely that collisions vanish).
struct MediumStats {
  std::uint64_t transmissions = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t collision_losses = 0;  ///< receiver lost frame to interference
  std::uint64_t prr_losses = 0;        ///< receiver lost frame to link quality
};

/// Delivery resolution is cached: the pairwise PRR/interference matrix and
/// the per-sender in-range receiver lists are compiled from the link model.
/// Invalidation is *incremental*: a moved radio (Radio::set_position) or a
/// model change the model can attribute (LinkModel::changed_nodes_since)
/// refreshes only the affected rows/columns, discovering candidates through
/// a uniform-grid spatial index sized by LinkModel::max_interaction_range()
/// — O(degree) model calls per move instead of the full O(n^2) rebuild.
/// Attach/detach (structural) and unattributable model changes still
/// rebuild from scratch. Cached answers are bit-identical to querying the
/// model directly (set_link_cache_enabled(false) is the reference mode the
/// property tests compare against).
///
/// In-flight transmissions are bucketed per physical channel, and frame
/// completions are *batched*: one drain event per (channel, end-time)
/// rendezvous resolves every frame ending at that instant in transmission
/// order, instead of one simulator event per frame.
class Medium {
 public:
  Medium(Simulator& sim, std::unique_ptr<LinkModel> model, Rng rng);

  void attach(Radio* radio);
  void detach(NodeId id);

  /// Radio position changed (mobility): marks only that radio's cache
  /// rows/columns for refresh.
  void position_changed(NodeId id);

  /// Called by Radio::transmit. Takes care of completion and delivery.
  void start_transmission(Radio& sender, FramePtr frame, PhysChannel channel);

  const MediumStats& stats() const { return stats_; }
  void reset_stats() { stats_ = MediumStats{}; }

  /// Latest end time of any in-flight transmission on `channel` audible at
  /// `listener` (carrier sense). Returns 0 when the channel is clear.
  TimeUs busy_until(NodeId listener, PhysChannel channel) const;

  const LinkModel& link_model() const { return *model_; }

  /// PRR between two attached radios under the current model (testing aid).
  double link_prr(NodeId tx, NodeId rx) const;

  /// Reference mode for the cache property tests: with the link cache off,
  /// every delivery, carrier-sense and collision check queries the model
  /// directly. Observably identical to the cached mode (same candidate
  /// order, same RNG draw discipline) — which is exactly what the tests
  /// assert, bit for bit.
  void set_link_cache_enabled(bool enabled);
  bool link_cache_enabled() const { return link_cache_enabled_; }

 private:
  struct Transmission {
    std::uint64_t id;
    NodeId sender;
    FramePtr frame;
    PhysChannel channel;
    TimeUs start;
    TimeUs end;
  };

  /// Per-channel in-flight bucket plus the end times that already have a
  /// drain event scheduled (one event per distinct end time).
  struct ChannelState {
    std::vector<Transmission> in_flight;
    std::vector<TimeUs> pending_drains;
  };

  /// One compiled link-cache entry (row-major: pairs_[tx_idx*n + rx_idx]).
  struct PairLink {
    double prr = 0.0;
    bool interferes = false;
  };

  /// Resolve every transmission on `channel` ending exactly at `end`, in
  /// transmission-id (= start) order — the batched replacement for the
  /// old one-event-per-frame completion.
  void drain_channel(PhysChannel channel, TimeUs end);
  void finish_transmission(PhysChannel channel, std::uint64_t tx_id);
  /// Resolve one candidate receiver of a finished transmission: listening
  /// filters, collision check, PRR draw, stats, delivery. Shared by the
  /// cached fast path and the model-direct fallback so the filter order
  /// and RNG-draw discipline (part of the fast-path bit-equivalence
  /// contract) cannot drift between them. `prr` <= 0 draws nothing.
  void resolve_receiver(const Transmission& tx, NodeId rid, Radio& radio, double prr);
  bool suffers_collision(const Transmission& tx, const Radio& rx) const;
  void ensure_cache() const;
  void rebuild_cache() const;
  /// Recompute row + column `idx` of the pair matrix (and the affected
  /// receiver lists) against the node's current position, touching only
  /// its grid neighborhood.
  void refresh_node(std::uint32_t idx) const;
  /// Move node `idx` to the grid cell of its current position.
  void update_grid_membership(std::uint32_t idx) const;
  /// Candidate peer indices for a node at `pos`: occupants of the 3x3
  /// grid neighborhood, or every node when the model has no spatial bound.
  void collect_candidates(const Position& pos, std::vector<std::uint32_t>& out) const;
  bool grid_active() const;
  /// Cache row index for `id`, or npos when unknown (e.g. detached).
  std::size_t cache_index(NodeId id) const;

  Simulator& sim_;
  std::unique_ptr<LinkModel> model_;
  Rng rng_;
  std::map<NodeId, Radio*> radios_;
  std::map<PhysChannel, ChannelState> channels_;
  std::uint64_t next_tx_id_ = 1;
  MediumStats stats_;
  /// Batch snapshot for drain_channel (ids of the frames ending at the
  /// drained instant); member so the steady state never allocates. Safe
  /// because drains never nest: a delivery callback can only start
  /// transmissions ending strictly later.
  std::vector<std::uint64_t> drain_scratch_;

  // --- compiled link cache (see class comment) --------------------------
  bool link_cache_enabled_ = true;
  std::uint64_t structure_version_ = 1;  ///< attach/detach counter
  mutable std::uint64_t cached_structure_version_ = 0;
  mutable std::uint64_t cached_model_version_ = 0;
  mutable bool cache_valid_ = false;
  mutable std::vector<NodeId> cache_ids_;     ///< ascending
  mutable std::vector<Radio*> cache_radios_;  ///< parallel to cache_ids_
  mutable std::vector<PairLink> cache_pairs_;
  /// Per sender index: receiver indices with prr > 0, ascending by NodeId
  /// (the delivery-loop order, so RNG draws match the uncached iteration).
  mutable std::vector<std::vector<std::uint32_t>> cache_receivers_;
  /// Radios whose position changed since the cache last refreshed.
  mutable std::vector<NodeId> moved_;

  // --- uniform-grid spatial index over radio positions ------------------
  /// Cell size == the model's max_interaction_range at the last full
  /// rebuild; infinity (or <= 0) disables the grid (all-pairs refresh).
  mutable double cache_range_ = 0.0;
  mutable std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> grid_;
  mutable std::vector<std::uint64_t> node_grid_key_;  ///< parallel to cache_ids_
  mutable std::vector<std::uint32_t> dirty_scratch_;
  mutable std::vector<std::uint32_t> candidate_scratch_;
  mutable std::vector<NodeId> model_dirty_scratch_;

  /// Snapshot of one sender's candidates taken before the delivery loop:
  /// delivery callbacks may invalidate/rebuild the cache (mobility hooks,
  /// attach/detach), so the loop must not read cache vectors directly, and
  /// each entry is re-validated against radios_ before dereferencing in
  /// case a callback detached that radio. Reused across calls — no
  /// steady-state allocation. Safe because finish_transmission never
  /// nests: it only runs from drain_channel, and although delivery
  /// callbacks execute synchronously inside it (Radio::medium_deliver ->
  /// on_rx), no rx path synchronously completes another transmission.
  struct DeliveryCandidate {
    NodeId id;
    Radio* radio;
    double prr;
  };
  std::vector<DeliveryCandidate> delivery_scratch_;
};

}  // namespace gttsch
