// The shared wireless medium: transports frames between radios, resolving
// per-receiver outcomes (link loss, collisions, hidden terminals).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "phy/link_model.hpp"
#include "phy/radio.hpp"
#include "phy/wire.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace gttsch {

/// Aggregate medium statistics (useful for tests and the channel-allocation
/// ablation: GT-TSCH's claim is precisely that collisions vanish).
struct MediumStats {
  std::uint64_t transmissions = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t collision_losses = 0;  ///< receiver lost frame to interference
  std::uint64_t prr_losses = 0;        ///< receiver lost frame to link quality
};

/// Delivery resolution is cached: the pairwise PRR/interference matrix and
/// the per-sender in-range receiver lists are compiled from the link model.
/// Invalidation is *incremental*: a moved radio (Radio::set_position) or a
/// model change the model can attribute (LinkModel::changed_nodes_since)
/// refreshes only the affected rows/columns, discovering candidates through
/// a uniform-grid spatial index sized by LinkModel::max_interaction_range()
/// — O(degree) model calls per move instead of the full O(n^2) rebuild.
/// Attach/detach (structural) and unattributable model changes still
/// rebuild from scratch. Cached answers are bit-identical to querying the
/// model directly (set_link_cache_enabled(false) is the reference mode the
/// property tests compare against).
///
/// In-flight transmissions are bucketed per physical channel, and frame
/// completions are *batched*: one drain event per (channel, end-time)
/// rendezvous resolves every frame ending at that instant in transmission
/// order, instead of one simulator event per frame.
///
/// The medium is also the simulator's IslandSource (PR 10): the same grid
/// that bounds cache refreshes partitions nodes into interference islands
/// (union-find over the compiled pair matrix), and all transmission state
/// is sharded per island so island lanes never share mutable PHY state.
/// Delivery RNG is per-*receiver* (forked from the medium stream by node
/// id at attach), so the draw a receiver makes is independent of the
/// global interleaving of other islands' deliveries — the keystone of the
/// parallel == sequential bit-identity contract.
class Medium final : public IslandSource {
 public:
  Medium(Simulator& sim, std::unique_ptr<LinkModel> model, Rng rng);
  ~Medium() override;

  void attach(Radio* radio);
  void detach(NodeId id);

  /// Radio position changed (mobility): marks only that radio's cache
  /// rows/columns for refresh.
  void position_changed(NodeId id);

  /// Called by Radio::transmit. Takes care of completion and delivery.
  void start_transmission(Radio& sender, FramePtr frame, PhysChannel channel);

  /// Aggregated over all island shards.
  MediumStats stats() const;
  void reset_stats();

  /// Latest end time of any in-flight transmission on `channel` audible at
  /// `listener` (carrier sense). Returns 0 when the channel is clear.
  TimeUs busy_until(NodeId listener, PhysChannel channel) const;

  const LinkModel& link_model() const { return *model_; }

  /// PRR between two attached radios under the current model (testing aid).
  double link_prr(NodeId tx, NodeId rx) const;

  /// Reference mode for the cache property tests: with the link cache off,
  /// every delivery, carrier-sense and collision check queries the model
  /// directly. Observably identical to the cached mode (same candidate
  /// order, same RNG draw discipline) — which is exactly what the tests
  /// assert, bit for bit.
  void set_link_cache_enabled(bool enabled);
  bool link_cache_enabled() const { return link_cache_enabled_; }

  /// Radio hot-state mirror (SoA): radios push their state transitions
  /// here so the delivery loop filters against three contiguous arrays
  /// instead of pointer-chasing into each Radio object.
  void radio_hot_changed(std::uint32_t slot, RadioState state,
                         PhysChannel channel, TimeUs listen_since) {
    if (slot >= hot_state_.size()) return;
    hot_state_[slot] = static_cast<std::uint8_t>(state);
    hot_channel_[slot] = channel;
    hot_listen_since_[slot] = listen_since;
  }

  // --- IslandSource (see sim/simulator.hpp) -----------------------------
  std::uint64_t partition_epoch() const override;
  bool compute_islands(
      std::vector<std::pair<std::uint32_t, std::uint32_t>>* owner_island,
      std::uint32_t* island_count) override;
  void on_partition() override;
  void settle(TimeUs now) override;

 private:
  struct Transmission {
    std::uint64_t id;
    NodeId sender;
    FramePtr frame;
    PhysChannel channel;
    TimeUs start;
    TimeUs end;
  };

  /// A scheduled (channel, end-time) drain rendezvous. The EventId is
  /// kept so a repartition can cancel and re-home pending drains.
  struct PendingDrain {
    TimeUs end;
    EventId event;
  };

  /// Per-channel in-flight bucket plus the end times that already have a
  /// drain event scheduled (one event per distinct end time).
  struct ChannelState {
    std::vector<Transmission> in_flight;
    std::vector<PendingDrain> pending_drains;
  };

  /// One compiled link-cache entry (row-major: pairs_[tx_idx*n + rx_idx]).
  struct PairLink {
    double prr = 0.0;
    bool interferes = false;
  };

  /// See the delivery-loop comment in finish_transmission.
  struct DeliveryCandidate {
    NodeId id;
    std::uint32_t r_idx;
    Radio* radio;
    double prr;
  };

  /// Carrier-sense batch memo: the bucket scan (live transmissions with
  /// resolved sender cache indices) is shared by every node polling the
  /// same (instant, channel) — the TSCH rx-guard case, where all receivers
  /// of a slot check the same channel at the same tick.
  struct LiveTx {
    std::uint32_t s_idx;  ///< sender cache index; npos32 when uncached
    NodeId sender;
    TimeUs end;
  };
  struct BusyMemo {
    TimeUs at = -1;
    PhysChannel channel = 0;
    std::uint64_t mutations = 0;
    std::uint64_t cache_builds = 0;
    std::vector<LiveTx> live;
  };

  /// All mutable transmission state of one island (shard 0 doubles as the
  /// sequential / global shard). Island lanes only ever touch their own
  /// shard, selected by the executing simulator context.
  struct Shard {
    std::map<PhysChannel, ChannelState> channels;
    MediumStats stats;
    std::uint64_t next_tx_id = 1;
    /// Bucket-change counter; invalidates the carrier-sense memo.
    std::uint64_t mutations = 0;
    std::vector<std::uint64_t> drain_scratch;
    std::vector<DeliveryCandidate> delivery_scratch;
    BusyMemo busy_memo;
  };

  Shard& shard() const;

  /// Resolve every transmission on `channel` ending exactly at `end`, in
  /// transmission-id (= start) order — the batched replacement for the
  /// old one-event-per-frame completion.
  void drain_channel(PhysChannel channel, TimeUs end);
  void finish_transmission(Shard& sh, PhysChannel channel, std::uint64_t tx_id);
  /// Resolve one candidate receiver of a finished transmission: listening
  /// filters, collision check, PRR draw, stats, delivery. `fast` reads
  /// the SoA mirror by cache index; `slow` reads the Radio (reference
  /// mode / structure changed mid-batch). Both share the filter order and
  /// RNG-draw discipline (part of the fast-path bit-equivalence
  /// contract). `prr` <= 0 draws nothing.
  void resolve_receiver_fast(Shard& sh, const Transmission& tx, NodeId rid,
                             std::uint32_t r_idx, double prr);
  void resolve_receiver_slow(Shard& sh, const Transmission& tx, NodeId rid,
                             Radio& radio, double prr);
  bool suffers_collision(const Shard& sh, const Transmission& tx, NodeId rid,
                         std::size_t rx_idx, const Radio* rx) const;
  Rng& rx_rng(NodeId id) const;
  void ensure_cache() const;
  void rebuild_cache() const;
  /// Recompute row + column `idx` of the pair matrix (and the affected
  /// receiver lists) against the node's current position, touching only
  /// its grid neighborhood.
  void refresh_node(std::uint32_t idx) const;
  /// Move node `idx` to the grid cell of its current position.
  void update_grid_membership(std::uint32_t idx) const;
  /// Candidate peer indices for a node at `pos`: occupants of the 3x3
  /// grid neighborhood, or every node when the model has no spatial bound.
  void collect_candidates(const Position& pos, std::vector<std::uint32_t>& out) const;
  bool grid_active() const;
  /// Cache row index for `id`, or npos when unknown (e.g. detached).
  std::size_t cache_index(NodeId id) const;

  Simulator& sim_;
  std::unique_ptr<LinkModel> model_;
  Rng rng_;  ///< fork source for the per-receiver delivery streams
  std::map<NodeId, Radio*> radios_;
  /// Per-receiver delivery RNG, forked by node id at first attach and
  /// persistent across reboots — draw order within one receiver is its
  /// own delivery order, independent of other islands' interleaving.
  mutable std::map<NodeId, Rng> rx_rngs_;
  mutable std::vector<std::unique_ptr<Shard>> shards_;  ///< [0] = global

  // --- compiled link cache (see class comment) --------------------------
  bool link_cache_enabled_ = true;
  std::uint64_t structure_version_ = 1;  ///< attach/detach counter
  std::uint64_t position_epoch_ = 0;     ///< every position_changed call
  mutable std::uint64_t cached_structure_version_ = 0;
  mutable std::uint64_t cached_model_version_ = 0;
  mutable std::uint64_t cache_builds_ = 0;  ///< full rebuild counter
  mutable bool cache_valid_ = false;
  mutable std::vector<NodeId> cache_ids_;     ///< ascending
  mutable std::vector<Radio*> cache_radios_;  ///< parallel to cache_ids_
  mutable std::vector<PairLink> cache_pairs_;
  /// Per sender index: receiver indices with prr > 0, ascending by NodeId
  /// (the delivery-loop order, so RNG draws match the uncached iteration).
  mutable std::vector<std::vector<std::uint32_t>> cache_receivers_;
  /// Radios whose position changed since the cache last refreshed.
  mutable std::vector<NodeId> moved_;

  /// SoA hot mirror of radio state, parallel to cache_ids_ — the delivery
  /// filters scan these contiguous arrays; the Radio object is only
  /// dereferenced for an actual delivery.
  mutable std::vector<std::uint8_t> hot_state_;
  mutable std::vector<std::uint8_t> hot_channel_;
  mutable std::vector<TimeUs> hot_listen_since_;
  mutable std::vector<Rng*> hot_rng_;  ///< &rx_rngs_[cache_ids_[i]]

  // --- uniform-grid spatial index over radio positions ------------------
  /// Cell size == the model's max_interaction_range at the last full
  /// rebuild; infinity (or <= 0) disables the grid (all-pairs refresh).
  mutable double cache_range_ = 0.0;
  mutable std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> grid_;
  mutable std::vector<std::uint64_t> node_grid_key_;  ///< parallel to cache_ids_
  mutable std::vector<std::uint32_t> dirty_scratch_;
  mutable std::vector<std::uint32_t> candidate_scratch_;
  mutable std::vector<NodeId> model_dirty_scratch_;
};

}  // namespace gttsch
