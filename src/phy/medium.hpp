// The shared wireless medium: transports frames between radios, resolving
// per-receiver outcomes (link loss, collisions, hidden terminals).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "phy/link_model.hpp"
#include "phy/radio.hpp"
#include "phy/wire.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace gttsch {

/// Aggregate medium statistics (useful for tests and the channel-allocation
/// ablation: GT-TSCH's claim is precisely that collisions vanish).
struct MediumStats {
  std::uint64_t transmissions = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t collision_losses = 0;  ///< receiver lost frame to interference
  std::uint64_t prr_losses = 0;        ///< receiver lost frame to link quality
};

/// Delivery resolution is cached: the pairwise PRR/interference matrix and
/// the per-sender in-range receiver lists are compiled from the link model
/// and rebuilt whenever a radio attaches/detaches/moves or the model
/// reports a new version() (mobility, dynamic link overrides, matrix
/// edits). In-flight transmissions are bucketed per physical channel so
/// carrier sense and collision checks touch only same-channel frames.
class Medium {
 public:
  Medium(Simulator& sim, std::unique_ptr<LinkModel> model, Rng rng);

  void attach(Radio* radio);
  void detach(NodeId id);

  /// Radio position changed (mobility): invalidates the link cache.
  void position_changed(NodeId id);

  /// Called by Radio::transmit. Takes care of completion and delivery.
  void start_transmission(Radio& sender, FramePtr frame, PhysChannel channel);

  const MediumStats& stats() const { return stats_; }
  void reset_stats() { stats_ = MediumStats{}; }

  /// Latest end time of any in-flight transmission on `channel` audible at
  /// `listener` (carrier sense). Returns 0 when the channel is clear.
  TimeUs busy_until(NodeId listener, PhysChannel channel) const;

  const LinkModel& link_model() const { return *model_; }

  /// PRR between two attached radios under the current model (testing aid).
  double link_prr(NodeId tx, NodeId rx) const;

 private:
  struct Transmission {
    std::uint64_t id;
    NodeId sender;
    FramePtr frame;
    PhysChannel channel;
    TimeUs start;
    TimeUs end;
  };

  /// One compiled link-cache entry (row-major: pairs_[tx_idx*n + rx_idx]).
  struct PairLink {
    double prr = 0.0;
    bool interferes = false;
  };

  void finish_transmission(PhysChannel channel, std::uint64_t tx_id);
  /// Resolve one candidate receiver of a finished transmission: listening
  /// filters, collision check, PRR draw, stats, delivery. Shared by the
  /// cached fast path and the detached-sender fallback so the filter order
  /// and RNG-draw discipline (part of the fast-path bit-equivalence
  /// contract) cannot drift between them. `prr` <= 0 draws nothing.
  void resolve_receiver(const Transmission& tx, NodeId rid, Radio& radio, double prr);
  bool suffers_collision(const Transmission& tx, const Radio& rx) const;
  void ensure_cache() const;
  /// Cache row index for `id`, or npos when unknown (e.g. detached).
  std::size_t cache_index(NodeId id) const;

  Simulator& sim_;
  std::unique_ptr<LinkModel> model_;
  Rng rng_;
  std::map<NodeId, Radio*> radios_;
  /// In-flight (and recently-ended, pruned lazily) transmissions, one
  /// bucket per physical channel.
  std::map<PhysChannel, std::vector<Transmission>> in_flight_;
  std::uint64_t next_tx_id_ = 1;
  MediumStats stats_;

  // --- compiled link cache (see class comment) --------------------------
  std::uint64_t topo_version_ = 1;  ///< attach/detach/move counter
  mutable std::uint64_t cached_topo_version_ = 0;
  mutable std::uint64_t cached_model_version_ = 0;
  mutable bool cache_valid_ = false;
  mutable std::vector<NodeId> cache_ids_;     ///< ascending
  mutable std::vector<Radio*> cache_radios_;  ///< parallel to cache_ids_
  mutable std::vector<PairLink> cache_pairs_;
  /// Per sender index: receiver indices with prr > 0, ascending by NodeId
  /// (the delivery-loop order, so RNG draws match the uncached iteration).
  mutable std::vector<std::vector<std::uint32_t>> cache_receivers_;
  /// Snapshot of one sender's candidates taken before the delivery loop:
  /// delivery callbacks may invalidate/rebuild the cache (mobility hooks,
  /// attach/detach), so the loop must not read cache vectors directly, and
  /// each entry is re-validated against radios_ before dereferencing in
  /// case a callback detached that radio. Reused across calls — no
  /// steady-state allocation. Safe because finish_transmission never
  /// nests: it only runs as a queue event, and although delivery
  /// callbacks execute synchronously inside it (Radio::medium_deliver ->
  /// on_rx), no rx path synchronously completes another transmission.
  struct DeliveryCandidate {
    NodeId id;
    Radio* radio;
    double prr;
  };
  std::vector<DeliveryCandidate> delivery_scratch_;
};

}  // namespace gttsch
