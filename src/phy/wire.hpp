// Wire-level message definitions shared by all layers.
//
// These are plain data carriers: the MAC, RPL, and 6P logic live in their
// own modules; this header only pins down what crosses the (simulated) air.
// Keeping every payload in one variant keeps layer dependencies acyclic —
// the medium transports `Frame`s without knowing what is inside them.
#pragma once

#include <cstdint>
#include <memory>
#include <variant>
#include <vector>

#include "util/types.hpp"

namespace gttsch {

// ---------------------------------------------------------------------------
// TSCH cells (also part of the 6P wire format, RFC 8480 CellList).
// ---------------------------------------------------------------------------

/// Link-option bits, mirroring IEEE 802.15.4e.
enum CellOption : std::uint8_t {
  kCellTx = 1u << 0,
  kCellRx = 1u << 1,
  kCellShared = 1u << 2,
  /// Cell dedicated to 6P signalling (GT-TSCH "Unicast-6P" type).
  kCellSixp = 1u << 3,
};

/// One entry of the CDU matrix: (timeslot offset, channel offset) plus role.
struct Cell {
  std::uint16_t slot_offset = 0;
  ChannelOffset channel_offset = 0;
  std::uint8_t options = 0;  // CellOption bitmask
  /// Unicast peer, or kBroadcastId for broadcast/any-sender cells.
  NodeId neighbor = kBroadcastId;

  bool is_tx() const { return options & kCellTx; }
  bool is_rx() const { return options & kCellRx; }
  bool is_shared() const { return options & kCellShared; }
  bool is_sixp() const { return options & kCellSixp; }

  friend bool operator==(const Cell&, const Cell&) = default;
};

// ---------------------------------------------------------------------------
// Frame payloads.
// ---------------------------------------------------------------------------

enum class FrameType : std::uint8_t { kData, kEb, kDio, kDis, kSixp, kAck };

/// Application data (convergecast sample travelling toward a DODAG root).
struct DataPayload {
  NodeId origin = kNoNode;    ///< node that generated the packet
  std::uint32_t seq = 0;      ///< per-origin sequence number
  TimeUs generated_at = 0;    ///< for end-to-end delay measurement
  std::uint8_t hops = 0;      ///< incremented per forwarding hop
  /// Telemetry probe frames travel like data but are excluded from the
  /// RunStats panel metrics (unless the telemetry config counts them).
  bool is_probe = false;
};

/// TSCH Enhanced Beacon. Carries synchronisation info plus — GT-TSCH
/// extension — the channel offset children of the sender must use to reach
/// it (f_{sender,cs}), piggybacked per Section III of the paper.
struct EbPayload {
  Asn asn = 0;                      ///< ASN of the slot this EB is sent in
  std::uint8_t join_priority = 0;   ///< hops from the DODAG root
  std::uint16_t slotframe_length = 0;
  bool has_family_channel = false;  ///< GT-TSCH: f_{sender,cs} present?
  ChannelOffset family_channel = 0;
  NodeId dodag_root = kNoNode;
};

/// RPL DODAG Information Object (the subset the scheduler consumes), plus
/// the paper's new option: the sender's free Rx-cell count l^rx.
struct DioPayload {
  NodeId dodag_root = kNoNode;
  std::uint16_t rank = 0;
  std::uint16_t min_hop_rank_increase = 256;
  /// GT-TSCH DIO option: Rx cells the sender can still grant (l^rx_{p}).
  std::uint16_t free_rx_cells = 0;
  std::uint8_t dio_interval_doublings = 0;
};

/// 6top protocol commands (RFC 8480) + the paper's ASK-CHANNEL (0x0A).
enum class SixpCommand : std::uint8_t {
  kAdd = 1,
  kDelete = 2,
  kClear = 5,
  kAskChannel = 0x0A,
};

enum class SixpMsgType : std::uint8_t { kRequest, kResponse };

enum class SixpReturnCode : std::uint8_t {
  kSuccess = 0,
  kErr,
  kErrSeqnum,
  kErrBusy,
  kErrNoResource,
};

struct SixpPayload {
  SixpMsgType type = SixpMsgType::kRequest;
  SixpCommand command = SixpCommand::kAdd;
  SixpReturnCode code = SixpReturnCode::kSuccess;  // responses only
  std::uint8_t seqnum = 0;
  /// ADD/DELETE: requested cell count (requests) / granted cells (responses).
  std::uint8_t num_cells = 0;
  /// ADD requests: CellOption bits of the requested cells (kCellSixp for
  /// the dedicated signalling pair, kCellTx for Unicast-Data cells).
  std::uint8_t cell_options = 0;
  /// Cells are always expressed from the *requester's* perspective; the
  /// responder installs the mirrored (Tx<->Rx swapped) cells.
  std::vector<Cell> cell_list;
  /// ASK-CHANNEL response: channel offset for the requester's children.
  ChannelOffset channel_offset = 0;
  /// ASK-CHANNEL response: the requester's DAG level (parent level + 1),
  /// selecting the parity of its family's shared-cell block.
  std::uint8_t level = 0;
  /// Responses: the responder's current free Rx capacity, piggybacked so
  /// children track l^rx between (possibly sparse) DIOs.
  std::uint16_t free_rx = 0;
};

/// RPL DODAG Information Solicitation: a joining node asks neighbors to
/// reset their DIO trickle so it does not wait out a mature interval.
struct DisPayload {};

struct AckPayload {};

// ---------------------------------------------------------------------------
// Frame.
// ---------------------------------------------------------------------------

struct Frame {
  FrameType type = FrameType::kData;
  NodeId src = kNoNode;
  NodeId dst = kBroadcastId;
  std::uint16_t length_bytes = 0;  ///< MAC frame length incl. headers
  /// Per-sender MAC sequence number; set by the MAC at enqueue time and
  /// reused across retransmissions so receivers can discard duplicates.
  std::uint32_t mac_seq = 0;
  std::variant<DataPayload, EbPayload, DioPayload, DisPayload, SixpPayload, AckPayload>
      payload;

  template <typename T>
  const T& as() const {
    return std::get<T>(payload);
  }
  template <typename T>
  const T* get_if() const {
    return std::get_if<T>(&payload);
  }
};

using FramePtr = std::shared_ptr<const Frame>;

/// IEEE 802.15.4 aMaxPHYPacketSize: no MAC frame exceeds this, so
/// frame_airtime(kMaxMacFrameBytes) bounds any transmission's airtime.
inline constexpr std::uint16_t kMaxMacFrameBytes = 127;

/// Default encoded lengths (bytes, incl. MAC header) per frame type.
/// Data frames model a compressed 6LoWPAN/UDP sample near the 127 B cap.
constexpr std::uint16_t default_frame_length(FrameType type) {
  switch (type) {
    case FrameType::kData: return 110;  // 6LoWPAN-compressed UDP sample
    case FrameType::kEb: return 52;     // EB with sync + GT-TSCH channel IE
    case FrameType::kDio: return 84;    // DIO with MRHOF + l^rx option
    case FrameType::kDis: return 30;    // bare solicitation
    case FrameType::kSixp: return 40;   // 6P header + short cell list
    case FrameType::kAck: return 26;    // enhanced ACK
  }
  return 64;
}

/// RFC 8480 CellList cap: a 6P frame (40 B header + 4 B per encoded cell)
/// must stay within the 127-byte MAC frame. Long slotframes can offer far
/// more free offsets than this; proposers truncate their CellList to it so
/// no 6P frame ever outgrows a timeslot.
inline constexpr std::size_t kMaxSixpCellListCells =
    (kMaxMacFrameBytes - default_frame_length(FrameType::kSixp)) / 4;

/// Frame factory helpers; length defaults from default_frame_length().
FramePtr make_data_frame(NodeId src, NodeId dst, DataPayload p);
FramePtr make_eb_frame(NodeId src, EbPayload p);
FramePtr make_dio_frame(NodeId src, DioPayload p);
FramePtr make_dis_frame(NodeId src);
FramePtr make_sixp_frame(NodeId src, NodeId dst, SixpPayload p);
FramePtr make_ack_frame(NodeId src, NodeId dst);

/// IEEE 802.15.4 O-QPSK at 250 kbit/s: 32 us per byte + 192 us preamble/SFD.
constexpr TimeUs frame_airtime(std::uint16_t length_bytes) {
  return 192 + static_cast<TimeUs>(length_bytes) * 32;
}

/// Upper bound on any single frame's airtime (the longest legal frame).
inline constexpr TimeUs kMaxFrameAirtime = frame_airtime(kMaxMacFrameBytes);

const char* frame_type_name(FrameType type);

}  // namespace gttsch
