#include "phy/link_model.hpp"

#include <algorithm>
#include <limits>

namespace gttsch {

double LinkModel::max_interaction_range() const {
  return std::numeric_limits<double>::infinity();
}

bool LinkModel::changed_nodes_since(std::uint64_t, std::vector<NodeId>&) const {
  return false;
}

UnitDiskModel::UnitDiskModel(double range, double prr_in_range, double interference_factor)
    : range_(range),
      prr_in_range_(std::clamp(prr_in_range, 0.0, 1.0)),
      interference_range_(range * interference_factor) {}

double UnitDiskModel::prr(NodeId, const Position& a, NodeId, const Position& b) const {
  return distance(a, b) <= range_ ? prr_in_range_ : 0.0;
}

bool UnitDiskModel::interferes(NodeId, const Position& a, NodeId, const Position& b) const {
  return distance(a, b) <= interference_range_;
}

double UnitDiskModel::max_interaction_range() const {
  return std::max(range_, interference_range_);
}

DistancePrrModel::DistancePrrModel(double full_range, double max_range,
                                   double interference_factor)
    : full_range_(full_range),
      max_range_(std::max(max_range, full_range)),
      interference_range_(max_range_ * interference_factor) {}

double DistancePrrModel::prr(NodeId, const Position& a, NodeId, const Position& b) const {
  const double d = distance(a, b);
  if (d <= full_range_) return 1.0;
  if (d >= max_range_) return 0.0;
  return 1.0 - (d - full_range_) / (max_range_ - full_range_);
}

bool DistancePrrModel::interferes(NodeId, const Position& a, NodeId, const Position& b) const {
  return distance(a, b) <= interference_range_;
}

double DistancePrrModel::max_interaction_range() const {
  return std::max(max_range_, interference_range_);
}

void MatrixLinkModel::set(NodeId tx, NodeId rx, double prr, bool symmetric) {
  prr_[{tx, rx}] = std::clamp(prr, 0.0, 1.0);
  if (symmetric) prr_[{rx, tx}] = std::clamp(prr, 0.0, 1.0);
  change_log_.emplace_back(tx, rx);
  ++version_;
}

void MatrixLinkModel::set_interference(NodeId tx, NodeId rx, bool on, bool symmetric) {
  interference_[{tx, rx}] = on;
  if (symmetric) interference_[{rx, tx}] = on;
  change_log_.emplace_back(tx, rx);
  ++version_;
}

bool MatrixLinkModel::changed_nodes_since(std::uint64_t since,
                                          std::vector<NodeId>& out) const {
  if (since > change_log_.size()) return false;  // foreign version value
  for (std::size_t i = static_cast<std::size_t>(since); i < change_log_.size(); ++i) {
    out.push_back(change_log_[i].first);
    out.push_back(change_log_[i].second);
  }
  return true;
}

double MatrixLinkModel::prr(NodeId tx, const Position&, NodeId rx, const Position&) const {
  const auto it = prr_.find({tx, rx});
  return it == prr_.end() ? 0.0 : it->second;
}

bool MatrixLinkModel::interferes(NodeId tx, const Position&, NodeId rx, const Position&) const {
  const auto it = interference_.find({tx, rx});
  if (it != interference_.end()) return it->second;
  return prr(tx, {}, rx, {}) > 0.0;
}

}  // namespace gttsch
