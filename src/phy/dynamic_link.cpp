#include "phy/dynamic_link.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace gttsch {

DynamicLinkModel::DynamicLinkModel(const Simulator& sim, std::unique_ptr<LinkModel> base)
    : sim_(sim), base_(std::move(base)) {
  GTTSCH_CHECK(base_ != nullptr);
}

void DynamicLinkModel::override_prr(TimeUs at, NodeId tx, NodeId rx, double prr,
                                    bool symmetric) {
  overrides_.push_back(Override{at, tx, rx, prr});
  if (symmetric) overrides_.push_back(Override{at, rx, tx, prr});
  next_recount_at_ = std::min(next_recount_at_, at);
}

void DynamicLinkModel::kill_node(TimeUs at, NodeId id) {
  kills_.push_back(NodeKill{at, id});
  next_recount_at_ = std::min(next_recount_at_, at);
}

const DynamicLinkModel::Override* DynamicLinkModel::active_override(NodeId tx,
                                                                    NodeId rx) const {
  const TimeUs now = sim_.now();
  const Override* best = nullptr;
  for (const Override& o : overrides_) {
    if (o.tx != tx || o.rx != rx || o.at > now) continue;
    if (best == nullptr || o.at >= best->at) best = &o;
  }
  return best;
}

std::uint64_t DynamicLinkModel::version() const {
  const TimeUs now = sim_.now();
  if (now >= next_recount_at_) {
    // Recount activations and remember when the next one lands, so the
    // common call (nothing changed) is O(1).
    active_count_ = 0;
    next_recount_at_ = kInfiniteTime;
    for (const Override& o : overrides_) {
      if (o.at <= now)
        ++active_count_;
      else
        next_recount_at_ = std::min(next_recount_at_, o.at);
    }
    for (const NodeKill& k : kills_) {
      if (k.at <= now)
        ++active_count_;
      else
        next_recount_at_ = std::min(next_recount_at_, k.at);
    }
  }
  return base_->version() + active_count_;
}

bool DynamicLinkModel::node_dead(NodeId id) const {
  const TimeUs now = sim_.now();
  for (const NodeKill& k : kills_)
    if (k.id == id && k.at <= now) return true;
  return false;
}

double DynamicLinkModel::prr(NodeId tx, const Position& tx_pos, NodeId rx,
                             const Position& rx_pos) const {
  if (node_dead(tx) || node_dead(rx)) return 0.0;
  if (const Override* o = active_override(tx, rx)) return o->prr;
  return base_->prr(tx, tx_pos, rx, rx_pos);
}

bool DynamicLinkModel::interferes(NodeId tx, const Position& tx_pos, NodeId rx,
                                  const Position& rx_pos) const {
  if (node_dead(tx)) return false;  // a dead radio emits nothing
  // PRR overrides model fading on the communication link; interference
  // reach follows the base geometry unless the link is fully dead.
  if (const Override* o = active_override(tx, rx)) {
    if (o->prr <= 0.0) return false;
  }
  return base_->interferes(tx, tx_pos, rx, rx_pos);
}

}  // namespace gttsch
