#include "phy/dynamic_link.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace gttsch {

DynamicLinkModel::DynamicLinkModel(const Simulator& sim, std::unique_ptr<LinkModel> base)
    : sim_(sim), base_(std::move(base)) {
  GTTSCH_CHECK(base_ != nullptr);
}

void DynamicLinkModel::override_prr(TimeUs at, NodeId tx, NodeId rx, double prr,
                                    bool symmetric) {
  GTTSCH_CHECK(prr >= 0.0 && prr <= 1.0);
  overrides_.push_back(Override{at, tx, rx, prr, false});
  if (symmetric) overrides_.push_back(Override{at, rx, tx, prr, false});
  if (prr > 0.0) has_positive_override_ = true;
  next_recount_at_ = std::min(next_recount_at_, at);
}

void DynamicLinkModel::clear_override(TimeUs at, NodeId tx, NodeId rx) {
  // prr < 0 is the "defer to base" sentinel; it supersedes earlier
  // overrides for the pair just like any later override would.
  overrides_.push_back(Override{at, tx, rx, -1.0, false});
  overrides_.push_back(Override{at, rx, tx, -1.0, false});
  next_recount_at_ = std::min(next_recount_at_, at);
}

void DynamicLinkModel::kill_node(TimeUs at, NodeId id) {
  life_.push_back(LifeEvent{at, id, /*dead=*/true, false});
  next_recount_at_ = std::min(next_recount_at_, at);
}

void DynamicLinkModel::revive_node(TimeUs at, NodeId id) {
  life_.push_back(LifeEvent{at, id, /*dead=*/false, false});
  next_recount_at_ = std::min(next_recount_at_, at);
}

const DynamicLinkModel::Override* DynamicLinkModel::active_override(NodeId tx,
                                                                    NodeId rx) const {
  const TimeUs now = sim_.now();
  const Override* best = nullptr;
  for (const Override& o : overrides_) {
    if (o.tx != tx || o.rx != rx || o.at > now) continue;
    if (best == nullptr || o.at >= best->at) best = &o;
  }
  return best;
}

std::uint64_t DynamicLinkModel::version() const {
  const TimeUs now = sim_.now();
  if (now >= next_recount_at_) {
    // Recount activations and remember when the next one lands, so the
    // common call (nothing changed) is O(1). Newly observed activations
    // land in the append-only log exactly once (`logged`), keeping
    // activation_log_.size() == active_count_ for changed_nodes_since.
    active_count_ = 0;
    next_recount_at_ = kInfiniteTime;
    for (Override& o : overrides_) {
      if (o.at <= now) {
        ++active_count_;
        if (!o.logged) {
          o.logged = true;
          activation_log_.emplace_back(o.tx, o.rx);
        }
      } else {
        next_recount_at_ = std::min(next_recount_at_, o.at);
      }
    }
    for (LifeEvent& k : life_) {
      if (k.at <= now) {
        ++active_count_;
        if (!k.logged) {
          k.logged = true;
          activation_log_.emplace_back(k.id, k.id);
        }
      } else {
        next_recount_at_ = std::min(next_recount_at_, k.at);
      }
    }
  }
  return base_->version() + active_count_;
}

double DynamicLinkModel::max_interaction_range() const {
  if (has_positive_override_) return std::numeric_limits<double>::infinity();
  return base_->max_interaction_range();
}

bool DynamicLinkModel::changed_nodes_since(std::uint64_t since,
                                           std::vector<NodeId>& out) const {
  if (base_->version() != 0) return false;  // cannot attribute base changes
  (void)version();                          // bring the activation log up to date
  if (since > activation_log_.size()) return false;  // foreign version value
  for (std::size_t i = static_cast<std::size_t>(since); i < activation_log_.size(); ++i) {
    out.push_back(activation_log_[i].first);
    out.push_back(activation_log_[i].second);
  }
  return true;
}

bool DynamicLinkModel::node_dead(NodeId id) const {
  const TimeUs now = sim_.now();
  // Latest active liveness event wins; at equal times the later-registered
  // entry (>=) wins, so playback order matches trace order.
  const LifeEvent* latest = nullptr;
  for (const LifeEvent& k : life_) {
    if (k.id != id || k.at > now) continue;
    if (latest == nullptr || k.at >= latest->at) latest = &k;
  }
  return latest != nullptr && latest->dead;
}

double DynamicLinkModel::prr(NodeId tx, const Position& tx_pos, NodeId rx,
                             const Position& rx_pos) const {
  if (node_dead(tx) || node_dead(rx)) return 0.0;
  if (const Override* o = active_override(tx, rx)) {
    if (o->prr >= 0.0) return o->prr;  // cleared entries defer to base
  }
  return base_->prr(tx, tx_pos, rx, rx_pos);
}

bool DynamicLinkModel::interferes(NodeId tx, const Position& tx_pos, NodeId rx,
                                  const Position& rx_pos) const {
  if (node_dead(tx)) return false;  // a dead radio emits nothing
  // PRR overrides model fading on the communication link; interference
  // reach follows the base geometry unless the link is fully dead.
  if (const Override* o = active_override(tx, rx)) {
    if (o->prr == 0.0) return false;
  }
  return base_->interferes(tx, tx_pos, rx, rx_pos);
}

}  // namespace gttsch
