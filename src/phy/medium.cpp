#include "phy/medium.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/log.hpp"
#include "util/check.hpp"

namespace gttsch {

namespace {
/// How long a finished transmission stays in its channel bucket. A finished
/// frame only matters for collision resolution of frames that overlapped it
/// in time, and no frame is airborne longer than kMaxFrameAirtime — so
/// anything that ended more than one maximal airtime ago can no longer
/// overlap a transmission still in flight.
constexpr TimeUs kInFlightRetention = kMaxFrameAirtime;

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

/// Grid-cell coordinates of a position, clamped so they pack into 32 bits.
/// Clamping only merges cells that are astronomically far apart, which
/// over-approximates a neighborhood (extra candidates) — never misses one.
void grid_coords(const Position& p, double cell, std::int64_t& cx, std::int64_t& cy) {
  constexpr double kBound = 2147480000.0;
  const double inv = 1.0 / cell;
  cx = static_cast<std::int64_t>(std::clamp(std::floor(p.x * inv), -kBound, kBound));
  cy = static_cast<std::int64_t>(std::clamp(std::floor(p.y * inv), -kBound, kBound));
}

std::uint64_t pack_cell(std::int64_t cx, std::int64_t cy) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(cy));
}

/// Insert `value` into an ascending vector, keeping it sorted and unique.
void insert_sorted(std::vector<std::uint32_t>& v, std::uint32_t value) {
  const auto it = std::lower_bound(v.begin(), v.end(), value);
  if (it == v.end() || *it != value) v.insert(it, value);
}

/// Remove `value` from an ascending vector if present.
void erase_sorted(std::vector<std::uint32_t>& v, std::uint32_t value) {
  const auto it = std::lower_bound(v.begin(), v.end(), value);
  if (it != v.end() && *it == value) v.erase(it);
}
}  // namespace

Medium::Medium(Simulator& sim, std::unique_ptr<LinkModel> model, Rng rng)
    : sim_(sim), model_(std::move(model)), rng_(rng) {
  GTTSCH_CHECK(model_ != nullptr);
}

void Medium::attach(Radio* radio) {
  GTTSCH_CHECK(radio != nullptr);
  radios_[radio->id()] = radio;
  ++structure_version_;
}

void Medium::detach(NodeId id) {
  radios_.erase(id);
  ++structure_version_;
}

void Medium::position_changed(NodeId id) {
  if (!cache_valid_) return;  // a full (re)build is pending anyway
  // Deduplicate: a node walking many steps between medium queries stays
  // one dirty entry (the refresh reads its *current* position anyway), so
  // the backlog is bounded by distinct movers and only overflows — into a
  // full rebuild — when essentially the whole network moved.
  if (std::find(moved_.begin(), moved_.end(), id) != moved_.end()) return;
  moved_.push_back(id);
  if (moved_.size() > cache_ids_.size()) {
    cache_valid_ = false;
    moved_.clear();
  }
}

void Medium::set_link_cache_enabled(bool enabled) {
  if (link_cache_enabled_ == enabled) return;
  link_cache_enabled_ = enabled;
  cache_valid_ = false;
  cache_ids_.clear();
  cache_radios_.clear();
  cache_pairs_.clear();
  cache_receivers_.clear();
  moved_.clear();
  grid_.clear();
  node_grid_key_.clear();
}

double Medium::link_prr(NodeId tx, NodeId rx) const {
  const auto a = radios_.find(tx);
  const auto b = radios_.find(rx);
  if (a == radios_.end() || b == radios_.end()) return 0.0;
  return model_->prr(tx, a->second->position(), rx, b->second->position());
}

bool Medium::grid_active() const {
  return std::isfinite(cache_range_) && cache_range_ > 0.0;
}

void Medium::update_grid_membership(std::uint32_t idx) const {
  if (!grid_active()) return;
  std::int64_t cx = 0;
  std::int64_t cy = 0;
  grid_coords(cache_radios_[idx]->position(), cache_range_, cx, cy);
  const std::uint64_t key = pack_cell(cx, cy);
  if (key == node_grid_key_[idx]) return;
  const auto old_it = grid_.find(node_grid_key_[idx]);
  if (old_it != grid_.end()) {
    std::erase(old_it->second, idx);
    if (old_it->second.empty()) grid_.erase(old_it);
  }
  grid_[key].push_back(idx);
  node_grid_key_[idx] = key;
}

void Medium::collect_candidates(const Position& pos,
                                std::vector<std::uint32_t>& out) const {
  out.clear();
  if (!grid_active()) {
    for (std::uint32_t i = 0; i < cache_ids_.size(); ++i) out.push_back(i);
    return;
  }
  std::int64_t cx = 0;
  std::int64_t cy = 0;
  grid_coords(pos, cache_range_, cx, cy);
  for (std::int64_t dx = -1; dx <= 1; ++dx) {
    for (std::int64_t dy = -1; dy <= 1; ++dy) {
      const auto it = grid_.find(pack_cell(cx + dx, cy + dy));
      if (it == grid_.end()) continue;
      out.insert(out.end(), it->second.begin(), it->second.end());
    }
  }
  // Receiver lists must come out ascending by NodeId (== by cache index),
  // so candidates are visited in sorted order.
  std::sort(out.begin(), out.end());
}

void Medium::rebuild_cache() const {
  const std::size_t n = radios_.size();
  cache_ids_.clear();
  cache_radios_.clear();
  cache_ids_.reserve(n);
  cache_radios_.reserve(n);
  for (const auto& [id, radio] : radios_) {
    cache_ids_.push_back(id);
    cache_radios_.push_back(radio);
  }
  cache_pairs_.assign(n * n, PairLink{});
  cache_receivers_.assign(n, {});
  cache_range_ = model_->max_interaction_range();
  grid_.clear();
  node_grid_key_.assign(n, 0);
  if (grid_active()) {
    for (std::uint32_t i = 0; i < n; ++i) {
      std::int64_t cx = 0;
      std::int64_t cy = 0;
      grid_coords(cache_radios_[i]->position(), cache_range_, cx, cy);
      const std::uint64_t key = pack_cell(cx, cy);
      grid_[key].push_back(i);
      node_grid_key_[i] = key;
    }
  }
  // Pairs outside a node's grid neighborhood stay {0, false}, which the
  // model's max_interaction_range contract guarantees the model would
  // answer too — so this O(n * degree) build is bit-identical to the
  // all-pairs one.
  for (std::uint32_t t = 0; t < n; ++t) {
    const Position& tx_pos = cache_radios_[t]->position();
    collect_candidates(tx_pos, candidate_scratch_);
    for (const std::uint32_t r : candidate_scratch_) {
      if (r == t) continue;
      const Position& rx_pos = cache_radios_[r]->position();
      PairLink& link = cache_pairs_[t * n + r];
      link.prr = model_->prr(cache_ids_[t], tx_pos, cache_ids_[r], rx_pos);
      link.interferes =
          model_->interferes(cache_ids_[t], tx_pos, cache_ids_[r], rx_pos);
      if (link.prr > 0.0) cache_receivers_[t].push_back(r);
    }
  }
  cached_structure_version_ = structure_version_;
  cached_model_version_ = model_->version();
  moved_.clear();
  cache_valid_ = true;
}

void Medium::refresh_node(std::uint32_t m) const {
  const std::size_t n = cache_ids_.size();
  // Clear column m: forget every sender's link *to* the node (the prr > 0
  // ones are exactly those holding m in their receiver list).
  for (std::uint32_t s = 0; s < n; ++s) {
    if (s == m) continue;
    PairLink& to_m = cache_pairs_[s * n + m];
    if (to_m.prr > 0.0) erase_sorted(cache_receivers_[s], m);
    to_m = PairLink{};
  }
  // Clear row m.
  std::fill(cache_pairs_.begin() + static_cast<std::ptrdiff_t>(m * n),
            cache_pairs_.begin() + static_cast<std::ptrdiff_t>((m + 1) * n),
            PairLink{});
  cache_receivers_[m].clear();
  // Recompute both directions against the grid neighborhood of the
  // node's current position. Values are whatever the model answers for
  // current positions, and anything farther than the spatial bound is
  // {0, false} on both sides — bit-identical to a full rebuild.
  const Position& m_pos = cache_radios_[m]->position();
  collect_candidates(m_pos, candidate_scratch_);
  for (const std::uint32_t r : candidate_scratch_) {
    if (r == m) continue;
    const Position& r_pos = cache_radios_[r]->position();
    PairLink& out = cache_pairs_[m * n + r];
    out.prr = model_->prr(cache_ids_[m], m_pos, cache_ids_[r], r_pos);
    out.interferes = model_->interferes(cache_ids_[m], m_pos, cache_ids_[r], r_pos);
    if (out.prr > 0.0) cache_receivers_[m].push_back(r);  // candidates ascend
    PairLink& in = cache_pairs_[r * n + m];
    in.prr = model_->prr(cache_ids_[r], r_pos, cache_ids_[m], m_pos);
    in.interferes = model_->interferes(cache_ids_[r], r_pos, cache_ids_[m], m_pos);
    if (in.prr > 0.0) insert_sorted(cache_receivers_[r], m);
  }
}

void Medium::ensure_cache() const {
  if (!link_cache_enabled_) return;
  const std::uint64_t model_version = model_->version();
  if (cache_valid_ && cached_structure_version_ == structure_version_ &&
      cached_model_version_ == model_version && moved_.empty()) {
    return;
  }
  if (!cache_valid_ || cached_structure_version_ != structure_version_) {
    rebuild_cache();  // structural change: membership itself moved
    return;
  }

  // Incremental path: collect the indices whose rows/columns must refresh.
  dirty_scratch_.clear();
  if (cached_model_version_ != model_version) {
    // A model change may come with a new spatial bound (e.g. a dynamic
    // override activating beyond the base geometry) — the grid must then
    // be resized, which only a full rebuild does.
    if (model_->max_interaction_range() != cache_range_) {
      rebuild_cache();
      return;
    }
    model_dirty_scratch_.clear();
    if (!model_->changed_nodes_since(cached_model_version_, model_dirty_scratch_)) {
      rebuild_cache();  // unattributable model change
      return;
    }
    for (const NodeId id : model_dirty_scratch_) {
      const std::size_t idx = cache_index(id);
      if (idx != kNpos) dirty_scratch_.push_back(static_cast<std::uint32_t>(idx));
    }
  }
  for (const NodeId id : moved_) {
    const std::size_t idx = cache_index(id);
    // A moved radio unknown to the cache would have changed the structure
    // version and taken the rebuild branch above.
    if (idx != kNpos) dirty_scratch_.push_back(static_cast<std::uint32_t>(idx));
  }
  std::sort(dirty_scratch_.begin(), dirty_scratch_.end());
  dirty_scratch_.erase(std::unique(dirty_scratch_.begin(), dirty_scratch_.end()),
                       dirty_scratch_.end());
  const std::size_t n = cache_ids_.size();
  if (dirty_scratch_.size() * 2 >= n && dirty_scratch_.size() > 1) {
    rebuild_cache();  // most rows dirty: the full build is cheaper
    return;
  }
  // Settle every dirty node's grid cell first so candidate discovery sees
  // final geometry even when several nodes moved in the same batch.
  for (const std::uint32_t idx : dirty_scratch_) update_grid_membership(idx);
  for (const std::uint32_t idx : dirty_scratch_) refresh_node(idx);
  cached_model_version_ = model_version;
  moved_.clear();
}

std::size_t Medium::cache_index(NodeId id) const {
  const auto it = std::lower_bound(cache_ids_.begin(), cache_ids_.end(), id);
  if (it == cache_ids_.end() || *it != id) return kNpos;
  return static_cast<std::size_t>(it - cache_ids_.begin());
}

void Medium::start_transmission(Radio& sender, FramePtr frame, PhysChannel channel) {
  // kInFlightRetention's overlap bound assumes no frame outlives the
  // maximal legal airtime; enforce the 127-byte invariant at the source.
  GTTSCH_CHECK(frame->length_bytes <= kMaxMacFrameBytes);
  const TimeUs air = frame_airtime(frame->length_bytes);
  const std::uint64_t id = next_tx_id_++;
  const TimeUs end = sim_.now() + air;
  ChannelState& cs = channels_[channel];
  cs.in_flight.push_back(
      Transmission{id, sender.id(), std::move(frame), channel, sim_.now(), end});
  ++stats_.transmissions;
  // One drain event per (channel, end-time) rendezvous: every later frame
  // ending at the same instant on the same channel (the TSCH case — equal
  // frame lengths transmitted at the same slot's tx offset) rides the
  // first frame's event. Airtime is strictly positive, so the drain this
  // frame may join cannot have fired already.
  if (std::find(cs.pending_drains.begin(), cs.pending_drains.end(), end) ==
      cs.pending_drains.end()) {
    cs.pending_drains.push_back(end);
    sim_.after(air, [this, channel, end] { drain_channel(channel, end); });
  }
}

bool Medium::suffers_collision(const Transmission& tx, const Radio& rx) const {
  const auto bucket_it = channels_.find(tx.channel);
  if (bucket_it == channels_.end()) return false;
  const std::size_t rx_idx = cache_index(rx.id());
  const std::size_t n = cache_ids_.size();
  for (const auto& other : bucket_it->second.in_flight) {
    if (other.id == tx.id) continue;
    if (other.sender == rx.id()) continue;  // a radio cannot jam itself here:
    // it would be transmitting, and the listening check already failed.
    const bool overlap = other.start < tx.end && tx.start < other.end;
    if (!overlap) continue;
    const std::size_t s_idx = cache_index(other.sender);
    if (rx_idx != kNpos && s_idx != kNpos) {
      if (cache_pairs_[s_idx * n + rx_idx].interferes) return true;
      continue;
    }
    // Uncached (e.g. sender detached mid-flight, or the cache is in
    // reference mode): ask the model directly.
    const auto it = radios_.find(other.sender);
    if (it == radios_.end()) continue;
    if (model_->interferes(other.sender, it->second->position(), rx.id(), rx.position()))
      return true;
  }
  return false;
}

TimeUs Medium::busy_until(NodeId listener, PhysChannel channel) const {
  const auto lit = radios_.find(listener);
  if (lit == radios_.end()) return 0;
  const auto bucket_it = channels_.find(channel);
  if (bucket_it == channels_.end()) return 0;
  ensure_cache();
  const std::size_t l_idx = cache_index(listener);
  const std::size_t n = cache_ids_.size();
  const Position& lpos = lit->second->position();
  TimeUs latest = 0;
  for (const auto& tx : bucket_it->second.in_flight) {
    if (tx.sender == listener) continue;
    if (tx.end <= sim_.now()) continue;
    const std::size_t s_idx = cache_index(tx.sender);
    if (s_idx != kNpos && l_idx != kNpos) {
      const PairLink& link = cache_pairs_[s_idx * n + l_idx];
      if (link.prr > 0.0 || link.interferes) latest = std::max(latest, tx.end);
      continue;
    }
    const auto sit = radios_.find(tx.sender);
    if (sit == radios_.end()) continue;
    const Position& spos = sit->second->position();
    if (model_->prr(tx.sender, spos, listener, lpos) > 0.0 ||
        model_->interferes(tx.sender, spos, listener, lpos)) {
      latest = std::max(latest, tx.end);
    }
  }
  return latest;
}

void Medium::resolve_receiver(const Transmission& tx, NodeId rid, Radio& radio,
                              double prr) {
  // Receiver must have been listening on the right channel for the whole
  // frame (preamble included).
  if (radio.state() != RadioState::kListening) return;
  if (radio.channel() != tx.channel) return;
  if (radio.listening_since() > tx.start) return;
  if (prr <= 0.0) return;  // out of communication range entirely
  if (suffers_collision(tx, radio)) {
    ++stats_.collision_losses;
    GTTSCH_LOG_DEBUG("medium", "collision at node %u (frame %s from %u)", rid,
                     frame_type_name(tx.frame->type), tx.sender);
    return;
  }
  if (!rng_.bernoulli(prr)) {
    ++stats_.prr_losses;
    return;
  }
  ++stats_.deliveries;
  radio.medium_deliver(tx.frame);
}

void Medium::drain_channel(PhysChannel channel, TimeUs end) {
  ChannelState& cs = channels_[channel];
  std::erase(cs.pending_drains, end);
  // Snapshot the batch first: delivery callbacks may start new
  // transmissions (which end strictly later — never in this batch) and
  // the per-frame pruning below compacts the bucket.
  drain_scratch_.clear();
  for (const Transmission& t : cs.in_flight) {
    if (t.end == end) drain_scratch_.push_back(t.id);
  }
  // Bucket order is insertion order, so the batch runs in ascending
  // transmission id — exactly the order the per-frame completion events
  // fired in before batching.
  for (const std::uint64_t id : drain_scratch_) finish_transmission(channel, id);
}

void Medium::finish_transmission(PhysChannel channel, std::uint64_t tx_id) {
  auto& bucket = channels_[channel].in_flight;
  const auto it = std::find_if(bucket.begin(), bucket.end(),
                               [tx_id](const Transmission& t) { return t.id == tx_id; });
  GTTSCH_CHECK(it != bucket.end());
  const Transmission tx = *it;  // copy: delivery callbacks may mutate the list

  const auto sender_it = radios_.find(tx.sender);
  Radio* sender = sender_it == radios_.end() ? nullptr : sender_it->second;

  ensure_cache();
  const std::size_t s_idx = sender != nullptr ? cache_index(tx.sender) : kNpos;
  if (s_idx != kNpos) {
    const std::size_t n = cache_ids_.size();
    // Only receivers in communication range (prr > 0) draw from the RNG,
    // in ascending node id — matching the full-radio iteration this fast
    // path replaces. Snapshot the candidates first: like the Transmission
    // copy above, delivery callbacks may invalidate the cache vectors.
    delivery_scratch_.clear();
    for (const std::uint32_t r_idx : cache_receivers_[s_idx]) {
      delivery_scratch_.push_back(DeliveryCandidate{
          cache_ids_[r_idx], cache_radios_[r_idx], cache_pairs_[s_idx * n + r_idx].prr});
    }
    for (const DeliveryCandidate& cand : delivery_scratch_) {
      // An earlier delivery callback may have detached (destroyed) this
      // radio; skip unless it is still the attached one.
      const auto rit = radios_.find(cand.id);
      if (rit == radios_.end() || rit->second != cand.radio) continue;
      resolve_receiver(tx, cand.id, *cand.radio, cand.prr);
    }
  } else {
    // Sender unknown to the cache (detached mid-flight, or reference
    // mode): resolve each receiver against the model directly — with the
    // same snapshot + revalidation discipline as above, since delivery
    // callbacks may detach radios mid-loop.
    delivery_scratch_.clear();
    for (auto& [rid, radio] : radios_) {
      if (rid == tx.sender) continue;
      const Position& tx_pos = sender != nullptr ? sender->position() : Position{};
      delivery_scratch_.push_back(DeliveryCandidate{
          rid, radio, model_->prr(tx.sender, tx_pos, rid, radio->position())});
    }
    for (const DeliveryCandidate& cand : delivery_scratch_) {
      const auto rit = radios_.find(cand.id);
      if (rit == radios_.end() || rit->second != cand.radio) continue;
      resolve_receiver(tx, cand.id, *cand.radio, cand.prr);
    }
  }

  // Prune this channel's transmissions that can no longer overlap anything
  // still in flight.
  const TimeUs horizon = sim_.now() - kInFlightRetention;
  std::erase_if(bucket, [&](const Transmission& t) { return t.end < horizon; });

  // Same revalidation as the receivers: a delivery callback may have
  // detached (destroyed) the sender since the lookup above.
  const auto sit = radios_.find(tx.sender);
  if (sit != radios_.end() && sit->second == sender && sender != nullptr)
    sender->medium_tx_finished();
}

}  // namespace gttsch
