#include "phy/medium.hpp"

#include <algorithm>

#include "sim/log.hpp"
#include "util/check.hpp"

namespace gttsch {

Medium::Medium(Simulator& sim, std::unique_ptr<LinkModel> model, Rng rng)
    : sim_(sim), model_(std::move(model)), rng_(rng) {
  GTTSCH_CHECK(model_ != nullptr);
}

void Medium::attach(Radio* radio) {
  GTTSCH_CHECK(radio != nullptr);
  radios_[radio->id()] = radio;
}

void Medium::detach(NodeId id) { radios_.erase(id); }

double Medium::link_prr(NodeId tx, NodeId rx) const {
  const auto a = radios_.find(tx);
  const auto b = radios_.find(rx);
  if (a == radios_.end() || b == radios_.end()) return 0.0;
  return model_->prr(tx, a->second->position(), rx, b->second->position());
}

void Medium::start_transmission(Radio& sender, FramePtr frame, PhysChannel channel) {
  const TimeUs air = frame_airtime(frame->length_bytes);
  const std::uint64_t id = next_tx_id_++;
  in_flight_.push_back(
      Transmission{id, sender.id(), std::move(frame), channel, sim_.now(), sim_.now() + air});
  ++stats_.transmissions;
  sim_.after(air, [this, id] { finish_transmission(id); });
}

bool Medium::suffers_collision(const Transmission& tx, const Radio& rx) const {
  for (const auto& other : in_flight_) {
    if (other.id == tx.id) continue;
    if (other.channel != tx.channel) continue;
    if (other.sender == rx.id()) continue;  // a radio cannot jam itself here:
    // it would be transmitting, and the listening check already failed.
    const bool overlap = other.start < tx.end && tx.start < other.end;
    if (!overlap) continue;
    const auto it = radios_.find(other.sender);
    if (it == radios_.end()) continue;
    if (model_->interferes(other.sender, it->second->position(), rx.id(), rx.position()))
      return true;
  }
  return false;
}

TimeUs Medium::busy_until(NodeId listener, PhysChannel channel) const {
  const auto lit = radios_.find(listener);
  if (lit == radios_.end()) return 0;
  const Position& lpos = lit->second->position();
  TimeUs latest = 0;
  for (const auto& tx : in_flight_) {
    if (tx.channel != channel) continue;
    if (tx.sender == listener) continue;
    if (tx.end <= sim_.now()) continue;
    const auto sit = radios_.find(tx.sender);
    if (sit == radios_.end()) continue;
    const Position& spos = sit->second->position();
    if (model_->prr(tx.sender, spos, listener, lpos) > 0.0 ||
        model_->interferes(tx.sender, spos, listener, lpos)) {
      latest = std::max(latest, tx.end);
    }
  }
  return latest;
}

void Medium::finish_transmission(std::uint64_t tx_id) {
  const auto it = std::find_if(in_flight_.begin(), in_flight_.end(),
                               [tx_id](const Transmission& t) { return t.id == tx_id; });
  GTTSCH_CHECK(it != in_flight_.end());
  const Transmission tx = *it;  // copy: delivery callbacks may mutate the list

  const auto sender_it = radios_.find(tx.sender);
  Radio* sender = sender_it == radios_.end() ? nullptr : sender_it->second;

  for (auto& [rid, radio] : radios_) {
    if (rid == tx.sender) continue;
    // Receiver must have been listening on the right channel for the whole
    // frame (preamble included).
    if (radio->state() != RadioState::kListening) continue;
    if (radio->channel() != tx.channel) continue;
    if (radio->listening_since() > tx.start) continue;
    const Position& rx_pos = radio->position();
    const Position& tx_pos = sender != nullptr ? sender->position() : Position{};
    const double p = model_->prr(tx.sender, tx_pos, rid, rx_pos);
    if (p <= 0.0) continue;  // out of communication range entirely
    if (suffers_collision(tx, *radio)) {
      ++stats_.collision_losses;
      GTTSCH_LOG_DEBUG("medium", "collision at node %u (frame %s from %u)", rid,
                       frame_type_name(tx.frame->type), tx.sender);
      continue;
    }
    if (!rng_.bernoulli(p)) {
      ++stats_.prr_losses;
      continue;
    }
    ++stats_.deliveries;
    radio->medium_deliver(tx.frame);
  }

  // Prune transmissions that can no longer overlap anything in flight.
  const TimeUs horizon = sim_.now() - 20000;
  std::erase_if(in_flight_, [&](const Transmission& t) { return t.end < horizon; });

  if (sender != nullptr) sender->medium_tx_finished();
}

}  // namespace gttsch
