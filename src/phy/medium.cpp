#include "phy/medium.hpp"

#include <algorithm>

#include "sim/log.hpp"
#include "util/check.hpp"

namespace gttsch {

namespace {
/// How long a finished transmission stays in its channel bucket. A finished
/// frame only matters for collision resolution of frames that overlapped it
/// in time, and no frame is airborne longer than kMaxFrameAirtime — so
/// anything that ended more than one maximal airtime ago can no longer
/// overlap a transmission still in flight.
constexpr TimeUs kInFlightRetention = kMaxFrameAirtime;
}  // namespace

Medium::Medium(Simulator& sim, std::unique_ptr<LinkModel> model, Rng rng)
    : sim_(sim), model_(std::move(model)), rng_(rng) {
  GTTSCH_CHECK(model_ != nullptr);
}

void Medium::attach(Radio* radio) {
  GTTSCH_CHECK(radio != nullptr);
  radios_[radio->id()] = radio;
  ++topo_version_;
}

void Medium::detach(NodeId id) {
  radios_.erase(id);
  ++topo_version_;
}

void Medium::position_changed(NodeId id) {
  (void)id;
  ++topo_version_;
}

double Medium::link_prr(NodeId tx, NodeId rx) const {
  const auto a = radios_.find(tx);
  const auto b = radios_.find(rx);
  if (a == radios_.end() || b == radios_.end()) return 0.0;
  return model_->prr(tx, a->second->position(), rx, b->second->position());
}

void Medium::ensure_cache() const {
  const std::uint64_t model_version = model_->version();
  if (cache_valid_ && cached_topo_version_ == topo_version_ &&
      cached_model_version_ == model_version) {
    return;
  }
  const std::size_t n = radios_.size();
  cache_ids_.clear();
  cache_radios_.clear();
  cache_ids_.reserve(n);
  cache_radios_.reserve(n);
  for (const auto& [id, radio] : radios_) {
    cache_ids_.push_back(id);
    cache_radios_.push_back(radio);
  }
  cache_pairs_.assign(n * n, PairLink{});
  cache_receivers_.assign(n, {});
  for (std::size_t t = 0; t < n; ++t) {
    const Position& tx_pos = cache_radios_[t]->position();
    for (std::size_t r = 0; r < n; ++r) {
      if (r == t) continue;
      const Position& rx_pos = cache_radios_[r]->position();
      PairLink& link = cache_pairs_[t * n + r];
      link.prr = model_->prr(cache_ids_[t], tx_pos, cache_ids_[r], rx_pos);
      link.interferes =
          model_->interferes(cache_ids_[t], tx_pos, cache_ids_[r], rx_pos);
      if (link.prr > 0.0)
        cache_receivers_[t].push_back(static_cast<std::uint32_t>(r));
    }
  }
  cached_topo_version_ = topo_version_;
  cached_model_version_ = model_version;
  cache_valid_ = true;
}

std::size_t Medium::cache_index(NodeId id) const {
  const auto it = std::lower_bound(cache_ids_.begin(), cache_ids_.end(), id);
  if (it == cache_ids_.end() || *it != id) return static_cast<std::size_t>(-1);
  return static_cast<std::size_t>(it - cache_ids_.begin());
}

void Medium::start_transmission(Radio& sender, FramePtr frame, PhysChannel channel) {
  // kInFlightRetention's overlap bound assumes no frame outlives the
  // maximal legal airtime; enforce the 127-byte invariant at the source.
  GTTSCH_CHECK(frame->length_bytes <= kMaxMacFrameBytes);
  const TimeUs air = frame_airtime(frame->length_bytes);
  const std::uint64_t id = next_tx_id_++;
  in_flight_[channel].push_back(
      Transmission{id, sender.id(), std::move(frame), channel, sim_.now(), sim_.now() + air});
  ++stats_.transmissions;
  sim_.after(air, [this, channel, id] { finish_transmission(channel, id); });
}

bool Medium::suffers_collision(const Transmission& tx, const Radio& rx) const {
  const auto bucket_it = in_flight_.find(tx.channel);
  if (bucket_it == in_flight_.end()) return false;
  const std::size_t rx_idx = cache_index(rx.id());
  const std::size_t n = cache_ids_.size();
  for (const auto& other : bucket_it->second) {
    if (other.id == tx.id) continue;
    if (other.sender == rx.id()) continue;  // a radio cannot jam itself here:
    // it would be transmitting, and the listening check already failed.
    const bool overlap = other.start < tx.end && tx.start < other.end;
    if (!overlap) continue;
    const std::size_t s_idx = cache_index(other.sender);
    if (rx_idx != static_cast<std::size_t>(-1) && s_idx != static_cast<std::size_t>(-1)) {
      if (cache_pairs_[s_idx * n + rx_idx].interferes) return true;
      continue;
    }
    // Uncached (e.g. sender detached mid-flight): ask the model directly.
    const auto it = radios_.find(other.sender);
    if (it == radios_.end()) continue;
    if (model_->interferes(other.sender, it->second->position(), rx.id(), rx.position()))
      return true;
  }
  return false;
}

TimeUs Medium::busy_until(NodeId listener, PhysChannel channel) const {
  const auto lit = radios_.find(listener);
  if (lit == radios_.end()) return 0;
  const auto bucket_it = in_flight_.find(channel);
  if (bucket_it == in_flight_.end()) return 0;
  ensure_cache();
  const std::size_t l_idx = cache_index(listener);
  const std::size_t n = cache_ids_.size();
  const Position& lpos = lit->second->position();
  TimeUs latest = 0;
  for (const auto& tx : bucket_it->second) {
    if (tx.sender == listener) continue;
    if (tx.end <= sim_.now()) continue;
    const std::size_t s_idx = cache_index(tx.sender);
    if (s_idx != static_cast<std::size_t>(-1) && l_idx != static_cast<std::size_t>(-1)) {
      const PairLink& link = cache_pairs_[s_idx * n + l_idx];
      if (link.prr > 0.0 || link.interferes) latest = std::max(latest, tx.end);
      continue;
    }
    const auto sit = radios_.find(tx.sender);
    if (sit == radios_.end()) continue;
    const Position& spos = sit->second->position();
    if (model_->prr(tx.sender, spos, listener, lpos) > 0.0 ||
        model_->interferes(tx.sender, spos, listener, lpos)) {
      latest = std::max(latest, tx.end);
    }
  }
  return latest;
}

void Medium::resolve_receiver(const Transmission& tx, NodeId rid, Radio& radio,
                              double prr) {
  // Receiver must have been listening on the right channel for the whole
  // frame (preamble included).
  if (radio.state() != RadioState::kListening) return;
  if (radio.channel() != tx.channel) return;
  if (radio.listening_since() > tx.start) return;
  if (prr <= 0.0) return;  // out of communication range entirely
  if (suffers_collision(tx, radio)) {
    ++stats_.collision_losses;
    GTTSCH_LOG_DEBUG("medium", "collision at node %u (frame %s from %u)", rid,
                     frame_type_name(tx.frame->type), tx.sender);
    return;
  }
  if (!rng_.bernoulli(prr)) {
    ++stats_.prr_losses;
    return;
  }
  ++stats_.deliveries;
  radio.medium_deliver(tx.frame);
}

void Medium::finish_transmission(PhysChannel channel, std::uint64_t tx_id) {
  auto& bucket = in_flight_[channel];
  const auto it = std::find_if(bucket.begin(), bucket.end(),
                               [tx_id](const Transmission& t) { return t.id == tx_id; });
  GTTSCH_CHECK(it != bucket.end());
  const Transmission tx = *it;  // copy: delivery callbacks may mutate the list

  const auto sender_it = radios_.find(tx.sender);
  Radio* sender = sender_it == radios_.end() ? nullptr : sender_it->second;

  ensure_cache();
  const std::size_t s_idx = sender != nullptr ? cache_index(tx.sender)
                                              : static_cast<std::size_t>(-1);
  if (s_idx != static_cast<std::size_t>(-1)) {
    const std::size_t n = cache_ids_.size();
    // Only receivers in communication range (prr > 0) draw from the RNG,
    // in ascending node id — matching the full-radio iteration this fast
    // path replaces. Snapshot the candidates first: like the Transmission
    // copy above, delivery callbacks may invalidate the cache vectors.
    delivery_scratch_.clear();
    for (const std::uint32_t r_idx : cache_receivers_[s_idx]) {
      delivery_scratch_.push_back(DeliveryCandidate{
          cache_ids_[r_idx], cache_radios_[r_idx], cache_pairs_[s_idx * n + r_idx].prr});
    }
    for (const DeliveryCandidate& cand : delivery_scratch_) {
      // An earlier delivery callback may have detached (destroyed) this
      // radio; skip unless it is still the attached one.
      const auto rit = radios_.find(cand.id);
      if (rit == radios_.end() || rit->second != cand.radio) continue;
      resolve_receiver(tx, cand.id, *cand.radio, cand.prr);
    }
  } else {
    // Sender unknown to the cache (detached mid-flight): resolve each
    // receiver against the model directly, as the uncached path did —
    // with the same snapshot + revalidation discipline as above, since
    // delivery callbacks may detach radios mid-loop.
    delivery_scratch_.clear();
    for (auto& [rid, radio] : radios_) {
      if (rid == tx.sender) continue;
      const Position& tx_pos = sender != nullptr ? sender->position() : Position{};
      delivery_scratch_.push_back(DeliveryCandidate{
          rid, radio, model_->prr(tx.sender, tx_pos, rid, radio->position())});
    }
    for (const DeliveryCandidate& cand : delivery_scratch_) {
      const auto rit = radios_.find(cand.id);
      if (rit == radios_.end() || rit->second != cand.radio) continue;
      resolve_receiver(tx, cand.id, *cand.radio, cand.prr);
    }
  }

  // Prune this channel's transmissions that can no longer overlap anything
  // still in flight.
  const TimeUs horizon = sim_.now() - kInFlightRetention;
  std::erase_if(bucket, [&](const Transmission& t) { return t.end < horizon; });

  // Same revalidation as the receivers: a delivery callback may have
  // detached (destroyed) the sender since the lookup above.
  const auto sit = radios_.find(tx.sender);
  if (sit != radios_.end() && sit->second == sender && sender != nullptr)
    sender->medium_tx_finished();
}

}  // namespace gttsch
