#include "phy/medium.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/log.hpp"
#include "util/check.hpp"

namespace gttsch {

namespace {
/// How long a finished transmission stays in its channel bucket. A finished
/// frame only matters for collision resolution of frames that overlapped it
/// in time, and no frame is airborne longer than kMaxFrameAirtime — so
/// anything that ended more than one maximal airtime ago can no longer
/// overlap a transmission still in flight.
constexpr TimeUs kInFlightRetention = kMaxFrameAirtime;

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
constexpr std::uint32_t kNpos32 = 0xFFFFFFFFu;

/// Ordering key for drain events. Giving drains a *fixed* key (above every
/// node id, below the default class) pins their position among same-time
/// events to (end, kDrainEventKey, owner) — independent of the insertion
/// sequence number. That independence is what lets a repartition cancel
/// and re-home a pending drain without perturbing the event order the
/// sequential reference mode produces.
constexpr std::uint32_t kDrainEventKey = 0xFFFFFFFEu;

/// Grid-cell coordinates of a position, clamped so they pack into 32 bits.
/// Clamping only merges cells that are astronomically far apart, which
/// over-approximates a neighborhood (extra candidates) — never misses one.
void grid_coords(const Position& p, double cell, std::int64_t& cx, std::int64_t& cy) {
  constexpr double kBound = 2147480000.0;
  const double inv = 1.0 / cell;
  cx = static_cast<std::int64_t>(std::clamp(std::floor(p.x * inv), -kBound, kBound));
  cy = static_cast<std::int64_t>(std::clamp(std::floor(p.y * inv), -kBound, kBound));
}

std::uint64_t pack_cell(std::int64_t cx, std::int64_t cy) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(cy));
}

/// Insert `value` into an ascending vector, keeping it sorted and unique.
void insert_sorted(std::vector<std::uint32_t>& v, std::uint32_t value) {
  const auto it = std::lower_bound(v.begin(), v.end(), value);
  if (it == v.end() || *it != value) v.insert(it, value);
}

/// Remove `value` from an ascending vector if present.
void erase_sorted(std::vector<std::uint32_t>& v, std::uint32_t value) {
  const auto it = std::lower_bound(v.begin(), v.end(), value);
  if (it != v.end() && *it == value) v.erase(it);
}
}  // namespace

Medium::Medium(Simulator& sim, std::unique_ptr<LinkModel> model, Rng rng)
    : sim_(sim), model_(std::move(model)), rng_(rng) {
  GTTSCH_CHECK(model_ != nullptr);
  shards_.push_back(std::make_unique<Shard>());
}

Medium::~Medium() = default;

Medium::Shard& Medium::shard() const {
  const std::uint32_t ctx = sim_.current_ctx();
  return ctx < shards_.size() ? *shards_[ctx] : *shards_[0];
}

void Medium::attach(Radio* radio) {
  GTTSCH_CHECK(radio != nullptr);
  radios_[radio->id()] = radio;
  // Forked by node id, persistent across reboots: the stream is a
  // function of the run seed and the receiver identity alone, never of
  // attach order or of other nodes' delivery interleavings.
  rx_rngs_.try_emplace(radio->id(), rng_.fork(radio->id()));
  ++structure_version_;
}

void Medium::detach(NodeId id) {
  radios_.erase(id);
  ++structure_version_;
}

void Medium::position_changed(NodeId id) {
  ++position_epoch_;
  if (!cache_valid_) return;  // a full (re)build is pending anyway
  // Deduplicate: a node walking many steps between medium queries stays
  // one dirty entry (the refresh reads its *current* position anyway), so
  // the backlog is bounded by distinct movers and only overflows — into a
  // full rebuild — when essentially the whole network moved. The cap is
  // measured against the *live* radio count: cache_ids_ goes stale after
  // detach, and with dedup bounding the backlog at the attached count the
  // fallback must fire at equality, not beyond it.
  if (std::find(moved_.begin(), moved_.end(), id) != moved_.end()) return;
  moved_.push_back(id);
  if (moved_.size() >= radios_.size()) {
    cache_valid_ = false;
    moved_.clear();
  }
}

void Medium::set_link_cache_enabled(bool enabled) {
  if (link_cache_enabled_ == enabled) return;
  link_cache_enabled_ = enabled;
  cache_valid_ = false;
  cache_ids_.clear();
  cache_radios_.clear();
  cache_pairs_.clear();
  cache_receivers_.clear();
  moved_.clear();
  grid_.clear();
  node_grid_key_.clear();
  hot_state_.clear();
  hot_channel_.clear();
  hot_listen_since_.clear();
  hot_rng_.clear();
  for (auto& [id, radio] : radios_) radio->set_medium_slot(Radio::kNoMediumSlot);
}

MediumStats Medium::stats() const {
  MediumStats total;
  for (const auto& sp : shards_) {
    total.transmissions += sp->stats.transmissions;
    total.deliveries += sp->stats.deliveries;
    total.collision_losses += sp->stats.collision_losses;
    total.prr_losses += sp->stats.prr_losses;
  }
  return total;
}

void Medium::reset_stats() {
  for (const auto& sp : shards_) sp->stats = MediumStats{};
}

Rng& Medium::rx_rng(NodeId id) const {
  const auto it = rx_rngs_.find(id);
  GTTSCH_CHECK(it != rx_rngs_.end());
  return it->second;
}

double Medium::link_prr(NodeId tx, NodeId rx) const {
  const auto a = radios_.find(tx);
  const auto b = radios_.find(rx);
  if (a == radios_.end() || b == radios_.end()) return 0.0;
  return model_->prr(tx, a->second->position(), rx, b->second->position());
}

bool Medium::grid_active() const {
  return std::isfinite(cache_range_) && cache_range_ > 0.0;
}

void Medium::update_grid_membership(std::uint32_t idx) const {
  if (!grid_active()) return;
  std::int64_t cx = 0;
  std::int64_t cy = 0;
  grid_coords(cache_radios_[idx]->position(), cache_range_, cx, cy);
  const std::uint64_t key = pack_cell(cx, cy);
  if (key == node_grid_key_[idx]) return;
  const auto old_it = grid_.find(node_grid_key_[idx]);
  if (old_it != grid_.end()) {
    std::erase(old_it->second, idx);
    if (old_it->second.empty()) grid_.erase(old_it);
  }
  grid_[key].push_back(idx);
  node_grid_key_[idx] = key;
}

void Medium::collect_candidates(const Position& pos,
                                std::vector<std::uint32_t>& out) const {
  out.clear();
  if (!grid_active()) {
    for (std::uint32_t i = 0; i < cache_ids_.size(); ++i) out.push_back(i);
    return;
  }
  std::int64_t cx = 0;
  std::int64_t cy = 0;
  grid_coords(pos, cache_range_, cx, cy);
  for (std::int64_t dx = -1; dx <= 1; ++dx) {
    for (std::int64_t dy = -1; dy <= 1; ++dy) {
      const auto it = grid_.find(pack_cell(cx + dx, cy + dy));
      if (it == grid_.end()) continue;
      out.insert(out.end(), it->second.begin(), it->second.end());
    }
  }
  // Receiver lists must come out ascending by NodeId (== by cache index),
  // so candidates are visited in sorted order.
  std::sort(out.begin(), out.end());
}

void Medium::rebuild_cache() const {
  const std::size_t n = radios_.size();
  cache_ids_.clear();
  cache_radios_.clear();
  cache_ids_.reserve(n);
  cache_radios_.reserve(n);
  for (const auto& [id, radio] : radios_) {
    cache_ids_.push_back(id);
    cache_radios_.push_back(radio);
  }
  cache_pairs_.assign(n * n, PairLink{});
  cache_receivers_.assign(n, {});
  cache_range_ = model_->max_interaction_range();
  grid_.clear();
  node_grid_key_.assign(n, 0);
  if (grid_active()) {
    for (std::uint32_t i = 0; i < n; ++i) {
      std::int64_t cx = 0;
      std::int64_t cy = 0;
      grid_coords(cache_radios_[i]->position(), cache_range_, cx, cy);
      const std::uint64_t key = pack_cell(cx, cy);
      grid_[key].push_back(i);
      node_grid_key_[i] = key;
    }
  }
  // Pairs outside a node's grid neighborhood stay {0, false}, which the
  // model's max_interaction_range contract guarantees the model would
  // answer too — so this O(n * degree) build is bit-identical to the
  // all-pairs one.
  for (std::uint32_t t = 0; t < n; ++t) {
    const Position& tx_pos = cache_radios_[t]->position();
    collect_candidates(tx_pos, candidate_scratch_);
    for (const std::uint32_t r : candidate_scratch_) {
      if (r == t) continue;
      const Position& rx_pos = cache_radios_[r]->position();
      PairLink& link = cache_pairs_[t * n + r];
      link.prr = model_->prr(cache_ids_[t], tx_pos, cache_ids_[r], rx_pos);
      link.interferes =
          model_->interferes(cache_ids_[t], tx_pos, cache_ids_[r], rx_pos);
      if (link.prr > 0.0) cache_receivers_[t].push_back(r);
    }
  }
  // Snapshot the SoA hot mirror and hand each radio its slot so later
  // state transitions update the arrays in O(1).
  hot_state_.assign(n, static_cast<std::uint8_t>(RadioState::kOff));
  hot_channel_.assign(n, 0);
  hot_listen_since_.assign(n, 0);
  hot_rng_.assign(n, nullptr);
  for (std::uint32_t i = 0; i < n; ++i) {
    Radio* r = cache_radios_[i];
    hot_state_[i] = static_cast<std::uint8_t>(r->state());
    hot_channel_[i] = r->channel();
    hot_listen_since_[i] = r->listening_since();
    hot_rng_[i] = &rx_rng(cache_ids_[i]);
    r->set_medium_slot(i);
  }
  ++cache_builds_;
  cached_structure_version_ = structure_version_;
  cached_model_version_ = model_->version();
  moved_.clear();
  cache_valid_ = true;
}

void Medium::refresh_node(std::uint32_t m) const {
  const std::size_t n = cache_ids_.size();
  // Clear column m: forget every sender's link *to* the node (the prr > 0
  // ones are exactly those holding m in their receiver list).
  for (std::uint32_t s = 0; s < n; ++s) {
    if (s == m) continue;
    PairLink& to_m = cache_pairs_[s * n + m];
    if (to_m.prr > 0.0) erase_sorted(cache_receivers_[s], m);
    to_m = PairLink{};
  }
  // Clear row m.
  std::fill(cache_pairs_.begin() + static_cast<std::ptrdiff_t>(m * n),
            cache_pairs_.begin() + static_cast<std::ptrdiff_t>((m + 1) * n),
            PairLink{});
  cache_receivers_[m].clear();
  // Recompute both directions against the grid neighborhood of the
  // node's current position. Values are whatever the model answers for
  // current positions, and anything farther than the spatial bound is
  // {0, false} on both sides — bit-identical to a full rebuild.
  const Position& m_pos = cache_radios_[m]->position();
  collect_candidates(m_pos, candidate_scratch_);
  for (const std::uint32_t r : candidate_scratch_) {
    if (r == m) continue;
    const Position& r_pos = cache_radios_[r]->position();
    PairLink& out = cache_pairs_[m * n + r];
    out.prr = model_->prr(cache_ids_[m], m_pos, cache_ids_[r], r_pos);
    out.interferes = model_->interferes(cache_ids_[m], m_pos, cache_ids_[r], r_pos);
    if (out.prr > 0.0) cache_receivers_[m].push_back(r);  // candidates ascend
    PairLink& in = cache_pairs_[r * n + m];
    in.prr = model_->prr(cache_ids_[r], r_pos, cache_ids_[m], m_pos);
    in.interferes = model_->interferes(cache_ids_[r], r_pos, cache_ids_[m], m_pos);
    if (in.prr > 0.0) insert_sorted(cache_receivers_[r], m);
  }
}

void Medium::ensure_cache() const {
  if (!link_cache_enabled_) return;
  const std::uint64_t model_version = model_->version();
  if (cache_valid_ && cached_structure_version_ == structure_version_ &&
      cached_model_version_ == model_version && moved_.empty()) {
    return;
  }
  if (!cache_valid_ || cached_structure_version_ != structure_version_) {
    rebuild_cache();  // structural change: membership itself moved
    return;
  }

  // Incremental path: collect the indices whose rows/columns must refresh.
  dirty_scratch_.clear();
  if (cached_model_version_ != model_version) {
    // A model change may come with a new spatial bound (e.g. a dynamic
    // override activating beyond the base geometry) — the grid must then
    // be resized, which only a full rebuild does.
    if (model_->max_interaction_range() != cache_range_) {
      rebuild_cache();
      return;
    }
    model_dirty_scratch_.clear();
    if (!model_->changed_nodes_since(cached_model_version_, model_dirty_scratch_)) {
      rebuild_cache();  // unattributable model change
      return;
    }
    for (const NodeId id : model_dirty_scratch_) {
      const std::size_t idx = cache_index(id);
      if (idx != kNpos) dirty_scratch_.push_back(static_cast<std::uint32_t>(idx));
    }
  }
  for (const NodeId id : moved_) {
    const std::size_t idx = cache_index(id);
    // A moved radio unknown to the cache would have changed the structure
    // version and taken the rebuild branch above.
    if (idx != kNpos) dirty_scratch_.push_back(static_cast<std::uint32_t>(idx));
  }
  std::sort(dirty_scratch_.begin(), dirty_scratch_.end());
  dirty_scratch_.erase(std::unique(dirty_scratch_.begin(), dirty_scratch_.end()),
                       dirty_scratch_.end());
  const std::size_t n = cache_ids_.size();
  if (dirty_scratch_.size() * 2 >= n && dirty_scratch_.size() > 1) {
    rebuild_cache();  // most rows dirty: the full build is cheaper
    return;
  }
  // Settle every dirty node's grid cell first so candidate discovery sees
  // final geometry even when several nodes moved in the same batch.
  for (const std::uint32_t idx : dirty_scratch_) update_grid_membership(idx);
  for (const std::uint32_t idx : dirty_scratch_) refresh_node(idx);
  cached_model_version_ = model_version;
  moved_.clear();
}

std::size_t Medium::cache_index(NodeId id) const {
  const auto it = std::lower_bound(cache_ids_.begin(), cache_ids_.end(), id);
  if (it == cache_ids_.end() || *it != id) return kNpos;
  return static_cast<std::size_t>(it - cache_ids_.begin());
}

void Medium::start_transmission(Radio& sender, FramePtr frame, PhysChannel channel) {
  // kInFlightRetention's overlap bound assumes no frame outlives the
  // maximal legal airtime; enforce the 127-byte invariant at the source.
  GTTSCH_CHECK(frame->length_bytes <= kMaxMacFrameBytes);
  Shard& sh = shard();
  const TimeUs air = frame_airtime(frame->length_bytes);
  const std::uint64_t id = sh.next_tx_id++;
  const TimeUs end = sim_.now() + air;
  ChannelState& cs = sh.channels[channel];
  cs.in_flight.push_back(
      Transmission{id, sender.id(), std::move(frame), channel, sim_.now(), end});
  ++sh.stats.transmissions;
  ++sh.mutations;
  // One drain event per (channel, end-time) rendezvous: every later frame
  // ending at the same instant on the same channel (the TSCH case — equal
  // frame lengths transmitted at the same slot's tx offset) rides the
  // first frame's event. Airtime is strictly positive, so the drain this
  // frame may join cannot have fired already. The event inherits the
  // sender as owner, homing it to the sender's island.
  bool have_drain = false;
  for (const PendingDrain& d : cs.pending_drains) {
    if (d.end == end) {
      have_drain = true;
      break;
    }
  }
  if (!have_drain) {
    const EventId ev = sim_.at_keyed(
        end, kDrainEventKey, [this, channel, end] { drain_channel(channel, end); });
    cs.pending_drains.push_back(PendingDrain{end, ev});
  }
}

bool Medium::suffers_collision(const Shard& sh, const Transmission& tx, NodeId rid,
                               std::size_t rx_idx, const Radio* rx) const {
  const auto bucket_it = sh.channels.find(tx.channel);
  if (bucket_it == sh.channels.end()) return false;
  const std::size_t n = cache_ids_.size();
  for (const auto& other : bucket_it->second.in_flight) {
    if (other.id == tx.id) continue;
    if (other.sender == rid) continue;  // a radio cannot jam itself here:
    // it would be transmitting, and the listening check already failed.
    const bool overlap = other.start < tx.end && tx.start < other.end;
    if (!overlap) continue;
    const std::size_t s_idx = cache_index(other.sender);
    if (rx_idx != kNpos && s_idx != kNpos) {
      if (cache_pairs_[s_idx * n + rx_idx].interferes) return true;
      continue;
    }
    // Uncached (e.g. sender detached mid-flight, or the cache is in
    // reference mode): ask the model directly.
    const auto it = radios_.find(other.sender);
    if (it == radios_.end()) continue;
    const Radio* receiver = rx != nullptr ? rx : cache_radios_[rx_idx];
    if (model_->interferes(other.sender, it->second->position(), rid,
                           receiver->position()))
      return true;
  }
  return false;
}

TimeUs Medium::busy_until(NodeId listener, PhysChannel channel) const {
  const auto lit = radios_.find(listener);
  if (lit == radios_.end()) return 0;
  Shard& sh = shard();
  const auto bucket_it = sh.channels.find(channel);
  if (bucket_it == sh.channels.end()) return 0;
  ensure_cache();
  const std::size_t l_idx = cache_index(listener);
  const std::size_t n = cache_ids_.size();
  const TimeUs now = sim_.now();
  const Position& lpos = lit->second->position();
  // Batch the bucket scan: all nodes polling carrier sense at the same
  // (instant, channel) — every receiver of a TSCH slot during its rx
  // guard — share one pass that resolves live transmissions and their
  // sender cache indices; each listener then only walks the compact
  // (s_idx, end) list against its own column of the pair matrix.
  BusyMemo& memo = sh.busy_memo;
  if (memo.at != now || memo.channel != channel ||
      memo.mutations != sh.mutations || memo.cache_builds != cache_builds_) {
    memo.at = now;
    memo.channel = channel;
    memo.mutations = sh.mutations;
    memo.cache_builds = cache_builds_;
    memo.live.clear();
    for (const auto& tx : bucket_it->second.in_flight) {
      if (tx.end <= now) continue;
      const std::size_t s_idx = cache_index(tx.sender);
      memo.live.push_back(LiveTx{
          s_idx == kNpos ? kNpos32 : static_cast<std::uint32_t>(s_idx),
          tx.sender, tx.end});
    }
  }
  TimeUs latest = 0;
  for (const LiveTx& t : memo.live) {
    if (t.sender == listener) continue;
    if (t.s_idx != kNpos32 && l_idx != kNpos) {
      const PairLink& link = cache_pairs_[t.s_idx * n + l_idx];
      if (link.prr > 0.0 || link.interferes) latest = std::max(latest, t.end);
      continue;
    }
    const auto sit = radios_.find(t.sender);
    if (sit == radios_.end()) continue;
    const Position& spos = sit->second->position();
    if (model_->prr(t.sender, spos, listener, lpos) > 0.0 ||
        model_->interferes(t.sender, spos, listener, lpos)) {
      latest = std::max(latest, t.end);
    }
  }
  return latest;
}

void Medium::resolve_receiver_fast(Shard& sh, const Transmission& tx, NodeId rid,
                                   std::uint32_t r_idx, double prr) {
  // Receiver must have been listening on the right channel for the whole
  // frame (preamble included) — filters read the contiguous SoA mirror;
  // the Radio object is only touched for an actual delivery.
  if (hot_state_[r_idx] != static_cast<std::uint8_t>(RadioState::kListening)) return;
  if (hot_channel_[r_idx] != tx.channel) return;
  if (hot_listen_since_[r_idx] > tx.start) return;
  if (prr <= 0.0) return;  // out of communication range entirely
  if (suffers_collision(sh, tx, rid, r_idx, nullptr)) {
    ++sh.stats.collision_losses;
    GTTSCH_LOG_DEBUG("medium", "collision at node %u (frame %s from %u)", rid,
                     frame_type_name(tx.frame->type), tx.sender);
    return;
  }
  if (!hot_rng_[r_idx]->bernoulli(prr)) {
    ++sh.stats.prr_losses;
    return;
  }
  ++sh.stats.deliveries;
  // The receiver's processing — and every event chain it spawns (ACKs,
  // slot timers, routing reactions) — belongs to the *receiver*: without
  // this re-homing, a node bootstrapped by another node's frame would
  // inherit the sender's owner for its whole lifetime and a later
  // repartition would tear its event chains across two islands.
  Simulator::ScopedOwner own(sim_, rid);
  cache_radios_[r_idx]->medium_deliver(tx.frame);
}

void Medium::resolve_receiver_slow(Shard& sh, const Transmission& tx, NodeId rid,
                                   Radio& radio, double prr) {
  if (radio.state() != RadioState::kListening) return;
  if (radio.channel() != tx.channel) return;
  if (radio.listening_since() > tx.start) return;
  if (prr <= 0.0) return;
  if (suffers_collision(sh, tx, rid, kNpos, &radio)) {
    ++sh.stats.collision_losses;
    GTTSCH_LOG_DEBUG("medium", "collision at node %u (frame %s from %u)", rid,
                     frame_type_name(tx.frame->type), tx.sender);
    return;
  }
  if (!rx_rng(rid).bernoulli(prr)) {
    ++sh.stats.prr_losses;
    return;
  }
  ++sh.stats.deliveries;
  // Same receiver re-homing as the fast path (see above).
  Simulator::ScopedOwner own(sim_, rid);
  radio.medium_deliver(tx.frame);
}

void Medium::drain_channel(PhysChannel channel, TimeUs end) {
  Shard& sh = shard();
  ChannelState& cs = sh.channels[channel];
  std::erase_if(cs.pending_drains,
                [end](const PendingDrain& d) { return d.end == end; });
  // Snapshot the batch first: delivery callbacks may start new
  // transmissions (which end strictly later — never in this batch) and
  // the per-frame pruning below compacts the bucket.
  sh.drain_scratch.clear();
  for (const Transmission& t : cs.in_flight) {
    if (t.end == end) sh.drain_scratch.push_back(t.id);
  }
  // Bucket order is insertion order, so the batch runs in ascending
  // transmission id — exactly the order the per-frame completion events
  // fired in before batching.
  for (const std::uint64_t id : sh.drain_scratch) finish_transmission(sh, channel, id);
}

void Medium::finish_transmission(Shard& sh, PhysChannel channel, std::uint64_t tx_id) {
  auto& bucket = sh.channels[channel].in_flight;
  const auto it = std::find_if(bucket.begin(), bucket.end(),
                               [tx_id](const Transmission& t) { return t.id == tx_id; });
  GTTSCH_CHECK(it != bucket.end());
  const Transmission tx = *it;  // copy: delivery callbacks may mutate the list

  const auto sender_it = radios_.find(tx.sender);
  Radio* sender = sender_it == radios_.end() ? nullptr : sender_it->second;

  ensure_cache();
  const std::size_t s_idx = sender != nullptr ? cache_index(tx.sender) : kNpos;
  if (s_idx != kNpos) {
    const std::size_t n = cache_ids_.size();
    // Only receivers in communication range (prr > 0) draw from the RNG,
    // in ascending node id — matching the full-radio iteration this fast
    // path replaces. Snapshot the candidates first: like the Transmission
    // copy above, delivery callbacks may invalidate the cache vectors.
    auto& scratch = sh.delivery_scratch;
    scratch.clear();
    for (const std::uint32_t r_idx : cache_receivers_[s_idx]) {
      scratch.push_back(DeliveryCandidate{cache_ids_[r_idx], r_idx, nullptr,
                                          cache_pairs_[s_idx * n + r_idx].prr});
    }
    // While no callback attaches/detaches a radio or rebuilds the cache,
    // the snapshotted indices stay valid and candidates resolve straight
    // off the SoA mirror — one integer compare per candidate instead of
    // the old per-candidate map lookup. On the (rare) mutation, fall
    // back to revalidating each remaining candidate through the id map.
    const std::uint64_t snap_structure = structure_version_;
    const std::uint64_t snap_builds = cache_builds_;
    for (const DeliveryCandidate& cand : scratch) {
      if (structure_version_ == snap_structure && cache_builds_ == snap_builds) {
        resolve_receiver_fast(sh, tx, cand.id, cand.r_idx, cand.prr);
        continue;
      }
      const auto rit = radios_.find(cand.id);
      if (rit == radios_.end()) continue;
      resolve_receiver_slow(sh, tx, cand.id, *rit->second, cand.prr);
    }
  } else {
    // Sender unknown to the cache (detached mid-flight, or reference
    // mode): resolve each receiver against the model directly — with the
    // same snapshot + revalidation discipline as above, since delivery
    // callbacks may detach radios mid-loop. Out-of-range receivers
    // (prr <= 0) are filtered here: they draw nothing and deliver
    // nothing, and skipping them keeps the loop from touching radios the
    // executing island does not own.
    auto& scratch = sh.delivery_scratch;
    scratch.clear();
    for (auto& [rid, radio] : radios_) {
      if (rid == tx.sender) continue;
      const Position& tx_pos = sender != nullptr ? sender->position() : Position{};
      const double prr = model_->prr(tx.sender, tx_pos, rid, radio->position());
      if (prr <= 0.0) continue;
      scratch.push_back(DeliveryCandidate{rid, kNpos32, radio, prr});
    }
    for (const DeliveryCandidate& cand : scratch) {
      const auto rit = radios_.find(cand.id);
      if (rit == radios_.end() || rit->second != cand.radio) continue;
      resolve_receiver_slow(sh, tx, cand.id, *cand.radio, cand.prr);
    }
  }

  // Prune this channel's transmissions that can no longer overlap anything
  // still in flight.
  const TimeUs horizon = sim_.now() - kInFlightRetention;
  std::erase_if(bucket, [&](const Transmission& t) { return t.end < horizon; });
  ++sh.mutations;

  // Same revalidation as the receivers: a delivery callback may have
  // detached (destroyed) the sender since the lookup above.
  const auto sit = radios_.find(tx.sender);
  if (sit != radios_.end() && sit->second == sender && sender != nullptr) {
    // Owner re-homing, sender side: the tx-done processing (ACK timeout,
    // backoff, next-slot scheduling) is the sender's chain even when a
    // batched drain event is owned by another island-mate's frame.
    Simulator::ScopedOwner own(sim_, tx.sender);
    sender->medium_tx_finished();
  }
}

// --- IslandSource ---------------------------------------------------------

std::uint64_t Medium::partition_epoch() const {
  // Any attach/detach, any position change, or any link-model activation
  // may change island membership; mix the three counters so each bump
  // forces one repartition check at the next phase boundary.
  return structure_version_ * 0x9E3779B97F4A7C15ull +
         position_epoch_ * 0xC2B2AE3D27D4EB4Full + model_->version();
}

void Medium::settle(TimeUs /*now*/) {
  // Runs on the main thread at every phase boundary, with the main clock
  // already advanced: forces the link model's lazy activation recount and
  // folds pending cache refreshes, so island lanes see ensure_cache() as
  // a pure read for the whole phase.
  if (link_cache_enabled_) {
    ensure_cache();
  } else {
    (void)model_->version();
  }
}

bool Medium::compute_islands(
    std::vector<std::pair<std::uint32_t, std::uint32_t>>* owner_island,
    std::uint32_t* island_count) {
  if (!link_cache_enabled_) return false;
  ensure_cache();
  if (!cache_valid_ || !grid_active()) return false;
  const std::size_t n = cache_ids_.size();
  if (n == 0) return false;

  // Union-find over the compiled pair matrix: two nodes are connected
  // when either direction communicates (prr > 0) or interferes. Pairs
  // beyond a node's 3x3 grid neighborhood are {0, false} by the model's
  // max_interaction_range contract, so scanning neighborhoods covers
  // every edge.
  std::vector<std::uint32_t> parent(n);
  for (std::uint32_t i = 0; i < n; ++i) parent[i] = i;
  const auto find = [&parent](std::uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];  // path halving
      x = parent[x];
    }
    return x;
  };
  for (std::uint32_t t = 0; t < n; ++t) {
    collect_candidates(cache_radios_[t]->position(), candidate_scratch_);
    for (const std::uint32_t r : candidate_scratch_) {
      if (r == t) continue;
      const PairLink& ab = cache_pairs_[t * n + r];
      const PairLink& ba = cache_pairs_[r * n + t];
      if (ab.prr > 0.0 || ab.interferes || ba.prr > 0.0 || ba.interferes) {
        const std::uint32_t ra = find(t);
        const std::uint32_t rb = find(r);
        if (ra != rb) parent[rb] = ra;
      }
    }
  }
  // Dense island ids, ordered by smallest member index — deterministic
  // regardless of union order.
  std::vector<std::uint32_t> island(n, kNpos32);
  owner_island->clear();
  owner_island->reserve(n);
  std::uint32_t next = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t root = find(i);
    if (island[root] == kNpos32) island[root] = next++;
    owner_island->emplace_back(cache_ids_[i], island[root]);
  }
  *island_count = next;
  return true;
}

void Medium::on_partition() {
  const std::uint32_t want = std::max<std::uint32_t>(1, sim_.ctx_count());
  // Sweep every shard: sum stats, collect in-flight transmissions, and
  // cancel all pending drains (they are re-homed below).
  MediumStats total;
  std::vector<Transmission> all;
  std::vector<std::pair<PhysChannel, TimeUs>> pending;
  std::uint64_t max_id = 1;
  for (const auto& sp : shards_) {
    total.transmissions += sp->stats.transmissions;
    total.deliveries += sp->stats.deliveries;
    total.collision_losses += sp->stats.collision_losses;
    total.prr_losses += sp->stats.prr_losses;
    max_id = std::max(max_id, sp->next_tx_id);
    for (auto& [ch, cs] : sp->channels) {
      for (const PendingDrain& d : cs.pending_drains) {
        sim_.cancel(d.event);
        const auto key = std::make_pair(ch, d.end);
        if (std::find(pending.begin(), pending.end(), key) == pending.end())
          pending.push_back(key);
      }
      for (auto& t : cs.in_flight) all.push_back(std::move(t));
    }
  }
  shards_.clear();
  shards_.reserve(want);
  for (std::uint32_t i = 0; i < want; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->next_tx_id = max_id;
  }
  shards_[0]->stats = total;
  // Route by sender island in sequential insertion order — chronological
  // by start, node id at equal starts (same-time tx events execute in
  // node order in both modes) — re-assigning per-shard unique ids that
  // preserve that order for the drain batches.
  std::sort(all.begin(), all.end(),
            [](const Transmission& a, const Transmission& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.sender < b.sender;
            });
  for (Transmission& t : all) {
    const std::uint32_t idx = sim_.island_of(t.sender);
    Shard& s = *shards_[idx < want ? idx : 0];
    t.id = s.next_tx_id++;
    s.channels[t.channel].in_flight.push_back(std::move(t));
  }
  // Re-schedule one drain per (shard, channel, pending end), owned by the
  // first frame of the rendezvous so the event executes on the island
  // whose shard holds the frames. The fixed drain key makes the new
  // event's position in the time-step identical to the cancelled one's.
  for (const auto& sp : shards_) {
    for (auto& [ch, cs] : sp->channels) {
      for (const Transmission& t : cs.in_flight) {
        if (std::find(pending.begin(), pending.end(), std::make_pair(ch, t.end)) ==
            pending.end())
          continue;
        bool scheduled = false;
        for (const PendingDrain& d : cs.pending_drains) {
          if (d.end == t.end) {
            scheduled = true;
            break;
          }
        }
        if (scheduled) continue;
        Simulator::ScopedOwner own(sim_, t.sender);
        const PhysChannel channel = ch;
        const TimeUs end = t.end;
        cs.pending_drains.push_back(PendingDrain{
            end, sim_.at_keyed(end, kDrainEventKey,
                               [this, channel, end] { drain_channel(channel, end); })});
      }
    }
  }
}

}  // namespace gttsch
