// 2-D node placement used by the distance-based link models.
#pragma once

#include <cmath>

namespace gttsch {

struct Position {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Position&, const Position&) = default;
};

inline double distance(const Position& a, const Position& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace gttsch
