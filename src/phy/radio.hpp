// A node's radio: half-duplex state machine plus on-time accounting used
// for the paper's radio-duty-cycle metric.
#pragma once

#include <functional>

#include "phy/geometry.hpp"
#include "phy/wire.hpp"
#include "util/types.hpp"

namespace gttsch {

class Medium;
class Simulator;

enum class RadioState : std::uint8_t { kOff, kListening, kTransmitting };

class Radio {
 public:
  Radio(Simulator& sim, Medium& medium, NodeId id, Position pos);
  ~Radio();
  Radio(const Radio&) = delete;
  Radio& operator=(const Radio&) = delete;

  NodeId id() const { return id_; }
  const Position& position() const { return pos_; }
  /// Relocate (mobility); notifies the medium so cached link qualities
  /// for this radio are recomputed.
  void set_position(Position pos);

  RadioState state() const { return state_; }
  PhysChannel channel() const { return channel_; }
  TimeUs listening_since() const { return listen_since_; }

  /// Turn the receiver on, tuned to `channel`. Re-tuning while listening
  /// restarts the listen window (an in-flight frame is then missed).
  void listen(PhysChannel channel);

  /// Radio off (sleep).
  void turn_off();

  /// Start transmitting `frame` on `channel`. The radio stays in
  /// kTransmitting until the medium reports completion, then turns off and
  /// invokes on_tx_done. Must not be called while already transmitting.
  void transmit(FramePtr frame, PhysChannel channel);

  /// Invoked by the medium when a frame is decodable at this radio.
  std::function<void(FramePtr)> on_rx;
  /// Invoked when our own transmission completes.
  std::function<void()> on_tx_done;

  // --- duty-cycle accounting -------------------------------------------
  /// Cumulative radio-on time (listening + transmitting) up to now.
  TimeUs on_time() const;
  TimeUs tx_time() const;
  TimeUs rx_time() const;

  // Internal: medium calls these.
  void medium_tx_finished();
  void medium_deliver(FramePtr frame);

  /// No slot in the medium's SoA hot mirror (cache invalid / reference
  /// mode): state transitions then skip the mirror push.
  static constexpr std::uint32_t kNoMediumSlot = 0xFFFFFFFFu;
  /// Internal: the medium hands the radio its hot-mirror slot at each
  /// cache rebuild so transitions update the mirror in O(1).
  void set_medium_slot(std::uint32_t slot) { medium_slot_ = slot; }
  std::uint32_t medium_slot() const { return medium_slot_; }

 private:
  void push_hot_state();

  void accumulate() const;

  Simulator& sim_;
  Medium& medium_;
  NodeId id_;
  Position pos_;

  RadioState state_ = RadioState::kOff;
  PhysChannel channel_ = 0;
  TimeUs listen_since_ = 0;
  std::uint32_t medium_slot_ = kNoMediumSlot;

  mutable TimeUs last_change_ = 0;
  mutable TimeUs listening_total_ = 0;
  mutable TimeUs transmitting_total_ = 0;
};

}  // namespace gttsch
