// Time-varying link quality: wraps a base model with scheduled per-link
// PRR overrides. Used for the paper's core motivation — "changes of the
// wireless link quality" — in tests, examples, and failure-injection
// scenarios (an override of 0 at time T models a link or node dying).
#pragma once

#include <memory>
#include <vector>

#include "phy/link_model.hpp"
#include "sim/simulator.hpp"

namespace gttsch {

class DynamicLinkModel final : public LinkModel {
 public:
  DynamicLinkModel(const Simulator& sim, std::unique_ptr<LinkModel> base);

  /// From `at` onward, the (tx -> rx) link has the given PRR (and, if
  /// symmetric, the reverse one too). Later overrides supersede earlier
  /// ones; links without overrides follow the base model.
  void override_prr(TimeUs at, NodeId tx, NodeId rx, double prr, bool symmetric = true);

  /// From `at` onward, node `id` is silent in both directions (radio dead
  /// at the medium level): PRR 0 and no interference from it.
  void kill_node(TimeUs at, NodeId id);

  double prr(NodeId tx, const Position& tx_pos, NodeId rx,
             const Position& rx_pos) const override;
  bool interferes(NodeId tx, const Position& tx_pos, NodeId rx,
                  const Position& rx_pos) const override;

  /// Base version + the number of overrides/kills whose activation time
  /// has passed: activations never revert and inserting an
  /// already-active override raises the count too, so this is monotone
  /// and changes exactly when the effective link table can change.
  /// Amortized O(1): the active count is cached together with the next
  /// pending activation time, and only recounted once sim time (or an
  /// insertion) reaches it — version() sits on the medium's per-frame
  /// cache-validity check.
  std::uint64_t version() const override;

  const LinkModel& base() const { return *base_; }

 private:
  struct Override {
    TimeUs at;
    NodeId tx;
    NodeId rx;
    double prr;
  };
  struct NodeKill {
    TimeUs at;
    NodeId id;
  };

  /// Latest active override for (tx, rx), if any.
  const Override* active_override(NodeId tx, NodeId rx) const;
  bool node_dead(NodeId id) const;

  const Simulator& sim_;
  std::unique_ptr<LinkModel> base_;
  std::vector<Override> overrides_;  // kept in insertion order
  std::vector<NodeKill> kills_;
  mutable std::uint64_t active_count_ = 0;   ///< entries with at <= now
  mutable TimeUs next_recount_at_ = 0;       ///< recount when now reaches this
};

}  // namespace gttsch
