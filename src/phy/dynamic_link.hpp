// Time-varying link quality: wraps a base model with scheduled per-link
// PRR overrides and node liveness events. Used for the paper's core
// motivation — "changes of the wireless link quality" — in tests,
// examples, and fault-injection scenarios (an override of 0 at time T
// models a link dying; kill/revive model a node crash-rebooting).
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "phy/link_model.hpp"
#include "sim/simulator.hpp"

namespace gttsch {

class DynamicLinkModel final : public LinkModel {
 public:
  DynamicLinkModel(const Simulator& sim, std::unique_ptr<LinkModel> base);

  /// From `at` onward, the (tx -> rx) link has the given PRR (and, if
  /// symmetric, the reverse one too). Later overrides supersede earlier
  /// ones; links without overrides follow the base model.
  void override_prr(TimeUs at, NodeId tx, NodeId rx, double prr, bool symmetric = true);

  /// From `at` onward, the (tx <-> rx) pair reverts to the base model in
  /// both directions, superseding any earlier override (the end of a
  /// scripted link episode).
  void clear_override(TimeUs at, NodeId tx, NodeId rx);

  /// From `at` onward, node `id` is silent in both directions (radio dead
  /// at the medium level): PRR 0 and no interference from it.
  void kill_node(TimeUs at, NodeId id);

  /// From `at` onward, node `id` participates again (undoes the latest
  /// kill). At equal times the later-registered event wins, matching
  /// trace order.
  void revive_node(TimeUs at, NodeId id);

  double prr(NodeId tx, const Position& tx_pos, NodeId rx,
             const Position& rx_pos) const override;
  bool interferes(NodeId tx, const Position& tx_pos, NodeId rx,
                  const Position& rx_pos) const override;

  /// Base version + the number of overrides/clears/kills/revivals whose
  /// activation time has passed: activations never revert and inserting
  /// an already-active entry raises the count too, so this is monotone
  /// and changes exactly when the effective link table can change.
  /// Amortized O(1): the active count is cached together with the next
  /// pending activation time, and only recounted once sim time (or an
  /// insertion) reaches it — version() sits on the medium's per-frame
  /// cache-validity check.
  std::uint64_t version() const override;

  /// Base bound while every registered override only removes links
  /// (prr 0 — kills, link-downs) or restores base behavior (clears,
  /// revivals); infinity once a positive override is registered, since it
  /// may connect a pair beyond the base geometry. Pre-activation the base
  /// bound still holds for current answers, and the activation bumps
  /// version() — satisfying the LinkModel contract.
  double max_interaction_range() const override;

  /// Exhaustive when the base model is static (version 0): the activation
  /// log maps every version step to the pair of nodes it touched (kills
  /// and revivals log as (id, id)). A mutable base cannot be attributed
  /// -> full-rebuild answer (false).
  bool changed_nodes_since(std::uint64_t since, std::vector<NodeId>& out) const override;

  const LinkModel& base() const { return *base_; }

 private:
  struct Override {
    TimeUs at;
    NodeId tx;
    NodeId rx;
    double prr;           ///< < 0 = cleared: defer to the base model
    bool logged = false;  ///< already appended to activation_log_
  };
  /// One kill or revival; liveness at time T is decided by the latest
  /// entry with at <= T (ties: later registration wins — trace order).
  struct LifeEvent {
    TimeUs at;
    NodeId id;
    bool dead;
    bool logged = false;
  };

  /// Latest active override for (tx, rx), if any.
  const Override* active_override(NodeId tx, NodeId rx) const;
  bool node_dead(NodeId id) const;

  const Simulator& sim_;
  std::unique_ptr<LinkModel> base_;
  // The entry vectors are mutable because the lazy recount in version()
  // stamps `logged` as activations land in activation_log_.
  mutable std::vector<Override> overrides_;  // kept in insertion order
  mutable std::vector<LifeEvent> life_;      // kept in insertion order
  bool has_positive_override_ = false;  ///< any registered prr > 0 override
  mutable std::uint64_t active_count_ = 0;   ///< entries with at <= now
  mutable TimeUs next_recount_at_ = 0;       ///< recount when now reaches this
  /// Append-only: the node pair behind each activation, in the order the
  /// recounts observed them (activation_log_.size() == active_count_).
  /// With a static base this makes version v <-> log prefix of length v.
  mutable std::vector<std::pair<NodeId, NodeId>> activation_log_;
};

}  // namespace gttsch
