#include "phy/radio.hpp"

#include "phy/medium.hpp"
#include "sim/simulator.hpp"
#include "util/check.hpp"

namespace gttsch {

Radio::Radio(Simulator& sim, Medium& medium, NodeId id, Position pos)
    : sim_(sim), medium_(medium), id_(id), pos_(pos), last_change_(sim.now()) {
  medium_.attach(this);
}

Radio::~Radio() { medium_.detach(id_); }

void Radio::set_position(Position pos) {
  pos_ = pos;
  medium_.position_changed(id_);
}

void Radio::push_hot_state() {
  medium_.radio_hot_changed(medium_slot_, state_, channel_, listen_since_);
}

void Radio::accumulate() const {
  const TimeUs now = sim_.now();
  const TimeUs span = now - last_change_;
  if (span > 0) {
    if (state_ == RadioState::kListening) listening_total_ += span;
    if (state_ == RadioState::kTransmitting) transmitting_total_ += span;
  }
  last_change_ = now;
}

void Radio::listen(PhysChannel channel) {
  GTTSCH_CHECK(state_ != RadioState::kTransmitting);
  accumulate();
  state_ = RadioState::kListening;
  channel_ = channel;
  listen_since_ = sim_.now();
  push_hot_state();
}

void Radio::turn_off() {
  if (state_ == RadioState::kTransmitting) return;  // tx completes regardless
  accumulate();
  state_ = RadioState::kOff;
  push_hot_state();
}

void Radio::transmit(FramePtr frame, PhysChannel channel) {
  GTTSCH_CHECK(state_ != RadioState::kTransmitting);
  GTTSCH_CHECK(frame != nullptr);
  accumulate();
  state_ = RadioState::kTransmitting;
  channel_ = channel;
  push_hot_state();
  medium_.start_transmission(*this, std::move(frame), channel);
}

void Radio::medium_tx_finished() {
  GTTSCH_CHECK(state_ == RadioState::kTransmitting);
  accumulate();
  state_ = RadioState::kOff;
  push_hot_state();
  if (on_tx_done) on_tx_done();
}

void Radio::medium_deliver(FramePtr frame) {
  if (on_rx) on_rx(std::move(frame));
}

TimeUs Radio::on_time() const {
  accumulate();
  return listening_total_ + transmitting_total_;
}

TimeUs Radio::tx_time() const {
  accumulate();
  return transmitting_total_;
}

TimeUs Radio::rx_time() const {
  accumulate();
  return listening_total_;
}

}  // namespace gttsch
