// Declarative experiment-campaign specs: a parameter grid over
// ScenarioConfig fields plus a seed list, expanded into the cartesian
// product of grid points and then into one Job per (point, seed).
//
// Every swept value is carried as a string (so one grammar covers numeric,
// boolean and scheduler axes); `apply_field` owns parsing and range
// validation, which makes bad specs fail loudly before any simulation runs.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "scenario/experiment.hpp"

namespace gttsch::campaign {

/// One swept parameter: a ScenarioConfig field name and the values it takes.
struct Axis {
  std::string field;
  std::vector<std::string> values;
};

/// A campaign: base scenario, swept axes (cartesian product), seed list.
struct CampaignSpec {
  ScenarioConfig base;
  std::vector<Axis> axes;
  std::vector<std::uint64_t> seeds;
};

/// A fully resolved grid point (seed not yet applied).
struct GridPoint {
  std::size_t index = 0;
  std::string label;  ///< "traffic_ppm=120 scheduler=gt-tsch"
  std::vector<std::pair<std::string, std::string>> coords;  ///< axis order
  ScenarioConfig config;
};

/// One unit of work for the runner: grid point x seed.
struct Job {
  std::size_t index = 0;  ///< dense 0..N-1, == point_index * #seeds + seed_index
  std::size_t point_index = 0;
  std::size_t seed_index = 0;
  ScenarioConfig config;  ///< seed applied
};

/// Field names accepted by `apply_field` (and therefore by grid axes).
const std::vector<std::string>& known_fields();

/// Applies `field=value` to `config`. On failure returns false and, when
/// `error` is non-null, stores a message naming the field and the problem
/// (unknown field, unparseable value, or out-of-range value).
bool apply_field(ScenarioConfig& config, const std::string& field,
                 const std::string& value, std::string* error);

/// Checks axes (known fields, non-empty values, no duplicate field, every
/// value applies cleanly) and the seed list (non-empty, no duplicates).
bool validate(const CampaignSpec& spec, std::string* error);

/// Pre-run trace validation over fully resolved points — the shared check
/// behind expand_grid and run_points_campaign (the fig benches build their
/// grids by hand and bypass expand_grid). Generator params are
/// range-checked per point; each trace *file* is read and parsed once per
/// unique path, its node ids checked against every referencing point's
/// topology. Failures name the offending point.
bool validate_points_trace(const std::vector<GridPoint>& points, std::string* error);

/// Cartesian product of the axes over the base config; the first axis
/// varies slowest. A spec with no axes yields the single base point.
/// Returns an empty vector with `error` set when validation fails.
std::vector<GridPoint> expand_grid(const CampaignSpec& spec, std::string* error);

/// Grid points x seeds, in deterministic (point-major) order.
std::vector<Job> make_jobs(const CampaignSpec& spec, std::string* error);

/// Same, over an already-expanded grid (avoids re-expanding the product).
std::vector<Job> make_jobs(const std::vector<GridPoint>& points,
                           const std::vector<std::uint64_t>& seeds);

/// Parses a grid description of the form
/// "traffic_ppm=30,75,120;scheduler=gt-tsch,orchestra" into axes.
bool parse_grid(const std::string& text, std::vector<Axis>* axes,
                std::string* error);

/// Parses a comma-separated seed list ("1,2,3").
bool parse_seeds(const std::string& text, std::vector<std::uint64_t>* seeds,
                 std::string* error);

/// Parses a plain-digits non-negative integer: no sign, no whitespace, no
/// wraparound, rejected when above `max`. The one grammar behind seed
/// lists, shard specs, and count-valued campaign flags — shared so the
/// three cannot drift.
bool parse_bounded_u64(const std::string& text, std::uint64_t max,
                       std::uint64_t* out);

/// Deterministically extends `seeds` to `count` entries (no-op when it is
/// already long enough): adaptive campaigns may need more seeds than the
/// base list, and every shard / resumed process must derive the *same*
/// sequence from the same spec. Appended seeds are splitmix64(i) values,
/// skipping collisions with earlier entries.
std::vector<std::uint64_t> extend_seeds(std::vector<std::uint64_t> seeds,
                                        std::size_t count);

/// Order-sensitive FNV-1a fingerprint of a fully resolved campaign
/// identity: every grid point's label, coords, and config (seed excluded,
/// doubles at %.17g) plus the base seed list. Every shard and every
/// resumed process of the same campaign computes the same value from the
/// same (points, seeds), whatever subset of jobs it runs — so journal
/// records stamped with it can be rejected when they come from a campaign
/// that differs *outside* the swept axes (e.g. a different --set base
/// config), which labels and coords alone cannot see. Never returns 0;
/// 0 is reserved for "record predates fingerprinting".
std::uint64_t campaign_fingerprint(const std::vector<GridPoint>& points,
                                   const std::vector<std::uint64_t>& seeds);

}  // namespace gttsch::campaign
