// Minimal JSON reading/writing helpers shared by the campaign-layer
// serializers (journal records, job envelopes for process isolation).
//
// This is deliberately not a general JSON library: it covers exactly the
// flat objects we emit — strings, numbers, booleans and nested objects,
// with the escape set `escape` produces — and doubles round-trip exactly
// via %.17g, which is what keeps resumed/merged aggregation and
// isolated-job results bit-identical to in-process execution.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace gttsch::campaign::jsonio {

/// %.17g: enough digits that strtod recovers the exact IEEE-754 double.
inline std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

inline std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

// A minimal recursive-descent reader for the flat JSON we emit: objects,
// strings, numbers and booleans (no arrays, no nested escapes beyond the
// ones `escape` produces). Unknown keys are skipped for forward compat.
class Cursor {
 public:
  explicit Cursor(const std::string& text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool peek(char c) {
    skip_ws();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

  bool parse_string(std::string* out) {
    if (!expect('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 't': *out += '\t'; break;
          default: return false;
        }
      } else {
        *out += c;
      }
    }
    return false;  // unterminated (the truncation case)
  }

  bool parse_double(double* out) {
    skip_ws();
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    *out = std::strtod(start, &end);
    if (end == start) return false;
    pos_ += static_cast<std::size_t>(end - start);
    return true;
  }

  bool parse_i64(std::int64_t* out) {
    skip_ws();
    const char* start = text_.c_str() + pos_;
    if (*start != '-' && (*start < '0' || *start > '9')) return false;
    char* end = nullptr;
    *out = std::strtoll(start, &end, 10);
    if (end == start) return false;
    pos_ += static_cast<std::size_t>(end - start);
    return true;
  }

  bool parse_u64(std::uint64_t* out) {
    skip_ws();
    const char* start = text_.c_str() + pos_;
    if (*start < '0' || *start > '9') return false;
    char* end = nullptr;
    *out = std::strtoull(start, &end, 10);
    if (end == start) return false;
    pos_ += static_cast<std::size_t>(end - start);
    return true;
  }

  bool parse_bool(bool* out) {
    skip_ws();
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      *out = true;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      *out = false;
      return true;
    }
    return false;
  }

  /// Skips a string, number, boolean, or (possibly nested) object.
  bool skip_value() {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '"') {
      std::string ignored;
      return parse_string(&ignored);
    }
    if (c == '{') {
      ++pos_;
      if (peek('}')) return expect('}');
      for (;;) {
        std::string key;
        if (!parse_string(&key) || !expect(':') || !skip_value()) return false;
        if (expect(',')) continue;
        return expect('}');
      }
    }
    if (c == 't' || c == 'f') {
      bool ignored = false;
      return parse_bool(&ignored);
    }
    double ignored = 0;
    return parse_double(&ignored);
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

/// Parses `{"key": value, ...}` dispatching each pair through `field`.
template <typename FieldFn>
bool parse_object(Cursor& cur, FieldFn&& field) {
  if (!cur.expect('{')) return false;
  if (cur.peek('}')) return cur.expect('}');
  for (;;) {
    std::string key;
    if (!cur.parse_string(&key) || !cur.expect(':')) return false;
    if (!field(key)) return false;
    if (cur.expect(',')) continue;
    return cur.expect('}');
  }
}

}  // namespace gttsch::campaign::jsonio
