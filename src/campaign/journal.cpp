#include "campaign/journal.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <set>

#include "campaign/jsonio.hpp"

namespace gttsch::campaign {
namespace {

using jsonio::Cursor;
using jsonio::escape;
using jsonio::fmt_double;
using jsonio::parse_object;

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

/// Per-field serialization tables: one row per RunMetrics / MediumStats
/// member, shared by the writer and the parser so they cannot drift.
struct DoubleField {
  const char* name;
  double RunMetrics::*member;
};
struct U64Field {
  const char* name;
  std::uint64_t RunMetrics::*member;
};
struct MediumField {
  const char* name;
  std::uint64_t MediumStats::*member;
};

constexpr DoubleField kMetricDoubles[] = {
    {"pdr_percent", &RunMetrics::pdr_percent},
    {"avg_delay_ms", &RunMetrics::avg_delay_ms},
    {"p95_delay_ms", &RunMetrics::p95_delay_ms},
    {"loss_per_minute", &RunMetrics::loss_per_minute},
    {"duty_cycle_percent", &RunMetrics::duty_cycle_percent},
    {"queue_loss_per_node", &RunMetrics::queue_loss_per_node},
    {"throughput_per_minute", &RunMetrics::throughput_per_minute},
    {"mean_hops", &RunMetrics::mean_hops},
    {"measure_minutes", &RunMetrics::measure_minutes},
    {"pre_pdr_percent", &RunMetrics::pre_pdr_percent},
    {"churn_pdr_percent", &RunMetrics::churn_pdr_percent},
    {"post_pdr_percent", &RunMetrics::post_pdr_percent},
    {"pre_avg_delay_ms", &RunMetrics::pre_avg_delay_ms},
    {"churn_avg_delay_ms", &RunMetrics::churn_avg_delay_ms},
    {"post_avg_delay_ms", &RunMetrics::post_avg_delay_ms},
    {"probe_pdr_percent", &RunMetrics::probe_pdr_percent},
    {"probe_avg_latency_ms", &RunMetrics::probe_avg_latency_ms},
    {"recovery_rejoin_s", &RunMetrics::recovery_rejoin_s},
    {"recovery_first_delivery_s", &RunMetrics::recovery_first_delivery_s},
    {"recovery_ttr_s", &RunMetrics::recovery_ttr_s},
};

constexpr U64Field kMetricCounters[] = {
    {"generated", &RunMetrics::generated},
    {"delivered", &RunMetrics::delivered},
    {"queue_drops", &RunMetrics::queue_drops},
    {"mac_drops", &RunMetrics::mac_drops},
    {"no_route_drops", &RunMetrics::no_route_drops},
    {"nodes_joined", &RunMetrics::nodes_joined},
    {"node_count", &RunMetrics::node_count},
    {"churn_phases", &RunMetrics::churn_phases},
    {"pre_generated", &RunMetrics::pre_generated},
    {"churn_generated", &RunMetrics::churn_generated},
    {"post_generated", &RunMetrics::post_generated},
    {"pre_delivered", &RunMetrics::pre_delivered},
    {"churn_delivered", &RunMetrics::churn_delivered},
    {"post_delivered", &RunMetrics::post_delivered},
    {"probes_sent", &RunMetrics::probes_sent},
    {"probes_delivered", &RunMetrics::probes_delivered},
    {"node_failures", &RunMetrics::node_failures},
    {"node_revivals", &RunMetrics::node_revivals},
    {"node_rejoins", &RunMetrics::node_rejoins},
    {"orphan_intervals", &RunMetrics::orphan_intervals},
    {"recovery_ttr_censored", &RunMetrics::recovery_ttr_censored},
};

constexpr MediumField kMediumCounters[] = {
    {"transmissions", &MediumStats::transmissions},
    {"deliveries", &MediumStats::deliveries},
    {"collision_losses", &MediumStats::collision_losses},
    {"prr_losses", &MediumStats::prr_losses},
};

// ---------------------------------------------------------- parsing --
// The shared reader lives in campaign/jsonio.hpp; what follows are the
// journal-specific object parsers built on it.

bool parse_metrics(Cursor& cur, RunMetrics* metrics) {
  return parse_object(cur, [&](const std::string& key) {
    for (const DoubleField& f : kMetricDoubles) {
      if (key == f.name) return cur.parse_double(&(metrics->*f.member));
    }
    for (const U64Field& f : kMetricCounters) {
      if (key == f.name) return cur.parse_u64(&(metrics->*f.member));
    }
    return cur.skip_value();
  });
}

bool parse_medium(Cursor& cur, MediumStats* medium) {
  return parse_object(cur, [&](const std::string& key) {
    for (const MediumField& f : kMediumCounters) {
      if (key == f.name) return cur.parse_u64(&(medium->*f.member));
    }
    return cur.skip_value();
  });
}

bool parse_coords(Cursor& cur,
                  std::vector<std::pair<std::string, std::string>>* coords) {
  coords->clear();
  return parse_object(cur, [&](const std::string& key) {
    std::string value;
    if (!cur.parse_string(&value)) return false;
    coords->emplace_back(key, std::move(value));
    return true;
  });
}

}  // namespace

std::string render_journal_line(const JournalRecord& r) {
  std::string out = "{\"point_index\": " + std::to_string(r.point_index) +
                    ", \"seed_index\": " + std::to_string(r.seed_index) +
                    ", \"seed\": " + std::to_string(r.seed) + ", \"campaign_fp\": " +
                    std::to_string(r.campaign_fp) + ", \"label\": \"" +
                    escape(r.label) + "\", \"coords\": {";
  for (std::size_t i = 0; i < r.coords.size(); ++i) {
    if (i > 0) out += ", ";
    out += '"' + escape(r.coords[i].first) + "\": \"" + escape(r.coords[i].second) +
           '"';
  }
  out += '}';
  if (r.status != JobStatus::kOk) {
    // Quarantined job: failure fields instead of metrics.
    out += ", \"status\": \"" + std::string(job_status_name(r.status)) +
           "\", \"attempts\": " + std::to_string(r.attempts) +
           ", \"exit_code\": " + std::to_string(r.exit_code) +
           ", \"term_signal\": " + std::to_string(r.term_signal) + "}";
    return out;
  }
  // Successful job. With attempts == 1 (the overwhelmingly common case)
  // this is byte-identical to the pre-status journal format, which keeps
  // old journals and new ones interchangeable and preserves the
  // isolated-vs-in-process byte-identity contract.
  if (r.attempts != 1) out += ", \"attempts\": " + std::to_string(r.attempts);
  out += ", \"fully_formed\": ";
  out += r.result.fully_formed ? "true" : "false";
  out += ", \"metrics\": {";
  bool first = true;
  for (const DoubleField& f : kMetricDoubles) {
    if (!first) out += ", ";
    first = false;
    out += '"' + std::string(f.name) + "\": " + fmt_double(r.result.metrics.*f.member);
  }
  for (const U64Field& f : kMetricCounters) {
    out += ", \"" + std::string(f.name) +
           "\": " + std::to_string(r.result.metrics.*f.member);
  }
  out += "}, \"medium\": {";
  first = true;
  for (const MediumField& f : kMediumCounters) {
    if (!first) out += ", ";
    first = false;
    out += '"' + std::string(f.name) + "\": " + std::to_string(r.result.medium.*f.member);
  }
  out += "}}";
  return out;
}

bool parse_journal_line(const std::string& line, JournalRecord* out,
                        std::string* error) {
  *out = JournalRecord{};
  Cursor cur(line);
  const bool ok = parse_object(cur, [&](const std::string& key) {
    if (key == "point_index") {
      std::uint64_t v = 0;
      if (!cur.parse_u64(&v)) return false;
      out->point_index = static_cast<std::size_t>(v);
      return true;
    }
    if (key == "seed_index") {
      std::uint64_t v = 0;
      if (!cur.parse_u64(&v)) return false;
      out->seed_index = static_cast<std::size_t>(v);
      return true;
    }
    if (key == "seed") return cur.parse_u64(&out->seed);
    if (key == "campaign_fp") return cur.parse_u64(&out->campaign_fp);
    if (key == "label") return cur.parse_string(&out->label);
    if (key == "coords") return parse_coords(cur, &out->coords);
    if (key == "status") {
      // Absent in rev-1 journals; JournalRecord defaults to kOk.
      std::string name;
      return cur.parse_string(&name) && parse_job_status(name, &out->status);
    }
    if (key == "attempts") {
      std::uint64_t v = 0;
      if (!cur.parse_u64(&v) || v == 0) return false;
      out->attempts = static_cast<int>(v);
      return true;
    }
    if (key == "exit_code") {
      // Signed: the WIFEXITED-false fallback journals exit_code -1, and a
      // record the writer emits must never fail to parse back (a malformed
      // non-final line is a hard read_journal error that bricks resume).
      std::int64_t v = 0;
      if (!cur.parse_i64(&v)) return false;
      out->exit_code = static_cast<int>(v);
      return true;
    }
    if (key == "term_signal") {
      std::int64_t v = 0;
      if (!cur.parse_i64(&v)) return false;
      out->term_signal = static_cast<int>(v);
      return true;
    }
    if (key == "fully_formed") return cur.parse_bool(&out->result.fully_formed);
    if (key == "metrics") return parse_metrics(cur, &out->result.metrics);
    if (key == "medium") return parse_medium(cur, &out->result.medium);
    return cur.skip_value();
  });
  if (!ok || !cur.at_end()) {
    return fail(error, "malformed journal line: " +
                           (line.size() > 80 ? line.substr(0, 80) + "..." : line));
  }
  return true;
}

namespace {

/// Drops a trailing partial line — the artifact of a crash mid-append —
/// so resumed appends start on a fresh line. Without this, the first new
/// record would glue onto the partial line, turning a tolerated
/// truncated *last* line into a fatal malformed *middle* line. Returns
/// false when the journal could not be inspected or truncated; appending
/// after a failed trim would cause exactly that corruption.
bool trim_partial_tail(const std::string& path) {
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(path, ec);
  if (ec || size == 0) return true;  // missing/empty journal: nothing to trim
  std::uintmax_t keep = size;  // bytes up to and including the last '\n'
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    while (keep > 0) {
      in.seekg(static_cast<std::streamoff>(keep - 1));
      char c = 0;
      if (!in.get(c)) return false;
      if (c == '\n') break;
      --keep;
    }
  }  // close the read handle: an open one can block resize_file (Windows)
  if (keep == size) return true;
  std::filesystem::resize_file(path, keep, ec);
  return !ec;
}

}  // namespace

JournalWriter::JournalWriter(const std::string& path, bool append_mode) {
  if (append_mode && !trim_partial_tail(path)) {
    out_.setstate(std::ios::failbit);  // surfaced via ok(), like an open failure
    return;
  }
  out_.open(path, append_mode ? std::ios::app : std::ios::trunc);
}

bool JournalWriter::append(const JournalRecord& record) {
  if (!out_.good()) return false;
  // One complete line per write, flushed immediately: a crash can truncate
  // only the line being written, which read_journal drops.
  out_ << render_journal_line(record) << '\n';
  out_.flush();
  return out_.good();
}

bool read_journal(const std::string& path, std::vector<JournalRecord>* out,
                  std::string* error) {
  out->clear();
  std::ifstream in(path);
  if (!in) return fail(error, "cannot open journal '" + path + "'");

  std::map<std::pair<std::size_t, std::size_t>, std::size_t> seen;  // key -> out index
  std::string line;
  std::string pending_error;
  bool pending_bad_line = false;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    if (pending_bad_line) {
      // A malformed line in the *middle* of the journal is corruption,
      // not a crash artifact; refuse rather than silently drop results.
      return fail(error, pending_error + " (line " +
                             std::to_string(line_number - 1) +
                             " is malformed but not the last line)");
    }
    JournalRecord record;
    if (!parse_journal_line(line, &record, &pending_error)) {
      pending_bad_line = true;  // tolerated iff it turns out to be the last line
      continue;
    }
    const auto [it, inserted] =
        seen.emplace(std::make_pair(record.point_index, record.seed_index),
                     out->size());
    if (inserted) {
      out->push_back(std::move(record));
      continue;
    }
    // Duplicate key: tolerable only when it is the *same* job (overlapping
    // resumed journals). A different seed/label under the same key is two
    // campaigns concatenated into one file — dropping one silently would
    // bypass the mixed-campaign rejection that aggregate_records enforces
    // for separate files.
    JournalRecord& kept = (*out)[it->second];
    if (record.seed != kept.seed || record.label != kept.label ||
        record.coords != kept.coords ||
        (record.campaign_fp != 0 && kept.campaign_fp != 0 &&
         record.campaign_fp != kept.campaign_fp)) {
      return fail(error, "journal disagrees with itself about point " +
                             std::to_string(record.point_index) + " seed #" +
                             std::to_string(record.seed_index) +
                             " (two campaigns concatenated?)");
    }
    // --retry-quarantined appends the successful re-run after the original
    // quarantine record; the later ok record supersedes the failure.
    if (kept.status != JobStatus::kOk && record.status == JobStatus::kOk) {
      kept = std::move(record);
    }
  }
  return true;
}

bool aggregate_records(const std::vector<JournalRecord>& records,
                       std::vector<PointAggregate>* out, std::string* error) {
  // point_index -> (accumulator, label, coords); std::map iterates in
  // point order, which is the unsharded report order.
  struct PointData {
    PointAccumulator accumulator;
    std::string label;
    std::vector<std::pair<std::string, std::string>> coords;
    std::map<std::size_t, std::uint64_t> seed_by_index;
    std::set<std::size_t> ok_seeds;  ///< seeds whose success is already added
  };
  std::map<std::size_t, PointData> by_point;
  // One fingerprint across ALL records, not per point: two campaigns that
  // differ only in the base config (e.g. --set nodes_per_dodag) produce
  // identical labels/coords, and sharded journals never collide on a
  // point, so a per-point or per-key check would not catch the mix.
  std::uint64_t campaign_fp = 0;
  for (const JournalRecord& r : records) {
    if (r.campaign_fp != 0) {
      if (campaign_fp == 0) {
        campaign_fp = r.campaign_fp;
      } else if (r.campaign_fp != campaign_fp) {
        return fail(error,
                    "journals come from different campaigns (base "
                    "configuration or seed list differs) and must not be "
                    "merged");
      }
    }
    PointData& data = by_point[r.point_index];
    if (data.seed_by_index.empty()) {
      data.label = r.label;
      data.coords = r.coords;
    } else if (r.label != data.label || r.coords != data.coords) {
      // Same point index, different identity: these journals belong to
      // two different campaigns and must not be averaged together.
      return fail(error, "journals disagree about point " +
                             std::to_string(r.point_index) + ": '" + data.label +
                             "' vs '" + r.label + "'");
    }
    const auto [it, inserted] = data.seed_by_index.emplace(r.seed_index, r.seed);
    if (!inserted) {
      if (it->second != r.seed) {
        return fail(error, "journals disagree about point " +
                               std::to_string(r.point_index) + " seed #" +
                               std::to_string(r.seed_index) + ": " +
                               std::to_string(it->second) + " vs " +
                               std::to_string(r.seed));
      }
      // Duplicate key across journals (e.g. overlapping resumed shards):
      // keep the first record, except that an ok record supersedes an
      // earlier quarantined one (--retry-quarantined appends the retried
      // success after the failure it cures).
      if (r.status == JobStatus::kOk && data.ok_seeds.count(r.seed_index) == 0) {
        data.accumulator.add(r.seed_index, r.result);
        data.ok_seeds.insert(r.seed_index);
      }
      continue;
    }
    if (r.status == JobStatus::kOk) {
      data.accumulator.add(r.seed_index, r.result);
      data.ok_seeds.insert(r.seed_index);
    } else {
      data.accumulator.add_failure(r.seed_index, r.status);
    }
  }
  out->clear();
  out->reserve(by_point.size());
  for (const auto& [point_index, data] : by_point) {
    PointAggregate agg = data.accumulator.finalize();
    agg.label = data.label;
    agg.coords = data.coords;
    out->push_back(std::move(agg));
  }
  return true;
}

bool write_text_atomic(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << text;
    out.flush();
    if (!out.good()) return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace gttsch::campaign
